package clustersim_test

import (
	"fmt"

	"clustersim"
	"clustersim/internal/prog"
	"clustersim/internal/uarch"
)

// ExampleRun simulates one suite workload under the hybrid virtual-cluster
// steering and reports whether it completed.
func ExampleRun() {
	w := clustersim.WorkloadByName("crafty")
	res := clustersim.Run(w, clustersim.SetupVC(2, 2), clustersim.RunOptions{NumUops: 5000})
	if res.Err != nil {
		fmt.Println("error:", res.Err)
		return
	}
	fmt.Printf("committed %d micro-ops on %d clusters\n",
		res.Metrics.Uops, len(res.Metrics.PerCluster))
	fmt.Printf("dependence checks used by VC steering: %d\n", res.Complexity.DependenceChecks)
	// Output:
	// committed 5000 micro-ops on 2 clusters
	// dependence checks used by VC steering: 0
}

// ExampleNewProgram builds a custom two-op kernel and runs it under the
// hardware-only baseline.
func ExampleNewProgram() {
	b := clustersim.NewProgram("axpy")
	b.FP(uarch.OpFMul, uarch.FPReg(1), uarch.FPReg(1), uarch.FPReg(0))
	b.Load(uarch.FPReg(2), uarch.IntReg(15), prog.MemRef{
		Pattern: prog.MemStride, Stream: 0, StrideBytes: 8, WorkingSet: 1 << 14,
	})
	b.FP(uarch.OpFAdd, uarch.FPReg(1), uarch.FPReg(1), uarch.FPReg(2))
	p := b.MustBuild()

	w := clustersim.CustomWorkload(p, 1)
	res := clustersim.Run(w, clustersim.SetupOP(2), clustersim.RunOptions{NumUops: 3000})
	fmt.Printf("completed: %v, uops: %d\n", res.Err == nil, res.Metrics.Uops)
	// Output:
	// completed: true, uops: 3000
}

// ExampleExpandTrace shows deterministic trace expansion.
func ExampleExpandTrace() {
	b := clustersim.NewProgram("tiny")
	b.Int(uarch.OpAdd, uarch.IntReg(1), uarch.IntReg(1), uarch.IntReg(1))
	p := b.MustBuild()

	t1 := clustersim.ExpandTrace(p, 100, 42)
	t2 := clustersim.ExpandTrace(p, 100, 42)
	fmt.Println(len(t1.Uops) == len(t2.Uops), len(t1.Uops))
	// Output:
	// true 100
}

// ExampleWorkloads lists the composition of the synthetic CPU2000 suite.
func ExampleWorkloads() {
	ints, fps := 0, 0
	for _, w := range clustersim.Workloads() {
		if w.FP {
			fps++
		} else {
			ints++
		}
	}
	fmt.Printf("%d SPECint + %d SPECfp simulation points\n", ints, fps)
	// Output:
	// 26 SPECint + 14 SPECfp simulation points
}
