package interconnect

import (
	"testing"
	"testing/quick"
)

func TestReserveBandwidth(t *testing.T) {
	nw := MustNew(DefaultConfig(2))
	arr, ok := nw.Reserve(10, 0, 1)
	if !ok || arr != 11 {
		t.Fatalf("first reserve = (%d,%v), want (11,true)", arr, ok)
	}
	if _, ok := nw.Reserve(10, 0, 1); ok {
		t.Fatal("second reserve same cycle same direction should fail")
	}
	// Opposite direction is a separate link direction.
	if _, ok := nw.Reserve(10, 1, 0); !ok {
		t.Fatal("opposite direction should have its own bandwidth")
	}
	// Next cycle frees the link.
	if _, ok := nw.Reserve(11, 0, 1); !ok {
		t.Fatal("reserve next cycle should succeed")
	}
}

func TestReserveCounts(t *testing.T) {
	nw := MustNew(DefaultConfig(2))
	nw.Reserve(0, 0, 1)
	nw.Reserve(0, 0, 1) // conflict
	nw.Reserve(1, 0, 1)
	if nw.Transfers != 2 {
		t.Errorf("Transfers = %d, want 2", nw.Transfers)
	}
	if nw.Conflicts != 1 {
		t.Errorf("Conflicts = %d, want 1", nw.Conflicts)
	}
}

func TestFourClusterMeshIndependentLinks(t *testing.T) {
	nw := MustNew(DefaultConfig(4))
	// All 12 directed pairs should be reservable in the same cycle.
	for s := 0; s < 4; s++ {
		for d := 0; d < 4; d++ {
			if s == d {
				continue
			}
			if _, ok := nw.Reserve(5, s, d); !ok {
				t.Fatalf("link %d→%d refused in an otherwise empty cycle", s, d)
			}
		}
	}
}

func TestSameClusterReservePanics(t *testing.T) {
	nw := MustNew(DefaultConfig(2))
	defer func() {
		if recover() == nil {
			t.Error("same-cluster reserve should panic")
		}
	}()
	nw.Reserve(0, 1, 1)
}

func TestHigherBandwidth(t *testing.T) {
	nw := MustNew(Config{NumClusters: 2, Latency: 2, BandwidthPerLink: 3})
	for i := 0; i < 3; i++ {
		if arr, ok := nw.Reserve(7, 0, 1); !ok || arr != 9 {
			t.Fatalf("reserve %d = (%d,%v), want (9,true)", i, arr, ok)
		}
	}
	if _, ok := nw.Reserve(7, 0, 1); ok {
		t.Fatal("fourth reserve should exceed bandwidth 3")
	}
}

func TestReset(t *testing.T) {
	nw := MustNew(DefaultConfig(2))
	nw.Reserve(3, 0, 1)
	nw.Reset()
	if nw.Transfers != 0 || nw.Conflicts != 0 {
		t.Error("counters survive Reset")
	}
	if _, ok := nw.Reserve(3, 0, 1); !ok {
		t.Error("occupancy survives Reset")
	}
}

// Property: per cycle and directed pair, successful reservations never
// exceed the configured bandwidth.
func TestBandwidthNeverExceededProperty(t *testing.T) {
	f := func(reqs []uint8, bwRaw uint8) bool {
		bw := int(bwRaw)%3 + 1
		nw := MustNew(Config{NumClusters: 3, Latency: 1, BandwidthPerLink: bw})
		type key struct {
			cycle int64
			s, d  int
		}
		granted := map[key]int{}
		for _, r := range reqs {
			cycle := int64(r % 4)
			s := int(r/4) % 3
			d := int(r/12) % 3
			if s == d {
				continue
			}
			// Requests must arrive in nondecreasing cycle order for the
			// per-cycle occupancy window; group by cycle.
			_ = cycle
		}
		// Issue requests cycle by cycle to honor the rolling window.
		for cycle := int64(0); cycle < 4; cycle++ {
			for _, r := range reqs {
				c := int64(r % 4)
				if c != cycle {
					continue
				}
				s := int(r/4) % 3
				d := int(r/12) % 3
				if s == d {
					continue
				}
				if _, ok := nw.Reserve(cycle, s, d); ok {
					granted[key{cycle, s, d}]++
				}
			}
		}
		for _, n := range granted {
			if n > bw {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestRingShortestPathLatency(t *testing.T) {
	cfg := Config{NumClusters: 4, Latency: 1, BandwidthPerLink: 1, Topology: TopologyRing}
	nw := MustNew(cfg)
	// Adjacent: 1 hop.
	if arr, ok := nw.Reserve(0, 0, 1); !ok || arr != 1 {
		t.Errorf("0→1 = (%d,%v), want (1,true)", arr, ok)
	}
	// Opposite: 2 hops.
	if arr, ok := nw.Reserve(10, 0, 2); !ok || arr != 12 {
		t.Errorf("0→2 = (%d,%v), want (12,true)", arr, ok)
	}
	// Wrap-around shorter direction: 3→0 is 1 hop clockwise.
	if arr, ok := nw.Reserve(20, 3, 0); !ok || arr != 21 {
		t.Errorf("3→0 = (%d,%v), want (21,true)", arr, ok)
	}
}

func TestRingSegmentContention(t *testing.T) {
	cfg := Config{NumClusters: 4, Latency: 1, BandwidthPerLink: 1, Topology: TopologyRing}
	nw := MustNew(cfg)
	// 0→2 uses segments 0→1 and 1→2.
	if _, ok := nw.Reserve(5, 0, 2); !ok {
		t.Fatal("first reservation refused")
	}
	// 0→1 shares segment 0→1: must be refused this cycle.
	if _, ok := nw.Reserve(5, 0, 1); ok {
		t.Error("segment 0→1 double-booked")
	}
	// 2→3 uses an untouched segment: fine.
	if _, ok := nw.Reserve(5, 2, 3); !ok {
		t.Error("independent segment refused")
	}
	// Next cycle everything frees.
	if _, ok := nw.Reserve(6, 0, 1); !ok {
		t.Error("segment not freed next cycle")
	}
}

func TestRingAllOrNothing(t *testing.T) {
	cfg := Config{NumClusters: 4, Latency: 1, BandwidthPerLink: 1, Topology: TopologyRing}
	nw := MustNew(cfg)
	nw.Reserve(3, 1, 2) // occupies segment 1→2
	// 0→2 needs 0→1 and 1→2; the latter is taken → refusal must not
	// consume 0→1.
	if _, ok := nw.Reserve(3, 0, 2); ok {
		t.Fatal("blocked path accepted")
	}
	if _, ok := nw.Reserve(3, 0, 1); !ok {
		t.Error("failed multi-hop reservation leaked a segment booking")
	}
}

func TestRingTwoClustersDegeneratesToP2P(t *testing.T) {
	cfg := Config{NumClusters: 2, Latency: 1, BandwidthPerLink: 1, Topology: TopologyRing}
	nw := MustNew(cfg)
	if arr, ok := nw.Reserve(0, 0, 1); !ok || arr != 1 {
		t.Errorf("2-cluster ring 0→1 = (%d,%v), want (1,true)", arr, ok)
	}
}

func TestTopologyString(t *testing.T) {
	if TopologyPointToPoint.String() != "p2p" || TopologyRing.String() != "ring" {
		t.Error("topology names wrong")
	}
}
