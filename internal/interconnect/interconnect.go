// Package interconnect models the dedicated point-to-point network that
// connects the backend clusters: a full mesh of bidirectional links, each
// direction carrying one copy per cycle with a fixed latency (paper
// Table 2: "bi-directional point-to-point link, 1 cycle latency,
// 1 copy/cycle").
package interconnect

import "fmt"

// Topology selects the link structure.
type Topology uint8

const (
	// TopologyPointToPoint is a full mesh of dedicated links (the paper's
	// configuration): every transfer is a single hop.
	TopologyPointToPoint Topology = iota
	// TopologyRing connects clusters in a bidirectional ring; transfers
	// take shortest-path hops, each hop paying the latency and consuming
	// bandwidth on every traversed segment. Rings scale better in wiring
	// at higher cluster counts — the trade the scalability ablation
	// quantifies.
	TopologyRing
)

// String names the topology.
func (t Topology) String() string {
	switch t {
	case TopologyPointToPoint:
		return "p2p"
	case TopologyRing:
		return "ring"
	}
	return fmt.Sprintf("topology(%d)", uint8(t))
}

// Config parameterizes the network.
type Config struct {
	// NumClusters is the endpoint count.
	NumClusters int
	// Latency is the per-hop transfer latency in cycles.
	Latency int
	// BandwidthPerLink is the copies per cycle per link direction.
	BandwidthPerLink int
	// Topology selects full mesh (default) or ring.
	Topology Topology
}

// DefaultConfig returns the paper's parameters for n clusters.
func DefaultConfig(n int) Config {
	return Config{NumClusters: n, Latency: 1, BandwidthPerLink: 1}
}

// Network tracks per-cycle link occupancy for a full point-to-point mesh.
type Network struct {
	cfg Config
	// used[src*n+dst] counts transfers reserved in the current cycle.
	used  []int
	cycle int64

	// Transfers counts total reservations; Conflicts counts refusals.
	Transfers, Conflicts uint64
}

// New builds the network.
func New(cfg Config) (*Network, error) {
	if cfg.NumClusters <= 0 {
		return nil, fmt.Errorf("interconnect: %d clusters", cfg.NumClusters)
	}
	if cfg.Latency < 0 || cfg.BandwidthPerLink <= 0 {
		return nil, fmt.Errorf("interconnect: bad latency/bandwidth %+v", cfg)
	}
	n := cfg.NumClusters
	return &Network{cfg: cfg, used: make([]int, n*n)}, nil
}

// MustNew builds the network, panicking on error. For tests.
func MustNew(cfg Config) *Network {
	nw, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return nw
}

// Latency returns the per-hop latency.
func (nw *Network) Latency() int { return nw.cfg.Latency }

func (nw *Network) rollTo(cycle int64) {
	if cycle != nw.cycle {
		for i := range nw.used {
			nw.used[i] = 0
		}
		nw.cycle = cycle
	}
}

// Reserve claims one transfer on the src→dst path for the given cycle and
// returns the arrival cycle, or ok=false if any traversed link direction
// is at bandwidth this cycle. src must differ from dst.
//
// Point-to-point: one hop on the dedicated link. Ring: shortest-path hops,
// atomically reserving every segment (a refused segment releases nothing,
// because reservations are all-or-nothing within the same cycle window).
func (nw *Network) Reserve(cycle int64, src, dst int) (arrival int64, ok bool) {
	if src == dst {
		panic(fmt.Sprintf("interconnect: reserve %d→%d (same cluster)", src, dst))
	}
	nw.rollTo(cycle)
	if nw.cfg.Topology == TopologyRing && nw.cfg.NumClusters > 2 {
		return nw.reserveRing(cycle, src, dst)
	}
	idx := src*nw.cfg.NumClusters + dst
	if nw.used[idx] >= nw.cfg.BandwidthPerLink {
		nw.Conflicts++
		return 0, false
	}
	nw.used[idx]++
	nw.Transfers++
	return cycle + int64(nw.cfg.Latency), true
}

// reserveRing routes src→dst over ring segments in the shorter direction.
func (nw *Network) reserveRing(cycle int64, src, dst int) (int64, bool) {
	n := nw.cfg.NumClusters
	cw := (dst - src + n) % n  // hops going clockwise
	ccw := (src - dst + n) % n // hops going counter-clockwise
	step := 1
	hops := cw
	if ccw < cw {
		step = n - 1 // i.e. -1 mod n
		hops = ccw
	}
	// Gather the segment indices, then reserve all or nothing. The array
	// stays on the stack (clusters are capped at 32, so hops ≤ 16).
	var segArr [16]int
	segs := segArr[:0]
	at := src
	for h := 0; h < hops; h++ {
		next := (at + step) % n
		segs = append(segs, at*n+next)
		at = next
	}
	for _, s := range segs {
		if nw.used[s] >= nw.cfg.BandwidthPerLink {
			nw.Conflicts++
			return 0, false
		}
	}
	for _, s := range segs {
		nw.used[s]++
	}
	nw.Transfers++
	return cycle + int64(hops)*int64(nw.cfg.Latency), true
}

// Reset clears the counters and occupancy (between runs).
func (nw *Network) Reset() {
	for i := range nw.used {
		nw.used[i] = 0
	}
	nw.cycle = 0
	nw.Transfers, nw.Conflicts = 0, 0
}
