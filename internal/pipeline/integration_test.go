package pipeline

import (
	"math/rand"
	"testing"
	"testing/quick"

	"clustersim/internal/partition"
	"clustersim/internal/prog"
	"clustersim/internal/steer"
	"clustersim/internal/trace"
	"clustersim/internal/uarch"
	"clustersim/internal/workload"
)

// suiteTraces expands the quick suite with small traces, annotated for VC.
func suiteTraces(t *testing.T, uops int) map[string]*trace.Trace {
	t.Helper()
	out := map[string]*trace.Trace{}
	for _, sp := range workload.QuickSuite() {
		p := sp.Program.Clone()
		partition.AnnotateVC(p, partition.Options{NumVC: 2})
		out[sp.Name] = trace.Expand(p, trace.Options{NumUops: uops, Seed: sp.Seed})
	}
	return out
}

func TestAllPoliciesCompleteOnSuite(t *testing.T) {
	traces := suiteTraces(t, 4000)
	policies := func() []steer.Policy {
		return []steer.Policy{
			&steer.OP{}, &steer.OneCluster{}, steer.NewVC(2), &steer.ModN{},
		}
	}
	for name, tr := range traces {
		for _, pol := range policies() {
			core, err := NewCore(DefaultConfig(2), pol, tr)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, pol.Name(), err)
			}
			m, err := core.Run()
			if err != nil {
				t.Fatalf("%s/%s: %v", name, pol.Name(), err)
			}
			if m.Uops != int64(len(tr.Uops)) {
				t.Errorf("%s/%s: committed %d of %d", name, pol.Name(), m.Uops, len(tr.Uops))
			}
		}
	}
}

func TestOneClusterZeroCopiesOnSuite(t *testing.T) {
	for name, tr := range suiteTraces(t, 3000) {
		core, err := NewCore(DefaultConfig(2), &steer.OneCluster{}, tr)
		if err != nil {
			t.Fatal(err)
		}
		m, err := core.Run()
		if err != nil {
			t.Fatal(err)
		}
		if m.Copies != 0 {
			t.Errorf("%s: one-cluster produced %d copies", name, m.Copies)
		}
		if m.LinkTransfers != 0 {
			t.Errorf("%s: one-cluster used the interconnect %d times", name, m.LinkTransfers)
		}
	}
}

func TestCopiesMatchLinkTransfers(t *testing.T) {
	// Every copy issues over exactly one link transfer; at completion every
	// inserted copy has issued (all consumers committed).
	for name, tr := range suiteTraces(t, 3000) {
		core, err := NewCore(DefaultConfig(2), steer.NewVC(2), tr)
		if err != nil {
			t.Fatal(err)
		}
		m, err := core.Run()
		if err != nil {
			t.Fatal(err)
		}
		if m.LinkTransfers > uint64(m.Copies) {
			t.Errorf("%s: %d transfers exceed %d copies", name, m.LinkTransfers, m.Copies)
		}
		// A few copies may still sit in copy queues at the final commit
		// (their consumer got the value via a second copy path is
		// impossible — consumers wait; so nearly all must have issued).
		if diff := uint64(m.Copies) - m.LinkTransfers; diff > 64 {
			t.Errorf("%s: %d copies never issued", name, diff)
		}
	}
}

func TestFourClusterAllPoliciesOnSuite(t *testing.T) {
	for name, tr := range suiteTraces(t, 3000) {
		for _, pol := range []steer.Policy{&steer.OP{}, steer.NewVC(4), steer.NewVC(2)} {
			core, err := NewCore(DefaultConfig(4), pol, tr)
			if err != nil {
				t.Fatal(err)
			}
			m, err := core.Run()
			if err != nil {
				t.Fatalf("%s/%s on 4 clusters: %v", name, pol.Name(), err)
			}
			if m.Uops != 3000 {
				t.Errorf("%s/%s: %d uops", name, pol.Name(), m.Uops)
			}
		}
	}
}

func TestMaxCyclesAborts(t *testing.T) {
	sp := workload.ByName("mcf") // slow, memory-bound
	tr := trace.Expand(sp.Program, trace.Options{NumUops: 50_000, Seed: 1})
	cfg := DefaultConfig(2)
	cfg.MaxCycles = 1000 // far too few
	core, err := NewCore(cfg, &steer.OP{}, tr)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.Run()
	if err == nil {
		t.Fatal("expected MaxCycles abort")
	}
	if !m.MaxCyclesExceeded {
		t.Error("MaxCyclesExceeded flag not set")
	}
}

func TestStallBreakdownAccountsAllocStalls(t *testing.T) {
	sp := workload.ByName("galgel")
	p := sp.Program.Clone()
	tr := trace.Expand(p, trace.Options{NumUops: 5000, Seed: sp.Seed})
	core, err := NewCore(DefaultConfig(2), &steer.OP{}, tr)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.AllocStallCycles != m.StallCycles[StallPolicy]+m.StallCycles[StallIQ] {
		t.Errorf("alloc stalls %d != policy %d + iq %d",
			m.AllocStallCycles, m.StallCycles[StallPolicy], m.StallCycles[StallIQ])
	}
}

func TestDispatchConservation(t *testing.T) {
	// Sum of per-cluster dispatches equals committed uops.
	for name, tr := range suiteTraces(t, 3000) {
		core, err := NewCore(DefaultConfig(2), steer.NewVC(2), tr)
		if err != nil {
			t.Fatal(err)
		}
		m, err := core.Run()
		if err != nil {
			t.Fatal(err)
		}
		var disp uint64
		for _, pc := range m.PerCluster {
			disp += pc.Dispatched
		}
		if disp != uint64(m.Uops) {
			t.Errorf("%s: dispatched %d != committed %d", name, disp, m.Uops)
		}
	}
}

// randomProgram builds a random but valid program with branches, memory ops
// and multiple blocks — the totality fuzzer for the whole pipeline.
func randomProgram(rng *rand.Rand) *prog.Program {
	b := prog.NewBuilder("fuzz")
	nblocks := 1 + rng.Intn(3)
	for blk := 0; blk < nblocks; blk++ {
		if blk > 0 {
			b.NewBlock()
		}
		n := 1 + rng.Intn(8)
		for i := 0; i < n; i++ {
			switch rng.Intn(5) {
			case 0:
				b.Load(uarch.IntReg(rng.Intn(8)), uarch.IntReg(8+rng.Intn(4)), prog.MemRef{
					Pattern:     prog.MemPattern(1 + rng.Intn(4)),
					Stream:      rng.Intn(3),
					StrideBytes: 8,
					WorkingSet:  4096 << rng.Intn(8),
				})
			case 1:
				b.Store(uarch.IntReg(rng.Intn(8)), uarch.IntReg(8+rng.Intn(4)), prog.MemRef{
					Pattern:     prog.MemPattern(1 + rng.Intn(4)),
					Stream:      rng.Intn(3),
					StrideBytes: 8,
					WorkingSet:  4096 << rng.Intn(8),
				})
			case 2:
				d := rng.Intn(8)
				b.FP(uarch.OpFAdd, uarch.FPReg(d), uarch.FPReg(rng.Intn(8)), uarch.FPReg(rng.Intn(8)))
			default:
				d := rng.Intn(8)
				ops := []uarch.Opcode{uarch.OpAdd, uarch.OpShift, uarch.OpMul, uarch.OpDiv}
				b.Int(ops[rng.Intn(len(ops))], uarch.IntReg(d), uarch.IntReg(rng.Intn(8)), uarch.IntReg(rng.Intn(8)))
			}
		}
		// Terminating branch back to a random block.
		b.Branch(uarch.IntReg(rng.Intn(8)), 0.1+0.8*rng.Float64(), rng.Float64())
		t1 := rng.Intn(nblocks)
		t2 := rng.Intn(nblocks)
		p := 0.1 + 0.8*rng.Float64()
		b.Edge(t1, p).Edge(t2, 1-p)
	}
	return b.MustBuild()
}

// Property: arbitrary valid programs complete under every policy on 1, 2
// and 4 clusters with exact commit counts.
func TestPipelineTotalityFuzz(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomProgram(rng)
		partition.AnnotateVC(p, partition.Options{NumVC: 2})
		tr := trace.Expand(p, trace.Options{NumUops: 600, Seed: seed})
		for _, n := range []int{1, 2, 4} {
			var pols []steer.Policy
			if n == 1 {
				pols = []steer.Policy{&steer.OneCluster{}}
			} else {
				pols = []steer.Policy{&steer.OP{}, steer.NewVC(2), &steer.ModN{}}
			}
			for _, pol := range pols {
				core, err := NewCore(DefaultConfig(n), pol, tr)
				if err != nil {
					return false
				}
				m, err := core.Run()
				if err != nil || m.Uops != 600 {
					t.Logf("seed=%d clusters=%d policy=%s err=%v uops=%d",
						seed, n, pol.Name(), err, m.Uops)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
