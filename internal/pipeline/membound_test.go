package pipeline

import (
	"testing"

	"clustersim/internal/prog"
	"clustersim/internal/steer"
	"clustersim/internal/trace"
	"clustersim/internal/uarch"
)

// memboundTrace builds a load-heavy program with a working set far beyond
// the L2, so most loads miss to memory and the run spends hundreds of
// thousands of cycles with long-latency events in flight — the workload
// that made the old cycle-keyed event map grow without bound (drained
// buckets were never deleted).
func memboundTrace(uops int) *trace.Trace {
	b := prog.NewBuilder("membound")
	b.Load(uarch.IntReg(1), uarch.IntReg(10), prog.MemRef{
		Pattern: prog.MemStride, Stream: 0, StrideBytes: 256, WorkingSet: 64 << 20,
	})
	b.Int(uarch.OpAdd, uarch.IntReg(2), uarch.IntReg(1), uarch.IntReg(2))
	return trace.Expand(b.MustBuild(), trace.Options{NumUops: uops, Seed: 7})
}

// TestEventWheelBoundedOverLongRun pins the event-wheel memory bound: over
// a 200k+ cycle simulation the wheel's total buffered capacity must stay a
// small multiple of the machine's concurrency, not grow with simulated
// cycles. The old map-of-slices leaked one bucket per cycle that ever held
// an event; the wheel reuses a fixed ring of slices.
func TestEventWheelBoundedOverLongRun(t *testing.T) {
	tr := memboundTrace(80_000)
	core, err := NewCore(DefaultConfig(2), &steer.OP{}, tr)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.Cycles < 200_000 {
		t.Fatalf("run too short to exercise the bound: %d cycles", m.Cycles)
	}
	if core.evStats.scheduled < int64(m.Uops) {
		t.Fatalf("implausible event count %d for %d uops", core.evStats.scheduled, m.Uops)
	}

	// The wheel footprint is the sum of its slice capacities: pooled
	// backing arrays that stop growing once they cover the steady-state
	// per-cycle event burst. Bound it by a generous constant that is
	// nevertheless thousands of times smaller than one-slice-per-cycle
	// leakage would produce.
	footprint := 0
	for _, slot := range core.wheel {
		footprint += cap(slot)
	}
	maxFootprint := len(core.wheel) * 64
	if footprint > maxFootprint {
		t.Errorf("event wheel footprint %d entries after %d cycles (cap %d): backing arrays growing without bound",
			footprint, m.Cycles, maxFootprint)
	}

	// The far-future overflow bucket must fully drain: every scheduled
	// event was either handled or intentionally dropped, never parked.
	if core.evOverflowLen != 0 || len(core.evOverflow) != 0 {
		t.Errorf("overflow bucket still holds %d events in %d cycles after completion",
			core.evOverflowLen, len(core.evOverflow))
	}
}

// TestEventWheelOverflowPath forces events beyond the wheel horizon (an
// ablation-scale memory latency) and checks they are delivered at the
// exact cycles a wheel large enough to hold them directly would deliver
// them: the overflow run's metrics must equal an overflow-free control of
// the identical machine.
func TestEventWheelOverflowPath(t *testing.T) {
	run := func(horizonCap int) (*Metrics, *Core) {
		old := maxWheelHorizon
		maxWheelHorizon = horizonCap
		defer func() { maxWheelHorizon = old }()
		tr := memboundTrace(4_000)
		cfg := DefaultConfig(2)
		cfg.Mem.MemLatency = 5000 // beyond the default 4096-slot cap
		core, err := NewCore(cfg, &steer.OP{}, tr)
		if err != nil {
			t.Fatal(err)
		}
		m, err := core.Run()
		if err != nil {
			t.Fatal(err)
		}
		return m, core
	}

	// Overflow run: the 5000-cycle memory latency exceeds the capped wheel,
	// so L2-miss completion events take the far-future overflow bucket.
	over, c1 := run(4096)
	if len(c1.wheel) != 4096 {
		t.Fatalf("wheel not capped: %d slots", len(c1.wheel))
	}
	if c1.evStats.overflowed == 0 {
		t.Fatal("overflow path never fired despite a latency beyond the horizon")
	}

	// Control run: same machine, wheel raised to cover the latency — no
	// overflow. Cycle-exact equality pins the bucket's delivery timing.
	ctl, c2 := run(1 << 14)
	if c2.evStats.overflowed != 0 {
		t.Fatalf("control run unexpectedly overflowed %d events", c2.evStats.overflowed)
	}
	if over.Cycles != ctl.Cycles || over.Uops != ctl.Uops || over.Copies != ctl.Copies {
		t.Errorf("overflow delivery drifted from in-wheel delivery: %d/%d/%d vs %d/%d/%d cycles/uops/copies",
			over.Cycles, over.Uops, over.Copies, ctl.Cycles, ctl.Uops, ctl.Copies)
	}
	if over.Uops != 4000 {
		t.Errorf("committed %d of 4000 uops with overflow events", over.Uops)
	}
}
