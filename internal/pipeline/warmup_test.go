package pipeline

import (
	"testing"

	"clustersim/internal/steer"
	"clustersim/internal/trace"
	"clustersim/internal/workload"
)

func warmupTrace(t *testing.T) *trace.Trace {
	t.Helper()
	sp := workload.ByName("crafty")
	return trace.Expand(sp.Program, trace.Options{NumUops: 10_000, Seed: sp.Seed})
}

func TestWarmupReducesCountedUops(t *testing.T) {
	tr := warmupTrace(t)
	cfg := DefaultConfig(2)
	cfg.WarmupUops = 4000
	core, err := NewCore(cfg, &steer.OP{}, tr)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Warmup boundary is detected at commit granularity (up to CommitWidth
	// of slack).
	if m.Uops < 5990 || m.Uops > 6000+int64(cfg.CommitWidth) {
		t.Errorf("post-warmup uops = %d, want ≈6000", m.Uops)
	}
	if m.Cycles <= 0 {
		t.Error("non-positive post-warmup cycles")
	}
}

func TestWarmupImprovesApparentIPC(t *testing.T) {
	tr := warmupTrace(t)

	cold, err := NewCore(DefaultConfig(2), &steer.OP{}, tr)
	if err != nil {
		t.Fatal(err)
	}
	mCold, err := cold.Run()
	if err != nil {
		t.Fatal(err)
	}

	cfg := DefaultConfig(2)
	cfg.WarmupUops = 5000
	warm, err := NewCore(cfg, &steer.OP{}, tr)
	if err != nil {
		t.Fatal(err)
	}
	mWarm, err := warm.Run()
	if err != nil {
		t.Fatal(err)
	}
	// The measured window excludes cold caches/predictor, so IPC must not
	// be worse (on this cache-friendly workload it is strictly better).
	if mWarm.IPC() < mCold.IPC() {
		t.Errorf("warm IPC %.3f < cold IPC %.3f", mWarm.IPC(), mCold.IPC())
	}
}

func TestWarmupCountersNonNegative(t *testing.T) {
	tr := warmupTrace(t)
	cfg := DefaultConfig(2)
	cfg.WarmupUops = 9000
	core, err := NewCore(cfg, steer.NewVC(2), tr)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.Cycles < 0 || m.Uops < 0 || m.Copies < 0 || m.AllocStallCycles < 0 ||
		m.Branches < 0 || m.Mispredicts < 0 {
		t.Errorf("negative counters after warmup subtraction: %+v", m)
	}
	if m.L1Hits > 1<<62 || m.LinkTransfers > 1<<62 {
		t.Errorf("unsigned counter underflow: %+v", m)
	}
}

func TestZeroWarmupUnchanged(t *testing.T) {
	tr := warmupTrace(t)
	a, _ := NewCore(DefaultConfig(2), &steer.OP{}, tr)
	ma, err := a.Run()
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(2)
	cfg.WarmupUops = 0
	b, _ := NewCore(cfg, &steer.OP{}, tr)
	mb, err := b.Run()
	if err != nil {
		t.Fatal(err)
	}
	if ma.Cycles != mb.Cycles || ma.Uops != mb.Uops {
		t.Errorf("zero warmup changed results: %d/%d vs %d/%d",
			ma.Cycles, ma.Uops, mb.Cycles, mb.Uops)
	}
}
