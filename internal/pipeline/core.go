package pipeline

import (
	"fmt"

	"clustersim/internal/cache"
	"clustersim/internal/cluster"
	"clustersim/internal/interconnect"
	"clustersim/internal/stats"
	"clustersim/internal/steer"
	"clustersim/internal/trace"
	"clustersim/internal/uarch"
)

// initialValue is the sequence number denoting an architectural initial
// value: ready in every cluster, occupying no physical register.
const initialValue int64 = -1

// uopState is the in-flight state of one dynamic micro-op. States live in a
// ring buffer indexed by seq mod window, so the struct carries its own seq
// and liveness to disambiguate slot reuse.
type uopState struct {
	seq     int64
	u       *trace.Uop
	cluster int

	live      bool
	completed bool
	// mispredicted marks a conditional branch whose prediction was wrong;
	// its completion releases the fetch stall.
	mispredicted bool
	// prevValue is the value the destination register held before this op
	// (freed when this op commits).
	prevValue int64
	// srcValues are the operand value tags consumed (for store-data
	// bookkeeping and debugging).
	srcValues [2]int64
}

// valueState tracks one produced register value across clusters. Values
// normally live in a ring window indexed by seq; the rare value that
// outlives the window (a register not overwritten for a whole window of
// dispatches) is evicted to an overflow map.
type valueState struct {
	seq  int64
	reg  uarch.Reg
	home int
	live bool
	// locMask marks clusters where the value is or will become available
	// (home plus any copy destinations, pending or arrived).
	locMask uint32
	// readyMask marks clusters where the value is readable now.
	readyMask uint32
	// allocMask marks clusters where a physical register is held.
	allocMask uint32
	// produced reports execution of the producer has finished.
	produced bool
}

// event is a scheduled micro-architectural occurrence.
type event struct {
	kind eventKind
	seq  int64
	aux  int // copy destination cluster
}

type eventKind uint8

const (
	evComplete   eventKind = iota // execution finishes
	evAgen                        // load/store address generated
	evMemTry                      // load retries disambiguation/cache access
	evCopyArrive                  // copy lands in destination cluster
	evStoreData                   // store waits for its data operand
)

// fetchSlot is one frontend-pipe entry.
type fetchSlot struct {
	seq     int64
	u       *trace.Uop
	readyAt int64
	// mispred marks a conditional branch the predictor got wrong.
	mispred bool
	// steered caches a sticky steering decision across dispatch retries so
	// policy state is not perturbed by resource stalls.
	steered bool
	cluster int
}

// plannedCopy is one operand copy the dispatch stage intends to insert: the
// value, its home cluster, and the architectural register (for free-list
// accounting in the target cluster).
type plannedCopy struct {
	vseq int64
	home int
	reg  uarch.Reg
}

// eventWheelStats counts event-wheel activity; the bounded-memory
// regression test reads it, and it is cheap enough to keep always on.
type eventWheelStats struct {
	// scheduled counts all scheduled events; overflowed counts the subset
	// that landed beyond the wheel horizon (far-future overflow bucket).
	scheduled, overflowed int64
}

// Core is one simulated machine instance. It is single-goroutine; run many
// cores in parallel for experiment sweeps.
//
// The per-cycle working set is held in dense, index-addressed structures so
// the steady-state loop allocates nothing: in-flight micro-op state lives
// in a ring indexed by seq mod window (in-order dispatch and commit keep
// the live range within ROB size), value state in a larger ring with a
// small overflow map for values that outlive it, scheduled events in a
// fixed-horizon wheel of reusable slices, and the ROB itself is just the
// contiguous live seq range [robHead, robHead+robLen).
type Core struct {
	cfg    Config
	policy steer.Policy
	tr     *trace.Trace
	// shape is cfg.Shape() frozen at construction: the structural
	// fingerprint every Reset config must match, since ring and wheel
	// sizes were derived from it.
	shape Config

	cycle     int64
	nextFetch int
	nextSeq   int64

	// fetchPipe is a ring of fetched-but-not-dispatched micro-ops, bounded
	// by fetchCap (width × depth + steer backlog).
	fetchPipe []fetchSlot
	fetchMask int64
	fetchHead int64
	fetchLen  int
	fetchCap  int
	// fetchStalled marks fetch frozen on an unresolved misprediction.
	fetchStalled bool

	// uops is the in-flight micro-op window: a ring indexed by seq&uopMask.
	// Dispatch and commit are both in program order, so the live entries
	// are exactly the ROB contents — seqs [robHead, robHead+robLen).
	uops    []uopState
	uopMask int64
	robHead int64
	robLen  int

	regVal [uarch.NumRegs]int64
	// values is the value window ring indexed by seq&valMask; valOverflow
	// holds the rare values still live when their slot is reclaimed.
	values      []valueState
	valMask     int64
	valOverflow map[int64]*valueState

	clusters []*cluster.Cluster
	net      *interconnect.Network
	lsq      *cache.LSQ
	mem      *cache.Hierarchy
	bp       *gshare

	// wheel is the event wheel: wheel[cycle&wheelMask] holds the events due
	// that cycle, with backing arrays reused after draining. Events beyond
	// the horizon go to the evOverflow bucket (evOverflowLen counts them so
	// the per-cycle check is a plain integer compare).
	wheel         [][]event
	wheelMask     int64
	evOverflow    map[int64][]event
	evOverflowLen int
	evStats       eventWheelStats

	// planCopies, unready and copyTags are dispatch-stage scratch buffers,
	// reused across cycles so steering/dispatch never allocates.
	planCopies []plannedCopy
	unready    []int64
	copyTags   []int64

	// copyInserted records copy-queue insertion cycles for the optional
	// copy-latency histogram (nil unless TrackHistograms).
	copyInserted map[copyKey]int64

	committed int64
	m         Metrics
}

// copyKey identifies an in-flight copy: the value and its destination.
type copyKey struct {
	seq int64
	dst int
}

// nextPow2 returns the smallest power of two ≥ n (and ≥ 1).
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// maxWheelHorizon caps the event wheel's slot count. It is a variable
// only so tests can raise it to run an overflow-free control of the same
// configuration; simulation code treats it as a constant.
var maxWheelHorizon = 4096

// wheelHorizon sizes the event wheel to cover every latency the machine
// can schedule in one hop — the memory hierarchy's worst case (L2 miss to
// DRAM) dominates. Anything beyond (e.g. an ablation with an extreme
// memory latency) falls into the overflow bucket, which is correct but
// slower, so the horizon errs generously — while staying capped so an
// extreme configuration costs overflow lookups instead of memory.
func wheelHorizon(cfg *Config) int {
	worst := cfg.Mem.L1.HitLatency + cfg.Mem.L2.HitLatency + cfg.Mem.MemLatency
	if net := cfg.Net.Latency * cfg.NumClusters; net > worst {
		worst = net
	}
	h := nextPow2(worst + 2)
	if h < 64 {
		h = 64
	}
	if h > maxWheelHorizon {
		h = maxWheelHorizon
	}
	return h
}

// NewCore builds a machine for the given trace and policy.
func NewCore(cfg Config, pol steer.Policy, tr *trace.Trace) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.MaxCycles == 0 {
		cfg.MaxCycles = 200_000_000
	}
	net, err := interconnect.New(cfg.Net)
	if err != nil {
		return nil, err
	}
	mem, err := cache.NewHierarchy(cfg.Mem)
	if err != nil {
		return nil, err
	}
	fetchCap := cfg.FetchWidth * (cfg.FetchToDispatch + 4)
	c := &Core{
		cfg:       cfg,
		policy:    pol,
		tr:        tr,
		shape:     cfg.Shape(),
		fetchPipe: make([]fetchSlot, nextPow2(fetchCap)),
		fetchCap:  fetchCap,
		uops:      make([]uopState, nextPow2(cfg.ROBSize)),
		values:    make([]valueState, nextPow2(2*cfg.ROBSize)),
		wheel:     make([][]event, wheelHorizon(&cfg)),
		net:       net,
		lsq:       cache.NewLSQ(cfg.LSQSize),
		mem:       mem,
		bp:        newGShare(cfg.BPredBits),
	}
	c.fetchMask = int64(len(c.fetchPipe) - 1)
	c.uopMask = int64(len(c.uops) - 1)
	c.valMask = int64(len(c.values) - 1)
	c.wheelMask = int64(len(c.wheel) - 1)
	// Seed every wheel slot with a small chunk of one flat backing array:
	// the average cycle carries a handful of events, so most slots never
	// regrow and per-run warm-up allocation stays O(1) instead of O(slots).
	const slotSeedCap = 8
	backing := make([]event, slotSeedCap*len(c.wheel))
	for i := range c.wheel {
		c.wheel[i] = backing[i*slotSeedCap : i*slotSeedCap : (i+1)*slotSeedCap]
	}
	for i := 0; i < cfg.NumClusters; i++ {
		c.clusters = append(c.clusters, cluster.New(i, cfg.Cluster))
	}
	for r := range c.regVal {
		c.regVal[r] = initialValue
	}
	c.m.PerCluster = make([]ClusterMetrics, cfg.NumClusters)
	if cfg.TrackHistograms {
		c.m.Histograms = &OccupancyHistograms{
			ROB:         stats.NewHistogram(cfg.ROBSize),
			IntIQ:       stats.NewHistogram(cfg.Cluster.IQInt),
			FPIQ:        stats.NewHistogram(cfg.Cluster.IQFP),
			CopyQ:       stats.NewHistogram(cfg.Cluster.IQCopy),
			CopyLatency: stats.NewHistogram(128),
		}
		c.copyInserted = make(map[copyKey]int64)
	}
	pol.Reset()
	return c, nil
}

// --- windowed state access -------------------------------------------------

// uop returns the in-flight state for seq, or nil if it already committed.
func (c *Core) uop(seq int64) *uopState {
	st := &c.uops[seq&c.uopMask]
	if st.live && st.seq == seq {
		return st
	}
	return nil
}

// robHeadState returns the oldest in-flight micro-op (ROB head).
func (c *Core) robHeadState() *uopState {
	return &c.uops[c.robHead&c.uopMask]
}

// value returns the live value state for seq, or nil if it was freed. The
// ring slot is the hot path; the overflow map holds only values that
// outlived the window.
func (c *Core) value(seq int64) *valueState {
	v := &c.values[seq&c.valMask]
	if v.live && v.seq == seq {
		return v
	}
	if c.valOverflow != nil {
		if ov, ok := c.valOverflow[seq]; ok {
			return ov
		}
	}
	return nil
}

// newValue claims the window slot for seq. A slot still occupied by a live
// out-of-window value (its register was not overwritten for a whole window
// of dispatches) evicts that value to the overflow map first.
func (c *Core) newValue(seq int64, reg uarch.Reg, home int) *valueState {
	v := &c.values[seq&c.valMask]
	if v.live {
		if c.valOverflow == nil {
			c.valOverflow = make(map[int64]*valueState)
		}
		old := *v
		c.valOverflow[old.seq] = &old
	}
	*v = valueState{
		seq: seq, reg: reg, home: home, live: true,
		locMask: 1 << uint(home), allocMask: 1 << uint(home),
	}
	return v
}

// --- steering context ------------------------------------------------------

// steerCtx adapts the core to the steer.Context interface.
type steerCtx struct{ c *Core }

// NumClusters implements steer.Context.
func (s steerCtx) NumClusters() int { return s.c.cfg.NumClusters }

// Occupancy implements steer.Context.
func (s steerCtx) Occupancy(ci int) int { return s.c.clusters[ci].Occupancy() }

// InFlight implements steer.Context.
func (s steerCtx) InFlight(ci int) int { return s.c.clusters[ci].InFlight }

// HasSpace implements steer.Context.
func (s steerCtx) HasSpace(ci int, class uarch.Class) bool {
	return !s.c.clusters[ci].QueueFor(class).Full()
}

// ValueClusters implements steer.Context.
func (s steerCtx) ValueClusters(r uarch.Reg) uint32 {
	seq := s.c.regVal[r]
	if seq == initialValue {
		return (1 << uint(s.c.cfg.NumClusters)) - 1
	}
	if v := s.c.value(seq); v != nil {
		return v.locMask
	}
	return (1 << uint(s.c.cfg.NumClusters)) - 1
}

// --- value helpers ---------------------------------------------------------

// valueReadyIn marks value seq readable in cluster ci and wakes its waiters.
func (c *Core) valueReadyIn(seq int64, ci int) {
	v := c.value(seq)
	if v == nil {
		panic(fmt.Sprintf("pipeline: ready for dead value %d", seq))
	}
	bit := uint32(1) << uint(ci)
	if v.readyMask&bit != 0 {
		return
	}
	v.readyMask |= bit
	cl := c.clusters[ci]
	cl.IntQ.Wakeup(seq)
	cl.FPQ.Wakeup(seq)
	cl.CopyQ.Wakeup(seq)
}

// valueIsReadyIn reports whether the operand value is readable in cluster ci.
func (c *Core) valueIsReadyIn(seq int64, ci int) bool {
	if seq == initialValue {
		return true
	}
	v := c.value(seq)
	if v == nil {
		return true // producer already committed and freed: architecturally visible
	}
	return v.readyMask&(1<<uint(ci)) != 0
}

// freeValue releases every physical register the value holds.
func (c *Core) freeValue(seq int64) {
	if seq == initialValue {
		return
	}
	v := c.value(seq)
	if v == nil {
		return
	}
	for ci := 0; ci < c.cfg.NumClusters; ci++ {
		if v.allocMask&(1<<uint(ci)) != 0 {
			c.clusters[ci].FreeReg(v.reg)
		}
	}
	if ring := &c.values[seq&c.valMask]; ring == v {
		ring.live = false
	} else {
		delete(c.valOverflow, seq)
	}
}

// Metrics returns the accumulated metrics (valid after Run). The returned
// pointer aliases core-owned state; use the detached copy Run returns when
// the metrics must outlive a pooled Reset.
func (c *Core) Metrics() *Metrics { return &c.m }

// Shape returns the structural fingerprint the core was built for.
func (c *Core) Shape() Config { return c.shape }

// Reset rewinds the core to post-construction state for a new run with the
// given configuration, policy and trace — without reallocating rings,
// freelists, the event wheel, caches or cluster state. The configuration
// must have the same Shape the core was built with (ring and wheel sizes
// were derived from it); per-run fields (MaxCycles, WarmupUops, Cancel) may
// differ freely. A reset core produces byte-identical results to a freshly
// constructed one.
func (c *Core) Reset(cfg Config, pol steer.Policy, tr *trace.Trace) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if cfg.Shape() != c.shape {
		return fmt.Errorf("pipeline: Reset config shape differs from construction shape")
	}
	if cfg.MaxCycles == 0 {
		cfg.MaxCycles = 200_000_000
	}
	c.cfg = cfg
	c.policy = pol
	c.tr = tr

	c.cycle, c.nextFetch, c.nextSeq = 0, 0, 0
	c.fetchHead, c.fetchLen = 0, 0
	c.fetchStalled = false
	// A canceled or aborted run leaves live entries behind, and the next
	// run's seqs restart at zero — so every ring slot must be scrubbed, not
	// just the nominally-live range.
	for i := range c.fetchPipe {
		c.fetchPipe[i] = fetchSlot{}
	}
	for i := range c.uops {
		c.uops[i] = uopState{}
	}
	c.robHead, c.robLen = 0, 0
	for r := range c.regVal {
		c.regVal[r] = initialValue
	}
	for i := range c.values {
		c.values[i] = valueState{}
	}
	clear(c.valOverflow)

	for _, cl := range c.clusters {
		cl.Reset()
	}
	c.net.Reset()
	c.lsq.Reset()
	c.mem.Reset()
	c.bp.reset()

	for i := range c.wheel {
		c.wheel[i] = c.wheel[i][:0]
	}
	clear(c.evOverflow)
	c.evOverflowLen = 0
	c.evStats = eventWheelStats{}

	c.planCopies = c.planCopies[:0]
	c.unready = c.unready[:0]
	c.copyTags = c.copyTags[:0]

	c.committed = 0
	// The previous run's detached metrics may still be referenced by
	// callers, so PerCluster is the one piece of metrics state the core
	// reuses: zero it in place. Histograms are per-run heap objects.
	per := c.m.PerCluster
	for i := range per {
		per[i] = ClusterMetrics{}
	}
	c.m = Metrics{PerCluster: per}
	if cfg.TrackHistograms {
		c.m.Histograms = &OccupancyHistograms{
			ROB:         stats.NewHistogram(cfg.ROBSize),
			IntIQ:       stats.NewHistogram(cfg.Cluster.IQInt),
			FPIQ:        stats.NewHistogram(cfg.Cluster.IQFP),
			CopyQ:       stats.NewHistogram(cfg.Cluster.IQCopy),
			CopyLatency: stats.NewHistogram(128),
		}
		if c.copyInserted == nil {
			c.copyInserted = make(map[copyKey]int64)
		} else {
			clear(c.copyInserted)
		}
	} else {
		c.copyInserted = nil
	}
	pol.Reset()
	return nil
}

// Release drops the references a pooled core must not pin between runs:
// the trace (often a large shared object), the policy, and the cancel
// channel. Call before parking the core in a pool.
func (c *Core) Release() {
	c.tr = nil
	c.policy = nil
	c.cfg.Cancel = nil
}
