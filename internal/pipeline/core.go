package pipeline

import (
	"fmt"

	"clustersim/internal/cache"
	"clustersim/internal/cluster"
	"clustersim/internal/interconnect"
	"clustersim/internal/stats"
	"clustersim/internal/steer"
	"clustersim/internal/trace"
	"clustersim/internal/uarch"
)

// initialValue is the sequence number denoting an architectural initial
// value: ready in every cluster, occupying no physical register.
const initialValue int64 = -1

// uopState is the in-flight state of one dynamic micro-op.
type uopState struct {
	seq     int64
	u       *trace.Uop
	cluster int

	completed bool
	// mispredicted marks a conditional branch whose prediction was wrong;
	// its completion releases the fetch stall.
	mispredicted bool
	// prevValue is the value the destination register held before this op
	// (freed when this op commits).
	prevValue int64
	// srcValues are the operand value tags consumed (for store-data
	// bookkeeping and debugging).
	srcValues [2]int64
}

// valueState tracks one produced register value across clusters.
type valueState struct {
	reg  uarch.Reg
	home int
	// locMask marks clusters where the value is or will become available
	// (home plus any copy destinations, pending or arrived).
	locMask uint32
	// readyMask marks clusters where the value is readable now.
	readyMask uint32
	// allocMask marks clusters where a physical register is held.
	allocMask uint32
	// produced reports execution of the producer has finished.
	produced bool
}

// event is a scheduled micro-architectural occurrence.
type event struct {
	kind eventKind
	seq  int64
	aux  int // copy destination cluster
}

type eventKind uint8

const (
	evComplete   eventKind = iota // execution finishes
	evAgen                        // load/store address generated
	evMemTry                      // load retries disambiguation/cache access
	evCopyArrive                  // copy lands in destination cluster
	evStoreData                   // store waits for its data operand
)

// fetchSlot is one frontend-pipe entry.
type fetchSlot struct {
	seq     int64
	u       *trace.Uop
	readyAt int64
	// mispred marks a conditional branch the predictor got wrong.
	mispred bool
	// steered caches a sticky steering decision across dispatch retries so
	// policy state is not perturbed by resource stalls.
	steered bool
	cluster int
}

// Core is one simulated machine instance. It is single-goroutine; run many
// cores in parallel for experiment sweeps.
type Core struct {
	cfg    Config
	policy steer.Policy
	tr     *trace.Trace

	cycle     int64
	nextFetch int
	nextSeq   int64

	// fetchPipe holds fetched-but-not-dispatched micro-ops (bounded by
	// width × depth + steer backlog).
	fetchPipe []fetchSlot
	// fetchStalled marks fetch frozen on an unresolved misprediction.
	fetchStalled bool

	rob      []*uopState // FIFO, head at index 0
	uops     map[int64]*uopState
	regVal   [uarch.NumRegs]int64
	values   map[int64]*valueState
	clusters []*cluster.Cluster
	net      *interconnect.Network
	lsq      *cache.LSQ
	mem      *cache.Hierarchy
	bp       *gshare

	events map[int64][]event

	// copyInserted records copy-queue insertion cycles for the optional
	// copy-latency histogram (nil unless TrackHistograms).
	copyInserted map[copyKey]int64

	committed int64
	m         Metrics
}

// copyKey identifies an in-flight copy: the value and its destination.
type copyKey struct {
	seq int64
	dst int
}

// NewCore builds a machine for the given trace and policy.
func NewCore(cfg Config, pol steer.Policy, tr *trace.Trace) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.MaxCycles == 0 {
		cfg.MaxCycles = 200_000_000
	}
	net, err := interconnect.New(cfg.Net)
	if err != nil {
		return nil, err
	}
	mem, err := cache.NewHierarchy(cfg.Mem)
	if err != nil {
		return nil, err
	}
	c := &Core{
		cfg:    cfg,
		policy: pol,
		tr:     tr,
		uops:   make(map[int64]*uopState),
		values: make(map[int64]*valueState),
		net:    net,
		lsq:    cache.NewLSQ(cfg.LSQSize),
		mem:    mem,
		bp:     newGShare(cfg.BPredBits),
		events: make(map[int64][]event),
	}
	for i := 0; i < cfg.NumClusters; i++ {
		c.clusters = append(c.clusters, cluster.New(i, cfg.Cluster))
	}
	for r := range c.regVal {
		c.regVal[r] = initialValue
	}
	c.m.PerCluster = make([]ClusterMetrics, cfg.NumClusters)
	if cfg.TrackHistograms {
		c.m.Histograms = &OccupancyHistograms{
			ROB:         stats.NewHistogram(cfg.ROBSize),
			IntIQ:       stats.NewHistogram(cfg.Cluster.IQInt),
			FPIQ:        stats.NewHistogram(cfg.Cluster.IQFP),
			CopyQ:       stats.NewHistogram(cfg.Cluster.IQCopy),
			CopyLatency: stats.NewHistogram(128),
		}
		c.copyInserted = make(map[copyKey]int64)
	}
	pol.Reset()
	return c, nil
}

// --- steering context ------------------------------------------------------

// steerCtx adapts the core to the steer.Context interface.
type steerCtx struct{ c *Core }

// NumClusters implements steer.Context.
func (s steerCtx) NumClusters() int { return s.c.cfg.NumClusters }

// Occupancy implements steer.Context.
func (s steerCtx) Occupancy(ci int) int { return s.c.clusters[ci].Occupancy() }

// InFlight implements steer.Context.
func (s steerCtx) InFlight(ci int) int { return s.c.clusters[ci].InFlight }

// HasSpace implements steer.Context.
func (s steerCtx) HasSpace(ci int, class uarch.Class) bool {
	return !s.c.clusters[ci].QueueFor(class).Full()
}

// ValueClusters implements steer.Context.
func (s steerCtx) ValueClusters(r uarch.Reg) uint32 {
	seq := s.c.regVal[r]
	if seq == initialValue {
		return (1 << uint(s.c.cfg.NumClusters)) - 1
	}
	if v, ok := s.c.values[seq]; ok {
		return v.locMask
	}
	return (1 << uint(s.c.cfg.NumClusters)) - 1
}

// --- value helpers ---------------------------------------------------------

// valueReadyIn marks value seq readable in cluster ci and wakes its waiters.
func (c *Core) valueReadyIn(seq int64, ci int) {
	v := c.values[seq]
	if v == nil {
		panic(fmt.Sprintf("pipeline: ready for dead value %d", seq))
	}
	bit := uint32(1) << uint(ci)
	if v.readyMask&bit != 0 {
		return
	}
	v.readyMask |= bit
	cl := c.clusters[ci]
	cl.IntQ.Wakeup(seq)
	cl.FPQ.Wakeup(seq)
	cl.CopyQ.Wakeup(seq)
}

// valueIsReadyIn reports whether the operand value is readable in cluster ci.
func (c *Core) valueIsReadyIn(seq int64, ci int) bool {
	if seq == initialValue {
		return true
	}
	v, ok := c.values[seq]
	if !ok {
		return true // producer already committed and freed: architecturally visible
	}
	return v.readyMask&(1<<uint(ci)) != 0
}

// freeValue releases every physical register the value holds.
func (c *Core) freeValue(seq int64) {
	if seq == initialValue {
		return
	}
	v, ok := c.values[seq]
	if !ok {
		return
	}
	for ci := 0; ci < c.cfg.NumClusters; ci++ {
		if v.allocMask&(1<<uint(ci)) != 0 {
			c.clusters[ci].FreeReg(v.reg)
		}
	}
	delete(c.values, seq)
}

// Metrics returns the accumulated metrics (valid after Run).
func (c *Core) Metrics() *Metrics { return &c.m }
