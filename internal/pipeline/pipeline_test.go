package pipeline

import (
	"testing"
	"testing/quick"

	"clustersim/internal/interconnect"
	"clustersim/internal/partition"
	"clustersim/internal/prog"
	"clustersim/internal/steer"
	"clustersim/internal/trace"
	"clustersim/internal/uarch"
)

// cfgN returns a default config for n clusters.
func cfgN(n int) Config { return DefaultConfig(n) }

// run builds a core and runs it, failing the test on error.
func run(t *testing.T, cfg Config, pol steer.Policy, tr *trace.Trace) *Metrics {
	t.Helper()
	core, err := NewCore(cfg, pol, tr)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.Run()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// chainProgram: one block with a single serial dependence chain.
func chainProgram() *prog.Program {
	b := prog.NewBuilder("chain")
	b.Int(uarch.OpAdd, uarch.IntReg(1), uarch.IntReg(1), uarch.IntReg(1))
	return b.MustBuild()
}

// ilpProgram: w independent chains round-robined in one block.
func ilpProgram(w int) *prog.Program {
	b := prog.NewBuilder("ilp")
	for i := 0; i < w; i++ {
		r := uarch.IntReg(1 + i)
		b.Int(uarch.OpAdd, r, r, r)
	}
	return b.MustBuild()
}

func TestSerialChainOneIPCBound(t *testing.T) {
	p := chainProgram()
	tr := trace.Expand(p, trace.Options{NumUops: 2000, Seed: 1})
	cfg := cfgN(1)
	cfg.Net = interconnect.DefaultConfig(1)
	m := run(t, cfg, &steer.OneCluster{}, tr)
	if m.Uops != 2000 {
		t.Fatalf("committed %d, want 2000", m.Uops)
	}
	// A serial chain of 1-cycle adds cannot beat 1 IPC and should be close
	// to it (pipeline fill is the only overhead).
	if m.Cycles < 2000 {
		t.Errorf("cycles = %d, impossible (< chain length)", m.Cycles)
	}
	if m.Cycles > 2100 {
		t.Errorf("cycles = %d, want ≈2000 (serial chain at 1 IPC)", m.Cycles)
	}
}

func TestILPReachesIssueWidth(t *testing.T) {
	p := ilpProgram(8)
	tr := trace.Expand(p, trace.Options{NumUops: 4000, Seed: 1})
	cfg := cfgN(1)
	cfg.Net = interconnect.DefaultConfig(1)
	m := run(t, cfg, &steer.OneCluster{}, tr)
	// Single cluster: 2 INT issue/cycle is the bound.
	if ipc := m.IPC(); ipc < 1.8 || ipc > 2.05 {
		t.Errorf("IPC = %.3f, want ≈2 (cluster issue width)", ipc)
	}
}

func TestTwoClustersDoubleThroughput(t *testing.T) {
	p := ilpProgram(8)
	tr := trace.Expand(p, trace.Options{NumUops: 8000, Seed: 1})
	m := run(t, cfgN(2), &steer.ModN{}, tr)
	// Independent chains: mod-2 steering splits them with no copies needed
	// after the first iteration... copies only when a chain's value crosses.
	// With 8 chains round-robined over 2 clusters, chain i alternates
	// clusters, generating copies but still roughly doubling issue width.
	if ipc := m.IPC(); ipc < 3.0 {
		t.Errorf("IPC = %.3f, want ≥3 with two clusters", ipc)
	}
}

func TestOneClusterPolicyZeroCopies(t *testing.T) {
	p := ilpProgram(4)
	tr := trace.Expand(p, trace.Options{NumUops: 3000, Seed: 2})
	m := run(t, cfgN(2), &steer.OneCluster{}, tr)
	if m.Copies != 0 {
		t.Errorf("one-cluster steering generated %d copies, want 0", m.Copies)
	}
	if m.PerCluster[1].Dispatched != 0 {
		t.Errorf("cluster 1 received %d uops under one-cluster", m.PerCluster[1].Dispatched)
	}
}

func TestModNGeneratesCopies(t *testing.T) {
	p := chainProgram() // serial chain: every other uop needs the value across
	tr := trace.Expand(p, trace.Options{NumUops: 1000, Seed: 2})
	m := run(t, cfgN(2), &steer.ModN{}, tr)
	if m.Copies == 0 {
		t.Error("round-robin on a serial chain must generate copies")
	}
	if m.LinkTransfers == 0 {
		t.Error("copies must traverse the interconnect")
	}
}

func TestOPKeepsChainTogether(t *testing.T) {
	p := chainProgram()
	tr := trace.Expand(p, trace.Options{NumUops: 1000, Seed: 2})
	m := run(t, cfgN(2), &steer.OP{}, tr)
	// Dependence steering keeps the chain in one cluster until its issue
	// queue fills, then migrates it once (one copy per migration): far
	// fewer copies than one per uop.
	if rate := m.CopiesPerKuop(); rate > 50 {
		t.Errorf("OP copies/kuop = %.1f on a serial chain, want < 50", rate)
	}
	mMod := run(t, cfgN(2), &steer.ModN{}, tr)
	if m.Copies >= mMod.Copies {
		t.Errorf("OP copies (%d) should be far below round-robin (%d)", m.Copies, mMod.Copies)
	}
}

func TestCommittedEqualsTrace(t *testing.T) {
	p := ilpProgram(3)
	tr := trace.Expand(p, trace.Options{NumUops: 2500, Seed: 3})
	for _, pol := range []steer.Policy{&steer.OP{}, &steer.OneCluster{}, &steer.ModN{}} {
		m := run(t, cfgN(2), pol, tr)
		if m.Uops != int64(len(tr.Uops)) {
			t.Errorf("%s: committed %d, want %d", pol.Name(), m.Uops, len(tr.Uops))
		}
	}
}

func TestDeterministicCycles(t *testing.T) {
	p := ilpProgram(4)
	tr := trace.Expand(p, trace.Options{NumUops: 2000, Seed: 4})
	m1 := run(t, cfgN(2), &steer.OP{}, tr)
	m2 := run(t, cfgN(2), &steer.OP{}, tr)
	if m1.Cycles != m2.Cycles || m1.Copies != m2.Copies {
		t.Errorf("nondeterministic: cycles %d vs %d, copies %d vs %d",
			m1.Cycles, m2.Cycles, m1.Copies, m2.Copies)
	}
}

// branchProgram: a loop with a given bias.
func branchProgram(bias float64) *prog.Program {
	b := prog.NewBuilder("br")
	b.Int(uarch.OpAdd, uarch.IntReg(1), uarch.IntReg(1), uarch.IntReg(1))
	b.Branch(uarch.IntReg(1), 0.5, bias)
	other := b.NewBlock()
	b.Int(uarch.OpAdd, uarch.IntReg(2), uarch.IntReg(2), uarch.IntReg(2))
	b.Block(0).Edge(0, 0.5).Edge(other, 0.5)
	b.Block(other).Jump(0)
	return b.MustBuild()
}

func TestBranchMispredictionCostsCycles(t *testing.T) {
	good := trace.Expand(branchProgram(1.0), trace.Options{NumUops: 4000, Seed: 5})
	bad := trace.Expand(branchProgram(0.0), trace.Options{NumUops: 4000, Seed: 5})
	mGood := run(t, cfgN(2), &steer.OP{}, good)
	mBad := run(t, cfgN(2), &steer.OP{}, bad)
	if mBad.MispredictRate() < mGood.MispredictRate() {
		t.Errorf("random branches (%f) should mispredict more than periodic (%f)",
			mBad.MispredictRate(), mGood.MispredictRate())
	}
	if mBad.Cycles <= mGood.Cycles {
		t.Errorf("mispredictions should cost cycles: %d vs %d", mBad.Cycles, mGood.Cycles)
	}
	if mBad.FetchStallCycles == 0 {
		t.Error("mispredictions should stall fetch")
	}
}

// memProgram: strided loads from a working set of the given size.
func memProgram(ws int) *prog.Program {
	b := prog.NewBuilder("mem")
	b.Load(uarch.IntReg(1), uarch.IntReg(0),
		prog.MemRef{Pattern: prog.MemStride, Stream: 0, StrideBytes: 64, WorkingSet: ws})
	b.Int(uarch.OpAdd, uarch.IntReg(2), uarch.IntReg(1), uarch.IntReg(2))
	return b.MustBuild()
}

func TestCachePressureCostsCycles(t *testing.T) {
	small := trace.Expand(memProgram(8<<10), trace.Options{NumUops: 4000, Seed: 6})
	big := trace.Expand(memProgram(8<<20), trace.Options{NumUops: 4000, Seed: 6})
	mSmall := run(t, cfgN(2), &steer.OP{}, small)
	mBig := run(t, cfgN(2), &steer.OP{}, big)
	if mBig.Cycles <= mSmall.Cycles {
		t.Errorf("large working set should be slower: %d vs %d", mBig.Cycles, mSmall.Cycles)
	}
	if mBig.MemAccesses == 0 {
		t.Error("8MB working set should miss to memory")
	}
	if mSmall.MemAccesses > mBig.MemAccesses {
		t.Error("small working set should miss less")
	}
}

func TestStoreLoadForwardingInPipeline(t *testing.T) {
	b := prog.NewBuilder("fwd")
	mem := prog.MemRef{Pattern: prog.MemStack, Stream: 0, WorkingSet: 64}
	b.Store(uarch.IntReg(1), uarch.IntReg(0), mem)
	b.Load(uarch.IntReg(2), uarch.IntReg(0), mem)
	p := b.MustBuild()
	tr := trace.Expand(p, trace.Options{NumUops: 1000, Seed: 7})
	m := run(t, cfgN(2), &steer.OP{}, tr)
	if m.LSQForwards == 0 {
		t.Error("store→load same tiny region should forward at least once")
	}
}

// annotatedVCTrace builds a VC-annotated trace of two independent chains.
func annotatedVCTrace(numVC, uops int) *trace.Trace {
	b := prog.NewBuilder("vcprog")
	for i := 0; i < 8; i++ {
		r := uarch.IntReg(1 + i%4)
		b.Int(uarch.OpAdd, r, r, r)
	}
	p := b.MustBuild()
	partition.AnnotateVC(p, partition.Options{NumVC: numVC})
	return trace.Expand(p, trace.Options{NumUops: uops, Seed: 8})
}

func TestVCPolicyEndToEnd(t *testing.T) {
	tr := annotatedVCTrace(2, 4000)
	m := run(t, cfgN(2), steer.NewVC(2), tr)
	if m.Uops != 4000 {
		t.Fatalf("committed %d, want 4000", m.Uops)
	}
	// Both clusters should see work (leaders rebalance).
	if m.PerCluster[0].Dispatched == 0 || m.PerCluster[1].Dispatched == 0 {
		t.Errorf("VC left a cluster idle: %+v", m.PerCluster)
	}
}

func TestStaticPolicyEndToEnd(t *testing.T) {
	b := prog.NewBuilder("rhopprog")
	for i := 0; i < 8; i++ {
		r := uarch.IntReg(1 + i%4)
		b.Int(uarch.OpAdd, r, r, r)
	}
	p := b.MustBuild()
	partition.AnnotateRHOP(p, partition.Options{NumClusters: 2})
	tr := trace.Expand(p, trace.Options{NumUops: 4000, Seed: 9})
	m := run(t, cfgN(2), &steer.Static{Label: "RHOP"}, tr)
	if m.Uops != 4000 {
		t.Fatalf("committed %d, want 4000", m.Uops)
	}
}

func TestWorkloadImbalanceMetric(t *testing.T) {
	p := ilpProgram(8)
	tr := trace.Expand(p, trace.Options{NumUops: 4000, Seed: 10})
	mOne := run(t, cfgN(2), &steer.OneCluster{}, tr)
	mMod := run(t, cfgN(2), &steer.ModN{}, tr)
	if mOne.WorkloadImbalance() <= mMod.WorkloadImbalance() {
		t.Errorf("one-cluster imbalance (%.3f) should exceed round-robin (%.3f)",
			mOne.WorkloadImbalance(), mMod.WorkloadImbalance())
	}
}

func TestOneClusterSlowerOnILP(t *testing.T) {
	p := ilpProgram(8)
	tr := trace.Expand(p, trace.Options{NumUops: 6000, Seed: 11})
	mOne := run(t, cfgN(2), &steer.OneCluster{}, tr)
	mOP := run(t, cfgN(2), &steer.OP{}, tr)
	if mOne.Cycles <= mOP.Cycles {
		t.Errorf("one-cluster (%d cycles) should lose to OP (%d) on ILP-rich code",
			mOne.Cycles, mOP.Cycles)
	}
}

func TestFourClusterConfigRuns(t *testing.T) {
	p := ilpProgram(12)
	tr := trace.Expand(p, trace.Options{NumUops: 6000, Seed: 12})
	m := run(t, cfgN(4), &steer.OP{}, tr)
	if m.Uops != 6000 {
		t.Fatalf("committed %d, want 6000", m.Uops)
	}
	busy := 0
	for _, pc := range m.PerCluster {
		if pc.Dispatched > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Errorf("only %d clusters busy on 12 independent chains", busy)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := DefaultConfig(2)
	bad.Net = interconnect.DefaultConfig(3) // mismatch
	if _, err := NewCore(bad, &steer.OP{}, &trace.Trace{}); err == nil {
		t.Error("expected error for cluster/network mismatch")
	}
	bad2 := DefaultConfig(0)
	if err := bad2.Validate(); err == nil {
		t.Error("expected error for zero clusters")
	}
}

// Property: for arbitrary ILP widths and seeds, every run commits exactly
// the trace length, never exceeds dispatch-width IPC, and copies appear
// only with more than one cluster.
func TestPipelineInvariantsProperty(t *testing.T) {
	p := ilpProgram(5)
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%500 + 100
		tr := trace.Expand(p, trace.Options{NumUops: n, Seed: seed})
		core, err := NewCore(cfgN(2), &steer.OP{}, tr)
		if err != nil {
			return false
		}
		m, err := core.Run()
		if err != nil {
			return false
		}
		if m.Uops != int64(n) {
			return false
		}
		if m.IPC() > float64(cfgN(2).SteerWidth) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestGShareLearnsPeriodicPattern(t *testing.T) {
	g := newGShare(10)
	// Pattern: taken 3, not-taken 1, repeating — gshare with history must
	// exceed 90% after warmup.
	correct, total := 0, 0
	for i := 0; i < 4000; i++ {
		taken := i%4 != 3
		pred := g.predictAndUpdate(77, taken)
		if i > 400 {
			total++
			if pred == taken {
				correct++
			}
		}
	}
	if acc := float64(correct) / float64(total); acc < 0.9 {
		t.Errorf("gshare accuracy on periodic pattern = %.3f, want > 0.9", acc)
	}
}
