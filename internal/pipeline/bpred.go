package pipeline

// gshare is the branch predictor: a table of 2-bit saturating counters
// indexed by PC XOR global history. The paper does not specify its
// predictor; gshare is the standard choice of the era, and the misprediction
// penalty is modeled as a fetch stall until the branch resolves plus the
// frontend refill implied by the fetch-to-dispatch depth.
type gshare struct {
	bits    uint
	mask    uint32
	table   []uint8
	history uint32
}

func newGShare(bits int) *gshare {
	g := &gshare{bits: uint(bits), mask: (1 << uint(bits)) - 1}
	g.table = make([]uint8, 1<<uint(bits))
	// Initialize to weakly taken: loop backedges predict well immediately.
	for i := range g.table {
		g.table[i] = 2
	}
	return g
}

// reset restores the freshly-constructed predictor state in place.
func (g *gshare) reset() {
	for i := range g.table {
		g.table[i] = 2
	}
	g.history = 0
}

func (g *gshare) index(pc uint32) uint32 {
	return (pc ^ g.history) & g.mask
}

// predictAndUpdate returns the prediction for pc and trains the counter and
// history with the actual outcome. Trace-driven fetch resolves both at
// fetch time; the timing cost of a wrong prediction is applied by the core.
func (g *gshare) predictAndUpdate(pc uint32, taken bool) (predicted bool) {
	idx := g.index(pc)
	ctr := g.table[idx]
	predicted = ctr >= 2
	if taken {
		if ctr < 3 {
			g.table[idx] = ctr + 1
		}
	} else if ctr > 0 {
		g.table[idx] = ctr - 1
	}
	g.history = ((g.history << 1) | b2u(taken)) & g.mask
	return predicted
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}
