package pipeline

import (
	"testing"

	"clustersim/internal/prog"
	"clustersim/internal/steer"
	"clustersim/internal/trace"
	"clustersim/internal/uarch"
)

// TestCopyQueueStall shrinks the copy queue to force StallCopyQ: a serial
// chain round-robined across clusters needs one copy per micro-op, and a
// 2-entry copy queue cannot keep up with 6-wide dispatch.
func TestCopyQueueStall(t *testing.T) {
	b := prog.NewBuilder("chain")
	b.Int(uarch.OpAdd, uarch.IntReg(1), uarch.IntReg(1), uarch.IntReg(1))
	p := b.MustBuild()
	tr := trace.Expand(p, trace.Options{NumUops: 2000, Seed: 1})

	cfg := DefaultConfig(2)
	cfg.Cluster.IQCopy = 2
	core, err := NewCore(cfg, &steer.ModN{}, tr)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.StallCycles[StallCopyQ] == 0 {
		t.Error("expected copy-queue stalls with a 2-entry copy queue")
	}
	if m.Uops != 2000 {
		t.Errorf("committed %d", m.Uops)
	}
}

// TestRegfileStall shrinks the register files so dispatch hits StallRegs
// but the machine still completes (registers recycle at commit).
func TestRegfileStall(t *testing.T) {
	b := prog.NewBuilder("wide")
	for i := 0; i < 8; i++ {
		r := uarch.IntReg(1 + i)
		b.Int(uarch.OpAdd, r, r, uarch.IntReg(0))
	}
	p := b.MustBuild()
	tr := trace.Expand(p, trace.Options{NumUops: 3000, Seed: 1})

	cfg := DefaultConfig(2)
	cfg.Cluster.IntRegs = 24 // far below ROB depth
	core, err := NewCore(cfg, &steer.OneCluster{}, tr)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.StallCycles[StallRegs] == 0 {
		t.Error("expected register-file stalls with 24 registers")
	}
	if m.Uops != 3000 {
		t.Errorf("committed %d", m.Uops)
	}
}

// TestROBStall shrinks the ROB to force StallROB.
func TestROBStall(t *testing.T) {
	b := prog.NewBuilder("slow")
	// A long-latency divide chain backs up the ROB quickly.
	b.Int(uarch.OpDiv, uarch.IntReg(1), uarch.IntReg(1), uarch.IntReg(2))
	p := b.MustBuild()
	tr := trace.Expand(p, trace.Options{NumUops: 500, Seed: 1})

	cfg := DefaultConfig(2)
	cfg.ROBSize = 8
	core, err := NewCore(cfg, &steer.OP{}, tr)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.StallCycles[StallROB] == 0 {
		t.Error("expected ROB stalls with an 8-entry ROB")
	}
}

// TestLSQStall shrinks the LSQ to force StallLSQ on a memory-dense loop.
func TestLSQStall(t *testing.T) {
	b := prog.NewBuilder("memdense")
	mem := prog.MemRef{Pattern: prog.MemStride, Stream: 0, StrideBytes: 8, WorkingSet: 64 << 20}
	b.Load(uarch.IntReg(1), uarch.IntReg(15), mem)
	b.Load(uarch.IntReg(2), uarch.IntReg(15), mem)
	p := b.MustBuild()
	tr := trace.Expand(p, trace.Options{NumUops: 2000, Seed: 1})

	cfg := DefaultConfig(2)
	cfg.LSQSize = 4
	cfg.Mem.PrefetchDegree = 0 // let misses back the LSQ up
	core, err := NewCore(cfg, &steer.OP{}, tr)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.StallCycles[StallLSQ] == 0 {
		t.Error("expected LSQ stalls with a 4-entry LSQ")
	}
	if m.Uops != 2000 {
		t.Errorf("committed %d", m.Uops)
	}
}

// TestStoreCommitPortPressure verifies stores commit through the single L1
// write port: a store-dense trace commits but more slowly than an
// ALU-dense one of the same length.
func TestStoreCommitPortPressure(t *testing.T) {
	mem := prog.MemRef{Pattern: prog.MemStack, Stream: 0, WorkingSet: 4096}
	bs := prog.NewBuilder("stores")
	bs.Store(uarch.IntReg(0), uarch.IntReg(15), mem)
	stores := bs.MustBuild()

	ba := prog.NewBuilder("alus")
	for i := 0; i < 4; i++ {
		r := uarch.IntReg(1 + i)
		ba.Int(uarch.OpAdd, r, r, uarch.IntReg(0))
	}
	alus := ba.MustBuild()

	trS := trace.Expand(stores, trace.Options{NumUops: 3000, Seed: 1})
	trA := trace.Expand(alus, trace.Options{NumUops: 3000, Seed: 1})
	coreS, _ := NewCore(DefaultConfig(2), &steer.OP{}, trS)
	mS, err := coreS.Run()
	if err != nil {
		t.Fatal(err)
	}
	coreA, _ := NewCore(DefaultConfig(2), &steer.OP{}, trA)
	mA, err := coreA.Run()
	if err != nil {
		t.Fatal(err)
	}
	// 1 write port bounds store commit at 1/cycle; ALU commit at 6/cycle.
	if mS.Cycles <= mA.Cycles {
		t.Errorf("all-store trace (%d cycles) should be slower than all-ALU (%d): write port bound",
			mS.Cycles, mA.Cycles)
	}
	if mS.Cycles < 3000 {
		t.Errorf("3000 stores through 1 write port need ≥3000 cycles, got %d", mS.Cycles)
	}
}

// TestHistogramsTrackOccupancy exercises the optional occupancy histograms.
func TestHistogramsTrackOccupancy(t *testing.T) {
	b := prog.NewBuilder("h")
	b.Int(uarch.OpAdd, uarch.IntReg(1), uarch.IntReg(1), uarch.IntReg(1))
	p := b.MustBuild()
	tr := trace.Expand(p, trace.Options{NumUops: 1000, Seed: 1})
	cfg := DefaultConfig(2)
	cfg.TrackHistograms = true
	core, err := NewCore(cfg, &steer.OP{}, tr)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.Histograms == nil {
		t.Fatal("histograms not collected")
	}
	if m.Histograms.ROB.Count() == 0 || m.Histograms.IntIQ.Count() == 0 {
		t.Error("histograms empty")
	}
	if m.Histograms.ROB.Max() > int64(cfg.ROBSize) {
		t.Errorf("ROB histogram max %d exceeds capacity %d", m.Histograms.ROB.Max(), cfg.ROBSize)
	}
	// Disabled by default.
	core2, _ := NewCore(DefaultConfig(2), &steer.OP{}, tr)
	m2, _ := core2.Run()
	if m2.Histograms != nil {
		t.Error("histograms collected without TrackHistograms")
	}
}

// TestCopyLatencyHistogram verifies the optional copy-latency profile.
func TestCopyLatencyHistogram(t *testing.T) {
	b := prog.NewBuilder("chain")
	b.Int(uarch.OpAdd, uarch.IntReg(1), uarch.IntReg(1), uarch.IntReg(1))
	p := b.MustBuild()
	tr := trace.Expand(p, trace.Options{NumUops: 2000, Seed: 1})
	cfg := DefaultConfig(2)
	cfg.TrackHistograms = true
	core, err := NewCore(cfg, &steer.ModN{}, tr)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.Run()
	if err != nil {
		t.Fatal(err)
	}
	h := m.Histograms.CopyLatency
	if h.Count() == 0 {
		t.Fatal("no copy latencies observed despite round-robin on a chain")
	}
	// Minimum copy path: wait for value + issue + 1-cycle link ≥ 1 cycle.
	if h.Min() < 1 {
		t.Errorf("copy latency min = %d, want ≥ 1", h.Min())
	}
}
