// Package pipeline implements the clustered out-of-order core of the
// paper's Figure 1: a monolithic frontend (trace-driven fetch, gshare
// branch prediction, decode/rename/steer) feeding a clustered backend
// (per-cluster issue queues and functional units, explicit copy micro-ops
// over point-to-point links, unified LSQ and data-cache hierarchy) with a
// shared reorder buffer.
//
// The simulator is cycle-driven and trace-driven: branch outcomes and
// memory addresses come from the trace, mispredictions stall fetch until
// the branch resolves (no wrong-path execution), and every steering policy
// sees the identical micro-op stream.
//
// The cycle loop is allocation-free in steady state: in-flight micro-op
// and value state live in rings indexed by sequence number modulo a
// power-of-two window, scheduled events in a fixed-horizon event wheel,
// and the ROB/fetch pipe are head-tail rings — see Core in core.go and the
// README's Performance section for the design and its measured effect.
package pipeline

import (
	"fmt"

	"clustersim/internal/cache"
	"clustersim/internal/cluster"
	"clustersim/internal/interconnect"
)

// Config collects the machine parameters (paper Table 2).
type Config struct {
	// NumClusters is the backend cluster count.
	NumClusters int
	// FetchWidth is micro-ops fetched per cycle (6).
	FetchWidth int
	// SteerWidth is micro-ops decoded/renamed/steered per cycle (3+3).
	SteerWidth int
	// CommitWidth is micro-ops committed per cycle (3+3).
	CommitWidth int
	// FetchToDispatch is the frontend pipe depth in cycles (5).
	FetchToDispatch int
	// ROBSize is the reorder-buffer capacity (256+256).
	ROBSize int
	// LSQSize is the unified load/store queue capacity (256).
	LSQSize int
	// Cluster sizes each backend cluster.
	Cluster cluster.Config
	// Net parameterizes the inter-cluster links.
	Net interconnect.Config
	// Mem parameterizes the cache hierarchy.
	Mem cache.HierarchyConfig
	// BPredBits sizes the gshare predictor table (2^bits counters).
	BPredBits int
	// MaxCycles aborts runaway simulations; zero means 200M cycles.
	MaxCycles int64
	// WarmupUops excludes the first N committed micro-ops from the
	// reported metrics (caches, predictor and queues warm during them), a
	// standard simulation-point methodology. Zero disables warmup.
	WarmupUops int64
	// TrackHistograms enables per-cycle occupancy histograms (ROB, INT/FP
	// issue queues, copy queues) in the metrics, at a small simulation
	// cost. Off by default.
	TrackHistograms bool
	// Cancel optionally aborts a running simulation: Run polls the channel
	// every few thousand cycles and returns ErrCanceled once it is closed.
	// Nil disables cancellation.
	Cancel <-chan struct{}
}

// DefaultConfig returns the paper's 2-cluster machine; pass 4 for the
// scalability experiments of §5.4.
func DefaultConfig(numClusters int) Config {
	return Config{
		NumClusters:     numClusters,
		FetchWidth:      6,
		SteerWidth:      6,
		CommitWidth:     6,
		FetchToDispatch: 5,
		ROBSize:         512,
		LSQSize:         256,
		Cluster:         cluster.DefaultConfig(),
		Net:             interconnect.DefaultConfig(numClusters),
		Mem:             cache.DefaultHierarchyConfig(),
		BPredBits:       12,
	}
}

// Shape returns the structural fingerprint of the configuration: every
// field that determines the size of a Core's internal state, with the
// purely per-run fields (cycle budget, warmup window, histogram tracking,
// cancellation) zeroed. Two configs with equal Shapes can share a pooled
// Core via Core.Reset; Config is comparable, so the Shape can key a map
// directly.
func (c Config) Shape() Config {
	c.MaxCycles = 0
	c.WarmupUops = 0
	c.TrackHistograms = false
	c.Cancel = nil
	return c
}

// Validate checks internal consistency.
func (c Config) Validate() error {
	if c.NumClusters <= 0 || c.NumClusters > 32 {
		return fmt.Errorf("pipeline: %d clusters (1..32 supported)", c.NumClusters)
	}
	if c.FetchWidth <= 0 || c.SteerWidth <= 0 || c.CommitWidth <= 0 {
		return fmt.Errorf("pipeline: non-positive width in %+v", c)
	}
	if c.FetchToDispatch < 1 {
		return fmt.Errorf("pipeline: fetch-to-dispatch %d", c.FetchToDispatch)
	}
	if c.ROBSize <= 0 || c.LSQSize <= 0 {
		return fmt.Errorf("pipeline: non-positive ROB/LSQ in %+v", c)
	}
	if c.Net.NumClusters != c.NumClusters {
		return fmt.Errorf("pipeline: network endpoints %d != clusters %d",
			c.Net.NumClusters, c.NumClusters)
	}
	if c.BPredBits < 4 || c.BPredBits > 24 {
		return fmt.Errorf("pipeline: bpred bits %d (4..24 supported)", c.BPredBits)
	}
	return nil
}
