package pipeline

import (
	"errors"
	"fmt"

	"clustersim/internal/cache"
	"clustersim/internal/cluster"
	"clustersim/internal/steer"
	"clustersim/internal/uarch"
)

// ErrCanceled is returned by Run when Config.Cancel fires mid-simulation.
var ErrCanceled = errors.New("pipeline: run canceled")

// Run simulates the whole trace and returns the metrics. The per-cycle
// stage order is: commit (sees last cycle's completions), writeback events
// (complete execution, deliver copies, wake consumers), issue, steer +
// dispatch, fetch. This ordering gives back-to-back issue of single-cycle
// dependence chains and a one-cycle dispatch-to-issue gap.
//
// The returned Metrics is detached from the core: it stays valid (and
// immutable) after the core is Reset for its next pooled run, so result
// caches may retain it indefinitely.
func (c *Core) Run() (*Metrics, error) {
	total := int64(len(c.tr.Uops))
	lastCommit := int64(0)
	lastCommitted := int64(0)
	var warmup *Metrics
	for c.committed < total {
		if c.cfg.Cancel != nil && c.cycle&0xfff == 0 {
			select {
			case <-c.cfg.Cancel:
				return c.detachMetrics(), ErrCanceled
			default:
			}
		}
		if c.cycle >= c.cfg.MaxCycles {
			c.m.MaxCyclesExceeded = true
			return c.detachMetrics(), fmt.Errorf("pipeline: exceeded %d cycles at %d/%d uops",
				c.cfg.MaxCycles, c.committed, total)
		}
		c.commit()
		c.processEvents()
		c.issue()
		c.dispatchStage()
		c.fetch()
		c.accountOccupancy()

		if c.committed > lastCommitted {
			lastCommitted = c.committed
			lastCommit = c.cycle
		} else if c.cycle-lastCommit > 500_000 {
			return c.detachMetrics(), fmt.Errorf("pipeline: no commit for 500000 cycles at cycle %d (%d/%d uops); head=%s",
				c.cycle, c.committed, total, c.describeHead())
		}
		if warmup == nil && c.cfg.WarmupUops > 0 && c.committed >= c.cfg.WarmupUops {
			snap := c.captureCounters()
			warmup = &snap
		}
		c.cycle++
	}
	final := c.captureCounters()
	if warmup != nil {
		final = subtractCounters(final, *warmup)
	}
	final.PerCluster = c.m.PerCluster
	final.MaxCyclesExceeded = c.m.MaxCyclesExceeded
	c.m = final
	return c.detachMetrics(), nil
}

// detachMetrics copies the accumulated metrics off the core's reusable
// state: the copy and its PerCluster slice are freshly allocated, so a
// caller (or result cache) can retain them across a pooled Reset. The
// histograms pointer transfers as-is — Reset allocates fresh histograms
// rather than reusing them.
func (c *Core) detachMetrics() *Metrics {
	m := c.m
	m.PerCluster = append([]ClusterMetrics(nil), c.m.PerCluster...)
	return &m
}

// captureCounters snapshots every cumulative counter into a Metrics value
// (PerCluster excluded; it stays cumulative).
func (c *Core) captureCounters() Metrics {
	m := c.m
	m.Cycles = c.cycle
	m.Uops = c.committed
	m.LinkTransfers = c.net.Transfers
	m.LinkConflicts = c.net.Conflicts
	m.L1Hits = c.mem.L1Hits
	m.L2Hits = c.mem.L2Hits
	m.MemAccesses = c.mem.MemAccesses
	m.LSQForwards = c.lsq.ForwardHits
	m.PerCluster = nil
	return m
}

// subtractCounters returns a−b field-wise for the cumulative counters,
// yielding post-warmup metrics.
func subtractCounters(a, b Metrics) Metrics {
	out := a
	out.Cycles = a.Cycles - b.Cycles
	out.Uops = a.Uops - b.Uops
	out.Copies = a.Copies - b.Copies
	out.AllocStallCycles = a.AllocStallCycles - b.AllocStallCycles
	for i := range out.StallCycles {
		out.StallCycles[i] = a.StallCycles[i] - b.StallCycles[i]
	}
	out.FetchStallCycles = a.FetchStallCycles - b.FetchStallCycles
	out.Branches = a.Branches - b.Branches
	out.Mispredicts = a.Mispredicts - b.Mispredicts
	out.LinkTransfers = a.LinkTransfers - b.LinkTransfers
	out.LinkConflicts = a.LinkConflicts - b.LinkConflicts
	out.L1Hits = a.L1Hits - b.L1Hits
	out.L2Hits = a.L2Hits - b.L2Hits
	out.MemAccesses = a.MemAccesses - b.MemAccesses
	out.LSQForwards = a.LSQForwards - b.LSQForwards
	return out
}

// describeHead renders the ROB head for deadlock diagnostics.
func (c *Core) describeHead() string {
	if c.robLen == 0 {
		return "empty ROB"
	}
	st := c.robHeadState()
	return fmt.Sprintf("seq=%d op=%v cluster=%d completed=%v",
		st.seq, st.u.Static.Opcode, st.cluster, st.completed)
}

// schedule enqueues an event for the given cycle: into the wheel when the
// cycle is within the horizon, into the far-future overflow bucket
// otherwise. Events within one cycle drain in insertion order, and all
// overflow insertions for a cycle necessarily predate all wheel insertions
// for it (they were scheduled at least a horizon earlier), so draining
// overflow first preserves the exact order a single per-cycle list had.
func (c *Core) schedule(cycle int64, ev event) {
	c.evStats.scheduled++
	d := cycle - c.cycle
	if d <= 0 {
		// An event due the current cycle arrives after this cycle's drain
		// already ran (only possible with zero-latency configurations); the
		// old per-cycle map never processed such events either.
		return
	}
	if d > c.wheelMask {
		if c.evOverflow == nil {
			c.evOverflow = make(map[int64][]event)
		}
		c.evOverflow[cycle] = append(c.evOverflow[cycle], ev)
		c.evOverflowLen++
		c.evStats.overflowed++
		return
	}
	idx := cycle & c.wheelMask
	c.wheel[idx] = append(c.wheel[idx], ev)
}

// --- commit ----------------------------------------------------------------

func (c *Core) commit() {
	budget := c.cfg.CommitWidth
	for budget > 0 && c.robLen > 0 {
		st := c.robHeadState()
		if !st.completed {
			return
		}
		if st.u.Static.Opcode == uarch.OpStore {
			// Stores write the cache at retirement through the single L1
			// write port; port or MSHR pressure stalls commit.
			if !c.mem.L1().ReservePort(c.cycle, true) {
				return
			}
			if _, ok := c.mem.Access(c.cycle, st.u.Addr, true); !ok {
				return
			}
		}
		if st.u.IsMem() {
			c.lsq.Release(st.seq)
		}
		if st.u.Static.Dst != uarch.RegNone {
			c.freeValue(st.prevValue)
		}
		c.clusters[st.cluster].InFlight--
		st.live = false
		c.robHead++
		c.robLen--
		c.committed++
		budget--
	}
}

// --- events (writeback / copy delivery / memory progress) -------------------

func (c *Core) processEvents() {
	if c.evOverflowLen > 0 {
		if over, ok := c.evOverflow[c.cycle]; ok {
			delete(c.evOverflow, c.cycle)
			c.evOverflowLen -= len(over)
			for i := range over {
				c.handleEvent(over[i])
			}
		}
	}
	idx := c.cycle & c.wheelMask
	evs := c.wheel[idx]
	if len(evs) == 0 {
		return
	}
	// Detach the slot while draining. In-window schedules during the drain
	// always land in other slots (a same-slot target would be exactly one
	// horizon ahead, which goes to overflow), so the backing array can be
	// put straight back for reuse.
	c.wheel[idx] = nil
	for i := range evs {
		c.handleEvent(evs[i])
	}
	c.wheel[idx] = evs[:0]
}

// handleEvent dispatches one drained event to its handler.
func (c *Core) handleEvent(ev event) {
	switch ev.kind {
	case evComplete:
		c.finish(ev.seq)
	case evAgen:
		c.agen(ev.seq)
	case evMemTry:
		if st := c.uop(ev.seq); st != nil {
			c.memTry(st)
		}
	case evCopyArrive:
		c.valueReadyIn(ev.seq, ev.aux)
		if c.copyInserted != nil {
			key := copyKey{ev.seq, ev.aux}
			if t0, ok := c.copyInserted[key]; ok {
				c.m.Histograms.CopyLatency.Observe(c.cycle - t0)
				delete(c.copyInserted, key)
			}
		}
	case evStoreData:
		if st := c.uop(ev.seq); st != nil {
			c.storeDataCheck(st)
		}
	}
}

// storeDataCheck completes a store once its data operand is readable in its
// cluster (the store-data half of the split store; the address half already
// ran). Polls once per cycle while the data is in flight.
func (c *Core) storeDataCheck(st *uopState) {
	if st.completed {
		return
	}
	if c.valueIsReadyIn(st.srcValues[0], st.cluster) {
		c.lsq.SetStoreData(st.seq)
		c.finish(st.seq)
		return
	}
	c.schedule(c.cycle+1, event{evStoreData, st.seq, 0})
}

// finish completes execution of a micro-op.
func (c *Core) finish(seq int64) {
	st := c.uop(seq)
	if st == nil || st.completed {
		return
	}
	st.completed = true
	if st.u.Static.Dst != uarch.RegNone {
		v := c.value(seq)
		v.produced = true
		c.valueReadyIn(seq, st.cluster)
	}
	if st.mispredicted {
		// Branch resolved: release the frontend. The refill cost is the
		// fetch-to-dispatch depth of newly fetched micro-ops.
		c.fetchStalled = false
	}
}

// agen finishes address generation for a memory op.
func (c *Core) agen(seq int64) {
	st := c.uop(seq)
	if st == nil {
		return
	}
	c.lsq.SetAddress(seq, st.u.Addr)
	if st.u.Static.Opcode == uarch.OpStore {
		c.storeDataCheck(st)
		return
	}
	c.memTry(st)
}

// memTry advances a load through disambiguation and the cache.
func (c *Core) memTry(st *uopState) {
	if st.completed {
		return
	}
	switch c.lsq.ProbeLoad(st.seq, st.u.Addr) {
	case cache.LoadBlocked, cache.LoadWaitData:
		c.schedule(c.cycle+1, event{evMemTry, st.seq, 0})
	case cache.LoadForward:
		c.schedule(c.cycle+1, event{evComplete, st.seq, 0})
	case cache.LoadAccess:
		if !c.mem.L1().ReservePort(c.cycle, false) {
			c.schedule(c.cycle+1, event{evMemTry, st.seq, 0})
			return
		}
		res, ok := c.mem.Access(c.cycle, st.u.Addr, false)
		if !ok {
			c.schedule(c.cycle+1, event{evMemTry, st.seq, 0})
			return
		}
		c.schedule(res.Ready, event{evComplete, st.seq, 0})
	}
}

// --- issue -------------------------------------------------------------------

func (c *Core) issue() {
	for _, cl := range c.clusters {
		cl := cl
		for _, q := range [2]*cluster.IQ{cl.IntQ, cl.FPQ} {
			picked := q.SelectReady(0, func(e *cluster.Entry) bool {
				st := c.uop(e.Seq)
				return cl.DividerFree(st.u.Static.Opcode, c.cycle)
			})
			for _, e := range picked {
				c.startExec(c.uop(e.Seq), cl)
			}
		}
		// Copies: one per cycle, gated on link bandwidth. The reservation
		// happens inside accept so refused copies stay queued.
		cl.CopyQ.SelectReady(0, func(e *cluster.Entry) bool {
			arr, ok := c.net.Reserve(c.cycle, cl.ID, e.Aux)
			if !ok {
				return false
			}
			c.schedule(arr, event{evCopyArrive, e.Seq, e.Aux})
			return true
		})
	}
}

// startExec schedules the completion of an issued micro-op.
func (c *Core) startExec(st *uopState, cl *cluster.Cluster) {
	op := st.u.Static.Opcode
	cl.ReserveDivider(op, c.cycle)
	switch {
	case op.IsMem():
		c.schedule(c.cycle+int64(op.Latency()), event{evAgen, st.seq, 0})
	default:
		c.schedule(c.cycle+int64(op.Latency()), event{evComplete, st.seq, 0})
	}
}

// --- steer + dispatch --------------------------------------------------------

func (c *Core) dispatchStage() {
	budget := c.cfg.SteerWidth
	reason := StallNone
	for budget > 0 && c.fetchLen > 0 {
		slot := &c.fetchPipe[c.fetchHead&c.fetchMask]
		if slot.readyAt > c.cycle {
			break
		}
		if !slot.steered {
			d := c.policy.Steer(steerCtx{c}, slot.u)
			if d.Stall {
				reason = StallPolicy
				break
			}
			if d.Cluster < 0 || d.Cluster >= c.cfg.NumClusters {
				panic(fmt.Sprintf("pipeline: policy %s chose cluster %d of %d",
					c.policy.Name(), d.Cluster, c.cfg.NumClusters))
			}
			slot.steered = true
			slot.cluster = d.Cluster
		}
		if r := c.tryDispatch(slot); r != StallNone {
			reason = r
			break
		}
		c.fetchHead++
		c.fetchLen--
		budget--
	}
	if reason != StallNone {
		c.m.StallCycles[reason]++
		if reason == StallPolicy || reason == StallIQ {
			c.m.AllocStallCycles++
		}
	}
}

// tryDispatch allocates all resources for the steered micro-op, or reports
// the first missing resource without side effects.
func (c *Core) tryDispatch(slot *fetchSlot) StallReason {
	u := slot.u
	ci := slot.cluster
	cl := c.clusters[ci]
	class := u.Static.Opcode.Class()

	if c.robLen >= c.cfg.ROBSize {
		return StallROB
	}
	if cl.QueueFor(class).Full() {
		return StallIQ
	}
	if u.IsMem() && c.lsq.Full() {
		return StallLSQ
	}

	// Plan operand copies: a source value not present (nor en route) in the
	// target cluster needs an explicit copy micro-op in its home cluster.
	copies := c.planCopies[:0]
	unready := c.unready[:0]
	needRegInt, needRegFP := 0, 0
	if u.Static.Dst != uarch.RegNone {
		if u.Static.Dst.IsFP() {
			needRegFP++
		} else {
			needRegInt++
		}
	}
	srcs := [2]uarch.Reg{u.Static.Src1, u.Static.Src2}
	var vseqs [2]int64
	for i, src := range srcs {
		vseqs[i] = initialValue
		if src == uarch.RegNone {
			continue
		}
		vseq := c.regVal[src]
		vseqs[i] = vseq
		if vseq == initialValue {
			continue
		}
		v := c.value(vseq)
		if v == nil {
			continue
		}
		bit := uint32(1) << uint(ci)
		if v.locMask&bit == 0 {
			dup := false
			for _, pc := range copies {
				if pc.vseq == vseq {
					dup = true
					break
				}
			}
			if !dup {
				home := c.clusters[v.home]
				// Each planned copy needs a copy-queue slot in the home
				// cluster and a register in the target cluster.
				pendingToHome := 0
				for _, pc := range copies {
					if pc.home == v.home {
						pendingToHome++
					}
				}
				if home.CopyQ.Len()+pendingToHome >= home.CopyQ.Cap() {
					c.planCopies = copies[:0]
					return StallCopyQ
				}
				copies = append(copies, plannedCopy{vseq, v.home, src})
				if src.IsFP() {
					needRegFP++
				} else {
					needRegInt++
				}
			}
		}
	}
	c.planCopies = copies[:0]
	if needRegInt > cl.FreeRegs(uarch.IntReg(0)) || needRegFP > cl.FreeRegs(uarch.FPReg(0)) {
		if len(copies) > 0 {
			return StallCopyRegs
		}
		return StallRegs
	}

	// All resources available: perform the dispatch.
	seq := slot.seq
	for _, pc := range copies {
		v := c.value(pc.vseq)
		tags := c.copyTags[:0]
		if !c.valueIsReadyIn(pc.vseq, pc.home) {
			tags = append(tags, pc.vseq)
		}
		if !c.clusters[pc.home].CopyQ.Insert(pc.vseq, ci, tags) {
			panic("pipeline: copy queue insert failed after capacity check")
		}
		c.copyTags = tags[:0]
		v.locMask |= 1 << uint(ci)
		v.allocMask |= 1 << uint(ci)
		cl.AllocReg(pc.reg)
		c.m.Copies++
		c.m.PerCluster[pc.home].CopiesInserted++
		if c.copyInserted != nil {
			c.copyInserted[copyKey{pc.vseq, ci}] = c.cycle
		}
	}
	isStore := u.Static.Opcode == uarch.OpStore
	for i, src := range srcs {
		if src == uarch.RegNone || vseqs[i] == initialValue {
			continue
		}
		// Split store: the IQ entry waits only for the address operand
		// (Src2); the data half completes separately after issue, as real
		// STA/STD micro-op pairs do.
		if isStore && i == 0 {
			continue
		}
		if c.valueIsReadyIn(vseqs[i], ci) {
			continue
		}
		dup := false
		for _, t := range unready {
			if t == vseqs[i] {
				dup = true
				break
			}
		}
		if !dup {
			unready = append(unready, vseqs[i])
		}
	}
	c.unready = unready[:0]
	if !cl.QueueFor(class).Insert(seq, 0, unready) {
		panic("pipeline: IQ insert failed after capacity check")
	}
	if u.IsMem() {
		if !c.lsq.Allocate(seq, u.Static.Opcode == uarch.OpStore) {
			panic("pipeline: LSQ allocate failed after capacity check")
		}
	}
	if want := c.robHead + int64(c.robLen); seq != want {
		panic(fmt.Sprintf("pipeline: out-of-order dispatch: seq %d, ROB tail %d", seq, want))
	}
	st := &c.uops[seq&c.uopMask]
	*st = uopState{
		seq: seq, u: u, cluster: ci, live: true,
		mispredicted: slot.mispred, prevValue: initialValue,
		srcValues: vseqs,
	}
	if u.Static.Dst != uarch.RegNone {
		cl.AllocReg(u.Static.Dst)
		st.prevValue = c.regVal[u.Static.Dst]
		c.regVal[u.Static.Dst] = seq
		c.newValue(seq, u.Static.Dst, ci)
	}
	c.robLen++
	cl.InFlight++
	cl.DispatchedUops++
	c.m.PerCluster[ci].Dispatched++
	return StallNone
}

// --- fetch ---------------------------------------------------------------

func (c *Core) fetch() {
	if c.fetchStalled {
		c.m.FetchStallCycles++
		return
	}
	budget := c.cfg.FetchWidth
	for budget > 0 && c.nextFetch < len(c.tr.Uops) && c.fetchLen < c.fetchCap {
		u := &c.tr.Uops[c.nextFetch]
		slot := &c.fetchPipe[(c.fetchHead+int64(c.fetchLen))&c.fetchMask]
		*slot = fetchSlot{
			seq: c.nextSeq, u: u,
			readyAt: c.cycle + int64(c.cfg.FetchToDispatch),
		}
		stop := false
		if u.IsBranch() {
			c.m.Branches++
			predicted := c.bp.predictAndUpdate(u.PC, u.Taken)
			if predicted != u.Taken {
				c.m.Mispredicts++
				slot.mispred = true
				c.fetchStalled = true
				stop = true
			}
		}
		c.fetchLen++
		c.nextFetch++
		c.nextSeq++
		budget--
		if stop {
			break
		}
	}
}

// accountOccupancy integrates issue-queue occupancy for utilization stats.
func (c *Core) accountOccupancy() {
	for i, cl := range c.clusters {
		pc := &c.m.PerCluster[i]
		pc.OccupancySum += uint64(cl.Occupancy())
		pc.IntOccSum += uint64(cl.IntQ.Len())
		pc.FPOccSum += uint64(cl.FPQ.Len())
		pc.IntIssued = cl.IntQ.Issued
		pc.FPIssued = cl.FPQ.Issued
		pc.CopyIssued = cl.CopyQ.Issued
		if h := c.m.Histograms; h != nil {
			h.IntIQ.Observe(int64(cl.IntQ.Len()))
			h.FPIQ.Observe(int64(cl.FPQ.Len()))
			h.CopyQ.Observe(int64(cl.CopyQ.Len()))
		}
	}
	if h := c.m.Histograms; h != nil {
		h.ROB.Observe(int64(c.robLen))
	}
}

// ComplexityOf returns the policy's steering-logic accounting.
func (c *Core) ComplexityOf() steer.Complexity { return *c.policy.Complexity() }
