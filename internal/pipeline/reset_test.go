package pipeline

import (
	"reflect"
	"testing"

	"clustersim/internal/prog"
	"clustersim/internal/steer"
	"clustersim/internal/trace"
	"clustersim/internal/uarch"
)

// mixedProgram exercises every subsystem Reset must rewind: integer and FP
// chains (issue queues, register files), an unpipelined divide (divider
// occupancy), loads and stores (LSQ, cache hierarchy, MSHRs), and a
// biased branch (predictor table and history).
func mixedProgram() *prog.Program {
	b := prog.NewBuilder("mixed")
	b.Int(uarch.OpAdd, uarch.IntReg(1), uarch.IntReg(1), uarch.IntReg(2))
	b.FP(uarch.OpFAdd, uarch.FPReg(1), uarch.FPReg(1), uarch.FPReg(2))
	b.Int(uarch.OpDiv, uarch.IntReg(3), uarch.IntReg(3), uarch.IntReg(1))
	b.Load(uarch.IntReg(4), uarch.IntReg(1), prog.MemRef{})
	b.Store(uarch.IntReg(4), uarch.IntReg(2), prog.MemRef{})
	b.Branch(uarch.IntReg(1), 0.7, 0.5)
	b.Edge(0, 1)
	return b.MustBuild()
}

// TestCoreResetRunIdentity is the pooling contract: a Reset core must
// produce exactly the metrics a freshly constructed one does, including
// after running a different workload in between (state bleed-through would
// show up as a metrics diff).
func TestCoreResetRunIdentity(t *testing.T) {
	cfg := DefaultConfig(2)
	trA := trace.Expand(mixedProgram(), trace.Options{NumUops: 4000, Seed: 7})
	trB := trace.Expand(ilpProgram(6), trace.Options{NumUops: 2500, Seed: 3})

	fresh := func(tr *trace.Trace) *Metrics {
		core, err := NewCore(cfg, &steer.OP{}, tr)
		if err != nil {
			t.Fatal(err)
		}
		m, err := core.Run()
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	wantA, wantB := fresh(trA), fresh(trB)

	core, err := NewCore(cfg, &steer.OP{}, trA)
	if err != nil {
		t.Fatal(err)
	}
	gotA1, err := core.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotA1, wantA) {
		t.Fatalf("first run differs from fresh core:\n got %+v\nwant %+v", gotA1, wantA)
	}
	// Different trace on the same pooled core.
	if err := core.Reset(cfg, &steer.OP{}, trB); err != nil {
		t.Fatal(err)
	}
	gotB, err := core.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotB, wantB) {
		t.Fatalf("reset core run differs from fresh core:\n got %+v\nwant %+v", gotB, wantB)
	}
	// And back to the first trace: any state bleed from trB shows here.
	if err := core.Reset(cfg, &steer.OP{}, trA); err != nil {
		t.Fatal(err)
	}
	gotA2, err := core.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotA2, wantA) {
		t.Fatalf("second reset run differs from fresh core:\n got %+v\nwant %+v", gotA2, wantA)
	}
	// The detached metrics of earlier runs must not have been clobbered by
	// later Resets (result caches retain them).
	if !reflect.DeepEqual(gotA1, wantA) || !reflect.DeepEqual(gotB, wantB) {
		t.Error("earlier detached metrics mutated by a later Reset/Run")
	}
}

// TestCoreResetShapeMismatch: a config whose structural shape differs from
// the construction shape must be refused (ring sizes were derived from it),
// while per-run fields may change freely.
func TestCoreResetShapeMismatch(t *testing.T) {
	cfg := DefaultConfig(2)
	tr := trace.Expand(chainProgram(), trace.Options{NumUops: 100, Seed: 1})
	core, err := NewCore(cfg, &steer.OP{}, tr)
	if err != nil {
		t.Fatal(err)
	}
	bigger := cfg
	bigger.ROBSize *= 2
	if err := core.Reset(bigger, &steer.OP{}, tr); err == nil {
		t.Error("Reset accepted a different ROB size")
	}
	perRun := cfg
	perRun.MaxCycles = 12345
	perRun.WarmupUops = 10
	perRun.Cancel = make(chan struct{})
	if err := core.Reset(perRun, &steer.OP{}, tr); err != nil {
		t.Errorf("Reset refused per-run-only changes: %v", err)
	}
}

// TestCoreResetAfterHistograms: a histogram-tracking run followed by a
// plain run must not leave histogram state behind, and vice versa.
func TestCoreResetAfterHistograms(t *testing.T) {
	cfg := DefaultConfig(2)
	tr := trace.Expand(mixedProgram(), trace.Options{NumUops: 1500, Seed: 2})
	hcfg := cfg
	hcfg.TrackHistograms = true

	core, err := NewCore(hcfg, &steer.OP{}, tr)
	if err != nil {
		t.Fatal(err)
	}
	mh, err := core.Run()
	if err != nil {
		t.Fatal(err)
	}
	if mh.Histograms == nil {
		t.Fatal("histogram run produced no histograms")
	}
	if err := core.Reset(cfg, &steer.OP{}, tr); err != nil {
		t.Fatal(err)
	}
	m, err := core.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.Histograms != nil {
		t.Error("plain run on reset core inherited histograms")
	}
	// The detached histogram result survives the reset untouched.
	if mh.Histograms == nil {
		t.Error("detached histogram pointer lost")
	}
	if err := core.Reset(hcfg, &steer.OP{}, tr); err != nil {
		t.Fatal(err)
	}
	mh2, err := core.Run()
	if err != nil {
		t.Fatal(err)
	}
	if mh2.Histograms == nil {
		t.Error("histogram run on reset core produced no histograms")
	}
	if mh2.Histograms == mh.Histograms {
		t.Error("reset reused the previous run's histogram objects")
	}
}
