package pipeline

import "clustersim/internal/stats"

// StallReason classifies why the steer/dispatch stage held a micro-op.
type StallReason int

const (
	// StallNone means no stall.
	StallNone StallReason = iota
	// StallPolicy: the steering policy requested a stall (occupancy-aware
	// stalling, or a full target queue under a static policy).
	StallPolicy
	// StallIQ: the target issue queue was full at allocation.
	StallIQ
	// StallROB: the reorder buffer was full.
	StallROB
	// StallLSQ: the load/store queue was full.
	StallLSQ
	// StallRegs: no free physical register in the target cluster.
	StallRegs
	// StallCopyQ: a producer cluster's copy queue was full.
	StallCopyQ
	// StallCopyRegs: no free register for an inbound copy.
	StallCopyRegs

	numStallReasons
)

// String names the reason.
func (r StallReason) String() string {
	switch r {
	case StallNone:
		return "none"
	case StallPolicy:
		return "policy"
	case StallIQ:
		return "iq-full"
	case StallROB:
		return "rob-full"
	case StallLSQ:
		return "lsq-full"
	case StallRegs:
		return "regfile"
	case StallCopyQ:
		return "copyq-full"
	case StallCopyRegs:
		return "copy-regfile"
	}
	return "unknown"
}

// ClusterMetrics aggregates per-cluster activity.
type ClusterMetrics struct {
	// Dispatched counts micro-ops steered to this cluster (copies excluded).
	Dispatched uint64
	// CopiesInserted counts copy micro-ops enqueued in this cluster's copy
	// queue (i.e. values this cluster exported).
	CopiesInserted uint64
	// OccupancySum accumulates per-cycle issue-queue occupancy for
	// utilization statistics.
	OccupancySum uint64
	// IntIssued, FPIssued and CopyIssued count selections per queue.
	IntIssued, FPIssued, CopyIssued uint64
	// IntOccSum and FPOccSum accumulate per-cycle queue occupancy.
	IntOccSum, FPOccSum uint64
}

// Metrics is the full result of one simulation run.
type Metrics struct {
	// Cycles is the total execution time.
	Cycles int64
	// Uops is the committed program micro-op count (copies excluded).
	Uops int64
	// Copies is the number of inter-cluster copy micro-ops generated.
	Copies int64

	// AllocStallCycles counts cycles in which dispatch was blocked by a
	// full issue queue — the paper's workload-balance metric ("total
	// reduction of the allocation stalls in the issue queues").
	AllocStallCycles int64
	// StallCycles[r] counts cycles blocked per reason (first blocking
	// reason of the cycle).
	StallCycles [numStallReasons]int64

	// FetchStallCycles counts cycles fetch was frozen on an unresolved
	// mispredicted branch.
	FetchStallCycles int64
	// Branches and Mispredicts count conditional branches.
	Branches, Mispredicts int64

	// LinkTransfers and LinkConflicts mirror the interconnect counters.
	LinkTransfers, LinkConflicts uint64
	// L1Hits, L2Hits, MemAccesses, LSQForwards mirror the memory system.
	L1Hits, L2Hits, MemAccesses, LSQForwards uint64

	// PerCluster holds per-cluster breakdowns.
	PerCluster []ClusterMetrics

	// Histograms holds optional per-cycle occupancy distributions
	// (Config.TrackHistograms); nil when disabled.
	Histograms *OccupancyHistograms

	// MaxCyclesExceeded marks an aborted (runaway) simulation.
	MaxCyclesExceeded bool
}

// OccupancyHistograms samples queue occupancies once per cycle (summed
// over clusters for the per-kind views) and the copy path's end-to-end
// latency (copy-queue insertion to arrival in the destination cluster).
type OccupancyHistograms struct {
	ROB, IntIQ, FPIQ, CopyQ *stats.Histogram
	CopyLatency             *stats.Histogram
}

// Render draws all distributions.
func (h *OccupancyHistograms) Render() string {
	return h.ROB.Render("ROB occupancy") +
		h.IntIQ.Render("INT IQ occupancy (per cluster)") +
		h.FPIQ.Render("FP IQ occupancy (per cluster)") +
		h.CopyQ.Render("COPY queue occupancy (per cluster)") +
		h.CopyLatency.Render("copy latency (insert to arrival, cycles)")
}

// IPC returns committed micro-ops per cycle.
func (m *Metrics) IPC() float64 {
	if m.Cycles == 0 {
		return 0
	}
	return float64(m.Uops) / float64(m.Cycles)
}

// CopiesPerKuop returns copies per thousand committed micro-ops.
func (m *Metrics) CopiesPerKuop() float64 {
	if m.Uops == 0 {
		return 0
	}
	return float64(m.Copies) * 1000 / float64(m.Uops)
}

// MispredictRate returns the branch misprediction ratio.
func (m *Metrics) MispredictRate() float64 {
	if m.Branches == 0 {
		return 0
	}
	return float64(m.Mispredicts) / float64(m.Branches)
}

// WorkloadImbalance returns the mean absolute deviation of per-cluster
// dispatched micro-ops from a perfectly even split, normalized to [0,1].
func (m *Metrics) WorkloadImbalance() float64 {
	n := len(m.PerCluster)
	if n == 0 {
		return 0
	}
	total := uint64(0)
	for _, c := range m.PerCluster {
		total += c.Dispatched
	}
	if total == 0 {
		return 0
	}
	mean := float64(total) / float64(n)
	dev := 0.0
	for _, c := range m.PerCluster {
		d := float64(c.Dispatched) - mean
		if d < 0 {
			d = -d
		}
		dev += d
	}
	return dev / float64(n) / mean
}
