package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

// Bucket upper bounds are inclusive ("le" semantics): an observation
// exactly on a bound must land in that bucket, not the next one, or
// server-side quantiles drift from Prometheus's own evaluation of the
// same series.
func TestHistogramBucketBoundariesInclusive(t *testing.T) {
	bounds := []float64{0.001, 0.01, 0.1}
	h := NewHistogram(bounds)
	h.Observe(1 * time.Millisecond)   // exactly on bounds[0]
	h.Observe(10 * time.Millisecond)  // exactly on bounds[1]
	h.Observe(100 * time.Millisecond) // exactly on bounds[2]
	h.Observe(200 * time.Millisecond) // beyond every bound: +Inf
	h.Observe(0)                      // below everything: first bucket

	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("count %d, want 5", s.Count)
	}
	// Cumulative: le=0.001 holds {0, 1ms}, le=0.01 adds 10ms, le=0.1
	// adds 100ms, +Inf adds the 200ms outlier.
	want := []int64{2, 3, 4, 5}
	if len(s.Counts) != len(want) {
		t.Fatalf("counts len %d, want %d", len(s.Counts), len(want))
	}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("cumulative count[%d] = %d, want %d", i, s.Counts[i], w)
		}
	}
	wantSum := (time.Millisecond + 10*time.Millisecond + 100*time.Millisecond + 200*time.Millisecond).Seconds()
	if math.Abs(s.Sum-wantSum) > 1e-9 {
		t.Errorf("sum %v, want %v", s.Sum, wantSum)
	}
}

func TestHistogramNilSafe(t *testing.T) {
	var h *Histogram
	h.Observe(time.Second) // must not panic
}

// Concurrent observation is the hot path (every HTTP request, every
// engine stage); this is the -race lane's check that the atomic counters
// neither race nor drop observations.
func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram(nil)
	const workers, perWorker = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Observe(time.Duration(w*perWorker+i) * time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*perWorker {
		t.Fatalf("count %d, want %d", s.Count, workers*perWorker)
	}
	if got := s.Counts[len(s.Counts)-1]; got != workers*perWorker {
		t.Fatalf("+Inf cumulative %d, want %d", got, workers*perWorker)
	}
}

func TestSnapshotQuantile(t *testing.T) {
	h := NewHistogram([]float64{0.001, 0.01, 0.1})
	// 90 fast requests, 10 slow ones: p50 interpolates inside the first
	// bucket, p99 inside the last.
	for i := 0; i < 90; i++ {
		h.Observe(500 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(50 * time.Millisecond)
	}
	s := h.Snapshot()
	if p50 := s.Quantile(0.50); p50 <= 0 || p50 > 0.001 {
		t.Errorf("p50 %v, want within (0, 0.001]", p50)
	}
	if p99 := s.Quantile(0.99); p99 <= 0.01 || p99 > 0.1 {
		t.Errorf("p99 %v, want within (0.01, 0.1]", p99)
	}
	if q := (Snapshot{Bounds: []float64{1}, Counts: []int64{0, 0}}).Quantile(0.5); q != 0 {
		t.Errorf("empty snapshot quantile %v, want 0", q)
	}
}

func TestSnapshotMergeAndSub(t *testing.T) {
	h1 := NewHistogram([]float64{0.001, 0.01})
	h2 := NewHistogram([]float64{0.001, 0.01})
	h1.Observe(500 * time.Microsecond)
	h1.Observe(5 * time.Millisecond)
	h2.Observe(5 * time.Millisecond)

	m := h1.Snapshot().Merge(h2.Snapshot())
	if m.Count != 3 {
		t.Fatalf("merged count %d, want 3", m.Count)
	}
	if m.Counts[0] != 1 || m.Counts[1] != 3 || m.Counts[2] != 3 {
		t.Fatalf("merged counts %v", m.Counts)
	}

	// Sub recovers the delta between two scrapes of one histogram.
	before := h1.Snapshot()
	h1.Observe(20 * time.Millisecond) // +Inf bucket
	d := h1.Snapshot().Sub(before)
	if d.Count != 1 || d.Counts[2] != 1 || d.Counts[0] != 0 {
		t.Fatalf("delta: count %d counts %v", d.Count, d.Counts)
	}

	// Mismatched layouts are incomparable: Merge keeps the receiver.
	other := NewHistogram([]float64{1}).Snapshot()
	if got := m.Merge(other); got.Count != m.Count {
		t.Errorf("mismatched merge changed the receiver: %+v", got)
	}
}

func TestVecSeries(t *testing.T) {
	v := NewVec([]float64{0.001, 0.01})
	v.With("/v1/jobs", "202").Observe(500 * time.Microsecond)
	v.With("/v1/jobs", "202").Observe(2 * time.Millisecond)
	v.With("/v1/results", "200").Observe(100 * time.Microsecond)

	snaps := v.Snapshot()
	if len(snaps) != 2 {
		t.Fatalf("series count %d, want 2", len(snaps))
	}
	// Sorted by label tuple.
	if snaps[0].Labels[0] != "/v1/jobs" || snaps[1].Labels[0] != "/v1/results" {
		t.Fatalf("series order: %v, %v", snaps[0].Labels, snaps[1].Labels)
	}
	if snaps[0].Count != 2 || snaps[1].Count != 1 {
		t.Fatalf("series counts %d, %d", snaps[0].Count, snaps[1].Count)
	}

	// Concurrent With on one series must reuse it, not fork it.
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				v.With("/v1/jobs", "202").Observe(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	for _, s := range v.Snapshot() {
		if s.Labels[0] == "/v1/jobs" && s.Count != 2+8*500 {
			t.Fatalf("concurrent series count %d, want %d", s.Count, 2+8*500)
		}
	}
}
