// Package obs is the zero-dependency observability substrate of the
// system: fixed-bucket latency histograms (rendered in Prometheus
// exposition format by internal/service and merged across a fleet by
// package fleet) and per-job flight tracing (trace.go). Everything here
// is coordination-free on the hot path — observations are single atomic
// increments on pre-registered series — so a clusterd serving tens of
// thousands of requests per second pays nanoseconds per observation and
// aggregation happens at the edge, at scrape time.
package obs

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultLatencyBuckets are the upper bounds (seconds) shared by every
// latency histogram in the system: HTTP routes, engine stages, client
// calls. One shared layout keeps fleet-level merging a pairwise count
// sum. The range spans a warm 304 (~100µs) to a cold multi-second
// simulation; anything slower lands in the implicit +Inf bucket.
var DefaultLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket latency histogram safe for concurrent
// observation: one atomic add per Observe, no locks, no allocation.
// Bucket upper bounds are inclusive (an observation exactly on a bound
// counts in that bucket), matching Prometheus "le" semantics.
type Histogram struct {
	bounds []float64 // sorted upper bounds, seconds; +Inf implicit
	counts []atomic.Int64
	inf    atomic.Int64
	sumNs  atomic.Int64
	total  atomic.Int64
}

// NewHistogram builds a histogram over the given sorted upper bounds
// (seconds). Nil or empty bounds fall back to DefaultLatencyBuckets.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBuckets
	}
	h := &Histogram{bounds: bounds}
	h.counts = make([]atomic.Int64, len(bounds))
	return h
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	s := d.Seconds()
	// Binary search for the first bound >= s: inclusive upper bounds.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < s {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(h.bounds) {
		h.counts[lo].Add(1)
	} else {
		h.inf.Add(1)
	}
	h.sumNs.Add(d.Nanoseconds())
	h.total.Add(1)
}

// Snapshot is a point-in-time copy of a histogram, in the cumulative
// form Prometheus exposes: Counts[i] is the number of observations
// <= Bounds[i], and the final element of Counts (len(Bounds)+1 entries)
// is the +Inf bucket, equal to Count.
type Snapshot struct {
	Bounds []float64
	Counts []int64 // cumulative; last entry is +Inf == Count
	Count  int64
	Sum    float64 // seconds
}

// Snapshot copies the current counters. Counters are read individually
// (not under a lock), so a snapshot taken during concurrent observation
// may be off by in-flight increments — fine for monitoring.
func (h *Histogram) Snapshot() Snapshot {
	s := Snapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.bounds)+1),
		Count:  h.total.Load(),
		Sum:    float64(h.sumNs.Load()) / 1e9,
	}
	var cum int64
	for i := range h.bounds {
		cum += h.counts[i].Load()
		s.Counts[i] = cum
	}
	s.Counts[len(h.bounds)] = cum + h.inf.Load()
	return s
}

// Quantile estimates the q-th quantile (0 <= q <= 1) in seconds by
// linear interpolation inside the containing bucket — the same estimate
// Prometheus's histogram_quantile computes. Observations in the +Inf
// bucket clamp to the highest finite bound. Returns 0 on an empty
// snapshot.
func (s Snapshot) Quantile(q float64) float64 {
	n := s.Counts[len(s.Counts)-1]
	if n == 0 || len(s.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(n)
	idx := sort.Search(len(s.Counts), func(i int) bool { return float64(s.Counts[i]) >= rank })
	if idx >= len(s.Bounds) {
		return s.Bounds[len(s.Bounds)-1]
	}
	lower, lowerCount := 0.0, int64(0)
	if idx > 0 {
		lower, lowerCount = s.Bounds[idx-1], s.Counts[idx-1]
	}
	inBucket := s.Counts[idx] - lowerCount
	if inBucket == 0 {
		return s.Bounds[idx]
	}
	frac := (rank - float64(lowerCount)) / float64(inBucket)
	return lower + (s.Bounds[idx]-lower)*frac
}

// Merge returns the pairwise sum of two snapshots over the same bucket
// layout — how a fleet folds N workers' histograms into one. Mismatched
// layouts cannot be merged meaningfully; the receiver is returned
// unchanged and the caller should treat the pair as incomparable.
func (s Snapshot) Merge(o Snapshot) Snapshot {
	if len(s.Bounds) == 0 {
		return o
	}
	if len(o.Bounds) != len(s.Bounds) || len(o.Counts) != len(s.Counts) {
		return s
	}
	m := Snapshot{
		Bounds: s.Bounds,
		Counts: make([]int64, len(s.Counts)),
		Count:  s.Count + o.Count,
		Sum:    s.Sum + o.Sum,
	}
	for i := range s.Counts {
		m.Counts[i] = s.Counts[i] + o.Counts[i]
	}
	return m
}

// Sub returns the snapshot of observations made between base and s —
// the per-phase view of a cumulative histogram (loadgen diffs scrapes
// around each benchmark phase this way). Layout mismatches return s.
func (s Snapshot) Sub(base Snapshot) Snapshot {
	if len(base.Counts) != len(s.Counts) {
		return s
	}
	d := Snapshot{
		Bounds: s.Bounds,
		Counts: make([]int64, len(s.Counts)),
		Count:  s.Count - base.Count,
		Sum:    s.Sum - base.Sum,
	}
	for i := range s.Counts {
		d.Counts[i] = s.Counts[i] - base.Counts[i]
	}
	return d
}

// Vec is a set of histograms sharing one bucket layout, keyed by an
// ordered label-value tuple (route and status code, stage name, ...).
// Series are created on first use and live for the Vec's lifetime;
// label values are expected to be low-cardinality (routes are patterns,
// never raw paths).
type Vec struct {
	bounds []float64
	mu     sync.RWMutex
	series map[string]*vecSeries
}

type vecSeries struct {
	labels []string
	hist   *Histogram
}

// NewVec builds a histogram vector; nil bounds fall back to
// DefaultLatencyBuckets.
func NewVec(bounds []float64) *Vec {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBuckets
	}
	return &Vec{bounds: bounds, series: map[string]*vecSeries{}}
}

// vecKey joins label values with a separator no route, code, or stage
// name contains.
func vecKey(labels []string) string { return strings.Join(labels, "\x1f") }

// With returns the histogram for the given label values, creating it on
// first use. The fast path is one RLock'd map hit.
func (v *Vec) With(labels ...string) *Histogram {
	if v == nil {
		return nil
	}
	key := vecKey(labels)
	v.mu.RLock()
	s := v.series[key]
	v.mu.RUnlock()
	if s != nil {
		return s.hist
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if s = v.series[key]; s == nil {
		s = &vecSeries{labels: append([]string(nil), labels...), hist: NewHistogram(v.bounds)}
		v.series[key] = s
	}
	return s.hist
}

// LabeledSnapshot pairs one series' label values with its snapshot.
type LabeledSnapshot struct {
	Labels []string
	Snapshot
}

// Snapshot copies every series, sorted by label tuple so exposition
// output is stable across scrapes.
func (v *Vec) Snapshot() []LabeledSnapshot {
	if v == nil {
		return nil
	}
	v.mu.RLock()
	series := make([]*vecSeries, 0, len(v.series))
	for _, s := range v.series {
		series = append(series, s)
	}
	v.mu.RUnlock()
	out := make([]LabeledSnapshot, len(series))
	for i, s := range series {
		out[i] = LabeledSnapshot{Labels: s.labels, Snapshot: s.hist.Snapshot()}
	}
	sort.Slice(out, func(i, j int) bool {
		return vecKey(out[i].Labels) < vecKey(out[j].Labels)
	})
	return out
}
