package obs

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestValidTraceID(t *testing.T) {
	for id, want := range map[string]bool{
		"abc123.4":              true,
		"a-b_c.D":               true,
		"":                      false,
		"has space":             false,
		"has/slash":             false,
		strings.Repeat("x", 64): true,
		strings.Repeat("x", 65): false,
	} {
		if got := ValidTraceID(id); got != want {
			t.Errorf("ValidTraceID(%q) = %v, want %v", id, got, want)
		}
	}
	if id := NewTraceID(); !ValidTraceID(id) || len(id) != 16 {
		t.Errorf("minted ID %q invalid", id)
	}
}

func TestTraceIDContext(t *testing.T) {
	ctx := WithTraceID(context.Background(), "job-7")
	if got := TraceIDFrom(ctx); got != "job-7" {
		t.Fatalf("TraceIDFrom = %q", got)
	}
	if got := TraceIDFrom(context.Background()); got != "" {
		t.Fatalf("empty context yielded %q", got)
	}
}

// A flight adopts the context's trace ID, records spans, and on End
// becomes a queryable record whose stage durations feed the tracer's
// histograms.
func TestFlightLifecycle(t *testing.T) {
	tr := NewTracer(8)
	ctx := WithTraceID(context.Background(), "sub-1.0")
	fl := tr.StartFlight(ctx, "gzip-1/OP")
	if fl.ID != "sub-1.0" {
		t.Fatalf("flight ID %q", fl.ID)
	}

	t0 := fl.Begin()
	time.Sleep(2 * time.Millisecond)
	fl.Span("execute", t0)

	if _, ok := tr.Lookup("sub-1.0"); ok {
		t.Fatal("in-progress flight visible before End")
	}
	fl.End()
	fl.End() // idempotent

	rec, ok := tr.Lookup("sub-1.0")
	if !ok {
		t.Fatal("completed flight not queryable")
	}
	if rec.Label != "gzip-1/OP" || len(rec.Spans) != 1 || rec.Spans[0].Name != "execute" {
		t.Fatalf("record %+v", rec)
	}
	if rec.Spans[0].Dur < 2*time.Millisecond || rec.Total < rec.Spans[0].Dur {
		t.Fatalf("span %v within total %v", rec.Spans[0].Dur, rec.Total)
	}

	// Spans after End are dropped, not appended to a published record.
	fl.Span("late", fl.Begin())
	if rec2, _ := tr.Lookup("sub-1.0"); len(rec2.Spans) != 1 {
		t.Fatalf("post-End span recorded: %+v", rec2.Spans)
	}

	stages := tr.StageSnapshots()
	if len(stages) != 1 || stages[0].Labels[0] != "execute" || stages[0].Count != 1 {
		t.Fatalf("stage snapshots %+v", stages)
	}
}

// An invalid context ID (or none) mints a fresh one instead of failing.
func TestStartFlightMintsOnInvalidID(t *testing.T) {
	tr := NewTracer(8)
	fl := tr.StartFlight(WithTraceID(context.Background(), "bad id!"), "x")
	if !ValidTraceID(fl.ID) || fl.ID == "bad id!" {
		t.Fatalf("adopted invalid ID %q", fl.ID)
	}
}

// Everything is nil-safe: instrumented code never branches on whether
// tracing is enabled.
func TestNilTracerAndFlight(t *testing.T) {
	var tr *Tracer
	fl := tr.StartFlight(context.Background(), "x")
	if fl != nil {
		t.Fatal("nil tracer produced a flight")
	}
	if !fl.Begin().IsZero() {
		t.Fatal("nil flight Begin returned nonzero time")
	}
	fl.Span("x", fl.Begin())
	fl.Span("x", time.Now())
	fl.End()
	if _, ok := tr.Lookup("x"); ok {
		t.Fatal("nil tracer lookup succeeded")
	}
	if tr.Records() != nil || tr.StageSnapshots() != nil {
		t.Fatal("nil tracer returned records")
	}
}

// The ring is bounded: completing more flights than capacity evicts the
// oldest records, and Records reports survivors oldest-first.
func TestTracerRingEviction(t *testing.T) {
	tr := NewTracer(2)
	for _, id := range []string{"a", "b", "c"} {
		fl := tr.StartFlight(WithTraceID(context.Background(), id), "job")
		fl.End()
	}
	if _, ok := tr.Lookup("a"); ok {
		t.Fatal("oldest flight survived past capacity")
	}
	recs := tr.Records()
	if len(recs) != 2 || recs[0].ID != "b" || recs[1].ID != "c" {
		ids := make([]string, len(recs))
		for i, r := range recs {
			ids[i] = r.ID
		}
		t.Fatalf("ring order %v, want [b c]", ids)
	}
}

// Re-using a trace ID (client retry) replaces the record in place rather
// than occupying a second ring slot.
func TestTracerIDReuse(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 2; i++ {
		fl := tr.StartFlight(WithTraceID(context.Background(), "retry"), "job")
		t0 := fl.Begin()
		if i == 1 {
			fl.Span("execute", t0)
		}
		fl.End()
	}
	rec, ok := tr.Lookup("retry")
	if !ok || len(rec.Spans) != 1 {
		t.Fatalf("retry record %+v ok=%v, want the newest (1 span)", rec, ok)
	}
	if got := len(tr.Records()); got != 1 {
		t.Fatalf("%d records for one ID", got)
	}
}

// Gap accounting coalesces overlapping spans so a cache_hit span wrapped
// around a store_get never produces negative unaccounted time.
func TestUnaccounted(t *testing.T) {
	rec := FlightRecord{
		Total: 10 * time.Millisecond,
		Spans: []Span{
			{Name: "a", Start: 0, Dur: 4 * time.Millisecond},
			{Name: "b", Start: 2 * time.Millisecond, Dur: 4 * time.Millisecond}, // overlaps a
			{Name: "c", Start: 8 * time.Millisecond, Dur: time.Millisecond},
		},
	}
	// Covered: [0,6) ∪ [8,9) = 7ms; gap = 3ms.
	if got := rec.Unaccounted(); got != 3*time.Millisecond {
		t.Fatalf("unaccounted %v, want 3ms", got)
	}
	empty := FlightRecord{Total: time.Second}
	if got := empty.Unaccounted(); got != time.Second {
		t.Fatalf("spanless flight unaccounted %v", got)
	}
}

// The Chrome export is valid trace-event JSON: one root event per flight
// carrying the trace ID, plus one event per span, every flight on its
// own tid.
func TestWriteChrome(t *testing.T) {
	tr := NewTracer(8)
	for _, id := range []string{"a", "b"} {
		fl := tr.StartFlight(WithTraceID(context.Background(), id), "job-"+id)
		fl.Span("execute", fl.Begin())
		fl.End()
	}
	var sb strings.Builder
	if err := tr.WriteChrome(&sb); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Tid  int               `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, sb.String())
	}
	if len(doc.TraceEvents) != 4 {
		t.Fatalf("%d events, want 4 (2 roots + 2 spans)", len(doc.TraceEvents))
	}
	tids := map[int]bool{}
	roots := 0
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			t.Errorf("event %q phase %q, want X", ev.Name, ev.Ph)
		}
		tids[ev.Tid] = true
		if strings.HasPrefix(ev.Name, "job ") {
			roots++
			if ev.Args["trace_id"] == "" {
				t.Errorf("root %q missing trace_id arg", ev.Name)
			}
		}
	}
	if roots != 2 || len(tids) != 2 {
		t.Fatalf("roots %d tids %d, want 2 and 2", roots, len(tids))
	}

	var one strings.Builder
	rec, _ := tr.Lookup("a")
	if err := WriteChromeFlight(&one, rec); err != nil {
		t.Fatal(err)
	}
	if !json.Valid([]byte(one.String())) {
		t.Fatalf("single-flight export invalid: %s", one.String())
	}

	out := FormatFlight(rec)
	if !strings.Contains(out, "trace a") || !strings.Contains(out, "execute") || !strings.Contains(out, "(gap)") {
		t.Fatalf("FormatFlight output:\n%s", out)
	}
}
