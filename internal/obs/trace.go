package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// traceIDKey is the context key carrying a job's trace ID from the HTTP
// edge (or a client) down into the engine.
type traceIDKey struct{}

// WithTraceID returns a context carrying the given trace ID.
func WithTraceID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, traceIDKey{}, id)
}

// TraceIDFrom extracts the trace ID from ctx ("" when absent).
func TraceIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(traceIDKey{}).(string)
	return id
}

// NewTraceID mints a random 16-hex-char trace ID.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; fall back
		// to a constant rather than crash an observability path.
		return "trace-rand-failed"
	}
	return hex.EncodeToString(b[:])
}

// ValidTraceID reports whether a caller-supplied trace ID (typically
// from the Clustersim-Trace-Id header) is safe to adopt: non-empty, at
// most 64 characters, and limited to [a-zA-Z0-9._-]. Invalid IDs are
// replaced by a freshly minted one rather than rejected — tracing must
// never fail a request.
func ValidTraceID(id string) bool {
	if id == "" || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// Span is one recorded stage of a flight: a named interval relative to
// the flight's start.
type Span struct {
	Name  string
	Start time.Duration // offset from flight start
	Dur   time.Duration
}

// Flight is the trace record of one job's pass through the system. All
// methods are nil-safe so instrumented code runs unconditionally: an
// engine without a tracer carries a nil *Flight everywhere and every
// recording call is a no-op.
type Flight struct {
	ID    string
	Label string

	tracer *Tracer
	start  time.Time

	mu    sync.Mutex
	spans []Span
	done  bool
}

// Begin opens a span: it returns the wall-clock start the matching
// Span call closes against. On a nil flight it returns the zero time,
// which Span treats as "don't record".
func (f *Flight) Begin() time.Time {
	if f == nil {
		return time.Time{}
	}
	return time.Now()
}

// Span records a completed stage opened by Begin. No-op on a nil
// flight, a zero start, or a flight already ended.
func (f *Flight) Span(name string, start time.Time) {
	if f == nil || start.IsZero() {
		return
	}
	now := time.Now()
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.done {
		return
	}
	f.spans = append(f.spans, Span{Name: name, Start: start.Sub(f.start), Dur: now.Sub(start)})
}

// End closes the flight: it publishes the record into the tracer's ring
// (making it queryable by ID) and folds each span into the tracer's
// per-stage histograms. Idempotent; no-op on a nil flight.
func (f *Flight) End() {
	if f == nil {
		return
	}
	f.mu.Lock()
	if f.done {
		f.mu.Unlock()
		return
	}
	f.done = true
	total := time.Since(f.start)
	spans := f.spans
	f.mu.Unlock()
	f.tracer.publish(f, total, spans)
}

// FlightRecord is the immutable, completed form of a flight as stored
// in the tracer ring and returned by Lookup.
type FlightRecord struct {
	ID    string
	Label string
	Start time.Time
	Total time.Duration
	Spans []Span
}

// Unaccounted is the part of the flight's total duration not covered by
// any recorded span — the "gap accounting" that makes a trace honest
// about time spent between stages. Overlapping spans (a cache-hit span
// covering a joined wait) are coalesced before subtracting.
func (r FlightRecord) Unaccounted() time.Duration {
	if len(r.Spans) == 0 {
		return r.Total
	}
	type iv struct{ a, b time.Duration }
	ivs := make([]iv, 0, len(r.Spans))
	for _, s := range r.Spans {
		ivs = append(ivs, iv{s.Start, s.Start + s.Dur})
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].a < ivs[j].a })
	var covered, end time.Duration
	for _, v := range ivs {
		if v.a > end {
			covered += v.b - v.a
			end = v.b
		} else if v.b > end {
			covered += v.b - end
			end = v.b
		}
	}
	if covered > r.Total {
		return 0
	}
	return r.Total - covered
}

// Tracer holds a bounded ring of completed flight records plus
// per-stage duration histograms. A nil *Tracer is valid everywhere and
// records nothing.
type Tracer struct {
	mu       sync.Mutex
	capacity int
	ring     []string // completed flight IDs, oldest first
	next     int
	byID     map[string]FlightRecord

	stages *Vec // per-stage histograms, label = stage name
}

// NewTracer builds a tracer retaining up to capacity completed flights
// (oldest evicted first). capacity <= 0 defaults to 1024.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 1024
	}
	return &Tracer{
		capacity: capacity,
		ring:     make([]string, 0, capacity),
		byID:     map[string]FlightRecord{},
		stages:   NewVec(nil),
	}
}

// StartFlight opens a flight for one job. The trace ID is taken from
// ctx when present and valid, otherwise minted. Returns nil (a valid,
// inert flight) on a nil tracer.
func (t *Tracer) StartFlight(ctx context.Context, label string) *Flight {
	if t == nil {
		return nil
	}
	id := TraceIDFrom(ctx)
	if !ValidTraceID(id) {
		id = NewTraceID()
	}
	return &Flight{ID: id, Label: label, tracer: t, start: time.Now()}
}

// publish stores a completed flight and feeds its spans into the stage
// histograms.
func (t *Tracer) publish(f *Flight, total time.Duration, spans []Span) {
	if t == nil {
		return
	}
	for _, s := range spans {
		t.stages.With(s.Name).Observe(s.Dur)
	}
	rec := FlightRecord{ID: f.ID, Label: f.Label, Start: f.start, Total: total, Spans: spans}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.byID[rec.ID]; ok {
		// Re-submitted trace ID (client retry): keep the newest record;
		// the existing ring slot keeps holding the ID.
		t.byID[rec.ID] = rec
		return
	}
	if len(t.ring) < t.capacity {
		t.ring = append(t.ring, rec.ID)
	} else {
		delete(t.byID, t.ring[t.next])
		t.ring[t.next] = rec.ID
		t.next = (t.next + 1) % t.capacity
	}
	t.byID[rec.ID] = rec
}

// Lookup returns the completed flight with the given ID, if it is still
// in the ring. Flights still in progress are not visible.
func (t *Tracer) Lookup(id string) (FlightRecord, bool) {
	if t == nil {
		return FlightRecord{}, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	r, ok := t.byID[id]
	return r, ok
}

// Records returns every retained flight, oldest first.
func (t *Tracer) Records() []FlightRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]FlightRecord, 0, len(t.byID))
	// Ring order, skipping stale slots left by ID-reuse.
	seen := map[string]bool{}
	order := append(append([]string(nil), t.ring[t.next:]...), t.ring[:t.next]...)
	for _, id := range order {
		if r, ok := t.byID[id]; ok && !seen[id] {
			out = append(out, r)
			seen[id] = true
		}
	}
	return out
}

// StageSnapshots returns the per-stage duration histograms, sorted by
// stage name.
func (t *Tracer) StageSnapshots() []LabeledSnapshot {
	if t == nil {
		return nil
	}
	return t.stages.Snapshot()
}

// chromeEvent is one Chrome trace-event ("X" = complete event). The
// format is what chrome://tracing and Perfetto load directly.
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`  // microseconds
	Dur  float64           `json:"dur"` // microseconds
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// ChromeEvents renders one flight as Chrome trace events: a root event
// spanning the whole flight plus one event per span, all on the given
// tid. base is the epoch the ts offsets are relative to (use the
// earliest flight start when exporting several flights together).
func ChromeEvents(r FlightRecord, base time.Time, tid int) []chromeEvent {
	off := float64(r.Start.Sub(base).Microseconds())
	evs := make([]chromeEvent, 0, len(r.Spans)+1)
	evs = append(evs, chromeEvent{
		Name: "job " + r.Label, Ph: "X",
		Ts: off, Dur: float64(r.Total.Microseconds()),
		Pid: 1, Tid: tid,
		Args: map[string]string{"trace_id": r.ID},
	})
	for _, s := range r.Spans {
		evs = append(evs, chromeEvent{
			Name: s.Name, Ph: "X",
			Ts: off + float64(s.Start.Microseconds()), Dur: float64(s.Dur.Microseconds()),
			Pid: 1, Tid: tid,
		})
	}
	return evs
}

// WriteChrome writes every retained flight as one Chrome trace-event
// JSON document ({"traceEvents": [...]}), each flight on its own tid.
func (t *Tracer) WriteChrome(w io.Writer) error {
	recs := t.Records()
	var base time.Time
	for i, r := range recs {
		if i == 0 || r.Start.Before(base) {
			base = r.Start
		}
	}
	all := make([]chromeEvent, 0, len(recs)*8)
	for i, r := range recs {
		all = append(all, ChromeEvents(r, base, i+1)...)
	}
	doc := struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{TraceEvents: all}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// WriteChromeFlight writes a single flight as a standalone Chrome
// trace-event document (the ?format=chrome rendering of /v1/trace/{id}).
func WriteChromeFlight(w io.Writer, r FlightRecord) error {
	doc := struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{TraceEvents: ChromeEvents(r, r.Start, 1)}
	return json.NewEncoder(w).Encode(doc)
}

// FormatFlight pretty-prints a flight's span tree for terminals
// (fleetctl trace). Spans are listed in start order with offsets and
// durations; the footer carries the gap-accounted remainder.
func FormatFlight(r FlightRecord) string {
	spans := append([]Span(nil), r.Spans...)
	sort.Slice(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
	var b []byte
	b = fmt.Appendf(b, "trace %s  %s  total %s\n", r.ID, r.Label, r.Total.Round(time.Microsecond))
	for _, s := range spans {
		b = fmt.Appendf(b, "  %-10s +%-12s %s\n",
			s.Name, s.Start.Round(time.Microsecond), s.Dur.Round(time.Microsecond))
	}
	b = fmt.Appendf(b, "  %-10s %s\n", "(gap)", r.Unaccounted().Round(time.Microsecond))
	return string(b)
}
