package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLSQAllocateRelease(t *testing.T) {
	q := NewLSQ(4)
	for i := int64(0); i < 4; i++ {
		if !q.Allocate(i, i%2 == 0) {
			t.Fatalf("allocation %d refused below capacity", i)
		}
	}
	if q.Allocate(4, false) {
		t.Fatal("allocation above capacity accepted")
	}
	if !q.Full() {
		t.Error("Full() = false at capacity")
	}
	q.Release(0)
	if q.Len() != 3 {
		t.Errorf("Len = %d after release, want 3", q.Len())
	}
	if !q.Allocate(4, false) {
		t.Fatal("allocation refused after release")
	}
}

func TestLSQReleaseOutOfOrderPanics(t *testing.T) {
	q := NewLSQ(4)
	q.Allocate(0, false)
	q.Allocate(1, false)
	defer func() {
		if recover() == nil {
			t.Error("out-of-order release should panic")
		}
	}()
	q.Release(1)
}

func TestLoadBlockedByUnknownStoreAddress(t *testing.T) {
	q := NewLSQ(8)
	q.Allocate(1, true)  // store, address unknown
	q.Allocate(2, false) // load
	q.SetAddress(2, 0x100)
	if got := q.ProbeLoad(2, 0x100); got != LoadBlocked {
		t.Errorf("ProbeLoad = %v, want blocked (older store address unknown)", got)
	}
}

func TestStoreToLoadForwarding(t *testing.T) {
	q := NewLSQ(8)
	q.Allocate(1, true)
	q.Allocate(2, false)
	q.SetAddress(1, 0x100)
	if got := q.ProbeLoad(2, 0x100); got != LoadWaitData {
		t.Errorf("ProbeLoad = %v, want wait-data (store data not produced)", got)
	}
	q.SetStoreData(1)
	if got := q.ProbeLoad(2, 0x100); got != LoadForward {
		t.Errorf("ProbeLoad = %v, want forward", got)
	}
	if q.ForwardHits != 1 {
		t.Errorf("ForwardHits = %d, want 1", q.ForwardHits)
	}
}

func TestLoadAccessWhenNoConflict(t *testing.T) {
	q := NewLSQ(8)
	q.Allocate(1, true)
	q.Allocate(2, false)
	q.SetAddress(1, 0x200) // different address
	if got := q.ProbeLoad(2, 0x100); got != LoadAccess {
		t.Errorf("ProbeLoad = %v, want access", got)
	}
}

func TestYoungestOlderStoreWins(t *testing.T) {
	q := NewLSQ(8)
	q.Allocate(1, true)
	q.Allocate(2, true)
	q.Allocate(3, false)
	q.SetAddress(1, 0x100)
	q.SetStoreData(1)
	q.SetAddress(2, 0x100) // younger store, same address, data NOT ready
	if got := q.ProbeLoad(3, 0x100); got != LoadWaitData {
		t.Errorf("ProbeLoad = %v, want wait-data (youngest matching store lacks data)", got)
	}
}

func TestYoungerStoresDoNotAffectLoad(t *testing.T) {
	q := NewLSQ(8)
	q.Allocate(1, false)
	q.Allocate(2, true) // younger than the load
	if got := q.ProbeLoad(1, 0x100); got != LoadAccess {
		t.Errorf("ProbeLoad = %v, want access (younger store is irrelevant)", got)
	}
}

// Property: with all store addresses known and no address match, loads are
// never blocked; with any older unknown-address store, always blocked.
func TestLSQDisambiguationProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%20 + 2
		rng := rand.New(rand.NewSource(seed))
		q := NewLSQ(64)
		anyUnknown := false
		for i := 0; i < n; i++ {
			seq := int64(i)
			if rng.Intn(2) == 0 {
				q.Allocate(seq, true)
				if rng.Intn(4) > 0 {
					q.SetAddress(seq, uint64(0x1000+i*64)) // unique addresses
				} else {
					anyUnknown = true
				}
			} else {
				q.Allocate(seq, false)
			}
		}
		got := q.ProbeLoad(int64(n), 0x9999)
		if anyUnknown {
			return got == LoadBlocked
		}
		return got == LoadAccess
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
