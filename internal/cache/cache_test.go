package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func smallCache() *Cache {
	return MustNew(Config{SizeBytes: 1024, LineBytes: 64, Assoc: 2, HitLatency: 1})
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{SizeBytes: 0, LineBytes: 64, Assoc: 2},
		{SizeBytes: 1024, LineBytes: 60, Assoc: 2},  // non-power-of-two line
		{SizeBytes: 1000, LineBytes: 64, Assoc: 2},  // non-power-of-two sets
		{SizeBytes: 1024, LineBytes: 64, Assoc: -1}, // negative assoc
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: expected validation error for %+v", i, cfg)
		}
	}
	good := Config{SizeBytes: 32 << 10, LineBytes: 64, Assoc: 4, HitLatency: 3}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestMissThenHit(t *testing.T) {
	c := smallCache()
	if c.Lookup(0x1000) {
		t.Fatal("cold cache hit")
	}
	c.Fill(0x1000)
	if !c.Lookup(0x1000) {
		t.Fatal("miss after fill")
	}
	if !c.Lookup(0x1008) {
		t.Fatal("same line, different offset should hit")
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 {
		t.Errorf("stats = %+v, want 2 hits / 1 miss", st)
	}
}

func TestLRUEviction(t *testing.T) {
	// 2-way cache, 8 sets of 64B lines: addresses 0, 512, 1024 map to set 0.
	c := smallCache()
	c.Fill(0)
	c.Fill(512)
	c.Lookup(0) // touch 0: 512 becomes LRU
	c.Fill(1024)
	if !c.Lookup(0) {
		t.Error("MRU line 0 was evicted")
	}
	if c.Lookup(512) {
		t.Error("LRU line 512 survived eviction")
	}
}

func TestFillIdempotentOnPresentLine(t *testing.T) {
	c := smallCache()
	c.Fill(0)
	if evicted := c.Fill(0); evicted {
		t.Error("refilling a present line must not evict")
	}
}

func TestPortReservation(t *testing.T) {
	c := MustNew(Config{SizeBytes: 1024, LineBytes: 64, Assoc: 2, HitLatency: 1, ReadPorts: 2, WritePorts: 1})
	if !c.ReservePort(10, false) || !c.ReservePort(10, false) {
		t.Fatal("two read ports should be available")
	}
	if c.ReservePort(10, false) {
		t.Fatal("third read same cycle should fail")
	}
	if !c.ReservePort(10, true) {
		t.Fatal("write port should be available")
	}
	if c.ReservePort(10, true) {
		t.Fatal("second write same cycle should fail")
	}
	// Next cycle: ports reset.
	if !c.ReservePort(11, false) {
		t.Fatal("read port should reset next cycle")
	}
}

func TestUnlimitedPorts(t *testing.T) {
	c := smallCache()
	for i := 0; i < 100; i++ {
		if !c.ReservePort(5, i%2 == 0) {
			t.Fatal("unlimited ports should never refuse")
		}
	}
}

// Property: hits + misses == lookups, for random address streams.
func TestStatsBalanceProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw) + 1
		rng := rand.New(rand.NewSource(seed))
		c := smallCache()
		for i := 0; i < n; i++ {
			addr := uint64(rng.Intn(4096))
			if !c.Lookup(addr) {
				c.Fill(addr)
			}
		}
		return c.Stats().Accesses() == uint64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: a working set that fits in the cache never misses after warmup.
func TestNoCapacityMissWhenFitsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := smallCache() // 1KB: 16 lines
		// Warm 8 distinct lines in one half of the sets.
		lines := make([]uint64, 8)
		for i := range lines {
			lines[i] = uint64(i) * 64
			c.Fill(lines[i])
		}
		for i := 0; i < 200; i++ {
			if !c.Lookup(lines[rng.Intn(len(lines))]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestHierarchyLevels(t *testing.T) {
	h, err := NewHierarchy(DefaultHierarchyConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Cold access: memory.
	res, ok := h.Access(0, 0x4000, false)
	if !ok {
		t.Fatal("access refused on empty MSHR file")
	}
	if res.Level != 3 {
		t.Errorf("cold access level = %d, want 3 (memory)", res.Level)
	}
	if res.Ready < 500 {
		t.Errorf("memory access ready at %d, want ≥ 500", res.Ready)
	}
	// After the fill completes, same line is an L1 hit.
	res2, _ := h.Access(res.Ready+1, 0x4000, false)
	if res2.Level != 1 {
		t.Errorf("post-fill access level = %d, want 1", res2.Level)
	}
	if got := res2.Ready - (res.Ready + 1); got != 3 {
		t.Errorf("L1 hit latency = %d, want 3", got)
	}
}

func TestHierarchyMSHRMerge(t *testing.T) {
	h, _ := NewHierarchy(DefaultHierarchyConfig())
	first, _ := h.Access(0, 0x8000, false)
	second, ok := h.Access(1, 0x8008, false) // same line
	if !ok {
		t.Fatal("merge refused")
	}
	if !second.Merged {
		t.Error("same-line access should merge onto the in-flight MSHR")
	}
	if second.Ready < first.Ready {
		t.Error("merged access cannot be ready before the fill")
	}
}

func TestHierarchyMSHRFull(t *testing.T) {
	cfg := DefaultHierarchyConfig()
	cfg.MSHRs = 2
	h, _ := NewHierarchy(cfg)
	h.Access(0, 0x10000, false)
	h.Access(0, 0x20000, false)
	if _, ok := h.Access(0, 0x30000, false); ok {
		t.Fatal("third concurrent miss should be refused with 2 MSHRs")
	}
	if h.MSHRFullEvents != 1 {
		t.Errorf("MSHRFullEvents = %d, want 1", h.MSHRFullEvents)
	}
	// After the fills complete, misses are accepted again.
	if _, ok := h.Access(2000, 0x30000, false); !ok {
		t.Fatal("miss refused after MSHRs drained")
	}
}

func TestHierarchyL2Hit(t *testing.T) {
	h, _ := NewHierarchy(DefaultHierarchyConfig())
	res, _ := h.Access(0, 0x40000, false)
	// Evict the line from tiny... L1 is 32KB/4-way: fill 5 conflicting lines.
	// Conflict set stride = sets*lineBytes = 128*64 = 8KB.
	for i := 1; i <= 4; i++ {
		h.Access(res.Ready+int64(i), 0x40000+uint64(i)*8192, false)
	}
	far := res.Ready + 600
	res2, _ := h.Access(far, 0x40000, false)
	if res2.Level != 2 {
		t.Errorf("level = %d, want 2 (L2 hit after L1 eviction)", res2.Level)
	}
	if got := res2.Ready - far; got != 13 {
		t.Errorf("L2 hit latency = %d, want 13", got)
	}
}
