package cache

import "testing"

// TestTaggedPrefetchHidesStream verifies the tagged stream prefetcher: a
// sequential sweep should, after startup, be served at L1-hit or merged
// latency rather than paying memory latency per line.
func TestTaggedPrefetchHidesStream(t *testing.T) {
	h, err := NewHierarchy(DefaultHierarchyConfig())
	if err != nil {
		t.Fatal(err)
	}
	cycle := int64(0)
	memLevelAccesses := 0
	const lines = 64
	for line := 0; line < lines; line++ {
		for word := 0; word < 8; word++ {
			addr := uint64(0x100000 + line*64 + word*8)
			res, ok := h.Access(cycle, addr, false)
			if !ok {
				cycle += 2
				continue
			}
			if res.Level == 3 {
				memLevelAccesses++
			}
			// Consume slowly enough for the stream to run ahead.
			cycle += 12
		}
	}
	// Only the first access should see memory directly; everything else is
	// covered by in-flight or completed prefetches.
	if memLevelAccesses > 3 {
		t.Errorf("memory-level demand accesses = %d, want ≤ 3 (prefetcher should cover the stream)",
			memLevelAccesses)
	}
	if h.Prefetches == 0 {
		t.Error("no prefetches issued on a sequential stream")
	}
}

func TestPrefetchDisabled(t *testing.T) {
	cfg := DefaultHierarchyConfig()
	cfg.PrefetchDegree = 0
	h, err := NewHierarchy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for line := 0; line < 16; line++ {
		h.Access(int64(line*600), uint64(0x200000+line*64), false)
	}
	if h.Prefetches != 0 {
		t.Errorf("prefetches issued with degree 0: %d", h.Prefetches)
	}
	if h.MemAccesses != 16 {
		t.Errorf("every line of a cold sweep should miss to memory: %d/16", h.MemAccesses)
	}
}

func TestPrefetchDoesNotConsumeDemandMSHRs(t *testing.T) {
	cfg := DefaultHierarchyConfig()
	cfg.MSHRs = 2
	cfg.PrefetchDegree = 4
	h, err := NewHierarchy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Two demand misses fill the MSHRs; their prefetches must not make the
	// THIRD demand miss be refused for longer than the two demand fills.
	h.Access(0, 0x300000, false)
	h.Access(0, 0x310000, false)
	if _, ok := h.Access(0, 0x320000, false); ok {
		t.Fatal("third demand miss should be refused with 2 MSHRs")
	}
	// After the demand fills complete, capacity is back even though
	// prefetches were launched.
	if _, ok := h.Access(2000, 0x320000, false); !ok {
		t.Error("demand miss refused after MSHRs drained; prefetches leak MSHRs")
	}
}

func TestPrefetchedLineCountsAsDemandHitLater(t *testing.T) {
	h, _ := NewHierarchy(DefaultHierarchyConfig())
	res1, _ := h.Access(0, 0x400000, false) // miss; prefetches 0x400040...
	// Access the prefetched next line long after its fill completed.
	late := res1.Ready + 1000
	res2, ok := h.Access(late, 0x400040, false)
	if !ok {
		t.Fatal("access refused")
	}
	if res2.Level != 1 {
		t.Errorf("completed prefetch should serve as L1 hit, got level %d", res2.Level)
	}
	if got := res2.Ready - late; got != 3 {
		t.Errorf("latency = %d, want 3 (L1 hit)", got)
	}
}
