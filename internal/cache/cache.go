// Package cache implements the memory substrate: set-associative caches
// with LRU replacement and port limits, a two-level hierarchy with MSHRs,
// and the unified load/store queue with store-to-load forwarding that the
// paper's clustered backend shares across clusters.
package cache

import "fmt"

// Config describes one cache level.
type Config struct {
	// SizeBytes is the total capacity.
	SizeBytes int
	// LineBytes is the line size (power of two).
	LineBytes int
	// Assoc is the set associativity.
	Assoc int
	// HitLatency is the access latency in cycles on a hit.
	HitLatency int
	// ReadPorts and WritePorts bound same-cycle accesses; zero means
	// unlimited.
	ReadPorts, WritePorts int
}

// Validate checks the geometry.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.LineBytes <= 0 || c.Assoc <= 0 {
		return fmt.Errorf("cache: non-positive geometry %+v", c)
	}
	if c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cache: line size %d not a power of two", c.LineBytes)
	}
	sets := c.SizeBytes / (c.LineBytes * c.Assoc)
	if sets <= 0 || sets&(sets-1) != 0 {
		return fmt.Errorf("cache: set count %d not a positive power of two", sets)
	}
	return nil
}

type line struct {
	tag   uint64
	valid bool
	// lastUse orders lines for LRU; larger is more recent.
	lastUse uint64
}

// Stats accumulates cache event counts.
type Stats struct {
	Hits, Misses, Evictions uint64
}

// Accesses returns hits + misses.
func (s Stats) Accesses() uint64 { return s.Hits + s.Misses }

// Cache is a set-associative cache with true-LRU replacement. It models
// contents only (hit/miss); timing lives in Hierarchy.
type Cache struct {
	cfg      Config
	sets     [][]line
	setShift uint
	setMask  uint64
	useClock uint64
	stats    Stats

	// per-cycle port accounting
	portCycle  int64
	readsUsed  int
	writesUsed int
}

// New builds a cache from a validated config.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nsets := cfg.SizeBytes / (cfg.LineBytes * cfg.Assoc)
	c := &Cache{cfg: cfg, sets: make([][]line, nsets)}
	// One flat backing array for all sets: building a simulated core is on
	// the experiment hot path, and per-set slices cost thousands of
	// allocations for a large L2.
	backing := make([]line, nsets*cfg.Assoc)
	for i := range c.sets {
		c.sets[i] = backing[i*cfg.Assoc : (i+1)*cfg.Assoc : (i+1)*cfg.Assoc]
	}
	shift := uint(0)
	for 1<<shift != cfg.LineBytes {
		shift++
	}
	c.setShift = shift
	c.setMask = uint64(nsets - 1)
	return c, nil
}

// MustNew builds a cache, panicking on config errors. For tests.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Stats returns a copy of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

func (c *Cache) indexTag(addr uint64) (int, uint64) {
	lineAddr := addr >> c.setShift
	return int(lineAddr & c.setMask), lineAddr >> uint(popcount(c.setMask))
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// ReservePort claims a read or write port for the given cycle. It reports
// whether a port was available; failed reservations consume nothing.
func (c *Cache) ReservePort(cycle int64, write bool) bool {
	if cycle != c.portCycle {
		c.portCycle = cycle
		c.readsUsed, c.writesUsed = 0, 0
	}
	if write {
		if c.cfg.WritePorts > 0 && c.writesUsed >= c.cfg.WritePorts {
			return false
		}
		c.writesUsed++
		return true
	}
	if c.cfg.ReadPorts > 0 && c.readsUsed >= c.cfg.ReadPorts {
		return false
	}
	c.readsUsed++
	return true
}

// Lookup probes for addr without filling. Touches LRU on hit.
func (c *Cache) Lookup(addr uint64) bool {
	set, tag := c.indexTag(addr)
	for i := range c.sets[set] {
		ln := &c.sets[set][i]
		if ln.valid && ln.tag == tag {
			c.useClock++
			ln.lastUse = c.useClock
			c.stats.Hits++
			return true
		}
	}
	c.stats.Misses++
	return false
}

// Contains probes for addr without touching statistics or LRU state
// (internal probes such as prefetch filtering).
func (c *Cache) Contains(addr uint64) bool {
	set, tag := c.indexTag(addr)
	for i := range c.sets[set] {
		ln := &c.sets[set][i]
		if ln.valid && ln.tag == tag {
			return true
		}
	}
	return false
}

// Fill inserts the line holding addr, evicting the LRU way if needed.
// Returns whether an eviction of a valid line occurred.
func (c *Cache) Fill(addr uint64) bool {
	set, tag := c.indexTag(addr)
	victim := 0
	for i := range c.sets[set] {
		ln := &c.sets[set][i]
		if ln.valid && ln.tag == tag {
			// Already present (MSHR race); refresh LRU only.
			c.useClock++
			ln.lastUse = c.useClock
			return false
		}
		if !ln.valid {
			victim = i
			break
		}
		if c.sets[set][i].lastUse < c.sets[set][victim].lastUse {
			victim = i
		}
	}
	evicted := c.sets[set][victim].valid
	if evicted {
		c.stats.Evictions++
	}
	c.useClock++
	c.sets[set][victim] = line{tag: tag, valid: true, lastUse: c.useClock}
	return evicted
}

// LineAddr returns the line-aligned address of addr.
func (c *Cache) LineAddr(addr uint64) uint64 {
	return addr &^ (uint64(c.cfg.LineBytes) - 1)
}

// Reset restores post-construction state (between runs) without
// reallocating: the flat line backing is zeroed in place.
func (c *Cache) Reset() {
	for i := range c.sets {
		set := c.sets[i]
		for j := range set {
			set[j] = line{}
		}
	}
	c.useClock = 0
	c.stats = Stats{}
	c.portCycle = 0
	c.readsUsed, c.writesUsed = 0, 0
}
