package cache

import "fmt"

// LSQ is the unified load/store queue shared by all clusters (paper §2:
// "The Load/Store Queue and the data cache are unified and accessed by
// clusters through dedicated buses"). Loads and stores reserve a slot at
// dispatch, addresses arrive after address generation in the owning
// cluster, and entries drain at commit.
//
// Memory disambiguation is conservative: a load may access memory only
// when every older store's address is known; an exact-address match with
// data forwards from the store (store-to-load forwarding), otherwise the
// load reads the cache.
type LSQ struct {
	cap int
	// buf is a ring holding the live entries in program order (ascending
	// seq): logical entry i lives at buf[(head+i)&mask]. The ring is sized
	// once at construction, so allocate/release cycles never allocate.
	buf  []lsqEntry
	mask int
	head int
	n    int

	// ForwardHits counts successful store-to-load forwards.
	ForwardHits uint64
}

type lsqEntry struct {
	seq       int64
	isStore   bool
	addr      uint64
	addrKnown bool
	dataReady bool // stores only: data operand produced
}

// NewLSQ builds an LSQ with the given capacity.
func NewLSQ(capacity int) *LSQ {
	if capacity <= 0 {
		panic(fmt.Sprintf("cache: LSQ capacity %d", capacity))
	}
	size := 1
	for size < capacity {
		size <<= 1
	}
	return &LSQ{cap: capacity, buf: make([]lsqEntry, size), mask: size - 1}
}

// at returns the logical i-th oldest live entry.
func (q *LSQ) at(i int) *lsqEntry { return &q.buf[(q.head+i)&q.mask] }

// Len returns the live entry count; Cap the capacity.
func (q *LSQ) Len() int { return q.n }

// Cap returns the configured capacity.
func (q *LSQ) Cap() int { return q.cap }

// Full reports whether allocation would fail.
func (q *LSQ) Full() bool { return q.n >= q.cap }

// Allocate reserves a slot for the memory op with the given sequence
// number at dispatch. Sequence numbers must arrive in increasing order.
func (q *LSQ) Allocate(seq int64, isStore bool) bool {
	if q.Full() {
		return false
	}
	if q.n > 0 && q.at(q.n-1).seq >= seq {
		panic(fmt.Sprintf("cache: LSQ allocation out of order: %d after %d", seq, q.at(q.n-1).seq))
	}
	*q.at(q.n) = lsqEntry{seq: seq, isStore: isStore}
	q.n++
	return true
}

func (q *LSQ) find(seq int64) *lsqEntry {
	// Binary search by seq over the logical order.
	lo, hi := 0, q.n
	for lo < hi {
		mid := (lo + hi) / 2
		if q.at(mid).seq < seq {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < q.n && q.at(lo).seq == seq {
		return q.at(lo)
	}
	return nil
}

// SetAddress records the op's effective address after address generation.
func (q *LSQ) SetAddress(seq int64, addr uint64) {
	e := q.find(seq)
	if e == nil {
		panic(fmt.Sprintf("cache: SetAddress for unknown LSQ entry %d", seq))
	}
	e.addr = addr
	e.addrKnown = true
}

// SetStoreData marks the store's data operand as produced.
func (q *LSQ) SetStoreData(seq int64) {
	e := q.find(seq)
	if e == nil || !e.isStore {
		panic(fmt.Sprintf("cache: SetStoreData for non-store LSQ entry %d", seq))
	}
	e.dataReady = true
}

// LoadStatus classifies a load's disambiguation state.
type LoadStatus int

const (
	// LoadBlocked: an older store's address is unknown; retry later.
	LoadBlocked LoadStatus = iota
	// LoadForward: an older same-address store with ready data forwards.
	LoadForward
	// LoadWaitData: an older same-address store exists but its data is not
	// produced yet; retry later.
	LoadWaitData
	// LoadAccess: no conflict; the load may read the cache.
	LoadAccess
)

// String names the status.
func (s LoadStatus) String() string {
	switch s {
	case LoadBlocked:
		return "blocked"
	case LoadForward:
		return "forward"
	case LoadWaitData:
		return "wait-data"
	case LoadAccess:
		return "access"
	}
	return fmt.Sprintf("status(%d)", int(s))
}

// ProbeLoad evaluates disambiguation for the load with the given seq and
// address. The youngest older same-address store wins; forwarding counts
// only when this returns LoadForward.
func (q *LSQ) ProbeLoad(seq int64, addr uint64) LoadStatus {
	var match *lsqEntry
	for i := 0; i < q.n; i++ {
		e := q.at(i)
		if e.seq >= seq {
			break
		}
		if !e.isStore {
			continue
		}
		if !e.addrKnown {
			return LoadBlocked
		}
		if e.addr == addr {
			match = e
		}
	}
	if match == nil {
		return LoadAccess
	}
	if match.dataReady {
		q.ForwardHits++
		return LoadForward
	}
	return LoadWaitData
}

// Release drops the entry at commit. Entries must be released in program
// order (the ROB guarantees this).
func (q *LSQ) Release(seq int64) {
	if q.n == 0 || q.at(0).seq != seq {
		panic(fmt.Sprintf("cache: LSQ release out of order: head=%v want %d", q.headSeq(), seq))
	}
	q.head = (q.head + 1) & q.mask
	q.n--
}

func (q *LSQ) headSeq() int64 {
	if q.n == 0 {
		return -1
	}
	return q.at(0).seq
}

// Reset clears all entries (between runs).
func (q *LSQ) Reset() {
	q.head, q.n = 0, 0
	q.ForwardHits = 0
}
