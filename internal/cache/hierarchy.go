package cache

import "fmt"

// HierarchyConfig assembles the two-level hierarchy of the paper's Table 2:
// L1D 32KB/4-way/3-cycle with 2R+1W ports, unified L2 2MB/16-way/13-cycle,
// memory ≥500 cycles, and a bounded miss-status-holding-register file.
type HierarchyConfig struct {
	L1, L2     Config
	MemLatency int
	// MSHRs bounds outstanding L1 misses; zero means 16.
	MSHRs int
	// PrefetchDegree is the number of sequential next lines fetched on a
	// demand miss (a simple stream prefetcher, standard on the paper's era
	// of hardware). Zero disables prefetching; negative means default (2).
	PrefetchDegree int
}

// DefaultHierarchyConfig returns the paper's Table 2 memory parameters.
func DefaultHierarchyConfig() HierarchyConfig {
	return HierarchyConfig{
		L1: Config{
			SizeBytes: 32 << 10, LineBytes: 64, Assoc: 4,
			HitLatency: 3, ReadPorts: 2, WritePorts: 1,
		},
		L2: Config{
			SizeBytes: 2 << 20, LineBytes: 64, Assoc: 16,
			HitLatency: 13,
		},
		MemLatency:     500,
		MSHRs:          16,
		PrefetchDegree: 4,
	}
}

// mshr tracks one outstanding line fill.
type mshr struct {
	lineAddr uint64
	ready    int64 // cycle at which the fill completes
}

// AccessResult reports one hierarchy access.
type AccessResult struct {
	// Ready is the cycle the data is available.
	Ready int64
	// Level is 1 (L1 hit), 2 (L2 hit) or 3 (memory).
	Level int
	// Merged reports the access coalesced onto an in-flight MSHR.
	Merged bool
}

// Hierarchy is the shared data-cache hierarchy. It is accessed by all
// clusters through the unified LSQ, per the paper's design.
type Hierarchy struct {
	cfg   HierarchyConfig
	l1    *Cache
	l2    *Cache
	mshrs []mshr
	// prefetches tracks in-flight prefetched lines (separate from demand
	// MSHRs so prefetching never starves demand misses).
	prefetches map[uint64]int64

	// Counters.
	L1Hits, L2Hits, MemAccesses uint64
	MSHRFullEvents, Prefetches  uint64
}

// NewHierarchy builds the hierarchy.
func NewHierarchy(cfg HierarchyConfig) (*Hierarchy, error) {
	if cfg.MSHRs == 0 {
		cfg.MSHRs = 16
	}
	l1, err := New(cfg.L1)
	if err != nil {
		return nil, fmt.Errorf("L1: %w", err)
	}
	l2, err := New(cfg.L2)
	if err != nil {
		return nil, fmt.Errorf("L2: %w", err)
	}
	if cfg.PrefetchDegree < 0 {
		cfg.PrefetchDegree = 2
	}
	return &Hierarchy{cfg: cfg, l1: l1, l2: l2, prefetches: make(map[uint64]int64)}, nil
}

// L1 exposes the first-level cache (for port reservation by the LSQ).
func (h *Hierarchy) L1() *Cache { return h.l1 }

// expireMSHRs drops completed fills and completed prefetch records (their
// lines already sit in the caches).
func (h *Hierarchy) expireMSHRs(cycle int64) {
	out := h.mshrs[:0]
	for _, m := range h.mshrs {
		if m.ready > cycle {
			out = append(out, m)
		}
	}
	h.mshrs = out
	if len(h.prefetches) > 64 {
		for line, ready := range h.prefetches {
			if ready <= cycle {
				delete(h.prefetches, line)
			}
		}
	}
}

// Access performs a load or store probe at the given cycle and returns when
// the data will be ready, or ok=false if the access must retry (MSHR file
// full). Fills are performed eagerly (contents updated now, timing via the
// returned Ready cycle), a standard trace-simulator simplification.
func (h *Hierarchy) Access(cycle int64, addr uint64, write bool) (AccessResult, bool) {
	h.expireMSHRs(cycle)
	lineAddr := h.l1.LineAddr(addr)

	// Coalesce with an in-flight fill first: the line is not yet in L1.
	for _, m := range h.mshrs {
		if m.lineAddr == lineAddr {
			return AccessResult{Ready: m.ready + int64(h.cfg.L1.HitLatency), Level: 2, Merged: true}, true
		}
	}
	// A completed prefetch behaves as an L1 hit; an in-flight one as a
	// merged miss. Either way the first demand touch of a prefetched line
	// re-arms the stream (tagged prefetching), keeping sequential streams
	// running ahead of the consumer.
	if pf, ok := h.prefetches[lineAddr]; ok {
		h.prefetchAfter(cycle, lineAddr)
		if pf <= cycle {
			delete(h.prefetches, lineAddr)
		} else {
			return AccessResult{Ready: pf + int64(h.cfg.L1.HitLatency), Level: 2, Merged: true}, true
		}
	}
	if h.l1.Lookup(addr) {
		h.L1Hits++
		return AccessResult{Ready: cycle + int64(h.cfg.L1.HitLatency), Level: 1}, true
	}
	// L1 miss: need an MSHR.
	if len(h.mshrs) >= h.cfg.MSHRs {
		h.MSHRFullEvents++
		return AccessResult{}, false
	}
	fillReady, level := h.fill(cycle, addr)
	h.mshrs = append(h.mshrs, mshr{lineAddr: lineAddr, ready: fillReady})
	h.prefetchAfter(cycle, lineAddr)
	return AccessResult{Ready: fillReady, Level: level}, true
}

// fill brings the line into L1 (and L2 on an L2 miss) and returns the fill
// completion cycle and the serving level.
func (h *Hierarchy) fill(cycle int64, addr uint64) (int64, int) {
	if h.l2.Lookup(addr) {
		h.L2Hits++
		h.l1.Fill(addr)
		return cycle + int64(h.cfg.L2.HitLatency), 2
	}
	h.MemAccesses++
	h.l2.Fill(addr)
	h.l1.Fill(addr)
	return cycle + int64(h.cfg.L2.HitLatency) + int64(h.cfg.MemLatency), 3
}

// prefetchAfter launches the sequential next-line prefetches that follow a
// demand miss. Prefetches use their own tracking (not demand MSHRs, so
// they never starve demand misses) and fill without touching demand
// hit/miss statistics.
func (h *Hierarchy) prefetchAfter(cycle int64, lineAddr uint64) {
	lineBytes := uint64(h.cfg.L1.LineBytes)
	for d := 1; d <= h.cfg.PrefetchDegree; d++ {
		next := lineAddr + uint64(d)*lineBytes
		if _, inflight := h.prefetches[next]; inflight {
			continue
		}
		already := false
		for _, m := range h.mshrs {
			if m.lineAddr == next {
				already = true
				break
			}
		}
		if already || h.l1.Contains(next) {
			continue
		}
		lat := int64(h.cfg.L2.HitLatency)
		if !h.l2.Contains(next) {
			lat += int64(h.cfg.MemLatency)
			h.l2.Fill(next)
		}
		h.l1.Fill(next)
		h.prefetches[next] = cycle + lat
		h.Prefetches++
	}
}

// OutstandingMisses returns the live MSHR count (after expiry at cycle).
func (h *Hierarchy) OutstandingMisses(cycle int64) int {
	h.expireMSHRs(cycle)
	return len(h.mshrs)
}

// Reset restores post-construction state (between runs) without
// reallocating: cache contents are zeroed in place, the MSHR backing and
// prefetch map are kept.
func (h *Hierarchy) Reset() {
	h.l1.Reset()
	h.l2.Reset()
	h.mshrs = h.mshrs[:0]
	clear(h.prefetches)
	h.L1Hits, h.L2Hits, h.MemAccesses = 0, 0, 0
	h.MSHRFullEvents, h.Prefetches = 0, 0
}
