package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"clustersim/internal/prog"
	"clustersim/internal/uarch"
)

// Binary trace format: traces can be captured once and replayed across
// configurations, mirroring how the paper's simulator executes stored IA32
// traces. The format carries the static ops (with annotations) followed by
// the dynamic stream, so a saved trace is self-contained.
//
//	magic   "CSTR" u32
//	version u32
//	nameLen u32, name bytes
//	nStatic u32, per static op: opcode u8, dst/src1/src2 i16,
//	        memPattern u8, stream i32, stride i32, workingSet i64,
//	        takenProb f64, bias f64, vc i32, leader u8, static i32
//	nUops   u32, per uop: staticIdx u32, pc u32, flags u8 (bit0 taken),
//	        addr u64

const (
	traceMagic   = 0x43535452 // "CSTR"
	traceVersion = 1
)

// Save writes the trace in the binary format.
func Save(w io.Writer, tr *Trace) error {
	bw := bufio.NewWriter(w)
	le := binary.LittleEndian

	// Index the static ops referenced by the trace.
	idxOf := map[*prog.StaticOp]uint32{}
	var statics []*prog.StaticOp
	for i := range tr.Uops {
		op := tr.Uops[i].Static
		if _, ok := idxOf[op]; !ok {
			idxOf[op] = uint32(len(statics))
			statics = append(statics, op)
		}
	}

	writeU32 := func(v uint32) { _ = binary.Write(bw, le, v) }
	writeU32(traceMagic)
	writeU32(traceVersion)
	writeU32(uint32(len(tr.Name)))
	if _, err := bw.WriteString(tr.Name); err != nil {
		return err
	}

	writeU32(uint32(len(statics)))
	for _, op := range statics {
		_ = binary.Write(bw, le, uint8(op.Opcode))
		_ = binary.Write(bw, le, int16(op.Dst))
		_ = binary.Write(bw, le, int16(op.Src1))
		_ = binary.Write(bw, le, int16(op.Src2))
		_ = binary.Write(bw, le, uint8(op.Mem.Pattern))
		_ = binary.Write(bw, le, int32(op.Mem.Stream))
		_ = binary.Write(bw, le, int32(op.Mem.StrideBytes))
		_ = binary.Write(bw, le, int64(op.Mem.WorkingSet))
		_ = binary.Write(bw, le, op.TakenProb)
		_ = binary.Write(bw, le, op.Bias)
		_ = binary.Write(bw, le, int32(op.Ann.VC))
		leader := uint8(0)
		if op.Ann.Leader {
			leader = 1
		}
		_ = binary.Write(bw, le, leader)
		_ = binary.Write(bw, le, int32(op.Ann.Static))
	}

	writeU32(uint32(len(tr.Uops)))
	for i := range tr.Uops {
		u := &tr.Uops[i]
		_ = binary.Write(bw, le, idxOf[u.Static])
		_ = binary.Write(bw, le, u.PC)
		flags := uint8(0)
		if u.Taken {
			flags = 1
		}
		_ = binary.Write(bw, le, flags)
		_ = binary.Write(bw, le, u.Addr)
	}
	return bw.Flush()
}

// Load reads a trace written by Save. The returned trace owns fresh static
// ops (annotations included).
func Load(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	le := binary.LittleEndian

	var magic, version uint32
	if err := binary.Read(br, le, &magic); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if magic != traceMagic {
		return nil, fmt.Errorf("trace: bad magic %#x", magic)
	}
	if err := binary.Read(br, le, &version); err != nil {
		return nil, err
	}
	if version != traceVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", version)
	}
	var nameLen uint32
	if err := binary.Read(br, le, &nameLen); err != nil {
		return nil, err
	}
	if nameLen > 1<<20 {
		return nil, fmt.Errorf("trace: absurd name length %d", nameLen)
	}
	nameBytes := make([]byte, nameLen)
	if _, err := io.ReadFull(br, nameBytes); err != nil {
		return nil, err
	}

	var nStatic uint32
	if err := binary.Read(br, le, &nStatic); err != nil {
		return nil, err
	}
	if nStatic > 1<<24 {
		return nil, fmt.Errorf("trace: absurd static op count %d", nStatic)
	}
	statics := make([]prog.StaticOp, nStatic)
	for i := range statics {
		var opcode, pattern, leader uint8
		var dst, src1, src2 int16
		var stream, stride, vc, static int32
		var ws int64
		var takenProb, bias float64
		for _, v := range []any{&opcode, &dst, &src1, &src2, &pattern, &stream, &stride, &ws, &takenProb, &bias, &vc, &leader, &static} {
			if err := binary.Read(br, le, v); err != nil {
				return nil, fmt.Errorf("trace: static op %d: %w", i, err)
			}
		}
		statics[i] = prog.StaticOp{
			Opcode: uarch.Opcode(opcode),
			Dst:    uarch.Reg(dst), Src1: uarch.Reg(src1), Src2: uarch.Reg(src2),
			Mem: prog.MemRef{
				Pattern: prog.MemPattern(pattern), Stream: int(stream),
				StrideBytes: int(stride), WorkingSet: int(ws),
			},
			TakenProb: takenProb, Bias: bias,
			Ann: prog.Annotation{VC: int(vc), Leader: leader != 0, Static: int(static)},
		}
	}

	var nUops uint32
	if err := binary.Read(br, le, &nUops); err != nil {
		return nil, err
	}
	if nUops > 1<<28 {
		return nil, fmt.Errorf("trace: absurd uop count %d", nUops)
	}
	tr := &Trace{Name: string(nameBytes), Uops: make([]Uop, nUops)}
	for i := range tr.Uops {
		var staticIdx, pc uint32
		var flags uint8
		var addr uint64
		for _, v := range []any{&staticIdx, &pc, &flags, &addr} {
			if err := binary.Read(br, le, v); err != nil {
				return nil, fmt.Errorf("trace: uop %d: %w", i, err)
			}
		}
		if staticIdx >= nStatic {
			return nil, fmt.Errorf("trace: uop %d references static op %d of %d", i, staticIdx, nStatic)
		}
		tr.Uops[i] = Uop{
			Static: &statics[staticIdx],
			PC:     pc,
			Taken:  flags&1 != 0,
			Addr:   addr,
		}
	}
	return tr, nil
}
