package trace

import (
	"testing"
	"testing/quick"

	"clustersim/internal/prog"
	"clustersim/internal/uarch"
)

func loopProgram(t *testing.T) *prog.Program {
	t.Helper()
	b := prog.NewBuilder("loop")
	b.Int(uarch.OpAdd, uarch.IntReg(1), uarch.IntReg(1), uarch.IntReg(2))
	b.Load(uarch.IntReg(3), uarch.IntReg(1), prog.MemRef{Pattern: prog.MemStride, Stream: 0, StrideBytes: 64, WorkingSet: 1 << 16})
	b.Branch(uarch.IntReg(3), 0.9, 0.9)
	exit := b.NewBlock()
	b.Store(uarch.IntReg(3), uarch.IntReg(1), prog.MemRef{Pattern: prog.MemStride, Stream: 1, StrideBytes: 8, WorkingSet: 1 << 12})
	b.Block(0).Edge(0, 0.9).Edge(exit, 0.1)
	return b.MustBuild()
}

func TestExpandLength(t *testing.T) {
	p := loopProgram(t)
	tr := Expand(p, Options{NumUops: 1000, Seed: 1})
	if len(tr.Uops) != 1000 {
		t.Fatalf("len = %d, want 1000", len(tr.Uops))
	}
}

func TestExpandDeterministic(t *testing.T) {
	p := loopProgram(t)
	a := Expand(p, Options{NumUops: 500, Seed: 42})
	b := Expand(p, Options{NumUops: 500, Seed: 42})
	for i := range a.Uops {
		if a.Uops[i] != b.Uops[i] {
			t.Fatalf("trace diverges at uop %d", i)
		}
	}
}

func TestExpandDifferentSeedsDiffer(t *testing.T) {
	p := loopProgram(t)
	a := Expand(p, Options{NumUops: 500, Seed: 1})
	b := Expand(p, Options{NumUops: 500, Seed: 2})
	same := true
	for i := range a.Uops {
		if a.Uops[i].Taken != b.Uops[i].Taken || a.Uops[i].Addr != b.Uops[i].Addr {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical outcome/address streams")
	}
}

func TestBranchFrequencyMatchesProbability(t *testing.T) {
	p := loopProgram(t)
	tr := Expand(p, Options{NumUops: 30000, Seed: 7})
	taken, total := 0, 0
	for i := range tr.Uops {
		if tr.Uops[i].IsBranch() {
			total++
			if tr.Uops[i].Taken {
				taken++
			}
		}
	}
	if total == 0 {
		t.Fatal("no branches in trace")
	}
	rate := float64(taken) / float64(total)
	if rate < 0.85 || rate > 0.95 {
		t.Errorf("taken rate = %.3f, want ≈0.90", rate)
	}
}

func TestMemoryOpsHaveAddresses(t *testing.T) {
	p := loopProgram(t)
	tr := Expand(p, Options{NumUops: 2000, Seed: 3})
	for i := range tr.Uops {
		u := &tr.Uops[i]
		if u.IsMem() && u.Addr == 0 {
			t.Fatalf("uop %d (%v) has zero address", i, u.Static.Opcode)
		}
		if !u.IsMem() && u.Addr != 0 {
			t.Fatalf("uop %d (%v) has spurious address", i, u.Static.Opcode)
		}
	}
}

func TestStreamsDisjoint(t *testing.T) {
	p := loopProgram(t)
	tr := Expand(p, Options{NumUops: 5000, Seed: 3})
	regions := map[int]map[uint64]bool{}
	for i := range tr.Uops {
		u := &tr.Uops[i]
		if !u.IsMem() {
			continue
		}
		sid := u.Static.Mem.Stream
		if regions[sid] == nil {
			regions[sid] = map[uint64]bool{}
		}
		regions[sid][u.Addr>>30] = true
	}
	seen := map[uint64]int{}
	for sid, bases := range regions {
		for b := range bases {
			if prev, ok := seen[b]; ok && prev != sid {
				t.Fatalf("streams %d and %d share 1GB region %d", prev, sid, b)
			}
			seen[b] = sid
		}
	}
}

func TestStrideAddressesAreStrided(t *testing.T) {
	b := prog.NewBuilder("s")
	b.Load(uarch.IntReg(1), uarch.IntReg(0), prog.MemRef{Pattern: prog.MemStride, Stream: 0, StrideBytes: 64, WorkingSet: 1 << 20})
	p := b.MustBuild()
	tr := Expand(p, Options{NumUops: 100, Seed: 1})
	for i := 1; i < len(tr.Uops); i++ {
		d := tr.Uops[i].Addr - tr.Uops[i-1].Addr
		if d != 64 {
			t.Fatalf("stride at %d = %d, want 64", i, d)
		}
	}
}

func TestAddressesAligned(t *testing.T) {
	p := loopProgram(t)
	tr := Expand(p, Options{NumUops: 3000, Seed: 9})
	for i := range tr.Uops {
		if tr.Uops[i].IsMem() && tr.Uops[i].Addr%8 != 0 {
			t.Fatalf("unaligned address %#x", tr.Uops[i].Addr)
		}
	}
}

func TestPeriodFor(t *testing.T) {
	cases := []struct {
		p    float64
		want int
	}{
		{0.9, 10},
		{0.5, 2},
		{0.95, 20},
		{0.1, 10},
	}
	for _, c := range cases {
		if got := periodFor(c.p); got != c.want {
			t.Errorf("periodFor(%g) = %d, want %d", c.p, got, c.want)
		}
	}
}

func TestHighBiasBranchIsPeriodic(t *testing.T) {
	b := prog.NewBuilder("periodic")
	b.Branch(uarch.IntReg(0), 0.9, 1.0) // fully biased: deterministic pattern
	b.Edge(0, 0.9)
	exit := b.NewBlock()
	b.Int(uarch.OpAdd, uarch.IntReg(1), uarch.IntReg(0), uarch.IntReg(0))
	b.Block(0).Edge(exit, 0.1)
	p := b.MustBuild()
	tr := Expand(p, Options{NumUops: 200, Seed: 5})
	// Outcome must be exactly: taken 9, not-taken 1, repeating.
	n := 0
	for i := range tr.Uops {
		if !tr.Uops[i].IsBranch() {
			continue
		}
		want := n%10 != 9
		if tr.Uops[i].Taken != want {
			t.Fatalf("branch execution %d: taken=%v, want %v", n, tr.Uops[i].Taken, want)
		}
		n++
	}
}

// Property: expansion always yields exactly NumUops uops with non-nil
// static pointers, for arbitrary seeds.
func TestExpandTotalityProperty(t *testing.T) {
	b := prog.NewBuilder("q")
	b.Int(uarch.OpAdd, uarch.IntReg(1), uarch.IntReg(1), uarch.IntReg(2))
	b.Branch(uarch.IntReg(1), 0.7, 0.5)
	other := b.NewBlock()
	b.Int(uarch.OpMul, uarch.IntReg(2), uarch.IntReg(1), uarch.IntReg(1))
	b.Block(0).Edge(0, 0.7).Edge(other, 0.3)
	b.Block(other).Jump(0)
	p := b.MustBuild()

	f := func(seed int64, nRaw uint16) bool {
		n := int(nRaw)%300 + 1
		tr := Expand(p, Options{NumUops: n, Seed: seed})
		if len(tr.Uops) != n {
			return false
		}
		for i := range tr.Uops {
			if tr.Uops[i].Static == nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
