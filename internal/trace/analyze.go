package trace

import (
	"fmt"
	"strings"

	"clustersim/internal/uarch"
)

// Summary characterizes a dynamic trace: instruction mix, branch behaviour
// and memory footprint. The workload generator is validated against these
// numbers, and tracegen prints them.
type Summary struct {
	// Uops is the trace length.
	Uops int
	// ClassCounts is the dynamic micro-op count per class.
	ClassCounts [uarch.NumClasses]int
	// Branches and Taken count conditional branches.
	Branches, Taken int
	// UniquePCs is the static-site count reached.
	UniquePCs int
	// TouchedLines is the number of distinct 64-byte lines referenced.
	TouchedLines int
	// FootprintBytes estimates the working set (TouchedLines × 64).
	FootprintBytes int
	// AnnotatedVC and Leaders count steering annotations present.
	AnnotatedVC, Leaders int
}

// ClassFrac returns the dynamic fraction of the class.
func (s *Summary) ClassFrac(c uarch.Class) float64 {
	if s.Uops == 0 {
		return 0
	}
	return float64(s.ClassCounts[c]) / float64(s.Uops)
}

// TakenRate returns the fraction of taken conditional branches.
func (s *Summary) TakenRate() float64 {
	if s.Branches == 0 {
		return 0
	}
	return float64(s.Taken) / float64(s.Branches)
}

// Analyze scans the trace.
func Analyze(tr *Trace) *Summary {
	s := &Summary{Uops: len(tr.Uops)}
	pcs := map[uint32]bool{}
	lines := map[uint64]bool{}
	for i := range tr.Uops {
		u := &tr.Uops[i]
		s.ClassCounts[u.Static.Opcode.Class()]++
		pcs[u.PC] = true
		if u.IsBranch() {
			s.Branches++
			if u.Taken {
				s.Taken++
			}
		}
		if u.IsMem() {
			lines[u.Addr>>6] = true
		}
		if u.Static.Ann.VC >= 0 {
			s.AnnotatedVC++
			if u.Static.Ann.Leader {
				s.Leaders++
			}
		}
	}
	s.UniquePCs = len(pcs)
	s.TouchedLines = len(lines)
	s.FootprintBytes = len(lines) * 64
	return s
}

// Render formats the summary.
func (s *Summary) Render(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace %s: %d micro-ops, %d static sites\n", name, s.Uops, s.UniquePCs)
	for c := uarch.Class(0); c < uarch.NumClasses; c++ {
		if s.ClassCounts[c] == 0 {
			continue
		}
		fmt.Fprintf(&b, "  %-7s %6.1f%%\n", c, s.ClassFrac(c)*100)
	}
	if s.Branches > 0 {
		fmt.Fprintf(&b, "  branch taken rate %.1f%% (%d branches)\n", s.TakenRate()*100, s.Branches)
	}
	fmt.Fprintf(&b, "  footprint ≈ %d KB (%d lines)\n", s.FootprintBytes>>10, s.TouchedLines)
	if s.AnnotatedVC > 0 {
		fmt.Fprintf(&b, "  VC-annotated %d uops, %d chain-leader executions (mean chain %.1f uops)\n",
			s.AnnotatedVC, s.Leaders, float64(s.AnnotatedVC)/float64(max(1, s.Leaders)))
	}
	return b.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
