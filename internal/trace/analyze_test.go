package trace

import (
	"strings"
	"testing"

	"clustersim/internal/partition"
	"clustersim/internal/prog"
	"clustersim/internal/uarch"
)

func analyzedProgram(t *testing.T) *prog.Program {
	t.Helper()
	b := prog.NewBuilder("an")
	b.Int(uarch.OpAdd, uarch.IntReg(1), uarch.IntReg(1), uarch.IntReg(2))
	b.FP(uarch.OpFAdd, uarch.FPReg(1), uarch.FPReg(1), uarch.FPReg(0))
	b.Load(uarch.IntReg(3), uarch.IntReg(15), prog.MemRef{Pattern: prog.MemStride, Stream: 0, StrideBytes: 8, WorkingSet: 1 << 12})
	b.Branch(uarch.IntReg(1), 0.75, 1.0)
	b.Edge(0, 0.75).Edge(0, 0.25)
	return b.MustBuild()
}

func TestAnalyzeCounts(t *testing.T) {
	p := analyzedProgram(t)
	tr := Expand(p, Options{NumUops: 4000, Seed: 1})
	s := Analyze(tr)
	if s.Uops != 4000 {
		t.Fatalf("Uops = %d", s.Uops)
	}
	// 4-op loop: each class ≈ 25%.
	for _, c := range []uarch.Class{uarch.ClassInt, uarch.ClassFP, uarch.ClassLoad, uarch.ClassBranch} {
		if f := s.ClassFrac(c); f < 0.2 || f > 0.3 {
			t.Errorf("class %v fraction = %.3f, want ≈0.25", c, f)
		}
	}
	if s.UniquePCs != 4 {
		t.Errorf("UniquePCs = %d, want 4", s.UniquePCs)
	}
	if s.TakenRate() < 0.6 || s.TakenRate() > 0.9 {
		t.Errorf("TakenRate = %.3f, want ≈0.75", s.TakenRate())
	}
	// 1000 strided 8B loads: 8000 bytes ≈ 125 lines (within the 4KB set).
	if s.TouchedLines == 0 || s.FootprintBytes != s.TouchedLines*64 {
		t.Errorf("footprint inconsistent: %d lines, %d bytes", s.TouchedLines, s.FootprintBytes)
	}
}

func TestAnalyzeAnnotations(t *testing.T) {
	p := analyzedProgram(t)
	partition.AnnotateVC(p, partition.Options{NumVC: 2})
	tr := Expand(p, Options{NumUops: 1000, Seed: 1})
	s := Analyze(tr)
	if s.AnnotatedVC != 1000 {
		t.Errorf("AnnotatedVC = %d, want 1000", s.AnnotatedVC)
	}
	if s.Leaders == 0 || s.Leaders > s.AnnotatedVC {
		t.Errorf("Leaders = %d of %d", s.Leaders, s.AnnotatedVC)
	}
}

func TestAnalyzeRender(t *testing.T) {
	p := analyzedProgram(t)
	tr := Expand(p, Options{NumUops: 500, Seed: 2})
	out := Analyze(tr).Render("an")
	for _, want := range []string{"500 micro-ops", "branch taken rate", "footprint"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestAnalyzeEmptyTrace(t *testing.T) {
	s := Analyze(&Trace{Name: "empty"})
	if s.Uops != 0 || s.TakenRate() != 0 || s.ClassFrac(uarch.ClassInt) != 0 {
		t.Errorf("empty trace summary: %+v", s)
	}
}
