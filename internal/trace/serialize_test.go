package trace

import (
	"bytes"
	"testing"

	"clustersim/internal/prog"
	"clustersim/internal/uarch"
)

func roundTrip(t *testing.T, tr *Trace) *Trace {
	t.Helper()
	var buf bytes.Buffer
	if err := Save(&buf, tr); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	return got
}

func annotatedLoop(t *testing.T) *prog.Program {
	t.Helper()
	b := prog.NewBuilder("ser")
	b.Int(uarch.OpAdd, uarch.IntReg(1), uarch.IntReg(1), uarch.IntReg(2))
	b.Load(uarch.IntReg(3), uarch.IntReg(1), prog.MemRef{Pattern: prog.MemStride, Stream: 2, StrideBytes: 8, WorkingSet: 1 << 14})
	b.Branch(uarch.IntReg(3), 0.8, 0.9)
	b.Edge(0, 0.8).Edge(0, 0.2)
	p := b.MustBuild()
	p.Blocks[0].Ops[0].Ann = prog.Annotation{VC: 1, Leader: true, Static: -1}
	p.Blocks[0].Ops[1].Ann = prog.Annotation{VC: 0, Leader: false, Static: -1}
	return p
}

func TestSaveLoadRoundTrip(t *testing.T) {
	tr := Expand(annotatedLoop(t), Options{NumUops: 500, Seed: 3})
	got := roundTrip(t, tr)
	if got.Name != tr.Name {
		t.Errorf("name %q != %q", got.Name, tr.Name)
	}
	if len(got.Uops) != len(tr.Uops) {
		t.Fatalf("uops %d != %d", len(got.Uops), len(tr.Uops))
	}
	for i := range tr.Uops {
		a, b := &tr.Uops[i], &got.Uops[i]
		if a.PC != b.PC || a.Taken != b.Taken || a.Addr != b.Addr {
			t.Fatalf("uop %d dynamic fields differ: %+v vs %+v", i, a, b)
		}
		if *a.Static != *b.Static {
			t.Fatalf("uop %d static op differs:\n%+v\n%+v", i, *a.Static, *b.Static)
		}
	}
}

func TestRoundTripPreservesAnnotations(t *testing.T) {
	tr := Expand(annotatedLoop(t), Options{NumUops: 100, Seed: 1})
	got := roundTrip(t, tr)
	sawLeader := false
	for i := range got.Uops {
		ann := got.Uops[i].Static.Ann
		if ann.Leader {
			sawLeader = true
			if ann.VC != 1 {
				t.Errorf("leader with vc=%d, want 1", ann.VC)
			}
		}
	}
	if !sawLeader {
		t.Error("annotations lost in round trip")
	}
}

func TestRoundTripSharedStaticOps(t *testing.T) {
	// Dynamic uops from the same site must share one static op after load
	// (pointer identity), so annotations stay consistent.
	tr := Expand(annotatedLoop(t), Options{NumUops: 50, Seed: 1})
	got := roundTrip(t, tr)
	byPC := map[uint32]*prog.StaticOp{}
	for i := range got.Uops {
		u := &got.Uops[i]
		if prev, ok := byPC[u.PC]; ok && prev != u.Static {
			t.Fatal("same PC maps to different static op pointers")
		}
		byPC[u.PC] = u.Static
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a trace at all"))); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
}

func TestLoadRejectsTruncated(t *testing.T) {
	tr := Expand(annotatedLoop(t), Options{NumUops: 100, Seed: 2})
	var buf bytes.Buffer
	if err := Save(&buf, tr); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{5, len(full) / 2, len(full) - 3} {
		if _, err := Load(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestLoadRejectsWrongVersion(t *testing.T) {
	tr := Expand(annotatedLoop(t), Options{NumUops: 10, Seed: 2})
	var buf bytes.Buffer
	if err := Save(&buf, tr); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[4] = 99 // version field
	if _, err := Load(bytes.NewReader(data)); err == nil {
		t.Error("wrong version accepted")
	}
}
