// Package trace expands static programs into dynamic micro-op traces: it
// walks the CFG sampling branch outcomes, and synthesizes memory address
// streams per the static ops' memory patterns. The simulator is
// trace-driven, like the paper's event-driven simulator executing traces of
// IA32 binaries: branch outcomes and addresses are fixed in the trace, so
// every steering policy sees the identical instruction stream.
package trace

import (
	"math/rand"

	"clustersim/internal/prog"
	"clustersim/internal/uarch"
)

// Uop is one dynamic micro-op.
type Uop struct {
	// Static points at the originating static op, carrying the compiler
	// annotations (vc_id, leader mark, static cluster) to the hardware.
	Static *prog.StaticOp
	// PC identifies the static op site, for branch predictor indexing.
	PC uint32
	// Taken is the branch outcome (branches only).
	Taken bool
	// Addr is the effective memory address (loads/stores only).
	Addr uint64
}

// IsBranch reports whether the uop is a conditional branch (predictable).
func (u *Uop) IsBranch() bool { return u.Static.Opcode == uarch.OpBranch }

// IsMem reports whether the uop accesses memory.
func (u *Uop) IsMem() bool { return u.Static.Opcode.IsMem() }

// Trace is an expanded dynamic micro-op stream.
type Trace struct {
	// Name names the originating program.
	Name string
	// Uops is the dynamic stream in program order.
	Uops []Uop
}

// Options controls expansion.
type Options struct {
	// NumUops is the trace length to produce.
	NumUops int
	// Seed seeds outcome and address sampling; the same (program, seed)
	// pair always yields the identical trace.
	Seed int64
}

// streamState tracks the synthetic address generator of one memory stream.
type streamState struct {
	base  uint64
	pos   uint64
	chase uint64
}

// Expand walks the program's CFG from the entry block, sampling branch
// outcomes and synthesizing addresses, until NumUops micro-ops have been
// emitted. Terminal blocks restart at the entry (the region's enclosing
// outer loop). PCs are assigned densely per static op.
func Expand(p *prog.Program, opts Options) *Trace {
	rng := rand.New(rand.NewSource(opts.Seed))
	tr := &Trace{Name: p.Name, Uops: make([]Uop, 0, opts.NumUops)}

	// Dense PC assignment.
	pcs := map[*prog.StaticOp]uint32{}
	nextPC := uint32(0)
	p.ForEachOp(func(_ *prog.Block, _ int, op *prog.StaticOp) {
		pcs[op] = nextPC
		nextPC++
	})

	streams := map[int]*streamState{}
	iter := map[*prog.StaticOp]int{} // per-branch execution count for periodic patterns

	cur := p.Blocks[0]
	for len(tr.Uops) < opts.NumUops {
		taken := false
		for i := range cur.Ops {
			op := &cur.Ops[i]
			u := Uop{Static: op, PC: pcs[op]}
			if op.Opcode.IsMem() {
				u.Addr = nextAddr(streams, op, rng)
			}
			if op.Opcode == uarch.OpBranch {
				u.Taken = sampleBranch(op, iter, rng)
				taken = u.Taken
			}
			tr.Uops = append(tr.Uops, u)
			if len(tr.Uops) == opts.NumUops {
				return tr
			}
		}
		cur = nextBlock(p, cur, taken, rng)
	}
	return tr
}

// sampleBranch draws a branch outcome. With probability Bias the branch
// follows a deterministic periodic pattern derived from TakenProb (the
// learnable loop-backedge idiom: taken k−1 of every k executions); with
// probability 1−Bias the outcome is an independent TakenProb coin flip.
func sampleBranch(op *prog.StaticOp, iter map[*prog.StaticOp]int, rng *rand.Rand) bool {
	n := iter[op]
	iter[op] = n + 1
	if rng.Float64() < op.Bias {
		period := periodFor(op.TakenProb)
		if op.TakenProb >= 0.5 {
			return n%period != period-1
		}
		return n%period == period-1
	}
	return rng.Float64() < op.TakenProb
}

// periodFor converts a taken probability into the loop trip count whose
// backedge behaviour matches it: p=0.9 → taken 9 of every 10.
func periodFor(p float64) int {
	if p > 0.5 {
		p = 1 - p
	}
	if p < 0.01 {
		p = 0.01
	}
	period := int(1/p + 0.5)
	if period < 2 {
		period = 2
	}
	return period
}

// nextBlock picks the successor: branch blocks use the sampled outcome
// (first edge = taken target by convention), others sample the edge
// distribution; terminal blocks restart at the entry.
func nextBlock(p *prog.Program, b *prog.Block, taken bool, rng *rand.Rand) *prog.Block {
	switch len(b.Succs) {
	case 0:
		return p.Blocks[0]
	case 1:
		return p.Blocks[b.Succs[0].To]
	}
	last := &b.Ops[len(b.Ops)-1]
	if last.Opcode == uarch.OpBranch && len(b.Succs) == 2 {
		if taken {
			return p.Blocks[b.Succs[0].To]
		}
		return p.Blocks[b.Succs[1].To]
	}
	// Multiway (jump tables): sample the distribution.
	x := rng.Float64()
	acc := 0.0
	for _, e := range b.Succs {
		acc += e.Prob
		if x < acc {
			return p.Blocks[e.To]
		}
	}
	return p.Blocks[b.Succs[len(b.Succs)-1].To]
}

// nextAddr advances the stream's address generator per the op's pattern.
// Addresses are 8-byte aligned; each stream owns a disjoint 1GB region so
// distinct streams never alias.
func nextAddr(streams map[int]*streamState, op *prog.StaticOp, rng *rand.Rand) uint64 {
	s := streams[op.Mem.Stream]
	if s == nil {
		s = &streamState{base: uint64(op.Mem.Stream+1) << 30}
		streams[op.Mem.Stream] = s
	}
	ws := uint64(op.Mem.WorkingSet)
	if ws < 8 {
		ws = 8
	}
	var off uint64
	switch op.Mem.Pattern {
	case prog.MemStride:
		stride := uint64(op.Mem.StrideBytes)
		if stride == 0 {
			stride = 8
		}
		off = s.pos % ws
		s.pos += stride
	case prog.MemRandom:
		off = (uint64(rng.Int63()) % (ws / 8)) * 8
	case prog.MemChase:
		// Next address is a hash of the previous one: no spatial locality,
		// serialized in the program via the register dependence.
		s.chase = s.chase*6364136223846793005 + 1442695040888963407
		off = (s.chase % (ws / 8)) * 8
	case prog.MemStack:
		hot := uint64(4096)
		if ws < hot {
			hot = ws
		}
		off = (uint64(rng.Int63()) % (hot / 8)) * 8
	default:
		off = 0
	}
	return s.base + (off &^ 7)
}
