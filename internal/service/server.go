// Package service implements the clusterd HTTP API: a long-running
// simulation service wrapping one shared engine and a tiered result store.
// Clients submit declarative job specs, stream per-job completions as
// server-sent events (backed by Engine.Stream), fetch any result by its
// content key, and read cache/engine statistics — the serve-results and
// transport groundwork for distributed fan-out.
//
//	POST /v1/jobs                  submit {"jobs":[spec...]} or one spec
//	GET  /v1/jobs/{id}             submission status + finished results
//	GET  /v1/jobs/{id}/stream      SSE: one event per completed job
//	GET  /v1/results?key=K         fetch a stored result by content key
//	GET  /v1/stats                 engine + store counters
//	GET  /healthz                  liveness
package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"sync"

	"clustersim/internal/engine"
	"clustersim/internal/sim"
	"clustersim/internal/store"
)

// Server is the clusterd HTTP handler. One server owns one engine (all
// submissions share its caches and worker pool) and one result store.
type Server struct {
	ctx context.Context
	eng *engine.Engine
	st  store.Store
	mux *http.ServeMux

	mu      sync.Mutex
	subs    map[string]*submission
	retired []string // completed submission ids, oldest first
	retain  int
	nextID  int
}

// defaultRetain bounds how many completed submissions stay queryable: the
// registry of a long-running daemon must not grow with lifetime traffic.
// In-flight submissions are never evicted, and an evicted submission's
// results remain fetchable by key — only its status/stream id expires.
const defaultRetain = 256

// New builds a server. ctx bounds every submission's simulations: cancel
// it to drain the service. st is the store results are fetched from; wire
// the same store into the engine's Options.ResultStore so computed
// results become fetchable.
func New(ctx context.Context, eng *engine.Engine, st store.Store) *Server {
	s := &Server{
		ctx: ctx, eng: eng, st: st, mux: http.NewServeMux(),
		subs: map[string]*submission{}, retain: defaultRetain,
	}
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleJobStream)
	s.mux.HandleFunc("GET /v1/results", s.handleResult)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// SetRetention overrides how many completed submissions stay queryable
// (n < 1 keeps only in-flight ones). Call before serving traffic.
func (s *Server) SetRetention(n int) {
	s.mu.Lock()
	s.retain = n
	s.mu.Unlock()
}

// retire marks a submission complete and evicts the oldest completed
// submissions beyond the retention bound.
func (s *Server) retire(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.retired = append(s.retired, id)
	for len(s.retired) > s.retain && len(s.retired) > 0 {
		delete(s.subs, s.retired[0])
		s.retired = s.retired[1:]
	}
}

// submission tracks one POST /v1/jobs batch as its jobs complete.
type submission struct {
	id    string
	specs []engine.JobSpec
	keys  []string

	mu      sync.Mutex
	events  []JobEvent
	done    bool
	changed chan struct{} // closed and replaced on every state change
}

// JobEvent is one completed job, as streamed and as listed in status.
type JobEvent struct {
	// Index is the job's position in the submitted batch.
	Index int `json:"index"`
	// Simpoint and Setup identify the run.
	Simpoint string `json:"simpoint"`
	Setup    string `json:"setup"`
	// Key is the result's content address in the store ("" when the job
	// is uncacheable).
	Key string `json:"key,omitempty"`
	// Error is non-empty for failed or canceled runs.
	Error string `json:"error,omitempty"`
	// Headline metrics for dashboards; fetch the key for everything.
	IPC    float64 `json:"ipc,omitempty"`
	Cycles int64   `json:"cycles,omitempty"`
	Uops   int64   `json:"uops,omitempty"`
	Copies int64   `json:"copies,omitempty"`
}

// SubmitResponse acknowledges a submission.
type SubmitResponse struct {
	ID string `json:"id"`
	// Keys holds each job's result content key, index-aligned with the
	// submitted batch ("" for uncacheable jobs).
	Keys []string `json:"keys"`
	// Total is the number of jobs accepted.
	Total int `json:"total"`
}

// StatusResponse reports a submission's progress.
type StatusResponse struct {
	ID        string     `json:"id"`
	Total     int        `json:"total"`
	Completed int        `json:"completed"`
	Done      bool       `json:"done"`
	Results   []JobEvent `json:"results"`
}

// snapshot returns the events from index from on, whether the submission
// has finished, and a channel closed on the next state change.
func (sub *submission) snapshot(from int) ([]JobEvent, bool, <-chan struct{}) {
	sub.mu.Lock()
	defer sub.mu.Unlock()
	evs := sub.events[min(from, len(sub.events)):]
	return evs, sub.done, sub.changed
}

func (sub *submission) append(ev JobEvent, done bool) {
	sub.mu.Lock()
	if !done {
		sub.events = append(sub.events, ev)
	}
	sub.done = sub.done || done
	close(sub.changed)
	sub.changed = make(chan struct{})
	sub.mu.Unlock()
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// submitBody is the accepted request shape: a batch, or a bare spec.
type submitBody struct {
	Jobs []engine.JobSpec `json:"jobs"`
	engine.JobSpec
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var body submitBody
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&body); err != nil {
		httpError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	specs := body.Jobs
	if len(specs) == 0 {
		if body.Simpoint == "" {
			httpError(w, http.StatusBadRequest, "no jobs: send {\"jobs\":[...]} or a single spec")
			return
		}
		specs = []engine.JobSpec{body.JobSpec}
	}

	jobs := make([]engine.Job, len(specs))
	keys := make([]string, len(specs))
	for i, spec := range specs {
		job, err := sim.JobFromSpec(spec)
		if err != nil {
			httpError(w, http.StatusBadRequest, "job %d: %v", i, err)
			return
		}
		jobs[i] = job
		keys[i], _ = s.eng.ResultKey(job)
	}

	s.mu.Lock()
	s.nextID++
	sub := &submission{
		id:      fmt.Sprintf("sub-%d", s.nextID),
		specs:   specs,
		keys:    keys,
		changed: make(chan struct{}),
	}
	s.subs[sub.id] = sub
	s.mu.Unlock()

	go func() {
		for jr := range s.eng.Stream(s.ctx, jobs) {
			sub.append(jobEvent(jr, keys[jr.Index]), false)
		}
		sub.append(JobEvent{}, true)
		s.retire(sub.id)
	}()

	writeJSON(w, http.StatusAccepted, SubmitResponse{ID: sub.id, Keys: keys, Total: len(specs)})
}

func jobEvent(jr engine.JobResult, key string) JobEvent {
	ev := JobEvent{
		Index:    jr.Index,
		Simpoint: jr.Job.Simpoint.Name,
		Setup:    jr.Job.Setup.Label,
		Key:      key,
	}
	if jr.Result.Err != nil {
		ev.Error = jr.Result.Err.Error()
		return ev
	}
	m := jr.Result.Metrics
	ev.IPC = m.IPC()
	ev.Cycles = m.Cycles
	ev.Uops = m.Uops
	ev.Copies = m.Copies
	return ev
}

func (s *Server) lookup(id string) *submission {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.subs[id]
}

func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	sub := s.lookup(r.PathValue("id"))
	if sub == nil {
		httpError(w, http.StatusNotFound, "unknown submission %q", r.PathValue("id"))
		return
	}
	events, done, _ := sub.snapshot(0)
	writeJSON(w, http.StatusOK, StatusResponse{
		ID: sub.id, Total: len(sub.specs), Completed: len(events), Done: done, Results: events,
	})
}

// handleJobStream replays a submission's completed jobs and follows it
// live as server-sent events: one "result" event per job, then "done".
func (s *Server) handleJobStream(w http.ResponseWriter, r *http.Request) {
	sub := s.lookup(r.PathValue("id"))
	if sub == nil {
		httpError(w, http.StatusNotFound, "unknown submission %q", r.PathValue("id"))
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	sent := 0
	for {
		events, done, changed := sub.snapshot(sent)
		for _, ev := range events {
			data, err := json.Marshal(ev)
			if err != nil {
				return
			}
			fmt.Fprintf(w, "event: result\ndata: %s\n\n", data)
			sent++
		}
		if len(events) > 0 {
			flusher.Flush()
		}
		if done {
			fmt.Fprintf(w, "event: done\ndata: {\"completed\":%d}\n\n", sent)
			flusher.Flush()
			return
		}
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		case <-s.ctx.Done():
			return
		}
	}
}

// ResultResponse is the JSON rendering of a stored result.
type ResultResponse struct {
	Key        string  `json:"key"`
	Simpoint   string  `json:"simpoint"`
	Bench      string  `json:"bench"`
	Setup      string  `json:"setup"`
	IPC        float64 `json:"ipc"`
	Cycles     int64   `json:"cycles"`
	Uops       int64   `json:"uops"`
	Copies     int64   `json:"copies"`
	AllocStall int64   `json:"alloc_stall_cycles"`
	Imbalance  float64 `json:"workload_imbalance"`
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	key, err := url.QueryUnescape(r.URL.Query().Get("key"))
	if err != nil || key == "" {
		httpError(w, http.StatusBadRequest, "missing or malformed ?key=")
		return
	}
	blob, ok := s.st.Get(key)
	if !ok {
		httpError(w, http.StatusNotFound, "no result stored under key %q", key)
		return
	}
	if r.URL.Query().Get("raw") != "" {
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(blob)
		return
	}
	res, err := engine.DecodeResult(blob)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "stored blob undecodable: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, ResultResponse{
		Key:        key,
		Simpoint:   res.Simpoint.Name,
		Bench:      res.Simpoint.Bench,
		Setup:      res.Setup,
		IPC:        res.Metrics.IPC(),
		Cycles:     res.Metrics.Cycles,
		Uops:       res.Metrics.Uops,
		Copies:     res.Metrics.Copies,
		AllocStall: res.Metrics.AllocStallCycles,
		Imbalance:  res.Metrics.WorkloadImbalance(),
	})
}

// StatsResponse reports the engine's cache counters and the store's
// occupancy, with per-tier detail when the store is tiered.
type StatsResponse struct {
	Engine engine.CacheStats `json:"engine"`
	Store  store.Stats       `json:"store"`
	Memory *store.Stats      `json:"memory,omitempty"`
	Disk   *store.Stats      `json:"disk,omitempty"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := StatsResponse{Engine: s.eng.Stats(), Store: s.st.Stats()}
	if tiered, ok := s.st.(*store.Tiered); ok {
		fast, slow := tiered.Layers()
		resp.Memory, resp.Disk = &fast, &slow
	}
	writeJSON(w, http.StatusOK, resp)
}
