// Package service implements the clusterd HTTP API: a long-running
// simulation service wrapping one shared engine and a tiered result store.
// Clients submit declarative job specs, stream per-job completions as
// server-sent events (backed by Engine.Stream), fetch any result by its
// content key, and read cache/engine statistics — the serve-results and
// transport groundwork for distributed fan-out. The JSON shapes on the
// wire live in internal/api, shared with the typed SDK in package client.
//
//	POST /v1/jobs                  submit {"jobs":[spec...]} or one spec
//	GET  /v1/jobs/{id}             submission status + finished results
//	GET  /v1/jobs/{id}/stream      SSE: one event per completed job
//	GET  /v1/results?key=K         fetch a stored result by content key
//	PUT  /v1/results?key=K         upload a validated result blob (v3)
//	GET  /v1/keys                  page through the store's logical keys (v3)
//	GET  /v1/ring                  coordinator membership view (v3)
//	POST /v1/ring                  CAS one membership transition (v3)
//	GET  /v1/stats                 engine + store counters
//	GET  /metrics                  the same counters, Prometheus text format
//	GET  /healthz                  liveness
//
// Every response carries the protocol version in the api.VersionHeader
// header, and every error — including unknown routes and wrong methods —
// is a JSON api.Error with a stable machine-readable code.
package service

import (
	"context"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"clustersim/fleet/controlplane"
	"clustersim/internal/admission"
	"clustersim/internal/api"
	"clustersim/internal/engine"
	"clustersim/internal/obs"
	"clustersim/internal/sim"
	"clustersim/internal/store"
)

// Aliases so existing callers keep compiling; the canonical definitions
// live in internal/api where the client SDK shares them.
type (
	JobEvent       = api.JobEvent
	SubmitResponse = api.SubmitResponse
	StatusResponse = api.StatusResponse
	ResultResponse = api.ResultResponse
	StatsResponse  = api.StatsResponse
)

// Server is the clusterd HTTP handler. One server owns one engine (all
// submissions share its caches and worker pool) and one result store.
type Server struct {
	ctx   context.Context
	eng   *engine.Engine
	st    store.Store
	mux   *http.ServeMux
	now   func() time.Time // injectable clock for TTL tests
	token string           // required bearer token; "" disables auth

	mu      sync.Mutex
	subs    map[string]*submission
	retired []string // completed submission ids, oldest first
	retain  int
	ttl     time.Duration
	ttlCh   chan struct{} // wakes the sweeper when the TTL changes
	nextID  int
	swept   int64 // completed submissions evicted by the TTL sweep

	// Serving-path counters (see api.ServingStats): sseMarshals counts
	// JSON encodes of job events — exactly one per completed job, however
	// many subscribers replay it; sseFrames/sseBytes count the shared
	// result frames actually written to subscribers; notModified counts
	// result fetches satisfied by an If-None-Match 304 with no store read
	// and no body.
	sseMarshals, sseFrames, sseBytes, notModified atomic.Int64

	// Control-plane counters (v3): resultUploads counts drain/backfill
	// blobs accepted over PUT /v1/results, keyPages counts /v1/keys pages
	// served, ringTransitions/ringConflicts count the coordinator's
	// accepted and epoch-refused proposals.
	resultUploads, keyPages, ringTransitions, ringConflicts atomic.Int64

	// coord is the coordinator-mode membership register (nil on plain
	// workers). coordMu also serializes the epoch-check-then-transition
	// pair in handleRingPost — that atomicity is the whole CAS.
	coordMu sync.Mutex
	coord   *controlplane.Membership

	// httpHist holds per-(route, status code) request-latency
	// histograms, exposed on /metrics and — aggregated per route — in
	// /v1/stats. log is the structured operational logger (see
	// SetLogger); the default discards.
	httpHist *obs.Vec
	log      *slog.Logger

	// adm is the admission controller (nil admits everything; see
	// SetAdmission). Rejected submissions answer 429 with Retry-After.
	adm *admission.Controller

	// sseWriteTimeout bounds each SSE frame write; a subscriber that
	// cannot drain a frame within it is disconnected (counted in
	// sseSlowDisconnects) instead of buffering unboundedly server-side
	// while other subscribers stream on.
	sseWriteTimeout    time.Duration
	sseSlowDisconnects atomic.Int64
}

// defaultRetain bounds how many completed submissions stay queryable: the
// registry of a long-running daemon must not grow with lifetime traffic.
// In-flight submissions are never evicted, and an evicted submission's
// results remain fetchable by key — only its status/stream id expires.
const defaultRetain = 256

// defaultTTL is how long a completed submission stays queryable before
// the sweep garbage-collects it. The retention count alone caps memory
// but lets a burst of traffic pin stale entries for the daemon's
// lifetime; the TTL drains them under sustained traffic too.
const defaultTTL = time.Hour

// defaultSSEWriteTimeout is the slow-subscriber bound: generous enough
// for a congested-but-live link to drain a frame, small enough that a
// wedged reader can't hold a subscription goroutine (and the kernel
// buffer feeding it) for the submission's lifetime.
const defaultSSEWriteTimeout = 15 * time.Second

// New builds a server. ctx bounds every submission's simulations: cancel
// it to drain the service (the TTL sweeper also exits with it). st is the
// store results are fetched from; wire the same store into the engine's
// Options.ResultStore so computed results become fetchable.
func New(ctx context.Context, eng *engine.Engine, st store.Store) *Server {
	s := &Server{
		ctx: ctx, eng: eng, st: st, mux: http.NewServeMux(), now: time.Now,
		subs: map[string]*submission{}, retain: defaultRetain, ttl: defaultTTL,
		ttlCh:           make(chan struct{}, 1),
		httpHist:        obs.NewVec(nil),
		log:             slog.New(slog.NewTextHandler(io.Discard, nil)),
		sseWriteTimeout: defaultSSEWriteTimeout,
	}
	// Methods are dispatched inside the handlers (not via "GET /path"
	// patterns) so that wrong-method requests get the same JSON error
	// shape as every other failure instead of the mux's bare-text 405.
	// Each route is registered through observed(pattern, ...), which
	// feeds the per-route latency histograms and the access log; the
	// pattern — never the raw path — is the histogram's route label.
	route := func(pattern string, handlers map[string]http.HandlerFunc) {
		s.mux.HandleFunc(pattern, s.observed(pattern, s.methods(handlers)))
	}
	route("/v1/jobs", map[string]http.HandlerFunc{
		http.MethodPost: s.handleSubmit,
	})
	route("/v1/jobs/{id}", map[string]http.HandlerFunc{
		http.MethodGet: s.handleJobStatus,
	})
	route("/v1/jobs/{id}/stream", map[string]http.HandlerFunc{
		http.MethodGet: s.handleJobStream,
	})
	route("/v1/results", map[string]http.HandlerFunc{
		http.MethodGet: s.handleResult,
		http.MethodPut: s.handlePutResult,
	})
	route("/v1/keys", map[string]http.HandlerFunc{
		http.MethodGet: s.handleKeys,
	})
	route("/v1/ring", map[string]http.HandlerFunc{
		http.MethodGet:  s.handleRingGet,
		http.MethodPost: s.handleRingPost,
	})
	route("/v1/trace/{id}", map[string]http.HandlerFunc{
		http.MethodGet: s.handleTrace,
	})
	route("/v1/stats", map[string]http.HandlerFunc{
		http.MethodGet: s.handleStats,
	})
	route("/metrics", map[string]http.HandlerFunc{
		http.MethodGet: s.handleMetrics,
	})
	route("/healthz", map[string]http.HandlerFunc{
		http.MethodGet: func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprintln(w, "ok")
		},
	})
	// Everything else is a JSON 404, not the mux's text one.
	s.mux.HandleFunc("/", s.observed("other", func(w http.ResponseWriter, r *http.Request) {
		httpError(w, http.StatusNotFound, api.CodeNotFound, "no such route %s", r.URL.Path)
	}))
	go s.sweepLoop(ctx)
	return s
}

// ServeHTTP implements http.Handler. Every response, success or error,
// advertises the wire-protocol version.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	w.Header().Set(api.VersionHeader, strconv.Itoa(api.Version))
	if !s.authorized(r) {
		w.Header().Set("WWW-Authenticate", `Bearer realm="clusterd"`)
		httpError(w, http.StatusUnauthorized, api.CodeUnauthorized,
			"missing or invalid bearer token")
		return
	}
	s.mux.ServeHTTP(w, r)
}

// SetToken requires every request (except GET /healthz, so liveness
// probes keep working without credentials) to carry "Authorization:
// Bearer <token>". An empty token disables auth. Call before serving
// traffic.
func (s *Server) SetToken(token string) { s.token = token }

// SetAdmission installs per-tenant admission control on POST /v1/jobs:
// batches beyond a tenant's rate or in-flight quota answer 429 with a
// Retry-After hint instead of entering the engine. Nil (the default)
// admits everything. Call before serving traffic.
func (s *Server) SetAdmission(c *admission.Controller) { s.adm = c }

// SetSSEWriteTimeout overrides the per-frame write bound on SSE
// streams (d <= 0 restores the default). Call before serving traffic.
func (s *Server) SetSSEWriteTimeout(d time.Duration) {
	if d <= 0 {
		d = defaultSSEWriteTimeout
	}
	s.sseWriteTimeout = d
}

// tenantOf derives the admission identity of a request. With auth
// enabled the bearer token IS the identity and the client-supplied
// tenant header is ignored — honoring it would let any caller mint a
// fresh budget per request and bypass admission entirely. Without
// auth, the header splits budgets between callers (e.g. a proxy
// multiplexing users), a voluntary Authorization header still counts
// as an identity, and absent both, all requests share one anonymous
// bucket. The identity only keys admission accounting — it is never
// logged or echoed back.
func (s *Server) tenantOf(r *http.Request) string {
	if s.token != "" {
		// authorized() already verified this header, so it is the
		// configured credential, not attacker-chosen.
		return r.Header.Get("Authorization")
	}
	if t := r.Header.Get(api.TenantHeader); t != "" {
		return t
	}
	if auth := r.Header.Get("Authorization"); auth != "" {
		return auth
	}
	return "anon"
}

// authorized checks the request's bearer token against the configured
// one in constant time. /healthz stays open: it reveals nothing beyond
// liveness, and orchestrator probes cannot attach credentials.
func (s *Server) authorized(r *http.Request) bool {
	if s.token == "" || r.URL.Path == "/healthz" {
		return true
	}
	auth := r.Header.Get("Authorization")
	const scheme = "Bearer "
	if len(auth) < len(scheme) || !strings.EqualFold(auth[:len(scheme)], scheme) {
		return false
	}
	return subtle.ConstantTimeCompare([]byte(auth[len(scheme):]), []byte(s.token)) == 1
}

// methods dispatches by HTTP method, answering anything unlisted with a
// JSON 405 that names the allowed methods. HEAD is served by the GET
// handler (net/http discards the body), matching ServeMux's "GET /path"
// semantics so health probes issuing HEAD keep working.
func (s *Server) methods(handlers map[string]http.HandlerFunc) http.HandlerFunc {
	allowed := make([]string, 0, len(handlers)+1)
	for m := range handlers {
		allowed = append(allowed, m)
	}
	if _, ok := handlers[http.MethodGet]; ok {
		allowed = append(allowed, http.MethodHead)
	}
	allow := strings.Join(allowed, ", ")
	return func(w http.ResponseWriter, r *http.Request) {
		method := r.Method
		if method == http.MethodHead {
			method = http.MethodGet
		}
		if h, ok := handlers[method]; ok {
			h(w, r)
			return
		}
		w.Header().Set("Allow", allow)
		httpError(w, http.StatusMethodNotAllowed, api.CodeMethodNotAllowed,
			"method %s not allowed on %s (allowed: %s)", r.Method, r.URL.Path, allow)
	}
}

// SetRetention overrides how many completed submissions stay queryable
// (n < 1 keeps only in-flight ones). Call before serving traffic.
func (s *Server) SetRetention(n int) {
	s.mu.Lock()
	s.retain = n
	s.mu.Unlock()
}

// SetTTL overrides how long a completed submission stays queryable before
// the sweep evicts it (d <= 0 disables the sweep; the retention count
// still applies). The sweeper is woken to re-pace itself, so a shorter
// TTL takes effect immediately even mid-sleep.
func (s *Server) SetTTL(d time.Duration) {
	s.mu.Lock()
	s.ttl = d
	s.mu.Unlock()
	select {
	case s.ttlCh <- struct{}{}:
	default: // a wakeup is already pending
	}
}

// retire marks a submission complete and evicts the oldest completed
// submissions beyond the retention bound.
func (s *Server) retire(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if sub := s.subs[id]; sub != nil {
		sub.completedAt = s.now()
	}
	s.retired = append(s.retired, id)
	for len(s.retired) > s.retain && len(s.retired) > 0 {
		delete(s.subs, s.retired[0])
		s.retired = s.retired[1:]
	}
}

// sweepLoop periodically expires completed submissions older than the
// TTL. The retention count bounds the registry's size; the sweep bounds
// its age, so under sustained traffic a completed submission is GC'd
// even while the registry sits below the count bound.
func (s *Server) sweepLoop(ctx context.Context) {
	const minInterval = 50 * time.Millisecond
	for {
		s.mu.Lock()
		ttl := s.ttl
		s.mu.Unlock()
		interval := ttl / 4
		if interval < minInterval {
			interval = minInterval
		}
		if ttl <= 0 {
			// Sweeping disabled: idle until SetTTL re-enables it.
			interval = time.Hour
		}
		select {
		case <-ctx.Done():
			return
		case <-s.ttlCh:
			continue // TTL changed: re-pace before sweeping
		case <-time.After(interval):
		}
		s.sweep()
	}
}

// sweep evicts completed submissions whose completion is older than the
// TTL. In-flight submissions are never touched.
func (s *Server) sweep() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ttl <= 0 {
		return
	}
	cutoff := s.now().Add(-s.ttl)
	kept := s.retired[:0]
	for _, id := range s.retired {
		sub := s.subs[id]
		if sub == nil {
			continue // already evicted by the retention count
		}
		if sub.completedAt.Before(cutoff) {
			delete(s.subs, id)
			s.swept++
			continue
		}
		kept = append(kept, id)
	}
	s.retired = kept
}

// submission tracks one POST /v1/jobs batch as its jobs complete.
type submission struct {
	id    string
	specs []engine.JobSpec
	keys  []string

	// completedAt is set (under the server mutex) when the submission
	// retires; the TTL sweep keys off it.
	completedAt time.Time

	mu      sync.Mutex
	events  []JobEvent
	frames  [][]byte // pre-rendered SSE frames, index-aligned with events
	done    bool
	changed chan struct{} // closed and replaced on every state change
}

// snapshot returns the events from index from on, whether the submission
// has finished, and a channel closed on the next state change.
func (sub *submission) snapshot(from int) ([]JobEvent, bool, <-chan struct{}) {
	sub.mu.Lock()
	defer sub.mu.Unlock()
	evs := sub.events[min(from, len(sub.events)):]
	return evs, sub.done, sub.changed
}

// snapshotFrames is snapshot for the SSE path: the already-encoded frames
// every subscriber shares. Frames are immutable once appended, so the
// returned slices may be written without holding the lock.
func (sub *submission) snapshotFrames(from int) ([][]byte, bool, <-chan struct{}) {
	sub.mu.Lock()
	defer sub.mu.Unlock()
	frames := sub.frames[min(from, len(sub.frames)):]
	return frames, sub.done, sub.changed
}

func (sub *submission) append(ev JobEvent, frame []byte, done bool) {
	sub.mu.Lock()
	if !done {
		sub.events = append(sub.events, ev)
		sub.frames = append(sub.frames, frame)
	}
	sub.done = sub.done || done
	close(sub.changed)
	sub.changed = make(chan struct{})
	sub.mu.Unlock()
}

// appendResult records one completed job on the submission: the event for
// status queries, and its SSE frame — marshaled exactly once, here, at
// append time — for every current and future subscriber to share.
func (s *Server) appendResult(sub *submission, jr engine.JobResult, key string) {
	ev := jobEvent(jr, key)
	data, err := json.Marshal(ev)
	if err != nil {
		// JobEvent is plain data; Marshal cannot fail on it. Keep the
		// stream well-formed regardless.
		data = []byte("{}")
	}
	s.sseMarshals.Add(1)
	frame := make([]byte, 0, len(data)+len("event: result\ndata: \n\n"))
	frame = append(frame, "event: result\ndata: "...)
	frame = append(frame, data...)
	frame = append(frame, "\n\n"...)
	sub.append(ev, frame, false)
}

// httpError writes the uniform JSON error body: a stable machine-readable
// code plus a human-readable message. Every error path in the package —
// including route and method misses — funnels through here.
func httpError(w http.ResponseWriter, status int, code, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(api.Error{Code: code, Message: fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// submitBody is the accepted request shape: a batch, or a bare spec.
type submitBody struct {
	Jobs        []engine.JobSpec `json:"jobs"`
	MaxParallel int              `json:"max_parallel,omitempty"`
	Priority    string           `json:"priority,omitempty"`
	engine.JobSpec
}

// clampParallel resolves a client's per-batch parallelism hint against
// the server's own worker limit: hints are advisory, never an
// escalation. Zero or negative means "no per-batch cap".
func clampParallel(hint, limit int) int {
	if hint <= 0 {
		return 0
	}
	if limit > 0 && hint > limit {
		return limit
	}
	return hint
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var body submitBody
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&body); err != nil {
		httpError(w, http.StatusBadRequest, api.CodeBadRequest, "decoding request: %v", err)
		return
	}
	specs := body.Jobs
	if len(specs) == 0 {
		if body.Simpoint == "" {
			httpError(w, http.StatusBadRequest, api.CodeBadRequest, "no jobs: send {\"jobs\":[...]} or a single spec")
			return
		}
		specs = []engine.JobSpec{body.JobSpec}
	}

	lane, ok := engine.ParseLane(body.Priority)
	if !ok {
		httpError(w, http.StatusBadRequest, api.CodeBadRequest,
			"unknown priority %q (want interactive or bulk)", body.Priority)
		return
	}
	deadline, err := parseDeadline(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, api.CodeBadRequest, "%v", err)
		return
	}

	jobs := make([]engine.Job, len(specs))
	keys := make([]string, len(specs))
	for i, spec := range specs {
		job, err := sim.JobFromSpec(spec)
		if err != nil {
			httpError(w, http.StatusBadRequest, api.CodeBadRequest, "job %d: %v", i, err)
			return
		}
		jobs[i] = job
		keys[i], _ = s.eng.ResultKey(job)
	}

	// Admission is decided after validation (a malformed batch should
	// answer bad_request, not burn budget) but before anything enters
	// the engine: a rejected batch costs the server nothing downstream.
	tenant := s.tenantOf(r)
	if s.adm != nil {
		if d := s.adm.Admit(tenant, len(jobs)); !d.OK {
			code := api.CodeRateLimited
			if d.Reason == admission.ReasonQuotaExceeded {
				code = api.CodeQuotaExceeded
			}
			w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(d.RetryAfter)))
			s.log.Debug("submission rejected", "reason", d.Reason,
				"jobs", len(jobs), "retry_after", d.RetryAfter)
			httpError(w, http.StatusTooManyRequests, code,
				"%s: retry after %v", d.Reason, d.RetryAfter)
			return
		}
	}

	// Every job gets a trace ID at submission: the caller may seed the
	// base via the trace header (so a client's IDs and the server's
	// agree), otherwise one is minted. Per-job IDs are "<base>.<index>",
	// so a batch's flights are greppable as a family.
	base := r.Header.Get(api.TraceHeader)
	if !obs.ValidTraceID(base) {
		base = obs.NewTraceID()
	}
	tids := make([]string, len(specs))
	for i := range tids {
		tids[i] = fmt.Sprintf("%s.%d", base, i)
	}

	s.mu.Lock()
	s.nextID++
	sub := &submission{
		id:      fmt.Sprintf("sub-%d", s.nextID),
		specs:   specs,
		keys:    keys,
		changed: make(chan struct{}),
	}
	s.subs[sub.id] = sub
	s.mu.Unlock()
	s.log.Debug("submission accepted", "id", sub.id, "jobs", len(specs), "trace_base", base)

	// The batch context carries the scheduling lane and, when the
	// request declared a deadline, expires at it: queued jobs past the
	// deadline are shed by the engine before simulating, and running
	// ones are canceled through the pipeline's cancel hook.
	runCtx := engine.WithLane(s.ctx, lane)
	cancel := context.CancelFunc(func() {})
	if deadline > 0 {
		runCtx, cancel = context.WithTimeout(runCtx, deadline)
	}

	par := clampParallel(body.MaxParallel, s.eng.Parallelism())
	go func() {
		defer cancel()
		start := time.Now()
		runOne := func(i int) {
			res := s.eng.Run(obs.WithTraceID(runCtx, tids[i]), jobs[i])
			s.appendResult(sub, engine.JobResult{Index: i, Job: jobs[i], Result: res}, keys[i])
			if s.adm != nil {
				// Quota is in-flight work: each job returns its slot as it
				// finishes, not when the whole batch does.
				s.adm.Release(tenant, 1)
			}
		}
		if par > 0 && par < len(jobs) {
			// The batch asked for fewer workers than it has jobs: par
			// batch-local workers drain an index queue, so this submission
			// never occupies more than par engine slots at once (the
			// engine's global limit still applies on top) and never holds
			// more than par goroutines however wide the batch is.
			idx := make(chan int)
			var wg sync.WaitGroup
			for w := 0; w < par; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := range idx {
						runOne(i)
					}
				}()
			}
			for i := range jobs {
				idx <- i
			}
			close(idx)
			wg.Wait()
		} else {
			var wg sync.WaitGroup
			for i := range jobs {
				i := i
				wg.Add(1)
				go func() {
					defer wg.Done()
					runOne(i)
				}()
			}
			wg.Wait()
		}
		sub.append(JobEvent{}, nil, true)
		s.retire(sub.id)
		s.log.Debug("submission done", "id", sub.id, "jobs", len(jobs),
			"dur_ms", time.Since(start).Milliseconds())
	}()

	writeJSON(w, http.StatusAccepted, SubmitResponse{
		ID: sub.id, Keys: keys, Total: len(specs), TraceIDs: tids,
	})
}

// parseDeadline reads the request's optional deadline header: a
// positive integer of milliseconds from receipt. Zero means none.
func parseDeadline(r *http.Request) (time.Duration, error) {
	h := r.Header.Get(api.DeadlineHeader)
	if h == "" {
		return 0, nil
	}
	ms, err := strconv.ParseInt(h, 10, 64)
	if err != nil || ms <= 0 {
		return 0, fmt.Errorf("malformed %s header %q (want a positive integer of milliseconds)",
			api.DeadlineHeader, h)
	}
	return time.Duration(ms) * time.Millisecond, nil
}

// retryAfterSeconds renders a retry hint as the Retry-After header's
// integer seconds, rounding up so the client never retries early, and
// never below 1 — a zero would invite an immediate retry storm.
func retryAfterSeconds(d time.Duration) int {
	s := int(math.Ceil(d.Seconds()))
	if s < 1 {
		s = 1
	}
	return s
}

// errorCode classifies a run error machine-readably where a stable
// category exists; deterministic simulation failures return "".
func errorCode(err error) string {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return api.CodeDeadlineExceeded
	case errors.Is(err, context.Canceled):
		return "canceled"
	}
	return ""
}

func jobEvent(jr engine.JobResult, key string) JobEvent {
	ev := JobEvent{
		Index:    jr.Index,
		Simpoint: jr.Job.Simpoint.Name,
		Setup:    jr.Job.Setup.Label,
		Key:      key,
	}
	if jr.Result.Err != nil {
		ev.Error = jr.Result.Err.Error()
		ev.Code = errorCode(jr.Result.Err)
		return ev
	}
	m := jr.Result.Metrics
	ev.IPC = m.IPC()
	ev.Cycles = m.Cycles
	ev.Uops = m.Uops
	ev.Copies = m.Copies
	return ev
}

func (s *Server) lookup(id string) *submission {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.subs[id]
}

func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	sub := s.lookup(r.PathValue("id"))
	if sub == nil {
		httpError(w, http.StatusNotFound, api.CodeNotFound, "unknown submission %q", r.PathValue("id"))
		return
	}
	events, done, _ := sub.snapshot(0)
	writeJSON(w, http.StatusOK, StatusResponse{
		ID: sub.id, Total: len(sub.specs), Completed: len(events), Done: done, Results: events,
	})
}

// handleJobStream replays a submission's completed jobs and follows it
// live as server-sent events: one "result" event per job, then "done".
func (s *Server) handleJobStream(w http.ResponseWriter, r *http.Request) {
	sub := s.lookup(r.PathValue("id"))
	if sub == nil {
		httpError(w, http.StatusNotFound, api.CodeNotFound, "unknown submission %q", r.PathValue("id"))
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, api.CodeInternal, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	// Every write races the subscriber's ability to drain it: a frame
	// that cannot be flushed within the write timeout marks the
	// subscriber stalled and the subscription ends. Without the bound, a
	// wedged reader would park this goroutine in w.Write forever while
	// the submission (whose frames it shares with every healthy
	// subscriber) kept growing.
	ctrl := http.NewResponseController(w)
	write := func(frame []byte) bool {
		ctrl.SetWriteDeadline(time.Now().Add(s.sseWriteTimeout))
		if _, err := w.Write(frame); err != nil {
			s.sseSlowDisconnects.Add(1)
			s.log.Debug("sse subscriber dropped", "id", sub.id, "err", err)
			return false
		}
		return true
	}

	sent := 0
	for {
		frames, done, changed := sub.snapshotFrames(sent)
		for _, frame := range frames {
			// Frames were encoded once at append time; every subscriber
			// writes the same shared bytes.
			if !write(frame) {
				return
			}
			s.sseFrames.Add(1)
			s.sseBytes.Add(int64(len(frame)))
			sent++
		}
		if len(frames) > 0 {
			flusher.Flush()
		}
		if done {
			if write(fmt.Appendf(nil, "event: done\ndata: {\"completed\":%d}\n\n", sent)) {
				flusher.Flush()
			}
			return
		}
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		case <-s.ctx.Done():
			return
		}
	}
}

// etagMatch reports whether an If-None-Match header value matches the
// representation's entity tag: "*", or any member of the comma-separated
// list equal to the tag (weak comparison — a W/ prefix on a member is
// ignored, which is safe here because a content-addressed representation
// never changes byte-wise under its key).
func etagMatch(header, etag string) bool {
	for _, cand := range strings.Split(header, ",") {
		cand = strings.TrimSpace(cand)
		cand = strings.TrimPrefix(cand, "W/")
		if cand == "*" || cand == etag {
			return true
		}
	}
	return false
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	key, err := url.QueryUnescape(r.URL.Query().Get("key"))
	if err != nil || key == "" {
		httpError(w, http.StatusBadRequest, api.CodeBadRequest, "missing or malformed ?key=")
		return
	}
	// Results are content-addressed: the bytes under a key never change,
	// so the key's address is a permanent strong ETag. A warm client that
	// already holds the result sends it back as If-None-Match and the
	// server answers 304 without touching the store or encoding a body.
	etag := `"` + store.Addr(key) + `"`
	w.Header().Set("ETag", etag)
	w.Header().Set("Cache-Control", "public, max-age=31536000, immutable")
	if inm := r.Header.Get("If-None-Match"); inm != "" && etagMatch(inm, etag) {
		s.notModified.Add(1)
		w.WriteHeader(http.StatusNotModified)
		return
	}
	blob, ok := s.st.Get(key)
	if !ok {
		httpError(w, http.StatusNotFound, api.CodeNotFound, "no result stored under key %q", key)
		return
	}
	if r.URL.Query().Get("raw") != "" {
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(blob)
		return
	}
	res, err := engine.DecodeResult(blob)
	if err != nil {
		httpError(w, http.StatusInternalServerError, api.CodeInternal, "stored blob undecodable: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, ResultResponse{
		Key:        key,
		Simpoint:   res.Simpoint.Name,
		Bench:      res.Simpoint.Bench,
		Setup:      res.Setup,
		IPC:        res.Metrics.IPC(),
		Cycles:     res.Metrics.Cycles,
		Uops:       res.Metrics.Uops,
		Copies:     res.Metrics.Copies,
		AllocStall: res.Metrics.AllocStallCycles,
		Imbalance:  res.Metrics.WorkloadImbalance(),
	})
}

// servingStats snapshots the request-path counters.
func (s *Server) servingStats() api.ServingStats {
	return api.ServingStats{
		SSEMarshals:        s.sseMarshals.Load(),
		SSEFrames:          s.sseFrames.Load(),
		SSEBytes:           s.sseBytes.Load(),
		SSESlowDisconnects: s.sseSlowDisconnects.Load(),
		NotModified:        s.notModified.Load(),
		ResultUploads:      s.resultUploads.Load(),
		KeyPages:           s.keyPages.Load(),
		RingEpoch:          s.ringEpoch(),
		RingTransitions:    s.ringTransitions.Load(),
		RingConflicts:      s.ringConflicts.Load(),
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := StatsResponse{
		Engine: s.eng.Stats(), Store: s.st.Stats(), Serving: s.servingStats(),
		Routes: s.routeHistograms(), Stages: s.stageHistograms(),
	}
	if tiered, ok := s.st.(*store.Tiered); ok {
		fast, slow := tiered.Layers()
		resp.Memory, resp.Disk = &fast, &slow
	}
	if s.adm != nil {
		a := s.adm.Stats()
		resp.Admission = &api.AdmissionStats{
			Admitted: a.Admitted, RejectedRate: a.RejectedRate,
			RejectedQuota: a.RejectedQuota, InFlight: a.InFlight, Tenants: a.Tenants,
		}
	}
	writeJSON(w, http.StatusOK, resp)
}
