package service_test

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"strings"
	"testing"
	"time"

	"clustersim/internal/api"
	"clustersim/internal/engine"
	"clustersim/internal/service"
	"clustersim/internal/store"
)

// startServer builds a clusterd-shaped stack: tiered memory-over-disk
// store, one engine writing through to it, the HTTP API on top.
func startServer(t *testing.T) (*httptest.Server, *engine.Engine, store.Store) {
	t.Helper()
	disk, err := store.OpenDisk(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	st := store.NewTiered(store.NewMemory(64<<20), disk)
	eng := engine.New(engine.Options{Parallelism: 2, ResultStore: st})
	ts := httptest.NewServer(service.New(context.Background(), eng, st))
	t.Cleanup(ts.Close)
	return ts, eng, st
}

func postJSON(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf strings.Builder
	if _, err := bufio.NewReader(resp.Body).WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return resp, []byte(buf.String())
}

// Drive a two-job submission end-to-end over HTTP: submit, stream every
// completion as SSE, fetch a result by key, check stats, and confirm a
// resubmission is served from the result store without simulating.
func TestSubmitStreamFetchRoundTrip(t *testing.T) {
	ts, eng, _ := startServer(t)

	body := `{"jobs":[
		{"simpoint":"gzip-1","setup":{"kind":"OP","clusters":2},"opts":{"num_uops":3000}},
		{"simpoint":"gzip-1","setup":{"kind":"VC","num_vc":2,"clusters":2},"opts":{"num_uops":3000}}
	]}`
	resp, raw := postJSON(t, ts.URL+"/v1/jobs", body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, raw)
	}
	var sub service.SubmitResponse
	if err := json.Unmarshal(raw, &sub); err != nil {
		t.Fatal(err)
	}
	if sub.Total != 2 || len(sub.Keys) != 2 || sub.Keys[0] == "" || sub.Keys[1] == "" {
		t.Fatalf("submit response: %+v", sub)
	}

	// Stream until "done": every job must arrive exactly once.
	streamResp, err := http.Get(ts.URL + "/v1/jobs/" + sub.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer streamResp.Body.Close()
	if ct := streamResp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream content type %q", ct)
	}
	seen := map[int]service.JobEvent{}
	scanner := bufio.NewScanner(streamResp.Body)
	var eventType string
	for scanner.Scan() {
		line := scanner.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			eventType = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			if eventType == "done" {
				goto streamed
			}
			var ev service.JobEvent
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
				t.Fatal(err)
			}
			if _, dup := seen[ev.Index]; dup {
				t.Errorf("job %d streamed twice", ev.Index)
			}
			seen[ev.Index] = ev
		}
	}
	t.Fatal("stream ended without a done event")
streamed:
	if len(seen) != 2 {
		t.Fatalf("streamed %d events, want 2", len(seen))
	}
	for i, ev := range seen {
		if ev.Error != "" || ev.Cycles == 0 || ev.IPC == 0 {
			t.Errorf("job %d event: %+v", i, ev)
		}
		if ev.Key != sub.Keys[ev.Index] {
			t.Errorf("job %d key mismatch: %q vs %q", i, ev.Key, sub.Keys[ev.Index])
		}
	}
	if seen[0].Setup != "OP" || seen[1].Setup != "VC" {
		t.Errorf("setups: %q, %q", seen[0].Setup, seen[1].Setup)
	}

	// Status endpoint agrees.
	resp2, err := http.Get(ts.URL + "/v1/jobs/" + sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	var status service.StatusResponse
	if err := json.NewDecoder(resp2.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if !status.Done || status.Completed != 2 || status.Total != 2 {
		t.Errorf("status: %+v", status)
	}

	// Fetch one result by its content key.
	resultURL := ts.URL + "/v1/results?key=" + url.QueryEscape(sub.Keys[1])
	resp3, err := http.Get(resultURL)
	if err != nil {
		t.Fatal(err)
	}
	var res service.ResultResponse
	if err := json.NewDecoder(resp3.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("result fetch: %d", resp3.StatusCode)
	}
	if res.Simpoint != "gzip-1" || res.Setup != "VC" || res.Cycles != seen[1].Cycles {
		t.Errorf("fetched result: %+v", res)
	}

	// Stats reflect the two simulations and the tiered store layout.
	resp4, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats service.StatsResponse
	if err := json.NewDecoder(resp4.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp4.Body.Close()
	if stats.Engine.Simulations != 2 {
		t.Errorf("stats: %d simulations, want 2", stats.Engine.Simulations)
	}
	if stats.Memory == nil || stats.Disk == nil || stats.Disk.Entries != 2 {
		t.Errorf("tiered store stats: %+v", stats)
	}

	// A resubmission of the same batch completes from the cache — the
	// engine must not simulate again.
	resp5, raw5 := postJSON(t, ts.URL+"/v1/jobs", body)
	if resp5.StatusCode != http.StatusAccepted {
		t.Fatalf("resubmit: %d %s", resp5.StatusCode, raw5)
	}
	var sub2 service.SubmitResponse
	if err := json.Unmarshal(raw5, &sub2); err != nil {
		t.Fatal(err)
	}
	waitDone(t, ts.URL, sub2.ID)
	if sims := eng.Stats().Simulations; sims != 2 {
		t.Errorf("resubmission simulated: %d total simulations, want 2", sims)
	}
}

func waitDone(t *testing.T, base, id string) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var status service.StatusResponse
		err = json.NewDecoder(resp.Body).Decode(&status)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if status.Done {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("submission %s never finished", id)
}

// A single bare spec (no jobs array) is accepted, and bad requests fail
// with useful errors instead of queueing garbage.
func TestSubmitValidation(t *testing.T) {
	ts, _, _ := startServer(t)

	resp, raw := postJSON(t, ts.URL+"/v1/jobs",
		`{"simpoint":"mcf","setup":{"kind":"OP"},"opts":{"num_uops":2000}}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("bare spec rejected: %d %s", resp.StatusCode, raw)
	}
	var sub service.SubmitResponse
	if err := json.Unmarshal(raw, &sub); err != nil {
		t.Fatal(err)
	}
	waitDone(t, ts.URL, sub.ID)

	for name, body := range map[string]string{
		"unknown simpoint": `{"simpoint":"nope","setup":{"kind":"OP"}}`,
		"unknown kind":     `{"simpoint":"mcf","setup":{"kind":"WAT"}}`,
		"empty":            `{}`,
		"not json":         `hello`,
	} {
		resp, raw := postJSON(t, ts.URL+"/v1/jobs", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, body %s", name, resp.StatusCode, raw)
		}
	}

	if resp, _ := http.Get(ts.URL + "/v1/jobs/sub-999"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown submission: %d", resp.StatusCode)
	}
	if resp, _ := http.Get(ts.URL + "/v1/results?key=absent"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("absent result: %d", resp.StatusCode)
	}
	if resp, _ := http.Get(ts.URL + "/healthz"); resp.StatusCode != http.StatusOK {
		t.Errorf("healthz: %d", resp.StatusCode)
	}
}

// Completed submissions are evicted beyond the retention bound so the
// daemon's registry doesn't grow with lifetime traffic; results stay
// fetchable by key.
func TestSubmissionRetention(t *testing.T) {
	disk, err := store.OpenDisk(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	st := store.NewTiered(store.NewMemory(64<<20), disk)
	eng := engine.New(engine.Options{Parallelism: 2, ResultStore: st})
	srv := service.New(context.Background(), eng, st)
	srv.SetRetention(1)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	body := `{"simpoint":"mcf","setup":{"kind":"OP"},"opts":{"num_uops":2000}}`
	var ids []string
	var keys []string
	for i := 0; i < 3; i++ {
		resp, raw := postJSON(t, ts.URL+"/v1/jobs", body)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: %d %s", i, resp.StatusCode, raw)
		}
		var sub service.SubmitResponse
		if err := json.Unmarshal(raw, &sub); err != nil {
			t.Fatal(err)
		}
		waitDone(t, ts.URL, sub.ID)
		ids = append(ids, sub.ID)
		keys = append(keys, sub.Keys[0])
	}
	if resp, _ := http.Get(ts.URL + "/v1/jobs/" + ids[0]); resp.StatusCode != http.StatusNotFound {
		t.Errorf("oldest submission survived retention: %d", resp.StatusCode)
	}
	if resp, _ := http.Get(ts.URL + "/v1/jobs/" + ids[2]); resp.StatusCode != http.StatusOK {
		t.Errorf("newest submission evicted: %d", resp.StatusCode)
	}
	// The evicted submission's result is still served by key.
	resp, err := http.Get(ts.URL + "/v1/results?key=" + url.QueryEscape(keys[0]))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("evicted submission's result not fetchable: %d", resp.StatusCode)
	}
}

// Results persist across service restarts: a new engine+store over the
// same directory serves a previously computed result by key without
// simulating, including to the raw-blob codec path.
func TestResultSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	build := func() (*httptest.Server, *engine.Engine) {
		disk, err := store.OpenDisk(dir, 0)
		if err != nil {
			t.Fatal(err)
		}
		st := store.NewTiered(store.NewMemory(64<<20), disk)
		eng := engine.New(engine.Options{Parallelism: 2, ResultStore: st})
		ts := httptest.NewServer(service.New(context.Background(), eng, st))
		t.Cleanup(ts.Close)
		return ts, eng
	}

	ts1, _ := build()
	resp, raw := postJSON(t, ts1.URL+"/v1/jobs",
		`{"simpoint":"crafty","setup":{"kind":"RHOP","clusters":2},"opts":{"num_uops":2500}}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, raw)
	}
	var sub service.SubmitResponse
	if err := json.Unmarshal(raw, &sub); err != nil {
		t.Fatal(err)
	}
	waitDone(t, ts1.URL, sub.ID)

	ts2, eng2 := build() // fresh process, same cache dir
	fetch := ts2.URL + "/v1/results?key=" + url.QueryEscape(sub.Keys[0])
	resp2, err := http.Get(fetch)
	if err != nil {
		t.Fatal(err)
	}
	var res service.ResultResponse
	if err := json.NewDecoder(resp2.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK || res.Setup != "RHOP" || res.Uops == 0 {
		t.Fatalf("restarted fetch: %d %+v", resp2.StatusCode, res)
	}

	rawResp, err := http.Get(fetch + "&raw=1")
	if err != nil {
		t.Fatal(err)
	}
	defer rawResp.Body.Close()
	var blob strings.Builder
	if _, err := bufio.NewReader(rawResp.Body).WriteTo(&blob); err != nil {
		t.Fatal(err)
	}
	if dec, err := engine.DecodeResult([]byte(blob.String())); err != nil || dec.Setup != "RHOP" {
		t.Errorf("raw blob decode: %v", err)
	}

	// Resubmitting against the new process simulates nothing.
	resp3, raw3 := postJSON(t, ts2.URL+"/v1/jobs",
		`{"simpoint":"crafty","setup":{"kind":"RHOP","clusters":2},"opts":{"num_uops":2500}}`)
	if resp3.StatusCode != http.StatusAccepted {
		t.Fatalf("resubmit: %d %s", resp3.StatusCode, raw3)
	}
	var sub3 service.SubmitResponse
	if err := json.Unmarshal(raw3, &sub3); err != nil {
		t.Fatal(err)
	}
	waitDone(t, ts2.URL, sub3.ID)
	if st := eng2.Stats(); st.Simulations != 0 || st.StoreHits != 1 {
		t.Errorf("restarted engine stats: %+v", st)
	}
}

// Every error path — bad requests, unknown submissions, unknown routes,
// wrong methods — returns a JSON body with a stable machine-readable code
// and the right Content-Type; no path writes bare text.
func TestUniformJSONErrors(t *testing.T) {
	ts, _, _ := startServer(t)

	check := func(name string, resp *http.Response, wantStatus int, wantCode string) {
		t.Helper()
		defer resp.Body.Close()
		if resp.StatusCode != wantStatus {
			t.Errorf("%s: status %d, want %d", name, resp.StatusCode, wantStatus)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("%s: content type %q", name, ct)
		}
		if v := resp.Header.Get(api.VersionHeader); v != strconv.Itoa(api.Version) {
			t.Errorf("%s: version header %q", name, v)
		}
		var e api.Error
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
			t.Errorf("%s: body not JSON: %v", name, err)
			return
		}
		if e.Code != wantCode || e.Message == "" {
			t.Errorf("%s: error body %+v, want code %q", name, e, wantCode)
		}
	}

	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader("junk"))
	if err != nil {
		t.Fatal(err)
	}
	check("bad request", resp, http.StatusBadRequest, api.CodeBadRequest)

	resp, err = http.Get(ts.URL + "/v1/jobs/sub-999")
	if err != nil {
		t.Fatal(err)
	}
	check("unknown submission", resp, http.StatusNotFound, api.CodeNotFound)

	resp, err = http.Get(ts.URL + "/no/such/route")
	if err != nil {
		t.Fatal(err)
	}
	check("unknown route", resp, http.StatusNotFound, api.CodeNotFound)

	resp, err = http.Get(ts.URL + "/v1/jobs") // GET on a POST-only route
	if err != nil {
		t.Fatal(err)
	}
	if allow := resp.Header.Get("Allow"); allow != "POST" {
		t.Errorf("Allow header %q", allow)
	}
	check("wrong method", resp, http.StatusMethodNotAllowed, api.CodeMethodNotAllowed)

	resp, err = http.Post(ts.URL+"/v1/stats", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	check("POST on GET route", resp, http.StatusMethodNotAllowed, api.CodeMethodNotAllowed)

	resp, err = http.Get(ts.URL + "/v1/results")
	if err != nil {
		t.Fatal(err)
	}
	check("missing key", resp, http.StatusBadRequest, api.CodeBadRequest)

	// HEAD is served by GET handlers (load-balancer health probes).
	resp, err = http.Head(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("HEAD /healthz: %d", resp.StatusCode)
	}
}

// Completed submissions are garbage-collected by age: under sustained
// traffic the TTL sweep drains the registry even while it sits below the
// retention count. Results stay fetchable by key.
func TestSubmissionTTLSweep(t *testing.T) {
	disk, err := store.OpenDisk(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	st := store.NewTiered(store.NewMemory(64<<20), disk)
	eng := engine.New(engine.Options{Parallelism: 2, ResultStore: st})
	srv := service.New(context.Background(), eng, st)
	srv.SetTTL(30 * time.Millisecond)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	resp, raw := postJSON(t, ts.URL+"/v1/jobs",
		`{"simpoint":"mcf","setup":{"kind":"OP"},"opts":{"num_uops":2000}}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, raw)
	}
	var sub service.SubmitResponse
	if err := json.Unmarshal(raw, &sub); err != nil {
		t.Fatal(err)
	}
	waitDone(t, ts.URL, sub.ID)

	// The sweep (TTL 30ms, swept at least every 50ms) must evict the
	// completed submission; in-flight ones are never touched, so poll.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + sub.ID)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusNotFound {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("completed submission never swept")
		}
		time.Sleep(20 * time.Millisecond)
	}

	// The result outlives its submission id.
	resp2, err := http.Get(ts.URL + "/v1/results?key=" + url.QueryEscape(sub.Keys[0]))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("swept submission's result not fetchable: %d", resp2.StatusCode)
	}

	// The sweep shows up in the metrics endpoint.
	resp3, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	var body strings.Builder
	if _, err := bufio.NewReader(resp3.Body).WriteTo(&body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(body.String(), "clusterd_submissions_swept_total 1") {
		t.Errorf("metrics missing sweep counter:\n%s", body.String())
	}
}

// GET /metrics renders the engine and per-tier store counters in
// Prometheus text exposition format.
func TestMetricsEndpoint(t *testing.T) {
	ts, _, _ := startServer(t)

	resp, raw := postJSON(t, ts.URL+"/v1/jobs",
		`{"simpoint":"gzip-1","setup":{"kind":"OP"},"opts":{"num_uops":2000}}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, raw)
	}
	var sub service.SubmitResponse
	if err := json.Unmarshal(raw, &sub); err != nil {
		t.Fatal(err)
	}
	waitDone(t, ts.URL, sub.ID)

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	if ct := mresp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics content type %q", ct)
	}
	var b strings.Builder
	if _, err := bufio.NewReader(mresp.Body).WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	body := b.String()
	for _, want := range []string{
		"# TYPE clusterd_engine_simulations_total counter",
		"clusterd_engine_simulations_total 1",
		`clusterd_store_entries{tier="memory"}`,
		`clusterd_store_entries{tier="disk"} 1`,
		`clusterd_store_puts_total{tier="all"}`,
		"clusterd_submissions_retained 1",
		"# TYPE clusterd_engine_core_pool_hits_total counter",
		"clusterd_engine_core_pool_misses_total 1",
		"# TYPE clusterd_engine_trace_unpacks_total counter",
		"# TYPE clusterd_engine_trace_shared_hits_total counter",
		"clusterd_engine_trace_unpacked_live 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// A server started with a token answers every request that lacks it (or
// presents the wrong one) with a JSON 401 carrying the stable
// "unauthorized" code. /healthz stays open: orchestrator liveness probes
// cannot attach credentials.
func TestBearerTokenEnforced(t *testing.T) {
	st := store.NewMemory(64 << 20)
	eng := engine.New(engine.Options{Parallelism: 2, ResultStore: st})
	svc := service.New(context.Background(), eng, st)
	svc.SetToken("sesame")
	ts := httptest.NewServer(svc)
	t.Cleanup(ts.Close)

	get := func(path, auth string) (*http.Response, []byte) {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, ts.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		if auth != "" {
			req.Header.Set("Authorization", auth)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var b strings.Builder
		bufio.NewReader(resp.Body).WriteTo(&b)
		return resp, []byte(b.String())
	}

	for name, auth := range map[string]string{
		"no credentials": "",
		"wrong token":    "Bearer open",
		"wrong scheme":   "Basic sesame",
	} {
		resp, raw := get("/v1/stats", auth)
		if resp.StatusCode != http.StatusUnauthorized {
			t.Errorf("%s: status %d, want 401", name, resp.StatusCode)
		}
		var e api.Error
		if err := json.Unmarshal(raw, &e); err != nil || e.Code != api.CodeUnauthorized {
			t.Errorf("%s: error body %s", name, raw)
		}
		if resp.Header.Get(api.VersionHeader) == "" {
			t.Errorf("%s: 401 lost the version header", name)
		}
	}

	if resp, raw := get("/v1/stats", "Bearer sesame"); resp.StatusCode != http.StatusOK {
		t.Errorf("correct token refused: %d %s", resp.StatusCode, raw)
	}
	if resp, _ := get("/healthz", ""); resp.StatusCode != http.StatusOK {
		t.Errorf("healthz demanded credentials: %d", resp.StatusCode)
	}

	// Submission requires the token too.
	resp, raw := postJSON(t, ts.URL+"/v1/jobs",
		`{"simpoint":"gzip-1","setup":{"kind":"OP"},"opts":{"num_uops":2000}}`)
	if resp.StatusCode != http.StatusUnauthorized {
		t.Errorf("unauthenticated submit: %d %s", resp.StatusCode, raw)
	}
}

// The per-batch parallelism hint is accepted (and clamped server-side):
// a capped batch still completes every job correctly, and a hint beyond
// the server's own limit is not an escalation vector.
func TestSubmitMaxParallelHint(t *testing.T) {
	ts, eng, _ := startServer(t)

	for _, hint := range []int{1, 99} {
		body := fmt.Sprintf(`{"max_parallel":%d,"jobs":[
			{"simpoint":"gzip-1","setup":{"kind":"OP","clusters":2},"opts":{"num_uops":2000}},
			{"simpoint":"mcf","setup":{"kind":"OP","clusters":2},"opts":{"num_uops":2000}},
			{"simpoint":"crafty","setup":{"kind":"OP","clusters":2},"opts":{"num_uops":2000}}
		]}`, hint)
		resp, raw := postJSON(t, ts.URL+"/v1/jobs", body)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("hint %d: submit status %d %s", hint, resp.StatusCode, raw)
		}
		var sub service.SubmitResponse
		if err := json.Unmarshal(raw, &sub); err != nil {
			t.Fatal(err)
		}
		waitDone(t, ts.URL, sub.ID)

		sresp, err := http.Get(ts.URL + "/v1/jobs/" + sub.ID)
		if err != nil {
			t.Fatal(err)
		}
		var status service.StatusResponse
		err = json.NewDecoder(sresp.Body).Decode(&status)
		sresp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if status.Completed != 3 {
			t.Fatalf("hint %d: %d of 3 jobs completed", hint, status.Completed)
		}
		for _, ev := range status.Results {
			if ev.Error != "" {
				t.Errorf("hint %d: job %d failed: %s", hint, ev.Index, ev.Error)
			}
		}
	}
	if eng.Stats().Simulations == 0 {
		t.Error("no simulations ran")
	}

	// Typos in the hint field are still rejected: the gate on unknown
	// fields did not loosen with the new optional one.
	resp, _ := postJSON(t, ts.URL+"/v1/jobs",
		`{"maxparallel":1,"jobs":[{"simpoint":"mcf","setup":{"kind":"OP"}}]}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field accepted: %d", resp.StatusCode)
	}
}
