package service_test

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"clustersim/internal/admission"
	"clustersim/internal/api"
	"clustersim/internal/engine"
	"clustersim/internal/service"
	"clustersim/internal/store"
)

// startLimitedServer is startServer with admission control installed.
func startLimitedServer(t *testing.T, limits admission.Limits, parallel int) *httptest.Server {
	t.Helper()
	st := store.NewMemory(64 << 20)
	eng := engine.New(engine.Options{Parallelism: parallel, ResultStore: st})
	srv := service.New(context.Background(), eng, st)
	srv.SetAdmission(admission.New(limits))
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts
}

// postJobs submits a body with extra headers and returns the response
// plus its decoded error (nil on 2xx).
func postJobs(t *testing.T, base, body string, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, base+"/v1/jobs", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

const tinyJob = `{"simpoint":"gzip-1","setup":{"kind":"OP","clusters":2},"opts":{"num_uops":%d}}`

func batchBody(n, uops int, extra string) string {
	jobs := make([]string, n)
	for i := range jobs {
		// Distinct num_uops per job keeps result keys distinct, so the
		// engine's single-flight collapse can't merge them.
		jobs[i] = fmt.Sprintf(tinyJob, uops+i)
	}
	return `{"jobs":[` + strings.Join(jobs, ",") + `]` + extra + `}`
}

func TestSubmitRateLimited429(t *testing.T) {
	// Rate near zero: the initial burst of 2 is all a tenant ever gets.
	ts := startLimitedServer(t, admission.Limits{Rate: 0.001, Burst: 2}, 2)

	resp, raw := postJobs(t, ts.URL, batchBody(2, 2000, ""), nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first batch: %d %s", resp.StatusCode, raw)
	}
	var sub service.SubmitResponse
	if err := json.Unmarshal(raw, &sub); err != nil {
		t.Fatal(err)
	}
	waitDone(t, ts.URL, sub.ID)

	resp, raw = postJobs(t, ts.URL, batchBody(2, 3000, ""), nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-rate batch: %d %s, want 429", resp.StatusCode, raw)
	}
	var apiErr api.Error
	if err := json.Unmarshal(raw, &apiErr); err != nil {
		t.Fatalf("429 body not an api.Error: %s", raw)
	}
	if apiErr.Code != api.CodeRateLimited {
		t.Fatalf("code = %q, want %q", apiErr.Code, api.CodeRateLimited)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("Retry-After = %q, want an integer >= 1", resp.Header.Get("Retry-After"))
	}

	// The rejection is visible on /metrics with its reason label, and
	// the finished first batch released its in-flight slots.
	if v := scrapeMetric(t, ts.URL, `clusterd_admission_rejects_total{reason="rate_limited"}`); v < 1 {
		t.Fatalf("rate_limited rejects metric = %v, want >= 1", v)
	}
	var stats service.StatsResponse
	mustGetJSON(t, ts.URL+"/v1/stats", &stats)
	if stats.Admission == nil {
		t.Fatal("stats.Admission missing on a limited server")
	}
	if stats.Admission.InFlight != 0 {
		t.Fatalf("admission in_flight = %d after batch completion, want 0", stats.Admission.InFlight)
	}
	if stats.Admission.Admitted != 2 || stats.Admission.RejectedRate < 1 {
		t.Fatalf("admission stats: %+v", stats.Admission)
	}
}

func TestSubmitQuotaExceeded429(t *testing.T) {
	ts := startLimitedServer(t, admission.Limits{MaxInFlight: 1}, 2)

	// A batch larger than the quota can never be admitted.
	resp, raw := postJobs(t, ts.URL, batchBody(2, 2000, ""), nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota batch: %d %s, want 429", resp.StatusCode, raw)
	}
	var apiErr api.Error
	if err := json.Unmarshal(raw, &apiErr); err != nil || apiErr.Code != api.CodeQuotaExceeded {
		t.Fatalf("code = %q (%v), want %q", apiErr.Code, err, api.CodeQuotaExceeded)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	// Within quota is fine, and slots return as jobs finish.
	resp, raw = postJobs(t, ts.URL, batchBody(1, 2000, ""), nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("within-quota batch: %d %s", resp.StatusCode, raw)
	}
	var sub service.SubmitResponse
	if err := json.Unmarshal(raw, &sub); err != nil {
		t.Fatal(err)
	}
	waitDone(t, ts.URL, sub.ID)
	resp, raw = postJobs(t, ts.URL, batchBody(1, 5000, ""), nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("batch after quota release: %d %s", resp.StatusCode, raw)
	}
}

func TestAdmissionPerTenantIsolation(t *testing.T) {
	ts := startLimitedServer(t, admission.Limits{Rate: 0.001, Burst: 1}, 2)

	if resp, raw := postJobs(t, ts.URL, batchBody(1, 2000, ""),
		map[string]string{api.TenantHeader: "flood"}); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("flood's first submit: %d %s", resp.StatusCode, raw)
	}
	if resp, _ := postJobs(t, ts.URL, batchBody(1, 3000, ""),
		map[string]string{api.TenantHeader: "flood"}); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("flood's second submit: %d, want 429", resp.StatusCode)
	}
	// A different tenant is unaffected by flood's exhausted bucket.
	if resp, raw := postJobs(t, ts.URL, batchBody(1, 4000, ""),
		map[string]string{api.TenantHeader: "calm"}); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("calm rejected because of flood: %d %s", resp.StatusCode, raw)
	}
}

func TestAdmissionTenantHeaderIgnoredUnderAuth(t *testing.T) {
	// With auth enabled the credential is the admission identity: a
	// client minting a fresh Clustersim-Tenant value per request must
	// not escape its token's bucket (that would defeat the limits
	// entirely).
	st := store.NewMemory(64 << 20)
	eng := engine.New(engine.Options{Parallelism: 2, ResultStore: st})
	srv := service.New(context.Background(), eng, st)
	srv.SetToken("sekrit")
	srv.SetAdmission(admission.New(admission.Limits{Rate: 0.001, Burst: 1}))
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	hdr := map[string]string{
		"Authorization":  "Bearer sekrit",
		api.TenantHeader: "mint-1",
	}
	if resp, raw := postJobs(t, ts.URL, batchBody(1, 2000, ""), hdr); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %d %s", resp.StatusCode, raw)
	}
	hdr[api.TenantHeader] = "mint-2"
	if resp, _ := postJobs(t, ts.URL, batchBody(1, 3000, ""), hdr); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("header-minted tenant escaped the credential's bucket: %d, want 429", resp.StatusCode)
	}
}

func TestSubmitPriorityValidation(t *testing.T) {
	ts, _, _ := startServer(t)

	resp, raw := postJobs(t, ts.URL, batchBody(1, 2000, `,"priority":"urgent"`), nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown priority: %d %s, want 400", resp.StatusCode, raw)
	}
	var apiErr api.Error
	if err := json.Unmarshal(raw, &apiErr); err != nil || apiErr.Code != api.CodeBadRequest {
		t.Fatalf("code = %q (%v), want bad_request", apiErr.Code, err)
	}

	for _, prio := range []string{"interactive", "bulk"} {
		resp, raw := postJobs(t, ts.URL, batchBody(1, 2000, `,"priority":"`+prio+`"`), nil)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("priority %q rejected: %d %s", prio, resp.StatusCode, raw)
		}
		var sub service.SubmitResponse
		if err := json.Unmarshal(raw, &sub); err != nil {
			t.Fatal(err)
		}
		waitDone(t, ts.URL, sub.ID)
	}
}

func TestSubmitDeadlinePropagation(t *testing.T) {
	// One worker, three jobs too large to finish within 1ms: whichever
	// started is canceled at the deadline and the queued rest are shed
	// before execution. Every event must carry the stable code.
	st := store.NewMemory(64 << 20)
	eng := engine.New(engine.Options{Parallelism: 1, ResultStore: st})
	ts := httptest.NewServer(service.New(context.Background(), eng, st))
	t.Cleanup(ts.Close)

	resp, raw := postJobs(t, ts.URL, batchBody(3, 80000, ""),
		map[string]string{api.DeadlineHeader: "1"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, raw)
	}
	var sub service.SubmitResponse
	if err := json.Unmarshal(raw, &sub); err != nil {
		t.Fatal(err)
	}
	waitDone(t, ts.URL, sub.ID)

	var status service.StatusResponse
	mustGetJSON(t, ts.URL+"/v1/jobs/"+sub.ID, &status)
	if len(status.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(status.Results))
	}
	for _, ev := range status.Results {
		if ev.Error == "" || ev.Code != api.CodeDeadlineExceeded {
			t.Fatalf("event %d: error=%q code=%q, want code %q",
				ev.Index, ev.Error, ev.Code, api.CodeDeadlineExceeded)
		}
	}
	// At least the queued jobs were shed before ever simulating.
	if v := scrapeMetric(t, ts.URL, "clusterd_engine_deadline_shed_total"); v < 1 {
		t.Fatalf("deadline_shed metric = %v, want >= 1", v)
	}
}

func TestSubmitDeadlineHeaderValidation(t *testing.T) {
	ts, _, _ := startServer(t)
	for _, bad := range []string{"abc", "-5", "0", "1.5"} {
		resp, raw := postJobs(t, ts.URL, batchBody(1, 2000, ""),
			map[string]string{api.DeadlineHeader: bad})
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("deadline %q: %d %s, want 400", bad, resp.StatusCode, raw)
		}
	}
}

func mustGetJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}
