package service

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"
	"time"

	"clustersim/internal/engine"
	"clustersim/internal/store"
)

// TestSSESlowConsumerDisconnected pins the slow-subscriber contract: a
// subscriber that stops draining its connection is cut off once a frame
// write exceeds the SSE write timeout — counted in the disconnect
// metric — while a healthy subscriber of the same submission receives
// every frame. Before the bound existed, the stalled reader parked its
// subscription goroutine in w.Write for the submission's lifetime.
func TestSSESlowConsumerDisconnected(t *testing.T) {
	eng := engine.New(engine.Options{Parallelism: 1})
	srv := New(context.Background(), eng, store.NewMemory(1<<20))
	srv.SetSSEWriteTimeout(300 * time.Millisecond)

	// Hand-build a submission whose frames dwarf any socket buffering
	// loopback can absorb (64 × 256 KiB = 16 MiB), so a reader that
	// stops draining stalls the server's writes for real.
	sub := &submission{id: "sub-slow", changed: make(chan struct{})}
	srv.mu.Lock()
	srv.subs[sub.id] = sub
	srv.mu.Unlock()
	frame := append(append([]byte("data: "), bytes.Repeat([]byte("x"), 256<<10)...), "\n\n"...)
	const frames = 64
	for i := 0; i < frames; i++ {
		sub.append(JobEvent{Index: i}, frame, false)
	}
	sub.append(JobEvent{}, nil, true)

	ts := httptest.NewServer(srv)
	defer ts.Close()
	u, err := url.Parse(ts.URL)
	if err != nil {
		t.Fatal(err)
	}

	// The stalled subscriber: speaks just enough HTTP to subscribe,
	// then never reads a byte off the socket.
	stalled, err := net.Dial("tcp", u.Host)
	if err != nil {
		t.Fatal(err)
	}
	defer stalled.Close()
	fmt.Fprintf(stalled, "GET /v1/jobs/%s/stream HTTP/1.1\r\nHost: %s\r\n\r\n", sub.id, u.Host)

	// A healthy subscriber of the same submission streams everything.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + sub.id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("healthy subscriber failed alongside the stalled one: %v", err)
	}
	if want := frames * len(frame); len(body) < want {
		t.Fatalf("healthy subscriber got %d bytes, want >= %d", len(body), want)
	}

	// The stalled one must be disconnected within the write timeout
	// (plus scheduling slack), not held forever.
	deadline := time.Now().Add(10 * time.Second)
	for srv.sseSlowDisconnects.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("stalled subscriber never disconnected")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
