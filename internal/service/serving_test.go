package service_test

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"testing"

	"clustersim/internal/api"
	"clustersim/internal/store"
)

// scrapeMetric fetches /metrics and returns the value of an exactly-named
// series (including any label set), failing the test when absent.
func scrapeMetric(t *testing.T, base, series string) float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	scanner := bufio.NewScanner(resp.Body)
	for scanner.Scan() {
		line := scanner.Text()
		if !strings.HasPrefix(line, series+" ") {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimPrefix(line, series+" "), 64)
		if err != nil {
			t.Fatalf("unparsable metric line %q", line)
		}
		return v
	}
	t.Fatalf("metric %s not exposed", series)
	return 0
}

// readStream consumes one SSE connection fully, returning the raw data
// payloads of the result events in arrival order.
func readStream(t *testing.T, base, id string) []string {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var payloads []string
	scanner := bufio.NewScanner(resp.Body)
	event := ""
	for scanner.Scan() {
		line := scanner.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			if event == "done" {
				return payloads
			}
			payloads = append(payloads, strings.TrimPrefix(line, "data: "))
		}
	}
	t.Fatal("stream ended without done")
	return nil
}

// TestSSEFanoutEncodeOnce pins the encode-once contract: a submission's
// events are JSON-marshaled exactly once each, no matter how many
// subscribers replay the stream, and every subscriber sees byte-identical
// frames.
func TestSSEFanoutEncodeOnce(t *testing.T) {
	ts, _, _ := startServer(t)

	body := `{"jobs":[
		{"simpoint":"gzip-1","setup":{"kind":"OP","clusters":2},"opts":{"num_uops":3000}},
		{"simpoint":"gzip-1","setup":{"kind":"OB","clusters":2},"opts":{"num_uops":3000}},
		{"simpoint":"gzip-1","setup":{"kind":"VC","num_vc":2,"clusters":2},"opts":{"num_uops":3000}}
	]}`
	resp, raw := postJSON(t, ts.URL+"/v1/jobs", body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, raw)
	}
	var sub api.SubmitResponse
	if err := json.Unmarshal(raw, &sub); err != nil {
		t.Fatal(err)
	}
	waitDone(t, ts.URL, sub.ID)

	const subscribers = 6
	streams := make([][]string, subscribers)
	var wg sync.WaitGroup
	for i := 0; i < subscribers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			streams[i] = readStream(t, ts.URL, sub.ID)
		}(i)
	}
	wg.Wait()

	for i, payloads := range streams {
		if len(payloads) != 3 {
			t.Fatalf("subscriber %d saw %d events, want 3", i, len(payloads))
		}
		for j := range payloads {
			if payloads[j] != streams[0][j] {
				t.Errorf("subscriber %d event %d differs: %q vs %q",
					i, j, payloads[j], streams[0][j])
			}
		}
	}

	if marshals := scrapeMetric(t, ts.URL, "clusterd_sse_marshals_total"); marshals != 3 {
		t.Errorf("sse marshals = %g, want exactly one per event (3) regardless of %d subscribers",
			marshals, subscribers)
	}
	if frames := scrapeMetric(t, ts.URL, "clusterd_sse_frames_total"); frames != 3*subscribers {
		t.Errorf("sse frames = %g, want %d", frames, 3*subscribers)
	}
	if bytes := scrapeMetric(t, ts.URL, "clusterd_sse_bytes_total"); bytes <= 0 {
		t.Errorf("sse bytes = %g, want > 0", bytes)
	}
}

// TestResultETagNotModified pins the 304 protocol: results carry a strong
// content-derived ETag, and a warm client replaying it skips store read
// and body on both the JSON and raw representations.
func TestResultETagNotModified(t *testing.T) {
	ts, _, st := startServer(t)

	body := `{"simpoint":"gzip-1","setup":{"kind":"OP","clusters":2},"opts":{"num_uops":3000}}`
	resp, raw := postJSON(t, ts.URL+"/v1/jobs", body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, raw)
	}
	var sub api.SubmitResponse
	if err := json.Unmarshal(raw, &sub); err != nil {
		t.Fatal(err)
	}
	waitDone(t, ts.URL, sub.ID)
	key := sub.Keys[0]

	fetch := func(rawQuery, inm string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet,
			ts.URL+"/v1/results?"+rawQuery+"key="+url.QueryEscape(key), nil)
		if err != nil {
			t.Fatal(err)
		}
		if inm != "" {
			req.Header.Set("If-None-Match", inm)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	cold := fetch("", "")
	coldBody, _ := io.ReadAll(cold.Body)
	cold.Body.Close()
	if cold.StatusCode != http.StatusOK || len(coldBody) == 0 {
		t.Fatalf("cold fetch: %d, %d body bytes", cold.StatusCode, len(coldBody))
	}
	etag := cold.Header.Get("ETag")
	if etag != `"`+store.Addr(key)+`"` {
		t.Fatalf("etag = %q, want quoted content address", etag)
	}

	getsBefore := st.Stats().Hits + st.Stats().Misses
	warm := fetch("", etag)
	warmBody, _ := io.ReadAll(warm.Body)
	warm.Body.Close()
	if warm.StatusCode != http.StatusNotModified || len(warmBody) != 0 {
		t.Fatalf("warm fetch: %d, %d body bytes, want 304 with no body",
			warm.StatusCode, len(warmBody))
	}
	if warm.Header.Get("ETag") != etag {
		t.Errorf("304 lost the etag: %q", warm.Header.Get("ETag"))
	}
	if gets := st.Stats().Hits + st.Stats().Misses; gets != getsBefore {
		t.Errorf("304 path read the store (%d Gets)", gets-getsBefore)
	}

	// The raw representation honors the protocol too, and list syntax
	// matches.
	rawResp := fetch("raw=1&", `W/"bogus", `+etag)
	rawResp.Body.Close()
	if rawResp.StatusCode != http.StatusNotModified {
		t.Errorf("raw fetch with matching etag: %d, want 304", rawResp.StatusCode)
	}

	// A stale validator still gets the full body.
	stale := fetch("", `"deadbeef"`)
	staleBody, _ := io.ReadAll(stale.Body)
	stale.Body.Close()
	if stale.StatusCode != http.StatusOK || len(staleBody) == 0 {
		t.Errorf("stale etag fetch: %d, %d body bytes", stale.StatusCode, len(staleBody))
	}

	if n := scrapeMetric(t, ts.URL, "clusterd_result_not_modified_total"); n != 2 {
		t.Errorf("not-modified counter = %g, want 2", n)
	}

	// The serving block travels on /v1/stats too.
	statsResp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats api.StatsResponse
	err = json.NewDecoder(statsResp.Body).Decode(&stats)
	statsResp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Serving.NotModified != 2 {
		t.Errorf("stats serving block = %+v, want 2 not-modified", stats.Serving)
	}
}

// TestMetricsServingFamilies asserts the serving-path counters introduced
// with the sharded store and encode-once streaming are scrapable.
func TestMetricsServingFamilies(t *testing.T) {
	ts, _, _ := startServer(t)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	blob, _ := io.ReadAll(resp.Body)
	text := string(blob)
	for _, series := range []string{
		"clusterd_sse_marshals_total",
		"clusterd_sse_frames_total",
		"clusterd_sse_bytes_total",
		"clusterd_result_not_modified_total",
		"clusterd_store_get_collapses_total",
		`clusterd_store_shards{tier="memory"}`,
		`clusterd_store_shard_bytes_high_water{tier="memory"}`,
	} {
		if !strings.Contains(text, series) {
			t.Errorf("metrics output missing %s", series)
		}
	}
	// The memory tier really is striped.
	if shards := scrapeMetric(t, ts.URL, `clusterd_store_shards{tier="memory"}`); shards < 1 {
		t.Errorf("memory tier shards = %g", shards)
	}
}
