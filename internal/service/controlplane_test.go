package service_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sort"
	"strings"
	"testing"

	"clustersim/internal/api"
	"clustersim/internal/engine"
	"clustersim/internal/service"
	"clustersim/internal/store"
)

// runQuickBatch submits a small batch and waits for completion by
// polling status; returns the result keys.
func runQuickBatch(t *testing.T, base string, n int) []string {
	t.Helper()
	var specs []string
	for i := 0; i < n; i++ {
		specs = append(specs, fmt.Sprintf(
			`{"simpoint":"gzip-%d","setup":{"kind":"OP","clusters":2},"opts":{"num_uops":2000}}`, i+1))
	}
	resp, raw := postJSON(t, base+"/v1/jobs", `{"jobs":[`+strings.Join(specs, ",")+`]}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, raw)
	}
	var sub service.SubmitResponse
	if err := json.Unmarshal(raw, &sub); err != nil {
		t.Fatal(err)
	}
	for {
		st, err := http.Get(base + "/v1/jobs/" + sub.ID)
		if err != nil {
			t.Fatal(err)
		}
		var status service.StatusResponse
		json.NewDecoder(st.Body).Decode(&status)
		st.Body.Close()
		if status.Done {
			return sub.Keys
		}
	}
}

func getJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil && err != io.EOF {
		t.Fatalf("decoding %s: %v", url, err)
	}
	return resp
}

// GET /v1/keys pages through exactly the stored key set.
func TestKeysEndpoint(t *testing.T) {
	ts, _, _ := startServer(t)
	want := runQuickBatch(t, ts.URL, 5)
	sort.Strings(want)

	var got []string
	cursor := ""
	for pages := 0; ; pages++ {
		if pages > 100 {
			t.Fatal("key paging did not terminate")
		}
		var page api.KeysResponse
		resp := getJSON(t, ts.URL+"/v1/keys?limit=2&cursor="+url.QueryEscape(cursor), &page)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("keys page: %d", resp.StatusCode)
		}
		if len(page.Keys) > 2 {
			t.Fatalf("page of %d keys exceeds limit 2", len(page.Keys))
		}
		got = append(got, page.Keys...)
		if page.Next == "" {
			break
		}
		cursor = page.Next
	}
	sort.Strings(got)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("keys = %v, want %v", got, want)
	}

	// Malformed limit is a bad request, not a silent default.
	resp, err := http.Get(ts.URL + "/v1/keys?limit=banana")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("limit=banana: %d, want 400", resp.StatusCode)
	}

	var stats service.StatsResponse
	getJSON(t, ts.URL+"/v1/stats", &stats)
	if stats.Serving.KeyPages == 0 {
		t.Error("key pages not counted in serving stats")
	}
}

func doPut(t *testing.T, url string, body []byte) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPut, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

// A result computed on one worker and uploaded to another serves
// byte-identically there, and the second worker's engine treats it as a
// store hit — zero re-simulation, the property drains depend on.
func TestPutResultMigratesWithoutResimulating(t *testing.T) {
	src, _, _ := startServer(t)
	dst, dstEng, _ := startServer(t)

	keys := runQuickBatch(t, src.URL, 2)
	for _, key := range keys {
		resp, err := http.Get(src.URL + "/v1/results?key=" + url.QueryEscape(key) + "&raw=1")
		if err != nil {
			t.Fatal(err)
		}
		blob, _ := io.ReadAll(resp.Body)
		resp.Body.Close()

		if put := doPut(t, dst.URL+"/v1/results?key="+url.QueryEscape(key), blob); put.StatusCode != http.StatusNoContent {
			t.Fatalf("upload: %d", put.StatusCode)
		}

		// The migrated blob round-trips byte-identically.
		back, err := http.Get(dst.URL + "/v1/results?key=" + url.QueryEscape(key) + "&raw=1")
		if err != nil {
			t.Fatal(err)
		}
		blob2, _ := io.ReadAll(back.Body)
		back.Body.Close()
		if !bytes.Equal(blob, blob2) {
			t.Errorf("migrated blob differs for %s", key)
		}
	}

	// Re-running the same batch on the destination hits the warmed store.
	runQuickBatch(t, dst.URL, 2)
	if sims := dstEng.Stats().Simulations; sims != 0 {
		t.Errorf("destination simulated %d jobs despite warmed store", sims)
	}

	var stats service.StatsResponse
	getJSON(t, dst.URL+"/v1/stats", &stats)
	if stats.Serving.ResultUploads != int64(len(keys)) {
		t.Errorf("result uploads = %d, want %d", stats.Serving.ResultUploads, len(keys))
	}

	// Garbage is refused: a store of undecodable migrated blobs would
	// poison every future cache hit.
	if resp := doPut(t, dst.URL+"/v1/results?key=junk", []byte("not a result")); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage upload: %d, want 400", resp.StatusCode)
	}
	if resp := doPut(t, dst.URL+"/v1/results", []byte("x")); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("keyless upload: %d, want 400", resp.StatusCode)
	}
}

func proposeRing(t *testing.T, base string, tr api.RingTransition) (*http.Response, api.RingView, api.Error) {
	t.Helper()
	body, _ := json.Marshal(tr)
	resp, err := http.Post(base+"/v1/ring", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	var view api.RingView
	var apiErr api.Error
	if resp.StatusCode == http.StatusOK {
		json.Unmarshal(raw, &view)
	} else {
		json.Unmarshal(raw, &apiErr)
	}
	return resp, view, apiErr
}

func TestRingRegisterCAS(t *testing.T) {
	// A plain worker is not a coordinator.
	plain, _, _ := startServer(t)
	resp, err := http.Get(plain.URL + "/v1/ring")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("ring on plain worker: %d, want 404", resp.StatusCode)
	}

	st := store.NewMemory(0)
	eng := engine.New(engine.Options{Parallelism: 1, ResultStore: st})
	srv := service.New(context.Background(), eng, st)
	srv.EnableCoordinator()
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	// A fresh register is empty at epoch 0.
	var view api.RingView
	getJSON(t, ts.URL+"/v1/ring", &view)
	if view.Epoch != 0 || len(view.Members) != 0 {
		t.Fatalf("fresh view: %+v", view)
	}

	// Seed two members through the CAS.
	resp, view, _ = proposeRing(t, ts.URL, api.RingTransition{BaseEpoch: 0, Action: api.RingAdd, URL: "http://w1"})
	if resp.StatusCode != http.StatusOK || view.Epoch != 1 {
		t.Fatalf("first add: %d, view %+v", resp.StatusCode, view)
	}
	resp, view, _ = proposeRing(t, ts.URL, api.RingTransition{BaseEpoch: 1, Action: api.RingAdd, URL: "http://w2"})
	if resp.StatusCode != http.StatusOK || view.Epoch != 2 || len(view.Members) != 2 {
		t.Fatalf("second add: %d, view %+v", resp.StatusCode, view)
	}

	// A stale base epoch is refused with epoch_conflict and changes nothing.
	resp, _, apiErr := proposeRing(t, ts.URL, api.RingTransition{BaseEpoch: 1, Action: api.RingMarkDead, URL: "http://w1"})
	if resp.StatusCode != http.StatusConflict || apiErr.Code != api.CodeEpochConflict {
		t.Fatalf("stale propose: %d code=%q", resp.StatusCode, apiErr.Code)
	}
	getJSON(t, ts.URL+"/v1/ring", &view)
	if view.Epoch != 2 {
		t.Fatalf("stale propose advanced the epoch to %d", view.Epoch)
	}

	// An invalid transition at the right epoch is a bad request.
	resp, _, apiErr = proposeRing(t, ts.URL, api.RingTransition{BaseEpoch: 2, Action: api.RingRemove, URL: "http://w1"})
	if resp.StatusCode != http.StatusBadRequest || apiErr.Code != api.CodeBadRequest {
		t.Fatalf("remove-alive propose: %d code=%q", resp.StatusCode, apiErr.Code)
	}

	// An idempotent no-op at the right epoch succeeds without advancing.
	resp, view, _ = proposeRing(t, ts.URL, api.RingTransition{BaseEpoch: 2, Action: api.RingAdd, URL: "http://w2"})
	if resp.StatusCode != http.StatusOK || view.Epoch != 2 {
		t.Fatalf("no-op add: %d epoch=%d", resp.StatusCode, view.Epoch)
	}

	// Counters: one conflict, two accepted transitions, epoch gauge live.
	var stats service.StatsResponse
	getJSON(t, ts.URL+"/v1/stats", &stats)
	sv := stats.Serving
	if sv.RingEpoch != 2 || sv.RingTransitions != 2 || sv.RingConflicts != 1 {
		t.Errorf("serving stats: epoch=%d transitions=%d conflicts=%d, want 2/2/1",
			sv.RingEpoch, sv.RingTransitions, sv.RingConflicts)
	}
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{"clusterd_ring_epoch 2", "clusterd_ring_transitions_total 2", "clusterd_ring_conflicts_total 1"} {
		if !strings.Contains(string(mbody), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
