package service_test

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"clustersim/internal/api"
	"clustersim/internal/engine"
	"clustersim/internal/obs"
	"clustersim/internal/service"
	"clustersim/internal/store"
)

// startTracedServer is startServer with tracing enabled: the engine
// records per-stage flights into a tracer the service exposes on
// /v1/trace/{id} and in the /metrics stage histograms.
func startTracedServer(t *testing.T) (*httptest.Server, *obs.Tracer) {
	t.Helper()
	st := store.NewMemory(64 << 20)
	tracer := obs.NewTracer(64)
	eng := engine.New(engine.Options{Parallelism: 2, ResultStore: st, Tracer: tracer})
	ts := httptest.NewServer(service.New(context.Background(), eng, st))
	t.Cleanup(ts.Close)
	return ts, tracer
}

func getBody(t *testing.T, url string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var b strings.Builder
	if _, err := bufio.NewReader(resp.Body).WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	return resp, b.String()
}

// submitOne posts one job (optionally with a caller-chosen trace base)
// and waits for it to finish, returning the submit ack.
func submitOne(t *testing.T, ts *httptest.Server, traceBase string) service.SubmitResponse {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", strings.NewReader(
		`{"simpoint":"gzip-1","setup":{"kind":"OP","clusters":2},"opts":{"num_uops":2000}}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if traceBase != "" {
		req.Header.Set(api.TraceHeader, traceBase)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var sub service.SubmitResponse
	err = json.NewDecoder(resp.Body).Decode(&sub)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	waitDone(t, ts.URL, sub.ID)
	return sub
}

// The end-to-end trace contract: a cold job's flight carries the execute
// span exactly once (nested under the submission alongside annotate,
// expand, encode, store_put), and a warm resubmission of the same job is
// a cache_hit flight with no execute span at all.
func TestTraceEndToEnd(t *testing.T) {
	ts, _ := startTracedServer(t)

	sub := submitOne(t, ts, "e2e-cold")
	if len(sub.TraceIDs) != 1 || sub.TraceIDs[0] != "e2e-cold.0" {
		t.Fatalf("trace IDs %v, want [e2e-cold.0]", sub.TraceIDs)
	}

	resp, body := getBody(t, ts.URL+"/v1/trace/"+sub.TraceIDs[0])
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace fetch: %d %s", resp.StatusCode, body)
	}
	var tr api.TraceResponse
	if err := json.Unmarshal([]byte(body), &tr); err != nil {
		t.Fatal(err)
	}
	if tr.ID != "e2e-cold.0" || tr.Label != "gzip-1/OP" {
		t.Fatalf("trace header %+v", tr)
	}
	count := map[string]int{}
	for _, sp := range tr.Spans {
		count[sp.Name]++
		if sp.DurUs < 0 || sp.StartUs < 0 || sp.StartUs+sp.DurUs > tr.TotalUs+1000 {
			t.Errorf("span %+v escapes flight total %dus", sp, tr.TotalUs)
		}
	}
	for _, stage := range []string{"queue", "annotate", "expand", "execute", "encode", "store_put"} {
		if count[stage] != 1 {
			t.Errorf("cold flight has %d %q spans, want exactly 1 (spans: %+v)", count[stage], stage, tr.Spans)
		}
	}
	if count["cache_hit"] != 0 {
		t.Errorf("cold flight recorded a cache_hit span: %+v", tr.Spans)
	}
	if tr.UnaccountedUs < 0 {
		t.Errorf("negative unaccounted time %d", tr.UnaccountedUs)
	}

	// Warm rerun: same job, new submission — served from cache, so the
	// flight is a cache_hit with zero execute spans.
	warm := submitOne(t, ts, "e2e-warm")
	_, body = getBody(t, ts.URL+"/v1/trace/"+warm.TraceIDs[0])
	var wtr api.TraceResponse
	if err := json.Unmarshal([]byte(body), &wtr); err != nil {
		t.Fatal(err)
	}
	wcount := map[string]int{}
	for _, sp := range wtr.Spans {
		wcount[sp.Name]++
	}
	if wcount["execute"] != 0 {
		t.Errorf("warm flight executed: %+v", wtr.Spans)
	}
	if wcount["cache_hit"] != 1 {
		t.Errorf("warm flight has %d cache_hit spans, want 1 (%+v)", wcount["cache_hit"], wtr.Spans)
	}

	// Chrome rendering of the same flight is loadable trace-event JSON.
	resp, body = getBody(t, ts.URL+"/v1/trace/"+sub.TraceIDs[0]+"?format=chrome")
	if resp.StatusCode != http.StatusOK || !json.Valid([]byte(body)) {
		t.Fatalf("chrome format: %d, valid=%v", resp.StatusCode, json.Valid([]byte(body)))
	}
	if !strings.Contains(body, `"traceEvents"`) {
		t.Fatalf("chrome format body: %s", body)
	}
}

// An invalid caller-supplied trace base is replaced, not adopted, and
// never fails the submission.
func TestTraceHeaderInvalidBase(t *testing.T) {
	ts, _ := startTracedServer(t)
	sub := submitOne(t, ts, "bad base!")
	if len(sub.TraceIDs) != 1 {
		t.Fatalf("trace IDs %v", sub.TraceIDs)
	}
	if strings.HasPrefix(sub.TraceIDs[0], "bad base!") {
		t.Fatalf("adopted invalid base: %q", sub.TraceIDs[0])
	}
	if resp, _ := getBody(t, ts.URL+"/v1/trace/"+sub.TraceIDs[0]); resp.StatusCode != http.StatusOK {
		t.Fatalf("minted trace not queryable: %d", resp.StatusCode)
	}
}

func TestTraceNotFoundAndDisabled(t *testing.T) {
	ts, _ := startTracedServer(t)
	resp, body := getBody(t, ts.URL+"/v1/trace/nonexistent")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown trace: %d %s", resp.StatusCode, body)
	}
	var apiErr struct {
		Code string `json:"code"`
	}
	if err := json.Unmarshal([]byte(body), &apiErr); err != nil || apiErr.Code != api.CodeNotFound {
		t.Fatalf("error body %s (%v)", body, err)
	}

	// A server whose engine has no tracer reports "unsupported", not 404:
	// the caller can tell "tracing off" from "trace evicted".
	st := store.NewMemory(64 << 20)
	eng := engine.New(engine.Options{Parallelism: 2, ResultStore: st})
	plain := httptest.NewServer(service.New(context.Background(), eng, st))
	t.Cleanup(plain.Close)
	resp, body = getBody(t, plain.URL+"/v1/trace/any")
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("tracing-disabled trace fetch: %d %s", resp.StatusCode, body)
	}
}

// /metrics exposition well-formedness for the histogram families: every
// family carries _bucket series ending in le="+Inf", a _sum, and a
// _count, and the request count reflects served traffic.
func TestMetricsHistogramFamilies(t *testing.T) {
	ts, _ := startTracedServer(t)
	submitOne(t, ts, "")

	_, body := getBody(t, ts.URL+"/metrics")
	for _, fam := range []string{"clusterd_http_request_seconds", "clusterd_engine_stage_seconds"} {
		if !strings.Contains(body, "# TYPE "+fam+" histogram") {
			t.Errorf("missing TYPE line for %s", fam)
		}
		for _, suffix := range []string{"_bucket{", "_sum", "_count"} {
			if !strings.Contains(body, fam+suffix) {
				t.Errorf("family %s missing %s series", fam, suffix)
			}
		}
		if !strings.Contains(body, fam+`_bucket{`) || !strings.Contains(body, `le="+Inf"`) {
			t.Errorf("family %s missing +Inf bucket", fam)
		}
	}
	// The submit and the status polls must have been observed with their
	// route patterns (bounded label cardinality, never raw paths).
	for _, series := range []string{
		`clusterd_http_request_seconds_count{route="/v1/jobs",code="202"}`,
		`clusterd_http_request_seconds_count{route="/v1/jobs/{id}",code="200"}`,
		`clusterd_engine_stage_seconds_count{stage="execute"} 1`,
	} {
		if !strings.Contains(body, series) {
			t.Errorf("metrics missing series %q", series)
		}
	}
	// Every _bucket line parses: cumulative counts, monotonic within a
	// series, value fields integral.
	var prev int64
	var prevSeries string
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, "clusterd_http_request_seconds_bucket{") {
			continue
		}
		end := strings.LastIndex(line, "}")
		series := line[:strings.LastIndex(line[:end], ",")] // strip le
		var v int64
		if _, err := fmt.Sscanf(strings.TrimSpace(line[end+1:]), "%d", &v); err != nil {
			t.Fatalf("unparseable bucket line %q", line)
		}
		if series == prevSeries && v < prev {
			t.Fatalf("non-monotonic cumulative buckets at %q", line)
		}
		prev, prevSeries = v, series
	}
}

// /v1/stats carries the same histograms in JSON form, and their
// quantile helper works on the wire type.
func TestStatsLatencyHistograms(t *testing.T) {
	ts, _ := startTracedServer(t)
	submitOne(t, ts, "")

	_, body := getBody(t, ts.URL+"/v1/stats")
	var st service.StatsResponse
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if len(st.Routes) == 0 || len(st.Stages) == 0 {
		t.Fatalf("stats lack histograms: routes %d stages %d", len(st.Routes), len(st.Stages))
	}
	var jobs *api.LatencyHistogram
	for i := range st.Routes {
		if st.Routes[i].Route == "/v1/jobs" {
			jobs = &st.Routes[i]
		}
	}
	if jobs == nil || jobs.Count == 0 {
		t.Fatalf("no /v1/jobs route histogram in %+v", st.Routes)
	}
	if q := jobs.Quantile(0.5); q < 0 {
		t.Fatalf("quantile %v", q)
	}
	seen := map[string]bool{}
	for _, h := range st.Stages {
		seen[h.Stage] = true
	}
	if !seen["execute"] {
		t.Fatalf("stage histograms %v lack execute", seen)
	}
}
