// GET /metrics: the engine and store counters in Prometheus text
// exposition format (version 0.0.4), hand-rendered — the daemon has no
// business pulling in a metrics dependency for a dozen gauges. The same
// numbers are available as JSON from /v1/stats; this endpoint exists so a
// fleet of clusterd workers can be scraped by stock monitoring.
package service

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"clustersim/internal/obs"
	"clustersim/internal/store"
)

// metric is one exposition family rendered with zero or one label pairs.
type metric struct {
	name string
	help string
	typ  string // "counter" or "gauge"
	rows []metricRow
}

type metricRow struct {
	labels string // rendered label set incl. braces, "" for none
	value  float64
}

func (m metric) render(b *strings.Builder) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s %s\n", m.name, m.help, m.name, m.typ)
	for _, r := range m.rows {
		// %g keeps integers integral and avoids trailing zeros.
		fmt.Fprintf(b, "%s%s %g\n", m.name, r.labels, r.value)
	}
}

func one(v int64) []metricRow { return []metricRow{{value: float64(v)}} }

// histogramFamily renders one Prometheus histogram family from labeled
// obs snapshots: cumulative _bucket series with an explicit +Inf, then
// _sum and _count per series. labelNames maps the snapshot's positional
// label values ("route"/"code", or "stage") onto exposition labels.
type histogramFamily struct {
	name       string
	help       string
	labelNames []string
	series     []obs.LabeledSnapshot
}

func (h histogramFamily) render(b *strings.Builder) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s histogram\n", h.name, h.help, h.name)
	for _, ls := range h.series {
		var pairs []string
		for i, n := range h.labelNames {
			if i < len(ls.Labels) {
				pairs = append(pairs, fmt.Sprintf("%s=%q", n, ls.Labels[i]))
			}
		}
		base := strings.Join(pairs, ",")
		sep := ""
		if base != "" {
			sep = ","
		}
		for i, bound := range ls.Bounds {
			fmt.Fprintf(b, "%s_bucket{%s%sle=%q} %d\n",
				h.name, base, sep, strconv.FormatFloat(bound, 'g', -1, 64), ls.Counts[i])
		}
		fmt.Fprintf(b, "%s_bucket{%s%sle=\"+Inf\"} %d\n", h.name, base, sep, ls.Counts[len(ls.Counts)-1])
		suffix := ""
		if base != "" {
			suffix = "{" + base + "}"
		}
		fmt.Fprintf(b, "%s_sum%s %g\n", h.name, suffix, ls.Sum)
		fmt.Fprintf(b, "%s_count%s %d\n", h.name, suffix, ls.Count)
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	eng := s.eng.Stats()

	s.mu.Lock()
	active := len(s.subs) - len(s.retired)
	retired := len(s.retired)
	swept := s.swept
	s.mu.Unlock()

	metrics := []metric{
		{"clusterd_engine_simulations_total", "Pipeline executions (cache misses all the way down).", "counter", one(eng.Simulations)},
		{"clusterd_engine_result_hits_total", "Whole-result cache hits.", "counter", one(eng.ResultHits)},
		{"clusterd_engine_result_misses_total", "Whole-result cache misses.", "counter", one(eng.ResultMisses)},
		{"clusterd_engine_trace_hits_total", "Expanded-trace cache hits.", "counter", one(eng.TraceHits)},
		{"clusterd_engine_trace_misses_total", "Expanded-trace cache misses.", "counter", one(eng.TraceMisses)},
		{"clusterd_engine_program_hits_total", "Annotated-program cache hits.", "counter", one(eng.ProgramHits)},
		{"clusterd_engine_program_misses_total", "Annotated-program cache misses.", "counter", one(eng.ProgramMisses)},
		{"clusterd_engine_store_hits_total", "Persistent result-store hits.", "counter", one(eng.StoreHits)},
		{"clusterd_engine_store_misses_total", "Persistent result-store misses.", "counter", one(eng.StoreMisses)},
		{"clusterd_engine_store_errors_total", "Undecodable or unencodable result blobs.", "counter", one(eng.StoreErrors)},
		{"clusterd_engine_trace_cache_bytes", "Compressed expanded-trace cache occupancy.", "gauge", one(eng.TraceBytes)},
		{"clusterd_engine_trace_cache_bytes_high_water", "Maximum observed trace cache occupancy (compressed).", "gauge", one(eng.TraceBytesHighWater)},
		{"clusterd_engine_trace_cache_raw_bytes", "Pre-compression size of the cached traces.", "gauge", one(eng.TraceRawBytes)},
		{"clusterd_engine_core_pool_hits_total", "Simulations served by a pooled core (Reset, no construction).", "counter", one(eng.CorePoolHits)},
		{"clusterd_engine_core_pool_misses_total", "Simulations that constructed a fresh core.", "counter", one(eng.CorePoolMisses)},
		{"clusterd_engine_trace_unpacks_total", "Cached-trace decompressions actually performed.", "counter", one(eng.TraceUnpacks)},
		{"clusterd_engine_trace_shared_hits_total", "Cached-trace hits that shared a live unpacked form instead of decompressing.", "counter", one(eng.TraceSharedHits)},
		{"clusterd_engine_trace_unpacked_live", "Cached traces currently held in unpacked form by running jobs.", "gauge", one(eng.TraceUnpackedLive)},
		{"clusterd_submissions_active", "Submissions with jobs still running.", "gauge", one(int64(active))},
		{"clusterd_submissions_retained", "Completed submissions still queryable.", "gauge", one(int64(retired))},
		{"clusterd_submissions_swept_total", "Completed submissions evicted by the TTL sweep.", "counter", one(swept)},
		{"clusterd_sse_marshals_total", "Job events JSON-encoded (once per event, shared by all subscribers).", "counter", one(s.sseMarshals.Load())},
		{"clusterd_sse_frames_total", "Shared SSE result frames written to subscribers.", "counter", one(s.sseFrames.Load())},
		{"clusterd_sse_bytes_total", "Bytes of SSE result frames written to subscribers.", "counter", one(s.sseBytes.Load())},
		{"clusterd_sse_slow_disconnects_total", "SSE subscribers dropped for not draining a frame within the write timeout.", "counter", one(s.sseSlowDisconnects.Load())},
		{"clusterd_engine_lane_grants_total", "Worker-slot grants by scheduling lane.", "counter", []metricRow{
			{labels: `{lane="interactive"}`, value: float64(eng.InteractiveGrants)},
			{labels: `{lane="bulk"}`, value: float64(eng.BulkGrants)},
		}},
		{"clusterd_engine_deadline_shed_total", "Jobs shed before execution because their deadline had expired.", "counter", one(eng.DeadlineShed)},
		{"clusterd_result_not_modified_total", "Result fetches answered 304 via If-None-Match (no store read, no body).", "counter", one(s.notModified.Load())},
		{"clusterd_result_uploads_total", "Validated result blobs accepted over PUT /v1/results (drain migrations, backfills).", "counter", one(s.resultUploads.Load())},
		{"clusterd_key_pages_total", "GET /v1/keys pages served.", "counter", one(s.keyPages.Load())},
		{"clusterd_ring_epoch", "Coordinator membership epoch (0 when not a coordinator).", "gauge", one(s.ringEpoch())},
		{"clusterd_ring_transitions_total", "Membership transitions this coordinator accepted.", "counter", one(s.ringTransitions.Load())},
		{"clusterd_ring_conflicts_total", "Ring proposals refused for a stale base epoch.", "counter", one(s.ringConflicts.Load())},
		{"clusterd_store_get_collapses_total", "Cold store Gets that joined another caller's in-flight slow-tier fetch.", "counter", one(s.st.Stats().Collapses)},
	}

	if s.adm != nil {
		adm := s.adm.Stats()
		metrics = append(metrics,
			metric{"clusterd_admission_admitted_total", "Jobs admitted past admission control.", "counter", one(adm.Admitted)},
			metric{"clusterd_admission_rejects_total", "Submissions refused 429, by reason.", "counter", []metricRow{
				{labels: `{reason="rate_limited"}`, value: float64(adm.RejectedRate)},
				{labels: `{reason="quota_exceeded"}`, value: float64(adm.RejectedQuota)},
			}},
			metric{"clusterd_admission_in_flight", "Admitted jobs not yet finished, across all tenants.", "gauge", one(adm.InFlight)},
			metric{"clusterd_admission_tenants", "Tenant identities currently tracked.", "gauge", one(int64(adm.Tenants))},
		)
	}

	tiers := []struct {
		label string
		stats store.Stats
	}{{"all", s.st.Stats()}}
	if tiered, ok := s.st.(*store.Tiered); ok {
		fast, slow := tiered.Layers()
		tiers = append(tiers,
			struct {
				label string
				stats store.Stats
			}{"memory", fast},
			struct {
				label string
				stats store.Stats
			}{"disk", slow})
	}
	storeMetric := func(name, help, typ string, get func(store.Stats) int64) metric {
		m := metric{name: name, help: help, typ: typ}
		for _, t := range tiers {
			m.rows = append(m.rows, metricRow{
				labels: fmt.Sprintf(`{tier=%q}`, t.label),
				value:  float64(get(t.stats)),
			})
		}
		return m
	}
	metrics = append(metrics,
		storeMetric("clusterd_store_hits_total", "Store Get hits by tier.", "counter", func(st store.Stats) int64 { return st.Hits }),
		storeMetric("clusterd_store_misses_total", "Store Get misses by tier.", "counter", func(st store.Stats) int64 { return st.Misses }),
		storeMetric("clusterd_store_puts_total", "Blobs accepted by tier.", "counter", func(st store.Stats) int64 { return st.Puts }),
		storeMetric("clusterd_store_evictions_total", "Entries dropped by capacity bounds, by tier.", "counter", func(st store.Stats) int64 { return st.Evictions }),
		storeMetric("clusterd_store_errors_total", "I/O failures and corrupt blobs, by tier.", "counter", func(st store.Stats) int64 { return st.Errors }),
		storeMetric("clusterd_store_entries", "Stored blobs by tier.", "gauge", func(st store.Stats) int64 { return st.Entries }),
		storeMetric("clusterd_store_bytes", "Payload occupancy by tier.", "gauge", func(st store.Stats) int64 { return st.Bytes }),
		storeMetric("clusterd_store_shards", "Lock stripes by tier (0 = unstriped).", "gauge", func(st store.Stats) int64 { return st.Shards }),
		storeMetric("clusterd_store_shard_bytes_high_water", "Maximum occupancy any single shard reached, by tier.", "gauge", func(st store.Stats) int64 { return st.ShardBytesHighWater }),
	)

	var b strings.Builder
	for _, m := range metrics {
		m.render(&b)
	}
	histogramFamily{
		name:       "clusterd_http_request_seconds",
		help:       "HTTP request latency by route pattern and status code.",
		labelNames: []string{"route", "code"},
		series:     s.httpHist.Snapshot(),
	}.render(&b)
	if tr := s.eng.Tracer(); tr != nil {
		histogramFamily{
			name:       "clusterd_engine_stage_seconds",
			help:       "Engine per-stage span durations (queue, annotate, expand, execute, encode, store_put, store_get, cache_hit).",
			labelNames: []string{"stage"},
			series:     tr.StageSnapshots(),
		}.render(&b)
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	fmt.Fprint(w, b.String())
}
