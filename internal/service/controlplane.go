// The service side of the fleet control plane (protocol v3): key
// enumeration and validated result upload on every worker — the two
// halves of a drain migration or scale-up backfill — plus, when
// EnableCoordinator is called, the membership register behind
// GET/POST /v1/ring that N concurrent fleet runners converge through.
package service

import (
	"encoding/json"
	"io"
	"net/http"
	"net/url"
	"strconv"

	"clustersim/fleet/controlplane"
	"clustersim/internal/api"
	"clustersim/internal/engine"
	"clustersim/internal/store"
)

// maxUploadBytes bounds a PUT /v1/results body. Result blobs are a few
// KB of encoded metrics; anything near this bound is garbage.
const maxUploadBytes = 8 << 20

// keysDefaultLimit caps an unbounded GET /v1/keys page: a worker with a
// large disk store must not be asked to render its whole key set in one
// response. Clients page with ?cursor= regardless.
const keysDefaultLimit = 4096

// EnableCoordinator turns this server into the fleet's membership
// register: GET /v1/ring serves the current view and POST /v1/ring
// compare-and-swaps transitions against its epoch. The register starts
// empty (epoch 0); the first fleet runner to connect seeds the member
// list. Call before serving traffic.
func (s *Server) EnableCoordinator() {
	s.coordMu.Lock()
	s.coord = controlplane.NewMembership()
	s.coordMu.Unlock()
}

// handleKeys serves one page of the store's logical keys.
func (s *Server) handleKeys(w http.ResponseWriter, r *http.Request) {
	limit := keysDefaultLimit
	if q := r.URL.Query().Get("limit"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 {
			httpError(w, http.StatusBadRequest, api.CodeBadRequest, "malformed ?limit=%q", q)
			return
		}
		if n > 0 && n < limit {
			limit = n
		}
	}
	cursor, err := url.QueryUnescape(r.URL.Query().Get("cursor"))
	if err != nil {
		httpError(w, http.StatusBadRequest, api.CodeBadRequest, "malformed ?cursor=")
		return
	}
	keys, next, err := store.ListKeys(r.Context(), s.st, limit, cursor)
	if err == store.ErrNotListable {
		httpError(w, http.StatusNotImplemented, api.CodeUnsupported, "store does not support key enumeration")
		return
	}
	if err != nil {
		httpError(w, http.StatusInternalServerError, api.CodeInternal, "listing keys: %v", err)
		return
	}
	s.keyPages.Add(1)
	writeJSON(w, http.StatusOK, api.KeysResponse{Keys: keys, Next: next})
}

// handlePutResult accepts one encoded result blob under its logical key
// — how a drain warms a departing worker's successors and a backfill
// warms a newcomer. The blob must decode as a result (a store full of
// migrated garbage would poison every future cache hit), but is stored
// byte-identical to what was sent, so a migrated result serves exactly
// the bytes the original worker computed.
func (s *Server) handlePutResult(w http.ResponseWriter, r *http.Request) {
	key, err := url.QueryUnescape(r.URL.Query().Get("key"))
	if err != nil || key == "" {
		httpError(w, http.StatusBadRequest, api.CodeBadRequest, "missing or malformed ?key=")
		return
	}
	blob, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxUploadBytes))
	if err != nil {
		httpError(w, http.StatusBadRequest, api.CodeBadRequest, "reading body: %v", err)
		return
	}
	if _, err := engine.DecodeResult(blob); err != nil {
		httpError(w, http.StatusBadRequest, api.CodeBadRequest, "body is not an encoded result: %v", err)
		return
	}
	s.st.Put(key, blob)
	s.resultUploads.Add(1)
	w.WriteHeader(http.StatusNoContent)
}

// handleRingGet serves the coordinator's current membership view.
func (s *Server) handleRingGet(w http.ResponseWriter, r *http.Request) {
	s.coordMu.Lock()
	coord := s.coord
	s.coordMu.Unlock()
	if coord == nil {
		httpError(w, http.StatusNotFound, api.CodeUnsupported, "this server is not a coordinator (start clusterd with -coordinator)")
		return
	}
	writeJSON(w, http.StatusOK, coord.View())
}

// handleRingPost compare-and-swaps one membership transition. The epoch
// check and the transition are atomic under coordMu, so concurrent
// proposers serialize: exactly one wins each epoch, the rest get a 409
// epoch_conflict, re-sync, and usually find their goal already met.
func (s *Server) handleRingPost(w http.ResponseWriter, r *http.Request) {
	var tr api.RingTransition
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&tr); err != nil {
		httpError(w, http.StatusBadRequest, api.CodeBadRequest, "decoding transition: %v", err)
		return
	}
	if tr.URL == "" {
		httpError(w, http.StatusBadRequest, api.CodeBadRequest, "transition names no member url")
		return
	}
	s.coordMu.Lock()
	coord := s.coord
	if coord == nil {
		s.coordMu.Unlock()
		httpError(w, http.StatusNotFound, api.CodeUnsupported, "this server is not a coordinator (start clusterd with -coordinator)")
		return
	}
	if tr.BaseEpoch != coord.Epoch() {
		s.coordMu.Unlock()
		s.ringConflicts.Add(1)
		httpError(w, http.StatusConflict, api.CodeEpochConflict,
			"transition based on epoch %d, coordinator is at %d", tr.BaseEpoch, coord.Epoch())
		return
	}
	changed, err := coord.Transition(tr.Action, tr.URL, tr.Error)
	view := coord.View()
	s.coordMu.Unlock()
	if err != nil {
		httpError(w, http.StatusBadRequest, api.CodeBadRequest, "%v", err)
		return
	}
	if changed {
		s.ringTransitions.Add(1)
	}
	writeJSON(w, http.StatusOK, view)
}

// ringEpoch reports the coordinator's epoch (0 for plain workers).
func (s *Server) ringEpoch() int64 {
	s.coordMu.Lock()
	defer s.coordMu.Unlock()
	if s.coord == nil {
		return 0
	}
	return s.coord.Epoch()
}
