// Request-path observability: per-route latency histograms, the
// structured access/lifecycle log, and GET /v1/trace/{id}. The
// histogram vector is label-keyed by (route pattern, status code) —
// never by raw path, so cardinality is bounded by the route table —
// and the access log rides at Debug level so the serving hot path pays
// nothing when operators run at the default Info.
package service

import (
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"clustersim/internal/api"
	"clustersim/internal/obs"
)

// SetLogger installs the server's structured logger (access log at
// Debug, lifecycle events at Info). The default logger discards
// everything. Call before serving traffic.
func (s *Server) SetLogger(l *slog.Logger) {
	if l != nil {
		s.log = l
	}
}

// statusWriter records the response status (and body size) written
// through it. Flush passes through so the SSE path keeps streaming.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	n, err := sw.ResponseWriter.Write(p)
	sw.bytes += int64(n)
	return n, err
}

func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap exposes the underlying writer so http.ResponseController can
// reach per-connection controls (the SSE path sets per-frame write
// deadlines through it).
func (sw *statusWriter) Unwrap() http.ResponseWriter {
	return sw.ResponseWriter
}

// observed wraps a route's handler with latency observation and the
// access log. route is the registration pattern ("/v1/jobs/{id}"), so
// histogram cardinality is routes × status codes, independent of
// traffic shape. The duration covers the full handler — for SSE
// streams that is the subscription lifetime, which is the honest
// number for a streaming route.
func (s *Server) observed(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		h(sw, r)
		d := time.Since(start)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		s.httpHist.With(route, strconv.Itoa(sw.status)).Observe(d)
		if s.log.Enabled(r.Context(), slog.LevelDebug) {
			s.log.Debug("http",
				"method", r.Method, "route", route, "path", r.URL.Path,
				"code", sw.status, "bytes", sw.bytes, "dur_us", d.Microseconds())
		}
	}
}

// handleTrace serves GET /v1/trace/{id}: one completed job's span tree,
// as JSON by default or as a Chrome trace-event document (Perfetto-
// loadable) with ?format=chrome. In-flight jobs and evicted records
// answer not_found — poll after the job completes.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	tr := s.eng.Tracer()
	if tr == nil {
		httpError(w, http.StatusNotImplemented, api.CodeUnsupported,
			"tracing disabled on this server (start clusterd with tracing enabled)")
		return
	}
	id := r.PathValue("id")
	rec, ok := tr.Lookup(id)
	if !ok {
		httpError(w, http.StatusNotFound, api.CodeNotFound,
			"no completed trace %q (still running, evicted, or never submitted here)", id)
		return
	}
	if r.URL.Query().Get("format") == "chrome" {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		obs.WriteChromeFlight(w, rec)
		return
	}
	writeJSON(w, http.StatusOK, traceResponse(rec))
}

// traceResponse converts a flight record to its wire form.
func traceResponse(rec obs.FlightRecord) api.TraceResponse {
	resp := api.TraceResponse{
		ID:            rec.ID,
		Label:         rec.Label,
		Start:         rec.Start.UTC().Format(time.RFC3339Nano),
		TotalUs:       rec.Total.Microseconds(),
		UnaccountedUs: rec.Unaccounted().Microseconds(),
		Spans:         make([]api.TraceSpan, len(rec.Spans)),
	}
	for i, sp := range rec.Spans {
		resp.Spans[i] = api.TraceSpan{
			Name:    sp.Name,
			StartUs: sp.Start.Microseconds(),
			DurUs:   sp.Dur.Microseconds(),
		}
	}
	return resp
}

// routeHistograms converts the HTTP latency vector to wire form with
// status codes aggregated per route — the per-route view fleetctl top
// renders. The full (route, code) split stays on /metrics.
func (s *Server) routeHistograms() []api.LatencyHistogram {
	byRoute := map[string]api.LatencyHistogram{}
	order := []string{}
	for _, ls := range s.httpHist.Snapshot() {
		route := ls.Labels[0]
		h := api.LatencyHistogram{
			Route: route, Count: ls.Count, Sum: ls.Sum,
			Bounds: ls.Bounds, Counts: ls.Counts,
		}
		if prev, ok := byRoute[route]; ok {
			byRoute[route] = api.MergeLatency(prev, h)
		} else {
			byRoute[route] = h
			order = append(order, route)
		}
	}
	out := make([]api.LatencyHistogram, 0, len(order))
	for _, route := range order {
		out = append(out, byRoute[route])
	}
	return out
}

// stageHistograms converts the engine tracer's per-stage histograms to
// wire form (nil when tracing is disabled).
func (s *Server) stageHistograms() []api.LatencyHistogram {
	tr := s.eng.Tracer()
	if tr == nil {
		return nil
	}
	snaps := tr.StageSnapshots()
	out := make([]api.LatencyHistogram, len(snaps))
	for i, ls := range snaps {
		out[i] = api.LatencyHistogram{
			Stage: ls.Labels[0], Count: ls.Count, Sum: ls.Sum,
			Bounds: ls.Bounds, Counts: ls.Counts,
		}
	}
	return out
}
