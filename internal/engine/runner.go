// Runner is the execution seam of the system: everything above the engine
// (sim wrappers, the experiment harness, steerbench, examples) submits
// jobs through this interface, and everything below it decides *where*
// the simulation happens — in this process (*Engine) or on a clusterd
// fleet (client.Runner). Consumers written against Runner run unchanged
// on one core or across machines.
package engine

import (
	"context"

	"clustersim/internal/workload"
)

// Runner executes simulation jobs. Implementations must be safe for
// concurrent use; Run and Stream must honor context cancellation by
// returning Results with Err set rather than blocking forever.
//
// *Engine is the local implementation; package client provides a remote
// one that ships jobs to a clusterd instance as declarative JobSpecs.
type Runner interface {
	// Run executes one job and blocks until its result is available. A
	// canceled context yields a Result with Err set.
	Run(ctx context.Context, job Job) *Result
	// Stream submits the jobs and returns a channel yielding each result
	// as it completes (completion order, not submission order). The
	// channel is buffered to hold every result and closed once all jobs
	// finish, so consumers may stop reading early without leaking senders.
	Stream(ctx context.Context, jobs []Job) <-chan JobResult
	// Stats snapshots the runner's cache/execution counters. For remote
	// runners the counters cover work attributable to this runner, not
	// the server's lifetime.
	Stats() CacheStats
}

// RunMatrixOn fans every (simpoint × setup) pair through any Runner and
// returns results indexed as [simpoint][setup], matching the input order.
// It blocks until all jobs finish; on cancellation the remaining cells
// hold Results with Err set and the context's error is returned. This is
// the one matrix implementation — Engine.RunMatrix and the experiment
// harness both delegate here, so local and remote execution share the
// exact same fan-out.
func RunMatrixOn(ctx context.Context, r Runner, sps []*workload.Simpoint, setups []Setup, opt RunOptions) ([][]*Result, error) {
	jobs := make([]Job, 0, len(sps)*len(setups))
	for _, sp := range sps {
		for _, s := range setups {
			jobs = append(jobs, Job{Simpoint: sp, Setup: s, Opts: opt})
		}
	}
	results := make([][]*Result, len(sps))
	for i := range results {
		results[i] = make([]*Result, len(setups))
	}
	if len(setups) > 0 {
		for jr := range r.Stream(ctx, jobs) {
			results[jr.Index/len(setups)][jr.Index%len(setups)] = jr.Result
		}
	}
	return results, ctx.Err()
}

// Delta returns the counter changes from base to s — the per-invocation
// view of a shared runner's lifetime counters. Gauge-like fields
// (TraceBytes and its high-water mark) keep their current values: they
// describe occupancy, not activity.
func (s CacheStats) Delta(base CacheStats) CacheStats {
	return CacheStats{
		Simulations:            s.Simulations - base.Simulations,
		ResultHits:             s.ResultHits - base.ResultHits,
		ResultMisses:           s.ResultMisses - base.ResultMisses,
		TraceHits:              s.TraceHits - base.TraceHits,
		TraceMisses:            s.TraceMisses - base.TraceMisses,
		ProgramHits:            s.ProgramHits - base.ProgramHits,
		ProgramMisses:          s.ProgramMisses - base.ProgramMisses,
		StoreHits:              s.StoreHits - base.StoreHits,
		StoreMisses:            s.StoreMisses - base.StoreMisses,
		StoreErrors:            s.StoreErrors - base.StoreErrors,
		TraceBytes:             s.TraceBytes,
		TraceBytesHighWater:    s.TraceBytesHighWater,
		TraceRawBytes:          s.TraceRawBytes,
		TraceRawBytesHighWater: s.TraceRawBytesHighWater,
		CorePoolHits:           s.CorePoolHits - base.CorePoolHits,
		CorePoolMisses:         s.CorePoolMisses - base.CorePoolMisses,
		TraceUnpacks:           s.TraceUnpacks - base.TraceUnpacks,
		TraceSharedHits:        s.TraceSharedHits - base.TraceSharedHits,
		TraceUnpackedLive:      s.TraceUnpackedLive,
		InteractiveGrants:      s.InteractiveGrants - base.InteractiveGrants,
		BulkGrants:             s.BulkGrants - base.BulkGrants,
		DeadlineShed:           s.DeadlineShed - base.DeadlineShed,
	}
}

// Add returns the field-wise sum of two stat snapshots (a hybrid runner
// aggregating its remote and local halves). High-water marks don't sum
// meaningfully across runners; the larger one is kept.
func (s CacheStats) Add(other CacheStats) CacheStats {
	return CacheStats{
		Simulations:            s.Simulations + other.Simulations,
		ResultHits:             s.ResultHits + other.ResultHits,
		ResultMisses:           s.ResultMisses + other.ResultMisses,
		TraceHits:              s.TraceHits + other.TraceHits,
		TraceMisses:            s.TraceMisses + other.TraceMisses,
		ProgramHits:            s.ProgramHits + other.ProgramHits,
		ProgramMisses:          s.ProgramMisses + other.ProgramMisses,
		StoreHits:              s.StoreHits + other.StoreHits,
		StoreMisses:            s.StoreMisses + other.StoreMisses,
		StoreErrors:            s.StoreErrors + other.StoreErrors,
		TraceBytes:             s.TraceBytes + other.TraceBytes,
		TraceBytesHighWater:    max(s.TraceBytesHighWater, other.TraceBytesHighWater),
		TraceRawBytes:          s.TraceRawBytes + other.TraceRawBytes,
		TraceRawBytesHighWater: max(s.TraceRawBytesHighWater, other.TraceRawBytesHighWater),
		CorePoolHits:           s.CorePoolHits + other.CorePoolHits,
		CorePoolMisses:         s.CorePoolMisses + other.CorePoolMisses,
		TraceUnpacks:           s.TraceUnpacks + other.TraceUnpacks,
		TraceSharedHits:        s.TraceSharedHits + other.TraceSharedHits,
		TraceUnpackedLive:      s.TraceUnpackedLive + other.TraceUnpackedLive,
		InteractiveGrants:      s.InteractiveGrants + other.InteractiveGrants,
		BulkGrants:             s.BulkGrants + other.BulkGrants,
		DeadlineShed:           s.DeadlineShed + other.DeadlineShed,
	}
}
