package engine_test

import (
	"context"
	"sync"
	"testing"

	"clustersim/internal/engine"
	"clustersim/internal/steer"
	"clustersim/internal/trace"
	"clustersim/internal/workload"
)

// barrierPolicy steers like ModN but parks the run at its first steering
// decision until every participant has reached theirs. It pins N engine
// runs in flight simultaneously, so the test can assert how many of them
// actually decompressed the shared cached trace.
type barrierPolicy struct {
	steer.ModN
	gate *sync.WaitGroup
	held bool
}

func (p *barrierPolicy) Name() string { return "barrier" }

func (p *barrierPolicy) Steer(ctx steer.Context, u *trace.Uop) steer.Decision {
	if !p.held {
		p.held = true
		p.gate.Done()
		p.gate.Wait()
	}
	return p.ModN.Steer(ctx, u)
}

// TestConcurrentRunsShareOneDecompression: N concurrent engine runs over
// the same cached trace must perform exactly one decompression between
// them — the rest share the refcounted unpacked form — and the unpacked
// form must be released once the last run finishes. Run under -race in the
// engine-race CI lane, this also exercises the sharing path for data races.
func TestConcurrentRunsShareOneDecompression(t *testing.T) {
	const n = 4
	eng := engine.New(engine.Options{Parallelism: n})
	sp := workload.ByName("crafty")
	opts := engine.RunOptions{NumUops: 3000}

	// Warm the trace cache: this run expands and packs the trace; its
	// release drops the unpacked form, leaving a compressed-only entry.
	warm := eng.Run(context.Background(), engine.Job{
		Simpoint: sp,
		Setup:    engine.Setup{Label: "warm", NumClusters: 2, NewPolicy: func() steer.Policy { return &steer.ModN{} }},
		Opts:     opts,
	})
	if warm.Err != nil {
		t.Fatal(warm.Err)
	}
	base := eng.Stats()
	if base.TraceUnpacks != 0 {
		t.Fatalf("warm run decompressed (%d unpacks): computing caller should seed the shared form", base.TraceUnpacks)
	}
	if base.TraceUnpackedLive != 0 {
		t.Fatalf("unpacked form still live after warm run: %d", base.TraceUnpackedLive)
	}

	// N runs with distinct labels (distinct result keys, same trace key),
	// each blocking at its first steering decision until all have started —
	// so all N provably hold the shared trace at once.
	var gate sync.WaitGroup
	gate.Add(n)
	var wg sync.WaitGroup
	results := make([]*engine.Result, n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i] = eng.Run(context.Background(), engine.Job{
				Simpoint: sp,
				Setup: engine.Setup{
					Label:       "sf" + string(rune('0'+i)),
					NumClusters: 2,
					NewPolicy:   func() steer.Policy { return &barrierPolicy{gate: &gate} },
				},
				Opts: opts,
			})
		}()
	}
	wg.Wait()
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("run %d: %v", i, r.Err)
		}
	}

	d := eng.Stats().Delta(base)
	if d.TraceUnpacks != 1 {
		t.Errorf("TraceUnpacks = %d, want exactly 1 for %d concurrent hits", d.TraceUnpacks, n)
	}
	if d.TraceSharedHits != n-1 {
		t.Errorf("TraceSharedHits = %d, want %d", d.TraceSharedHits, n-1)
	}
	if d.TraceHits != n {
		t.Errorf("TraceHits = %d, want %d", d.TraceHits, n)
	}
	if live := eng.Stats().TraceUnpackedLive; live != 0 {
		t.Errorf("TraceUnpackedLive = %d after all runs finished, want 0", live)
	}
}

// TestSequentialHitsReleaseUnpackedForm: with no concurrency each cache
// hit decompresses afresh (nothing to share) and the unpacked form never
// outlives the run — the budgeted steady-state footprint stays compressed.
func TestSequentialHitsReleaseUnpackedForm(t *testing.T) {
	eng := engine.New(engine.Options{Parallelism: 1})
	sp := workload.ByName("swim")
	opts := engine.RunOptions{NumUops: 2000}
	for i := 0; i < 3; i++ {
		r := eng.Run(context.Background(), engine.Job{
			Simpoint: sp,
			Setup: engine.Setup{
				Label:       "seq" + string(rune('0'+i)),
				NumClusters: 2,
				NewPolicy:   func() steer.Policy { return &steer.ModN{} },
			},
			Opts: opts,
		})
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		if live := eng.Stats().TraceUnpackedLive; live != 0 {
			t.Fatalf("run %d: TraceUnpackedLive = %d, want 0 between runs", i, live)
		}
	}
	st := eng.Stats()
	if st.TraceUnpacks != 2 {
		t.Errorf("TraceUnpacks = %d, want 2 (two sequential hits, no sharing)", st.TraceUnpacks)
	}
	if st.TraceSharedHits != 0 {
		t.Errorf("TraceSharedHits = %d, want 0 without concurrency", st.TraceSharedHits)
	}
}
