package engine

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// flightCache is a content-keyed cache with single-flight semantics: the
// first caller of a key computes the value while concurrent callers of the
// same key block until the computation lands, so an artifact is never built
// twice. Completed entries are bounded by total cost — approximate bytes
// for traces, the dominant artifact — and evicted least-recently-used;
// in-flight entries are never evicted. maxCost <= 0 means unbounded; a nil
// costOf counts every entry as cost 1, making maxCost an entry bound.
type flightCache[V any] struct {
	mu      sync.Mutex
	entries map[string]*flightEntry[V]
	order   *list.List // completed keys, most recently used at back
	maxCost int64
	costOf  func(V) int64
	// auxOf, if set, tracks a second gauge alongside cost (e.g. the raw
	// byte size of entries whose cost is their compressed size). It never
	// influences eviction.
	auxOf func(V) int64

	cost          int64
	costHighWater int64
	aux           int64
	auxHighWater  int64

	hits, misses atomic.Int64
}

type flightEntry[V any] struct {
	done chan struct{}
	val  V
	cost int64
	aux  int64
	keep bool
	elem *list.Element
}

func newFlightCache[V any](maxCost int64, costOf func(V) int64) *flightCache[V] {
	return &flightCache[V]{
		entries: map[string]*flightEntry[V]{},
		order:   list.New(),
		maxCost: maxCost,
		costOf:  costOf,
	}
}

// get returns the value for key, computing it via fn on first use. The
// first boolean reports whether the value came from the cache (or from
// another caller's in-flight computation); the second reports that the
// wait was abandoned because abort fired first (the value is the zero V).
// A nil abort channel waits indefinitely. fn's second result reports
// whether the value should be retained — failed computations return false
// so they are retried on the next request; concurrent waiters of the same
// flight still receive the non-retained value. A panic in fn removes the
// in-flight entry and unblocks waiters before propagating, so the key is
// never poisoned.
func (c *flightCache[V]) get(abort <-chan struct{}, key string, fn func() (V, bool)) (val V, cached, aborted bool) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.mu.Unlock()
		select {
		case <-e.done:
		case <-abort:
			return val, false, true
		}
		if e.keep {
			// Joins of discarded flights (failed, canceled or panicked)
			// don't count as hits — the caller will recompute.
			c.hits.Add(1)
			c.touch(key, e)
		}
		return e.val, true, false
	}
	e := &flightEntry[V]{done: make(chan struct{})}
	c.entries[key] = e
	c.mu.Unlock()
	c.misses.Add(1)

	defer func() {
		c.mu.Lock()
		if !e.keep {
			delete(c.entries, key)
		} else {
			e.cost = 1
			if c.costOf != nil {
				e.cost = c.costOf(e.val)
			}
			if c.auxOf != nil {
				e.aux = c.auxOf(e.val)
			}
			e.elem = c.order.PushBack(key)
			c.cost += e.cost
			if c.cost > c.costHighWater {
				c.costHighWater = c.cost
			}
			c.aux += e.aux
			if c.aux > c.auxHighWater {
				c.auxHighWater = c.aux
			}
			// Evict oldest completed entries until back under budget; the
			// entry just published always survives (the cache must remain
			// useful even for a single artifact larger than the bound).
			for c.maxCost > 0 && c.cost > c.maxCost && c.order.Front() != e.elem {
				front := c.order.Front()
				victim := c.entries[front.Value.(string)]
				c.order.Remove(front)
				delete(c.entries, front.Value.(string))
				c.cost -= victim.cost
				c.aux -= victim.aux
			}
		}
		c.mu.Unlock()
		close(e.done)
	}()
	e.val, e.keep = fn()
	return e.val, false, false
}

// touch refreshes key's LRU position if it is still the cached entry.
func (c *flightCache[V]) touch(key string, e *flightEntry[V]) {
	c.mu.Lock()
	if cur, ok := c.entries[key]; ok && cur == e && e.elem != nil {
		c.order.MoveToBack(e.elem)
	}
	c.mu.Unlock()
}

// costStats snapshots the current and high-water cost.
func (c *flightCache[V]) costStats() (cost, highWater int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cost, c.costHighWater
}

// auxStats snapshots the current and high-water secondary gauge.
func (c *flightCache[V]) auxStats() (aux, highWater int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.aux, c.auxHighWater
}
