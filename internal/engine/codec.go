// Result and job serialization: the stable byte codec behind the
// persistent result store (internal/store) and the clusterd wire format.
// Every blob starts with a three-byte header — magic, schema version,
// payload kind — so a stale cache directory or a truncated file is
// rejected cleanly instead of being misread, followed by a gob stream.
// Gob encoding of the fixed wire structs is deterministic, so re-encoding
// a decoded blob reproduces it byte for byte (property-tested).
package engine

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"sync"

	"clustersim/internal/pipeline"
	"clustersim/internal/steer"
	"clustersim/internal/workload"
)

// encodeBufs pools the staging buffers behind EncodeResult/EncodeJobSpec:
// a serving tier persisting many results concurrently would otherwise pay
// a fresh growing buffer per encode. The encoded bytes are copied out to
// an exact-size slice before the buffer returns to the pool, so callers
// still own immutable blobs.
var encodeBufs = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// sealBuf copies a pooled buffer's contents into an exact-size blob and
// recycles the buffer.
func sealBuf(b *bytes.Buffer) []byte {
	out := make([]byte, b.Len())
	copy(out, b.Bytes())
	encodeBufs.Put(b)
	return out
}

const (
	// codecMagic brands every engine blob.
	codecMagic = 0xC5
	// CodecVersion is the serialization schema version. It is part of the
	// blob header and of every persistent store key, so blobs written by a
	// different schema are never misread — they decode to ErrCodecVersion
	// and their store keys don't even collide.
	CodecVersion = 1

	kindJob    = 1
	kindResult = 2
)

// ErrCodec is the base class of all decode failures.
var ErrCodec = errors.New("engine: undecodable blob")

// ErrCodecVersion marks a blob written by a different schema version.
var ErrCodecVersion = fmt.Errorf("%w: schema version mismatch", ErrCodec)

// wireSimpoint carries a simpoint's identity (not its program: programs
// are synthesized deterministically from the suite tables, and results
// are keyed by program content hash before they ever reach a store).
type wireSimpoint struct {
	Name   string
	Bench  string
	FP     bool
	Weight float64
	Seed   int64
}

// wireResult is the serialized form of a successful Result.
type wireResult struct {
	Simpoint   wireSimpoint
	Setup      string
	Metrics    *pipeline.Metrics
	Complexity steer.Complexity
}

// header frames a payload kind.
func header(kind byte) []byte { return []byte{codecMagic, CodecVersion, kind} }

// checkHeader validates a blob's frame and returns the gob payload.
func checkHeader(blob []byte, kind byte) ([]byte, error) {
	if len(blob) < 3 {
		return nil, fmt.Errorf("%w: %d-byte blob", ErrCodec, len(blob))
	}
	if blob[0] != codecMagic {
		return nil, fmt.Errorf("%w: bad magic %#x", ErrCodec, blob[0])
	}
	if blob[1] != CodecVersion {
		return nil, fmt.Errorf("%w: got version %d, want %d", ErrCodecVersion, blob[1], CodecVersion)
	}
	if blob[2] != kind {
		return nil, fmt.Errorf("%w: payload kind %d, want %d", ErrCodec, blob[2], kind)
	}
	return blob[3:], nil
}

// EncodeResult serializes a successful result. Failed or canceled results
// are not serializable — they must never reach a persistent store.
func EncodeResult(res *Result) ([]byte, error) {
	if res == nil || res.Err != nil {
		return nil, fmt.Errorf("engine: refusing to encode a failed result")
	}
	if res.Simpoint == nil {
		return nil, fmt.Errorf("engine: result has no simpoint")
	}
	b := encodeBufs.Get().(*bytes.Buffer)
	b.Reset()
	b.Write(header(kindResult))
	err := gob.NewEncoder(b).Encode(wireResult{
		Simpoint: wireSimpoint{
			Name: res.Simpoint.Name, Bench: res.Simpoint.Bench,
			FP: res.Simpoint.FP, Weight: res.Simpoint.Weight, Seed: res.Simpoint.Seed,
		},
		Setup:      res.Setup,
		Metrics:    res.Metrics,
		Complexity: res.Complexity,
	})
	if err != nil {
		encodeBufs.Put(b)
		return nil, fmt.Errorf("engine: encoding result: %w", err)
	}
	return sealBuf(b), nil
}

// DecodeResult deserializes a result blob. The returned result's Simpoint
// carries identity only (Name, Bench, FP, Weight, Seed) — its Program is
// nil, since the blob is addressed by program content already; the engine
// replaces it with the submitting job's simpoint before results surface.
func DecodeResult(blob []byte) (*Result, error) {
	payload, err := checkHeader(blob, kindResult)
	if err != nil {
		return nil, err
	}
	var w wireResult
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&w); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCodec, err)
	}
	if w.Metrics == nil {
		return nil, fmt.Errorf("%w: result without metrics", ErrCodec)
	}
	return &Result{
		Simpoint: &workload.Simpoint{
			Name: w.Simpoint.Name, Bench: w.Simpoint.Bench,
			FP: w.Simpoint.FP, Weight: w.Simpoint.Weight, Seed: w.Simpoint.Seed,
		},
		Setup:      w.Setup,
		Metrics:    w.Metrics,
		Complexity: w.Complexity,
	}, nil
}

// JobSpec is the declarative, serializable form of a Job: the wire format
// clusterd accepts and the shape a future remote-worker protocol ships.
// Setup closures (compiler passes, policy constructors) cannot cross a
// process boundary, so a spec names a suite simpoint and a setup kind;
// sim.JobFromSpec resolves it back to a runnable Job.
type JobSpec struct {
	// Simpoint is the suite point name ("gzip-1", "mcf").
	Simpoint string `json:"simpoint"`
	// Setup selects the steering configuration.
	Setup SetupSpec `json:"setup"`
	// Opts sizes the run.
	Opts OptionsSpec `json:"opts,omitempty"`
}

// SetupSpec names a steering configuration declaratively.
type SetupSpec struct {
	// Kind is one of "OP", "OP-nostall", "one-cluster", "OB", "RHOP",
	// "VC", "VC-comm".
	Kind string `json:"kind"`
	// NumClusters is the physical cluster count; zero means 2.
	NumClusters int `json:"clusters,omitempty"`
	// NumVC is the virtual cluster count for VC kinds; zero means
	// NumClusters.
	NumVC int `json:"num_vc,omitempty"`
	// RegionMaxOps caps the compiler region size; zero means unlimited.
	RegionMaxOps int `json:"region_max_ops,omitempty"`
	// MaxChainLen caps VC chain length; zero means the default.
	MaxChainLen int `json:"max_chain_len,omitempty"`
}

// OptionsSpec is the serializable subset of RunOptions (machine-tweak
// closures cannot travel).
type OptionsSpec struct {
	NumUops    int `json:"num_uops,omitempty"`
	WarmupUops int `json:"warmup_uops,omitempty"`
}

// RunOptions converts the spec into engine options.
func (o OptionsSpec) RunOptions() RunOptions {
	return RunOptions{NumUops: o.NumUops, WarmupUops: o.WarmupUops}
}

// EncodeJobSpec serializes a job spec with the codec header.
func EncodeJobSpec(spec JobSpec) ([]byte, error) {
	b := encodeBufs.Get().(*bytes.Buffer)
	b.Reset()
	b.Write(header(kindJob))
	if err := gob.NewEncoder(b).Encode(spec); err != nil {
		encodeBufs.Put(b)
		return nil, fmt.Errorf("engine: encoding job spec: %w", err)
	}
	return sealBuf(b), nil
}

// DecodeJobSpec deserializes a job spec blob.
func DecodeJobSpec(blob []byte) (JobSpec, error) {
	var spec JobSpec
	payload, err := checkHeader(blob, kindJob)
	if err != nil {
		return spec, err
	}
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&spec); err != nil {
		return JobSpec{}, fmt.Errorf("%w: %v", ErrCodec, err)
	}
	return spec, nil
}
