package engine_test

import (
	"bytes"
	"context"
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"clustersim/internal/engine"
	"clustersim/internal/pipeline"
	"clustersim/internal/prog"
	"clustersim/internal/sim"
	"clustersim/internal/workload"
)

func quickJob(name string, setup sim.Setup) engine.Job {
	return engine.Job{
		Simpoint: workload.ByName(name),
		Setup:    setup,
		Opts:     sim.RunOptions{NumUops: 4000},
	}
}

func encode(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// Cached engine results must be byte-identical to the uncached RunOne
// reference path.
func TestCachedResultByteIdenticalToUncached(t *testing.T) {
	job := quickJob("crafty", sim.SetupVC(2, 2))
	ref := sim.RunOne(job.Simpoint, job.Setup, job.Opts)
	if ref.Err != nil {
		t.Fatal(ref.Err)
	}

	eng := engine.New(engine.Options{Parallelism: 2})
	first := eng.Run(context.Background(), job)
	second := eng.Run(context.Background(), job)
	if first.Err != nil || second.Err != nil {
		t.Fatalf("errs: %v %v", first.Err, second.Err)
	}
	st := eng.Stats()
	if st.Simulations != 1 || st.ResultHits != 1 {
		t.Errorf("want exactly 1 simulation and 1 result hit, got %+v", st)
	}
	refBytes := encode(t, ref.Metrics)
	for i, r := range []*engine.Result{first, second} {
		if !bytes.Equal(encode(t, r.Metrics), refBytes) {
			t.Errorf("run %d: metrics differ from uncached reference", i)
		}
		if !reflect.DeepEqual(r.Complexity, ref.Complexity) {
			t.Errorf("run %d: complexity differs from uncached reference", i)
		}
	}
}

// A matrix must be deterministic across worker-pool widths.
func TestMatrixParallelism1vsN(t *testing.T) {
	sps := workload.QuickSuite()[:3]
	setups := []sim.Setup{sim.SetupOP(2), sim.SetupRHOP(2), sim.SetupVC(2, 2)}
	opt := sim.RunOptions{NumUops: 4000}

	seq, err := engine.New(engine.Options{Parallelism: 1}).
		RunMatrix(context.Background(), sps, setups, opt)
	if err != nil {
		t.Fatal(err)
	}
	par, err := engine.New(engine.Options{Parallelism: 8}).
		RunMatrix(context.Background(), sps, setups, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sps {
		for j := range setups {
			a, b := seq[i][j], par[i][j]
			if a.Err != nil || b.Err != nil {
				t.Fatalf("%d,%d: errs %v %v", i, j, a.Err, b.Err)
			}
			if !bytes.Equal(encode(t, a.Metrics), encode(t, b.Metrics)) {
				t.Errorf("%s/%s: parallelism changed the metrics", sps[i].Name, a.Setup)
			}
		}
	}
}

// Re-running the same matrix — even from a freshly rebuilt suite, which
// allocates new Program values — must not simulate anything twice.
func TestUniquePairSimulatedOnce(t *testing.T) {
	setups := []sim.Setup{sim.SetupOP(2), sim.SetupOB(2)}
	opt := sim.RunOptions{NumUops: 3000}
	eng := engine.New(engine.Options{Parallelism: 4})

	first := workload.QuickSuite()[:3]
	if _, err := eng.RunMatrix(context.Background(), first, setups, opt); err != nil {
		t.Fatal(err)
	}
	want := int64(len(first) * len(setups))
	if st := eng.Stats(); st.Simulations != want {
		t.Fatalf("first pass: %d simulations, want %d", st.Simulations, want)
	}

	rebuilt := workload.QuickSuite()[:3] // fresh Program pointers, same content
	res, err := eng.RunMatrix(context.Background(), rebuilt, setups, opt)
	if err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.Simulations != want {
		t.Errorf("second pass re-simulated: %d simulations, want %d", st.Simulations, want)
	}
	if st.ResultHits != want {
		t.Errorf("second pass: %d result hits, want %d", st.ResultHits, want)
	}
	for i, row := range res {
		for _, cell := range row {
			if cell.Simpoint != rebuilt[i] {
				t.Errorf("cached result must carry the caller's simpoint, not the original's")
			}
		}
	}
}

// Hardware-only policies share one clean expanded trace per simpoint.
func TestTraceSharedAcrossPolicies(t *testing.T) {
	sps := workload.QuickSuite()[:2]
	setups := []sim.Setup{sim.SetupOP(2), sim.SetupOneCluster(2), sim.SetupOPNoStall(2)}
	eng := engine.New(engine.Options{Parallelism: 2})
	if _, err := eng.RunMatrix(context.Background(), sps, setups, sim.RunOptions{NumUops: 3000}); err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.TraceMisses != int64(len(sps)) {
		t.Errorf("expanded %d traces, want %d (one clean trace per simpoint)",
			st.TraceMisses, len(sps))
	}
	if st.TraceHits != int64(len(sps)*(len(setups)-1)) {
		t.Errorf("trace hits = %d, want %d", st.TraceHits, len(sps)*(len(setups)-1))
	}
}

// A tweaked machine is only cacheable under an explicit TweakKey, and
// distinct keys never collide.
func TestMachineTweakCaching(t *testing.T) {
	tweak := func(cfg *pipeline.Config) { cfg.Cluster.IssueInt = 1 }
	job := quickJob("gzip-1", sim.SetupOP(2))
	job.Opts.MachineTweak = tweak

	eng := engine.New(engine.Options{Parallelism: 1})
	eng.Run(context.Background(), job)
	eng.Run(context.Background(), job)
	if st := eng.Stats(); st.Simulations != 2 || st.ResultHits != 0 {
		t.Errorf("un-keyed tweak must bypass the result cache: %+v", st)
	}

	job.Opts.TweakKey = "narrow-int"
	eng2 := engine.New(engine.Options{Parallelism: 1})
	keyed := eng2.Run(context.Background(), job)
	cached := eng2.Run(context.Background(), job)
	if st := eng2.Stats(); st.Simulations != 1 || st.ResultHits != 1 {
		t.Errorf("keyed tweak must cache: %+v", st)
	}
	if !bytes.Equal(encode(t, keyed.Metrics), encode(t, cached.Metrics)) {
		t.Error("keyed tweak: cached metrics differ")
	}

	// Same label, different tweak key: must re-simulate.
	job.Opts.TweakKey = "other"
	eng2.Run(context.Background(), job)
	if st := eng2.Stats(); st.Simulations != 2 {
		t.Errorf("distinct tweak keys must not collide: %+v", st)
	}
}

// Opaque Annotate closures have no content key and must bypass all caches.
func TestOpaqueAnnotateBypassesCache(t *testing.T) {
	setup := sim.SetupOP(2)
	setup.Label = "custom-op"
	setup.Annotate = func(p *prog.Program) {}
	eng := engine.New(engine.Options{Parallelism: 1})
	eng.Run(context.Background(), quickJob("crafty", setup))
	eng.Run(context.Background(), quickJob("crafty", setup))
	st := eng.Stats()
	if st.Simulations != 2 || st.ResultHits != 0 {
		t.Errorf("opaque pass must bypass the result cache: %+v", st)
	}
	if st.TraceHits != 0 || st.ProgramHits != 0 {
		t.Errorf("opaque pass must bypass artifact caches: %+v", st)
	}
}

func TestStreamDeliversEverything(t *testing.T) {
	jobs := []engine.Job{
		quickJob("crafty", sim.SetupOP(2)),
		quickJob("crafty", sim.SetupVC(2, 2)),
		quickJob("gzip-1", sim.SetupOP(2)),
		quickJob("gzip-1", sim.SetupOP(2)), // duplicate: served from cache
	}
	eng := engine.New(engine.Options{Parallelism: 2})
	seen := map[int]bool{}
	for jr := range eng.Stream(context.Background(), jobs) {
		if jr.Result == nil || jr.Result.Err != nil {
			t.Fatalf("job %d: %+v", jr.Index, jr.Result)
		}
		if seen[jr.Index] {
			t.Errorf("job %d delivered twice", jr.Index)
		}
		seen[jr.Index] = true
	}
	if len(seen) != len(jobs) {
		t.Errorf("delivered %d results, want %d", len(seen), len(jobs))
	}
	if st := eng.Stats(); st.Simulations != 3 {
		t.Errorf("duplicate job not deduped: %+v", st)
	}
}

// A consumer may abandon a Stream without draining it; the senders must
// not block forever (the channel is buffered for every result).
func TestStreamAbandonedConsumerDoesNotLeak(t *testing.T) {
	jobs := []engine.Job{
		quickJob("crafty", sim.SetupOP(2)),
		quickJob("gzip-1", sim.SetupOP(2)),
		quickJob("mcf", sim.SetupOP(2)),
	}
	eng := engine.New(engine.Options{Parallelism: 2})
	ch := eng.Stream(context.Background(), jobs)
	<-ch // take one result, then walk away without draining
	deadline := time.Now().Add(60 * time.Second)
	for eng.Stats().Simulations < int64(len(jobs)) {
		if time.Now().After(deadline) {
			t.Fatal("remaining stream jobs never completed")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The channel still closes once all senders have deposited.
	for range ch {
	}
}

func TestCancellationBeforeRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	eng := engine.New(engine.Options{Parallelism: 1})
	res := eng.Run(ctx, quickJob("crafty", sim.SetupOP(2)))
	if res.Err != context.Canceled {
		t.Errorf("err = %v, want context.Canceled", res.Err)
	}
	if st := eng.Stats(); st.Simulations != 0 {
		t.Errorf("canceled job still simulated: %+v", st)
	}
	// A canceled result must not poison the cache: a live context after
	// cancellation re-runs and succeeds.
	ok := eng.Run(context.Background(), quickJob("crafty", sim.SetupOP(2)))
	if ok.Err != nil {
		t.Errorf("post-cancel run failed: %v", ok.Err)
	}
}

// A waiter with a live context must not inherit a canceled result from
// another caller's in-flight computation of the same job.
func TestCanceledFlightDoesNotPoisonLiveWaiter(t *testing.T) {
	eng := engine.New(engine.Options{Parallelism: 2})
	job := quickJob("crafty", sim.SetupOP(2))
	job.Opts.NumUops = 60_000

	ctxA, cancelA := context.WithCancel(context.Background())
	aDone := make(chan struct{})
	go func() { defer close(aDone); eng.Run(ctxA, job) }()
	time.Sleep(20 * time.Millisecond) // let A start its flight
	bDone := make(chan *engine.Result, 1)
	go func() { bDone <- eng.Run(context.Background(), job) }()
	time.Sleep(10 * time.Millisecond)
	cancelA()
	<-aDone
	select {
	case res := <-bDone:
		if res.Err != nil {
			t.Errorf("live-context waiter got %v; want a successful re-run", res.Err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("live-context waiter never returned")
	}
}

// A waiter whose own context is canceled while blocked on another
// caller's in-flight computation must return promptly with its ctx error.
func TestWaiterCancellationWhileFlightInProgress(t *testing.T) {
	eng := engine.New(engine.Options{Parallelism: 2})
	job := quickJob("mcf", sim.SetupVC(2, 2))
	job.Opts.NumUops = 200_000

	aDone := make(chan struct{})
	go func() { defer close(aDone); eng.Run(context.Background(), job) }()
	time.Sleep(30 * time.Millisecond) // let A's flight start
	ctxB, cancelB := context.WithCancel(context.Background())
	bDone := make(chan *engine.Result, 1)
	go func() { bDone <- eng.Run(ctxB, job) }()
	time.Sleep(10 * time.Millisecond)
	start := time.Now()
	cancelB()
	select {
	case res := <-bDone:
		if res.Err == nil {
			t.Log("B finished before cancellation (fast machine); nothing to assert")
		} else if wait := time.Since(start); wait > 5*time.Second {
			t.Errorf("canceled waiter took %v to return", wait)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("canceled waiter never returned")
	}
	<-aDone
}

// Setups sharing a label but carrying different pass parameters must not
// alias in the result cache.
func TestLabelCollisionDifferentPassDoesNotAlias(t *testing.T) {
	a := sim.SetupVC(2, 2)
	b := sim.SetupVCChain(2, 2, 8)
	b.Label = a.Label // simulate a user label collision
	eng := engine.New(engine.Options{Parallelism: 1})
	opts := sim.RunOptions{NumUops: 3000}
	sp := workload.ByName("crafty")
	eng.Run(context.Background(), engine.Job{Simpoint: sp, Setup: a, Opts: opts})
	eng.Run(context.Background(), engine.Job{Simpoint: sp, Setup: b, Opts: opts})
	if st := eng.Stats(); st.Simulations != 2 || st.ResultHits != 0 {
		t.Errorf("label collision aliased different passes: %+v", st)
	}
}

// Two different programs sharing name, seed and shape must not alias in
// the caches: the fingerprint hashes content, not just structure.
func TestDistinctProgramsDoNotAlias(t *testing.T) {
	base := workload.ByName("crafty")
	variant := &workload.Simpoint{
		Name: base.Name, Bench: base.Bench, Weight: base.Weight,
		Program: base.Program.Clone(), Seed: base.Seed,
	}
	// Flip one op's branch bias: same block/op counts, different behavior.
	mutated := false
	for _, b := range variant.Program.Blocks {
		for i := range b.Ops {
			if b.Ops[i].TakenProb > 0 && !mutated {
				b.Ops[i].TakenProb = 1 - b.Ops[i].TakenProb
				mutated = true
			}
		}
	}
	if !mutated {
		t.Fatal("no branch op found to mutate")
	}
	eng := engine.New(engine.Options{Parallelism: 1})
	opts := sim.RunOptions{NumUops: 3000}
	a := eng.Run(context.Background(), engine.Job{Simpoint: base, Setup: sim.SetupOP(2), Opts: opts})
	b := eng.Run(context.Background(), engine.Job{Simpoint: variant, Setup: sim.SetupOP(2), Opts: opts})
	if a.Err != nil || b.Err != nil {
		t.Fatalf("errs: %v %v", a.Err, b.Err)
	}
	if st := eng.Stats(); st.Simulations != 2 || st.ResultHits != 0 {
		t.Errorf("distinct programs aliased in the cache: %+v", st)
	}
}

func TestCancellationMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	job := quickJob("mcf", sim.SetupVC(2, 2))
	job.Opts.NumUops = 500_000 // long enough to be mid-flight when canceled
	eng := engine.New(engine.Options{Parallelism: 1})

	done := make(chan *engine.Result, 1)
	start := time.Now()
	go func() { done <- eng.Run(ctx, job) }()
	time.Sleep(30 * time.Millisecond)
	cancel()
	select {
	case res := <-done:
		if res.Err == nil {
			t.Log("run finished before cancellation took effect (slow machine?)")
		} else if res.Metrics != nil && res.Metrics.Uops >= int64(job.Opts.NumUops) {
			t.Error("canceled run claims full completion")
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("cancellation did not unblock the run (waited %v)", time.Since(start))
	}
}
