package engine_test

import (
	"bytes"
	"context"
	"testing"

	"clustersim/internal/engine"
	"clustersim/internal/sim"
	"clustersim/internal/workload"
)

// A simulation over a decompressed cache hit must be byte-identical to one
// over the freshly expanded trace: OP and one-cluster share the clean
// (pass-less) annotated program, so the second setup's trace comes out of
// the compressed tier.
func TestCompressedTraceHitByteIdentical(t *testing.T) {
	sp := workload.ByName("crafty")
	opts := sim.RunOptions{NumUops: 4000}

	refOP := sim.RunOne(sp, sim.SetupOP(2), opts)
	refOne := sim.RunOne(sp, sim.SetupOneCluster(2), opts)
	if refOP.Err != nil || refOne.Err != nil {
		t.Fatalf("reference runs: %v %v", refOP.Err, refOne.Err)
	}

	eng := engine.New(engine.Options{Parallelism: 1})
	gotOP := eng.Run(context.Background(), engine.Job{Simpoint: sp, Setup: sim.SetupOP(2), Opts: opts})
	gotOne := eng.Run(context.Background(), engine.Job{Simpoint: sp, Setup: sim.SetupOneCluster(2), Opts: opts})
	if gotOP.Err != nil || gotOne.Err != nil {
		t.Fatalf("engine runs: %v %v", gotOP.Err, gotOne.Err)
	}

	st := eng.Stats()
	if st.TraceHits != 1 {
		t.Fatalf("trace hits = %d, want 1 (second setup must reuse the clean trace)", st.TraceHits)
	}
	if !bytes.Equal(encode(t, gotOP.Metrics), encode(t, refOP.Metrics)) {
		t.Error("OP metrics differ from uncached reference")
	}
	if !bytes.Equal(encode(t, gotOne.Metrics), encode(t, refOne.Metrics)) {
		t.Error("one-cluster metrics (simulated over a decompressed trace) differ from uncached reference")
	}
}

// The trace cache must account compressed bytes (the figure the budget
// bounds) and expose the raw size so the compression ratio is observable.
func TestTraceCacheCompressionStats(t *testing.T) {
	eng := engine.New(engine.Options{Parallelism: 1})
	res := eng.Run(context.Background(), quickJob("swim", sim.SetupOP(2)))
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	st := eng.Stats()
	if st.TraceBytes <= 0 || st.TraceRawBytes <= 0 {
		t.Fatalf("expected nonzero trace cache occupancy, got %d gz / %d raw", st.TraceBytes, st.TraceRawBytes)
	}
	if st.TraceBytes >= st.TraceRawBytes {
		t.Errorf("compressed %d bytes not smaller than raw %d bytes", st.TraceBytes, st.TraceRawBytes)
	}
	if r := st.TraceCompressionRatio(); r <= 1 {
		t.Errorf("compression ratio %.2f, want > 1", r)
	}
	if st.TraceBytesHighWater < st.TraceBytes || st.TraceRawBytesHighWater < st.TraceRawBytes {
		t.Errorf("high-water marks below current occupancy: %+v", st)
	}
}

// A tiny TraceCacheBytes budget must bound the *compressed* footprint:
// filling the cache with more traces than fit evicts, and current
// occupancy stays at or under the budget once over it.
func TestTraceCacheBoundsCompressedBytes(t *testing.T) {
	const budget = 8 << 10 // far smaller than a few 4000-uop traces
	eng := engine.New(engine.Options{Parallelism: 1, TraceCacheBytes: budget})
	for _, name := range []string{"crafty", "swim", "mcf", "gzip-1"} {
		res := eng.Run(context.Background(), quickJob(name, sim.SetupOP(2)))
		if res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	st := eng.Stats()
	if st.TraceMisses != 4 {
		t.Fatalf("trace misses = %d, want 4 distinct expansions", st.TraceMisses)
	}
	if st.TraceBytesHighWater <= 0 {
		t.Fatal("no trace bytes accounted")
	}
	// Four distinct traces against a budget smaller than any one of them:
	// every publication evicts its predecessors (only the newest entry may
	// stand over budget), so current occupancy must sit strictly below the
	// high-water mark and hold at most one trace.
	if st.TraceBytes >= st.TraceBytesHighWater {
		t.Errorf("occupancy %d never dropped below high water %d; eviction didn't run",
			st.TraceBytes, st.TraceBytesHighWater)
	}
	if st.TraceRawBytes >= st.TraceRawBytesHighWater {
		t.Errorf("raw gauge %d not reduced by eviction (high water %d)",
			st.TraceRawBytes, st.TraceRawBytesHighWater)
	}
}
