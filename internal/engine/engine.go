// Package engine is the shared simulation substrate every run path —
// sim.RunOne/RunMatrix, the experiment harness and cmd/steerbench — submits
// jobs to. It owns a cancellable worker pool with progress reporting, and
// three content-keyed caches for the expensive intermediate artifacts of a
// run: annotated program clones (keyed by simpoint + compiler-pass
// signature), expanded dynamic traces (keyed by annotated program + trace
// length + seed) and whole Results (keyed by simpoint + configuration +
// run options). One engine shared across experiments therefore simulates
// each unique (simpoint, setup, options) combination exactly once per
// process, and re-annotates/re-expands nothing.
//
// All cached artifacts are immutable after publication: compiler passes
// annotate a private clone before it enters the cache, and the pipeline
// only reads from programs and traces, so concurrent runs can share them.
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"clustersim/internal/obs"
	"clustersim/internal/partition"
	"clustersim/internal/pipeline"
	"clustersim/internal/prog"
	"clustersim/internal/steer"
	"clustersim/internal/store"
	"clustersim/internal/trace"
	"clustersim/internal/workload"
)

// Pass declares a compiler steering pass so the engine can both execute it
// and cache its output. Unlike an opaque closure, the declarative form
// gives the engine a content key, and lets it derive the pass options from
// the machine configuration actually being run (issue widths, link
// latency), so 4-cluster and MachineTweak-ed runs see consistent options.
type Pass struct {
	// Kind identifies the algorithm in cache keys ("OB", "RHOP", "VC").
	// Two passes with equal Kind and equal options must produce identical
	// annotations.
	Kind string
	// NumTargets is the cluster count the pass partitions for (virtual
	// clusters for VC, physical for the software-only schemes).
	NumTargets int
	// RegionMaxOps caps compiler region size; zero means the default.
	RegionMaxOps int
	// MaxChainLen caps VC chain length; zero means the default.
	MaxChainLen int
	// Run executes the pass over the (cloned) program.
	Run func(*prog.Program, partition.Options)
}

// options derives the pass options from the machine configuration being
// run: issue widths and communication cost come from the live config, not
// from a hardcoded default machine.
func (ps *Pass) options(cfg *pipeline.Config) partition.Options {
	return partition.Options{
		NumVC:        ps.NumTargets,
		NumClusters:  ps.NumTargets,
		IssueInt:     cfg.Cluster.IssueInt,
		IssueFP:      cfg.Cluster.IssueFP,
		CommLatency:  cfg.Net.Latency + 1, // link latency + copy issue slot
		MaxChainLen:  ps.MaxChainLen,
		RegionMaxOps: ps.RegionMaxOps,
	}
}

// key is the cache signature of the pass under a machine configuration.
func (ps *Pass) key(cfg *pipeline.Config) string {
	o := ps.options(cfg)
	return fmt.Sprintf("%s|vc%d|ii%d|if%d|cl%d|ch%d|rg%d",
		ps.Kind, o.NumVC, o.IssueInt, o.IssueFP, o.CommLatency, o.MaxChainLen, o.RegionMaxOps)
}

// Setup is one steering configuration: how programs are annotated at
// compile time and which runtime policy steers.
type Setup struct {
	// Label is the configuration name used in reports ("OP", "VC(2->4)").
	// For a given NumClusters the label must uniquely identify the
	// configuration — it participates in the engine's result-cache key.
	Label string
	// NumClusters is the physical cluster count of the machine.
	NumClusters int
	// Pass is the compiler pass; nil for hardware-only configurations.
	Pass *Pass
	// Spec, when non-nil, is the declarative wire form this setup was (or
	// could have been) built from. It is what lets a job cross a process
	// boundary: SpecFromJob requires it, and the sim.Setup* constructors
	// all populate it. Setups hand-built around custom closures leave it
	// nil and stay local-only. Spec never participates in cache keys.
	Spec *SetupSpec
	// Annotate optionally runs an opaque compiler pass over the (cloned)
	// program. It exists for custom user passes; because the engine cannot
	// key its output, setups using it bypass every cache.
	Annotate func(*prog.Program)
	// NewPolicy builds a fresh runtime policy instance per run.
	NewPolicy func() steer.Policy
}

// RunOptions sizes one simulation.
type RunOptions struct {
	// NumUops is the dynamic trace length per simpoint. Zero means 120000.
	NumUops int
	// WarmupUops excludes the first N committed micro-ops from the
	// metrics (cache/predictor warmup).
	WarmupUops int
	// MachineTweak optionally mutates the machine config (ablations).
	MachineTweak func(*pipeline.Config)
	// TweakKey uniquely identifies MachineTweak's effect for caching.
	// Runs with a MachineTweak but no TweakKey are never result-cached.
	TweakKey string
}

func (o RunOptions) withDefaults() RunOptions {
	if o.NumUops == 0 {
		o.NumUops = 120_000
	}
	return o
}

// Result is the outcome of one (simpoint, setup) run.
type Result struct {
	// Simpoint identifies the workload.
	Simpoint *workload.Simpoint
	// Setup is the configuration label.
	Setup string
	// Metrics are the pipeline metrics. Cached results share one Metrics
	// value across callers; treat it as read-only.
	Metrics *pipeline.Metrics
	// Complexity is the steering-logic accounting.
	Complexity steer.Complexity
	// Err is non-nil if the run failed or was canceled.
	Err error
}

// Job is one unit of work: simulate one simpoint under one setup.
type Job struct {
	Simpoint *workload.Simpoint
	Setup    Setup
	Opts     RunOptions
}

// JobResult pairs a streamed result with the job that produced it.
type JobResult struct {
	// Index is the job's position in the submitted slice.
	Index  int
	Job    Job
	Result *Result
}

// Options configures an engine.
type Options struct {
	// Parallelism bounds concurrently executing simulations; ≤ 0 means
	// GOMAXPROCS. Cache hits are served without occupying a worker slot.
	Parallelism int
	// TraceCacheBytes bounds the expanded-trace cache by payload bytes.
	// Traces are stored gzip-compressed (they are the largest cached
	// artifact, and dynamic uop streams compress severalfold), so the
	// bound governs the compressed footprint — the bytes actually held in
	// memory. Zero means 256 MiB; negative means unbounded.
	TraceCacheBytes int64
	// ResultStore, if set, persists whole results behind the in-memory
	// result cache: misses consult the store before simulating, and every
	// newly computed cacheable result is encoded and written through, so
	// a later engine — or a later process, with a disk-backed store —
	// skips the work entirely. Blobs are framed by the codec's schema
	// version; stale or corrupt entries read as misses.
	ResultStore store.Store
	// DisableCache turns every cache off (each job re-annotates,
	// re-expands and re-simulates from scratch), including ResultStore.
	DisableCache bool
	// Progress, if set, is called after every finished job with the
	// engine-lifetime completed and submitted job counts and the finished
	// job's "simpoint/setup" label. It may be called concurrently.
	Progress func(done, total int, label string)
	// Tracer, if set, records a per-stage span trace (queue wait,
	// annotate, expand, execute, encode, store put/get, cache-hit
	// short-circuits) for every job into a bounded ring of flight
	// records, queryable by trace ID. Nil disables tracing at zero cost:
	// every recording site is a nil-flight no-op.
	Tracer *obs.Tracer
}

// Engine is a caching, streaming simulation engine — the local Runner
// implementation. One engine may be shared by any number of concurrent
// submitters; all methods are safe for concurrent use.
type Engine struct {
	opts Options
	// sched grants worker slots weighted-fair across priority lanes
	// (see Lane); under contention interactive jobs overtake a bulk
	// backlog instead of draining FIFO behind it.
	sched *scheduler

	progs *flightCache[*prog.Program]
	// traces holds expanded dynamic traces gzip-compressed (see
	// tracecache.go); TraceCacheBytes budgets the compressed footprint.
	traces  *flightCache[packedTrace]
	results *flightCache[*Result]

	// fps memoizes program content hashes per *prog.Program (programs are
	// immutable once submitted); lifetime is tied to the engine like the
	// artifact caches.
	fps sync.Map

	// cores pools idle pipeline cores keyed by their config Shape, bounded
	// per shape at Parallelism (more can never be in use at once). A sweep
	// of same-shaped jobs reuses a handful of cores via Reset instead of
	// constructing one per job. Disabled together with the caches.
	coresMu sync.Mutex
	cores   map[pipeline.Config][]*pipeline.Core

	simulations                         atomic.Int64
	submitted, completed                atomic.Int64
	storeHits, storeMisses, storeErrors atomic.Int64
	corePoolHits, corePoolMisses        atomic.Int64
	traceUnpacks, traceSharedHits       atomic.Int64
	traceUnpackedLive                   atomic.Int64
	deadlineShed                        atomic.Int64
}

// CacheStats is a snapshot of the engine's cache counters.
type CacheStats struct {
	// Simulations counts actual pipeline executions (cache misses).
	Simulations int64
	// ResultHits/ResultMisses count whole-result cache lookups.
	ResultHits, ResultMisses int64
	// TraceHits/TraceMisses count expanded-trace cache lookups.
	TraceHits, TraceMisses int64
	// ProgramHits/ProgramMisses count annotated-program cache lookups.
	ProgramHits, ProgramMisses int64
	// StoreHits/StoreMisses count persistent result-store lookups (only
	// performed on in-memory result-cache misses); StoreErrors counts
	// blobs that failed to decode or encode.
	StoreHits, StoreMisses, StoreErrors int64
	// TraceBytes and TraceBytesHighWater track the expanded-trace cache's
	// compressed payload occupancy (current and maximum observed) — the
	// figure TraceCacheBytes bounds.
	TraceBytes, TraceBytesHighWater int64
	// TraceRawBytes and TraceRawBytesHighWater track the same entries'
	// pre-compression size: TraceRawBytes/TraceBytes is the trace cache's
	// live compression ratio.
	TraceRawBytes, TraceRawBytesHighWater int64
	// CorePoolHits counts simulations served by a pooled, Reset core;
	// CorePoolMisses counts fresh core constructions on the cached path.
	CorePoolHits, CorePoolMisses int64
	// TraceUnpacks counts actual decompressions of cached traces;
	// TraceSharedHits counts trace-cache hits that instead shared an
	// already-unpacked trace with a concurrent user.
	TraceUnpacks, TraceSharedHits int64
	// TraceUnpackedLive gauges cached traces currently held in unpacked
	// form by running simulations (each returns to compressed-only when
	// its last user finishes).
	TraceUnpackedLive int64
	// InteractiveGrants/BulkGrants count worker-slot acquisitions per
	// scheduling lane (see Lane); their ratio under sustained contention
	// approaches the configured lane weights.
	InteractiveGrants, BulkGrants int64
	// DeadlineShed counts jobs dropped because their deadline had
	// already expired when they would have started executing — shed
	// work, not failed work.
	DeadlineShed int64
}

// TraceCompressionRatio returns raw/compressed for the currently cached
// traces, or 0 when the cache is empty.
func (s CacheStats) TraceCompressionRatio() float64 {
	if s.TraceBytes <= 0 {
		return 0
	}
	return float64(s.TraceRawBytes) / float64(s.TraceBytes)
}

// New builds an engine.
func New(opts Options) *Engine {
	if opts.Parallelism <= 0 {
		opts.Parallelism = runtime.GOMAXPROCS(0)
	}
	if opts.TraceCacheBytes == 0 {
		opts.TraceCacheBytes = 256 << 20
	}
	if opts.TraceCacheBytes < 0 {
		opts.TraceCacheBytes = 0 // unbounded
	}
	traces := newFlightCache[packedTrace](opts.TraceCacheBytes, packedTraceBytes)
	traces.auxOf = packedTraceRawBytes
	return &Engine{
		opts:    opts,
		sched:   newScheduler(opts.Parallelism),
		progs:   newFlightCache[*prog.Program](0, nil),
		traces:  traces,
		results: newFlightCache[*Result](0, nil),
		cores:   make(map[pipeline.Config][]*pipeline.Core),
	}
}

// Parallelism reports the engine's worker-pool size (the resolved value,
// never zero). Services use it to clamp per-request parallelism hints.
func (e *Engine) Parallelism() int { return e.opts.Parallelism }

// Tracer returns the engine's flight tracer (nil when tracing is
// disabled). Services use it to serve GET /v1/trace/{id} and the
// per-stage histogram families.
func (e *Engine) Tracer() *obs.Tracer { return e.opts.Tracer }

// Stats snapshots the cache counters.
func (e *Engine) Stats() CacheStats {
	traceBytes, traceHigh := e.traces.costStats()
	traceRaw, traceRawHigh := e.traces.auxStats()
	s := CacheStats{
		Simulations:            e.simulations.Load(),
		ResultHits:             e.results.hits.Load(),
		ResultMisses:           e.results.misses.Load(),
		TraceHits:              e.traces.hits.Load(),
		TraceMisses:            e.traces.misses.Load(),
		ProgramHits:            e.progs.hits.Load(),
		ProgramMisses:          e.progs.misses.Load(),
		StoreHits:              e.storeHits.Load(),
		StoreMisses:            e.storeMisses.Load(),
		StoreErrors:            e.storeErrors.Load(),
		TraceBytes:             traceBytes,
		TraceBytesHighWater:    traceHigh,
		TraceRawBytes:          traceRaw,
		TraceRawBytesHighWater: traceRawHigh,
		CorePoolHits:           e.corePoolHits.Load(),
		CorePoolMisses:         e.corePoolMisses.Load(),
		TraceUnpacks:           e.traceUnpacks.Load(),
		TraceSharedHits:        e.traceSharedHits.Load(),
		TraceUnpackedLive:      e.traceUnpackedLive.Load(),
		DeadlineShed:           e.deadlineShed.Load(),
	}
	s.InteractiveGrants, s.BulkGrants = e.sched.laneGrants()
	return s
}

// Execute runs one job from scratch with no caching and no shared pool —
// the plain sim.RunOne path, and the reference the engine's cached results
// are tested against.
func Execute(ctx context.Context, job Job) *Result {
	return New(Options{Parallelism: 1, DisableCache: true}).Run(ctx, job)
}

// Run executes one job, serving it from the result cache when possible,
// and blocks until the result is available. A canceled context yields a
// Result with Err set to the context's error; canceled or failed runs are
// never cached.
func (e *Engine) Run(ctx context.Context, job Job) *Result {
	job.Opts = job.Opts.withDefaults()
	e.submitted.Add(1)
	// One flight per submission, even for cache hits: the flight's span
	// set is what distinguishes a computed result (execute span) from a
	// served one (cache_hit / store_get spans). The trace ID rides in on
	// the context; End publishes the record for /v1/trace/{id}.
	fl := e.opts.Tracer.StartFlight(ctx, job.Simpoint.Name+"/"+job.Setup.Label)
	res := e.run(ctx, job, fl)
	fl.End()
	done := e.completed.Add(1)
	if e.opts.Progress != nil {
		e.opts.Progress(int(done), int(e.submitted.Load()),
			job.Simpoint.Name+"/"+job.Setup.Label)
	}
	return res
}

// RunMatrix runs every (simpoint × setup) pair and returns results indexed
// as [simpoint][setup], matching the input order. It blocks until all jobs
// finish; on cancellation the remaining cells hold Results with Err set
// and the context's error is returned.
func (e *Engine) RunMatrix(ctx context.Context, sps []*workload.Simpoint, setups []Setup, opt RunOptions) ([][]*Result, error) {
	return RunMatrixOn(ctx, e, sps, setups, opt)
}

// Stream submits the jobs and returns a channel that yields each result as
// it completes (in completion order, not submission order). The channel is
// buffered to hold every result and is closed once all jobs finish, so a
// consumer may stop reading early without leaking the senders (cancel the
// context to also stop the remaining work).
func (e *Engine) Stream(ctx context.Context, jobs []Job) <-chan JobResult {
	out := make(chan JobResult, len(jobs))
	go func() {
		defer close(out)
		var wg sync.WaitGroup
		for i := range jobs {
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				out <- JobResult{Index: i, Job: jobs[i], Result: e.Run(ctx, jobs[i])}
			}()
		}
		wg.Wait()
	}()
	return out
}

// fingerprint identifies a simpoint's program content across suite
// reconstructions (workload.Suite synthesizes fresh Program values per
// call, deterministically, so name + seed + content hash is a stable key
// that also keeps distinct custom programs from aliasing). The hash is
// memoized per Program value so resubmissions skip the full-program walk.
func (e *Engine) fingerprint(sp *workload.Simpoint) string {
	h, ok := e.fps.Load(sp.Program)
	if !ok {
		h, _ = e.fps.LoadOrStore(sp.Program, sp.Program.Fingerprint())
	}
	return fmt.Sprintf("%s|s%d|h%016x", sp.Name, sp.Seed, h.(uint64))
}

// resultKey returns the whole-result cache key, and whether the job is
// cacheable at all: opaque Annotate closures and un-keyed MachineTweaks
// have no content signature, so such jobs always execute.
func (e *Engine) resultKey(job Job) (string, bool) {
	if job.Setup.Annotate != nil {
		return "", false
	}
	if job.Opts.MachineTweak != nil && job.Opts.TweakKey == "" {
		return "", false
	}
	// The pass's static signature is folded in so label collisions between
	// setups with different compiler passes cannot alias; its machine-
	// derived options are covered by the TweakKey requirement above.
	pass := ""
	if ps := job.Setup.Pass; ps != nil {
		pass = fmt.Sprintf("%s/%d/%d/%d", ps.Kind, ps.NumTargets, ps.RegionMaxOps, ps.MaxChainLen)
	}
	return fmt.Sprintf("%s|%s|p%s|c%d|u%d|w%d|t%s",
		e.fingerprint(job.Simpoint), job.Setup.Label, pass, job.Setup.NumClusters,
		job.Opts.NumUops, job.Opts.WarmupUops, job.Opts.TweakKey), true
}

// storeKey namespaces a result-cache key for a persistent store: the
// codec schema version is folded in so that blobs written by an older
// codec never even key-collide with the current one.
func storeKey(key string) string {
	return fmt.Sprintf("result|v%d|%s", CodecVersion, key)
}

// ResultKey returns the persistent-store key a job's result is (or would
// be) stored under, and whether the job is cacheable at all. Services use
// it to hand clients a fetch address at submission time.
func (e *Engine) ResultKey(job Job) (string, bool) {
	job.Opts = job.Opts.withDefaults()
	key, ok := e.resultKey(job)
	if !ok {
		return "", false
	}
	return storeKey(key), true
}

// storedResult serves a result-cache miss from the persistent store, if
// one is configured and holds a decodable blob for the key. The decoded
// result carries identity-only simpoint data, so the submitting job's
// simpoint is attached before the result enters the in-memory cache.
func (e *Engine) storedResult(key string, job Job, fl *obs.Flight) *Result {
	if e.opts.ResultStore == nil {
		return nil
	}
	t0 := fl.Begin()
	blob, ok := e.opts.ResultStore.Get(storeKey(key))
	if !ok {
		e.storeMisses.Add(1)
		return nil
	}
	res, err := DecodeResult(blob)
	if err != nil {
		// Stale schema or corrupt blob: treat as a miss and re-simulate;
		// the re-Put after the run overwrites the bad record, healing the
		// slot for future processes.
		e.storeErrors.Add(1)
		e.storeMisses.Add(1)
		return nil
	}
	fl.Span("store_get", t0)
	e.storeHits.Add(1)
	res.Simpoint = job.Simpoint
	return res
}

// persistResult writes a freshly computed result through to the
// persistent store, best-effort.
func (e *Engine) persistResult(key string, res *Result, fl *obs.Flight) {
	if e.opts.ResultStore == nil {
		return
	}
	t0 := fl.Begin()
	blob, err := EncodeResult(res)
	if err != nil {
		e.storeErrors.Add(1)
		return
	}
	fl.Span("encode", t0)
	t0 = fl.Begin()
	e.opts.ResultStore.Put(storeKey(key), blob)
	fl.Span("store_put", t0)
}

// isCancelErr reports whether err stems from context cancellation rather
// than a deterministic simulation failure.
func isCancelErr(err error) bool {
	return errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, pipeline.ErrCanceled)
}

// shed counts a job dropped before execution because its deadline had
// already expired, and returns err unchanged; cancellations and other
// errors pass through uncounted.
func (e *Engine) shed(err error) error {
	if errors.Is(err, context.DeadlineExceeded) {
		e.deadlineShed.Add(1)
	}
	return err
}

func (e *Engine) run(ctx context.Context, job Job, fl *obs.Flight) *Result {
	if err := ctx.Err(); err != nil {
		return &Result{Simpoint: job.Simpoint, Setup: job.Setup.Label, Err: e.shed(err)}
	}
	key, cacheable := e.resultKey(job)
	if !cacheable || e.opts.DisableCache {
		return e.execute(ctx, job, fl)
	}
	for {
		// The compute closure runs on exactly one caller's goroutine, so
		// the spans it records (store_get / execute / encode / store_put)
		// land on that caller's flight; joiners record only the cache_hit
		// wait below.
		waitStart := fl.Begin()
		res, hit, aborted := e.results.get(ctx.Done(), key, func() (*Result, bool) {
			if r := e.storedResult(key, job, fl); r != nil {
				return r, true
			}
			r := e.execute(ctx, job, fl)
			if r.Err == nil {
				e.persistResult(key, r, fl)
			}
			return r, r.Err == nil
		})
		if hit {
			fl.Span("cache_hit", waitStart)
		}
		if aborted {
			// Our context died while waiting on another caller's flight.
			return &Result{Simpoint: job.Simpoint, Setup: job.Setup.Label, Err: ctx.Err()}
		}
		if res == nil {
			// We joined a flight whose computation panicked (the zero
			// value was handed to waiters). Recompute under our context.
			if err := ctx.Err(); err != nil {
				return &Result{Simpoint: job.Simpoint, Setup: job.Setup.Label, Err: err}
			}
			continue
		}
		if hit && ctx.Err() == nil && isCancelErr(res.Err) {
			// We waited on another caller's flight and it was canceled
			// under *their* context. Ours is live and the canceled entry
			// was not retained, so run the job ourselves. Genuine run
			// errors are returned as-is — they are deterministic and
			// re-executing them would fail identically.
			continue
		}
		if hit && res.Simpoint != job.Simpoint {
			// Same content, different suite instantiation: hand the caller
			// its own simpoint pointer so result rows match the submitted
			// suite.
			clone := *res
			clone.Simpoint = job.Simpoint
			return &clone
		}
		return res
	}
}

// execute performs one full uncached run: annotate (cached), expand
// (cached), simulate. The lane scheduler bounds concurrent executions
// at Parallelism and grants contended slots weighted-fair; the lane
// rides in on the context and never reaches a cache key.
func (e *Engine) execute(ctx context.Context, job Job, fl *obs.Flight) *Result {
	t0 := fl.Begin()
	if err := e.sched.Acquire(ctx, LaneFrom(ctx)); err != nil {
		// Canceled or expired while queued behind busy workers: don't
		// wait for a slot.
		return &Result{Simpoint: job.Simpoint, Setup: job.Setup.Label, Err: e.shed(err)}
	}
	fl.Span("queue", t0)
	defer e.sched.Release()
	if err := ctx.Err(); err != nil {
		// The deadline (or a cancel) landed between the grant and the
		// run: shed before simulating, releasing the slot untouched.
		return &Result{Simpoint: job.Simpoint, Setup: job.Setup.Label, Err: e.shed(err)}
	}
	sp, s, opt := job.Simpoint, job.Setup, job.Opts

	cfg := pipeline.DefaultConfig(s.NumClusters)
	cfg.WarmupUops = int64(opt.WarmupUops)
	if opt.MachineTweak != nil {
		opt.MachineTweak(&cfg)
	}
	t0 = fl.Begin()
	p, progKey := e.annotated(sp, s, &cfg)
	fl.Span("annotate", t0)
	t0 = fl.Begin()
	tr, releaseTrace := e.expand(p, progKey, sp, opt)
	fl.Span("expand", t0)
	defer releaseTrace()

	cfg.Cancel = ctx.Done()
	pol := s.NewPolicy()
	core, err := e.acquireCore(cfg, pol, tr)
	if err != nil {
		return &Result{Simpoint: sp, Setup: s.Label, Err: err}
	}
	e.simulations.Add(1)
	t0 = fl.Begin()
	m, err := core.Run()
	fl.Span("execute", t0)
	if err == pipeline.ErrCanceled && ctx.Err() != nil {
		err = ctx.Err()
	}
	res := &Result{
		Simpoint:   sp,
		Setup:      s.Label,
		Metrics:    m,
		Complexity: core.ComplexityOf(),
		Err:        err,
	}
	e.releaseCore(core)
	return res
}

// acquireCore returns a core ready to run the job: a pooled core of the
// same config shape, rewound via Reset, when one is idle; a freshly
// constructed one otherwise. With caching disabled every job constructs
// fresh — that keeps Execute the pristine reference the pooled path is
// tested against.
func (e *Engine) acquireCore(cfg pipeline.Config, pol steer.Policy, tr *trace.Trace) (*pipeline.Core, error) {
	if e.opts.DisableCache {
		return pipeline.NewCore(cfg, pol, tr)
	}
	shape := cfg.Shape()
	var core *pipeline.Core
	e.coresMu.Lock()
	if pool := e.cores[shape]; len(pool) > 0 {
		core = pool[len(pool)-1]
		pool[len(pool)-1] = nil
		e.cores[shape] = pool[:len(pool)-1]
	}
	e.coresMu.Unlock()
	if core != nil {
		if err := core.Reset(cfg, pol, tr); err == nil {
			e.corePoolHits.Add(1)
			return core, nil
		}
		// Reset refused (invalid config): drop the core and let NewCore
		// report the same validation error.
	}
	e.corePoolMisses.Add(1)
	return pipeline.NewCore(cfg, pol, tr)
}

// releaseCore parks an idle core for reuse, dropping its trace/policy
// references first. Pool occupancy per shape is bounded by Parallelism —
// more cores can never be running at once, so anything beyond that is
// garbage from a shape the workload moved away from.
func (e *Engine) releaseCore(core *pipeline.Core) {
	if e.opts.DisableCache {
		return
	}
	shape := core.Shape()
	core.Release()
	e.coresMu.Lock()
	if len(e.cores[shape]) < e.opts.Parallelism {
		e.cores[shape] = append(e.cores[shape], core)
	}
	e.coresMu.Unlock()
}

// annotated returns the annotated program clone for the job, cached by
// (simpoint, pass signature). The returned key is "" when the artifact is
// uncacheable (opaque Annotate pass).
func (e *Engine) annotated(sp *workload.Simpoint, s Setup, cfg *pipeline.Config) (*prog.Program, string) {
	if s.Annotate != nil {
		p := sp.Program.Clone()
		p.ClearAnnotations()
		s.Annotate(p)
		return p, ""
	}
	build := func() (*prog.Program, bool) {
		p := sp.Program.Clone()
		p.ClearAnnotations()
		if s.Pass != nil {
			s.Pass.Run(p, s.Pass.options(cfg))
		}
		return p, true
	}
	passKey := "clean"
	if s.Pass != nil {
		passKey = s.Pass.key(cfg)
	}
	key := e.fingerprint(sp) + "|" + passKey
	if e.opts.DisableCache {
		p, _ := build()
		return p, key
	}
	p, _, _ := e.progs.get(nil, key, build)
	return p, key
}

// expand returns the dynamic trace for the annotated program, cached by
// (annotated-program key, NumUops, seed), plus a release func the caller
// must invoke once done with the trace. Cached traces are stored
// compressed; hits share one refcounted unpacked form, so N concurrent
// users of the same trace pay one decompression and hold one *trace.Trace
// between them, and the release of the last user drops the entry back to
// compressed-only. A pack or unpack failure degrades to a plain expansion
// (release is then a no-op).
func (e *Engine) expand(p *prog.Program, progKey string, sp *workload.Simpoint, opt RunOptions) (*trace.Trace, func()) {
	topts := trace.Options{NumUops: opt.NumUops, Seed: sp.Seed}
	if progKey == "" || e.opts.DisableCache {
		return trace.Expand(p, topts), func() {}
	}
	key := fmt.Sprintf("%s|u%d|s%d", progKey, opt.NumUops, sp.Seed)
	var fresh *trace.Trace
	pt, _, _ := e.traces.get(nil, key, func() (packedTrace, bool) {
		fresh = trace.Expand(p, topts)
		packed, err := packTrace(fresh)
		if err != nil {
			return packedTrace{}, false
		}
		return packed, true
	})
	if pt.shared == nil {
		// Pack failed (ours or a joined flight's): nothing was cached. Use
		// the fresh expansion if we made one, else expand privately.
		if fresh != nil {
			return fresh, func() {}
		}
		return trace.Expand(p, topts), func() {}
	}
	if fresh != nil {
		// Computing caller: seed the shared form with the trace just
		// expanded so concurrent hits skip even the first decompression.
		return e.shareTrace(pt.shared, fresh)
	}
	tr, release, err := e.acquireUnpacked(pt)
	if err != nil {
		// Corrupt entry: expand directly.
		return trace.Expand(p, topts), func() {}
	}
	return tr, release
}

// acquireUnpacked returns the unpacked form of a cached trace, sharing one
// decompression across concurrent users: the first user gunzips under the
// entry's mutex while later users block on it, then take a reference to
// the same *trace.Trace. The returned release drops the reference.
func (e *Engine) acquireUnpacked(pt packedTrace) (*trace.Trace, func(), error) {
	sh := pt.shared
	sh.mu.Lock()
	if sh.tr == nil {
		tr, err := unpackTrace(pt)
		if err != nil {
			sh.mu.Unlock()
			return nil, nil, err
		}
		sh.tr = tr
		e.traceUnpacks.Add(1)
		e.traceUnpackedLive.Add(1)
	} else {
		e.traceSharedHits.Add(1)
	}
	sh.refs++
	tr := sh.tr
	sh.mu.Unlock()
	return tr, func() { e.releaseShared(sh) }, nil
}

// shareTrace seeds a cache entry's shared form with an already-expanded
// trace (the computing caller's) and takes a reference to it. If a
// concurrent hit unpacked first, its copy wins and the seed is discarded.
func (e *Engine) shareTrace(sh *sharedTrace, tr *trace.Trace) (*trace.Trace, func()) {
	sh.mu.Lock()
	if sh.tr == nil {
		sh.tr = tr
		e.traceUnpackedLive.Add(1)
	}
	tr = sh.tr
	sh.refs++
	sh.mu.Unlock()
	return tr, func() { e.releaseShared(sh) }
}

// releaseShared drops one reference to a shared unpacked trace; the last
// release frees the unpacked form, returning the entry to compressed-only.
func (e *Engine) releaseShared(sh *sharedTrace) {
	sh.mu.Lock()
	sh.refs--
	if sh.refs == 0 && sh.tr != nil {
		sh.tr = nil
		e.traceUnpackedLive.Add(-1)
	}
	sh.mu.Unlock()
}
