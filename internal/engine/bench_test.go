package engine

import (
	"testing"

	"clustersim/internal/pipeline"
	"clustersim/internal/workload"
)

// BenchmarkTraceCacheConcurrentHit measures what a trace-cache hit costs
// once the entry exists, in both decompressions (reported as unpacks/op)
// and allocations. Serial hits have nothing to share — each one gunzips
// the entry afresh, so unpacks/op pins at 1. Parallel hits overlap, and
// overlapping users take references to one shared unpacked form instead
// of decompressing privately, so unpacks/op must land well below 1. CI
// gates both sub-benchmarks via cmd/benchjson.
func BenchmarkTraceCacheConcurrentHit(b *testing.B) {
	bench := func(b *testing.B, parallel bool) {
		e := New(Options{Parallelism: 8})
		sp := workload.ByName("crafty")
		opt := RunOptions{NumUops: 5_000}
		cfg := pipeline.DefaultConfig(2)
		p, progKey := e.annotated(sp, Setup{}, &cfg)
		if progKey == "" {
			b.Fatal("uncacheable program key")
		}
		// Warm: this expand packs the trace into the cache; releasing drops
		// the unpacked form so every measured hit starts compressed-only.
		tr, release := e.expand(p, progKey, sp, opt)
		if tr == nil {
			b.Fatal("warm expansion failed")
		}
		release()
		// Sanity: re-expanding the same key must be a cache hit, or the
		// benchmark would measure full expansions.
		tr, release = e.expand(p, progKey, sp, opt)
		_ = tr
		release()
		if e.traces.hits.Load() == 0 {
			b.Fatal("trace cache not hitting; benchmark would measure expansion")
		}
		base := e.traceUnpacks.Load()
		b.ReportAllocs()
		b.ResetTimer()
		if parallel {
			b.RunParallel(func(pb *testing.PB) {
				// Hold the previous reference while acquiring the next, the
				// way overlapping simulations hold their traces: the entry's
				// refcount stays above zero, so after the first unpack every
				// acquisition shares the live form.
				var prev func()
				for pb.Next() {
					tr, release := e.expand(p, progKey, sp, opt)
					if tr == nil {
						b.Error("expand returned nil trace")
						return
					}
					if prev != nil {
						prev()
					}
					prev = release
				}
				if prev != nil {
					prev()
				}
			})
		} else {
			for i := 0; i < b.N; i++ {
				tr, release := e.expand(p, progKey, sp, opt)
				if tr == nil {
					b.Fatal("expand returned nil trace")
				}
				release()
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(e.traceUnpacks.Load()-base)/float64(b.N), "unpacks/op")
	}
	b.Run("Serial", func(b *testing.B) { bench(b, false) })
	b.Run("Parallel", func(b *testing.B) { bench(b, true) })
}
