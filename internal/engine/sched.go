package engine

import (
	"context"
	"sync"
)

// Lane is a job's scheduling class. Interactive work (a user waiting on
// a single result) and bulk work (sweeps, warmers) share one worker
// pool, but contended slots are granted weighted-fair rather than FIFO:
// a long bulk batch that arrived first can no longer make every
// interactive job wait out the whole backlog.
type Lane int

const (
	// LaneInteractive is the latency-sensitive lane and the default for
	// jobs that declare nothing.
	LaneInteractive Lane = iota
	// LaneBulk is the throughput lane for sweeps and background fills.
	LaneBulk

	numLanes = iota
)

// Weighted-fair slot split under contention: of every 5 contended
// grants, 4 go interactive and 1 goes bulk, so bulk retains forward
// progress while interactive latency stays bounded by its own lane's
// depth, not the bulk backlog.
var laneWeights = [numLanes]int{LaneInteractive: 4, LaneBulk: 1}

func (l Lane) String() string {
	if l == LaneBulk {
		return "bulk"
	}
	return "interactive"
}

// ParseLane maps the wire names ("interactive", "bulk", "") to a Lane;
// empty means interactive. Unknown names report ok=false.
func ParseLane(s string) (Lane, bool) {
	switch s {
	case "", "interactive":
		return LaneInteractive, true
	case "bulk":
		return LaneBulk, true
	}
	return LaneInteractive, false
}

type laneKey struct{}

// WithLane tags ctx with the scheduling lane for jobs run under it.
func WithLane(ctx context.Context, l Lane) context.Context {
	return context.WithValue(ctx, laneKey{}, l)
}

// LaneFrom returns the lane ctx was tagged with, or LaneInteractive.
func LaneFrom(ctx context.Context) Lane {
	if l, ok := ctx.Value(laneKey{}).(Lane); ok {
		return l
	}
	return LaneInteractive
}

// waiter is one blocked Acquire. grant is closed (under the scheduler
// lock, with granted set) when a slot is transferred to it.
type waiter struct {
	grant   chan struct{}
	granted bool
}

// scheduler is a two-lane weighted-fair replacement for the engine's
// former worker semaphore. Slots are anonymous; only the *grant order*
// under contention is scheduled. The invariant is that waiters exist
// only while free == 0 — a released slot is handed directly to the
// chosen waiter rather than returned to the pool, so a grant can never
// leapfrog the queue.
type scheduler struct {
	mu     sync.Mutex
	free   int
	queues [numLanes][]*waiter
	// seq sequences contended grants for the weighted round-robin: when
	// both lanes are backlogged, grant i goes interactive iff
	// i mod (wI+wB) < wI. It only advances when the choice was real
	// (both lanes waiting), so an idle lane never banks credit.
	seq int

	grants [numLanes]int64 // total slot acquisitions per lane
}

func newScheduler(slots int) *scheduler {
	return &scheduler{free: slots}
}

// Acquire blocks until a worker slot is granted or ctx is done. It
// returns ctx.Err() without holding a slot in the latter case.
func (s *scheduler) Acquire(ctx context.Context, lane Lane) error {
	if lane < 0 || lane >= numLanes {
		lane = LaneInteractive
	}
	s.mu.Lock()
	if s.free > 0 {
		s.free--
		s.grants[lane]++
		s.mu.Unlock()
		return nil
	}
	w := &waiter{grant: make(chan struct{})}
	s.queues[lane] = append(s.queues[lane], w)
	s.mu.Unlock()

	select {
	case <-w.grant:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		if w.granted {
			// Release raced our cancellation and already handed us the
			// slot. The grant was counted when it was handed over, but no
			// work will ever run under it — uncount it, then pass the
			// slot straight on so it isn't lost (re-granting counts the
			// real recipient).
			s.grants[lane]--
			s.releaseLocked()
			s.mu.Unlock()
			return ctx.Err()
		}
		// Still queued: withdraw.
		q := s.queues[lane]
		for i, qw := range q {
			if qw == w {
				s.queues[lane] = append(q[:i], q[i+1:]...)
				break
			}
		}
		s.mu.Unlock()
		return ctx.Err()
	}
}

// Release returns a slot, granting it directly to a waiter when any
// lane is backlogged.
func (s *scheduler) Release() {
	s.mu.Lock()
	s.releaseLocked()
	s.mu.Unlock()
}

func (s *scheduler) releaseLocked() {
	lane := LaneInteractive
	switch {
	case len(s.queues[LaneInteractive]) == 0 && len(s.queues[LaneBulk]) == 0:
		s.free++
		return
	case len(s.queues[LaneInteractive]) == 0:
		lane = LaneBulk
	case len(s.queues[LaneBulk]) == 0:
		// lane = LaneInteractive
	default:
		// Both lanes backlogged: the weighted round-robin decides.
		total := laneWeights[LaneInteractive] + laneWeights[LaneBulk]
		if s.seq%total >= laneWeights[LaneInteractive] {
			lane = LaneBulk
		}
		s.seq++
	}
	q := s.queues[lane]
	w := q[0]
	q[0] = nil
	s.queues[lane] = q[1:]
	w.granted = true
	s.grants[lane]++
	close(w.grant)
}

// laneGrants snapshots the per-lane acquisition counters.
func (s *scheduler) laneGrants() (interactive, bulk int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.grants[LaneInteractive], s.grants[LaneBulk]
}

// queueDepths snapshots the per-lane waiter counts.
func (s *scheduler) queueDepths() (interactive, bulk int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queues[LaneInteractive]), len(s.queues[LaneBulk])
}
