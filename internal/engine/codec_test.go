package engine_test

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"clustersim/internal/engine"
	"clustersim/internal/pipeline"
	"clustersim/internal/stats"
	"clustersim/internal/steer"
	"clustersim/internal/workload"
)

// sampleResult builds a fully-populated successful result, histograms
// included, without running a simulation.
func sampleResult() *engine.Result {
	h := func(limit int, samples ...int64) *stats.Histogram {
		hg := stats.NewHistogram(limit)
		for _, s := range samples {
			hg.Observe(s)
		}
		return hg
	}
	return &engine.Result{
		Simpoint: &workload.Simpoint{Name: "gzip-1", Bench: "gzip", FP: false, Weight: 0.25, Seed: 42},
		Setup:    "VC(2->4)",
		Metrics: &pipeline.Metrics{
			Cycles: 12345, Uops: 20000, Copies: 321,
			AllocStallCycles: 17,
			StallCycles:      [8]int64{0, 1, 2, 3, 4, 5, 6, 7},
			FetchStallCycles: 99, Branches: 2000, Mispredicts: 150,
			LinkTransfers: 400, LinkConflicts: 7,
			L1Hits: 5000, L2Hits: 600, MemAccesses: 70, LSQForwards: 8,
			PerCluster: []pipeline.ClusterMetrics{
				{Dispatched: 10000, CopiesInserted: 100, OccupancySum: 999, IntIssued: 8000, FPIssued: 100, CopyIssued: 100, IntOccSum: 5, FPOccSum: 6},
				{Dispatched: 10000, CopiesInserted: 221, OccupancySum: 888, IntIssued: 7000, FPIssued: 200, CopyIssued: 221, IntOccSum: 7, FPOccSum: 8},
			},
			Histograms: &pipeline.OccupancyHistograms{
				ROB:         h(16, 1, 2, 3),
				IntIQ:       h(16, 4, 5),
				FPIQ:        h(16, 6),
				CopyQ:       h(16, 7, 7, 7),
				CopyLatency: h(16, 9, 10),
			},
		},
		Complexity: steer.Complexity{
			DependenceChecks: 1, VoteOps: 2, SerializedDecisions: 3,
			CounterReads: 4, MapReads: 5, MapWrites: 6, Steered: 20000,
		},
	}
}

// Encode → decode → re-encode must be byte-identical, and every field must
// survive the round trip (simpoint identity only: programs don't travel).
func TestResultCodecRoundTrip(t *testing.T) {
	res := sampleResult()
	blob, err := engine.EncodeResult(res)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := engine.DecodeResult(blob)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Setup != res.Setup {
		t.Errorf("setup: %q != %q", dec.Setup, res.Setup)
	}
	if !reflect.DeepEqual(dec.Metrics.PerCluster, res.Metrics.PerCluster) ||
		dec.Metrics.Cycles != res.Metrics.Cycles ||
		dec.Metrics.StallCycles != res.Metrics.StallCycles {
		t.Error("metrics did not survive the round trip")
	}
	if !reflect.DeepEqual(dec.Complexity, res.Complexity) {
		t.Error("complexity did not survive the round trip")
	}
	if dec.Simpoint.Name != "gzip-1" || dec.Simpoint.Seed != 42 || dec.Simpoint.Weight != 0.25 {
		t.Errorf("simpoint identity lost: %+v", dec.Simpoint)
	}
	if got, want := dec.Metrics.Histograms.CopyQ.Count(), res.Metrics.Histograms.CopyQ.Count(); got != want {
		t.Errorf("histogram count %d != %d", got, want)
	}
	if got, want := dec.Metrics.Histograms.ROB.Mean(), res.Metrics.Histograms.ROB.Mean(); got != want {
		t.Errorf("histogram mean %v != %v", got, want)
	}

	again, err := engine.EncodeResult(dec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, again) {
		t.Error("re-encoding a decoded result is not byte-identical")
	}
}

// Every truncation of a valid blob must fail cleanly; so must blobs from a
// different schema version or of the wrong payload kind.
func TestResultCodecRejectsMangledBlobs(t *testing.T) {
	blob, err := engine.EncodeResult(sampleResult())
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(blob); cut++ {
		if _, err := engine.DecodeResult(blob[:cut]); err == nil {
			t.Fatalf("truncation at %d/%d decoded successfully", cut, len(blob))
		}
	}

	versioned := append([]byte(nil), blob...)
	versioned[1]++ // future schema version
	if _, err := engine.DecodeResult(versioned); !errors.Is(err, engine.ErrCodecVersion) {
		t.Errorf("version mismatch: err = %v, want ErrCodecVersion", err)
	}

	jobBlob, err := engine.EncodeJobSpec(engine.JobSpec{Simpoint: "mcf", Setup: engine.SetupSpec{Kind: "OP"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := engine.DecodeResult(jobBlob); err == nil {
		t.Error("a job blob decoded as a result")
	}
	if _, err := engine.DecodeJobSpec(blob); err == nil {
		t.Error("a result blob decoded as a job spec")
	}
}

func TestEncodeFailedResultRefused(t *testing.T) {
	res := sampleResult()
	res.Err = errors.New("boom")
	if _, err := engine.EncodeResult(res); err == nil {
		t.Error("a failed result must not be serializable")
	}
	if _, err := engine.EncodeResult(nil); err == nil {
		t.Error("a nil result must not be serializable")
	}
}

// Decoding attacker-ish arbitrary bytes must never panic, and a valid
// blob surviving the corpus must round-trip byte-identically.
func FuzzDecodeResult(f *testing.F) {
	blob, err := engine.EncodeResult(sampleResult())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(blob)
	f.Add([]byte{})
	f.Add([]byte{0xC5})
	f.Add(blob[:len(blob)/2])
	f.Fuzz(func(t *testing.T, data []byte) {
		res, err := engine.DecodeResult(data)
		if err != nil {
			return
		}
		again, err := engine.EncodeResult(res)
		if err != nil {
			t.Fatalf("decoded blob refused re-encoding: %v", err)
		}
		round, err := engine.DecodeResult(again)
		if err != nil {
			t.Fatalf("re-encoded blob undecodable: %v", err)
		}
		final, err := engine.EncodeResult(round)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(again, final) {
			t.Error("encode(decode(x)) not a fixed point")
		}
	})
}

// Job specs round-trip losslessly and re-encode byte-identically for
// arbitrary field values.
func FuzzJobSpecCodec(f *testing.F) {
	f.Add("gzip-1", "VC", 2, 4, 0, 8, 20000, 1000)
	f.Add("", "", -1, 0, 99, -5, 0, 0)
	f.Fuzz(func(t *testing.T, sp, kind string, clusters, numVC, region, chain, uops, warmup int) {
		spec := engine.JobSpec{
			Simpoint: sp,
			Setup: engine.SetupSpec{
				Kind: kind, NumClusters: clusters, NumVC: numVC,
				RegionMaxOps: region, MaxChainLen: chain,
			},
			Opts: engine.OptionsSpec{NumUops: uops, WarmupUops: warmup},
		}
		blob, err := engine.EncodeJobSpec(spec)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := engine.DecodeJobSpec(blob)
		if err != nil {
			t.Fatal(err)
		}
		if dec != spec {
			t.Fatalf("round trip changed the spec: %+v != %+v", dec, spec)
		}
		again, err := engine.EncodeJobSpec(dec)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(blob, again) {
			t.Error("job spec re-encoding not byte-identical")
		}
		for cut := 0; cut < len(blob); cut++ {
			if _, err := engine.DecodeJobSpec(blob[:cut]); err == nil {
				t.Fatalf("truncated job spec (%d/%d bytes) decoded", cut, len(blob))
			}
		}
	})
}
