package engine

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"sync"

	"clustersim/internal/trace"
)

// The expanded-trace cache stores traces gzip-compressed: a packedTrace is
// the trace's binary serialization (internal/trace format, annotations
// included) run through gzip. Dynamic uop streams are highly repetitive —
// the same static ops recur with striding addresses — so compression
// typically shrinks the dominant cache tier severalfold, letting the same
// TraceCacheBytes budget hold several times more simulation points. The
// cost is one decompression per cache hit, which is far cheaper than
// re-expanding the trace from the program.
type packedTrace struct {
	// data is the gzip-compressed serialized trace; nil marks a failed
	// pack (the flight is not retained, so callers re-expand).
	data []byte
	// rawBytes is the serialized (uncompressed) size, for the compression
	// ratio stat.
	rawBytes int64
	// shared is the entry's refcounted unpacked form: concurrent users of
	// the same cached trace share one decompression and one in-memory
	// *trace.Trace through it. The pointer is part of the cached value, so
	// every hit on this entry sees the same sharedTrace.
	shared *sharedTrace
}

// sharedTrace holds the transient unpacked form of one cached trace. The
// first user decompresses under the mutex (concurrent users of the same
// entry block on it — that is the single-flight), later users take a
// reference to the already-unpacked trace, and the last release drops the
// unpacked form so the entry's steady-state footprint stays compressed-only
// (the cache budget keeps counting compressed bytes).
type sharedTrace struct {
	mu   sync.Mutex
	tr   *trace.Trace
	refs int
}

// packedTraceBytes is the cost function for the trace cache: compressed
// payload plus bookkeeping overhead.
func packedTraceBytes(pt packedTrace) int64 { return int64(len(pt.data)) + 64 }

// packedTraceRawBytes is the secondary gauge: pre-compression bytes.
func packedTraceRawBytes(pt packedTrace) int64 { return pt.rawBytes }

// countWriter counts the bytes flowing through it.
type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// packTrace serializes and compresses a trace for caching. Serialization
// streams straight through the gzip writer — no transient full raw copy —
// with the raw size taken from a counting shim.
func packTrace(tr *trace.Trace) (packedTrace, error) {
	var buf bytes.Buffer
	zw, err := gzip.NewWriterLevel(&buf, gzip.BestSpeed)
	if err != nil {
		return packedTrace{}, err
	}
	cw := &countWriter{w: zw}
	if err := trace.Save(cw, tr); err != nil {
		return packedTrace{}, fmt.Errorf("engine: serializing trace: %w", err)
	}
	if err := zw.Close(); err != nil {
		return packedTrace{}, err
	}
	return packedTrace{data: buf.Bytes(), rawBytes: cw.n, shared: &sharedTrace{}}, nil
}

// unpackTrace decompresses and deserializes a cached trace. The round trip
// is exact — the binary format carries every field the pipeline and the
// steering policies read (serialize round-trip tests pin this), so a
// simulation over an unpacked trace is byte-identical to one over the
// original.
func unpackTrace(pt packedTrace) (*trace.Trace, error) {
	zr, err := gzip.NewReader(bytes.NewReader(pt.data))
	if err != nil {
		return nil, err
	}
	defer zr.Close()
	return trace.Load(zr)
}
