package engine

import (
	"context"
	"sync"
	"testing"
	"time"

	"clustersim/internal/workload"
)

func mustAcquire(t *testing.T, s *scheduler, lane Lane) {
	t.Helper()
	if err := s.Acquire(context.Background(), lane); err != nil {
		t.Fatalf("Acquire(%v) = %v", lane, err)
	}
}

// acquireAsync starts a blocked Acquire and returns a channel that
// yields its error once it resolves.
func acquireAsync(ctx context.Context, s *scheduler, lane Lane) <-chan error {
	ch := make(chan error, 1)
	go func() { ch <- s.Acquire(ctx, lane) }()
	return ch
}

// waitDepths polls until the scheduler sees the wanted queue depths
// (Acquire enqueues asynchronously from the test's perspective).
func waitDepths(t *testing.T, s *scheduler, wantI, wantB int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		i, b := s.queueDepths()
		if i == wantI && b == wantB {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("queue depths = (%d, %d), want (%d, %d)", i, b, wantI, wantB)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestSchedulerUncontended(t *testing.T) {
	s := newScheduler(2)
	mustAcquire(t, s, LaneInteractive)
	mustAcquire(t, s, LaneBulk)
	s.Release()
	s.Release()
	mustAcquire(t, s, LaneBulk)
	s.Release()
	i, b := s.laneGrants()
	if i != 1 || b != 2 {
		t.Fatalf("laneGrants = (%d, %d), want (1, 2)", i, b)
	}
}

func TestSchedulerParallelismBound(t *testing.T) {
	const slots = 3
	s := newScheduler(slots)
	var mu sync.Mutex
	running, peak := 0, 0
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		lane := Lane(i % numLanes)
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := s.Acquire(context.Background(), lane); err != nil {
				t.Errorf("Acquire: %v", err)
				return
			}
			mu.Lock()
			running++
			if running > peak {
				peak = running
			}
			mu.Unlock()
			time.Sleep(time.Millisecond)
			mu.Lock()
			running--
			mu.Unlock()
			s.Release()
		}()
	}
	wg.Wait()
	if peak > slots {
		t.Fatalf("peak concurrency %d exceeds %d slots", peak, slots)
	}
	i, b := s.laneGrants()
	if i+b != 50 {
		t.Fatalf("total grants = %d, want 50", i+b)
	}
}

func TestSchedulerWeightedFairUnderContention(t *testing.T) {
	// One slot, held; then backlog both lanes and replay the slot
	// through the queues. Grants must split 4:1 interactive:bulk.
	s := newScheduler(1)
	mustAcquire(t, s, LaneInteractive)

	const perLane = 20
	results := make(chan Lane, 2*perLane)
	var wg sync.WaitGroup
	for i := 0; i < perLane; i++ {
		for _, lane := range []Lane{LaneInteractive, LaneBulk} {
			lane := lane
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := s.Acquire(context.Background(), lane); err != nil {
					t.Errorf("Acquire: %v", err)
					return
				}
				results <- lane
				s.Release()
			}()
		}
	}
	waitDepths(t, s, perLane, perLane)
	s.Release() // start draining the backlog through the single slot
	wg.Wait()
	close(results)

	// While both lanes stay backlogged (the first 2*min cycles of 5),
	// every window of 5 consecutive grants must hold exactly 4
	// interactive + 1 bulk.
	var order []Lane
	for l := range results {
		order = append(order, l)
	}
	if len(order) != 2*perLane {
		t.Fatalf("got %d grants, want %d", len(order), 2*perLane)
	}
	// Both lanes are certainly backlogged for the first perLane/4*5
	// grants (interactive drains 4× faster).
	contended := perLane / 4 * 5
	for w := 0; w+5 <= contended; w += 5 {
		bulk := 0
		for _, l := range order[w : w+5] {
			if l == LaneBulk {
				bulk++
			}
		}
		if bulk != 1 {
			t.Fatalf("window %d: %d bulk grants in 5, want exactly 1 (order %v)", w, bulk, order[:contended])
		}
	}
}

func TestSchedulerBulkNotStarved(t *testing.T) {
	// Even under a continuous interactive backlog, bulk must progress.
	s := newScheduler(1)
	mustAcquire(t, s, LaneInteractive)

	bulkDone := acquireAsync(context.Background(), s, LaneBulk)
	var wg sync.WaitGroup
	for i := 0; i < 30; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := s.Acquire(context.Background(), LaneInteractive); err == nil {
				s.Release()
			}
		}()
	}
	waitDepths(t, s, 30, 1)
	s.Release()
	select {
	case err := <-bulkDone:
		if err != nil {
			t.Fatalf("bulk Acquire: %v", err)
		}
		s.Release()
	case <-time.After(5 * time.Second):
		t.Fatal("bulk lane starved behind interactive backlog")
	}
	wg.Wait()
}

func TestSchedulerAcquireCancel(t *testing.T) {
	s := newScheduler(1)
	mustAcquire(t, s, LaneInteractive)

	ctx, cancel := context.WithCancel(context.Background())
	done := acquireAsync(ctx, s, LaneBulk)
	waitDepths(t, s, 0, 1)
	cancel()
	if err := <-done; err != context.Canceled {
		t.Fatalf("canceled Acquire = %v, want context.Canceled", err)
	}
	// The withdrawn waiter must not absorb the next release.
	s.Release()
	mustAcquire(t, s, LaneInteractive)
	s.Release()
}

func TestSchedulerCancelGrantRaceLosesNoSlot(t *testing.T) {
	// Hammer the cancel-vs-grant race: regardless of who wins, the slot
	// must survive. A lost slot deadlocks the final drain.
	s := newScheduler(1)
	for i := 0; i < 500; i++ {
		mustAcquire(t, s, LaneInteractive)
		ctx, cancel := context.WithCancel(context.Background())
		done := acquireAsync(ctx, s, LaneBulk)
		waitDepths(t, s, 0, 1)
		go cancel()
		go s.Release()
		if err := <-done; err == nil {
			s.Release()
		}
		cancel()
		// Drain: the slot must still exist.
		ok := make(chan error, 1)
		go func() { ok <- s.Acquire(context.Background(), LaneInteractive) }()
		select {
		case err := <-ok:
			if err != nil {
				t.Fatalf("drain Acquire: %v", err)
			}
			s.Release()
		case <-time.After(5 * time.Second):
			t.Fatalf("iteration %d: slot lost to cancel/grant race", i)
		}
	}
}

func TestSchedulerAbandonedGrantNotCounted(t *testing.T) {
	// Drive the Release-vs-cancel race deterministically into the
	// granted-but-canceled branch: cancel the waiter while holding the
	// scheduler lock (it wakes on ctx.Done and blocks on the lock), then
	// grant it under the lock. The grant never runs work, so it must not
	// count — only the re-grant to a real recipient may.
	s := newScheduler(0)
	ctx, cancel := context.WithCancel(context.Background())
	done := acquireAsync(ctx, s, LaneBulk)
	waitDepths(t, s, 0, 1)

	s.mu.Lock()
	cancel()
	time.Sleep(50 * time.Millisecond) // waiter enters its ctx.Done branch, blocks on mu
	s.releaseLocked()                 // hands the canceled waiter the slot, counting it
	s.mu.Unlock()

	if err := <-done; err != context.Canceled {
		t.Fatalf("canceled Acquire = %v, want context.Canceled", err)
	}
	if i, b := s.laneGrants(); i != 0 || b != 0 {
		t.Fatalf("laneGrants = (%d, %d) after an abandoned grant, want (0, 0)", i, b)
	}
	// The passed-on slot survives and its real use is counted.
	mustAcquire(t, s, LaneInteractive)
	s.Release()
	if i, b := s.laneGrants(); i != 1 || b != 0 {
		t.Fatalf("laneGrants = (%d, %d) after reuse, want (1, 0)", i, b)
	}
}

func TestLaneContext(t *testing.T) {
	ctx := context.Background()
	if l := LaneFrom(ctx); l != LaneInteractive {
		t.Fatalf("default lane = %v, want interactive", l)
	}
	if l := LaneFrom(WithLane(ctx, LaneBulk)); l != LaneBulk {
		t.Fatalf("lane = %v, want bulk", l)
	}
	for _, tc := range []struct {
		in   string
		want Lane
		ok   bool
	}{
		{"", LaneInteractive, true},
		{"interactive", LaneInteractive, true},
		{"bulk", LaneBulk, true},
		{"urgent", LaneInteractive, false},
	} {
		got, ok := ParseLane(tc.in)
		if got != tc.want || ok != tc.ok {
			t.Fatalf("ParseLane(%q) = (%v, %v), want (%v, %v)", tc.in, got, ok, tc.want, tc.ok)
		}
	}
	if LaneInteractive.String() != "interactive" || LaneBulk.String() != "bulk" {
		t.Fatal("Lane.String mismatch")
	}
}

func TestEngineDeadlineShed(t *testing.T) {
	e := New(Options{Parallelism: 1})
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	// The deadline is already expired, so the job must be shed before
	// any execution machinery runs — a skeletal job suffices.
	job := Job{Simpoint: &workload.Simpoint{Name: "shed"}, Setup: Setup{Label: "OP"}}
	res := e.Run(ctx, job)
	if res.Err == nil || !isCancelErr(res.Err) {
		t.Fatalf("expired-deadline run returned %v, want deadline error", res.Err)
	}
	if got := e.Stats().DeadlineShed; got != 1 {
		t.Fatalf("DeadlineShed = %d, want 1", got)
	}
}
