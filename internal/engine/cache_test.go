package engine

import (
	"testing"
	"time"
)

// A panicking computation must unblock waiters and leave the key usable.
func TestFlightPanicDoesNotPoisonKey(t *testing.T) {
	c := newFlightCache[int](0, nil)
	waited := make(chan int, 1)
	started := make(chan struct{})
	go func() {
		defer func() { recover() }()
		c.get(nil, "k", func() (int, bool) {
			close(started)
			time.Sleep(20 * time.Millisecond)
			panic("boom")
		})
	}()
	<-started
	go func() {
		v, _, _ := c.get(nil, "k", func() (int, bool) { return 42, true })
		waited <- v
	}()
	select {
	case v := <-waited:
		// The waiter either observed the zero value from the panicked
		// flight or recomputed; either way the key must not deadlock, and
		// a fresh get must recompute successfully.
		_ = v
	case <-time.After(10 * time.Second):
		t.Fatal("waiter deadlocked on a panicked flight")
	}
	v, cached, _ := c.get(nil, "k", func() (int, bool) { return 7, true })
	if cached && v != 7 && v != 42 {
		t.Fatalf("poisoned key: v=%d cached=%v", v, cached)
	}
}

// A waiter whose abort channel fires must return promptly, not wait for
// the in-flight computation.
func TestFlightAbortWhileWaiting(t *testing.T) {
	c := newFlightCache[int](0, nil)
	release := make(chan struct{})
	started := make(chan struct{})
	go func() {
		c.get(nil, "k", func() (int, bool) {
			close(started)
			<-release
			return 1, true
		})
	}()
	<-started
	abort := make(chan struct{})
	close(abort)
	done := make(chan struct{})
	go func() {
		_, cached, aborted := c.get(abort, "k", func() (int, bool) { return 2, true })
		if cached || !aborted {
			t.Errorf("want aborted wait, got cached=%v aborted=%v", cached, aborted)
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("aborted waiter did not return")
	}
	close(release)
}

// LRU eviction drops the oldest completed entries only (nil costOf makes
// maxCost a plain entry bound).
func TestFlightLRUEviction(t *testing.T) {
	c := newFlightCache[int](2, nil)
	c.get(nil, "a", func() (int, bool) { return 1, true })
	c.get(nil, "b", func() (int, bool) { return 2, true })
	c.get(nil, "a", func() (int, bool) { return -1, true }) // touch a
	c.get(nil, "c", func() (int, bool) { return 3, true })  // evicts b
	if _, cached, _ := c.get(nil, "a", func() (int, bool) { return -1, true }); !cached {
		t.Error("recently used entry evicted")
	}
	if _, cached, _ := c.get(nil, "b", func() (int, bool) { return -2, true }); cached {
		t.Error("least recently used entry survived past the cap")
	}
}

// Cost-based bounding evicts by accumulated cost, never the entry just
// published, and tracks the byte high-water mark.
func TestFlightCostBoundedEviction(t *testing.T) {
	costs := map[string]int64{"a": 40, "b": 40, "c": 40, "huge": 500}
	c := newFlightCache[string](100, func(v string) int64 { return costs[v] })
	c.get(nil, "a", func() (string, bool) { return "a", true })
	c.get(nil, "b", func() (string, bool) { return "b", true })
	c.get(nil, "a", func() (string, bool) { return "a", true }) // touch a
	c.get(nil, "c", func() (string, bool) { return "c", true }) // 120 > 100: evicts b
	if _, cached, _ := c.get(nil, "b", func() (string, bool) { return "b", true }); cached {
		t.Error("LRU victim b survived the cost bound")
	}
	cost, high := c.costStats()
	if cost > 100+costs["b"] { // b was just re-added above
		t.Errorf("cost %d far beyond bound", cost)
	}
	if high < 120 {
		t.Errorf("high water %d, want >= 120", high)
	}
	// An oversized entry still lands (and evicts everything else).
	c.get(nil, "huge", func() (string, bool) { return "huge", true })
	if _, cached, _ := c.get(nil, "huge", func() (string, bool) { return "huge", true }); !cached {
		t.Error("oversized entry not retained")
	}
}
