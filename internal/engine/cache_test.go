package engine

import (
	"testing"
	"time"
)

// A panicking computation must unblock waiters and leave the key usable.
func TestFlightPanicDoesNotPoisonKey(t *testing.T) {
	c := newFlightCache[int](0)
	waited := make(chan int, 1)
	started := make(chan struct{})
	go func() {
		defer func() { recover() }()
		c.get(nil, "k", func() (int, bool) {
			close(started)
			time.Sleep(20 * time.Millisecond)
			panic("boom")
		})
	}()
	<-started
	go func() {
		v, _, _ := c.get(nil, "k", func() (int, bool) { return 42, true })
		waited <- v
	}()
	select {
	case v := <-waited:
		// The waiter either observed the zero value from the panicked
		// flight or recomputed; either way the key must not deadlock, and
		// a fresh get must recompute successfully.
		_ = v
	case <-time.After(10 * time.Second):
		t.Fatal("waiter deadlocked on a panicked flight")
	}
	v, cached, _ := c.get(nil, "k", func() (int, bool) { return 7, true })
	if cached && v != 7 && v != 42 {
		t.Fatalf("poisoned key: v=%d cached=%v", v, cached)
	}
}

// A waiter whose abort channel fires must return promptly, not wait for
// the in-flight computation.
func TestFlightAbortWhileWaiting(t *testing.T) {
	c := newFlightCache[int](0)
	release := make(chan struct{})
	started := make(chan struct{})
	go func() {
		c.get(nil, "k", func() (int, bool) {
			close(started)
			<-release
			return 1, true
		})
	}()
	<-started
	abort := make(chan struct{})
	close(abort)
	done := make(chan struct{})
	go func() {
		_, cached, aborted := c.get(abort, "k", func() (int, bool) { return 2, true })
		if cached || !aborted {
			t.Errorf("want aborted wait, got cached=%v aborted=%v", cached, aborted)
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("aborted waiter did not return")
	}
	close(release)
}

// LRU eviction drops the oldest completed entries only.
func TestFlightLRUEviction(t *testing.T) {
	c := newFlightCache[int](2)
	c.get(nil, "a", func() (int, bool) { return 1, true })
	c.get(nil, "b", func() (int, bool) { return 2, true })
	c.get(nil, "a", func() (int, bool) { return -1, true }) // touch a
	c.get(nil, "c", func() (int, bool) { return 3, true })  // evicts b
	if _, cached, _ := c.get(nil, "a", func() (int, bool) { return -1, true }); !cached {
		t.Error("recently used entry evicted")
	}
	if _, cached, _ := c.get(nil, "b", func() (int, bool) { return -2, true }); cached {
		t.Error("least recently used entry survived past the cap")
	}
}
