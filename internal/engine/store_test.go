package engine_test

import (
	"bytes"
	"context"
	"testing"

	"clustersim/internal/engine"
	"clustersim/internal/prog"
	"clustersim/internal/sim"
	"clustersim/internal/store"
	"clustersim/internal/workload"
)

// A second engine over the same disk store — a new process, in effect —
// must serve every whole-result lookup from the store, simulate nothing,
// and reproduce byte-identical metrics.
func TestResultsPersistAcrossEngines(t *testing.T) {
	dir := t.TempDir()
	open := func() store.Store {
		st, err := store.OpenDisk(dir, 0)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	sps := workload.QuickSuite()[:3]
	setups := []sim.Setup{sim.SetupOP(2), sim.SetupVC(2, 2)}
	opt := sim.RunOptions{NumUops: 3000}

	first := engine.New(engine.Options{Parallelism: 4, ResultStore: open()})
	ref, err := first.RunMatrix(context.Background(), sps, setups, opt)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(len(sps) * len(setups))
	if st := first.Stats(); st.Simulations != want || st.StoreHits != 0 {
		t.Fatalf("first engine: %+v", st)
	}

	second := engine.New(engine.Options{Parallelism: 4, ResultStore: open()})
	res, err := second.RunMatrix(context.Background(), sps, setups, opt)
	if err != nil {
		t.Fatal(err)
	}
	st := second.Stats()
	if st.Simulations != 0 {
		t.Errorf("second engine simulated %d jobs; want all served from the store", st.Simulations)
	}
	if st.StoreHits != want || st.StoreMisses != 0 {
		t.Errorf("store hits %d / misses %d, want %d / 0", st.StoreHits, st.StoreMisses, want)
	}
	// The acceptance bar: >= 90% of whole-result lookups served by the
	// disk store on the second run.
	if lookups := st.StoreHits + st.StoreMisses; float64(st.StoreHits) < 0.9*float64(lookups) {
		t.Errorf("store served %d of %d lookups, below 90%%", st.StoreHits, lookups)
	}
	for i := range sps {
		for j := range setups {
			if res[i][j].Simpoint != sps[i] {
				t.Error("stored result must carry the submitting job's simpoint")
			}
			a, b := encode(t, ref[i][j].Metrics), encode(t, res[i][j].Metrics)
			if !bytes.Equal(a, b) {
				t.Errorf("%s/%s: stored metrics differ from computed", sps[i].Name, res[i][j].Setup)
			}
		}
	}
}

// Uncacheable jobs (opaque Annotate closures) must never touch the store.
func TestUncacheableJobsBypassStore(t *testing.T) {
	st, err := store.OpenDisk(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(engine.Options{Parallelism: 1, ResultStore: st})
	setup := sim.SetupOP(2)
	setup.Annotate = func(p *prog.Program) {}
	job := engine.Job{Simpoint: workload.ByName("crafty"), Setup: setup, Opts: sim.RunOptions{NumUops: 2000}}
	if res := eng.Run(context.Background(), job); res.Err != nil {
		t.Fatal(res.Err)
	}
	if est := eng.Stats(); est.StoreHits+est.StoreMisses != 0 {
		t.Errorf("uncacheable job consulted the store: %+v", est)
	}
	if sst := st.Stats(); sst.Puts != 0 {
		t.Errorf("uncacheable job persisted: %+v", sst)
	}
	if _, ok := eng.ResultKey(job); ok {
		t.Error("uncacheable job reported a result key")
	}
}

// A corrupted store blob must degrade to a re-simulation, then heal the
// store with a fresh record.
func TestCorruptStoreBlobResimulates(t *testing.T) {
	dir := t.TempDir()
	st, err := store.OpenDisk(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	job := quickJob("crafty", sim.SetupOP(2))
	eng := engine.New(engine.Options{Parallelism: 1, ResultStore: st})
	ref := eng.Run(context.Background(), job)
	if ref.Err != nil {
		t.Fatal(ref.Err)
	}
	key, ok := eng.ResultKey(job)
	if !ok {
		t.Fatal("job unexpectedly uncacheable")
	}
	if _, ok := st.Get(key); !ok {
		t.Fatal("expected a stored record to corrupt")
	}

	// Serve the blob through a corrupting wrapper: framing survives, the
	// codec header does not — the engine must fall back to simulating.
	fresh := engine.New(engine.Options{Parallelism: 1, ResultStore: mangleStore{st}})
	res := fresh.Run(context.Background(), job)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	est := fresh.Stats()
	if est.Simulations != 1 || est.StoreErrors == 0 {
		t.Errorf("corrupt blob not re-simulated: %+v", est)
	}
	if !bytes.Equal(encode(t, ref.Metrics), encode(t, res.Metrics)) {
		t.Error("re-simulated metrics differ")
	}
}

// mangleStore flips a byte in every blob it serves.
type mangleStore struct{ store.Store }

func (m mangleStore) Get(key string) ([]byte, bool) {
	blob, ok := m.Store.Get(key)
	if !ok || len(blob) == 0 {
		return blob, ok
	}
	bad := append([]byte(nil), blob...)
	bad[0] ^= 0xff
	return bad, ok
}
