package sim

import (
	"fmt"

	"clustersim/internal/engine"
	"clustersim/internal/workload"
)

// SetupFromSpec resolves a declarative setup spec (the clusterd wire form)
// into a runnable Setup. Unknown kinds are rejected so a typo in a request
// fails the submission, not the simulation.
func SetupFromSpec(s engine.SetupSpec) (engine.Setup, error) {
	clusters := s.NumClusters
	if clusters == 0 {
		clusters = 2
	}
	numVC := s.NumVC
	if numVC == 0 {
		numVC = clusters
	}
	switch s.Kind {
	case "OP":
		return SetupOP(clusters), nil
	case "OP-nostall":
		return SetupOPNoStall(clusters), nil
	case "one-cluster":
		return SetupOneCluster(clusters), nil
	case "OB":
		if s.RegionMaxOps > 0 {
			return SetupScoped("OB", clusters, s.RegionMaxOps), nil
		}
		return SetupOB(clusters), nil
	case "RHOP":
		if s.RegionMaxOps > 0 {
			return SetupScoped("RHOP", clusters, s.RegionMaxOps), nil
		}
		return SetupRHOP(clusters), nil
	case "VC":
		if s.RegionMaxOps > 0 {
			return SetupScoped("VC", clusters, s.RegionMaxOps), nil
		}
		return SetupVCChain(numVC, clusters, s.MaxChainLen), nil
	case "VC-comm":
		return SetupVCComm(numVC, clusters), nil
	}
	return engine.Setup{}, fmt.Errorf("sim: unknown setup kind %q", s.Kind)
}

// JobFromSpec resolves a serialized job spec into a runnable engine job:
// the simpoint is looked up in the synthetic suite (programs are never
// shipped — they are rebuilt deterministically from the suite tables) and
// the setup kind is mapped to its constructor.
func JobFromSpec(spec engine.JobSpec) (engine.Job, error) {
	sp := workload.ByName(spec.Simpoint)
	if sp == nil {
		return engine.Job{}, fmt.Errorf("sim: unknown simpoint %q", spec.Simpoint)
	}
	setup, err := SetupFromSpec(spec.Setup)
	if err != nil {
		return engine.Job{}, err
	}
	return engine.Job{Simpoint: sp, Setup: setup, Opts: spec.Opts.RunOptions()}, nil
}
