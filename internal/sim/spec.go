package sim

import (
	"fmt"
	"sync"

	"clustersim/internal/engine"
	"clustersim/internal/prog"
	"clustersim/internal/workload"
)

// suiteIdentity is the per-simpoint data SpecFromJob validates against.
type suiteIdentity struct {
	seed int64
	fp   uint64
}

// simpointIndex memoizes one canonical suite build (name → simpoint):
// workload.ByName regenerates all ~40 synthetic programs per call, far
// too heavy for anything that resolves specs per request. Serving stable
// pointers also keeps the engine's pointer-keyed fingerprint memo hot
// across submissions instead of missing (and growing) on every batch.
// Nothing mutates these simpoints: workload.QuickSuite reweighs its own
// fresh build, never this one.
var simpointIndex = sync.OnceValue(func() map[string]*workload.Simpoint {
	idx := map[string]*workload.Simpoint{}
	for _, sp := range workload.Suite() {
		idx[sp.Name] = sp
	}
	return idx
})

// suiteIndex memoizes the suite's (name → seed, program fingerprint)
// map for SpecFromJob's identity checks, derived from the same canonical
// build simpointIndex holds.
var suiteIndex = sync.OnceValue(func() map[string]suiteIdentity {
	idx := map[string]suiteIdentity{}
	for name, sp := range simpointIndex() {
		idx[name] = suiteIdentity{seed: sp.Seed, fp: fingerprintOf(sp.Program)}
	}
	return idx
})

// fingerprintOf memoizes Program.Fingerprint per program value (programs
// are immutable once built), so a matrix submitting the same workload
// under many setups hashes it once, not once per job. The memo is
// bounded — a caller that resolves fresh program instances per request
// must not have them pinned for process lifetime — by dropping the whole
// map when it fills; steady-state workloads re-warm it in one pass.
func fingerprintOf(p *prog.Program) uint64 {
	const maxEntries = 512
	fpMu.Lock()
	fp, ok := fpMemo[p]
	fpMu.Unlock()
	if ok {
		return fp
	}
	fp = p.Fingerprint() // outside the lock: the walk is the expensive part
	fpMu.Lock()
	if len(fpMemo) >= maxEntries {
		fpMemo = make(map[*prog.Program]uint64, maxEntries)
	}
	fpMemo[p] = fp
	fpMu.Unlock()
	return fp
}

var (
	fpMu   sync.Mutex
	fpMemo = map[*prog.Program]uint64{}
)

// passEqual compares the cacheable signature of two compiler passes (the
// same fields engine folds into result keys).
func passEqual(a, b *engine.Pass) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	return a.Kind == b.Kind && a.NumTargets == b.NumTargets &&
		a.RegionMaxOps == b.RegionMaxOps && a.MaxChainLen == b.MaxChainLen
}

// SetupFromSpec resolves a declarative setup spec (the clusterd wire form)
// into a runnable Setup. Unknown kinds are rejected so a typo in a request
// fails the submission, not the simulation.
func SetupFromSpec(s engine.SetupSpec) (engine.Setup, error) {
	clusters := s.NumClusters
	if clusters == 0 {
		clusters = 2
	}
	numVC := s.NumVC
	if numVC == 0 {
		numVC = clusters
	}
	switch s.Kind {
	case "OP":
		return SetupOP(clusters), nil
	case "OP-nostall":
		return SetupOPNoStall(clusters), nil
	case "one-cluster":
		return SetupOneCluster(clusters), nil
	case "OB":
		if s.RegionMaxOps > 0 {
			return SetupScoped("OB", clusters, s.RegionMaxOps), nil
		}
		return SetupOB(clusters), nil
	case "RHOP":
		if s.RegionMaxOps > 0 {
			return SetupScoped("RHOP", clusters, s.RegionMaxOps), nil
		}
		return SetupRHOP(clusters), nil
	case "VC":
		if s.RegionMaxOps > 0 {
			return SetupScoped("VC", clusters, s.RegionMaxOps), nil
		}
		return SetupVCChain(numVC, clusters, s.MaxChainLen), nil
	case "VC-comm":
		return SetupVCComm(numVC, clusters), nil
	}
	return engine.Setup{}, fmt.Errorf("sim: unknown setup kind %q", s.Kind)
}

// SpecFromJob converts a runnable job back to its declarative wire form —
// the inverse of JobFromSpec, used by remote runners to ship a job to a
// clusterd worker. Not every job can travel: setups built around opaque
// closures (custom Annotate passes, hand-rolled policies), machine-tweak
// closures, and workloads outside the synthetic suite have no declarative
// form and must execute locally. The returned error says which constraint
// failed so hybrid runners can route such jobs to a local fallback.
func SpecFromJob(job engine.Job) (engine.JobSpec, error) {
	if job.Simpoint == nil {
		return engine.JobSpec{}, fmt.Errorf("sim: job has no simpoint")
	}
	if job.Setup.Annotate != nil || job.Setup.Spec == nil {
		return engine.JobSpec{}, fmt.Errorf("sim: setup %q has no declarative spec (custom setups run locally only)", job.Setup.Label)
	}
	if job.Opts.MachineTweak != nil {
		return engine.JobSpec{}, fmt.Errorf("sim: machine-tweak closures cannot cross a process boundary")
	}
	// The spec must still describe the setup: Setup fields are exported,
	// so a caller may have mutated the setup after construction, and a
	// remote worker resolving the stale spec would silently simulate the
	// wrong configuration. Closure swaps (NewPolicy) are undetectable;
	// everything the result key depends on is checked.
	resolved, err := SetupFromSpec(*job.Setup.Spec)
	if err != nil {
		return engine.JobSpec{}, fmt.Errorf("sim: setup %q carries an unresolvable spec: %w", job.Setup.Label, err)
	}
	if resolved.Label != job.Setup.Label || resolved.NumClusters != job.Setup.NumClusters ||
		!passEqual(resolved.Pass, job.Setup.Pass) {
		return engine.JobSpec{}, fmt.Errorf("sim: setup %q was modified after construction; its declarative spec no longer describes it (rebuild it with a Setup* constructor)", job.Setup.Label)
	}
	suite, ok := suiteIndex()[job.Simpoint.Name]
	if !ok {
		return engine.JobSpec{}, fmt.Errorf("sim: workload %q is not a suite member (custom workloads run locally only)", job.Simpoint.Name)
	}
	// A remote worker resolves the spec against *its* suite by name, so a
	// custom program that happens to share a suite name must be caught
	// here — by seed and content — or the worker would silently simulate
	// the wrong program.
	if suite.seed != job.Simpoint.Seed || suite.fp != fingerprintOf(job.Simpoint.Program) {
		return engine.JobSpec{}, fmt.Errorf("sim: workload %q does not match the suite's definition (custom workloads run locally only)", job.Simpoint.Name)
	}
	return engine.JobSpec{
		Simpoint: job.Simpoint.Name,
		Setup:    *job.Setup.Spec,
		Opts:     engine.OptionsSpec{NumUops: job.Opts.NumUops, WarmupUops: job.Opts.WarmupUops},
	}, nil
}

// JobFromSpec resolves a serialized job spec into a runnable engine job:
// the simpoint is looked up in the synthetic suite (programs are never
// shipped — they are rebuilt deterministically from the suite tables) and
// the setup kind is mapped to its constructor.
func JobFromSpec(spec engine.JobSpec) (engine.Job, error) {
	sp := simpointIndex()[spec.Simpoint]
	if sp == nil {
		return engine.Job{}, fmt.Errorf("sim: unknown simpoint %q", spec.Simpoint)
	}
	setup, err := SetupFromSpec(spec.Setup)
	if err != nil {
		return engine.Job{}, err
	}
	return engine.Job{Simpoint: sp, Setup: setup, Opts: spec.Opts.RunOptions()}, nil
}
