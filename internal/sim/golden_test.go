package sim

import (
	"testing"

	"clustersim/internal/workload"
)

// Golden regression values: exact cycle and copy counts for fixed
// (workload, setup) pairs at 5000 micro-ops. The simulator is fully
// deterministic, so any drift here means the machine model changed — either
// intentionally (update the table and note it in EXPERIMENTS.md, since all
// recorded results shift) or by accident (a bug).
//
// Regenerate with: go test ./internal/sim -run TestGolden -golden-print
var goldenPrint = false

type goldenEntry struct {
	workload string
	setup    string
	cycles   int64
	copies   int64
}

func goldenSetups() map[string]Setup {
	return map[string]Setup{
		"OP":          SetupOP(2),
		"one-cluster": SetupOneCluster(2),
		"OB":          SetupOB(2),
		"RHOP":        SetupRHOP(2),
		"VC":          SetupVC(2, 2),
		"VC(2->4)":    SetupVC(2, 4),
	}
}

func TestGoldenDeterminism(t *testing.T) {
	// The table below was recorded from the current model. If this test
	// fails after an intentional model change, re-record via the loop that
	// prints current values (set goldenPrint = true locally).
	entries := []goldenEntry{}
	setups := goldenSetups()
	names := []string{"crafty", "gzip-1", "swim", "mcf"}
	setupOrder := []string{"OP", "one-cluster", "OB", "RHOP", "VC", "VC(2->4)"}

	// First pass: run everything twice and require exact equality — the
	// determinism half of the golden contract holds regardless of model
	// evolution.
	for _, wn := range names {
		sp := workload.ByName(wn)
		for _, sn := range setupOrder {
			a := RunOne(sp, setups[sn], RunOptions{NumUops: 5000})
			b := RunOne(sp, setups[sn], RunOptions{NumUops: 5000})
			if a.Err != nil || b.Err != nil {
				t.Fatalf("%s/%s: %v %v", wn, sn, a.Err, b.Err)
			}
			if a.Metrics.Cycles != b.Metrics.Cycles || a.Metrics.Copies != b.Metrics.Copies {
				t.Errorf("%s/%s: nondeterministic (%d,%d) vs (%d,%d)", wn, sn,
					a.Metrics.Cycles, a.Metrics.Copies, b.Metrics.Cycles, b.Metrics.Copies)
			}
			entries = append(entries, goldenEntry{wn, sn, a.Metrics.Cycles, a.Metrics.Copies})
			if goldenPrint {
				t.Logf(`{"%s", "%s", %d, %d},`, wn, sn, a.Metrics.Cycles, a.Metrics.Copies)
			}
		}
	}

	// Second pass: coarse sanity bounds that must survive reasonable model
	// tuning (exact values intentionally not pinned to keep the table from
	// rotting; determinism is asserted above).
	byKey := map[string]goldenEntry{}
	for _, e := range entries {
		byKey[e.workload+"/"+e.setup] = e
	}
	if byKey["crafty/one-cluster"].cycles <= byKey["crafty/OP"].cycles {
		t.Error("one-cluster must be slower than OP on crafty")
	}
	if byKey["crafty/one-cluster"].copies != 0 {
		t.Error("one-cluster must produce zero copies")
	}
	if byKey["swim/VC"].copies <= byKey["swim/OP"].copies {
		t.Error("VC must generate more copies than OP on swim")
	}
	if byKey["mcf/OP"].cycles < byKey["crafty/OP"].cycles {
		t.Error("memory-bound mcf must be slower than crafty at equal uops")
	}
}
