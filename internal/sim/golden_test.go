package sim

import (
	"testing"

	"clustersim/internal/workload"
)

// Golden regression values: exact cycle and copy counts for fixed
// (workload, setup) pairs at 5000 micro-ops. The simulator is fully
// deterministic, so any drift here means the machine model changed — either
// intentionally (update the table and note it in EXPERIMENTS.md, since all
// recorded results shift) or by accident (a bug).
//
// Regenerate with: go test ./internal/sim -run TestGolden -golden-print
var goldenPrint = false

type goldenEntry struct {
	workload string
	setup    string
	cycles   int64
	copies   int64
}

func goldenSetups() map[string]Setup {
	return map[string]Setup{
		"OP":          SetupOP(2),
		"one-cluster": SetupOneCluster(2),
		"OB":          SetupOB(2),
		"RHOP":        SetupRHOP(2),
		"VC":          SetupVC(2, 2),
		"VC(2->4)":    SetupVC(2, 4),
	}
}

// goldenExpect pins exact cycle and copy counts recorded before the
// allocation-free hot-loop rewrite (windowed core state + event wheel):
// the rewrite is required to be byte-identical, and any future drift here
// means the machine model changed.
var goldenExpect = []goldenEntry{
	{"crafty", "OP", 3404, 198},
	{"crafty", "one-cluster", 4727, 0},
	{"crafty", "OB", 3904, 2291},
	{"crafty", "RHOP", 4334, 218},
	{"crafty", "VC", 3403, 611},
	{"crafty", "VC(2->4)", 3217, 862},
	{"gzip-1", "OP", 3883, 94},
	{"gzip-1", "one-cluster", 4440, 0},
	{"gzip-1", "OB", 3980, 2113},
	{"gzip-1", "RHOP", 4215, 124},
	{"gzip-1", "VC", 3904, 595},
	{"gzip-1", "VC(2->4)", 3330, 778},
	{"swim", "OP", 3595, 84},
	{"swim", "one-cluster", 4535, 0},
	{"swim", "OB", 4220, 2580},
	{"swim", "RHOP", 4203, 130},
	{"swim", "VC", 3611, 807},
	{"swim", "VC(2->4)", 3583, 1102},
	{"mcf", "OP", 170400, 86},
	{"mcf", "one-cluster", 197956, 0},
	{"mcf", "OB", 168699, 2041},
	{"mcf", "RHOP", 197896, 172},
	{"mcf", "VC", 172188, 362},
	{"mcf", "VC(2->4)", 165235, 519},
}

func TestGoldenDeterminism(t *testing.T) {
	// If this test fails after an intentional model change, re-record the
	// goldenExpect table via the loop that prints current values (set
	// goldenPrint = true locally) and note the shift in EXPERIMENTS.md.
	entries := []goldenEntry{}
	setups := goldenSetups()
	names := []string{"crafty", "gzip-1", "swim", "mcf"}
	setupOrder := []string{"OP", "one-cluster", "OB", "RHOP", "VC", "VC(2->4)"}

	// First pass: run everything twice and require exact equality — the
	// determinism half of the golden contract holds regardless of model
	// evolution.
	for _, wn := range names {
		sp := workload.ByName(wn)
		for _, sn := range setupOrder {
			a := RunOne(sp, setups[sn], RunOptions{NumUops: 5000})
			b := RunOne(sp, setups[sn], RunOptions{NumUops: 5000})
			if a.Err != nil || b.Err != nil {
				t.Fatalf("%s/%s: %v %v", wn, sn, a.Err, b.Err)
			}
			if a.Metrics.Cycles != b.Metrics.Cycles || a.Metrics.Copies != b.Metrics.Copies {
				t.Errorf("%s/%s: nondeterministic (%d,%d) vs (%d,%d)", wn, sn,
					a.Metrics.Cycles, a.Metrics.Copies, b.Metrics.Cycles, b.Metrics.Copies)
			}
			entries = append(entries, goldenEntry{wn, sn, a.Metrics.Cycles, a.Metrics.Copies})
			if goldenPrint {
				t.Logf(`{"%s", "%s", %d, %d},`, wn, sn, a.Metrics.Cycles, a.Metrics.Copies)
			}
		}
	}

	// Second pass: exact equality against the recorded table.
	byKey := map[string]goldenEntry{}
	for _, e := range entries {
		byKey[e.workload+"/"+e.setup] = e
	}
	for _, want := range goldenExpect {
		got, ok := byKey[want.workload+"/"+want.setup]
		if !ok {
			t.Errorf("%s/%s: missing from run", want.workload, want.setup)
			continue
		}
		if got.cycles != want.cycles || got.copies != want.copies {
			t.Errorf("%s/%s: (%d cycles, %d copies), golden (%d, %d) — machine model drifted",
				want.workload, want.setup, got.cycles, got.copies, want.cycles, want.copies)
		}
	}

	// Third pass: coarse sanity bounds that must survive intentional model
	// tuning (these outlive table re-records).
	if byKey["crafty/one-cluster"].cycles <= byKey["crafty/OP"].cycles {
		t.Error("one-cluster must be slower than OP on crafty")
	}
	if byKey["crafty/one-cluster"].copies != 0 {
		t.Error("one-cluster must produce zero copies")
	}
	if byKey["swim/VC"].copies <= byKey["swim/OP"].copies {
		t.Error("VC must generate more copies than OP on swim")
	}
	if byKey["mcf/OP"].cycles < byKey["crafty/OP"].cycles {
		t.Error("memory-bound mcf must be slower than crafty at equal uops")
	}
}
