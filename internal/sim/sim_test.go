package sim

import (
	"testing"

	"clustersim/internal/pipeline"
	"clustersim/internal/workload"
)

func quickOpts() RunOptions { return RunOptions{NumUops: 4000} }

func TestRunOneAllSetups(t *testing.T) {
	sp := workload.ByName("crafty")
	setups := []Setup{
		SetupOP(2), SetupOneCluster(2), SetupOB(2), SetupRHOP(2), SetupVC(2, 2),
	}
	for _, s := range setups {
		res := RunOne(sp, s, quickOpts())
		if res.Err != nil {
			t.Fatalf("%s: %v", s.Label, res.Err)
		}
		if res.Metrics.Uops != 4000 {
			t.Errorf("%s: committed %d uops, want 4000", s.Label, res.Metrics.Uops)
		}
	}
}

func TestSetupLabels(t *testing.T) {
	if got := SetupVC(2, 4).Label; got != "VC(2->4)" {
		t.Errorf("label = %q, want VC(2->4)", got)
	}
	if got := SetupVC(2, 2).Label; got != "VC" {
		t.Errorf("label = %q, want VC", got)
	}
	if got := SetupOP(2).Label; got != "OP" {
		t.Errorf("label = %q", got)
	}
}

func TestRunsAreIsolated(t *testing.T) {
	// Two runs of different setups on the same simpoint must not interfere:
	// annotation happens on clones, so the base program stays clean.
	sp := workload.ByName("gzip-1")
	RunOne(sp, SetupVC(2, 2), quickOpts())
	// Base program must have no annotations.
	count := 0
	for _, b := range sp.Program.Blocks {
		for i := range b.Ops {
			if b.Ops[i].Ann.VC >= 0 || b.Ops[i].Ann.Static >= 0 {
				count++
			}
		}
	}
	if count != 0 {
		t.Errorf("%d ops of the base program were annotated by a run", count)
	}
}

func TestRunOneDeterministic(t *testing.T) {
	sp := workload.ByName("gcc-1")
	a := RunOne(sp, SetupVC(2, 2), quickOpts())
	b := RunOne(sp, SetupVC(2, 2), quickOpts())
	if a.Err != nil || b.Err != nil {
		t.Fatalf("errs: %v %v", a.Err, b.Err)
	}
	if a.Metrics.Cycles != b.Metrics.Cycles || a.Metrics.Copies != b.Metrics.Copies {
		t.Errorf("nondeterministic: %d/%d cycles, %d/%d copies",
			a.Metrics.Cycles, b.Metrics.Cycles, a.Metrics.Copies, b.Metrics.Copies)
	}
}

func TestRunMatrixShapeAndParallelism(t *testing.T) {
	sps := workload.QuickSuite()[:3]
	setups := []Setup{SetupOP(2), SetupVC(2, 2)}
	res := RunMatrix(sps, setups, quickOpts(), 4)
	if len(res) != 3 {
		t.Fatalf("matrix rows = %d", len(res))
	}
	for i, row := range res {
		if len(row) != 2 {
			t.Fatalf("row %d has %d cells", i, len(row))
		}
		for j, cell := range row {
			if cell == nil || cell.Err != nil {
				t.Fatalf("cell %d,%d: %+v", i, j, cell)
			}
			if cell.Simpoint != sps[i] || cell.Setup != setups[j].Label {
				t.Errorf("cell %d,%d misplaced: %s/%s", i, j, cell.Simpoint.Name, cell.Setup)
			}
		}
	}
}

func TestRunMatrixMatchesSequential(t *testing.T) {
	sps := workload.QuickSuite()[:2]
	setups := []Setup{SetupOP(2), SetupRHOP(2)}
	par := RunMatrix(sps, setups, quickOpts(), 8)
	for i, sp := range sps {
		for j, s := range setups {
			seq := RunOne(sp, s, quickOpts())
			if seq.Metrics.Cycles != par[i][j].Metrics.Cycles {
				t.Errorf("%s/%s: parallel %d cycles vs sequential %d",
					sp.Name, s.Label, par[i][j].Metrics.Cycles, seq.Metrics.Cycles)
			}
		}
	}
}

func TestMachineTweak(t *testing.T) {
	sp := workload.ByName("crafty")
	opt := quickOpts()
	opt.MachineTweak = func(cfg *pipeline.Config) { cfg.Cluster.IssueInt = 1 }
	narrow := RunOne(sp, SetupOP(2), opt)
	wide := RunOne(sp, SetupOP(2), quickOpts())
	if narrow.Err != nil || wide.Err != nil {
		t.Fatalf("errs: %v %v", narrow.Err, wide.Err)
	}
	if narrow.Metrics.Cycles <= wide.Metrics.Cycles {
		t.Errorf("halving issue width should cost cycles: %d vs %d",
			narrow.Metrics.Cycles, wide.Metrics.Cycles)
	}
}

func TestComplexityFlowsThrough(t *testing.T) {
	sp := workload.ByName("gzip-1")
	op := RunOne(sp, SetupOP(2), quickOpts())
	vc := RunOne(sp, SetupVC(2, 2), quickOpts())
	if op.Complexity.DependenceChecks == 0 {
		t.Error("OP run recorded no dependence checks")
	}
	if vc.Complexity.DependenceChecks != 0 {
		t.Error("VC run recorded dependence checks")
	}
	if vc.Complexity.MapReads == 0 {
		t.Error("VC run recorded no mapping-table reads")
	}
}

func TestWarmupPlumbing(t *testing.T) {
	sp := workload.ByName("crafty")
	full := RunOne(sp, SetupOP(2), RunOptions{NumUops: 10000})
	warm := RunOne(sp, SetupOP(2), RunOptions{NumUops: 10000, WarmupUops: 4000})
	if full.Err != nil || warm.Err != nil {
		t.Fatalf("errs: %v %v", full.Err, warm.Err)
	}
	if warm.Metrics.Uops >= full.Metrics.Uops {
		t.Errorf("warmup did not reduce counted uops: %d vs %d",
			warm.Metrics.Uops, full.Metrics.Uops)
	}
	if warm.Metrics.Cycles >= full.Metrics.Cycles {
		t.Errorf("warmup did not reduce counted cycles: %d vs %d",
			warm.Metrics.Cycles, full.Metrics.Cycles)
	}
}

func TestSetupScopedLabels(t *testing.T) {
	for _, kind := range []string{"OB", "RHOP", "VC"} {
		s := SetupScoped(kind, 2, 64)
		if s.NumClusters != 2 || s.Pass == nil || s.NewPolicy == nil {
			t.Errorf("%s: malformed scoped setup %+v", kind, s)
		}
		if s.Pass.RegionMaxOps != 64 {
			t.Errorf("%s: region cap not plumbed: %+v", kind, s.Pass)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown kind should panic")
		}
	}()
	SetupScoped("nope", 2, 64)
}

func TestSetupVCChainLabel(t *testing.T) {
	if got := SetupVCChain(2, 2, 16).Label; got != "VC/chain16" {
		t.Errorf("label = %q", got)
	}
	if got := SetupVCChain(2, 4, 8).Label; got != "VC(2->4)/chain8" {
		t.Errorf("label = %q", got)
	}
}
