package sim

import (
	"bytes"
	"context"
	"testing"

	"clustersim/internal/engine"
	"clustersim/internal/steer"
	"clustersim/internal/workload"
)

// determinismSetups is every steering configuration the reports exercise:
// the paper's schemes plus the hardware-heuristic extras of the policy
// survey. A new policy should be added here so the byte-identity contract
// covers it.
func determinismSetups() []Setup {
	bare := func(label string, newPolicy func() steer.Policy) Setup {
		return Setup{Label: label, NumClusters: 2, NewPolicy: newPolicy}
	}
	return []Setup{
		SetupOP(2),
		SetupOPNoStall(2),
		SetupOneCluster(2),
		SetupOB(2),
		SetupRHOP(2),
		SetupVC(2, 2),
		SetupVC(2, 4),
		SetupVCComm(2, 2),
		SetupVCChain(2, 2, 4),
		bare("ADV", func() steer.Policy { return &steer.DependenceBalanced{} }),
		bare("LC", func() steer.Policy { return &steer.LeastLoaded{} }),
		bare("SLC", func() steer.Policy { return &steer.Slice{} }),
		bare("MOD", func() steer.Policy { return &steer.ModN{} }),
	}
}

// TestPolicyDeterminismSuite runs every steering policy on reduced-suite
// points through two independent engines and requires byte-identical
// Result encodings and identical result content keys. This is the
// contract the hot-loop rewrite (windowed state, event wheel) must not
// disturb: identical wire bytes means identical reports, and identical
// keys means a warm content-addressed store still answers every job.
func TestPolicyDeterminismSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-policy suite sweep")
	}
	sps := []*workload.Simpoint{workload.ByName("crafty"), workload.ByName("swim"), workload.ByName("mcf")}
	opts := RunOptions{NumUops: 3000}

	for _, setup := range determinismSetups() {
		setup := setup
		t.Run(setup.Label, func(t *testing.T) {
			t.Parallel()
			engA := engine.New(engine.Options{Parallelism: 1})
			engB := engine.New(engine.Options{Parallelism: 1})
			for _, sp := range sps {
				job := engine.Job{Simpoint: sp, Setup: setup, Opts: opts}
				a := engA.Run(context.Background(), job)
				b := engB.Run(context.Background(), job)
				if a.Err != nil || b.Err != nil {
					t.Fatalf("%s: %v %v", sp.Name, a.Err, b.Err)
				}
				encA, errA := engine.EncodeResult(a)
				encB, errB := engine.EncodeResult(b)
				if errA != nil || errB != nil {
					t.Fatalf("%s: encoding: %v %v", sp.Name, errA, errB)
				}
				if !bytes.Equal(encA, encB) {
					t.Errorf("%s: result encodings differ across engines (nondeterministic simulation)", sp.Name)
				}
				keyA, okA := engA.ResultKey(job)
				keyB, okB := engB.ResultKey(job)
				if okA != okB || keyA != keyB {
					t.Errorf("%s: result keys differ: %q(%v) vs %q(%v)", sp.Name, keyA, okA, keyB, okB)
				}
			}
		})
	}
}

// TestPooledCoreByteIdentity is the core-pooling contract at system level:
// one engine running the full policy suite — its cores flowing through the
// per-shape pool, reset between jobs — must produce byte-identical Result
// encodings to engine.Execute, the pristine fresh-core-per-job reference.
// Every setup here shares one config shape, so beyond the first job the
// engine runs almost entirely on reused cores.
func TestPooledCoreByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-policy suite sweep")
	}
	sps := []*workload.Simpoint{workload.ByName("crafty"), workload.ByName("swim"), workload.ByName("mcf")}
	opts := RunOptions{NumUops: 3000}
	eng := engine.New(engine.Options{Parallelism: 2})

	for _, setup := range determinismSetups() {
		for _, sp := range sps {
			job := engine.Job{Simpoint: sp, Setup: setup, Opts: opts}
			got := eng.Run(context.Background(), job)
			want := engine.Execute(context.Background(), job)
			if got.Err != nil || want.Err != nil {
				t.Fatalf("%s/%s: %v %v", setup.Label, sp.Name, got.Err, want.Err)
			}
			encGot, errG := engine.EncodeResult(got)
			encWant, errW := engine.EncodeResult(want)
			if errG != nil || errW != nil {
				t.Fatalf("%s/%s: encoding: %v %v", setup.Label, sp.Name, errG, errW)
			}
			if !bytes.Equal(encGot, encWant) {
				t.Errorf("%s/%s: pooled-core result differs from fresh-core reference", setup.Label, sp.Name)
			}
		}
	}
	st := eng.Stats()
	if st.CorePoolHits == 0 {
		t.Error("suite ran without a single core-pool hit: pooling inactive")
	}
	if st.CorePoolHits+st.CorePoolMisses != st.Simulations {
		t.Errorf("pool accounting: hits %d + misses %d != simulations %d",
			st.CorePoolHits, st.CorePoolMisses, st.Simulations)
	}
}

// TestResultKeysStableAcrossRewrite pins the exact result content keys of
// a representative job set. A key change silently orphans every blob in
// existing content-addressed stores (all cached results re-simulate), so
// it must be a deliberate decision, not a side effect.
func TestResultKeysStableAcrossRewrite(t *testing.T) {
	eng := engine.New(engine.Options{})
	want := map[string]string{
		"OP":   "result|v1|crafty|s2698591577689284590|h66f41a72d268c871|OP|p|c2|u3000|w0|t",
		"VC":   "result|v1|crafty|s2698591577689284590|h66f41a72d268c871|VC|pVC/2/0/0|c2|u3000|w0|t",
		"OB":   "result|v1|crafty|s2698591577689284590|h66f41a72d268c871|OB|pOB/2/0/0|c2|u3000|w0|t",
		"RHOP": "result|v1|crafty|s2698591577689284590|h66f41a72d268c871|RHOP|pRHOP/2/0/0|c2|u3000|w0|t",
	}
	setups := map[string]Setup{
		"OP": SetupOP(2), "VC": SetupVC(2, 2), "OB": SetupOB(2), "RHOP": SetupRHOP(2),
	}
	for label, setup := range setups {
		job := engine.Job{Simpoint: workload.ByName("crafty"), Setup: setup, Opts: RunOptions{NumUops: 3000}}
		key, ok := eng.ResultKey(job)
		if !ok {
			t.Fatalf("%s: job unexpectedly uncacheable", label)
		}
		if key != want[label] {
			t.Errorf("%s: result key drifted:\n got %q\nwant %q", label, key, want[label])
		}
	}
}
