// Package sim drives whole experiments: it binds a steering configuration
// (compiler pass + runtime policy, paper Table 3) to a machine config
// (paper Table 2), expands simpoint traces, runs the pipeline, and fans a
// matrix of (simpoint × setup) runs across CPU cores.
package sim

import (
	"fmt"
	"runtime"
	"sync"

	"clustersim/internal/partition"
	"clustersim/internal/pipeline"
	"clustersim/internal/prog"
	"clustersim/internal/steer"
	"clustersim/internal/trace"
	"clustersim/internal/workload"
)

// Setup is one steering configuration: how programs are annotated at
// compile time and which runtime policy steers.
type Setup struct {
	// Label is the configuration name used in reports ("OP", "VC(2->4)").
	Label string
	// NumClusters is the physical cluster count of the machine.
	NumClusters int
	// Annotate runs the compiler pass over the (cloned) program; nil for
	// hardware-only configurations.
	Annotate func(*prog.Program)
	// NewPolicy builds a fresh runtime policy instance per run.
	NewPolicy func() steer.Policy
}

// partOpts derives compiler-pass options consistent with the machine.
func partOpts(numTargets int) partition.Options {
	cc := pipeline.DefaultConfig(2).Cluster
	return partition.Options{
		NumVC:       numTargets,
		NumClusters: numTargets,
		IssueInt:    cc.IssueInt,
		IssueFP:     cc.IssueFP,
		CommLatency: 2, // link latency + copy issue slot
	}
}

// SetupOP returns the hardware-only occupancy-aware baseline.
func SetupOP(clusters int) Setup {
	return Setup{
		Label:       "OP",
		NumClusters: clusters,
		NewPolicy:   func() steer.Policy { return &steer.OP{} },
	}
}

// SetupOPNoStall returns the OP variant without stall-over-steer: a full
// preferred cluster always diverts. The ablation harness uses it to
// quantify the stalling heuristic of [15]/[24].
func SetupOPNoStall(clusters int) Setup {
	return Setup{
		Label:       "OP-nostall",
		NumClusters: clusters,
		NewPolicy:   func() steer.Policy { return &steer.OP{NoStall: true} },
	}
}

// SetupOneCluster returns the naive everything-to-cluster-0 configuration.
func SetupOneCluster(clusters int) Setup {
	return Setup{
		Label:       "one-cluster",
		NumClusters: clusters,
		NewPolicy:   func() steer.Policy { return &steer.OneCluster{} },
	}
}

// SetupOB returns the SPDI operation-based software-only configuration.
func SetupOB(clusters int) Setup {
	opts := partOpts(clusters)
	return Setup{
		Label:       "OB",
		NumClusters: clusters,
		Annotate:    func(p *prog.Program) { partition.AnnotateOB(p, opts) },
		NewPolicy:   func() steer.Policy { return &steer.Static{Label: "OB"} },
	}
}

// SetupRHOP returns the RHOP software-only configuration.
func SetupRHOP(clusters int) Setup {
	opts := partOpts(clusters)
	return Setup{
		Label:       "RHOP",
		NumClusters: clusters,
		Annotate:    func(p *prog.Program) { partition.AnnotateRHOP(p, opts) },
		NewPolicy:   func() steer.Policy { return &steer.Static{Label: "RHOP"} },
	}
}

// SetupVC returns the paper's hybrid configuration with numVC virtual
// clusters on a machine with the given physical cluster count. The paper's
// VC(2→4) is SetupVC(2, 4).
func SetupVC(numVC, clusters int) Setup {
	return SetupVCChain(numVC, clusters, 0)
}

// SetupVCComm returns the communication-aware extension of the hybrid
// mapper (the co-design direction of the paper's conclusion): leaders map
// by load plus an estimated copy penalty for the leader's operands.
func SetupVCComm(numVC, clusters int) Setup {
	opts := partOpts(numVC)
	label := "VC-comm"
	if numVC != clusters {
		label = fmt.Sprintf("VC-comm(%d->%d)", numVC, clusters)
	}
	return Setup{
		Label:       label,
		NumClusters: clusters,
		Annotate:    func(p *prog.Program) { partition.AnnotateVC(p, opts) },
		NewPolicy:   func() steer.Policy { return steer.NewVCComm(numVC) },
	}
}

// SetupScoped returns OB/RHOP/VC variants with a capped compiler region
// size, for the compile-window ablation. kind is "OB", "RHOP" or "VC".
func SetupScoped(kind string, clusters, regionMaxOps int) Setup {
	opts := partOpts(clusters)
	opts.RegionMaxOps = regionMaxOps
	label := fmt.Sprintf("%s/region%d", kind, regionMaxOps)
	switch kind {
	case "OB":
		return Setup{
			Label:       label,
			NumClusters: clusters,
			Annotate:    func(p *prog.Program) { partition.AnnotateOB(p, opts) },
			NewPolicy:   func() steer.Policy { return &steer.Static{Label: label} },
		}
	case "RHOP":
		return Setup{
			Label:       label,
			NumClusters: clusters,
			Annotate:    func(p *prog.Program) { partition.AnnotateRHOP(p, opts) },
			NewPolicy:   func() steer.Policy { return &steer.Static{Label: label} },
		}
	case "VC":
		return Setup{
			Label:       label,
			NumClusters: clusters,
			Annotate:    func(p *prog.Program) { partition.AnnotateVC(p, opts) },
			NewPolicy:   func() steer.Policy { return steer.NewVC(opts.NumVC) },
		}
	}
	panic(fmt.Sprintf("sim: unknown scoped setup kind %q", kind))
}

// SetupVCChain is SetupVC with an explicit chain-length cap (zero means the
// partitioner default); the chain-length ablation sweeps it.
func SetupVCChain(numVC, clusters, maxChainLen int) Setup {
	opts := partOpts(numVC)
	opts.MaxChainLen = maxChainLen
	label := "VC"
	if numVC != clusters {
		label = fmt.Sprintf("VC(%d->%d)", numVC, clusters)
	}
	if maxChainLen != 0 {
		label = fmt.Sprintf("%s/chain%d", label, maxChainLen)
	}
	return Setup{
		Label:       label,
		NumClusters: clusters,
		Annotate:    func(p *prog.Program) { partition.AnnotateVC(p, opts) },
		NewPolicy:   func() steer.Policy { return steer.NewVC(numVC) },
	}
}

// RunOptions sizes one simulation.
type RunOptions struct {
	// NumUops is the dynamic trace length per simpoint. Zero means 120000.
	NumUops int
	// WarmupUops excludes the first N committed micro-ops from the
	// metrics (cache/predictor warmup).
	WarmupUops int
	// MachineTweak optionally mutates the machine config (ablations).
	MachineTweak func(*pipeline.Config)
}

func (o RunOptions) withDefaults() RunOptions {
	if o.NumUops == 0 {
		o.NumUops = 120_000
	}
	return o
}

// Result is the outcome of one (simpoint, setup) run.
type Result struct {
	// Simpoint identifies the workload.
	Simpoint *workload.Simpoint
	// Setup is the configuration label.
	Setup string
	// Metrics are the pipeline metrics.
	Metrics *pipeline.Metrics
	// Complexity is the steering-logic accounting.
	Complexity steer.Complexity
	// Err is non-nil if the run failed.
	Err error
}

// RunOne executes one simulation: clone, annotate, expand, run.
func RunOne(sp *workload.Simpoint, setup Setup, opt RunOptions) *Result {
	opt = opt.withDefaults()
	p := sp.Program.Clone()
	p.ClearAnnotations()
	if setup.Annotate != nil {
		setup.Annotate(p)
	}
	tr := trace.Expand(p, trace.Options{NumUops: opt.NumUops, Seed: sp.Seed})
	cfg := pipeline.DefaultConfig(setup.NumClusters)
	cfg.WarmupUops = int64(opt.WarmupUops)
	if opt.MachineTweak != nil {
		opt.MachineTweak(&cfg)
	}
	pol := setup.NewPolicy()
	core, err := pipeline.NewCore(cfg, pol, tr)
	if err != nil {
		return &Result{Simpoint: sp, Setup: setup.Label, Err: err}
	}
	m, err := core.Run()
	return &Result{
		Simpoint:   sp,
		Setup:      setup.Label,
		Metrics:    m,
		Complexity: core.ComplexityOf(),
		Err:        err,
	}
}

// RunMatrix runs every (simpoint × setup) pair across a worker pool and
// returns results indexed as [simpoint][setup], matching the input order.
// Parallelism ≤ 0 means GOMAXPROCS.
func RunMatrix(sps []*workload.Simpoint, setups []Setup, opt RunOptions, parallelism int) [][]*Result {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	type job struct{ si, ci int }
	jobs := make(chan job)
	results := make([][]*Result, len(sps))
	for i := range results {
		results[i] = make([]*Result, len(setups))
	}
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				results[j.si][j.ci] = RunOne(sps[j.si], setups[j.ci], opt)
			}
		}()
	}
	for si := range sps {
		for ci := range setups {
			jobs <- job{si, ci}
		}
	}
	close(jobs)
	wg.Wait()
	return results
}
