// Package sim binds steering configurations (compiler pass + runtime
// policy, paper Table 3) to machine configs (paper Table 2) and runs them.
// The heavy lifting — worker pooling, cancellation and artifact caching —
// lives in internal/engine; RunOne and RunMatrix are thin, API-compatible
// wrappers over it, kept for callers that need one-shot blocking runs
// without managing an engine instance.
package sim

import (
	"context"
	"fmt"

	"clustersim/internal/engine"
	"clustersim/internal/partition"
	"clustersim/internal/steer"
	"clustersim/internal/workload"
)

// Setup is one steering configuration: how programs are annotated at
// compile time and which runtime policy steers.
type Setup = engine.Setup

// Pass declares a compiler pass for a Setup; the engine derives its
// options from the machine configuration actually being run.
type Pass = engine.Pass

// RunOptions sizes one simulation.
type RunOptions = engine.RunOptions

// Result is the outcome of one (simpoint, setup) run.
type Result = engine.Result

// SetupOP returns the hardware-only occupancy-aware baseline.
func SetupOP(clusters int) Setup {
	return Setup{
		Label:       "OP",
		NumClusters: clusters,
		Spec:        &engine.SetupSpec{Kind: "OP", NumClusters: clusters},
		NewPolicy:   func() steer.Policy { return &steer.OP{} },
	}
}

// SetupOPNoStall returns the OP variant without stall-over-steer: a full
// preferred cluster always diverts. The ablation harness uses it to
// quantify the stalling heuristic of [15]/[24].
func SetupOPNoStall(clusters int) Setup {
	return Setup{
		Label:       "OP-nostall",
		NumClusters: clusters,
		Spec:        &engine.SetupSpec{Kind: "OP-nostall", NumClusters: clusters},
		NewPolicy:   func() steer.Policy { return &steer.OP{NoStall: true} },
	}
}

// SetupOneCluster returns the naive everything-to-cluster-0 configuration.
func SetupOneCluster(clusters int) Setup {
	return Setup{
		Label:       "one-cluster",
		NumClusters: clusters,
		Spec:        &engine.SetupSpec{Kind: "one-cluster", NumClusters: clusters},
		NewPolicy:   func() steer.Policy { return &steer.OneCluster{} },
	}
}

// SetupOB returns the SPDI operation-based software-only configuration.
func SetupOB(clusters int) Setup {
	return Setup{
		Label:       "OB",
		NumClusters: clusters,
		Pass:        &Pass{Kind: "OB", NumTargets: clusters, Run: partition.AnnotateOB},
		Spec:        &engine.SetupSpec{Kind: "OB", NumClusters: clusters},
		NewPolicy:   func() steer.Policy { return &steer.Static{Label: "OB"} },
	}
}

// SetupRHOP returns the RHOP software-only configuration.
func SetupRHOP(clusters int) Setup {
	return Setup{
		Label:       "RHOP",
		NumClusters: clusters,
		Pass:        &Pass{Kind: "RHOP", NumTargets: clusters, Run: partition.AnnotateRHOP},
		Spec:        &engine.SetupSpec{Kind: "RHOP", NumClusters: clusters},
		NewPolicy:   func() steer.Policy { return &steer.Static{Label: "RHOP"} },
	}
}

// SetupVC returns the paper's hybrid configuration with numVC virtual
// clusters on a machine with the given physical cluster count. The paper's
// VC(2→4) is SetupVC(2, 4).
func SetupVC(numVC, clusters int) Setup {
	return SetupVCChain(numVC, clusters, 0)
}

// SetupVCComm returns the communication-aware extension of the hybrid
// mapper (the co-design direction of the paper's conclusion): leaders map
// by load plus an estimated copy penalty for the leader's operands.
func SetupVCComm(numVC, clusters int) Setup {
	label := "VC-comm"
	if numVC != clusters {
		label = fmt.Sprintf("VC-comm(%d->%d)", numVC, clusters)
	}
	return Setup{
		Label:       label,
		NumClusters: clusters,
		Pass:        &Pass{Kind: "VC", NumTargets: numVC, Run: partition.AnnotateVC},
		Spec:        &engine.SetupSpec{Kind: "VC-comm", NumClusters: clusters, NumVC: numVC},
		NewPolicy:   func() steer.Policy { return steer.NewVCComm(numVC) },
	}
}

// SetupScoped returns OB/RHOP/VC variants with a capped compiler region
// size, for the compile-window ablation. kind is "OB", "RHOP" or "VC".
func SetupScoped(kind string, clusters, regionMaxOps int) Setup {
	label := fmt.Sprintf("%s/region%d", kind, regionMaxOps)
	switch kind {
	case "OB":
		return Setup{
			Label:       label,
			NumClusters: clusters,
			Pass:        &Pass{Kind: "OB", NumTargets: clusters, RegionMaxOps: regionMaxOps, Run: partition.AnnotateOB},
			Spec:        &engine.SetupSpec{Kind: "OB", NumClusters: clusters, RegionMaxOps: regionMaxOps},
			NewPolicy:   func() steer.Policy { return &steer.Static{Label: label} },
		}
	case "RHOP":
		return Setup{
			Label:       label,
			NumClusters: clusters,
			Pass:        &Pass{Kind: "RHOP", NumTargets: clusters, RegionMaxOps: regionMaxOps, Run: partition.AnnotateRHOP},
			Spec:        &engine.SetupSpec{Kind: "RHOP", NumClusters: clusters, RegionMaxOps: regionMaxOps},
			NewPolicy:   func() steer.Policy { return &steer.Static{Label: label} },
		}
	case "VC":
		return Setup{
			Label:       label,
			NumClusters: clusters,
			Pass:        &Pass{Kind: "VC", NumTargets: clusters, RegionMaxOps: regionMaxOps, Run: partition.AnnotateVC},
			Spec:        &engine.SetupSpec{Kind: "VC", NumClusters: clusters, RegionMaxOps: regionMaxOps},
			NewPolicy:   func() steer.Policy { return steer.NewVC(clusters) },
		}
	}
	panic(fmt.Sprintf("sim: unknown scoped setup kind %q", kind))
}

// SetupVCChain is SetupVC with an explicit chain-length cap (zero means the
// partitioner default); the chain-length ablation sweeps it.
func SetupVCChain(numVC, clusters, maxChainLen int) Setup {
	label := "VC"
	if numVC != clusters {
		label = fmt.Sprintf("VC(%d->%d)", numVC, clusters)
	}
	if maxChainLen != 0 {
		label = fmt.Sprintf("%s/chain%d", label, maxChainLen)
	}
	return Setup{
		Label:       label,
		NumClusters: clusters,
		Pass:        &Pass{Kind: "VC", NumTargets: numVC, MaxChainLen: maxChainLen, Run: partition.AnnotateVC},
		Spec:        &engine.SetupSpec{Kind: "VC", NumClusters: clusters, NumVC: numVC, MaxChainLen: maxChainLen},
		NewPolicy:   func() steer.Policy { return steer.NewVC(numVC) },
	}
}

// RunOne executes one simulation from scratch: clone, annotate, expand,
// run. It never serves from or populates caches — engine.Execute is the
// reference run path cached engine results are verified against.
func RunOne(sp *workload.Simpoint, setup Setup, opt RunOptions) *Result {
	return engine.Execute(context.Background(), engine.Job{Simpoint: sp, Setup: setup, Opts: opt})
}

// RunMatrix runs every (simpoint × setup) pair across a worker pool and
// returns results indexed as [simpoint][setup], matching the input order.
// Parallelism ≤ 0 means GOMAXPROCS. Each call uses a private engine, so
// annotated programs and traces are shared between the matrix's own cells
// but nothing persists across calls; share an explicit engine.Engine (or
// any engine.Runner) via RunMatrixOn to cache across invocations.
func RunMatrix(sps []*workload.Simpoint, setups []Setup, opt RunOptions, parallelism int) [][]*Result {
	eng := engine.New(engine.Options{Parallelism: parallelism})
	res, _ := eng.RunMatrix(context.Background(), sps, setups, opt)
	return res
}

// RunOneOn executes one simulation on any Runner — a shared local engine
// or a remote clusterd client — with cancellation.
func RunOneOn(ctx context.Context, r engine.Runner, sp *workload.Simpoint, setup Setup, opt RunOptions) *Result {
	return r.Run(ctx, engine.Job{Simpoint: sp, Setup: setup, Opts: opt})
}

// RunMatrixOn fans the (simpoint × setup) matrix through any Runner;
// results are indexed [simpoint][setup]. Where the simulations execute —
// this process or a clusterd fleet — is entirely the runner's concern.
func RunMatrixOn(ctx context.Context, r engine.Runner, sps []*workload.Simpoint, setups []Setup, opt RunOptions) ([][]*Result, error) {
	return engine.RunMatrixOn(ctx, r, sps, setups, opt)
}
