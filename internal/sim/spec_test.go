package sim

import (
	"strings"
	"testing"

	"clustersim/internal/engine"
	"clustersim/internal/pipeline"
	"clustersim/internal/prog"
	"clustersim/internal/uarch"
	"clustersim/internal/workload"
)

// Every declarative setup constructor must survive the wire round trip:
// Job -> SpecFromJob -> JobFromSpec must land on the same configuration,
// including the engine's result-cache identity — that is what makes a
// remote worker's cached result interchangeable with a local one.
func TestSpecJobRoundTrip(t *testing.T) {
	sp := workload.ByName("gzip-1")
	setups := []Setup{
		SetupOP(2), SetupOP(4),
		SetupOPNoStall(2),
		SetupOneCluster(2),
		SetupOB(2), SetupRHOP(4),
		SetupVC(2, 2), SetupVC(2, 4), SetupVCChain(2, 2, 3),
		SetupVCComm(2, 2), SetupVCComm(2, 4),
		SetupScoped("OB", 2, 64), SetupScoped("RHOP", 2, 128), SetupScoped("VC", 2, 64),
	}
	eng := engine.New(engine.Options{})
	for _, setup := range setups {
		job := engine.Job{Simpoint: sp, Setup: setup, Opts: RunOptions{NumUops: 9000, WarmupUops: 500}}
		spec, err := SpecFromJob(job)
		if err != nil {
			t.Errorf("%s: SpecFromJob: %v", setup.Label, err)
			continue
		}
		back, err := JobFromSpec(spec)
		if err != nil {
			t.Errorf("%s: JobFromSpec: %v", setup.Label, err)
			continue
		}
		if back.Setup.Label != setup.Label {
			t.Errorf("%s: round-tripped label %q", setup.Label, back.Setup.Label)
		}
		if back.Setup.NumClusters != setup.NumClusters {
			t.Errorf("%s: round-tripped clusters %d, want %d", setup.Label, back.Setup.NumClusters, setup.NumClusters)
		}
		if back.Opts.NumUops != 9000 || back.Opts.WarmupUops != 500 {
			t.Errorf("%s: round-tripped opts %+v", setup.Label, back.Opts)
		}
		k1, ok1 := eng.ResultKey(job)
		k2, ok2 := eng.ResultKey(back)
		if !ok1 || !ok2 || k1 != k2 {
			t.Errorf("%s: result keys diverge after round trip:\n  %q (%v)\n  %q (%v)", setup.Label, k1, ok1, k2, ok2)
		}
	}
}

// Jobs with no declarative wire form must be rejected with an error that
// names the constraint, so hybrid runners can route them locally.
func TestSpecFromJobRejections(t *testing.T) {
	sp := workload.ByName("gzip-1")
	cases := []struct {
		name string
		job  engine.Job
		want string
	}{
		{
			name: "custom annotate closure",
			job: engine.Job{Simpoint: sp, Setup: Setup{
				Label: "custom", NumClusters: 2,
				Annotate:  func(*prog.Program) {},
				NewPolicy: SetupOP(2).NewPolicy,
			}},
			want: "no declarative spec",
		},
		{
			name: "hand-built setup without spec",
			job: engine.Job{Simpoint: sp, Setup: Setup{
				Label: "bare", NumClusters: 2, NewPolicy: SetupOP(2).NewPolicy,
			}},
			want: "no declarative spec",
		},
		{
			name: "setup mutated after construction",
			job: engine.Job{Simpoint: sp, Setup: func() Setup {
				s := SetupOP(2)
				s.NumClusters = 4 // stale Spec still says 2
				return s
			}()},
			want: "modified after construction",
		},
		{
			name: "machine tweak closure",
			job: engine.Job{Simpoint: sp, Setup: SetupOP(2),
				Opts: RunOptions{MachineTweak: func(cfg *pipeline.Config) {}, TweakKey: "x"}},
			want: "machine-tweak",
		},
		{
			name: "custom workload",
			job: engine.Job{Simpoint: &workload.Simpoint{
				Name: "homegrown", Bench: "homegrown", Weight: 1, Seed: 7,
				Program: sp.Program,
			}, Setup: SetupOP(2)},
			want: "not a suite member",
		},
		{
			name: "suite name, different program",
			job: engine.Job{Simpoint: &workload.Simpoint{
				Name: "gzip-1", Bench: "gzip", Weight: 1, Seed: sp.Seed,
				Program: differentProgram(),
			}, Setup: SetupOP(2)},
			want: "does not match the suite",
		},
	}
	for _, tc := range cases {
		_, err := SpecFromJob(tc.job)
		if err == nil {
			t.Errorf("%s: SpecFromJob accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// differentProgram builds a tiny program that is definitely not the
// suite's gzip-1 (different fingerprint).
func differentProgram() *prog.Program {
	b := prog.NewBuilder("gzip-1")
	b.Int(uarch.OpAdd, uarch.IntReg(1), uarch.IntReg(0), uarch.IntReg(0))
	b.Jump(0)
	return b.MustBuild()
}
