package ddg

// Criticality holds the critical-path metrics of a graph. The paper (§4.2)
// computes criticality with two DDG traversals: one for depth, one for
// height; criticality of a node is their sum, and the nodes with the
// maximum criticality form the critical paths.
type Criticality struct {
	// Depth[i] is the longest-path distance (in cycles of producer
	// latencies) from any root to node i; roots have depth 0.
	Depth []int
	// Height[i] is the longest-path length from node i to any leaf,
	// including node i's own latency.
	Height []int
	// Crit[i] = Depth[i] + Height[i]: the length of the longest path
	// through node i.
	Crit []int
	// CPLength is the critical path length of the graph (max over Crit).
	CPLength int
}

// ComputeCriticality runs the two traversals. Nodes are in topological
// order by construction, so a forward and a backward sweep suffice.
func ComputeCriticality(g *Graph) *Criticality {
	n := g.Len()
	c := &Criticality{
		Depth:  make([]int, n),
		Height: make([]int, n),
		Crit:   make([]int, n),
	}
	// Forward sweep: depth.
	for i := 0; i < n; i++ {
		d := 0
		for _, e := range g.Nodes[i].Preds {
			if v := c.Depth[e.To] + e.Latency; v > d {
				d = v
			}
		}
		c.Depth[i] = d
	}
	// Backward sweep: height.
	for i := n - 1; i >= 0; i-- {
		h := g.Nodes[i].Latency
		for _, e := range g.Nodes[i].Succs {
			if v := c.Height[e.To] + g.Nodes[i].Latency; v > h {
				h = v
			}
		}
		c.Height[i] = h
	}
	for i := 0; i < n; i++ {
		c.Crit[i] = c.Depth[i] + c.Height[i]
		if c.Crit[i] > c.CPLength {
			c.CPLength = c.Crit[i]
		}
	}
	return c
}

// Slack returns CPLength − Crit[i]: zero for nodes on a critical path.
func (c *Criticality) Slack(i int) int { return c.CPLength - c.Crit[i] }

// EdgeSlack returns the scheduling freedom of edge (u,v): how many cycles
// the edge could stretch (e.g. by an inter-cluster copy) without growing
// the critical path. Zero means the edge lies on a critical path.
func (c *Criticality) EdgeSlack(g *Graph, u, v int) int {
	lat := g.Nodes[u].Latency
	through := c.Depth[u] + lat + c.Height[v]
	s := c.CPLength - through
	if s < 0 {
		return 0
	}
	return s
}

// CriticalNodes returns the indices of all nodes on a critical path.
func (c *Criticality) CriticalNodes() []int {
	var out []int
	for i, cr := range c.Crit {
		if cr == c.CPLength {
			out = append(out, i)
		}
	}
	return out
}
