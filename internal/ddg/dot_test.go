package ddg

import (
	"strings"
	"testing"

	"clustersim/internal/prog"
	"clustersim/internal/uarch"
)

func dotRegion(t *testing.T) *prog.Region {
	t.Helper()
	b := prog.NewBuilder("dot")
	b.Int(uarch.OpAdd, uarch.IntReg(1), uarch.IntReg(1), uarch.IntReg(1))
	b.Int(uarch.OpMul, uarch.IntReg(2), uarch.IntReg(1), uarch.IntReg(1))
	mem := prog.MemRef{Pattern: prog.MemStride, Stream: 1, StrideBytes: 8, WorkingSet: 4096}
	b.Store(uarch.IntReg(2), uarch.IntReg(0), mem)
	b.Load(uarch.IntReg(3), uarch.IntReg(0), mem)
	p := b.MustBuild()
	return prog.FormRegions(p, prog.RegionOptions{})[0]
}

func TestDotBasicStructure(t *testing.T) {
	g := Build(dotRegion(t))
	out := Dot(g, DotOptions{Title: "test"})
	for _, want := range []string{
		`digraph "test"`, "n0 ", "n1 ", "n0 -> n1", "}",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// Memory ordering edge (store→load same stream) must be dashed.
	if !strings.Contains(out, "style=dashed") {
		t.Error("missing dashed memory edge")
	}
}

func TestDotVCColoring(t *testing.T) {
	r := dotRegion(t)
	i := 0
	r.ForEachOp(func(_ int, op *prog.StaticOp) {
		op.Ann.VC = i % 2
		op.Ann.Leader = i == 0
		i++
	})
	g := Build(r)
	out := Dot(g, DotOptions{ShowVC: true})
	if !strings.Contains(out, "lightblue") || !strings.Contains(out, "lightsalmon") {
		t.Errorf("VC colors missing:\n%s", out)
	}
	if !strings.Contains(out, "penwidth=3") {
		t.Error("leader emphasis missing")
	}
}

func TestDotCriticalMarking(t *testing.T) {
	g := Build(dotRegion(t))
	out := Dot(g, DotOptions{MarkCritical: true})
	if !strings.Contains(out, "peripheries=2") {
		t.Error("critical-path marking missing")
	}
}

func TestDotStaticColoring(t *testing.T) {
	r := dotRegion(t)
	r.ForEachOp(func(_ int, op *prog.StaticOp) { op.Ann.Static = 1 })
	g := Build(r)
	out := Dot(g, DotOptions{ShowStatic: true})
	if !strings.Contains(out, "lightsalmon") {
		t.Errorf("static coloring missing:\n%s", out)
	}
}
