// Package ddg builds data dependence graphs over compiler regions and
// computes the critical-path metrics (depth, height, criticality, slack)
// that drive both the paper's virtual-cluster partitioner and the RHOP
// baseline.
package ddg

import (
	"clustersim/internal/prog"
	"clustersim/internal/uarch"
)

// ExpectedLoadLatency is the compile-time estimate of a load's total
// latency (address generation + L1 hit). Compilers do not know hit/miss
// behaviour, so the estimate assumes a first-level hit — exactly the
// inaccuracy the paper argues software-only steering suffers from.
const ExpectedLoadLatency = 4

// Edge is a dependence edge to a consumer node.
type Edge struct {
	// To is the consumer node index.
	To int
	// Latency is the producer→consumer latency in cycles.
	Latency int
	// Mem marks a memory-ordering edge (store→load same stream) rather
	// than a register dataflow edge.
	Mem bool
}

// Node is one static op in the region with its dependence edges.
type Node struct {
	// Op points at the region's static op (annotations are written
	// through it).
	Op *prog.StaticOp
	// Index is the node's region-wide op index.
	Index int
	// Latency is the compile-time latency estimate for the op.
	Latency int
	// Succs are outgoing dependence edges.
	Succs []Edge
	// Preds are incoming dependence edges (Edge.To = predecessor index).
	Preds []Edge
}

// Graph is the data dependence graph of one region. Node order equals
// region op order, so the graph is topologically sorted by construction
// (dependences only point forward in a single region walk).
type Graph struct {
	Nodes []Node
}

// Build constructs the DDG for a region: register true dependences via a
// last-writer table, plus memory serialization edges between stores and
// later loads/stores of the same stream.
func Build(r *prog.Region) *Graph {
	g := &Graph{Nodes: make([]Node, 0, r.NumOps())}
	r.ForEachOp(func(idx int, op *prog.StaticOp) {
		g.Nodes = append(g.Nodes, Node{Op: op, Index: idx, Latency: estLatency(op)})
	})

	lastWriter := make(map[uarch.Reg]int, uarch.NumRegs)
	lastStore := make(map[int]int) // stream -> node index of last store
	for i := range g.Nodes {
		op := g.Nodes[i].Op
		for _, src := range [2]uarch.Reg{op.Src1, op.Src2} {
			if src == uarch.RegNone {
				continue
			}
			if w, ok := lastWriter[src]; ok {
				g.addEdge(w, i, false)
			}
		}
		if op.IsMem() {
			if op.Opcode == uarch.OpLoad {
				if s, ok := lastStore[op.Mem.Stream]; ok {
					g.addEdge(s, i, true)
				}
			} else { // store
				if s, ok := lastStore[op.Mem.Stream]; ok {
					g.addEdge(s, i, true)
				}
				lastStore[op.Mem.Stream] = i
			}
		}
		if op.Dst != uarch.RegNone {
			lastWriter[op.Dst] = i
		}
	}
	return g
}

func (g *Graph) addEdge(from, to int, mem bool) {
	// Skip duplicate edges (e.g. src1 == src2).
	for _, e := range g.Nodes[from].Succs {
		if e.To == to {
			return
		}
	}
	lat := g.Nodes[from].Latency
	g.Nodes[from].Succs = append(g.Nodes[from].Succs, Edge{To: to, Latency: lat, Mem: mem})
	g.Nodes[to].Preds = append(g.Nodes[to].Preds, Edge{To: from, Latency: lat, Mem: mem})
}

// estLatency is the compile-time latency estimate for an op.
func estLatency(op *prog.StaticOp) int {
	if op.Opcode == uarch.OpLoad {
		return ExpectedLoadLatency
	}
	return op.Opcode.Latency()
}

// Len returns the node count.
func (g *Graph) Len() int { return len(g.Nodes) }

// Roots returns the indices of nodes with no predecessors.
func (g *Graph) Roots() []int {
	var roots []int
	for i := range g.Nodes {
		if len(g.Nodes[i].Preds) == 0 {
			roots = append(roots, i)
		}
	}
	return roots
}

// Leaves returns the indices of nodes with no successors.
func (g *Graph) Leaves() []int {
	var leaves []int
	for i := range g.Nodes {
		if len(g.Nodes[i].Succs) == 0 {
			leaves = append(leaves, i)
		}
	}
	return leaves
}
