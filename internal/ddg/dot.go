package ddg

import (
	"fmt"
	"strings"
)

// DotOptions controls DOT rendering.
type DotOptions struct {
	// Title labels the graph.
	Title string
	// ShowVC colors nodes by their VC annotation and bolds chain leaders
	// (requires an annotated region).
	ShowVC bool
	// ShowStatic colors nodes by their static cluster annotation.
	ShowStatic bool
	// MarkCritical draws zero-slack nodes with doubled borders.
	MarkCritical bool
}

// vcColors cycles per-partition fill colors (Graphviz X11 names).
var vcColors = []string{"lightblue", "lightsalmon", "palegreen", "plum",
	"khaki", "lightpink", "lightcyan", "wheat"}

// Dot renders the graph in Graphviz DOT format: one node per static op
// labeled with its index and opcode, dependence edges solid, memory
// ordering edges dashed. The experiment tooling uses it to inspect
// partitions visually (`tracegen -show ddg`).
func Dot(g *Graph, opts DotOptions) string {
	var b strings.Builder
	title := opts.Title
	if title == "" {
		title = "ddg"
	}
	fmt.Fprintf(&b, "digraph %q {\n", title)
	b.WriteString("  rankdir=TB;\n  node [shape=box, style=filled, fillcolor=white];\n")

	var crit *Criticality
	if opts.MarkCritical {
		crit = ComputeCriticality(g)
	}
	for i := range g.Nodes {
		n := &g.Nodes[i]
		label := fmt.Sprintf("%d: %s", i, n.Op.Opcode)
		if n.Op.Dst.Valid() {
			label += " " + n.Op.Dst.String()
		}
		attrs := []string{fmt.Sprintf("label=%q", label)}
		switch {
		case opts.ShowVC && n.Op.Ann.VC >= 0:
			attrs = append(attrs, fmt.Sprintf("fillcolor=%q", vcColors[n.Op.Ann.VC%len(vcColors)]))
			if n.Op.Ann.Leader {
				attrs = append(attrs, "penwidth=3")
			}
		case opts.ShowStatic && n.Op.Ann.Static >= 0:
			attrs = append(attrs, fmt.Sprintf("fillcolor=%q", vcColors[n.Op.Ann.Static%len(vcColors)]))
		}
		if crit != nil && crit.Slack(i) == 0 {
			attrs = append(attrs, "peripheries=2")
		}
		fmt.Fprintf(&b, "  n%d [%s];\n", i, strings.Join(attrs, ", "))
	}
	for i := range g.Nodes {
		for _, e := range g.Nodes[i].Succs {
			style := ""
			if e.Mem {
				style = " [style=dashed]"
			}
			fmt.Fprintf(&b, "  n%d -> n%d%s;\n", i, e.To, style)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
