package ddg

import (
	"math/rand"
	"testing"
	"testing/quick"

	"clustersim/internal/prog"
	"clustersim/internal/uarch"
)

// regionOf builds a single-region program from a list of ops.
func regionOf(t *testing.T, ops ...prog.StaticOp) *prog.Region {
	t.Helper()
	b := prog.NewBuilder("t")
	for _, op := range ops {
		b.Op(op)
	}
	p := b.MustBuild()
	regions := prog.FormRegions(p, prog.RegionOptions{})
	if len(regions) != 1 {
		t.Fatalf("expected 1 region, got %d", len(regions))
	}
	return regions[0]
}

func add(dst, s1, s2 int) prog.StaticOp {
	return prog.StaticOp{Opcode: uarch.OpAdd, Dst: uarch.IntReg(dst), Src1: uarch.IntReg(s1), Src2: uarch.IntReg(s2)}
}

func TestBuildChainDependences(t *testing.T) {
	// r1 = r0+r0; r2 = r1+r1; r3 = r2+r2 — a pure chain.
	r := regionOf(t, add(1, 0, 0), add(2, 1, 1), add(3, 2, 2))
	g := Build(r)
	if g.Len() != 3 {
		t.Fatalf("Len = %d, want 3", g.Len())
	}
	if len(g.Nodes[0].Succs) != 1 || g.Nodes[0].Succs[0].To != 1 {
		t.Errorf("node 0 succs = %+v, want edge to 1", g.Nodes[0].Succs)
	}
	if len(g.Nodes[1].Succs) != 1 || g.Nodes[1].Succs[0].To != 2 {
		t.Errorf("node 1 succs = %+v, want edge to 2", g.Nodes[1].Succs)
	}
	if len(g.Nodes[2].Succs) != 0 {
		t.Errorf("node 2 should be a leaf")
	}
}

func TestBuildNoDuplicateEdgeForRepeatedSource(t *testing.T) {
	// Consumer uses the same producer twice (src1 == src2).
	r := regionOf(t, add(1, 0, 0), add(2, 1, 1))
	g := Build(r)
	if len(g.Nodes[0].Succs) != 1 {
		t.Errorf("duplicate edge created: %+v", g.Nodes[0].Succs)
	}
}

func TestBuildIndependentOpsNoEdges(t *testing.T) {
	r := regionOf(t, add(1, 0, 0), add(2, 0, 0), add(3, 0, 0))
	g := Build(r)
	for i := range g.Nodes {
		if len(g.Nodes[i].Succs) != 0 || len(g.Nodes[i].Preds) != 0 {
			t.Errorf("node %d unexpectedly has edges", i)
		}
	}
	if len(g.Roots()) != 3 || len(g.Leaves()) != 3 {
		t.Errorf("roots=%d leaves=%d, want 3/3", len(g.Roots()), len(g.Leaves()))
	}
}

func TestMemoryOrderingEdges(t *testing.T) {
	mem := prog.MemRef{Pattern: prog.MemStride, Stream: 7, StrideBytes: 8, WorkingSet: 1 << 12}
	st := prog.StaticOp{Opcode: uarch.OpStore, Dst: uarch.RegNone, Src1: uarch.IntReg(1), Src2: uarch.IntReg(2), Mem: mem}
	ld := prog.StaticOp{Opcode: uarch.OpLoad, Dst: uarch.IntReg(3), Src1: uarch.IntReg(2), Src2: uarch.RegNone, Mem: mem}
	r := regionOf(t, st, ld)
	g := Build(r)
	found := false
	for _, e := range g.Nodes[0].Succs {
		if e.To == 1 && e.Mem {
			found = true
		}
	}
	if !found {
		t.Error("missing store→load memory edge on shared stream")
	}
}

func TestNoMemoryEdgeAcrossStreams(t *testing.T) {
	memA := prog.MemRef{Pattern: prog.MemStride, Stream: 1, StrideBytes: 8, WorkingSet: 1 << 12}
	memB := prog.MemRef{Pattern: prog.MemStride, Stream: 2, StrideBytes: 8, WorkingSet: 1 << 12}
	st := prog.StaticOp{Opcode: uarch.OpStore, Dst: uarch.RegNone, Src1: uarch.IntReg(1), Src2: uarch.IntReg(2), Mem: memA}
	ld := prog.StaticOp{Opcode: uarch.OpLoad, Dst: uarch.IntReg(3), Src1: uarch.IntReg(4), Src2: uarch.RegNone, Mem: memB}
	r := regionOf(t, st, ld)
	g := Build(r)
	for _, e := range g.Nodes[0].Succs {
		if e.To == 1 && e.Mem {
			t.Error("memory edge across distinct streams")
		}
	}
}

func TestGraphIsTopologicallyOrdered(t *testing.T) {
	r := regionOf(t, add(1, 0, 0), add(2, 1, 0), add(3, 2, 1), add(4, 3, 2))
	g := Build(r)
	for i := range g.Nodes {
		for _, e := range g.Nodes[i].Succs {
			if e.To <= i {
				t.Errorf("edge %d→%d goes backward", i, e.To)
			}
		}
	}
}

func TestCriticalityChain(t *testing.T) {
	// Chain of three adds (1 cycle each): CP length = 3.
	r := regionOf(t, add(1, 0, 0), add(2, 1, 1), add(3, 2, 2))
	g := Build(r)
	c := ComputeCriticality(g)
	if c.CPLength != 3 {
		t.Fatalf("CPLength = %d, want 3", c.CPLength)
	}
	wantDepth := []int{0, 1, 2}
	wantHeight := []int{3, 2, 1}
	for i := range g.Nodes {
		if c.Depth[i] != wantDepth[i] {
			t.Errorf("Depth[%d] = %d, want %d", i, c.Depth[i], wantDepth[i])
		}
		if c.Height[i] != wantHeight[i] {
			t.Errorf("Height[%d] = %d, want %d", i, c.Height[i], wantHeight[i])
		}
		if c.Slack(i) != 0 {
			t.Errorf("Slack[%d] = %d, want 0 (pure chain)", i, c.Slack(i))
		}
	}
	if len(c.CriticalNodes()) != 3 {
		t.Errorf("CriticalNodes = %v, want all 3", c.CriticalNodes())
	}
}

func TestCriticalitySideChainHasSlack(t *testing.T) {
	// Long chain r1←r2←r3 plus an independent single op writing r4 consumed
	// at the end: the side op has slack.
	ops := []prog.StaticOp{
		add(1, 0, 0), // 0: chain
		add(2, 1, 1), // 1: chain
		add(4, 0, 0), // 2: side
		add(3, 2, 4), // 3: joins both
	}
	r := regionOf(t, ops...)
	g := Build(r)
	c := ComputeCriticality(g)
	if c.Slack(2) == 0 {
		t.Error("side-chain op should have positive slack")
	}
	if c.Slack(0) != 0 || c.Slack(1) != 0 || c.Slack(3) != 0 {
		t.Error("main chain ops should have zero slack")
	}
	if got := c.EdgeSlack(g, 2, 3); got == 0 {
		t.Error("edge from side op should have positive slack")
	}
	if got := c.EdgeSlack(g, 1, 3); got != 0 {
		t.Errorf("critical edge slack = %d, want 0", got)
	}
}

func TestLoadLatencyEstimate(t *testing.T) {
	mem := prog.MemRef{Pattern: prog.MemStride, Stream: 0, StrideBytes: 8, WorkingSet: 1 << 12}
	ld := prog.StaticOp{Opcode: uarch.OpLoad, Dst: uarch.IntReg(1), Src1: uarch.IntReg(0), Src2: uarch.RegNone, Mem: mem}
	r := regionOf(t, ld, add(2, 1, 1))
	g := Build(r)
	if g.Nodes[0].Latency != ExpectedLoadLatency {
		t.Errorf("load latency estimate = %d, want %d", g.Nodes[0].Latency, ExpectedLoadLatency)
	}
	c := ComputeCriticality(g)
	if c.Depth[1] != ExpectedLoadLatency {
		t.Errorf("consumer depth = %d, want %d", c.Depth[1], ExpectedLoadLatency)
	}
}

// randomRegion builds a random but valid straight-line region.
func randomRegion(rng *rand.Rand, n int) *prog.Region {
	b := prog.NewBuilder("rand")
	for i := 0; i < n; i++ {
		dst := rng.Intn(uarch.NumIntRegs)
		s1 := rng.Intn(uarch.NumIntRegs)
		s2 := rng.Intn(uarch.NumIntRegs)
		b.Int(uarch.OpAdd, uarch.IntReg(dst), uarch.IntReg(s1), uarch.IntReg(s2))
	}
	p := b.MustBuild()
	return prog.FormRegions(p, prog.RegionOptions{MaxOps: n + 1})[0]
}

// Property: criticality = depth + height for every node, every node's
// criticality is ≤ CP length, and CP length equals the max criticality.
func TestCriticalityInvariantsProperty(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := int(sz)%60 + 2
		rng := rand.New(rand.NewSource(seed))
		g := Build(randomRegion(rng, n))
		c := ComputeCriticality(g)
		maxCrit := 0
		for i := range g.Nodes {
			if c.Crit[i] != c.Depth[i]+c.Height[i] {
				return false
			}
			if c.Crit[i] > c.CPLength || c.Slack(i) < 0 {
				return false
			}
			if c.Crit[i] > maxCrit {
				maxCrit = c.Crit[i]
			}
		}
		return maxCrit == c.CPLength
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: depth is monotone along edges — depth(v) ≥ depth(u) + lat(u).
func TestDepthMonotoneProperty(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := int(sz)%60 + 2
		rng := rand.New(rand.NewSource(seed))
		g := Build(randomRegion(rng, n))
		c := ComputeCriticality(g)
		for u := range g.Nodes {
			for _, e := range g.Nodes[u].Succs {
				if c.Depth[e.To] < c.Depth[u]+e.Latency {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
