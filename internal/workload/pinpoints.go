package workload

import (
	"hash/fnv"
	"math/rand"
)

// PhaseWeights simulates the PinPoints methodology: a program's execution
// is a sequence of phases; representative simulation points get weights
// proportional to how much of the execution their phase covers. The paper
// caps phases at 10 and weights results by the PinPoints output; we model
// the phase sequence as a sticky Markov chain (programs stay in a phase for
// a while) and return the normalized visit frequencies.
//
// The walk is deterministic per (name, phases) so the suite is reproducible.
func PhaseWeights(name string, phases int) []float64 {
	if phases <= 0 {
		return nil
	}
	if phases == 1 {
		return []float64{1}
	}
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	rng := rand.New(rand.NewSource(int64(h.Sum64())))

	// Sticky transition: stay with p=0.85, else jump to a random phase with
	// per-phase attractiveness drawn once (phases differ in importance, as
	// real phase histograms do).
	attract := make([]float64, phases)
	total := 0.0
	for i := range attract {
		attract[i] = 0.2 + rng.Float64()
		total += attract[i]
	}
	counts := make([]int, phases)
	cur := 0
	const steps = 20000
	for s := 0; s < steps; s++ {
		counts[cur]++
		if rng.Float64() < 0.85 {
			continue
		}
		x := rng.Float64() * total
		for i, a := range attract {
			x -= a
			if x <= 0 {
				cur = i
				break
			}
		}
	}
	weights := make([]float64, phases)
	for i, c := range counts {
		weights[i] = float64(c) / steps
	}
	return weights
}
