package workload

import (
	"math/rand"

	"clustersim/internal/prog"
	"clustersim/internal/uarch"
)

// Generate synthesizes the static program for one simulation point of the
// spec. The program is a loop nest over `blocks` basic blocks: each block
// holds compute/memory ops distributed over the spec's dependence chains,
// diamond blocks end in data-dependent branches, and the last block loops
// back to the entry (the trace expander also restarts at the entry from
// terminal blocks).
//
// Register convention: r0/f0 are loop invariants, r1..r{chains}/f1.. are
// the per-chain accumulators, r15 is the stable address base.
func Generate(spec Spec, seed int64) *prog.Program {
	rng := rand.New(rand.NewSource(seed))
	b := prog.NewBuilder(spec.Name)

	nblocks := 4 + rng.Intn(4) // 4..7 blocks: enough CFG for regions & bpred

	chains := spec.Chains
	if chains < 1 {
		chains = 1
	}
	if chains > 8 {
		chains = 8
	}
	intChain := func(c int) uarch.Reg { return uarch.IntReg(1 + c%chains) }
	fpChain := func(c int) uarch.Reg { return uarch.FPReg(1 + c%chains) }
	addrReg := uarch.IntReg(15)
	invInt := uarch.IntReg(0)
	invFP := uarch.FPReg(0)
	// counterReg is the loop induction variable: a short, fast dependence
	// chain (one add per block) most branch conditions hang off, so
	// mispredicted branches resolve quickly, as loop-exit tests do in real
	// code. Data-dependent diamond conditions still read compute chains.
	counterReg := uarch.IntReg(10)

	streams := spec.Streams
	if streams < 1 {
		streams = 1
	}
	// stackStream is the hot spill/local region: MemStack pattern keeps it
	// L1-resident and store→load forwarding fires on exact-slot reuse.
	stackStream := streams + 1
	site := 0

	branchCond := func() uarch.Reg {
		if rng.Float64() < 0.5 {
			return counterReg
		}
		return intChain(rng.Intn(chains))
	}

	genBlock := func(diamond bool) {
		size := spec.BlockSize
		if size < 2 {
			size = 2
		}
		// Jitter block size ±25% for variety across blocks.
		size = size - size/4 + rng.Intn(size/2+1)
		// Loop induction update: one fast add per block.
		b.Int(uarch.OpAdd, counterReg, counterReg, invInt)
		for i := 0; i < size; i++ {
			c := rng.Intn(chains)
			u := rng.Float64()
			switch {
			case u < spec.LoadRatio:
				dst := intChain(c)
				src := addrReg
				mem := prog.MemRef{
					Pattern:     spec.MemPattern,
					Stream:      site % streams,
					StrideBytes: 8,
					WorkingSet:  jitterWS(spec.WorkingSet, rng),
				}
				if rng.Float64() < spec.StackRatio {
					mem = prog.MemRef{Pattern: prog.MemStack, Stream: stackStream, WorkingSet: 4096}
				} else if spec.MemPattern == prog.MemChase {
					// Pointer chase: the loaded value feeds the next
					// address, serializing the chain through memory.
					src = intChain(c)
				}
				if rng.Float64() < spec.FPRatio {
					dst = fpChain(c)
				}
				b.Load(dst, src, mem)
				site++
			case u < spec.LoadRatio+spec.StoreRatio:
				data := intChain(c)
				if rng.Float64() < spec.FPRatio {
					data = fpChain(c)
				}
				mem := prog.MemRef{
					Pattern:     spec.MemPattern,
					Stream:      site % streams,
					StrideBytes: 8,
					WorkingSet:  jitterWS(spec.WorkingSet, rng),
				}
				if rng.Float64() < spec.StackRatio {
					mem = prog.MemRef{Pattern: prog.MemStack, Stream: stackStream, WorkingSet: 4096}
				}
				b.Store(data, addrReg, mem)
				site++
			default:
				isFP := rng.Float64() < spec.FPRatio
				if isFP {
					src2 := invFP
					if rng.Float64() < spec.CrossDeps {
						src2 = fpChain(rng.Intn(chains))
					}
					if rng.Float64() < spec.Bushy {
						// Expression tree: side ops on a temporary that
						// merges into the chain — a critical dependent
						// pair that belongs in one cluster.
						tmp := uarch.FPReg(9 + rng.Intn(5))
						b.FP(fpOpcode(spec, rng), tmp, src2, fpChain(c))
						b.FP(fpOpcode(spec, rng), tmp, tmp, invFP)
						src2 = tmp
					}
					b.FP(fpOpcode(spec, rng), fpChain(c), fpChain(c), src2)
				} else {
					src2 := invInt
					if rng.Float64() < spec.CrossDeps {
						src2 = intChain(rng.Intn(chains))
					}
					if rng.Float64() < spec.Bushy {
						tmp := uarch.IntReg(11 + rng.Intn(4))
						b.Int(intOpcode(spec, rng), tmp, src2, intChain(c))
						b.Int(intOpcode(spec, rng), tmp, tmp, invInt)
						src2 = tmp
					}
					b.Int(intOpcode(spec, rng), intChain(c), intChain(c), src2)
				}
			}
		}
		if diamond {
			b.Branch(branchCond(), spec.TakenProb, spec.Bias)
		}
	}

	// Build the loop body as a sequence of segments. A diamond segment has
	// genuinely distinct then/else arms — the compiler's region formation
	// follows only the likely arm, so values flowing through the other arm
	// cross region boundaries at runtime, exactly the visibility limit
	// software-only steering suffers from. The last block always ends in a
	// conditional loop backedge so every program exercises the predictor.
	loopProb := spec.TakenProb
	if loopProb < 0.9 {
		loopProb = 0.9
	}
	type seg struct {
		head, then, els int // els < 0 for straight-line segments
	}
	var segs []seg
	for s := 0; s < nblocks; s++ {
		if rng.Float64() < spec.Diamonds {
			var sg seg
			if s == 0 {
				sg.head = 0
			} else {
				sg.head = b.NewBlock()
			}
			genBlock(true)
			sg.then = b.NewBlock()
			genBlock(false)
			sg.els = b.NewBlock()
			genBlock(false)
			segs = append(segs, sg)
		} else {
			var sg seg
			if s == 0 {
				sg.head = 0
			} else {
				sg.head = b.NewBlock()
			}
			genBlock(false)
			sg.then, sg.els = -1, -1
			segs = append(segs, sg)
		}
	}
	// Terminal loop-back block with a conditional backedge.
	tail := b.NewBlock()
	genBlock(false)
	b.Branch(counterReg, loopProb, spec.Bias)
	b.Edge(0, loopProb).Edge(0, 1-loopProb)

	// Wire segments: head → (then | els) → next head, or head → next.
	for i, sg := range segs {
		next := tail
		if i+1 < len(segs) {
			next = segs[i+1].head
		}
		if sg.then >= 0 {
			b.Block(sg.head).Edge(sg.then, spec.TakenProb).Edge(sg.els, 1-spec.TakenProb)
			b.Block(sg.then).Jump(next)
			b.Block(sg.els).Jump(next)
		} else {
			b.Block(sg.head).Jump(next)
		}
	}
	return b.MustBuild()
}

// fpOpcode draws an FP opcode per the spec's long-latency ratios.
func fpOpcode(spec Spec, rng *rand.Rand) uarch.Opcode {
	v := rng.Float64()
	switch {
	case v < spec.DivRatio:
		return uarch.OpFDiv
	case v < spec.DivRatio+spec.MulRatio:
		return uarch.OpFMul
	default:
		return uarch.OpFAdd
	}
}

// intOpcode draws an integer opcode per the spec's ratios.
func intOpcode(spec Spec, rng *rand.Rand) uarch.Opcode {
	v := rng.Float64()
	switch {
	case v < spec.DivRatio:
		return uarch.OpDiv
	case v < spec.DivRatio+spec.MulRatio:
		return uarch.OpMul
	case v < spec.DivRatio+spec.MulRatio+0.2:
		return uarch.OpShift
	default:
		return uarch.OpAdd
	}
}

// jitterWS perturbs the working set ±25% (rounded to 64B lines) so distinct
// streams and simpoints do not alias exactly.
func jitterWS(ws int, rng *rand.Rand) int {
	if ws < 4096 {
		return ws
	}
	j := ws - ws/4 + rng.Intn(ws/2)
	return (j &^ 63) + 64
}
