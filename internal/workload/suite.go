package workload

import (
	"fmt"
	"hash/fnv"

	"clustersim/internal/prog"
)

// Simpoint is one weighted simulation point: a generated program variant
// plus the trace-expansion seed and its PinPoints weight within the
// benchmark.
type Simpoint struct {
	// Name is the figure label ("gzip-1", "mcf", …).
	Name string
	// Bench is the parent benchmark ("gzip").
	Bench string
	// FP marks SPECfp membership.
	FP bool
	// Weight is the PinPoints weight within the parent benchmark; weights
	// of one benchmark's simpoints sum to 1.
	Weight float64
	// Program is the synthesized static program.
	Program *prog.Program
	// Seed feeds trace expansion.
	Seed int64
}

// seedOf derives a stable seed from a string.
func seedOf(s string) int64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return int64(h.Sum64() & 0x7fffffffffffffff)
}

// buildSimpoints expands one spec into its weighted simulation points. A
// benchmark with one simpoint keeps the bare name (mcf); multi-simpoint
// benchmarks get the paper's -N suffixes (gzip-1 … gzip-5). Each simpoint
// perturbs the generator seed, so phases differ structurally, as real
// program phases do.
func buildSimpoints(spec Spec) []*Simpoint {
	weights := PhaseWeights(spec.Name, spec.Simpoints)
	out := make([]*Simpoint, 0, spec.Simpoints)
	for i := 0; i < spec.Simpoints; i++ {
		name := spec.Name
		if spec.Simpoints > 1 {
			name = fmt.Sprintf("%s-%d", spec.Name, i+1)
		}
		genSeed := seedOf(name + "/gen")
		out = append(out, &Simpoint{
			Name:    name,
			Bench:   spec.Name,
			FP:      spec.FP,
			Weight:  weights[i],
			Program: Generate(spec, genSeed),
			Seed:    seedOf(name + "/trace"),
		})
	}
	return out
}

// IntSuite returns the 26 SPECint simulation points of Figure 5(a).
func IntSuite() []*Simpoint {
	var out []*Simpoint
	for _, spec := range specint2000() {
		out = append(out, buildSimpoints(spec)...)
	}
	return out
}

// FPSuite returns the 14 SPECfp simulation points of Figure 5(b).
func FPSuite() []*Simpoint {
	var out []*Simpoint
	for _, spec := range specfp2000() {
		out = append(out, buildSimpoints(spec)...)
	}
	return out
}

// Suite returns the full CPU2000 suite (INT then FP).
func Suite() []*Simpoint {
	return append(IntSuite(), FPSuite()...)
}

// QuickSuite returns a reduced suite (one representative per distinct
// behaviour class) for tests, examples and smoke runs.
func QuickSuite() []*Simpoint {
	picks := map[string]bool{
		"gzip-1": true, "gcc-1": true, "mcf": true, "crafty": true,
		"swim": true, "galgel": true, "art-1": true, "ammp": true,
	}
	var out []*Simpoint
	for _, sp := range Suite() {
		if picks[sp.Name] {
			sp.Weight = 1
			out = append(out, sp)
		}
	}
	return out
}

// ByName returns the simpoint with the given name, or nil.
func ByName(name string) *Simpoint {
	for _, sp := range Suite() {
		if sp.Name == name {
			return sp
		}
	}
	return nil
}

// SpecByName returns the benchmark spec with the given name; it panics for
// unknown names (specs are a fixed compile-time table).
func SpecByName(name string) Spec {
	for _, s := range append(specint2000(), specfp2000()...) {
		if s.Name == name {
			return s
		}
	}
	panic(fmt.Sprintf("workload: no spec %q", name))
}
