package workload

import (
	"math"
	"testing"

	"clustersim/internal/prog"
	"clustersim/internal/trace"
	"clustersim/internal/uarch"
)

func TestGenerateValidPrograms(t *testing.T) {
	for _, spec := range append(specint2000(), specfp2000()...) {
		p := Generate(spec, 1)
		if err := prog.Validate(p); err != nil {
			t.Errorf("%s: %v", spec.Name, err)
		}
		if p.NumStaticOps() < 8 {
			t.Errorf("%s: only %d static ops", spec.Name, p.NumStaticOps())
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := specint2000()[0]
	a := Generate(spec, 7)
	b := Generate(spec, 7)
	if a.NumStaticOps() != b.NumStaticOps() {
		t.Fatal("same seed, different op counts")
	}
	var opsA, opsB []prog.StaticOp
	a.ForEachOp(func(_ *prog.Block, _ int, op *prog.StaticOp) { opsA = append(opsA, *op) })
	b.ForEachOp(func(_ *prog.Block, _ int, op *prog.StaticOp) { opsB = append(opsB, *op) })
	for i := range opsA {
		if opsA[i] != opsB[i] {
			t.Fatalf("op %d differs", i)
		}
	}
}

func TestFPBenchmarksUseFPOps(t *testing.T) {
	for _, spec := range specfp2000() {
		p := Generate(spec, 1)
		fp := 0
		p.ForEachOp(func(_ *prog.Block, _ int, op *prog.StaticOp) {
			if op.Opcode.Class() == uarch.ClassFP {
				fp++
			}
		})
		if fp == 0 {
			t.Errorf("%s: no FP ops in an FP benchmark", spec.Name)
		}
	}
}

func TestIntBenchmarksAvoidFPOps(t *testing.T) {
	for _, spec := range specint2000() {
		if spec.FPRatio > 0 {
			continue // eon is deliberately mixed
		}
		p := Generate(spec, 1)
		p.ForEachOp(func(_ *prog.Block, _ int, op *prog.StaticOp) {
			if op.Opcode.Class() == uarch.ClassFP {
				t.Errorf("%s: FP op in an INT benchmark", spec.Name)
			}
		})
	}
}

func TestEonIsMixed(t *testing.T) {
	// eon is C++ with real FP content (FPRatio 0.3) despite being SPECint;
	// the generator must emit FP ops for it.
	p := Generate(SpecByName("eon"), 1)
	fp := 0
	p.ForEachOp(func(_ *prog.Block, _ int, op *prog.StaticOp) {
		if op.Opcode.Class() == uarch.ClassFP {
			fp++
		}
	})
	if fp == 0 {
		t.Error("eon generated no FP ops despite FPRatio 0.3")
	}
}

func TestSuiteComposition(t *testing.T) {
	ints := IntSuite()
	fps := FPSuite()
	if len(ints) != 26 {
		t.Errorf("IntSuite has %d simpoints, want 26 (paper Fig. 5a)", len(ints))
	}
	if len(fps) != 14 {
		t.Errorf("FPSuite has %d simpoints, want 14 (paper Fig. 5b)", len(fps))
	}
	names := map[string]bool{}
	for _, sp := range Suite() {
		if names[sp.Name] {
			t.Errorf("duplicate simpoint %s", sp.Name)
		}
		names[sp.Name] = true
	}
	for _, want := range []string{"gzip-1", "gzip-5", "mcf", "eon-3", "vortex-2", "swim", "art-2", "apsi"} {
		if !names[want] {
			t.Errorf("missing simpoint %s", want)
		}
	}
}

func TestWeightsSumPerBenchmark(t *testing.T) {
	byBench := map[string]float64{}
	for _, sp := range Suite() {
		byBench[sp.Bench] += sp.Weight
	}
	for bench, sum := range byBench {
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("%s: weights sum to %g, want 1", bench, sum)
		}
	}
}

func TestPhaseWeights(t *testing.T) {
	w := PhaseWeights("gzip", 5)
	if len(w) != 5 {
		t.Fatalf("got %d weights", len(w))
	}
	sum := 0.0
	for _, x := range w {
		if x < 0 {
			t.Errorf("negative weight %g", x)
		}
		sum += x
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("weights sum to %g", sum)
	}
	// Deterministic.
	w2 := PhaseWeights("gzip", 5)
	for i := range w {
		if w[i] != w2[i] {
			t.Fatal("PhaseWeights not deterministic")
		}
	}
	if got := PhaseWeights("x", 1); len(got) != 1 || got[0] != 1 {
		t.Errorf("single phase weights = %v", got)
	}
}

func TestSimpointsOfBenchmarkDiffer(t *testing.T) {
	sps := buildSimpoints(specint2000()[0]) // gzip ×5
	if len(sps) != 5 {
		t.Fatalf("gzip simpoints = %d", len(sps))
	}
	if sps[0].Program.NumStaticOps() == sps[1].Program.NumStaticOps() &&
		sps[0].Seed == sps[1].Seed {
		t.Error("simpoints should differ in structure or seed")
	}
}

func TestByName(t *testing.T) {
	sp := ByName("mcf")
	if sp == nil || sp.Bench != "mcf" || sp.FP {
		t.Fatalf("ByName(mcf) = %+v", sp)
	}
	if ByName("nonexistent") != nil {
		t.Error("ByName should return nil for unknown names")
	}
}

func TestQuickSuite(t *testing.T) {
	qs := QuickSuite()
	if len(qs) != 8 {
		t.Errorf("QuickSuite has %d entries, want 8", len(qs))
	}
	for _, sp := range qs {
		if sp.Weight != 1 {
			t.Errorf("%s: quick weight %g, want 1", sp.Name, sp.Weight)
		}
	}
}

func TestTracesExpandFromSuite(t *testing.T) {
	for _, sp := range QuickSuite() {
		tr := trace.Expand(sp.Program, trace.Options{NumUops: 2000, Seed: sp.Seed})
		if len(tr.Uops) != 2000 {
			t.Errorf("%s: trace length %d", sp.Name, len(tr.Uops))
		}
		mem, branches := 0, 0
		for i := range tr.Uops {
			if tr.Uops[i].IsMem() {
				mem++
			}
			if tr.Uops[i].IsBranch() {
				branches++
			}
		}
		if mem == 0 {
			t.Errorf("%s: no memory ops", sp.Name)
		}
		if branches == 0 {
			t.Errorf("%s: no branches", sp.Name)
		}
	}
}

func TestMcfIsPointerChasing(t *testing.T) {
	sp := ByName("mcf")
	chase := false
	sp.Program.ForEachOp(func(_ *prog.Block, _ int, op *prog.StaticOp) {
		if op.Opcode == uarch.OpLoad && op.Mem.Pattern == prog.MemChase &&
			op.Src1 == op.Dst {
			chase = true
		}
	})
	if !chase {
		t.Error("mcf should contain serialized pointer-chase loads")
	}
}
