package workload

import (
	"testing"

	"clustersim/internal/trace"
	"clustersim/internal/uarch"
)

// TestDynamicMixMatchesSpec verifies each benchmark's dynamic trace honors
// its declared load/store ratios within tolerance (the generator draws per
// op, so large traces must converge).
func TestDynamicMixMatchesSpec(t *testing.T) {
	for _, spec := range append(specint2000(), specfp2000()...) {
		p := Generate(spec, 1)
		tr := trace.Expand(p, trace.Options{NumUops: 30_000, Seed: 1})
		var loads, stores, total int
		for i := range tr.Uops {
			switch tr.Uops[i].Static.Opcode.Class() {
			case uarch.ClassLoad:
				loads++
			case uarch.ClassStore:
				stores++
			}
			total++
		}
		loadFrac := float64(loads) / float64(total)
		// The spec ratios are per-op draw probabilities over base ops;
		// bushy expression expansion, per-block counter updates and block
		// execution frequencies dilute the dynamic fractions, so assert a
		// broad sanity band rather than exact convergence.
		if loadFrac < spec.LoadRatio*0.25 || loadFrac > spec.LoadRatio*1.6 {
			t.Errorf("%s: dynamic load fraction %.3f vs spec %.3f", spec.Name, loadFrac, spec.LoadRatio)
		}
		if spec.StoreRatio > 0 && stores == 0 {
			t.Errorf("%s: no dynamic stores despite spec ratio %.3f", spec.Name, spec.StoreRatio)
		}
	}
}

// TestBranchTakenRateTracksSpec verifies the trace's taken rate reflects
// the spec's TakenProb blend (diamond branches at TakenProb, loop backedge
// ≥0.9).
func TestBranchTakenRateTracksSpec(t *testing.T) {
	for _, spec := range append(specint2000(), specfp2000()...) {
		s := trace.Analyze(trace.Expand(Generate(spec, 1), trace.Options{NumUops: 30_000, Seed: 2}))
		rate := s.TakenRate()
		// The blend lies between min(TakenProb, 1-TakenProb) and ~0.97.
		if rate < 0.3 || rate > 0.99 {
			t.Errorf("%s: taken rate %.3f implausible", spec.Name, rate)
		}
	}
}

// TestFootprintScalesWithWorkingSet verifies large-WS benchmarks touch far
// more memory than small-WS ones.
func TestFootprintScalesWithWorkingSet(t *testing.T) {
	small := trace.Analyze(trace.Expand(Generate(SpecByName("crafty"), 1), trace.Options{NumUops: 40_000, Seed: 3}))
	big := trace.Analyze(trace.Expand(Generate(SpecByName("swim"), 1), trace.Options{NumUops: 40_000, Seed: 3}))
	if big.FootprintBytes <= small.FootprintBytes {
		t.Errorf("swim footprint (%d) should exceed crafty (%d)",
			big.FootprintBytes, small.FootprintBytes)
	}
}

// TestChaseLoadsSerializeThroughRegisters verifies the mcf idiom: chase
// loads read the register they write (the pointer walk).
func TestChaseLoadsSerializeThroughRegisters(t *testing.T) {
	p := Generate(SpecByName("mcf"), 1)
	chaseLoads, serial := 0, 0
	for _, b := range p.Blocks {
		for i := range b.Ops {
			op := &b.Ops[i]
			if op.Opcode == uarch.OpLoad && op.Mem.Pattern.String() == "chase" {
				chaseLoads++
				if op.Src1 == op.Dst {
					serial++
				}
			}
		}
	}
	if chaseLoads == 0 {
		t.Fatal("mcf has no chase loads")
	}
	if serial == 0 {
		t.Error("no chase load is register-serialized")
	}
}

// TestSuiteStableAcrossCalls: Suite() must return identical structure on
// every call (deterministic generation).
func TestSuiteStableAcrossCalls(t *testing.T) {
	a, b := Suite(), Suite()
	if len(a) != len(b) {
		t.Fatal("suite size varies")
	}
	for i := range a {
		if a[i].Name != b[i].Name || a[i].Weight != b[i].Weight || a[i].Seed != b[i].Seed {
			t.Fatalf("simpoint %d differs across calls", i)
		}
		if a[i].Program.NumStaticOps() != b[i].Program.NumStaticOps() {
			t.Fatalf("%s: program size differs across calls", a[i].Name)
		}
	}
}
