// Package workload synthesizes the evaluation workloads: a SPEC CPU2000-like
// suite of programs whose dependence structure, ILP, memory behaviour and
// branch predictability echo the published character of each benchmark, plus
// a PinPoints-style phase selector that assigns weights to simulation points.
//
// This is the substitution documented in DESIGN.md §5: the paper runs IA32
// traces of SPEC CPU2000 selected by PinPoints; steering quality depends on
// dependence-chain shape, ILP, and the sources of load imbalance (cache
// misses, serial chains, branchy control flow), which are exactly the axes
// the generator spans.
package workload

import "clustersim/internal/prog"

// Spec describes the synthetic character of one benchmark.
type Spec struct {
	// Name is the SPEC benchmark name (e.g. "gzip").
	Name string
	// FP marks SPECfp members.
	FP bool
	// Chains is the number of independent dependence chains (the ILP the
	// steering mechanisms can spread across clusters).
	Chains int
	// CrossDeps is the probability an op's second source reads another
	// chain, merging chains and creating inter-cluster traffic pressure.
	CrossDeps float64
	// FPRatio is the fraction of compute ops that are floating point.
	FPRatio float64
	// LoadRatio and StoreRatio are memory-op fractions of all ops.
	LoadRatio, StoreRatio float64
	// MulRatio and DivRatio are long-latency fractions of compute ops.
	MulRatio, DivRatio float64
	// BlockSize is ops per basic block (≈ 1/branch density).
	BlockSize int
	// Diamonds is the fraction of blocks ending in a two-way branch.
	Diamonds float64
	// TakenProb and Bias parameterize branch outcomes (Bias→1 means
	// learnable periodic behaviour; →0 means i.i.d. coin flips).
	TakenProb, Bias float64
	// WorkingSet is the memory footprint in bytes.
	WorkingSet int
	// MemPattern is the dominant address pattern.
	MemPattern prog.MemPattern
	// Streams is the number of distinct memory streams.
	Streams int
	// StackRatio is the fraction of memory ops hitting the hot stack
	// region (spills/locals: L1-resident, with store→load forwarding).
	StackRatio float64
	// Bushy is the probability a compute op expands into a small
	// expression tree (side ops on temporaries merging into the chain) —
	// the per-iteration dataflow width of real loop bodies, and the
	// "critical dependent pairs" a too-fine VC partition splits (§5.4).
	Bushy float64
	// Simpoints is the number of PinPoints simulation points (1..5); the
	// paper's per-benchmark trace counts are mirrored in the suite.
	Simpoints int
}

// specint2000 returns the SPECint 2000 specs. Parameters echo each
// benchmark's published behaviour: mcf is a pointer-chasing cache thrasher,
// gcc and perlbmk are branchy with irregular footprints, bzip2 and crafty
// are compute-dense with decent ILP, etc.
func specint2000() []Spec {
	return []Spec{
		{Name: "gzip", Chains: 4, CrossDeps: 0.2, LoadRatio: 0.22, StoreRatio: 0.08,
			MulRatio: 0.04, BlockSize: 12, Diamonds: 0.6, TakenProb: 0.75, Bias: 0.85,
			WorkingSet: 192 << 10, MemPattern: prog.MemStride, Streams: 4, StackRatio: 0.25, Bushy: 0.3, Simpoints: 5},
		{Name: "vpr", Chains: 3, CrossDeps: 0.3, LoadRatio: 0.26, StoreRatio: 0.07,
			MulRatio: 0.06, BlockSize: 10, Diamonds: 0.7, TakenProb: 0.6, Bias: 0.55,
			WorkingSet: 1 << 20, MemPattern: prog.MemRandom, Streams: 4, StackRatio: 0.2, Bushy: 0.3, Simpoints: 2},
		{Name: "gcc", Chains: 4, CrossDeps: 0.35, LoadRatio: 0.25, StoreRatio: 0.12,
			MulRatio: 0.02, BlockSize: 8, Diamonds: 0.8, TakenProb: 0.65, Bias: 0.6,
			WorkingSet: 2 << 20, MemPattern: prog.MemRandom, Streams: 6, StackRatio: 0.25, Bushy: 0.25, Simpoints: 5},
		{Name: "mcf", Chains: 2, CrossDeps: 0.15, LoadRatio: 0.32, StoreRatio: 0.08,
			MulRatio: 0.02, BlockSize: 10, Diamonds: 0.7, TakenProb: 0.6, Bias: 0.5,
			WorkingSet: 4 << 20, MemPattern: prog.MemChase, Streams: 3, StackRatio: 0.08, Bushy: 0.15, Simpoints: 1},
		{Name: "crafty", Chains: 5, CrossDeps: 0.25, LoadRatio: 0.2, StoreRatio: 0.05,
			MulRatio: 0.05, BlockSize: 12, Diamonds: 0.6, TakenProb: 0.7, Bias: 0.8,
			WorkingSet: 96 << 10, MemPattern: prog.MemStride, Streams: 4, StackRatio: 0.3, Bushy: 0.4, Simpoints: 1},
		{Name: "parser", Chains: 3, CrossDeps: 0.25, LoadRatio: 0.28, StoreRatio: 0.1,
			MulRatio: 0.02, BlockSize: 9, Diamonds: 0.75, TakenProb: 0.62, Bias: 0.6,
			WorkingSet: 384 << 10, MemPattern: prog.MemChase, Streams: 4, StackRatio: 0.2, Bushy: 0.25, Simpoints: 1},
		{Name: "eon", Chains: 5, CrossDeps: 0.25, FPRatio: 0.3, LoadRatio: 0.24, StoreRatio: 0.1,
			MulRatio: 0.12, BlockSize: 14, Diamonds: 0.5, TakenProb: 0.7, Bias: 0.85,
			WorkingSet: 48 << 10, MemPattern: prog.MemStride, Streams: 4, StackRatio: 0.3, Bushy: 0.4, Simpoints: 3},
		{Name: "perlbmk", Chains: 3, CrossDeps: 0.35, LoadRatio: 0.27, StoreRatio: 0.12,
			MulRatio: 0.03, BlockSize: 8, Diamonds: 0.8, TakenProb: 0.64, Bias: 0.65,
			WorkingSet: 1536 << 10, MemPattern: prog.MemRandom, Streams: 5, StackRatio: 0.25, Bushy: 0.25, Simpoints: 1},
		{Name: "gap", Chains: 4, CrossDeps: 0.28, LoadRatio: 0.25, StoreRatio: 0.09,
			MulRatio: 0.08, BlockSize: 11, Diamonds: 0.6, TakenProb: 0.7, Bias: 0.75,
			WorkingSet: 512 << 10, MemPattern: prog.MemStride, Streams: 4, StackRatio: 0.2, Bushy: 0.3, Simpoints: 1},
		{Name: "vortex", Chains: 4, CrossDeps: 0.3, LoadRatio: 0.26, StoreRatio: 0.14,
			MulRatio: 0.03, BlockSize: 10, Diamonds: 0.65, TakenProb: 0.72, Bias: 0.8,
			WorkingSet: 1 << 20, MemPattern: prog.MemRandom, Streams: 6, StackRatio: 0.25, Bushy: 0.3, Simpoints: 2},
		{Name: "bzip2", Chains: 5, CrossDeps: 0.2, LoadRatio: 0.24, StoreRatio: 0.1,
			MulRatio: 0.05, BlockSize: 13, Diamonds: 0.55, TakenProb: 0.7, Bias: 0.8,
			WorkingSet: 3 << 20, MemPattern: prog.MemStride, Streams: 4, StackRatio: 0.2, Bushy: 0.35, Simpoints: 3},
		{Name: "twolf", Chains: 3, CrossDeps: 0.3, LoadRatio: 0.27, StoreRatio: 0.08,
			MulRatio: 0.07, BlockSize: 10, Diamonds: 0.7, TakenProb: 0.6, Bias: 0.55,
			WorkingSet: 512 << 10, MemPattern: prog.MemRandom, Streams: 4, StackRatio: 0.2, Bushy: 0.3, Simpoints: 1},
	}
}

// specfp2000 returns the SPECfp 2000 specs: wide independent FP chains
// (swim, galgel, lucas), sparse/irregular outliers (art, ammp, equake), and
// mixed INT/FP codes (mesa, apsi).
func specfp2000() []Spec {
	return []Spec{
		{Name: "wupwise", FP: true, Chains: 6, CrossDeps: 0.25, FPRatio: 0.7,
			LoadRatio: 0.24, StoreRatio: 0.08, MulRatio: 0.4, BlockSize: 24,
			Diamonds: 0.3, TakenProb: 0.9, Bias: 0.95, WorkingSet: 2 << 20,
			MemPattern: prog.MemStride, Streams: 6, StackRatio: 0.06, Bushy: 0.5, Simpoints: 1},
		{Name: "swim", FP: true, Chains: 8, CrossDeps: 0.18, FPRatio: 0.75,
			LoadRatio: 0.3, StoreRatio: 0.12, MulRatio: 0.45, BlockSize: 32,
			Diamonds: 0.2, TakenProb: 0.95, Bias: 0.97, WorkingSet: 12 << 20,
			MemPattern: prog.MemStride, Streams: 8, StackRatio: 0.03, Bushy: 0.55, Simpoints: 1},
		{Name: "applu", FP: true, Chains: 6, CrossDeps: 0.25, FPRatio: 0.72,
			LoadRatio: 0.28, StoreRatio: 0.1, MulRatio: 0.42, BlockSize: 28,
			Diamonds: 0.25, TakenProb: 0.93, Bias: 0.95, WorkingSet: 10 << 20,
			MemPattern: prog.MemStride, Streams: 6, StackRatio: 0.05, Bushy: 0.5, Simpoints: 1},
		{Name: "mesa", FP: true, Chains: 4, CrossDeps: 0.3, FPRatio: 0.45,
			LoadRatio: 0.24, StoreRatio: 0.1, MulRatio: 0.3, BlockSize: 14,
			Diamonds: 0.5, TakenProb: 0.75, Bias: 0.85, WorkingSet: 512 << 10,
			MemPattern: prog.MemStride, Streams: 5, StackRatio: 0.15, Bushy: 0.4, Simpoints: 1},
		{Name: "galgel", FP: true, Chains: 8, CrossDeps: 0.15, FPRatio: 0.8,
			LoadRatio: 0.26, StoreRatio: 0.08, MulRatio: 0.5, BlockSize: 36,
			Diamonds: 0.15, TakenProb: 0.95, Bias: 0.97, WorkingSet: 256 << 10,
			MemPattern: prog.MemStride, Streams: 6, StackRatio: 0.04, Bushy: 0.6, Simpoints: 1},
		{Name: "art", FP: true, Chains: 3, CrossDeps: 0.3, FPRatio: 0.6,
			LoadRatio: 0.34, StoreRatio: 0.06, MulRatio: 0.35, BlockSize: 16,
			Diamonds: 0.4, TakenProb: 0.88, Bias: 0.9, WorkingSet: 6 << 20,
			MemPattern: prog.MemStride, Streams: 3, StackRatio: 0.05, Bushy: 0.4, Simpoints: 2},
		{Name: "facerec", FP: true, Chains: 5, CrossDeps: 0.25, FPRatio: 0.65,
			LoadRatio: 0.27, StoreRatio: 0.08, MulRatio: 0.4, BlockSize: 22,
			Diamonds: 0.3, TakenProb: 0.9, Bias: 0.92, WorkingSet: 3 << 20,
			MemPattern: prog.MemStride, Streams: 5, StackRatio: 0.06, Bushy: 0.5, Simpoints: 1},
		{Name: "equake", FP: true, Chains: 4, CrossDeps: 0.3, FPRatio: 0.55,
			LoadRatio: 0.32, StoreRatio: 0.09, MulRatio: 0.35, BlockSize: 16,
			Diamonds: 0.4, TakenProb: 0.85, Bias: 0.85, WorkingSet: 5 << 20,
			MemPattern: prog.MemRandom, Streams: 5, StackRatio: 0.08, Bushy: 0.4, Simpoints: 1},
		{Name: "ammp", FP: true, Chains: 3, CrossDeps: 0.3, FPRatio: 0.6,
			LoadRatio: 0.3, StoreRatio: 0.08, MulRatio: 0.38, BlockSize: 15,
			Diamonds: 0.45, TakenProb: 0.8, Bias: 0.75, WorkingSet: 8 << 20,
			MemPattern: prog.MemChase, Streams: 4, StackRatio: 0.08, Bushy: 0.35, Simpoints: 1},
		{Name: "lucas", FP: true, Chains: 7, CrossDeps: 0.18, FPRatio: 0.75,
			LoadRatio: 0.28, StoreRatio: 0.1, MulRatio: 0.48, BlockSize: 30,
			Diamonds: 0.2, TakenProb: 0.94, Bias: 0.96, WorkingSet: 9 << 20,
			MemPattern: prog.MemStride, Streams: 7, StackRatio: 0.04, Bushy: 0.55, Simpoints: 1},
		{Name: "fma3d", FP: true, Chains: 5, CrossDeps: 0.3, FPRatio: 0.65,
			LoadRatio: 0.27, StoreRatio: 0.11, MulRatio: 0.4, BlockSize: 20,
			Diamonds: 0.35, TakenProb: 0.88, Bias: 0.9, WorkingSet: 4 << 20,
			MemPattern: prog.MemStride, Streams: 6, StackRatio: 0.08, Bushy: 0.45, Simpoints: 1},
		{Name: "sixtrack", FP: true, Chains: 6, CrossDeps: 0.22, FPRatio: 0.78,
			LoadRatio: 0.22, StoreRatio: 0.07, MulRatio: 0.5, BlockSize: 26,
			Diamonds: 0.25, TakenProb: 0.92, Bias: 0.95, WorkingSet: 128 << 10,
			MemPattern: prog.MemStride, Streams: 4, StackRatio: 0.1, Bushy: 0.5, Simpoints: 1},
		{Name: "apsi", FP: true, Chains: 5, CrossDeps: 0.3, FPRatio: 0.6,
			LoadRatio: 0.26, StoreRatio: 0.1, MulRatio: 0.4, BlockSize: 18,
			Diamonds: 0.35, TakenProb: 0.88, Bias: 0.9, WorkingSet: 2 << 20,
			MemPattern: prog.MemStride, Streams: 5, StackRatio: 0.1, Bushy: 0.45, Simpoints: 1},
	}
}
