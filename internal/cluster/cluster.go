package cluster

import (
	"fmt"

	"clustersim/internal/uarch"
)

// Config sizes one cluster (paper Table 2, per-cluster column).
type Config struct {
	// IQInt, IQFP, IQCopy are issue-queue capacities.
	IQInt, IQFP, IQCopy int
	// IssueInt, IssueFP, IssueCopy are per-cycle issue widths.
	IssueInt, IssueFP, IssueCopy int
	// IntRegs, FPRegs size the physical register files.
	IntRegs, FPRegs int
}

// DefaultConfig returns the paper's per-cluster parameters: 48-entry INT IQ
// at 2/cycle, 48-entry FP IQ at 2/cycle, 24-entry COPY queue at 1/cycle,
// 256-entry INT and FP register files.
func DefaultConfig() Config {
	return Config{
		IQInt: 48, IQFP: 48, IQCopy: 24,
		IssueInt: 2, IssueFP: 2, IssueCopy: 1,
		IntRegs: 256, FPRegs: 256,
	}
}

// Cluster is one backend partition: issue queues, unpipelined-FU occupancy
// and register-file accounting. The pipeline drives it.
type Cluster struct {
	// ID is the cluster index.
	ID  int
	cfg Config

	// IntQ, FPQ, CopyQ are the three issue queues.
	IntQ, FPQ, CopyQ *IQ

	// freeInt, freeFP count available physical registers.
	freeInt, freeFP int

	// divFree are the cycles at which the unpipelined dividers free up.
	intDivFree, fpDivFree int64

	// InFlight counts dispatched-but-not-committed micro-ops steered here;
	// this is the occupancy signal the steering counters expose.
	InFlight int

	// DispatchedUops counts all micro-ops ever steered here (workload
	// distribution metric).
	DispatchedUops uint64
}

// New builds a cluster.
func New(id int, cfg Config) *Cluster {
	c := &Cluster{
		ID:    id,
		cfg:   cfg,
		IntQ:  NewIQ(fmt.Sprintf("c%d.int", id), cfg.IQInt, cfg.IssueInt),
		FPQ:   NewIQ(fmt.Sprintf("c%d.fp", id), cfg.IQFP, cfg.IssueFP),
		CopyQ: NewIQ(fmt.Sprintf("c%d.copy", id), cfg.IQCopy, cfg.IssueCopy),
	}
	c.freeInt, c.freeFP = cfg.IntRegs, cfg.FPRegs
	return c
}

// QueueFor returns the issue queue used by the given micro-op class.
// Loads, stores and branches share the integer queue and issue ports.
func (c *Cluster) QueueFor(class uarch.Class) *IQ {
	switch class {
	case uarch.ClassFP:
		return c.FPQ
	case uarch.ClassCopy:
		return c.CopyQ
	default:
		return c.IntQ
	}
}

// Occupancy returns the summed issue-queue occupancy, the cheap workload
// signal hardware steering uses.
func (c *Cluster) Occupancy() int {
	return c.IntQ.Len() + c.FPQ.Len() + c.CopyQ.Len()
}

// HasRegFor reports whether a physical register of the right bank is free.
func (c *Cluster) HasRegFor(r uarch.Reg) bool {
	if r.IsFP() {
		return c.freeFP > 0
	}
	return c.freeInt > 0
}

// AllocReg claims a physical register for the destination bank of r.
func (c *Cluster) AllocReg(r uarch.Reg) {
	if r.IsFP() {
		if c.freeFP <= 0 {
			panic(fmt.Sprintf("cluster %d: fp regfile underflow", c.ID))
		}
		c.freeFP--
		return
	}
	if c.freeInt <= 0 {
		panic(fmt.Sprintf("cluster %d: int regfile underflow", c.ID))
	}
	c.freeInt--
}

// FreeReg returns a physical register to the bank of r.
func (c *Cluster) FreeReg(r uarch.Reg) {
	if r.IsFP() {
		c.freeFP++
		if c.freeFP > c.cfg.FPRegs {
			panic(fmt.Sprintf("cluster %d: fp regfile overflow", c.ID))
		}
		return
	}
	c.freeInt++
	if c.freeInt > c.cfg.IntRegs {
		panic(fmt.Sprintf("cluster %d: int regfile overflow", c.ID))
	}
}

// FreeRegs reports the free count for the bank of r.
func (c *Cluster) FreeRegs(r uarch.Reg) int {
	if r.IsFP() {
		return c.freeFP
	}
	return c.freeInt
}

// DividerFree reports whether the unpipelined divider for the opcode is
// available at the given cycle; ReserveDivider books it through the op's
// latency. Pipelined opcodes are always acceptable.
func (c *Cluster) DividerFree(op uarch.Opcode, cycle int64) bool {
	switch op {
	case uarch.OpDiv:
		return c.intDivFree <= cycle
	case uarch.OpFDiv:
		return c.fpDivFree <= cycle
	}
	return true
}

// ReserveDivider books the divider for the op's duration.
func (c *Cluster) ReserveDivider(op uarch.Opcode, cycle int64) {
	switch op {
	case uarch.OpDiv:
		c.intDivFree = cycle + int64(op.Latency())
	case uarch.OpFDiv:
		c.fpDivFree = cycle + int64(op.Latency())
	}
}

// Reset restores post-construction state (between runs).
func (c *Cluster) Reset() {
	c.IntQ.Reset()
	c.FPQ.Reset()
	c.CopyQ.Reset()
	c.freeInt, c.freeFP = c.cfg.IntRegs, c.cfg.FPRegs
	c.intDivFree, c.fpDivFree = 0, 0
	c.InFlight = 0
	c.DispatchedUops = 0
}
