package cluster

import (
	"math/rand"
	"testing"
	"testing/quick"

	"clustersim/internal/uarch"
)

func TestIQInsertSelect(t *testing.T) {
	q := NewIQ("t", 4, 2)
	if !q.Insert(1, 0, nil) { // ready at insert
		t.Fatal("insert refused below capacity")
	}
	q.Insert(2, 0, []int64{100})
	q.Insert(3, 0, nil)
	got := q.SelectReady(0, nil)
	if len(got) != 2 {
		t.Fatalf("selected %d, want 2 (width)", len(got))
	}
	if got[0].Seq != 1 || got[1].Seq != 3 {
		t.Errorf("selected %d,%d — want oldest-first 1,3", got[0].Seq, got[1].Seq)
	}
	if q.Len() != 1 {
		t.Errorf("Len = %d after select, want 1", q.Len())
	}
}

func TestIQWakeup(t *testing.T) {
	q := NewIQ("t", 4, 2)
	q.Insert(5, 0, []int64{100, 101})
	if got := q.SelectReady(0, nil); len(got) != 0 {
		t.Fatal("entry with pending operands selected")
	}
	q.Wakeup(100)
	if got := q.SelectReady(0, nil); len(got) != 0 {
		t.Fatal("entry with one pending operand selected")
	}
	q.Wakeup(101)
	got := q.SelectReady(0, nil)
	if len(got) != 1 || got[0].Seq != 5 {
		t.Fatalf("entry not selectable after both wakeups: %v", got)
	}
}

func TestIQCapacity(t *testing.T) {
	q := NewIQ("t", 2, 1)
	q.Insert(1, 0, nil)
	q.Insert(2, 0, nil)
	if q.Insert(3, 0, nil) {
		t.Fatal("insert above capacity accepted")
	}
	if !q.Full() {
		t.Error("Full() = false at capacity")
	}
}

func TestIQAcceptFilter(t *testing.T) {
	q := NewIQ("t", 4, 2)
	q.Insert(1, 0, nil)
	q.Insert(2, 0, nil)
	// Refuse seq 1; seq 2 should still be picked, and seq 1 stays queued.
	got := q.SelectReady(0, func(e *Entry) bool { return e.Seq != 1 })
	if len(got) != 1 || got[0].Seq != 2 {
		t.Fatalf("got %v, want only seq 2", got)
	}
	if q.Len() != 1 {
		t.Errorf("Len = %d, want 1 (seq 1 kept)", q.Len())
	}
}

func TestIQSelectMaxBelowWidth(t *testing.T) {
	q := NewIQ("t", 8, 4)
	for i := int64(0); i < 5; i++ {
		q.Insert(i, 0, nil)
	}
	if got := q.SelectReady(2, nil); len(got) != 2 {
		t.Fatalf("selected %d, want 2", len(got))
	}
}

func TestIQDoubleWakeupPanics(t *testing.T) {
	q := NewIQ("t", 4, 1)
	q.Insert(1, 0, []int64{7})
	q.Wakeup(7)
	// Second wakeup of the same tag is a no-op (tag list consumed).
	q.Wakeup(7)
	if got := q.SelectReady(0, nil); len(got) != 1 {
		t.Fatal("entry lost after repeated wakeup of consumed tag")
	}
}

func TestClusterQueueFor(t *testing.T) {
	c := New(0, DefaultConfig())
	cases := []struct {
		class uarch.Class
		want  *IQ
	}{
		{uarch.ClassInt, c.IntQ},
		{uarch.ClassLoad, c.IntQ},
		{uarch.ClassStore, c.IntQ},
		{uarch.ClassBranch, c.IntQ},
		{uarch.ClassFP, c.FPQ},
		{uarch.ClassCopy, c.CopyQ},
	}
	for _, cse := range cases {
		if got := c.QueueFor(cse.class); got != cse.want {
			t.Errorf("QueueFor(%v) = %s, want %s", cse.class, got.Name(), cse.want.Name())
		}
	}
}

func TestRegAllocationAccounting(t *testing.T) {
	cfg := DefaultConfig()
	cfg.IntRegs, cfg.FPRegs = 2, 1
	c := New(0, cfg)
	r := uarch.IntReg(0)
	f := uarch.FPReg(0)
	if !c.HasRegFor(r) || !c.HasRegFor(f) {
		t.Fatal("fresh cluster should have free registers")
	}
	c.AllocReg(r)
	c.AllocReg(r)
	if c.HasRegFor(r) {
		t.Error("int regfile should be exhausted")
	}
	if !c.HasRegFor(f) {
		t.Error("fp bank unaffected by int allocation")
	}
	c.FreeReg(r)
	if !c.HasRegFor(r) {
		t.Error("free not visible")
	}
}

func TestRegOverflowPanics(t *testing.T) {
	cfg := DefaultConfig()
	c := New(0, cfg)
	defer func() {
		if recover() == nil {
			t.Error("freeing beyond capacity should panic")
		}
	}()
	c.FreeReg(uarch.IntReg(0))
}

func TestDividerOccupancy(t *testing.T) {
	c := New(0, DefaultConfig())
	if !c.DividerFree(uarch.OpDiv, 0) {
		t.Fatal("divider busy at reset")
	}
	c.ReserveDivider(uarch.OpDiv, 0)
	if c.DividerFree(uarch.OpDiv, 5) {
		t.Error("int divider free mid-operation (latency 20)")
	}
	if !c.DividerFree(uarch.OpFDiv, 5) {
		t.Error("fp divider should be independent")
	}
	if !c.DividerFree(uarch.OpDiv, 20) {
		t.Error("divider should free at cycle 20")
	}
	if !c.DividerFree(uarch.OpAdd, 1) {
		t.Error("pipelined opcodes never blocked")
	}
}

func TestClusterReset(t *testing.T) {
	c := New(0, DefaultConfig())
	c.IntQ.Insert(1, 0, nil)
	c.AllocReg(uarch.IntReg(0))
	c.InFlight = 5
	c.Reset()
	if c.IntQ.Len() != 0 || c.InFlight != 0 {
		t.Error("Reset left state behind")
	}
	if !c.HasRegFor(uarch.IntReg(0)) {
		t.Error("Reset did not restore registers")
	}
}

// Property: selection is always oldest-first and never exceeds width.
func TestIQSelectionOrderProperty(t *testing.T) {
	f := func(seed int64, nRaw, widthRaw uint8) bool {
		n := int(nRaw)%20 + 1
		width := int(widthRaw)%4 + 1
		rng := rand.New(rand.NewSource(seed))
		q := NewIQ("q", 64, width)
		for i := 0; i < n; i++ {
			var deps []int64
			if rng.Intn(3) == 0 {
				deps = []int64{int64(1000 + i)}
			}
			q.Insert(int64(i), 0, deps)
		}
		got := q.SelectReady(0, nil)
		if len(got) > width {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i].Seq <= got[i-1].Seq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: occupancy equals inserts minus selects.
func TestIQOccupancyBalanceProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%30 + 1
		rng := rand.New(rand.NewSource(seed))
		q := NewIQ("q", 128, 2)
		inserted, selected := 0, 0
		for i := 0; i < n; i++ {
			if q.Insert(int64(i), 0, nil) {
				inserted++
			}
			if rng.Intn(2) == 0 {
				selected += len(q.SelectReady(0, nil))
			}
		}
		return q.Len() == inserted-selected
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestIQAuxPayloadPreserved(t *testing.T) {
	q := NewIQ("t", 4, 2)
	q.Insert(1, 7, nil)
	q.Insert(2, 9, nil)
	got := q.SelectReady(0, nil)
	if len(got) != 2 || got[0].Aux != 7 || got[1].Aux != 9 {
		t.Fatalf("aux payloads lost: %+v", got)
	}
}

func TestIQIssuedCounter(t *testing.T) {
	q := NewIQ("t", 4, 2)
	q.Insert(1, 0, nil)
	q.Insert(2, 0, nil)
	q.SelectReady(0, nil)
	if q.Issued != 2 {
		t.Errorf("Issued = %d, want 2", q.Issued)
	}
	q.Reset()
	if q.Issued != 0 {
		t.Error("Reset did not clear Issued")
	}
}

// Out-of-order wakeups must still surface entries oldest-first: a younger
// entry waking before an older one cannot jump the selection order.
func TestIQWakeupOrderIndependence(t *testing.T) {
	q := NewIQ("t", 8, 4)
	q.Insert(10, 0, []int64{100}) // oldest
	q.Insert(11, 0, []int64{101})
	q.Insert(12, 0, []int64{102}) // youngest
	// Wake youngest-first.
	q.Wakeup(102)
	q.Wakeup(101)
	q.Wakeup(100)
	got := q.SelectReady(0, nil)
	if len(got) != 3 || got[0].Seq != 10 || got[1].Seq != 11 || got[2].Seq != 12 {
		t.Fatalf("selection order %v, want oldest-first 10,11,12", got)
	}
}

// An entry refused by the accept filter stays on the ready list and is
// re-offered, still in age position, on the next select.
func TestIQRefusedEntryStaysReady(t *testing.T) {
	q := NewIQ("t", 8, 4)
	q.Insert(1, 0, nil)
	q.Insert(2, 0, nil)
	got := q.SelectReady(0, func(e *Entry) bool { return e.Seq != 1 })
	if len(got) != 1 || got[0].Seq != 2 {
		t.Fatalf("got %v, want only seq 2", got)
	}
	got = q.SelectReady(0, nil)
	if len(got) != 1 || got[0].Seq != 1 {
		t.Fatalf("refused entry not re-offered: %v", got)
	}
}

// Property: interleaved inserts, out-of-order wakeups and selects always
// pick ready entries oldest-first (insertion order), mirroring what a full
// age-list scan would produce.
func TestIQReadyListMatchesScanProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%40 + 5
		rng := rand.New(rand.NewSource(seed))
		q := NewIQ("q", 64, 3)
		type slot struct {
			seq  int64
			tag  int64
			woke bool
		}
		var pendingSlots []slot
		var order []int64 // insertion order of currently-queued entries
		picked := map[int64]bool{}
		for i := 0; i < n; i++ {
			switch rng.Intn(3) {
			case 0: // insert, sometimes with a dependency
				seq := int64(i)
				if rng.Intn(2) == 0 {
					tag := int64(1000 + i)
					q.Insert(seq, 0, []int64{tag})
					pendingSlots = append(pendingSlots, slot{seq: seq, tag: tag})
				} else {
					q.Insert(seq, 0, nil)
				}
				order = append(order, seq)
			case 1: // wake a random still-pending entry
				if len(pendingSlots) > 0 {
					j := rng.Intn(len(pendingSlots))
					if !pendingSlots[j].woke {
						q.Wakeup(pendingSlots[j].tag)
						pendingSlots[j].woke = true
					}
				}
			case 2:
				for _, e := range q.SelectReady(0, nil) {
					picked[e.Seq] = true
				}
			}
		}
		// Drain: wake everything, then selection order must equal the
		// insertion order of whatever is still queued.
		for _, s := range pendingSlots {
			if !s.woke {
				q.Wakeup(s.tag)
			}
		}
		var want []int64
		for _, seq := range order {
			if !picked[seq] {
				want = append(want, seq)
			}
		}
		for len(want) > 0 {
			got := q.SelectReady(0, nil)
			if len(got) == 0 {
				return false
			}
			for _, e := range got {
				if len(want) == 0 || e.Seq != want[0] {
					return false
				}
				want = want[1:]
			}
		}
		return q.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Steady-state insert/wakeup/select cycles must not allocate, including
// the no-ready-work early-out path.
func TestIQSteadyStateAllocFree(t *testing.T) {
	q := NewIQ("t", 32, 4)
	allocs := testing.AllocsPerRun(200, func() {
		for i := int64(0); i < 8; i++ {
			q.Insert(i, 0, []int64{100 + i})
		}
		q.SelectReady(0, nil) // nothing ready: early-out
		for i := int64(0); i < 8; i++ {
			q.Wakeup(100 + i)
		}
		for q.Len() > 0 {
			q.SelectReady(0, nil)
		}
	})
	if allocs > 0 {
		t.Errorf("steady-state cycle allocates %v times per run", allocs)
	}
	q.Reset()
	allocs = testing.AllocsPerRun(50, func() { q.Reset() })
	if allocs > 0 {
		t.Errorf("Reset allocates %v times per run", allocs)
	}
}

func TestOccupancySumsQueues(t *testing.T) {
	c := New(0, DefaultConfig())
	c.IntQ.Insert(1, 0, nil)
	c.FPQ.Insert(2, 0, nil)
	c.CopyQ.Insert(3, 0, nil)
	if got := c.Occupancy(); got != 3 {
		t.Errorf("Occupancy = %d, want 3", got)
	}
}
