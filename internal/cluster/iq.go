// Package cluster models one backend cluster of the clustered
// microarchitecture: its issue queues (INT, FP, COPY) with wakeup/select
// logic, its functional-unit occupancy, and its register-file free-list
// accounting. Values are identified by the producing micro-op's sequence
// number; readiness is always per-cluster (a value becomes ready in another
// cluster only when an explicit copy arrives).
package cluster

import "fmt"

// Entry is one issue-queue slot. Entries are linked into two intrusive
// lists owned by the IQ: the age list (every queued entry, insertion
// order) and the ready list (the subset whose operands have all arrived,
// also in insertion order).
type Entry struct {
	// Seq is the waiting micro-op's sequence number.
	Seq int64
	// Aux is policy-defined payload (copy queue: destination cluster).
	Aux int
	// pending counts unready source operands.
	pending int
	// age is the queue-local insertion stamp; it orders both lists.
	// (Seq would not do: copy-queue entries are keyed by the copied
	// value's seq, which does not arrive in insertion order.)
	age uint64

	ageNext, agePrev     *Entry
	readyNext, readyPrev *Entry
	inReady              bool
}

// Ready reports whether all operands have arrived.
func (e *Entry) Ready() bool { return e.pending == 0 }

// IQ is an issue queue with capacity, per-cycle issue width, oldest-first
// selection and tag-based wakeup. Entries and the per-tag waiter lists are
// pooled across the queue's lifetime, so steady-state insert/wakeup/select
// cycles allocate nothing.
//
// Readiness is tracked at wakeup time: an entry whose last pending operand
// arrives moves onto an age-ordered ready list, so SelectReady walks only
// the entries actually eligible this cycle instead of scanning the whole
// occupancy. A cycle with nothing ready is a single integer compare.
type IQ struct {
	name  string
	cap   int
	width int

	// n is the occupancy (age-list length); nReady the ready-list length.
	n, nReady int
	// ageClock stamps insertions; it orders ready-list insertion.
	ageClock uint64
	// ageHead/ageTail bound the age list (all queued entries, oldest
	// first); readyHead/readyTail the ready list (same order, ready only).
	ageHead, ageTail     *Entry
	readyHead, readyTail *Entry

	waiting map[int64][]*Entry // operand tag → waiting entries

	// picked is the reusable SelectReady result buffer; its entries are
	// recycled into free at the start of the next SelectReady call, so a
	// returned slice is valid only until then.
	picked []*Entry
	// free pools retired Entry objects; wfree pools drained waiter lists.
	free  []*Entry
	wfree [][]*Entry

	// Issued counts selections; WakeupEvents counts tag broadcasts that
	// woke at least one entry.
	Issued, WakeupEvents uint64
}

// NewIQ builds an issue queue.
func NewIQ(name string, capacity, width int) *IQ {
	if capacity <= 0 || width <= 0 {
		panic(fmt.Sprintf("cluster: IQ %q capacity %d width %d", name, capacity, width))
	}
	q := &IQ{name: name, cap: capacity, width: width, waiting: make(map[int64][]*Entry)}
	// Pre-populate the entry pool from one flat array: at most cap queued
	// plus width freshly selected entries are ever live, so inserts never
	// allocate.
	ents := make([]Entry, capacity+width)
	q.free = make([]*Entry, len(ents))
	for i := range ents {
		q.free[i] = &ents[i]
	}
	// Likewise seed the waiter-list pool: at most cap tags are waited on at
	// once, and most have one or two waiters, so chunks of a flat backing
	// array absorb nearly all waiting-map appends.
	const waiterSeedCap = 2
	wbacking := make([]*Entry, waiterSeedCap*capacity)
	q.wfree = make([][]*Entry, capacity)
	for i := range q.wfree {
		q.wfree[i] = wbacking[i*waiterSeedCap : i*waiterSeedCap : (i+1)*waiterSeedCap]
	}
	return q
}

// Name returns the queue's label.
func (q *IQ) Name() string { return q.name }

// Len returns current occupancy; Cap the capacity; Width the issue width.
func (q *IQ) Len() int { return q.n }

// Cap returns the capacity.
func (q *IQ) Cap() int { return q.cap }

// Width returns the per-cycle issue width.
func (q *IQ) Width() int { return q.width }

// Full reports whether insertion would fail.
func (q *IQ) Full() bool { return q.n >= q.cap }

// Insert queues the micro-op with the given unready operand tags. Tags
// already ready must be omitted by the caller; the tag slice is not
// retained. Returns false when full.
func (q *IQ) Insert(seq int64, aux int, unreadyTags []int64) bool {
	if q.Full() {
		return false
	}
	var e *Entry
	if n := len(q.free); n > 0 {
		e = q.free[n-1]
		q.free[n-1] = nil
		q.free = q.free[:n-1]
	} else {
		e = &Entry{}
	}
	*e = Entry{Seq: seq, Aux: aux, pending: len(unreadyTags), age: q.ageClock}
	q.ageClock++
	// Append to the age tail: a fresh insert is by definition the youngest.
	e.agePrev = q.ageTail
	if q.ageTail != nil {
		q.ageTail.ageNext = e
	} else {
		q.ageHead = e
	}
	q.ageTail = e
	q.n++
	for _, tag := range unreadyTags {
		ws, ok := q.waiting[tag]
		if !ok {
			if n := len(q.wfree); n > 0 {
				ws = q.wfree[n-1]
				q.wfree[n-1] = nil
				q.wfree = q.wfree[:n-1]
			}
		}
		q.waiting[tag] = append(ws, e)
	}
	if e.pending == 0 {
		// Youngest entry in the queue, so appending keeps the ready list
		// age-ordered.
		q.readyAppend(e)
	}
	return true
}

// readyAppend pushes e (the youngest ready entry) onto the ready tail.
func (q *IQ) readyAppend(e *Entry) {
	e.inReady = true
	e.readyPrev = q.readyTail
	if q.readyTail != nil {
		q.readyTail.readyNext = e
	} else {
		q.readyHead = e
	}
	q.readyTail = e
	q.nReady++
}

// readyInsert places e into the ready list at its age position. Entries
// typically become ready youngest-last, so the scan starts from the tail
// and is O(1) in the common case.
func (q *IQ) readyInsert(e *Entry) {
	at := q.readyTail
	for at != nil && at.age > e.age {
		at = at.readyPrev
	}
	if at == q.readyTail {
		q.readyAppend(e)
		return
	}
	e.inReady = true
	q.nReady++
	if at == nil {
		e.readyPrev = nil
		e.readyNext = q.readyHead
		q.readyHead.readyPrev = e
		q.readyHead = e
		return
	}
	e.readyPrev = at
	e.readyNext = at.readyNext
	at.readyNext.readyPrev = e
	at.readyNext = e
}

// readyRemove unlinks e from the ready list.
func (q *IQ) readyRemove(e *Entry) {
	if e.readyPrev != nil {
		e.readyPrev.readyNext = e.readyNext
	} else {
		q.readyHead = e.readyNext
	}
	if e.readyNext != nil {
		e.readyNext.readyPrev = e.readyPrev
	} else {
		q.readyTail = e.readyPrev
	}
	e.readyNext, e.readyPrev = nil, nil
	e.inReady = false
	q.nReady--
}

// ageRemove unlinks e from the age list.
func (q *IQ) ageRemove(e *Entry) {
	if e.agePrev != nil {
		e.agePrev.ageNext = e.ageNext
	} else {
		q.ageHead = e.ageNext
	}
	if e.ageNext != nil {
		e.ageNext.agePrev = e.agePrev
	} else {
		q.ageTail = e.agePrev
	}
	e.ageNext, e.agePrev = nil, nil
	q.n--
}

// Wakeup broadcasts that the value produced by tag is now readable in this
// cluster; all entries waiting on it drop one pending operand, and entries
// whose last operand this was move onto the ready list in age order.
func (q *IQ) Wakeup(tag int64) {
	ws := q.waiting[tag]
	if len(ws) == 0 {
		return
	}
	for i, e := range ws {
		e.pending--
		if e.pending < 0 {
			panic(fmt.Sprintf("cluster: IQ %q double wakeup of %d", q.name, e.Seq))
		}
		if e.pending == 0 && !e.inReady {
			q.readyInsert(e)
		}
		ws[i] = nil
	}
	delete(q.waiting, tag)
	q.wfree = append(q.wfree, ws[:0])
	q.WakeupEvents++
}

// SelectReady pops up to max ready entries, oldest first. A max of zero or
// a negative value selects up to the configured width. Accept filters
// candidates (e.g. FU availability, link bandwidth); returning false leaves
// the entry queued — and still ready — without consuming a selection slot.
// The returned slice is reused: it is valid only until the next SelectReady
// call on this queue. Cost scales with the ready-list length, not the
// queue occupancy; a cycle with nothing ready does no list work at all.
func (q *IQ) SelectReady(max int, accept func(*Entry) bool) []*Entry {
	if max <= 0 || max > q.width {
		max = q.width
	}
	// Entries handed out by the previous call are done with: recycle them.
	for i, e := range q.picked {
		q.free = append(q.free, e)
		q.picked[i] = nil
	}
	q.picked = q.picked[:0]
	if q.nReady == 0 {
		return q.picked
	}
	for e := q.readyHead; e != nil && len(q.picked) < max; {
		next := e.readyNext
		if accept == nil || accept(e) {
			q.readyRemove(e)
			q.ageRemove(e)
			q.picked = append(q.picked, e)
			q.Issued++
		}
		e = next
	}
	return q.picked
}

// Reset clears the queue (between runs) without allocating: every entry
// returns to the pool and drained waiter lists return to theirs, so a
// pooled core's queues come back warm.
func (q *IQ) Reset() {
	for e := q.ageHead; e != nil; {
		next := e.ageNext
		e.ageNext, e.agePrev = nil, nil
		e.readyNext, e.readyPrev = nil, nil
		e.inReady = false
		q.free = append(q.free, e)
		e = next
	}
	q.ageHead, q.ageTail = nil, nil
	q.readyHead, q.readyTail = nil, nil
	q.n, q.nReady = 0, 0
	q.ageClock = 0
	for i, e := range q.picked {
		q.free = append(q.free, e)
		q.picked[i] = nil
	}
	q.picked = q.picked[:0]
	for tag, ws := range q.waiting {
		for i := range ws {
			ws[i] = nil
		}
		q.wfree = append(q.wfree, ws[:0])
		delete(q.waiting, tag)
	}
	q.Issued, q.WakeupEvents = 0, 0
}
