// Package cluster models one backend cluster of the clustered
// microarchitecture: its issue queues (INT, FP, COPY) with wakeup/select
// logic, its functional-unit occupancy, and its register-file free-list
// accounting. Values are identified by the producing micro-op's sequence
// number; readiness is always per-cluster (a value becomes ready in another
// cluster only when an explicit copy arrives).
package cluster

import "fmt"

// Entry is one issue-queue slot.
type Entry struct {
	// Seq is the waiting micro-op's sequence number.
	Seq int64
	// Aux is policy-defined payload (copy queue: destination cluster).
	Aux int
	// pending counts unready source operands.
	pending int
}

// Ready reports whether all operands have arrived.
func (e *Entry) Ready() bool { return e.pending == 0 }

// IQ is an issue queue with capacity, per-cycle issue width, oldest-first
// selection and tag-based wakeup. Entries and the per-tag waiter lists are
// pooled across the queue's lifetime, so steady-state insert/wakeup/select
// cycles allocate nothing.
type IQ struct {
	name    string
	cap     int
	width   int
	entries []*Entry           // age order (insertion order)
	waiting map[int64][]*Entry // operand tag → waiting entries

	// picked is the reusable SelectReady result buffer; its entries are
	// recycled into free at the start of the next SelectReady call, so a
	// returned slice is valid only until then.
	picked []*Entry
	// free pools retired Entry objects; wfree pools drained waiter lists.
	free  []*Entry
	wfree [][]*Entry

	// Issued counts selections; WakeupEvents counts tag broadcasts that
	// woke at least one entry.
	Issued, WakeupEvents uint64
}

// NewIQ builds an issue queue.
func NewIQ(name string, capacity, width int) *IQ {
	if capacity <= 0 || width <= 0 {
		panic(fmt.Sprintf("cluster: IQ %q capacity %d width %d", name, capacity, width))
	}
	q := &IQ{name: name, cap: capacity, width: width, waiting: make(map[int64][]*Entry)}
	// Pre-populate the entry pool from one flat array: at most cap queued
	// plus width freshly selected entries are ever live, so inserts never
	// allocate.
	ents := make([]Entry, capacity+width)
	q.free = make([]*Entry, len(ents))
	for i := range ents {
		q.free[i] = &ents[i]
	}
	// Likewise seed the waiter-list pool: at most cap tags are waited on at
	// once, and most have one or two waiters, so chunks of a flat backing
	// array absorb nearly all waiting-map appends.
	const waiterSeedCap = 2
	wbacking := make([]*Entry, waiterSeedCap*capacity)
	q.wfree = make([][]*Entry, capacity)
	for i := range q.wfree {
		q.wfree[i] = wbacking[i*waiterSeedCap : i*waiterSeedCap : (i+1)*waiterSeedCap]
	}
	return q
}

// Name returns the queue's label.
func (q *IQ) Name() string { return q.name }

// Len returns current occupancy; Cap the capacity; Width the issue width.
func (q *IQ) Len() int { return len(q.entries) }

// Cap returns the capacity.
func (q *IQ) Cap() int { return q.cap }

// Width returns the per-cycle issue width.
func (q *IQ) Width() int { return q.width }

// Full reports whether insertion would fail.
func (q *IQ) Full() bool { return len(q.entries) >= q.cap }

// Insert queues the micro-op with the given unready operand tags. Tags
// already ready must be omitted by the caller; the tag slice is not
// retained. Returns false when full.
func (q *IQ) Insert(seq int64, aux int, unreadyTags []int64) bool {
	if q.Full() {
		return false
	}
	var e *Entry
	if n := len(q.free); n > 0 {
		e = q.free[n-1]
		q.free[n-1] = nil
		q.free = q.free[:n-1]
		*e = Entry{Seq: seq, Aux: aux, pending: len(unreadyTags)}
	} else {
		e = &Entry{Seq: seq, Aux: aux, pending: len(unreadyTags)}
	}
	q.entries = append(q.entries, e)
	for _, tag := range unreadyTags {
		ws, ok := q.waiting[tag]
		if !ok {
			if n := len(q.wfree); n > 0 {
				ws = q.wfree[n-1]
				q.wfree[n-1] = nil
				q.wfree = q.wfree[:n-1]
			}
		}
		q.waiting[tag] = append(ws, e)
	}
	return true
}

// Wakeup broadcasts that the value produced by tag is now readable in this
// cluster; all entries waiting on it drop one pending operand.
func (q *IQ) Wakeup(tag int64) {
	ws := q.waiting[tag]
	if len(ws) == 0 {
		return
	}
	for i, e := range ws {
		e.pending--
		if e.pending < 0 {
			panic(fmt.Sprintf("cluster: IQ %q double wakeup of %d", q.name, e.Seq))
		}
		ws[i] = nil
	}
	delete(q.waiting, tag)
	q.wfree = append(q.wfree, ws[:0])
	q.WakeupEvents++
}

// SelectReady pops up to max ready entries, oldest first. A max of zero or
// a negative value selects up to the configured width. Accept filters
// candidates (e.g. FU availability, link bandwidth); returning false leaves
// the entry queued without consuming a selection slot. The returned slice
// is reused: it is valid only until the next SelectReady call on this
// queue.
func (q *IQ) SelectReady(max int, accept func(*Entry) bool) []*Entry {
	if max <= 0 || max > q.width {
		max = q.width
	}
	// Entries handed out by the previous call are done with: recycle them.
	for i, e := range q.picked {
		q.free = append(q.free, e)
		q.picked[i] = nil
	}
	picked := q.picked[:0]
	kept := q.entries[:0]
	for _, e := range q.entries {
		if len(picked) < max && e.Ready() && (accept == nil || accept(e)) {
			picked = append(picked, e)
			q.Issued++
			continue
		}
		kept = append(kept, e)
	}
	// Zero the tail so removed entries do not pin memory.
	for i := len(kept); i < len(q.entries); i++ {
		q.entries[i] = nil
	}
	q.entries = kept
	q.picked = picked
	return picked
}

// Reset clears the queue (between runs). Live entries return to the pool
// (every entry is on the age list exactly once, so this collects them all).
func (q *IQ) Reset() {
	for i, e := range q.entries {
		q.free = append(q.free, e)
		q.entries[i] = nil
	}
	q.entries = q.entries[:0]
	for i, e := range q.picked {
		q.free = append(q.free, e)
		q.picked[i] = nil
	}
	q.picked = q.picked[:0]
	q.waiting = make(map[int64][]*Entry)
	q.wfree = q.wfree[:0]
	q.Issued, q.WakeupEvents = 0, 0
}
