package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestWeightedMean(t *testing.T) {
	got := WeightedMean([]float64{1, 3}, []float64{1, 1})
	if got != 2 {
		t.Errorf("WeightedMean = %g, want 2", got)
	}
	got = WeightedMean([]float64{1, 3}, []float64{3, 1})
	if got != 1.5 {
		t.Errorf("WeightedMean = %g, want 1.5", got)
	}
	if !math.IsNaN(WeightedMean(nil, nil)) {
		t.Error("empty WeightedMean should be NaN")
	}
}

func TestWeightedMeanPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	WeightedMean([]float64{1}, []float64{1, 2})
}

func TestMeanAndGeoMean(t *testing.T) {
	if got := Mean([]float64{2, 4}); got != 3 {
		t.Errorf("Mean = %g", got)
	}
	if got := GeoMean([]float64{1, 4}); got != 2 {
		t.Errorf("GeoMean = %g", got)
	}
	if !math.IsNaN(GeoMean([]float64{1, -1})) {
		t.Error("GeoMean with negatives should be NaN")
	}
}

func TestSlowdownSpeedup(t *testing.T) {
	if got := SlowdownPct(110, 100); math.Abs(got-10) > 1e-9 {
		t.Errorf("SlowdownPct = %g, want 10", got)
	}
	if got := SpeedupPct(100, 110); math.Abs(got-10) > 1e-9 {
		t.Errorf("SpeedupPct = %g, want 10", got)
	}
	if got := SlowdownPct(100, 100); got != 0 {
		t.Errorf("SlowdownPct equal = %g, want 0", got)
	}
}

func TestReductionPct(t *testing.T) {
	if got := ReductionPct(50, 100); got != 50 {
		t.Errorf("ReductionPct = %g, want 50", got)
	}
	if got := ReductionPct(0, 0); got != 0 {
		t.Errorf("ReductionPct(0,0) = %g, want 0", got)
	}
	if got := ReductionPct(150, 100); got != -50 {
		t.Errorf("ReductionPct = %g, want -50", got)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if got := Quantile(xs, 0); got != 1 {
		t.Errorf("q0 = %g", got)
	}
	if got := Quantile(xs, 1); got != 4 {
		t.Errorf("q1 = %g", got)
	}
	if got := Quantile(xs, 0.5); got != 2.5 {
		t.Errorf("median = %g, want 2.5", got)
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("name", "value")
	tab.Row("alpha", 1.5)
	tab.Row("b", 22)
	out := tab.String()
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "1.50") || !strings.Contains(out, "22") {
		t.Errorf("table missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Errorf("table has %d lines, want 4", len(lines))
	}
	if !strings.Contains(out, "-") {
		t.Error("missing header rule")
	}
}

func TestTableNaNRendersDash(t *testing.T) {
	tab := NewTable("x")
	tab.Row(math.NaN())
	if !strings.Contains(tab.String(), "-") {
		t.Error("NaN should render as dash")
	}
}

func TestScatterRendering(t *testing.T) {
	sc := NewScatter("test", "speedup", "reduction")
	sc.Add(-5, 3)
	sc.Add(10, -2)
	sc.Add(7, 4)
	out := sc.String()
	if !strings.Contains(out, "*") {
		t.Error("scatter missing points")
	}
	if !strings.Contains(out, "+") {
		t.Error("scatter missing origin")
	}
	if sc.Len() != 3 {
		t.Errorf("Len = %d, want 3", sc.Len())
	}
	// NaN points dropped.
	sc.Add(math.NaN(), 1)
	if sc.Len() != 3 {
		t.Error("NaN point should be dropped")
	}
}

func TestScatterEmpty(t *testing.T) {
	sc := NewScatter("empty", "x", "y")
	if !strings.Contains(sc.String(), "no points") {
		t.Error("empty scatter should say so")
	}
}

// Property: WeightedMean lies within [min,max] of its inputs for positive
// weights.
func TestWeightedMeanBoundsProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) < 2 {
			return true
		}
		xs := make([]float64, 0, len(raw)/2)
		ws := make([]float64, 0, len(raw)/2)
		for i := 0; i+1 < len(raw); i += 2 {
			xs = append(xs, float64(raw[i]))
			ws = append(ws, float64(raw[i+1])+1)
		}
		m := WeightedMean(xs, ws)
		mn, mx := xs[0], xs[0]
		for _, x := range xs {
			mn = math.Min(mn, x)
			mx = math.Max(mx, x)
		}
		return m >= mn-1e-9 && m <= mx+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: SlowdownPct and SpeedupPct are inverse-ish: slowdown of b vs a
// equals −speedup of... check sign consistency.
func TestSlowdownSpeedupSignsProperty(t *testing.T) {
	f := func(a, b uint16) bool {
		ca, cb := int64(a)+1, int64(b)+1
		sl := SlowdownPct(ca, cb)
		sp := SpeedupPct(ca, cb)
		// If ca > cb the config is slower: positive slowdown, negative speedup.
		if ca > cb {
			return sl > 0 && sp < 0
		}
		if ca < cb {
			return sl < 0 && sp > 0
		}
		return sl == 0 && sp == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
