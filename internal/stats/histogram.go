package stats

import (
	"fmt"
	"math"
	"strings"
)

// Histogram is a fixed-bucket histogram for integer-valued samples
// (issue-queue occupancies, chain lengths, copy latencies…).
type Histogram struct {
	// buckets[i] counts samples equal to i for i < len(buckets)-1; the
	// last bucket counts overflow.
	buckets []uint64
	count   uint64
	sum     int64
	min     int64
	max     int64
}

// NewHistogram builds a histogram for samples in [0, limit); larger
// samples land in the overflow bucket.
func NewHistogram(limit int) *Histogram {
	if limit <= 0 {
		panic(fmt.Sprintf("stats: histogram limit %d", limit))
	}
	return &Histogram{buckets: make([]uint64, limit+1), min: math.MaxInt64, max: math.MinInt64}
}

// Observe records one sample. Negative samples clamp to bucket 0.
func (h *Histogram) Observe(v int64) {
	idx := v
	if idx < 0 {
		idx = 0
	}
	if idx >= int64(len(h.buckets)-1) {
		idx = int64(len(h.buckets) - 1)
	}
	h.buckets[idx]++
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the total samples.
func (h *Histogram) Count() uint64 { return h.count }

// Mean returns the sample mean, NaN when empty.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return math.NaN()
	}
	return float64(h.sum) / float64(h.count)
}

// Min and Max return the extremes (zero values when empty).
func (h *Histogram) Min() int64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest observed sample.
func (h *Histogram) Max() int64 {
	if h.count == 0 {
		return 0
	}
	return h.max
}

// Percentile returns the smallest bucket index at which the cumulative
// count reaches p (0..1) of all samples; overflow reports len(buckets)-1.
func (h *Histogram) Percentile(p float64) int {
	if h.count == 0 {
		return 0
	}
	target := uint64(math.Ceil(p * float64(h.count)))
	if target == 0 {
		target = 1
	}
	var acc uint64
	for i, c := range h.buckets {
		acc += c
		if acc >= target {
			return i
		}
	}
	return len(h.buckets) - 1
}

// Render draws a compact ASCII bar chart: buckets are coalesced into at
// most 24 groups so wide distributions stay readable.
func (h *Histogram) Render(label string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: n=%d mean=%.2f min=%d max=%d p50=%d p95=%d\n",
		label, h.count, h.Mean(), h.Min(), h.Max(), h.Percentile(0.5), h.Percentile(0.95))
	if h.count == 0 {
		return b.String()
	}
	// Find the last non-empty bucket to bound the rendered range.
	last := 0
	for i, c := range h.buckets {
		if c > 0 {
			last = i
		}
	}
	const maxGroups = 24
	groupSize := (last + maxGroups) / maxGroups
	if groupSize < 1 {
		groupSize = 1
	}
	type group struct {
		lo, hi int
		count  uint64
	}
	var groups []group
	var peak uint64
	for lo := 0; lo <= last; lo += groupSize {
		hi := lo + groupSize - 1
		if hi > last {
			hi = last
		}
		var c uint64
		for i := lo; i <= hi && i < len(h.buckets); i++ {
			c += h.buckets[i]
		}
		if c > peak {
			peak = c
		}
		groups = append(groups, group{lo, hi, c})
	}
	for _, g := range groups {
		if g.count == 0 {
			continue
		}
		bar := int(float64(g.count) / float64(peak) * 40)
		name := fmt.Sprintf("%4d", g.lo)
		if g.hi != g.lo {
			name = fmt.Sprintf("%4d-%-4d", g.lo, g.hi)
		}
		if g.hi == len(h.buckets)-1 {
			name += "+"
		}
		fmt.Fprintf(&b, "  %-10s |%s %d\n", name, strings.Repeat("#", bar), g.count)
	}
	return b.String()
}
