// Package stats provides the small numeric and rendering utilities the
// experiment harness uses: weighted means (PinPoints-style aggregation),
// slowdown/speedup arithmetic, text tables and ASCII scatter plots.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// WeightedMean returns Σ w·x / Σ w. Panics on mismatched lengths; returns
// NaN for empty or zero-weight input.
func WeightedMean(xs, ws []float64) float64 {
	if len(xs) != len(ws) {
		panic(fmt.Sprintf("stats: %d values, %d weights", len(xs), len(ws)))
	}
	sw, sx := 0.0, 0.0
	for i := range xs {
		sw += ws[i]
		sx += xs[i] * ws[i]
	}
	if sw == 0 {
		return math.NaN()
	}
	return sx / sw
}

// Mean returns the arithmetic mean, NaN when empty.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of positive values, NaN when empty.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// SlowdownPct returns (cycles/baseCycles − 1)·100: positive means slower
// than the baseline (the paper's Figures 5 and 7 y-axis).
func SlowdownPct(cycles, baseCycles int64) float64 {
	if baseCycles == 0 {
		return math.NaN()
	}
	return (float64(cycles)/float64(baseCycles) - 1) * 100
}

// SpeedupPct returns (base/new − 1)·100: positive means the new
// configuration is faster (the paper's Figure 6 x-axis).
func SpeedupPct(newCycles, baseCycles int64) float64 {
	if newCycles == 0 {
		return math.NaN()
	}
	return (float64(baseCycles)/float64(newCycles) - 1) * 100
}

// ReductionPct returns (old−new)/old·100: positive means new is lower (the
// paper's Figure 6 y-axes: copy reduction, allocation-stall reduction).
func ReductionPct(newV, oldV float64) float64 {
	if oldV == 0 {
		if newV == 0 {
			return 0
		}
		return math.Inf(-1)
	}
	return (oldV - newV) / oldV * 100
}

// Quantile returns the q-quantile (0..1) by linear interpolation.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}
