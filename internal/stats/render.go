package stats

import (
	"fmt"
	"math"
	"strings"
)

// Table renders aligned text tables for the experiment reports.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable starts a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// Row appends a row; cells are rendered with %v, floats with %.2f.
func (t *Table) Row(cells ...any) *Table {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			if math.IsNaN(v) {
				row[i] = "-"
			} else {
				row[i] = fmt.Sprintf("%.2f", v)
			}
		case float32:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
	return t
}

// String renders the table.
func (t *Table) String() string {
	ncol := len(t.header)
	for _, r := range t.rows {
		if len(r) > ncol {
			ncol = len(r)
		}
	}
	width := make([]int, ncol)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	measure(t.header)
	for _, r := range t.rows {
		measure(r)
	}
	var b strings.Builder
	writeRow := func(r []string) {
		for i := 0; i < ncol; i++ {
			cell := ""
			if i < len(r) {
				cell = r[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	total := 0
	for _, w := range width {
		total += w
	}
	b.WriteString(strings.Repeat("-", total+2*(ncol-1)))
	b.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// Scatter renders an ASCII scatter plot (the paper's Figure 6 panels).
type Scatter struct {
	title, xlabel, ylabel string
	xs, ys                []float64
}

// NewScatter starts a plot.
func NewScatter(title, xlabel, ylabel string) *Scatter {
	return &Scatter{title: title, xlabel: xlabel, ylabel: ylabel}
}

// Add appends one point.
func (s *Scatter) Add(x, y float64) {
	if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
		return
	}
	s.xs = append(s.xs, x)
	s.ys = append(s.ys, y)
}

// Len returns the point count.
func (s *Scatter) Len() int { return len(s.xs) }

// String renders a w×h character grid with axes through zero.
func (s *Scatter) String() string {
	const w, h = 61, 21
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", s.title)
	if len(s.xs) == 0 {
		b.WriteString("(no points)\n")
		return b.String()
	}
	minX, maxX := minMax(s.xs)
	minY, maxY := minMax(s.ys)
	// Include origin so the zero axes render.
	minX, maxX = math.Min(minX, 0), math.Max(maxX, 0)
	minY, maxY = math.Min(minY, 0), math.Max(maxY, 0)
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, h)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", w))
	}
	colOf := func(x float64) int { return int((x - minX) / (maxX - minX) * float64(w-1)) }
	rowOf := func(y float64) int { return (h - 1) - int((y-minY)/(maxY-minY)*float64(h-1)) }
	// Axes.
	zc, zr := colOf(0), rowOf(0)
	for r := 0; r < h; r++ {
		grid[r][zc] = '|'
	}
	for cidx := 0; cidx < w; cidx++ {
		if grid[zr][cidx] == ' ' {
			grid[zr][cidx] = '-'
		}
	}
	grid[zr][zc] = '+'
	for i := range s.xs {
		grid[rowOf(s.ys[i])][colOf(s.xs[i])] = '*'
	}
	fmt.Fprintf(&b, "y: %s  [%.1f, %.1f]\n", s.ylabel, minY, maxY)
	for _, row := range grid {
		b.Write(row)
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "x: %s  [%.1f, %.1f]   n=%d\n", s.xlabel, minX, maxX, len(s.xs))
	return b.String()
}

func minMax(xs []float64) (float64, float64) {
	mn, mx := xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < mn {
			mn = x
		}
		if x > mx {
			mx = x
		}
	}
	return mn, mx
}
