package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(10)
	for _, v := range []int64{1, 2, 2, 3, 3, 3} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Errorf("Count = %d", h.Count())
	}
	if got := h.Mean(); math.Abs(got-14.0/6) > 1e-9 {
		t.Errorf("Mean = %g", got)
	}
	if h.Min() != 1 || h.Max() != 3 {
		t.Errorf("Min/Max = %d/%d", h.Min(), h.Max())
	}
	if got := h.Percentile(0.5); got != 2 {
		t.Errorf("p50 = %d, want 2", got)
	}
	if got := h.Percentile(1.0); got != 3 {
		t.Errorf("p100 = %d, want 3", got)
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	h := NewHistogram(4)
	h.Observe(100)
	h.Observe(-5)
	if h.Count() != 2 {
		t.Errorf("Count = %d", h.Count())
	}
	if h.Max() != 100 || h.Min() != -5 {
		t.Errorf("Min/Max = %d/%d", h.Min(), h.Max())
	}
	if got := h.Percentile(1.0); got != 4 {
		t.Errorf("overflow percentile = %d, want 4 (overflow bucket)", got)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(4)
	if !math.IsNaN(h.Mean()) {
		t.Error("empty Mean should be NaN")
	}
	if h.Percentile(0.5) != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Error("empty extremes should be zero")
	}
}

func TestHistogramRender(t *testing.T) {
	h := NewHistogram(8)
	for i := int64(0); i < 20; i++ {
		h.Observe(i % 4)
	}
	out := h.Render("occupancy")
	if !strings.Contains(out, "occupancy") || !strings.Contains(out, "#") {
		t.Errorf("render:\n%s", out)
	}
	empty := NewHistogram(4).Render("empty")
	if !strings.Contains(empty, "n=0") {
		t.Errorf("empty render:\n%s", empty)
	}
}

// Property: percentiles are monotone in p and bounded by the bucket range.
func TestHistogramPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		h := NewHistogram(16)
		for _, v := range raw {
			h.Observe(int64(v % 20))
		}
		if len(raw) == 0 {
			return true
		}
		prev := -1
		for _, p := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 1.0} {
			q := h.Percentile(p)
			if q < prev || q > 16 {
				return false
			}
			prev = q
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: count equals observations; mean within [min,max].
func TestHistogramMomentsProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		h := NewHistogram(32)
		for _, v := range raw {
			h.Observe(int64(v))
		}
		if h.Count() != uint64(len(raw)) {
			return false
		}
		m := h.Mean()
		return m >= float64(h.Min())-1e-9 && m <= float64(h.Max())+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
