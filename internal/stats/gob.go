package stats

import (
	"bytes"
	"encoding/gob"
)

// histogramWire is the exported mirror of Histogram for gob transport —
// Histogram's fields stay unexported so only Observe can mutate them, but
// persisted results (engine result store, clusterd responses) need the
// distributions to survive a round trip.
type histogramWire struct {
	Buckets  []uint64
	Count    uint64
	Sum      int64
	Min, Max int64
}

// GobEncode implements gob.GobEncoder.
func (h *Histogram) GobEncode() ([]byte, error) {
	var b bytes.Buffer
	err := gob.NewEncoder(&b).Encode(histogramWire{
		Buckets: h.buckets, Count: h.count, Sum: h.sum, Min: h.min, Max: h.max,
	})
	return b.Bytes(), err
}

// GobDecode implements gob.GobDecoder.
func (h *Histogram) GobDecode(data []byte) error {
	var w histogramWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return err
	}
	h.buckets, h.count, h.sum, h.min, h.max = w.Buckets, w.Count, w.Sum, w.Min, w.Max
	return nil
}
