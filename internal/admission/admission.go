// Package admission is clusterd's overload-protection front door:
// per-tenant token-bucket rate limits and in-flight job quotas, decided
// before a submission touches the engine. The model is
// criticality-aware admission, not blind throttling — a rejected
// request learns *why* (a stable reason code) and *when to come back*
// (a Retry-After hint), so well-behaved clients back off instead of
// hammering, and one flooding tenant cannot starve the rest: every
// tenant owns its own bucket and quota, and the engine behind the
// door drains admitted work through priority lanes (see
// engine.Lane), not FIFO.
//
// A tenant is whatever identity the service derives from a request
// (bearer token, tenant header, "anon"); the controller never
// interprets it. All methods are safe for concurrent use, and the
// clock is injectable so refill behavior is testable deterministically.
package admission

import (
	"math"
	"sync"
	"time"
)

// Stable rejection reasons, carried to clients as api error codes and
// to operators as the reason label of
// clusterd_admission_rejects_total.
const (
	// ReasonRateLimited means the tenant's token bucket cannot cover
	// the batch: sustained submission rate exceeds its refill rate.
	ReasonRateLimited = "rate_limited"
	// ReasonQuotaExceeded means admitting the batch would push the
	// tenant's in-flight jobs over its quota: too much concurrent
	// work outstanding, independent of arrival rate.
	ReasonQuotaExceeded = "quota_exceeded"
)

// Limits configures the per-tenant bounds. The zero value disables
// everything (every request admitted), so an unconfigured server
// behaves exactly as before the admission layer existed.
type Limits struct {
	// Rate is each tenant's sustained budget in jobs per second;
	// <= 0 disables rate limiting.
	Rate float64
	// Burst is the bucket capacity — the largest batch a fully idle
	// tenant can land at once. Zero defaults to max(Rate, 1) jobs; a
	// batch larger than Burst can never be admitted while rate
	// limiting is on, so size Burst to the largest legitimate batch.
	Burst float64
	// MaxInFlight caps each tenant's concurrently running jobs;
	// <= 0 disables the quota.
	MaxInFlight int
}

// withDefaults resolves the documented zero-value behaviors.
func (l Limits) withDefaults() Limits {
	if l.Rate > 0 && l.Burst <= 0 {
		l.Burst = math.Max(l.Rate, 1)
	}
	return l
}

// Decision is the outcome of one Admit call.
type Decision struct {
	// OK reports whether the batch was admitted. When true the caller
	// owes a Release(tenant, n) once the batch's jobs finish.
	OK bool
	// Reason is ReasonRateLimited or ReasonQuotaExceeded when !OK.
	Reason string
	// RetryAfter is the server's earliest-useful-retry hint when !OK:
	// for rate limiting, the refill time the batch is short by; for
	// quota, a nominal pause for in-flight work to drain. Never
	// negative; zero only when no honest hint exists.
	RetryAfter time.Duration
}

// Stats is a snapshot of the controller's counters.
type Stats struct {
	// Admitted counts jobs (not batches) admitted.
	Admitted int64
	// RejectedRate and RejectedQuota count rejected batches by reason.
	RejectedRate, RejectedQuota int64
	// InFlight is the current total of admitted-but-unreleased jobs
	// across all tenants.
	InFlight int64
	// Tenants is the number of tenants currently tracked.
	Tenants int
}

// tenant is one identity's bucket and quota state.
type tenant struct {
	tokens   float64 // current bucket fill, in jobs
	refilled time.Time
	inflight int
	lastSeen time.Time
}

// Controller applies Limits per tenant. The zero Limits admits
// everything; construct with New.
type Controller struct {
	mu      sync.Mutex
	limits  Limits
	now     func() time.Time
	tenants map[string]*tenant

	admitted, rejectedRate, rejectedQuota int64
	inflight                              int64
}

// maxTenants bounds the tracked-tenant map: beyond it, idle tenants
// (nothing in flight, full bucket) are pruned oldest-first so a scan
// of garbage identities cannot grow the controller without bound.
const maxTenants = 4096

// New builds a controller enforcing limits.
func New(limits Limits) *Controller {
	return &Controller{
		limits:  limits.withDefaults(),
		now:     time.Now,
		tenants: make(map[string]*tenant),
	}
}

// SetClock injects a deterministic clock (tests).
func (c *Controller) SetClock(now func() time.Time) {
	c.mu.Lock()
	c.now = now
	c.mu.Unlock()
}

// Limits returns the configured bounds.
func (c *Controller) Limits() Limits {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.limits
}

// lookup returns (creating if needed) the tenant's state with its
// bucket refilled to now.
func (c *Controller) lookup(id string, now time.Time) *tenant {
	t := c.tenants[id]
	if t == nil {
		if len(c.tenants) >= maxTenants {
			c.prune(now)
		}
		t = &tenant{tokens: c.limits.Burst, refilled: now}
		c.tenants[id] = t
	} else if c.limits.Rate > 0 {
		elapsed := now.Sub(t.refilled).Seconds()
		if elapsed > 0 {
			t.tokens = math.Min(c.limits.Burst, t.tokens+elapsed*c.limits.Rate)
			t.refilled = now
		}
	}
	t.lastSeen = now
	return t
}

// prune drops idle tenants (no in-flight work, bucket full once
// refilled to now — dropping them resets nothing a retry could
// exploit), oldest-seen first, until the map is half empty. Callers
// hold the mutex.
func (c *Controller) prune(now time.Time) {
	type idle struct {
		id   string
		seen time.Time
	}
	var idles []idle
	for id, t := range c.tenants {
		fill := t.tokens
		if c.limits.Rate > 0 {
			fill = math.Min(c.limits.Burst, fill+now.Sub(t.refilled).Seconds()*c.limits.Rate)
		}
		if t.inflight == 0 && fill >= c.limits.Burst-1e-9 {
			idles = append(idles, idle{id, t.lastSeen})
		}
	}
	for len(c.tenants) > maxTenants/2 && len(idles) > 0 {
		oldest := 0
		for i := range idles {
			if idles[i].seen.Before(idles[oldest].seen) {
				oldest = i
			}
		}
		delete(c.tenants, idles[oldest].id)
		idles[oldest] = idles[len(idles)-1]
		idles = idles[:len(idles)-1]
	}
}

// Admit decides whether tenant may land a batch of n jobs right now.
// Quota is checked before rate so a tenant drowning in its own
// in-flight work is told to wait for completions, not to slow its
// arrival rate — retrying sooner would not help it. Admission takes n
// bucket tokens and n quota slots atomically; a rejected batch takes
// nothing.
func (c *Controller) Admit(tenantID string, n int) Decision {
	if n <= 0 {
		return Decision{OK: true}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.limits.Rate <= 0 && c.limits.MaxInFlight <= 0 {
		c.admitted += int64(n)
		return Decision{OK: true}
	}
	now := c.now()
	t := c.lookup(tenantID, now)
	if c.limits.MaxInFlight > 0 && t.inflight+n > c.limits.MaxInFlight {
		c.rejectedQuota++
		// The honest hint would need completion times the controller
		// cannot see; a nominal second paces retries without lying.
		return Decision{Reason: ReasonQuotaExceeded, RetryAfter: time.Second}
	}
	if c.limits.Rate > 0 && t.tokens < float64(n) {
		c.rejectedRate++
		short := float64(n) - t.tokens
		return Decision{
			Reason:     ReasonRateLimited,
			RetryAfter: time.Duration(short / c.limits.Rate * float64(time.Second)),
		}
	}
	if c.limits.Rate > 0 {
		t.tokens -= float64(n)
	}
	t.inflight += n
	c.inflight += int64(n)
	c.admitted += int64(n)
	return Decision{OK: true}
}

// Release returns n finished jobs' quota slots to the tenant. Every
// admitted batch must be released exactly once, when its last job
// completes.
func (c *Controller) Release(tenantID string, n int) {
	if n <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if t := c.tenants[tenantID]; t != nil {
		t.inflight -= n
		if t.inflight < 0 {
			t.inflight = 0
		}
	}
	c.inflight -= int64(n)
	if c.inflight < 0 {
		c.inflight = 0
	}
}

// Stats snapshots the counters.
func (c *Controller) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Admitted:      c.admitted,
		RejectedRate:  c.rejectedRate,
		RejectedQuota: c.rejectedQuota,
		InFlight:      c.inflight,
		Tenants:       len(c.tenants),
	}
}
