package admission

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for deterministic refill.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newTestController(l Limits) (*Controller, *fakeClock) {
	c := New(l)
	clk := newFakeClock()
	c.SetClock(clk.now)
	return c, clk
}

func TestZeroLimitsAdmitEverything(t *testing.T) {
	c := New(Limits{})
	for i := 0; i < 1000; i++ {
		if d := c.Admit("anyone", 100); !d.OK {
			t.Fatalf("zero-limit controller rejected: %+v", d)
		}
	}
	if got := c.Stats().Admitted; got != 100000 {
		t.Fatalf("Admitted = %d, want 100000", got)
	}
}

func TestRateLimitRefill(t *testing.T) {
	c, clk := newTestController(Limits{Rate: 10, Burst: 20})

	// A fresh tenant starts with a full bucket: one burst fits.
	if d := c.Admit("a", 20); !d.OK {
		t.Fatalf("initial burst rejected: %+v", d)
	}
	// The bucket is empty; the next job must be rate_limited with an
	// honest refill hint (1 job at 10/s = 100ms).
	d := c.Admit("a", 1)
	if d.OK || d.Reason != ReasonRateLimited {
		t.Fatalf("want rate_limited, got %+v", d)
	}
	if d.RetryAfter <= 0 || d.RetryAfter > 100*time.Millisecond {
		t.Fatalf("RetryAfter = %v, want (0, 100ms]", d.RetryAfter)
	}

	// After the hinted wait the job fits.
	clk.advance(d.RetryAfter)
	if d := c.Admit("a", 1); !d.OK {
		t.Fatalf("post-refill admit rejected: %+v", d)
	}

	// Refill clamps at Burst: a long idle period doesn't bank more
	// than one burst.
	clk.advance(time.Hour)
	if d := c.Admit("a", 21); d.OK {
		t.Fatal("admitted 21 jobs with Burst=20 after long idle")
	}
	if d := c.Admit("a", 20); !d.OK {
		t.Fatalf("full burst after idle rejected: %+v", d)
	}
}

func TestRateLimitIsPerTenant(t *testing.T) {
	c, _ := newTestController(Limits{Rate: 1, Burst: 5})
	if d := c.Admit("flood", 5); !d.OK {
		t.Fatalf("tenant flood burst rejected: %+v", d)
	}
	if d := c.Admit("flood", 1); d.OK {
		t.Fatal("tenant flood should be out of tokens")
	}
	// A different tenant is unaffected by flood's empty bucket.
	if d := c.Admit("calm", 5); !d.OK {
		t.Fatalf("tenant calm rejected because of flood: %+v", d)
	}
}

func TestQuota(t *testing.T) {
	c, _ := newTestController(Limits{MaxInFlight: 8})

	if d := c.Admit("a", 8); !d.OK {
		t.Fatalf("admit up to quota rejected: %+v", d)
	}
	d := c.Admit("a", 1)
	if d.OK || d.Reason != ReasonQuotaExceeded {
		t.Fatalf("want quota_exceeded, got %+v", d)
	}
	if d.RetryAfter <= 0 {
		t.Fatalf("quota rejection should hint a retry pause, got %v", d.RetryAfter)
	}

	// Quota is in-flight, not cumulative: releasing frees slots.
	c.Release("a", 3)
	if d := c.Admit("a", 3); !d.OK {
		t.Fatalf("admit after release rejected: %+v", d)
	}
	// Other tenants have their own quota.
	if d := c.Admit("b", 8); !d.OK {
		t.Fatalf("tenant b hit tenant a's quota: %+v", d)
	}
}

func TestQuotaCheckedBeforeRate(t *testing.T) {
	// Tokens available but quota full: the reason must be quota, since
	// retrying sooner can't help until work completes.
	c, _ := newTestController(Limits{Rate: 1000, Burst: 1000, MaxInFlight: 1})
	if d := c.Admit("a", 1); !d.OK {
		t.Fatalf("first admit rejected: %+v", d)
	}
	if d := c.Admit("a", 1); d.OK || d.Reason != ReasonQuotaExceeded {
		t.Fatalf("want quota_exceeded, got %+v", d)
	}
}

func TestRejectionTakesNothing(t *testing.T) {
	c, _ := newTestController(Limits{Rate: 10, Burst: 10, MaxInFlight: 100})
	if d := c.Admit("a", 6); !d.OK {
		t.Fatalf("admit rejected: %+v", d)
	}
	// 4 tokens left: a 6-job batch is rejected and must not burn them.
	if d := c.Admit("a", 6); d.OK {
		t.Fatal("admitted past bucket")
	}
	if d := c.Admit("a", 4); !d.OK {
		t.Fatalf("rejected batch consumed tokens: %+v", d)
	}
	st := c.Stats()
	if st.InFlight != 10 {
		t.Fatalf("InFlight = %d, want 10 (rejected batch must not hold quota)", st.InFlight)
	}
}

func TestStats(t *testing.T) {
	c, _ := newTestController(Limits{Rate: 1, Burst: 2, MaxInFlight: 2})
	c.Admit("a", 2)   // admitted
	c.Admit("a", 1)   // quota (checked first; in-flight full)
	c.Release("a", 2) // drain
	c.Admit("a", 1)   // rate (bucket empty, quota free)
	c.Admit("b", 2)   // admitted, second tenant
	st := c.Stats()
	want := Stats{Admitted: 4, RejectedRate: 1, RejectedQuota: 1, InFlight: 2, Tenants: 2}
	if st != want {
		t.Fatalf("Stats = %+v, want %+v", st, want)
	}
}

func TestReleaseUnknownTenantAndUnderflow(t *testing.T) {
	c, _ := newTestController(Limits{MaxInFlight: 4})
	c.Release("ghost", 5) // must not panic or wedge the totals
	if st := c.Stats(); st.InFlight != 0 {
		t.Fatalf("InFlight = %d after spurious release, want 0", st.InFlight)
	}
	if d := c.Admit("ghost", 4); !d.OK {
		t.Fatalf("admit after spurious release rejected: %+v", d)
	}
}

func TestPruneBoundsTenantMap(t *testing.T) {
	c, clk := newTestController(Limits{Rate: 1000, Burst: 1000})
	// A scan of one-shot identities: each admits once, completes,
	// refills to full between arrivals, and is prunable.
	for i := 0; i < maxTenants+100; i++ {
		c.Admit(fmt.Sprintf("scan-%d", i), 1)
		c.Release(fmt.Sprintf("scan-%d", i), 1)
		clk.advance(time.Second)
	}
	if n := c.Stats().Tenants; n > maxTenants {
		t.Fatalf("tenant map grew to %d, want <= %d", n, maxTenants)
	}
}

func TestPruneKeepsBusyTenants(t *testing.T) {
	c, clk := newTestController(Limits{Rate: 1000, Burst: 1000, MaxInFlight: 10})
	if d := c.Admit("busy", 5); !d.OK {
		t.Fatal("busy admit rejected")
	}
	for i := 0; i < maxTenants+10; i++ {
		c.Admit(fmt.Sprintf("scan-%d", i), 1)
		c.Release(fmt.Sprintf("scan-%d", i), 1)
		clk.advance(time.Second)
	}
	// busy still holds 5 in flight; its quota accounting must survive
	// the prune.
	if d := c.Admit("busy", 6); d.OK {
		t.Fatal("busy tenant's in-flight count was pruned away")
	}
	c.Release("busy", 5)
	if d := c.Admit("busy", 10); !d.OK {
		t.Fatalf("busy admit after release rejected: %+v", d)
	}
}

func TestConcurrentAdmitRelease(t *testing.T) {
	c, _ := newTestController(Limits{MaxInFlight: 64})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			id := fmt.Sprintf("tenant-%d", g%2)
			for i := 0; i < 500; i++ {
				if d := c.Admit(id, 2); d.OK {
					c.Release(id, 2)
				}
			}
		}(g)
	}
	wg.Wait()
	if st := c.Stats(); st.InFlight != 0 {
		t.Fatalf("InFlight = %d after balanced admit/release, want 0", st.InFlight)
	}
}
