package prog

import (
	"fmt"
	"math"

	"clustersim/internal/uarch"
)

// Validate checks the structural invariants the rest of the system relies
// on and returns the first violation found, or nil.
//
// Invariants:
//   - at least one block, entry block non-empty
//   - block IDs match their slice position
//   - every CFG edge targets an existing block
//   - non-terminal blocks have edge probabilities summing to ~1
//   - register operands are valid or RegNone; FP ops write FP registers,
//     INT ops write INT registers
//   - memory ops carry a memory pattern, non-memory ops carry MemNone
//   - branch ops are the last op of their block; only branch blocks have
//     more than one successor
//   - TakenProb and Bias lie in [0,1]
func Validate(p *Program) error {
	if len(p.Blocks) == 0 {
		return fmt.Errorf("prog %q: no blocks", p.Name)
	}
	if len(p.Blocks[0].Ops) == 0 {
		return fmt.Errorf("prog %q: empty entry block", p.Name)
	}
	for bi, b := range p.Blocks {
		if b.ID != bi {
			return fmt.Errorf("prog %q: block at index %d has ID %d", p.Name, bi, b.ID)
		}
		if err := validateEdges(p, b); err != nil {
			return err
		}
		for i := range b.Ops {
			if err := validateOp(p, b, i); err != nil {
				return err
			}
		}
	}
	return nil
}

func validateEdges(p *Program, b *Block) error {
	if len(b.Succs) == 0 {
		return nil // terminal block: the trace expander restarts at entry
	}
	sum := 0.0
	for _, e := range b.Succs {
		if e.To < 0 || e.To >= len(p.Blocks) {
			return fmt.Errorf("prog %q: block %d edge to nonexistent block %d", p.Name, b.ID, e.To)
		}
		if e.Prob < 0 || e.Prob > 1 {
			return fmt.Errorf("prog %q: block %d edge prob %g out of range", p.Name, b.ID, e.Prob)
		}
		sum += e.Prob
	}
	if math.Abs(sum-1) > 1e-6 {
		return fmt.Errorf("prog %q: block %d edge probabilities sum to %g", p.Name, b.ID, sum)
	}
	if len(b.Succs) > 1 {
		last := &b.Ops[len(b.Ops)-1]
		if len(b.Ops) == 0 || !last.Opcode.IsBranch() {
			return fmt.Errorf("prog %q: block %d has %d successors but no terminating branch",
				p.Name, b.ID, len(b.Succs))
		}
	}
	return nil
}

func validateOp(p *Program, b *Block, i int) error {
	op := &b.Ops[i]
	addr := OpAddr{b.ID, i}
	for _, src := range [2]uarch.Reg{op.Src1, op.Src2} {
		if src != uarch.RegNone && !src.Valid() {
			return fmt.Errorf("prog %q: %v has invalid source %d", p.Name, addr, src)
		}
	}
	if op.Dst != uarch.RegNone {
		if !op.Dst.Valid() {
			return fmt.Errorf("prog %q: %v has invalid dest %d", p.Name, addr, op.Dst)
		}
		isFPOp := op.Opcode.Class() == uarch.ClassFP ||
			(op.Opcode == uarch.OpLoad && op.Dst.IsFP())
		if op.Opcode.Class() == uarch.ClassFP && !op.Dst.IsFP() {
			return fmt.Errorf("prog %q: %v fp op writes int register %v", p.Name, addr, op.Dst)
		}
		if op.Opcode.Class() == uarch.ClassInt && op.Dst.IsFP() {
			return fmt.Errorf("prog %q: %v int op writes fp register %v", p.Name, addr, op.Dst)
		}
		_ = isFPOp
	}
	if op.Opcode.IsMem() && op.Mem.Pattern == MemNone {
		return fmt.Errorf("prog %q: %v memory op without memory pattern", p.Name, addr)
	}
	if !op.Opcode.IsMem() && op.Mem.Pattern != MemNone {
		return fmt.Errorf("prog %q: %v non-memory op with memory pattern %v", p.Name, addr, op.Mem.Pattern)
	}
	if op.Opcode.IsMem() && op.Mem.Pattern != MemNone {
		if op.Mem.WorkingSet <= 0 {
			return fmt.Errorf("prog %q: %v memory op with working set %d", p.Name, addr, op.Mem.WorkingSet)
		}
	}
	if op.Opcode == uarch.OpCopy {
		return fmt.Errorf("prog %q: %v copy micro-ops cannot appear in programs", p.Name, addr)
	}
	if op.TakenProb < 0 || op.TakenProb > 1 {
		return fmt.Errorf("prog %q: %v taken prob %g out of range", p.Name, addr, op.TakenProb)
	}
	if op.Bias < 0 || op.Bias > 1 {
		return fmt.Errorf("prog %q: %v bias %g out of range", p.Name, addr, op.Bias)
	}
	if op.Opcode.IsBranch() && i != len(b.Ops)-1 {
		return fmt.Errorf("prog %q: %v branch not at end of block", p.Name, addr)
	}
	return nil
}
