package prog

import (
	"testing"

	"clustersim/internal/uarch"
)

// chainProgram builds a linear chain of n single-op blocks connected by
// probability-1 edges.
func chainProgram(n int) *Program {
	b := NewBuilder("chain")
	b.Int(uarch.OpAdd, uarch.IntReg(0), uarch.IntReg(0), uarch.IntReg(1))
	for i := 1; i < n; i++ {
		prev := i - 1
		id := b.NewBlock()
		b.Int(uarch.OpAdd, uarch.IntReg(0), uarch.IntReg(0), uarch.IntReg(1))
		b.Block(prev).Jump(id)
		b.Block(id)
	}
	return b.MustBuild()
}

func TestFormRegionsMergesLikelyPath(t *testing.T) {
	p := chainProgram(5)
	regions := FormRegions(p, RegionOptions{})
	if len(regions) != 1 {
		t.Fatalf("got %d regions, want 1 (whole chain merged)", len(regions))
	}
	if regions[0].NumOps() != 5 {
		t.Errorf("region has %d ops, want 5", regions[0].NumOps())
	}
}

func TestFormRegionsRespectsMaxOps(t *testing.T) {
	p := chainProgram(10)
	regions := FormRegions(p, RegionOptions{MaxOps: 3})
	for _, r := range regions {
		if r.NumOps() > 3 {
			t.Errorf("region with %d ops exceeds MaxOps=3", r.NumOps())
		}
	}
	total := 0
	for _, r := range regions {
		total += r.NumOps()
	}
	if total != 10 {
		t.Errorf("regions cover %d ops, want 10", total)
	}
}

func TestFormRegionsStopsAtUnbiasedBranch(t *testing.T) {
	b := NewBuilder("diamond")
	b.Branch(uarch.IntReg(0), 0.5, 0.5)
	left := b.NewBlock()
	b.Int(uarch.OpAdd, uarch.IntReg(1), uarch.IntReg(0), uarch.IntReg(0))
	right := b.NewBlock()
	b.Int(uarch.OpAdd, uarch.IntReg(2), uarch.IntReg(0), uarch.IntReg(0))
	b.Block(0).Edge(left, 0.5).Edge(right, 0.5)
	p := b.MustBuild()

	regions := FormRegions(p, RegionOptions{})
	if len(regions) != 3 {
		t.Fatalf("got %d regions, want 3 (50/50 branch must not be crossed)", len(regions))
	}
}

func TestFormRegionsEveryBlockExactlyOnce(t *testing.T) {
	p := chainProgram(7)
	regions := FormRegions(p, RegionOptions{MaxOps: 2})
	seen := map[int]int{}
	for _, r := range regions {
		for _, blk := range r.Blocks {
			seen[blk.ID]++
		}
	}
	for id, n := range seen {
		if n != 1 {
			t.Errorf("block %d appears in %d regions", id, n)
		}
	}
	if len(seen) != len(p.Blocks) {
		t.Errorf("regions cover %d blocks, want %d", len(seen), len(p.Blocks))
	}
}

func TestFormRegionsFollowsBiasedBranch(t *testing.T) {
	// Loop: block0 branches back to itself with p=0.95, exits with 0.05.
	b := NewBuilder("loop")
	b.Int(uarch.OpAdd, uarch.IntReg(1), uarch.IntReg(1), uarch.IntReg(2))
	b.Branch(uarch.IntReg(1), 0.95, 0.9)
	exit := b.NewBlock()
	b.Int(uarch.OpAdd, uarch.IntReg(3), uarch.IntReg(1), uarch.IntReg(1))
	b.Block(0).Edge(0, 0.95).Edge(exit, 0.05)
	p := b.MustBuild()

	regions := FormRegions(p, RegionOptions{})
	// Block 0's best successor is itself (already assigned), so region stops;
	// exit forms its own region.
	if len(regions) != 2 {
		t.Fatalf("got %d regions, want 2", len(regions))
	}
}
