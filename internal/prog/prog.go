// Package prog defines the static program representation consumed by the
// compiler-side steering passes and expanded into dynamic traces by the
// trace package: basic blocks of static micro-ops connected by a control
// flow graph with edge probabilities.
//
// A Program is what the paper's "Intel production compiler code generation
// step" sees: the compiler passes in internal/partition annotate each
// StaticOp with a virtual-cluster id, a chain-leader mark, or a static
// physical-cluster assignment, and the hardware reads those annotations off
// the dynamic micro-ops at steer time.
package prog

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"

	"clustersim/internal/uarch"
)

// MemPattern describes the synthetic address stream of a static memory
// operation. The trace expander turns the pattern into concrete addresses.
type MemPattern uint8

const (
	// MemNone marks a non-memory op.
	MemNone MemPattern = iota
	// MemStride walks an array with a fixed stride per execution.
	MemStride
	// MemRandom draws uniformly from the working set.
	MemRandom
	// MemChase models pointer chasing: the next address depends on the
	// previously loaded value, defeating any spatial locality.
	MemChase
	// MemStack hits a small, hot region (spills/locals); almost always L1.
	MemStack
)

// String returns the pattern name.
func (m MemPattern) String() string {
	switch m {
	case MemNone:
		return "none"
	case MemStride:
		return "stride"
	case MemRandom:
		return "random"
	case MemChase:
		return "chase"
	case MemStack:
		return "stack"
	}
	return fmt.Sprintf("mem(%d)", uint8(m))
}

// MemRef describes the memory behaviour of a load or store static op.
type MemRef struct {
	// Pattern selects the address generator.
	Pattern MemPattern
	// Stream identifies the logical data structure; ops sharing a stream
	// share an address sequence (so a load and a store to the same stream
	// may alias and exercise store-to-load forwarding).
	Stream int
	// StrideBytes is the per-iteration stride for MemStride.
	StrideBytes int
	// WorkingSet is the footprint in bytes the stream wanders over.
	WorkingSet int
}

// Annotation carries the compiler-side steering decisions for one static op.
// The zero value means "no decision": the hardware-only policies ignore
// annotations entirely.
type Annotation struct {
	// VC is the virtual-cluster id assigned by the VC partitioner, or -1.
	VC int
	// Leader marks the op as a chain leader: the runtime VC→PC mapping
	// table is refreshed when this op is steered.
	Leader bool
	// Static is the physical cluster chosen by a software-only policy
	// (OB/RHOP), or -1.
	Static int
}

// NoAnnotation is the annotation carried by unannotated ops.
var NoAnnotation = Annotation{VC: -1, Static: -1}

// StaticOp is one micro-op in a basic block.
type StaticOp struct {
	// Opcode selects operation and latency.
	Opcode uarch.Opcode
	// Dst is the destination register, or RegNone.
	Dst uarch.Reg
	// Src1, Src2 are the source registers; RegNone when absent. For stores
	// Src1 is the data register and the address registers are folded into
	// the memory pattern (address generation still occupies the op).
	Src1, Src2 uarch.Reg
	// Mem describes the address stream for loads/stores.
	Mem MemRef
	// TakenProb is the probability that a branch op is taken; the trace
	// expander samples it and the CFG edge decides the successor.
	TakenProb float64
	// Bias in [0,1] models how learnable the branch is: 1 means a predictor
	// warms up to ~perfect accuracy, 0 means outcomes are i.i.d. coin flips
	// at TakenProb.
	Bias float64
	// Ann holds the compiler steering annotations.
	Ann Annotation
}

// IsMem reports whether the op accesses memory.
func (o *StaticOp) IsMem() bool { return o.Opcode.IsMem() }

// Edge is a CFG edge with a traversal probability.
type Edge struct {
	// To is the target block id.
	To int
	// Prob is the probability this edge is taken when leaving the block.
	Prob float64
}

// Block is a basic block: a straight-line run of static ops with outgoing
// CFG edges. A block with no successors terminates the program walk (the
// trace expander then restarts from the entry, modeling the enclosing outer
// loop of the region).
type Block struct {
	// ID is the block's index in Program.Blocks.
	ID int
	// Ops are the block's static micro-ops in program order.
	Ops []StaticOp
	// Succs are the outgoing CFG edges; probabilities must sum to 1 unless
	// the block is terminal.
	Succs []Edge
}

// Program is a static program: a CFG of basic blocks.
type Program struct {
	// Name identifies the program (benchmark-simpoint).
	Name string
	// Blocks holds the basic blocks; Blocks[0] is the entry.
	Blocks []*Block
}

// Fingerprint returns a content hash of the program: name, CFG shape and
// every op's opcode, registers, memory pattern and branch statistics.
// Compiler annotations are excluded — run paths clear and re-derive them.
// Programs with equal fingerprints behave identically under expansion and
// simulation, which is what the engine's caches key on.
func (p *Program) Fingerprint() uint64 {
	h := fnv.New64a()
	buf := make([]byte, 8)
	w64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf, v)
		h.Write(buf)
	}
	wf := func(v float64) { w64(math.Float64bits(v)) }
	h.Write([]byte(p.Name))
	for _, b := range p.Blocks {
		w64(uint64(b.ID))
		w64(uint64(len(b.Ops)))
		for i := range b.Ops {
			op := &b.Ops[i]
			w64(uint64(op.Opcode)<<32 | uint64(uint8(op.Mem.Pattern)))
			w64(uint64(uint16(op.Dst))<<32 | uint64(uint16(op.Src1))<<16 | uint64(uint16(op.Src2)))
			w64(uint64(op.Mem.Stream))
			w64(uint64(op.Mem.StrideBytes))
			w64(uint64(op.Mem.WorkingSet))
			wf(op.TakenProb)
			wf(op.Bias)
		}
		for _, e := range b.Succs {
			w64(uint64(e.To))
			wf(e.Prob)
		}
	}
	return h.Sum64()
}

// NumStaticOps returns the total static op count.
func (p *Program) NumStaticOps() int {
	n := 0
	for _, b := range p.Blocks {
		n += len(b.Ops)
	}
	return n
}

// ForEachOp calls fn for every static op with its block and intra-block
// index. Iteration follows block order, then op order.
func (p *Program) ForEachOp(fn func(b *Block, i int, op *StaticOp)) {
	for _, b := range p.Blocks {
		for i := range b.Ops {
			fn(b, i, &b.Ops[i])
		}
	}
}

// ClearAnnotations resets every op's annotation to NoAnnotation. The
// experiment harness calls this between compiler passes so policies never
// see a previous pass's decisions.
func (p *Program) ClearAnnotations() {
	p.ForEachOp(func(_ *Block, _ int, op *StaticOp) { op.Ann = NoAnnotation })
}

// Clone deep-copies the program. Experiment harnesses clone before running
// a compiler pass so concurrent runs with different annotations never share
// static ops.
func (p *Program) Clone() *Program {
	out := &Program{Name: p.Name, Blocks: make([]*Block, len(p.Blocks))}
	for i, b := range p.Blocks {
		nb := &Block{
			ID:    b.ID,
			Ops:   append([]StaticOp(nil), b.Ops...),
			Succs: append([]Edge(nil), b.Succs...),
		}
		out.Blocks[i] = nb
	}
	return out
}

// OpAddr names a static op by block id and index, for error reporting.
type OpAddr struct {
	Block, Index int
}

// String renders the address as "b3.7".
func (a OpAddr) String() string { return fmt.Sprintf("b%d.%d", a.Block, a.Index) }
