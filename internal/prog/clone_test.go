package prog

import (
	"testing"

	"clustersim/internal/uarch"
)

func TestCloneIsolation(t *testing.T) {
	p := tinyLoop(t)
	c := p.Clone()
	// Mutating the clone's annotations must not leak into the original.
	c.Blocks[0].Ops[0].Ann = Annotation{VC: 3, Leader: true, Static: 1}
	if p.Blocks[0].Ops[0].Ann == c.Blocks[0].Ops[0].Ann {
		t.Fatal("clone shares op storage with the original")
	}
	// Structure matches.
	if c.Name != p.Name || len(c.Blocks) != len(p.Blocks) {
		t.Fatal("clone structure differs")
	}
	for i := range p.Blocks {
		if len(c.Blocks[i].Ops) != len(p.Blocks[i].Ops) {
			t.Fatalf("block %d op count differs", i)
		}
		if len(c.Blocks[i].Succs) != len(p.Blocks[i].Succs) {
			t.Fatalf("block %d edge count differs", i)
		}
	}
}

func TestCloneEdgeIsolation(t *testing.T) {
	p := tinyLoop(t)
	c := p.Clone()
	c.Blocks[0].Succs[0].Prob = 0.123
	if p.Blocks[0].Succs[0].Prob == 0.123 {
		t.Fatal("clone shares edge storage with the original")
	}
}

func TestCloneValidates(t *testing.T) {
	p := tinyLoop(t)
	if err := Validate(p.Clone()); err != nil {
		t.Fatalf("clone invalid: %v", err)
	}
}

func TestCloneOpsEqualValues(t *testing.T) {
	p := tinyLoop(t)
	c := p.Clone()
	p.ForEachOp(func(b *Block, i int, op *StaticOp) {
		if *op != c.Blocks[b.ID].Ops[i] {
			t.Fatalf("op %v differs in clone", OpAddr{b.ID, i})
		}
	})
	_ = uarch.OpAdd
}
