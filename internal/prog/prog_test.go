package prog

import (
	"testing"

	"clustersim/internal/uarch"
)

// tinyLoop builds a two-block loop: body with some ALU ops and a backedge.
func tinyLoop(t *testing.T) *Program {
	t.Helper()
	b := NewBuilder("tiny")
	b.Int(uarch.OpAdd, uarch.IntReg(1), uarch.IntReg(1), uarch.IntReg(2))
	b.Load(uarch.IntReg(3), uarch.IntReg(1), MemRef{Pattern: MemStride, Stream: 0, StrideBytes: 8, WorkingSet: 1 << 14})
	b.Int(uarch.OpAdd, uarch.IntReg(4), uarch.IntReg(3), uarch.IntReg(1))
	b.Branch(uarch.IntReg(4), 0.9, 0.95)
	b.Edge(0, 0.9)
	exit := 0
	// second block
	exit = b.NewBlock()
	b.Int(uarch.OpAdd, uarch.IntReg(5), uarch.IntReg(4), uarch.IntReg(4))
	b.Block(0).Edge(exit, 0.1)
	return b.MustBuild()
}

func TestBuilderProducesValidProgram(t *testing.T) {
	p := tinyLoop(t)
	if err := Validate(p); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if p.NumStaticOps() != 5 {
		t.Errorf("NumStaticOps = %d, want 5", p.NumStaticOps())
	}
}

func TestValidateRejectsBadEdgeTarget(t *testing.T) {
	b := NewBuilder("bad")
	b.Int(uarch.OpAdd, uarch.IntReg(0), uarch.IntReg(0), uarch.IntReg(1))
	b.Edge(42, 1)
	if _, err := b.Build(); err == nil {
		t.Fatal("expected error for edge to nonexistent block")
	}
}

func TestValidateRejectsBadProbabilitySum(t *testing.T) {
	b := NewBuilder("bad")
	b.Branch(uarch.IntReg(0), 0.5, 0.5)
	b.Edge(0, 0.4).Edge(0, 0.4)
	if _, err := b.Build(); err == nil {
		t.Fatal("expected error for probabilities not summing to 1")
	}
}

func TestValidateRejectsMemOpWithoutPattern(t *testing.T) {
	b := NewBuilder("bad")
	b.Op(StaticOp{Opcode: uarch.OpLoad, Dst: uarch.IntReg(0), Src1: uarch.RegNone, Src2: uarch.RegNone})
	if _, err := b.Build(); err == nil {
		t.Fatal("expected error for load without memory pattern")
	}
}

func TestValidateRejectsCopyOps(t *testing.T) {
	b := NewBuilder("bad")
	b.Op(StaticOp{Opcode: uarch.OpCopy, Dst: uarch.IntReg(0), Src1: uarch.IntReg(1), Src2: uarch.RegNone})
	if _, err := b.Build(); err == nil {
		t.Fatal("expected error for copy op in program")
	}
}

func TestValidateRejectsBranchMidBlock(t *testing.T) {
	b := NewBuilder("bad")
	b.Branch(uarch.IntReg(0), 0.5, 0.5)
	b.Int(uarch.OpAdd, uarch.IntReg(0), uarch.IntReg(0), uarch.IntReg(1))
	b.Edge(0, 0.5).Edge(0, 0.5)
	if _, err := b.Build(); err == nil {
		t.Fatal("expected error for branch not at block end")
	}
}

func TestValidateRejectsFPWritingIntReg(t *testing.T) {
	b := NewBuilder("bad")
	b.Op(StaticOp{Opcode: uarch.OpFAdd, Dst: uarch.IntReg(0), Src1: uarch.FPReg(0), Src2: uarch.FPReg(1)})
	if _, err := b.Build(); err == nil {
		t.Fatal("expected error for fp op writing int register")
	}
}

func TestClearAnnotations(t *testing.T) {
	p := tinyLoop(t)
	p.Blocks[0].Ops[0].Ann = Annotation{VC: 1, Leader: true, Static: 0}
	p.ClearAnnotations()
	p.ForEachOp(func(_ *Block, _ int, op *StaticOp) {
		if op.Ann != NoAnnotation {
			t.Fatalf("annotation not cleared: %+v", op.Ann)
		}
	})
}

func TestForEachOpVisitsAllInOrder(t *testing.T) {
	p := tinyLoop(t)
	var got []OpAddr
	p.ForEachOp(func(b *Block, i int, _ *StaticOp) {
		got = append(got, OpAddr{b.ID, i})
	})
	want := []OpAddr{{0, 0}, {0, 1}, {0, 2}, {0, 3}, {1, 0}}
	if len(got) != len(want) {
		t.Fatalf("visited %d ops, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("visit %d = %v, want %v", i, got[i], want[i])
		}
	}
}
