package prog

// Region is a compiler scheduling scope: a superblock-like linear sequence
// of basic blocks along a likely control-flow path. The paper's compiler
// passes (VC partitioning, RHOP, OB) each analyze one region's data
// dependence graph at a time; a bigger region is exactly the "larger window
// of instructions inspected at compile time" advantage of software steering.
type Region struct {
	// Blocks are the member blocks, in path order.
	Blocks []*Block
}

// NumOps returns the total static op count of the region.
func (r *Region) NumOps() int {
	n := 0
	for _, b := range r.Blocks {
		n += len(b.Ops)
	}
	return n
}

// ForEachOp calls fn for every static op of the region in path order with
// the region-wide op index.
func (r *Region) ForEachOp(fn func(idx int, op *StaticOp)) {
	idx := 0
	for _, b := range r.Blocks {
		for i := range b.Ops {
			fn(idx, &b.Ops[i])
			idx++
		}
	}
}

// RegionOptions controls region formation.
type RegionOptions struct {
	// MaxOps bounds the region size in static ops. Zero means 256.
	MaxOps int
	// MinProb is the minimum edge probability worth extending a region
	// through. Zero means 0.55: only clearly-biased paths are merged, like
	// superblock formation driven by profile data.
	MinProb float64
}

func (o RegionOptions) withDefaults() RegionOptions {
	if o.MaxOps == 0 {
		o.MaxOps = 256
	}
	if o.MinProb == 0 {
		o.MinProb = 0.55
	}
	return o
}

// FormRegions partitions the program's blocks into regions by greedy
// most-likely-path extension: starting from each unassigned block in layout
// order, the region follows the highest-probability successor edge while
// the target is unassigned, the edge probability is at least MinProb, and
// the op budget holds. Every block lands in exactly one region.
func FormRegions(p *Program, opts RegionOptions) []*Region {
	opts = opts.withDefaults()
	assigned := make([]bool, len(p.Blocks))
	var regions []*Region
	for _, seed := range p.Blocks {
		if assigned[seed.ID] {
			continue
		}
		r := &Region{}
		cur := seed
		ops := 0
		for cur != nil && !assigned[cur.ID] && (ops == 0 || ops+len(cur.Ops) <= opts.MaxOps) {
			assigned[cur.ID] = true
			r.Blocks = append(r.Blocks, cur)
			ops += len(cur.Ops)
			cur = likelySuccessor(p, cur, opts.MinProb)
		}
		regions = append(regions, r)
	}
	return regions
}

// likelySuccessor returns the most probable successor block if its edge
// probability is at least minProb, else nil.
func likelySuccessor(p *Program, b *Block, minProb float64) *Block {
	best := -1
	bestProb := 0.0
	for _, e := range b.Succs {
		if e.Prob > bestProb {
			bestProb = e.Prob
			best = e.To
		}
	}
	if best < 0 || bestProb < minProb {
		return nil
	}
	return p.Blocks[best]
}
