package prog

import (
	"fmt"

	"clustersim/internal/uarch"
)

// Builder assembles Programs incrementally. It exists for tests, examples
// and the synthetic workload generator; hand-written programs read much
// better through it than through struct literals.
type Builder struct {
	p   *Program
	cur *Block
}

// NewBuilder starts a program with the given name and opens the entry block.
func NewBuilder(name string) *Builder {
	b := &Builder{p: &Program{Name: name}}
	b.NewBlock()
	return b
}

// NewBlock opens a new basic block and makes it current. Returns its id.
func (b *Builder) NewBlock() int {
	blk := &Block{ID: len(b.p.Blocks)}
	b.p.Blocks = append(b.p.Blocks, blk)
	b.cur = blk
	return blk.ID
}

// Block switches the current block to id.
func (b *Builder) Block(id int) *Builder {
	if id < 0 || id >= len(b.p.Blocks) {
		panic(fmt.Sprintf("prog: no block %d", id))
	}
	b.cur = b.p.Blocks[id]
	return b
}

// Op appends a fully specified static op to the current block.
func (b *Builder) Op(op StaticOp) *Builder {
	if op.Ann == (Annotation{}) {
		op.Ann = NoAnnotation
	}
	b.cur.Ops = append(b.cur.Ops, op)
	return b
}

// Int appends an integer ALU op dst = src1 <op> src2.
func (b *Builder) Int(opc uarch.Opcode, dst, src1, src2 uarch.Reg) *Builder {
	return b.Op(StaticOp{Opcode: opc, Dst: dst, Src1: src1, Src2: src2})
}

// FP appends a floating-point op dst = src1 <op> src2.
func (b *Builder) FP(opc uarch.Opcode, dst, src1, src2 uarch.Reg) *Builder {
	return b.Op(StaticOp{Opcode: opc, Dst: dst, Src1: src1, Src2: src2})
}

// Load appends a load of dst from the given memory stream; addr registers
// are the sources (address generation inputs).
func (b *Builder) Load(dst, addr uarch.Reg, mem MemRef) *Builder {
	if mem.Pattern == MemNone {
		mem.Pattern = MemStride
	}
	if mem.WorkingSet == 0 {
		mem.WorkingSet = 1 << 16
	}
	return b.Op(StaticOp{Opcode: uarch.OpLoad, Dst: dst, Src1: addr, Src2: uarch.RegNone, Mem: mem})
}

// Store appends a store of data (Src1) using addr (Src2) for address
// generation.
func (b *Builder) Store(data, addr uarch.Reg, mem MemRef) *Builder {
	if mem.Pattern == MemNone {
		mem.Pattern = MemStride
	}
	if mem.WorkingSet == 0 {
		mem.WorkingSet = 1 << 16
	}
	return b.Op(StaticOp{Opcode: uarch.OpStore, Dst: uarch.RegNone, Src1: data, Src2: addr, Mem: mem})
}

// Branch appends a conditional branch on cond with the given taken
// probability and bias, terminating the current block.
func (b *Builder) Branch(cond uarch.Reg, takenProb, bias float64) *Builder {
	return b.Op(StaticOp{
		Opcode: uarch.OpBranch, Dst: uarch.RegNone, Src1: cond, Src2: uarch.RegNone,
		TakenProb: takenProb, Bias: bias,
	})
}

// Edge adds a CFG edge from the current block.
func (b *Builder) Edge(to int, prob float64) *Builder {
	b.cur.Succs = append(b.cur.Succs, Edge{To: to, Prob: prob})
	return b
}

// Jump adds a single always-taken edge from the current block.
func (b *Builder) Jump(to int) *Builder { return b.Edge(to, 1) }

// Build validates and returns the program.
func (b *Builder) Build() (*Program, error) {
	if err := Validate(b.p); err != nil {
		return nil, err
	}
	return b.p, nil
}

// MustBuild is Build, panicking on invalid programs. For tests and examples.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
