package partition

// Multilevel k-way graph partitioner in the style of Karypis/Kumar, used by
// the RHOP pass: heavy-edge coarsening down to k super-nodes (which become
// the initial partition), then FM-style refinement while walking the
// coarsening hierarchy back up.

// wgraph is an undirected weighted graph. Edges are stored symmetrically;
// parallel edges are folded by weight addition.
type wgraph struct {
	nodeW []int         // node weights (resource demand)
	adj   []map[int]int // adj[u][v] = edge weight
}

func newWGraph(n int) *wgraph {
	g := &wgraph{nodeW: make([]int, n), adj: make([]map[int]int, n)}
	for i := range g.adj {
		g.adj[i] = make(map[int]int)
	}
	return g
}

func (g *wgraph) addEdge(u, v, w int) {
	if u == v || w <= 0 {
		return
	}
	g.adj[u][v] += w
	g.adj[v][u] += w
}

func (g *wgraph) len() int { return len(g.nodeW) }

// totalWeight returns the sum of node weights.
func (g *wgraph) totalWeight() int {
	t := 0
	for _, w := range g.nodeW {
		t += w
	}
	return t
}

// level records one coarsening step: fine node i collapsed into coarse node
// coarseOf[i].
type level struct {
	fine     *wgraph
	coarseOf []int
}

// coarsen performs one heavy-edge matching pass and returns the coarse
// graph with the fine→coarse map, or ok=false if no pair matched (graph
// cannot shrink further by matching).
func coarsen(g *wgraph) (*wgraph, []int, bool) {
	n := g.len()
	match := make([]int, n)
	for i := range match {
		match[i] = -1
	}
	matched := false
	// Deterministic visit order: heaviest incident edge first is
	// approximated by simple index order with best-neighbor choice, which
	// keeps the pass O(E) and reproducible.
	for u := 0; u < n; u++ {
		if match[u] != -1 {
			continue
		}
		bestV, bestW := -1, 0
		for v, w := range g.adj[u] {
			if match[v] != -1 {
				continue
			}
			// Prefer the heaviest edge; tie-break on smaller combined node
			// weight to keep coarse nodes balanced, then on index for
			// determinism.
			if w > bestW ||
				(w == bestW && bestV >= 0 && g.nodeW[v] < g.nodeW[bestV]) ||
				(w == bestW && bestV >= 0 && g.nodeW[v] == g.nodeW[bestV] && v < bestV) {
				bestV, bestW = v, w
			}
		}
		if bestV >= 0 {
			match[u] = bestV
			match[bestV] = u
			matched = true
		}
	}
	if !matched {
		return nil, nil, false
	}
	coarseOf := make([]int, n)
	next := 0
	for u := 0; u < n; u++ {
		if match[u] == -1 || match[u] > u {
			coarseOf[u] = next
			next++
		}
	}
	for u := 0; u < n; u++ {
		if match[u] != -1 && match[u] < u {
			coarseOf[u] = coarseOf[match[u]]
		}
	}
	cg := newWGraph(next)
	for u := 0; u < n; u++ {
		cg.nodeW[coarseOf[u]] += g.nodeW[u]
		for v, w := range g.adj[u] {
			if u < v {
				cg.addEdge(coarseOf[u], coarseOf[v], w)
			}
		}
	}
	return cg, coarseOf, true
}

// initialPartition assigns coarse nodes to k parts. When the graph has
// exactly k nodes this is the identity; otherwise nodes are placed
// largest-first onto the least-loaded part (LPT scheduling), which handles
// disconnected graphs that matching could not shrink to k.
func initialPartition(g *wgraph, k int) []int {
	n := g.len()
	part := make([]int, n)
	if n <= k {
		for i := range part {
			part[i] = i
		}
		return part
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	// insertion sort by descending weight (n is tiny here)
	for i := 1; i < n; i++ {
		for j := i; j > 0 && g.nodeW[order[j]] > g.nodeW[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	load := make([]int, k)
	for _, u := range order {
		best := 0
		for p := 1; p < k; p++ {
			if load[p] < load[best] {
				best = p
			}
		}
		part[u] = best
		load[best] += g.nodeW[u]
	}
	return part
}

// refine runs bounded FM-style passes: every node may move to the part that
// maximizes the cut-weight gain, provided the move keeps the destination
// under maxLoad and does not empty a part below minLoad. Moves with zero
// gain are taken only if they strictly improve balance.
func refine(g *wgraph, part []int, k, passes int, tol float64) {
	total := g.totalWeight()
	perfect := float64(total) / float64(k)
	maxLoad := int(perfect * (1 + tol))
	if maxLoad < 1 {
		maxLoad = 1
	}
	load := make([]int, k)
	for u := range part {
		load[part[u]] += g.nodeW[u]
	}
	for pass := 0; pass < passes; pass++ {
		moved := false
		for u := 0; u < g.len(); u++ {
			from := part[u]
			w := g.nodeW[u]
			// Connectivity of u to each part.
			conn := make([]int, k)
			for v, ew := range g.adj[u] {
				conn[part[v]] += ew
			}
			bestTo := -1
			bestGain := 0
			bestBal := 0
			for to := 0; to < k; to++ {
				if to == from || load[to]+w > maxLoad {
					continue
				}
				gain := conn[to] - conn[from]
				bal := load[from] - (load[to] + w) // >0: move improves balance
				// A move is acceptable if it reduces the cut, or keeps the
				// cut and strictly improves balance. Among acceptable
				// moves prefer higher gain, then better balance.
				acceptable := gain > 0 || (gain == 0 && bal > 0)
				if !acceptable {
					continue
				}
				if bestTo == -1 || gain > bestGain || (gain == bestGain && bal > bestBal) {
					bestTo, bestGain, bestBal = to, gain, bal
				}
			}
			if bestTo >= 0 {
				load[from] -= w
				load[bestTo] += w
				part[u] = bestTo
				moved = true
			}
		}
		if !moved {
			break
		}
	}
}

// partitionMultilevel runs the full coarsen → initial partition → project &
// refine pipeline and returns a part id in [0,k) for every node of g.
func partitionMultilevel(g *wgraph, k, passes int, tol float64) []int {
	if k <= 1 || g.len() <= 1 {
		return make([]int, g.len())
	}
	var levels []level
	cur := g
	for cur.len() > k {
		cg, coarseOf, ok := coarsen(cur)
		if !ok {
			break
		}
		levels = append(levels, level{fine: cur, coarseOf: coarseOf})
		cur = cg
	}
	part := initialPartition(cur, k)
	refine(cur, part, k, passes, tol)
	for i := len(levels) - 1; i >= 0; i-- {
		lv := levels[i]
		finePart := make([]int, lv.fine.len())
		for u := range finePart {
			finePart[u] = part[lv.coarseOf[u]]
		}
		refine(lv.fine, finePart, k, passes, tol)
		part = finePart
	}
	return part
}
