package partition

import (
	"clustersim/internal/ddg"
	"clustersim/internal/prog"
	"clustersim/internal/uarch"
)

// AssignVC implements the paper's compile-time half (Fig. 2): partition a
// region's DDG into virtual clusters, then identify chains and chain
// leaders (Fig. 3). Results land in Ann.VC and Ann.Leader.
//
// The algorithm's three steps:
//
//  1. Critical paths: depth and height per node via two DDG traversals;
//     criticality = depth + height (internal/ddg).
//  2. Partition: a top-down traversal assigns each instruction to the
//     virtual cluster with the best benefit, where benefit is the
//     instruction's estimated completion time in that VC, accounting for
//     dependences (with a communication penalty for cross-VC inputs),
//     latencies, and resource contention in the intended VC.
//  3. Chains: maximal program-order runs of same-VC instructions; the
//     first instruction of each run is the chain leader, where the runtime
//     refreshes the VC→physical mapping.
func AssignVC(r *prog.Region, opts Options) {
	opts = opts.withDefaults()
	g := ddg.Build(r)
	if g.Len() == 0 {
		return
	}
	crit := ddg.ComputeCriticality(g)
	nVC := opts.NumVC

	vcOf := make([]int, g.Len())
	completion := make([]int, g.Len())
	// Per-VC, per-class resource contention: how many issue slots' worth of
	// work has been assigned. resReady approximates the cycle at which the
	// next op of that class could start in this VC.
	classWork := make([][]int, nVC)
	for vc := range classWork {
		classWork[vc] = make([]int, uarch.NumClasses)
	}

	for i := range g.Nodes {
		node := &g.Nodes[i]
		// The VC of the most critical predecessor: when completion-time
		// estimates tie, critical instructions stay with their critical
		// producer so the critical path never crosses a VC boundary
		// gratuitously ("takes into account the criticality of the
		// instructions", Fig. 2 step 2).
		critPredVC := -1
		critPredVal := -1
		for _, e := range node.Preds {
			if crit.Crit[e.To] > critPredVal {
				critPredVal = crit.Crit[e.To]
				critPredVC = vcOf[e.To]
			}
		}
		bestVC := -1
		bestCost := int(^uint(0) >> 1)
		bestConn := -1
		bestLoad := 0
		for vc := 0; vc < nVC; vc++ {
			ready := 0
			conn := 0
			for _, e := range node.Preds {
				t := completion[e.To]
				if vcOf[e.To] != vc {
					// Cross-VC input: pay the estimated copy latency. On
					// critical edges this directly lengthens the region's
					// completion estimate, which is how criticality steers
					// the partition toward keeping critical chains whole.
					t += opts.CommLatency
				} else {
					conn++
				}
				if t > ready {
					ready = t
				}
			}
			resReady := resourceReady(classWork[vc], node.Op, opts)
			start := ready
			if resReady > start {
				start = resReady
			}
			cost := start + node.Latency
			load := totalWork(classWork[vc])
			better := cost < bestCost
			if cost == bestCost {
				switch {
				case vc == critPredVC && bestVC != critPredVC:
					better = true
				case bestVC == critPredVC && vc != critPredVC:
					better = false
				case conn != bestConn:
					better = conn > bestConn
				default:
					better = load < bestLoad
				}
			}
			if better {
				bestVC, bestCost, bestConn, bestLoad = vc, cost, conn, load
			}
		}
		vcOf[i] = bestVC
		completion[i] = bestCost
		classWork[bestVC][node.Op.Opcode.Class()] += node.Latency
	}

	idx := 0
	r.ForEachOp(func(_ int, op *prog.StaticOp) {
		op.Ann.VC = vcOf[idx]
		op.Ann.Static = -1
		idx++
	})
	MarkChains(g, vcOf, opts.MaxChainLen)
}

// resourceReady estimates the first cycle at which the intended VC could
// start an op of this class, given the work already assigned to that class
// divided by the class's issue bandwidth.
func resourceReady(classWork []int, op *prog.StaticOp, opts Options) int {
	class := op.Opcode.Class()
	width := 1
	switch class {
	case uarch.ClassInt, uarch.ClassLoad, uarch.ClassStore, uarch.ClassBranch:
		width = opts.IssueInt
	case uarch.ClassFP:
		width = opts.IssueFP
	}
	return classWork[class] / width
}

func totalWork(classWork []int) int {
	t := 0
	for _, w := range classWork {
		t += w
	}
	return t
}

// AnnotateVC runs AssignVC over every region of the program.
func AnnotateVC(p *prog.Program, opts Options) {
	for _, r := range prog.FormRegions(p, prog.RegionOptions{MaxOps: opts.RegionMaxOps}) {
		AssignVC(r, opts)
	}
}
