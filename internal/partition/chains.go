package partition

import (
	"clustersim/internal/ddg"
	"clustersim/internal/prog"
)

// MarkChains identifies chains and chain leaders over a VC-annotated region
// (step 3 of Fig. 2, chain structure per Fig. 3). A chain is a dependence
// chain within one virtual cluster: ops of different VCs may interleave in
// program order while each VC's mapping persists in the hardware table, so
// chains are delimited per VC, not by program-order VC changes.
//
// An op starts a new chain of its VC (and is marked as the leader) when:
//   - it has no dependence predecessor inside the same VC — it roots a
//     fresh dependence chain, so remapping it to the least-loaded cluster
//     cannot cut a live same-VC value chain; or
//   - the current chain reached maxChainLen — the bound guarantees the
//     hardware re-checks workload balance periodically (the knob the
//     ablation benchmarks sweep).
//
// vcOf gives each DDG node's virtual cluster; results land in Ann.Leader.
func MarkChains(g *ddg.Graph, vcOf []int, maxChainLen int) {
	if maxChainLen <= 0 {
		maxChainLen = 32
	}
	runLen := map[int]int{} // per-VC ops since last leader
	for i := range g.Nodes {
		vc := vcOf[i]
		if vc < 0 {
			g.Nodes[i].Op.Ann.Leader = false
			continue
		}
		sameVCPred := false
		for _, e := range g.Nodes[i].Preds {
			if vcOf[e.To] == vc {
				sameVCPred = true
				break
			}
		}
		leader := !sameVCPred || runLen[vc] >= maxChainLen
		g.Nodes[i].Op.Ann.Leader = leader
		if leader {
			runLen[vc] = 0
		}
		runLen[vc]++
	}
}

// ChainStats summarizes the chain structure of an annotated region.
type ChainStats struct {
	// Chains is the number of chains (equals the number of leaders).
	Chains int
	// Ops is the number of VC-annotated ops.
	Ops int
	// MaxLen and MeanLen describe chain lengths (ops per VC between
	// leaders of that VC).
	MaxLen  int
	MeanLen float64
}

// CollectChainStats scans an annotated region.
func CollectChainStats(r *prog.Region) ChainStats {
	var st ChainStats
	runLen := map[int]int{}
	flush := func(vc int) {
		if runLen[vc] > st.MaxLen {
			st.MaxLen = runLen[vc]
		}
		runLen[vc] = 0
	}
	r.ForEachOp(func(_ int, op *prog.StaticOp) {
		if op.Ann.VC < 0 {
			return
		}
		st.Ops++
		if op.Ann.Leader {
			flush(op.Ann.VC)
			st.Chains++
		}
		runLen[op.Ann.VC]++
	})
	for vc := range runLen {
		flush(vc)
	}
	if st.Chains > 0 {
		st.MeanLen = float64(st.Ops) / float64(st.Chains)
	}
	return st
}
