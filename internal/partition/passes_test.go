package partition

import (
	"math/rand"
	"testing"
	"testing/quick"

	"clustersim/internal/ddg"
	"clustersim/internal/prog"
	"clustersim/internal/uarch"
)

// linearRegion builds a single region with the given ops.
func linearRegion(t *testing.T, ops ...prog.StaticOp) (*prog.Program, *prog.Region) {
	t.Helper()
	b := prog.NewBuilder("t")
	for _, op := range ops {
		b.Op(op)
	}
	p := b.MustBuild()
	rs := prog.FormRegions(p, prog.RegionOptions{MaxOps: len(ops) + 1})
	if len(rs) != 1 {
		t.Fatalf("want 1 region, got %d", len(rs))
	}
	return p, rs[0]
}

func addOp(dst, s1, s2 int) prog.StaticOp {
	return prog.StaticOp{Opcode: uarch.OpAdd, Dst: uarch.IntReg(dst), Src1: uarch.IntReg(s1), Src2: uarch.IntReg(s2)}
}

// twoChains produces two independent dependence chains of length n,
// interleaved in program order: chain A uses r1, chain B uses r2.
func twoChains(n int) []prog.StaticOp {
	var ops []prog.StaticOp
	for i := 0; i < n; i++ {
		ops = append(ops, addOp(1, 1, 1))
		ops = append(ops, addOp(2, 2, 2))
	}
	return ops
}

func TestAssignVCSeparatesIndependentChains(t *testing.T) {
	_, r := linearRegion(t, twoChains(6)...)
	AssignVC(r, Options{NumVC: 2})
	// Each chain should land wholly in one VC, chains in different VCs.
	var vcA, vcB = -1, -1
	i := 0
	r.ForEachOp(func(_ int, op *prog.StaticOp) {
		if op.Ann.VC < 0 {
			t.Fatalf("op %d unassigned", i)
		}
		if i%2 == 0 { // chain A
			if vcA == -1 {
				vcA = op.Ann.VC
			} else if op.Ann.VC != vcA {
				t.Errorf("chain A split at op %d: vc %d vs %d", i, op.Ann.VC, vcA)
			}
		} else {
			if vcB == -1 {
				vcB = op.Ann.VC
			} else if op.Ann.VC != vcB {
				t.Errorf("chain B split at op %d: vc %d vs %d", i, op.Ann.VC, vcB)
			}
		}
		i++
	})
	if vcA == vcB {
		t.Errorf("independent chains share VC %d; balance term should separate them", vcA)
	}
}

func TestAssignVCKeepsSingleChainTogether(t *testing.T) {
	// One serial chain: splitting it would add communication on the
	// critical path, so all ops must share a VC.
	var ops []prog.StaticOp
	for i := 0; i < 10; i++ {
		ops = append(ops, addOp(1, 1, 1))
	}
	_, r := linearRegion(t, ops...)
	AssignVC(r, Options{NumVC: 2})
	first := -1
	r.ForEachOp(func(_ int, op *prog.StaticOp) {
		if first == -1 {
			first = op.Ann.VC
		} else if op.Ann.VC != first {
			t.Errorf("serial chain split across VCs")
		}
	})
}

func TestMarkChainsLeaderRules(t *testing.T) {
	_, r := linearRegion(t, twoChains(4)...)
	AssignVC(r, Options{NumVC: 2})
	// Two interleaved serial chains in different VCs: exactly two chain
	// roots exist, so exactly two leaders (one per VC) — interleaving must
	// NOT break chains, since each VC's mapping persists in the table.
	leaders, ops := 0, 0
	r.ForEachOp(func(_ int, op *prog.StaticOp) {
		ops++
		if op.Ann.Leader {
			leaders++
		}
	})
	if leaders != 2 {
		t.Fatalf("leaders = %d, want 2 (one per dependence chain)", leaders)
	}
	st := CollectChainStats(r)
	if st.Chains != leaders {
		t.Errorf("CollectChainStats.Chains = %d, want %d", st.Chains, leaders)
	}
	if st.Ops != ops {
		t.Errorf("CollectChainStats.Ops = %d, want %d", st.Ops, ops)
	}
}

func TestMarkChainsLeaderAtDependenceRoots(t *testing.T) {
	// Chain, then an independent restart of the same register (a "load
	// reset" idiom): the restart roots a new chain → new leader.
	ops := []prog.StaticOp{
		addOp(1, 1, 1), // root: leader
		addOp(1, 1, 1),
		addOp(1, 2, 2), // reads r2 (initial), breaks the r1 chain: new root
		addOp(1, 1, 1),
	}
	_, r := linearRegion(t, ops...)
	AssignVC(r, Options{NumVC: 1}) // single VC isolates the chain logic
	var leaders []int
	i := 0
	r.ForEachOp(func(_ int, op *prog.StaticOp) {
		if op.Ann.Leader {
			leaders = append(leaders, i)
		}
		i++
	})
	if len(leaders) != 2 || leaders[0] != 0 || leaders[1] != 2 {
		t.Errorf("leaders at %v, want [0 2]", leaders)
	}
}

func TestMarkChainsFirstOpIsLeader(t *testing.T) {
	_, r := linearRegion(t, addOp(1, 1, 1), addOp(1, 1, 1))
	AssignVC(r, Options{NumVC: 2})
	first := true
	r.ForEachOp(func(_ int, op *prog.StaticOp) {
		if first && !op.Ann.Leader {
			t.Error("first op of region must be a chain leader")
		}
		first = false
	})
}

func TestMarkChainsMaxLenSplits(t *testing.T) {
	var ops []prog.StaticOp
	for i := 0; i < 20; i++ {
		ops = append(ops, addOp(1, 1, 1))
	}
	_, r := linearRegion(t, ops...)
	AssignVC(r, Options{NumVC: 2, MaxChainLen: 5})
	st := CollectChainStats(r)
	if st.MaxLen > 5 {
		t.Errorf("max chain length %d exceeds cap 5", st.MaxLen)
	}
	if st.Chains != 4 {
		t.Errorf("chains = %d, want 4 (20 ops / cap 5)", st.Chains)
	}
}

func TestAssignOBAssignsEveryOp(t *testing.T) {
	_, r := linearRegion(t, twoChains(5)...)
	AssignOB(r, Options{NumClusters: 2})
	r.ForEachOp(func(i int, op *prog.StaticOp) {
		if op.Ann.Static < 0 || op.Ann.Static >= 2 {
			t.Errorf("op %d static assignment %d out of range", i, op.Ann.Static)
		}
		if op.Ann.VC != -1 || op.Ann.Leader {
			t.Errorf("op %d OB pass leaked VC annotations", i)
		}
	})
}

func TestAssignOBBalances(t *testing.T) {
	_, r := linearRegion(t, twoChains(8)...)
	AssignOB(r, Options{NumClusters: 2})
	load := [2]int{}
	r.ForEachOp(func(_ int, op *prog.StaticOp) { load[op.Ann.Static]++ })
	diff := load[0] - load[1]
	if diff < 0 {
		diff = -diff
	}
	if diff > 4 {
		t.Errorf("OB loads %v too imbalanced", load)
	}
}

func TestAssignRHOPAssignsEveryOp(t *testing.T) {
	_, r := linearRegion(t, twoChains(6)...)
	AssignRHOP(r, Options{NumClusters: 2})
	r.ForEachOp(func(i int, op *prog.StaticOp) {
		if op.Ann.Static < 0 || op.Ann.Static >= 2 {
			t.Errorf("op %d static assignment %d out of range", i, op.Ann.Static)
		}
	})
}

func TestAssignRHOPSeparatesIndependentChains(t *testing.T) {
	_, r := linearRegion(t, twoChains(8)...)
	AssignRHOP(r, Options{NumClusters: 2})
	// The two chains are disjoint components; the heavy intra-chain edges
	// must not be cut: each chain uniform.
	var pA, pB = -1, -1
	i := 0
	ok := true
	r.ForEachOp(func(_ int, op *prog.StaticOp) {
		if i%2 == 0 {
			if pA == -1 {
				pA = op.Ann.Static
			} else if op.Ann.Static != pA {
				ok = false
			}
		} else {
			if pB == -1 {
				pB = op.Ann.Static
			} else if op.Ann.Static != pB {
				ok = false
			}
		}
		i++
	})
	if !ok {
		t.Error("RHOP cut a dependence chain despite a zero-cost alternative")
	}
	if pA == pB {
		t.Error("RHOP merged both chains into one cluster; balance should split them")
	}
}

func TestAnnotateProgramWholeProgramDrivers(t *testing.T) {
	b := prog.NewBuilder("multi")
	b.Int(uarch.OpAdd, uarch.IntReg(1), uarch.IntReg(1), uarch.IntReg(2))
	b.Branch(uarch.IntReg(1), 0.5, 0.5)
	blk1 := b.NewBlock()
	b.Int(uarch.OpAdd, uarch.IntReg(3), uarch.IntReg(1), uarch.IntReg(1))
	blk2 := b.NewBlock()
	b.Int(uarch.OpAdd, uarch.IntReg(4), uarch.IntReg(1), uarch.IntReg(1))
	b.Block(0).Edge(blk1, 0.5).Edge(blk2, 0.5)
	p := b.MustBuild()

	AnnotateVC(p, Options{NumVC: 2})
	p.ForEachOp(func(_ *prog.Block, _ int, op *prog.StaticOp) {
		if op.Ann.VC < 0 {
			t.Error("AnnotateVC left an op unassigned")
		}
	})
	p.ClearAnnotations()
	AnnotateOB(p, Options{NumClusters: 2})
	p.ForEachOp(func(_ *prog.Block, _ int, op *prog.StaticOp) {
		if op.Ann.Static < 0 {
			t.Error("AnnotateOB left an op unassigned")
		}
	})
	p.ClearAnnotations()
	AnnotateRHOP(p, Options{NumClusters: 2})
	p.ForEachOp(func(_ *prog.Block, _ int, op *prog.StaticOp) {
		if op.Ann.Static < 0 {
			t.Error("AnnotateRHOP left an op unassigned")
		}
	})
}

// randomOps builds a random valid op list.
func randomOps(rng *rand.Rand, n int) []prog.StaticOp {
	ops := make([]prog.StaticOp, 0, n)
	for i := 0; i < n; i++ {
		ops = append(ops, addOp(rng.Intn(8), rng.Intn(8), rng.Intn(8)))
	}
	return ops
}

// Property: VC assignment always covers all ops with a VC in range; the
// first op of every VC is a leader (it roots a chain); every op with no
// same-VC dependence predecessor is a leader; per-VC runs between leaders
// never exceed the chain-length cap.
func TestVCChainInvariantsProperty(t *testing.T) {
	f := func(seed int64, szRaw, vcRaw uint8) bool {
		n := int(szRaw)%50 + 2
		nVC := int(vcRaw)%3 + 2
		const cap = 8
		rng := rand.New(rand.NewSource(seed))
		b := prog.NewBuilder("q")
		for _, op := range randomOps(rng, n) {
			b.Op(op)
		}
		p := b.MustBuild()
		r := prog.FormRegions(p, prog.RegionOptions{MaxOps: n + 1})[0]
		AssignVC(r, Options{NumVC: nVC, MaxChainLen: cap})

		g := ddg.Build(r)
		var vcOf []int
		r.ForEachOp(func(_ int, op *prog.StaticOp) { vcOf = append(vcOf, op.Ann.VC) })

		seenVC := map[int]bool{}
		runLen := map[int]int{}
		okAll := true
		idx := 0
		r.ForEachOp(func(_ int, op *prog.StaticOp) {
			vc := op.Ann.VC
			if vc < 0 || vc >= nVC {
				okAll = false
			}
			if !seenVC[vc] && !op.Ann.Leader {
				okAll = false // first op of a VC must lead
			}
			seenVC[vc] = true
			samePred := false
			for _, e := range g.Nodes[idx].Preds {
				if vcOf[e.To] == vc {
					samePred = true
				}
			}
			if !samePred && !op.Ann.Leader {
				okAll = false // dependence roots must lead
			}
			if op.Ann.Leader {
				runLen[vc] = 0
			}
			runLen[vc]++
			if runLen[vc] > cap {
				okAll = false
			}
			idx++
		})
		return okAll
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: OB and RHOP assignments are deterministic across repeated runs.
func TestPassesDeterministicProperty(t *testing.T) {
	f := func(seed int64, szRaw uint8) bool {
		n := int(szRaw)%40 + 2
		build := func() *prog.Region {
			rng := rand.New(rand.NewSource(seed))
			b := prog.NewBuilder("q")
			for _, op := range randomOps(rng, n) {
				b.Op(op)
			}
			p := b.MustBuild()
			return prog.FormRegions(p, prog.RegionOptions{MaxOps: n + 1})[0]
		}
		r1, r2 := build(), build()
		AssignRHOP(r1, Options{NumClusters: 2})
		AssignRHOP(r2, Options{NumClusters: 2})
		same := true
		var a1, a2 []int
		r1.ForEachOp(func(_ int, op *prog.StaticOp) { a1 = append(a1, op.Ann.Static) })
		r2.ForEachOp(func(_ int, op *prog.StaticOp) { a2 = append(a2, op.Ann.Static) })
		for i := range a1 {
			if a1[i] != a2[i] {
				same = false
			}
		}
		return same
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
