package partition

import (
	"clustersim/internal/ddg"
	"clustersim/internal/prog"
	"clustersim/internal/uarch"
)

// AssignOB runs the SPDI operation-based baseline (Nagarajan et al.) over
// one region: a greedy per-op static placement onto physical clusters that
// balances estimated load first and communication second, written into
// Ann.Static.
//
// SPDI's placement is balance-driven: it found load balance to dominate on
// EDGE-style substrates, so each op goes to the cluster with the smallest
// estimated load among those, preferring (within a small load tolerance)
// clusters that already hold the op's producers. Placing at op granularity
// is precisely what spreads dependence chains across clusters — the copy
// cost the paper's VC scheme avoids by placing whole chains.
func AssignOB(r *prog.Region, opts Options) {
	opts = opts.withDefaults()
	g := ddg.Build(r)
	if g.Len() == 0 {
		return
	}
	k := opts.NumClusters
	loc := make([]int, g.Len())
	load := make([]int, k)

	for i := range g.Nodes {
		// Connectivity: how many producers of node i live in each cluster.
		conn := make([]int, k)
		for _, e := range g.Nodes[i].Preds {
			conn[loc[e.To]]++
		}
		minLoad := load[0]
		for c := 1; c < k; c++ {
			if load[c] < minLoad {
				minLoad = load[c]
			}
		}
		// Balance dominates (SPDI's finding on EDGE substrates): only the
		// currently least-loaded clusters are candidates; producer locality
		// merely breaks ties among them. This is what shreds dependence
		// chains across clusters — the structural weakness the paper's VC
		// scheme fixes by placing whole chains.
		best := -1
		for c := 0; c < k; c++ {
			if load[c] != minLoad {
				continue
			}
			if best == -1 || conn[c] > conn[best] {
				best = c
			}
		}
		loc[i] = best
		load[best] += weightOB(g.Nodes[i].Op)
	}

	idx := 0
	r.ForEachOp(func(_ int, op *prog.StaticOp) {
		op.Ann.Static = loc[idx]
		op.Ann.VC = -1
		op.Ann.Leader = false
		idx++
	})
}

// weightOB is the static load estimate of one op for the OB balance
// counters: long-latency ops weigh more.
func weightOB(op *prog.StaticOp) int {
	lat := op.Opcode.Latency()
	if op.Opcode == uarch.OpLoad {
		lat = ddg.ExpectedLoadLatency
	}
	return lat
}

// AnnotateOB runs AssignOB over every region of the program.
func AnnotateOB(p *prog.Program, opts Options) {
	for _, r := range prog.FormRegions(p, prog.RegionOptions{MaxOps: opts.RegionMaxOps}) {
		AssignOB(r, opts)
	}
}
