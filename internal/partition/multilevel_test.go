package partition

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// twoCliques builds two densely connected groups of size n joined by a
// single light edge — the canonical partitioning testcase.
func twoCliques(n int) *wgraph {
	g := newWGraph(2 * n)
	for i := range g.nodeW {
		g.nodeW[i] = 1
	}
	for grp := 0; grp < 2; grp++ {
		base := grp * n
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				g.addEdge(base+i, base+j, 10)
			}
		}
	}
	g.addEdge(n-1, n, 1) // weak bridge
	return g
}

func cutWeight(g *wgraph, part []int) int {
	cut := 0
	for u := range g.adj {
		for v, w := range g.adj[u] {
			if u < v && part[u] != part[v] {
				cut += w
			}
		}
	}
	return cut
}

func TestPartitionSeparatesCliques(t *testing.T) {
	g := twoCliques(6)
	part := partitionMultilevel(g, 2, 4, 0.15)
	if got := cutWeight(g, part); got != 1 {
		t.Errorf("cut weight = %d, want 1 (only the bridge)", got)
	}
	// Both cliques internally uniform.
	for i := 1; i < 6; i++ {
		if part[i] != part[0] {
			t.Errorf("clique A split: part[%d]=%d part[0]=%d", i, part[i], part[0])
		}
		if part[6+i] != part[6] {
			t.Errorf("clique B split: part[%d]=%d part[6]=%d", 6+i, part[6+i], part[6])
		}
	}
	if part[0] == part[6] {
		t.Error("cliques merged into one part")
	}
}

func TestPartitionBalanced(t *testing.T) {
	g := twoCliques(8)
	part := partitionMultilevel(g, 2, 4, 0.15)
	load := [2]int{}
	for u, p := range part {
		load[p] += g.nodeW[u]
	}
	if load[0] != 8 || load[1] != 8 {
		t.Errorf("loads = %v, want [8 8]", load)
	}
}

func TestPartitionK1IsTrivial(t *testing.T) {
	g := twoCliques(4)
	part := partitionMultilevel(g, 1, 4, 0.15)
	for u, p := range part {
		if p != 0 {
			t.Errorf("part[%d] = %d, want 0", u, p)
		}
	}
}

func TestPartitionDisconnectedGraph(t *testing.T) {
	// 7 isolated nodes, k=3: matching cannot shrink; LPT must balance.
	g := newWGraph(7)
	for i := range g.nodeW {
		g.nodeW[i] = 1
	}
	part := partitionMultilevel(g, 3, 4, 0.15)
	load := make([]int, 3)
	for _, p := range part {
		if p < 0 || p >= 3 {
			t.Fatalf("part id %d out of range", p)
		}
		load[p]++
	}
	for p, l := range load {
		if l < 2 || l > 3 {
			t.Errorf("part %d load %d, want 2 or 3", p, l)
		}
	}
}

func TestCoarsenPreservesTotalWeight(t *testing.T) {
	g := twoCliques(5)
	cg, coarseOf, ok := coarsen(g)
	if !ok {
		t.Fatal("coarsen found no matching in a dense graph")
	}
	if cg.totalWeight() != g.totalWeight() {
		t.Errorf("coarse total weight %d, want %d", cg.totalWeight(), g.totalWeight())
	}
	for u, c := range coarseOf {
		if c < 0 || c >= cg.len() {
			t.Errorf("coarseOf[%d] = %d out of range", u, c)
		}
	}
	if cg.len() >= g.len() {
		t.Errorf("coarse graph not smaller: %d vs %d", cg.len(), g.len())
	}
}

func TestPartitionDeterministic(t *testing.T) {
	g1 := twoCliques(6)
	g2 := twoCliques(6)
	p1 := partitionMultilevel(g1, 2, 4, 0.15)
	p2 := partitionMultilevel(g2, 2, 4, 0.15)
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("nondeterministic partition at node %d", i)
		}
	}
}

// randomWGraph builds a random connected-ish weighted graph.
func randomWGraph(rng *rand.Rand, n int) *wgraph {
	g := newWGraph(n)
	for i := range g.nodeW {
		g.nodeW[i] = 1 + rng.Intn(4)
	}
	for u := 1; u < n; u++ {
		g.addEdge(u, rng.Intn(u), 1+rng.Intn(10))
	}
	extra := n
	for i := 0; i < extra; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		g.addEdge(u, v, 1+rng.Intn(10))
	}
	return g
}

// Property: every node gets a part in [0,k), for random graphs and k.
func TestPartitionCoversAllNodesProperty(t *testing.T) {
	f := func(seed int64, szRaw, kRaw uint8) bool {
		n := int(szRaw)%40 + 2
		k := int(kRaw)%4 + 1
		rng := rand.New(rand.NewSource(seed))
		g := randomWGraph(rng, n)
		part := partitionMultilevel(g, k, 4, 0.15)
		if len(part) != n {
			return false
		}
		for _, p := range part {
			if p < 0 || p >= k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: refinement never increases the cut weight.
func TestRefineNeverWorsensCutProperty(t *testing.T) {
	f := func(seed int64, szRaw uint8) bool {
		n := int(szRaw)%40 + 4
		rng := rand.New(rand.NewSource(seed))
		g := randomWGraph(rng, n)
		part := make([]int, n)
		for i := range part {
			part[i] = rng.Intn(2)
		}
		before := cutWeight(g, part)
		refine(g, part, 2, 4, 0.5)
		return cutWeight(g, part) <= before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
