// Package partition implements the compile-time steering passes: the
// paper's virtual-cluster partitioner with chain identification (§4.2), the
// RHOP multilevel graph-partitioning baseline (Chu/Fan/Mahlke PLDI'03) and
// the SPDI operation-based baseline (Nagarajan et al. PACT'04).
//
// Every pass consumes one region's data dependence graph and writes its
// decisions into the static ops' Annotation fields; the runtime policies in
// internal/steer read them back off the dynamic micro-ops.
package partition

// Options parameterizes the compiler passes.
type Options struct {
	// NumVC is the number of virtual clusters for the VC pass.
	NumVC int
	// NumClusters is the number of physical clusters assumed by the
	// software-only passes (OB, RHOP).
	NumClusters int
	// IssueInt and IssueFP are the per-cluster per-cycle issue widths the
	// completion-time estimator assumes.
	IssueInt, IssueFP int
	// CommLatency is the estimated inter-cluster copy cost in cycles
	// (link latency plus copy issue).
	CommLatency int
	// MaxChainLen caps chain length; longer same-VC runs are split so the
	// hardware re-examines workload balance periodically. Zero means 32.
	MaxChainLen int
	// RefinePasses bounds FM refinement sweeps per uncoarsening level in
	// the multilevel partitioner. Zero means 4.
	RefinePasses int
	// BalanceTolerance is the multiplicative load-imbalance allowance of
	// RHOP refinement (e.g. 0.15 allows 15% above the perfect share).
	// Zero means 0.15.
	BalanceTolerance float64
	// RegionMaxOps caps compiler region size in static ops (the
	// compile-time window the paper's §3.2 argues software steering
	// benefits from). Zero means the region-formation default (256).
	RegionMaxOps int
}

func (o Options) withDefaults() Options {
	if o.NumVC == 0 {
		o.NumVC = 2
	}
	if o.NumClusters == 0 {
		o.NumClusters = 2
	}
	if o.IssueInt == 0 {
		o.IssueInt = 2
	}
	if o.IssueFP == 0 {
		o.IssueFP = 2
	}
	if o.CommLatency == 0 {
		o.CommLatency = 2
	}
	if o.MaxChainLen == 0 {
		o.MaxChainLen = 32
	}
	if o.RefinePasses == 0 {
		o.RefinePasses = 4
	}
	if o.BalanceTolerance == 0 {
		o.BalanceTolerance = 0.15
	}
	return o
}
