package partition

import (
	"testing"

	"clustersim/internal/prog"
	"clustersim/internal/workload"
)

func TestEvaluateStaticOnChains(t *testing.T) {
	_, r := linearRegion(t, twoChains(6)...)
	AssignRHOP(r, Options{NumClusters: 2})
	q := EvaluateStatic(r, 2)
	if q.TotalEdges == 0 {
		t.Fatal("no edges found")
	}
	// Two independent chains split cleanly: no cut edges needed.
	if q.CutEdges != 0 {
		t.Errorf("RHOP cut %d edges on separable chains", q.CutEdges)
	}
	if q.Load[0]+q.Load[1] != 12 {
		t.Errorf("loads %v do not cover 12 ops", q.Load)
	}
	if q.ImbalancePct > 20 {
		t.Errorf("imbalance %.1f%% on symmetric chains", q.ImbalancePct)
	}
}

func TestEvaluateVCOnChains(t *testing.T) {
	_, r := linearRegion(t, twoChains(6)...)
	AssignVC(r, Options{NumVC: 2})
	q := EvaluateVC(r, 2)
	if q.CutEdges != 0 {
		t.Errorf("VC cut %d edges on separable chains", q.CutEdges)
	}
	if q.CutFraction() != 0 {
		t.Errorf("cut fraction %.2f", q.CutFraction())
	}
}

func TestEvaluateCountsCriticalCuts(t *testing.T) {
	// A single serial chain forcibly split in half: the cut edge is
	// critical.
	var ops []prog.StaticOp
	for i := 0; i < 6; i++ {
		ops = append(ops, addOp(1, 1, 1))
	}
	_, r := linearRegion(t, ops...)
	i := 0
	r.ForEachOp(func(_ int, op *prog.StaticOp) {
		c := 0
		if i >= 3 {
			c = 1
		}
		op.Ann.Static = c
		i++
	})
	q := EvaluateStatic(r, 2)
	if q.CutEdges != 1 {
		t.Fatalf("cut edges = %d, want 1", q.CutEdges)
	}
	if q.CriticalCutEdges != 1 {
		t.Errorf("critical cut edges = %d, want 1 (the chain is all-critical)", q.CriticalCutEdges)
	}
}

func TestPartitionQualityOrderingOnSuite(t *testing.T) {
	// Across the quick suite, the VC partitioner must colocate dataflow at
	// least as well as the balance-first OB placement (fewer cut edges).
	var vcCuts, obCuts int
	for _, sp := range workload.QuickSuite() {
		pVC := sp.Program.Clone()
		AnnotateVC(pVC, Options{NumVC: 2})
		for _, r := range prog.FormRegions(pVC, prog.RegionOptions{}) {
			q := EvaluateVC(r, 2)
			vcCuts += q.CutEdges
		}
		pOB := sp.Program.Clone()
		AnnotateOB(pOB, Options{NumClusters: 2})
		for _, r := range prog.FormRegions(pOB, prog.RegionOptions{}) {
			q := EvaluateStatic(r, 2)
			obCuts += q.CutEdges
		}
	}
	if vcCuts >= obCuts {
		t.Errorf("VC cut %d edges vs OB %d — chains should colocate dataflow", vcCuts, obCuts)
	}
}
