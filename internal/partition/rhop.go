package partition

import (
	"clustersim/internal/ddg"
	"clustersim/internal/prog"
)

// AssignRHOP runs the RHOP baseline over one region: slack-weighted
// multilevel graph partitioning of the DDG into NumClusters parts, written
// into each op's Ann.Static.
//
// Following Chu/Fan/Mahlke, node weights reflect resource demand
// (latency-scaled) and edge weights reflect slack computed from static
// latencies: edges on the critical path get the highest weight so
// coarsening groups critical chains, and refinement trades cut weight
// against per-cluster workload balance.
func AssignRHOP(r *prog.Region, opts Options) {
	opts = opts.withDefaults()
	g := ddg.Build(r)
	if g.Len() == 0 {
		return
	}
	crit := ddg.ComputeCriticality(g)

	wg := newWGraph(g.Len())
	for i := range g.Nodes {
		// Resource demand: every op consumes one issue slot; long-latency
		// ops additionally occupy their unit, counted at half weight so
		// slot balance still dominates (RHOP balances per-cluster resource
		// usage estimated from static latencies).
		wg.nodeW[i] = 2 + (g.Nodes[i].Latency-1)/2
		for _, e := range g.Nodes[i].Succs {
			wg.addEdge(i, e.To, edgeWeight(crit, g, i, e.To))
		}
	}
	part := partitionMultilevel(wg, opts.NumClusters, opts.RefinePasses, opts.BalanceTolerance)

	idx := 0
	r.ForEachOp(func(_ int, op *prog.StaticOp) {
		op.Ann.Static = part[idx]
		op.Ann.VC = -1
		op.Ann.Leader = false
		idx++
	})
}

// edgeWeight maps edge slack to a coarsening/cut weight: slack 0 (critical)
// weighs heaviest; weight decays with slack so slack-rich edges are cheap
// to cut. The +1 keeps every dependence edge visible to the partitioner.
func edgeWeight(c *ddg.Criticality, g *ddg.Graph, u, v int) int {
	slack := c.EdgeSlack(g, u, v)
	const maxW = 16
	w := maxW - slack
	if w < 1 {
		w = 1
	}
	return w
}

// AnnotateRHOP runs AssignRHOP over every region of the program.
func AnnotateRHOP(p *prog.Program, opts Options) {
	for _, r := range prog.FormRegions(p, prog.RegionOptions{MaxOps: opts.RegionMaxOps}) {
		AssignRHOP(r, opts)
	}
}
