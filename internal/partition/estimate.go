package partition

import (
	"clustersim/internal/ddg"
	"clustersim/internal/prog"
)

// Quality summarizes a compile-time partition of one region: the
// communication a static assignment implies and how evenly it spreads
// work. The compiler-side analogue of the runtime copy/balance metrics,
// used by tests and by tracegen to explain partition decisions.
type Quality struct {
	// CutEdges counts dependence edges whose endpoints sit in different
	// partitions (each becomes a copy when the mapping differs).
	CutEdges int
	// TotalEdges counts all dependence edges.
	TotalEdges int
	// CriticalCutEdges counts cut edges with zero slack: each lengthens
	// the region's critical path by the copy latency.
	CriticalCutEdges int
	// Load is the per-partition op count.
	Load []int
	// ImbalancePct is (max load − min load) / mean load × 100.
	ImbalancePct float64
}

// CutFraction returns CutEdges/TotalEdges (0 when the region has no edges).
func (q *Quality) CutFraction() float64 {
	if q.TotalEdges == 0 {
		return 0
	}
	return float64(q.CutEdges) / float64(q.TotalEdges)
}

// EvaluateStatic measures the quality of a Static (OB/RHOP) annotation
// over the region, for k partitions.
func EvaluateStatic(r *prog.Region, k int) Quality {
	return evaluate(r, k, func(op *prog.StaticOp) int { return op.Ann.Static })
}

// EvaluateVC measures the quality of a VC annotation over the region, for
// k virtual clusters. Cut edges here are cross-VC edges: whether they cost
// a copy at runtime depends on the mapping table, so this is the lower
// bound on colocated dataflow.
func EvaluateVC(r *prog.Region, k int) Quality {
	return evaluate(r, k, func(op *prog.StaticOp) int { return op.Ann.VC })
}

func evaluate(r *prog.Region, k int, partOf func(*prog.StaticOp) int) Quality {
	g := ddg.Build(r)
	crit := ddg.ComputeCriticality(g)
	q := Quality{Load: make([]int, k)}
	for i := range g.Nodes {
		pi := partOf(g.Nodes[i].Op)
		if pi >= 0 && pi < k {
			q.Load[pi]++
		}
		for _, e := range g.Nodes[i].Succs {
			q.TotalEdges++
			pj := partOf(g.Nodes[e.To].Op)
			if pi != pj {
				q.CutEdges++
				if crit.EdgeSlack(g, i, e.To) == 0 {
					q.CriticalCutEdges++
				}
			}
		}
	}
	minL, maxL, sum := int(^uint(0)>>1), 0, 0
	for _, l := range q.Load {
		if l < minL {
			minL = l
		}
		if l > maxL {
			maxL = l
		}
		sum += l
	}
	if sum > 0 {
		mean := float64(sum) / float64(k)
		q.ImbalancePct = float64(maxL-minL) / mean * 100
	}
	return q
}
