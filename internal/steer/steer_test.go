package steer

import (
	"testing"

	"clustersim/internal/prog"
	"clustersim/internal/trace"
	"clustersim/internal/uarch"
)

// fakeCtx is a scriptable steering context.
type fakeCtx struct {
	n        int
	occ      []int
	inflight []int
	space    map[int]bool // cluster → has space (default true)
	locs     map[uarch.Reg]uint32
}

func newFakeCtx(n int) *fakeCtx {
	return &fakeCtx{
		n:        n,
		occ:      make([]int, n),
		inflight: make([]int, n),
		space:    map[int]bool{},
		locs:     map[uarch.Reg]uint32{},
	}
}

func (f *fakeCtx) NumClusters() int    { return f.n }
func (f *fakeCtx) Occupancy(c int) int { return f.occ[c] }
func (f *fakeCtx) InFlight(c int) int  { return f.inflight[c] }
func (f *fakeCtx) HasSpace(c int, _ uarch.Class) bool {
	if v, ok := f.space[c]; ok {
		return v
	}
	return true
}
func (f *fakeCtx) ValueClusters(r uarch.Reg) uint32 { return f.locs[r] }

func uopWith(op prog.StaticOp) *trace.Uop {
	if op.Ann == (prog.Annotation{}) {
		op.Ann = prog.NoAnnotation
	}
	s := op
	return &trace.Uop{Static: &s}
}

func addUop(s1, s2 int) *trace.Uop {
	return uopWith(prog.StaticOp{
		Opcode: uarch.OpAdd, Dst: uarch.IntReg(7),
		Src1: uarch.IntReg(s1), Src2: uarch.IntReg(s2),
	})
}

func TestOPFollowsOperandLocation(t *testing.T) {
	ctx := newFakeCtx(2)
	ctx.locs[uarch.IntReg(1)] = 1 << 1 // r1 lives in cluster 1
	ctx.locs[uarch.IntReg(2)] = 1 << 1
	p := &OP{}
	d := p.Steer(ctx, addUop(1, 2))
	if d.Stall || d.Cluster != 1 {
		t.Fatalf("decision = %+v, want cluster 1", d)
	}
}

func TestOPTieBreaksToLeastLoaded(t *testing.T) {
	ctx := newFakeCtx(2)
	ctx.locs[uarch.IntReg(1)] = 1 << 0
	ctx.locs[uarch.IntReg(2)] = 1 << 1
	ctx.occ[0], ctx.occ[1] = 10, 3
	p := &OP{}
	d := p.Steer(ctx, addUop(1, 2))
	if d.Stall || d.Cluster != 1 {
		t.Fatalf("decision = %+v, want least-loaded cluster 1 on tie", d)
	}
}

func TestOPStallsOverSteeringToBusyCluster(t *testing.T) {
	ctx := newFakeCtx(2)
	ctx.locs[uarch.IntReg(1)] = 1 << 0
	ctx.locs[uarch.IntReg(2)] = 1 << 0
	ctx.space[0] = false // preferred cluster full
	ctx.occ[0], ctx.occ[1] = 40, 39
	p := &OP{}
	d := p.Steer(ctx, addUop(1, 2))
	if !d.Stall {
		t.Fatalf("decision = %+v, want stall (alternative cluster is busy)", d)
	}
}

func TestOPDivertsToIdleCluster(t *testing.T) {
	ctx := newFakeCtx(2)
	ctx.locs[uarch.IntReg(1)] = 1 << 0
	ctx.locs[uarch.IntReg(2)] = 1 << 0
	ctx.space[0] = false
	ctx.occ[0], ctx.occ[1] = 40, 2 // cluster 1 nearly idle
	p := &OP{}
	d := p.Steer(ctx, addUop(1, 2))
	if d.Stall || d.Cluster != 1 {
		t.Fatalf("decision = %+v, want divert to idle cluster 1", d)
	}
}

func TestOPComplexityCounters(t *testing.T) {
	ctx := newFakeCtx(2)
	p := &OP{}
	p.Steer(ctx, addUop(1, 2))
	cx := p.Complexity()
	if cx.DependenceChecks != 2 {
		t.Errorf("DependenceChecks = %d, want 2", cx.DependenceChecks)
	}
	if cx.VoteOps == 0 || cx.SerializedDecisions != 1 || cx.Steered != 1 {
		t.Errorf("unexpected counters %+v", cx)
	}
	u := cx.Units()
	if !u.DependenceCheck || !u.VoteUnit || !u.WorkloadBalance || u.MappingTable {
		t.Errorf("Units = %+v, want dep+vote+balance without mapping table", u)
	}
}

func TestOneClusterAlwaysTarget(t *testing.T) {
	ctx := newFakeCtx(4)
	p := &OneCluster{Target: 2}
	for i := 0; i < 5; i++ {
		d := p.Steer(ctx, addUop(1, 2))
		if d.Stall || d.Cluster != 2 {
			t.Fatalf("decision = %+v, want cluster 2", d)
		}
	}
	ctx.space[2] = false
	if d := p.Steer(ctx, addUop(1, 2)); !d.Stall {
		t.Fatalf("decision = %+v, want stall when target full", d)
	}
}

func TestStaticFollowsAnnotation(t *testing.T) {
	ctx := newFakeCtx(2)
	p := &Static{Label: "RHOP"}
	u := uopWith(prog.StaticOp{
		Opcode: uarch.OpAdd, Dst: uarch.IntReg(1),
		Src1: uarch.IntReg(0), Src2: uarch.IntReg(0),
		Ann: prog.Annotation{VC: -1, Static: 1},
	})
	d := p.Steer(ctx, u)
	if d.Stall || d.Cluster != 1 {
		t.Fatalf("decision = %+v, want annotated cluster 1", d)
	}
	if p.Name() != "RHOP" {
		t.Errorf("Name = %q", p.Name())
	}
	ctx.space[1] = false
	if d := p.Steer(ctx, u); !d.Stall {
		t.Fatalf("decision = %+v, want stall (static cannot divert)", d)
	}
}

func TestStaticComplexityMinimal(t *testing.T) {
	ctx := newFakeCtx(2)
	p := &Static{}
	u := uopWith(prog.StaticOp{
		Opcode: uarch.OpAdd, Dst: uarch.IntReg(1),
		Src1: uarch.IntReg(0), Src2: uarch.IntReg(0),
		Ann: prog.Annotation{VC: -1, Static: 0},
	})
	p.Steer(ctx, u)
	cx := p.Complexity()
	if cx.DependenceChecks != 0 || cx.VoteOps != 0 {
		t.Errorf("static policy should use no dependence/vote logic: %+v", cx)
	}
}

func vcUop(vc int, leader bool) *trace.Uop {
	return uopWith(prog.StaticOp{
		Opcode: uarch.OpAdd, Dst: uarch.IntReg(1),
		Src1: uarch.IntReg(0), Src2: uarch.IntReg(0),
		Ann: prog.Annotation{VC: vc, Leader: leader, Static: -1},
	})
}

func TestVCLeaderRemapsToLeastLoaded(t *testing.T) {
	ctx := newFakeCtx(2)
	ctx.inflight[0], ctx.inflight[1] = 9, 2
	p := NewVC(2)
	d := p.Steer(ctx, vcUop(0, true))
	if d.Stall || d.Cluster != 1 {
		t.Fatalf("leader decision = %+v, want least-loaded cluster 1", d)
	}
	// Follower of the same VC goes to the mapped cluster even if load flips.
	ctx.inflight[0], ctx.inflight[1] = 0, 50
	d = p.Steer(ctx, vcUop(0, false))
	if d.Stall || d.Cluster != 1 {
		t.Fatalf("follower decision = %+v, want mapped cluster 1", d)
	}
}

func TestVCDistinctVCsIndependent(t *testing.T) {
	ctx := newFakeCtx(2)
	p := NewVC(2)
	ctx.inflight[0], ctx.inflight[1] = 0, 5
	d0 := p.Steer(ctx, vcUop(0, true))
	ctx.inflight[0], ctx.inflight[1] = 7, 5
	d1 := p.Steer(ctx, vcUop(1, true))
	if d0.Cluster != 0 || d1.Cluster != 1 {
		t.Fatalf("mappings = %d,%d, want 0,1", d0.Cluster, d1.Cluster)
	}
	// Followers keep their own VC's mapping.
	if d := p.Steer(ctx, vcUop(0, false)); d.Cluster != 0 {
		t.Errorf("vc0 follower → %d, want 0", d.Cluster)
	}
	if d := p.Steer(ctx, vcUop(1, false)); d.Cluster != 1 {
		t.Errorf("vc1 follower → %d, want 1", d.Cluster)
	}
}

func TestVCNoDependenceLogic(t *testing.T) {
	ctx := newFakeCtx(2)
	p := NewVC(2)
	p.Steer(ctx, vcUop(0, true))
	p.Steer(ctx, vcUop(0, false))
	cx := p.Complexity()
	if cx.DependenceChecks != 0 || cx.VoteOps != 0 || cx.SerializedDecisions != 0 {
		t.Errorf("VC policy must not use dependence/vote logic: %+v", cx)
	}
	if cx.MapReads != 2 || cx.MapWrites != 1 {
		t.Errorf("MapReads/Writes = %d/%d, want 2/1", cx.MapReads, cx.MapWrites)
	}
	u := cx.Units()
	if u.DependenceCheck || u.VoteUnit || !u.WorkloadBalance || !u.MappingTable {
		t.Errorf("Units = %+v, want balance+table only", u)
	}
}

func TestVCStallsWhenMappedClusterFull(t *testing.T) {
	ctx := newFakeCtx(2)
	p := NewVC(2)
	p.Steer(ctx, vcUop(0, true)) // maps VC0 → cluster 0
	ctx.space[0] = false
	if d := p.Steer(ctx, vcUop(0, false)); !d.Stall {
		t.Fatalf("decision = %+v, want stall (follower must not split chain)", d)
	}
}

func TestVCMoreVCsThanClustersWraps(t *testing.T) {
	ctx := newFakeCtx(2)
	p := NewVC(4)
	d := p.Steer(ctx, vcUop(3, false)) // no leader seen: identity table, wraps mod 2
	if d.Stall || d.Cluster < 0 || d.Cluster >= 2 {
		t.Fatalf("decision = %+v, want valid cluster", d)
	}
}

func TestModNRoundRobins(t *testing.T) {
	ctx := newFakeCtx(3)
	p := &ModN{}
	want := []int{0, 1, 2, 0, 1}
	for i, w := range want {
		d := p.Steer(ctx, addUop(0, 0))
		if d.Stall || d.Cluster != w {
			t.Fatalf("step %d: decision = %+v, want cluster %d", i, d, w)
		}
	}
}

func TestPolicyResetClearsComplexity(t *testing.T) {
	ctx := newFakeCtx(2)
	policies := []Policy{&OP{}, &OneCluster{}, &Static{}, NewVC(2), &ModN{}}
	for _, p := range policies {
		p.Steer(ctx, addUop(1, 2))
		p.Reset()
		if p.Complexity().Steered != 0 {
			t.Errorf("%s: Reset did not clear complexity", p.Name())
		}
	}
}

func TestPerKuop(t *testing.T) {
	if got := PerKuop(500, 1000); got != 500 {
		t.Errorf("PerKuop = %g, want 500", got)
	}
	if got := PerKuop(5, 0); got != 0 {
		t.Errorf("PerKuop with zero steered = %g, want 0", got)
	}
}
