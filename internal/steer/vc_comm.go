package steer

import (
	"fmt"

	"clustersim/internal/trace"
	"clustersim/internal/uarch"
)

// VCComm extends the paper's VC mapper with communication-aware leader
// mapping — the co-design direction the paper's conclusion points at. The
// baseline hardware maps a chain leader's VC to the least-loaded cluster
// using only the workload counters; VCComm additionally consults the
// leader's operand locations (information the rename table already holds,
// so the addition is two table reads, not the full dependence/vote logic
// of hardware-only steering) and charges an estimated copy penalty for
// placing the new chain away from its inputs.
//
// Score per candidate cluster c: InFlight(c) + CopyPenalty × (operands of
// the leader not present in c). Followers still read the mapping table
// unchanged.
type VCComm struct {
	// NumVC sizes the mapping table.
	NumVC int
	// CopyPenalty is the in-flight-uops-equivalent cost of one copy.
	// Zero means 8.
	CopyPenalty int
	table       []int
	cx          Complexity
}

// NewVCComm builds the extended mapper.
func NewVCComm(numVC int) *VCComm {
	if numVC <= 0 {
		panic(fmt.Sprintf("steer: NumVC %d", numVC))
	}
	v := &VCComm{NumVC: numVC}
	v.Reset()
	return v
}

// Name implements Policy.
func (p *VCComm) Name() string { return "VC-comm" }

// Reset implements Policy.
func (p *VCComm) Reset() {
	p.table = make([]int, p.NumVC)
	for i := range p.table {
		p.table[i] = i
	}
	p.cx = Complexity{}
}

// Complexity implements Policy.
func (p *VCComm) Complexity() *Complexity { return &p.cx }

// Steer implements Policy.
func (p *VCComm) Steer(ctx Context, u *trace.Uop) Decision {
	p.cx.Steered++
	n := ctx.NumClusters()
	vc := u.Static.Ann.VC
	if vc < 0 || vc >= p.NumVC {
		p.cx.CounterReads += uint64(n)
		c := leastLoaded(ctx)
		if !ctx.HasSpace(c, u.Static.Opcode.Class()) {
			return stall
		}
		return Decision{Cluster: c}
	}
	if u.Static.Ann.Leader {
		p.cx.CounterReads += uint64(n)
		p.cx.MapWrites++
		p.table[vc] = p.bestCluster(ctx, u)
	}
	p.cx.MapReads++
	c := p.table[vc] % n
	if !ctx.HasSpace(c, u.Static.Opcode.Class()) {
		return stall
	}
	return Decision{Cluster: c}
}

// bestCluster scores candidates by load plus estimated copy cost for the
// leader's operands.
func (p *VCComm) bestCluster(ctx Context, u *trace.Uop) int {
	penalty := p.CopyPenalty
	if penalty == 0 {
		penalty = 8
	}
	var masks []uint32
	for _, src := range [2]uarch.Reg{u.Static.Src1, u.Static.Src2} {
		if src == uarch.RegNone {
			continue
		}
		p.cx.DependenceChecks++ // rename-table location read (leaders only)
		masks = append(masks, ctx.ValueClusters(src))
	}
	best, bestScore := 0, int(^uint(0)>>1)
	for c := 0; c < ctx.NumClusters(); c++ {
		score := ctx.InFlight(c)
		for _, m := range masks {
			if m&(1<<uint(c)) == 0 {
				score += penalty
			}
		}
		if score < bestScore {
			best, bestScore = c, score
		}
	}
	return best
}
