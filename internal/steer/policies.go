package steer

import (
	"fmt"

	"clustersim/internal/trace"
	"clustersim/internal/uarch"
)

// ---------------------------------------------------------------------------
// OP: occupancy-aware dependence-based hardware-only steering (the paper's
// baseline, after González/Latorre/González 2004).

// OP steers each micro-op to the cluster holding most of its source
// operands, breaking ties toward the least-loaded cluster. If the preferred
// cluster has no space it prefers stalling over steering ("stall over
// steer"): it diverts to another cluster only when that cluster is clearly
// idle, because a misplaced op costs copies on the critical path.
type OP struct {
	// BusyFraction is the occupancy fraction (of preferred-cluster
	// occupancy) below which an alternative cluster counts as "not busy"
	// and may receive a diverted op. Zero means 0.5.
	BusyFraction float64
	// NoStall disables stall-over-steer: a full preferred cluster always
	// diverts to any cluster with space (the pre-[15] dependence-steering
	// behaviour; the ablation harness quantifies the difference).
	NoStall bool
	cx      Complexity
}

// Name implements Policy.
func (p *OP) Name() string {
	if p.NoStall {
		return "OP-nostall"
	}
	return "OP"
}

// Reset implements Policy.
func (p *OP) Reset() { p.cx = Complexity{} }

// Complexity implements Policy.
func (p *OP) Complexity() *Complexity { return &p.cx }

// Steer implements Policy.
func (p *OP) Steer(ctx Context, u *trace.Uop) Decision {
	n := ctx.NumClusters()
	p.cx.Steered++
	p.cx.SerializedDecisions++ // every decision consumes updated locations

	// Dependence check: where do the sources live?
	var votes [32]int
	for _, src := range [2]uarch.Reg{u.Static.Src1, u.Static.Src2} {
		if src == uarch.RegNone {
			continue
		}
		p.cx.DependenceChecks++
		mask := ctx.ValueClusters(src)
		for c := 0; c < n; c++ {
			if mask&(1<<uint(c)) != 0 {
				votes[c]++
			}
		}
	}
	// Vote: most sources, tie → least loaded.
	pref := 0
	p.cx.VoteOps += uint64(n)
	p.cx.CounterReads += uint64(n)
	for c := 1; c < n; c++ {
		if votes[c] > votes[pref] ||
			(votes[c] == votes[pref] && ctx.Occupancy(c) < ctx.Occupancy(pref)) {
			pref = c
		}
	}
	if ctx.HasSpace(pref, u.Static.Opcode.Class()) {
		return Decision{Cluster: pref}
	}
	// Preferred cluster full: divert only to a clearly idle cluster,
	// otherwise stall the steering stage. Under NoStall, any cluster with
	// space takes the op.
	busy := p.BusyFraction
	if busy == 0 {
		busy = 0.5
	}
	prefOcc := ctx.Occupancy(pref)
	best, bestOcc := -1, 0
	for c := 0; c < n; c++ {
		if c == pref || !ctx.HasSpace(c, u.Static.Opcode.Class()) {
			continue
		}
		occ := ctx.Occupancy(c)
		idle := float64(occ) <= busy*float64(prefOcc)
		if (p.NoStall || idle) && (best == -1 || occ < bestOcc) {
			best, bestOcc = c, occ
		}
	}
	if best >= 0 {
		return Decision{Cluster: best}
	}
	return stall
}

// ---------------------------------------------------------------------------
// OneCluster: every micro-op to a single physical cluster.

// OneCluster is the paper's naive "one-cluster" configuration: zero
// communication, worst workload distribution.
type OneCluster struct {
	// Target is the receiving cluster (usually 0).
	Target int
	cx     Complexity
}

// Name implements Policy.
func (p *OneCluster) Name() string { return "one-cluster" }

// Reset implements Policy.
func (p *OneCluster) Reset() { p.cx = Complexity{} }

// Complexity implements Policy.
func (p *OneCluster) Complexity() *Complexity { return &p.cx }

// Steer implements Policy.
func (p *OneCluster) Steer(ctx Context, u *trace.Uop) Decision {
	p.cx.Steered++
	if !ctx.HasSpace(p.Target, u.Static.Opcode.Class()) {
		return stall
	}
	return Decision{Cluster: p.Target}
}

// ---------------------------------------------------------------------------
// Static: follow the compiler's fixed physical-cluster assignment (the
// software-only OB and RHOP configurations).

// Static steers every micro-op to the physical cluster its static op was
// assigned at compile time. The hardware keeps no dependence or vote logic;
// a full target queue stalls the frontend (static placement cannot divert).
type Static struct {
	// Label distinguishes OB from RHOP in reports.
	Label string
	cx    Complexity
}

// Name implements Policy.
func (p *Static) Name() string {
	if p.Label == "" {
		return "static"
	}
	return p.Label
}

// Reset implements Policy.
func (p *Static) Reset() { p.cx = Complexity{} }

// Complexity implements Policy.
func (p *Static) Complexity() *Complexity { return &p.cx }

// Steer implements Policy.
func (p *Static) Steer(ctx Context, u *trace.Uop) Decision {
	p.cx.Steered++
	c := u.Static.Ann.Static
	if c < 0 || c >= ctx.NumClusters() {
		// Unannotated op (should not happen for annotated programs):
		// fall back to cluster 0.
		c = 0
	}
	if !ctx.HasSpace(c, u.Static.Opcode.Class()) {
		return stall
	}
	return Decision{Cluster: c}
}

// ---------------------------------------------------------------------------
// VC: the paper's hybrid virtual-cluster mapper (§4.3, Fig. 4).

// VC maps compiler-assigned virtual clusters onto physical clusters at
// runtime. The only hardware: per-cluster workload counters and a mapping
// table with one entry per virtual cluster. At a chain leader the leader's
// VC is remapped to the least-loaded physical cluster; followers read the
// table. Dependence checking and voting are absent.
type VC struct {
	// NumVC sizes the mapping table.
	NumVC int
	table []int
	cx    Complexity
}

// NewVC builds the mapper for the given virtual-cluster count.
func NewVC(numVC int) *VC {
	if numVC <= 0 {
		panic(fmt.Sprintf("steer: NumVC %d", numVC))
	}
	v := &VC{NumVC: numVC}
	v.Reset()
	return v
}

// Name implements Policy.
func (p *VC) Name() string { return "VC" }

// Reset implements Policy.
func (p *VC) Reset() {
	p.table = make([]int, p.NumVC)
	for i := range p.table {
		p.table[i] = i // identity until first leader, modulo wrap below
	}
	p.cx = Complexity{}
}

// Complexity implements Policy.
func (p *VC) Complexity() *Complexity { return &p.cx }

// Steer implements Policy.
func (p *VC) Steer(ctx Context, u *trace.Uop) Decision {
	p.cx.Steered++
	n := ctx.NumClusters()
	vc := u.Static.Ann.VC
	if vc < 0 || vc >= p.NumVC {
		// Unannotated micro-op: use the workload counters directly.
		p.cx.CounterReads += uint64(n)
		c := leastLoaded(ctx)
		if !ctx.HasSpace(c, u.Static.Opcode.Class()) {
			return stall
		}
		return Decision{Cluster: c}
	}
	if u.Static.Ann.Leader {
		// Chain leader: consult the workload counters and remap.
		p.cx.CounterReads += uint64(n)
		p.cx.MapWrites++
		p.table[vc] = leastLoaded(ctx)
	}
	p.cx.MapReads++
	c := p.table[vc] % n
	if !ctx.HasSpace(c, u.Static.Opcode.Class()) {
		return stall
	}
	return Decision{Cluster: c}
}

// leastLoaded returns the cluster with the fewest in-flight micro-ops.
func leastLoaded(ctx Context) int {
	best := 0
	for c := 1; c < ctx.NumClusters(); c++ {
		if ctx.InFlight(c) < ctx.InFlight(best) {
			best = c
		}
	}
	return best
}

// ---------------------------------------------------------------------------
// ModN: round-robin. Not a paper configuration; a sanity baseline used by
// tests and ablations (maximal balance, maximal communication).

// ModN distributes micro-ops round-robin.
type ModN struct {
	next int
	cx   Complexity
}

// Name implements Policy.
func (p *ModN) Name() string { return "modN" }

// Reset implements Policy.
func (p *ModN) Reset() { p.next = 0; p.cx = Complexity{} }

// Complexity implements Policy.
func (p *ModN) Complexity() *Complexity { return &p.cx }

// Steer implements Policy.
func (p *ModN) Steer(ctx Context, u *trace.Uop) Decision {
	p.cx.Steered++
	c := p.next % ctx.NumClusters()
	if !ctx.HasSpace(c, u.Static.Opcode.Class()) {
		return stall
	}
	p.next++
	return Decision{Cluster: c}
}
