package steer

import (
	"testing"

	"clustersim/internal/prog"
	"clustersim/internal/trace"
	"clustersim/internal/uarch"
)

func vcCommUop(vc int, leader bool, src uarch.Reg) *trace.Uop {
	op := prog.StaticOp{
		Opcode: uarch.OpAdd, Dst: uarch.IntReg(1),
		Src1: src, Src2: uarch.RegNone,
		Ann: prog.Annotation{VC: vc, Leader: leader, Static: -1},
	}
	return &trace.Uop{Static: &op}
}

func TestVCCommLeaderPrefersOperandCluster(t *testing.T) {
	ctx := newFakeCtx(2)
	// Cluster 1 is slightly busier but holds the operand; the copy penalty
	// (8) outweighs the 3-uop load difference.
	ctx.inflight[0], ctx.inflight[1] = 0, 3
	ctx.locs[uarch.IntReg(5)] = 1 << 1
	p := NewVCComm(2)
	d := p.Steer(ctx, vcCommUop(0, true, uarch.IntReg(5)))
	if d.Stall || d.Cluster != 1 {
		t.Fatalf("decision = %+v, want operand-holding cluster 1", d)
	}
}

func TestVCCommLeaderYieldsToHeavyImbalance(t *testing.T) {
	ctx := newFakeCtx(2)
	// Imbalance (20) dominates the copy penalty (8): balance wins.
	ctx.inflight[0], ctx.inflight[1] = 0, 20
	ctx.locs[uarch.IntReg(5)] = 1 << 1
	p := NewVCComm(2)
	d := p.Steer(ctx, vcCommUop(0, true, uarch.IntReg(5)))
	if d.Stall || d.Cluster != 0 {
		t.Fatalf("decision = %+v, want least-loaded cluster 0", d)
	}
}

func TestVCCommFollowersUseTable(t *testing.T) {
	ctx := newFakeCtx(2)
	ctx.locs[uarch.IntReg(5)] = 1 << 1
	p := NewVCComm(2)
	p.Steer(ctx, vcCommUop(0, true, uarch.IntReg(5))) // maps VC0 → 1
	ctx.inflight[0], ctx.inflight[1] = 0, 50
	d := p.Steer(ctx, vcCommUop(0, false, uarch.RegNone))
	if d.Stall || d.Cluster != 1 {
		t.Fatalf("follower decision = %+v, want mapped cluster 1", d)
	}
}

func TestVCCommComplexityBounded(t *testing.T) {
	ctx := newFakeCtx(2)
	p := NewVCComm(2)
	p.Steer(ctx, vcCommUop(0, true, uarch.IntReg(5)))
	for i := 0; i < 9; i++ {
		p.Steer(ctx, vcCommUop(0, false, uarch.IntReg(5)))
	}
	cx := p.Complexity()
	// Location reads happen only at leaders (1 of 10 uops): far below the
	// 2-per-uop of hardware-only steering.
	if cx.DependenceChecks != 1 {
		t.Errorf("DependenceChecks = %d, want 1 (leader only)", cx.DependenceChecks)
	}
	if cx.VoteOps != 0 || cx.SerializedDecisions != 0 {
		t.Errorf("VC-comm must not add vote/serialized logic: %+v", cx)
	}
}
