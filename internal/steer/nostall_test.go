package steer

import (
	"testing"

	"clustersim/internal/uarch"
)

func TestOPNoStallDivertsToBusyCluster(t *testing.T) {
	ctx := newFakeCtx(2)
	ctx.locs[uarch.IntReg(1)] = 1 << 0
	ctx.locs[uarch.IntReg(2)] = 1 << 0
	ctx.space[0] = false            // preferred cluster full
	ctx.occ[0], ctx.occ[1] = 40, 39 // alternative is just as busy
	p := &OP{NoStall: true}
	d := p.Steer(ctx, addUop(1, 2))
	if d.Stall || d.Cluster != 1 {
		t.Fatalf("decision = %+v, want divert to cluster 1 under NoStall", d)
	}
	if p.Name() != "OP-nostall" {
		t.Errorf("Name = %q", p.Name())
	}
}

func TestOPNoStallStillStallsWhenNowhereToGo(t *testing.T) {
	ctx := newFakeCtx(2)
	ctx.space[0] = false
	ctx.space[1] = false
	p := &OP{NoStall: true}
	if d := p.Steer(ctx, addUop(1, 2)); !d.Stall {
		t.Fatalf("decision = %+v, want stall when every cluster is full", d)
	}
}

func TestOPNoStallPrefersLeastLoadedAlternative(t *testing.T) {
	ctx := newFakeCtx(4)
	ctx.locs[uarch.IntReg(1)] = 1 << 0
	ctx.locs[uarch.IntReg(2)] = 1 << 0
	ctx.space[0] = false
	ctx.occ[0], ctx.occ[1], ctx.occ[2], ctx.occ[3] = 48, 30, 10, 20
	p := &OP{NoStall: true}
	d := p.Steer(ctx, addUop(1, 2))
	if d.Stall || d.Cluster != 2 {
		t.Fatalf("decision = %+v, want least-loaded cluster 2", d)
	}
}
