package steer

import (
	"clustersim/internal/trace"
	"clustersim/internal/uarch"
)

// Additional hardware-only steering heuristics from the literature the
// paper surveys (Baniasadi & Moshovos, MICRO-33; Canal et al., HPCA-6).
// They are not Table 3 configurations; the ablation harness and tests use
// them to place OP and VC within the wider design space.

// LeastLoaded steers every micro-op to the cluster with the lowest
// issue-queue occupancy: maximal balance, no dependence awareness (the
// "BAL" heuristic of Baniasadi & Moshovos).
type LeastLoaded struct {
	cx Complexity
}

// Name implements Policy.
func (p *LeastLoaded) Name() string { return "LC" }

// Reset implements Policy.
func (p *LeastLoaded) Reset() { p.cx = Complexity{} }

// Complexity implements Policy.
func (p *LeastLoaded) Complexity() *Complexity { return &p.cx }

// Steer implements Policy.
func (p *LeastLoaded) Steer(ctx Context, u *trace.Uop) Decision {
	p.cx.Steered++
	n := ctx.NumClusters()
	p.cx.CounterReads += uint64(n)
	best := -1
	for c := 0; c < n; c++ {
		if !ctx.HasSpace(c, u.Static.Opcode.Class()) {
			continue
		}
		if best == -1 || ctx.Occupancy(c) < ctx.Occupancy(best) {
			best = c
		}
	}
	if best == -1 {
		return stall
	}
	return Decision{Cluster: best}
}

// Slice steers fixed-size slices of consecutive micro-ops to the same
// cluster, advancing round-robin (the "SLC" slice heuristic of Baniasadi &
// Moshovos): consecutive ops are likely dependent, so slices approximate
// chains without any compiler help.
type Slice struct {
	// SliceLen is the ops per slice. Zero means 8.
	SliceLen int
	cur      int
	left     int
	cx       Complexity
}

// Name implements Policy.
func (p *Slice) Name() string { return "SLC" }

// Reset implements Policy.
func (p *Slice) Reset() {
	p.cur, p.left = 0, 0
	p.cx = Complexity{}
}

// Complexity implements Policy.
func (p *Slice) Complexity() *Complexity { return &p.cx }

// Steer implements Policy.
func (p *Slice) Steer(ctx Context, u *trace.Uop) Decision {
	p.cx.Steered++
	sliceLen := p.SliceLen
	if sliceLen <= 0 {
		sliceLen = 8
	}
	if p.left == 0 {
		p.cur = (p.cur + 1) % ctx.NumClusters()
		p.left = sliceLen
	}
	if !ctx.HasSpace(p.cur, u.Static.Opcode.Class()) {
		return stall
	}
	p.left--
	return Decision{Cluster: p.cur}
}

// DependenceBalanced follows operand locations like OP, but overrides
// toward the least-loaded cluster whenever the occupancy imbalance exceeds
// a threshold (the "ADV" advanced heuristic of Baniasadi & Moshovos:
// dependence-driven with a balance escape hatch).
type DependenceBalanced struct {
	// Threshold is the occupancy difference that triggers rebalancing.
	// Zero means 16 (a third of the default issue-queue capacity).
	Threshold int
	cx        Complexity
}

// Name implements Policy.
func (p *DependenceBalanced) Name() string { return "ADV" }

// Reset implements Policy.
func (p *DependenceBalanced) Reset() { p.cx = Complexity{} }

// Complexity implements Policy.
func (p *DependenceBalanced) Complexity() *Complexity { return &p.cx }

// Steer implements Policy.
func (p *DependenceBalanced) Steer(ctx Context, u *trace.Uop) Decision {
	p.cx.Steered++
	n := ctx.NumClusters()
	thr := p.Threshold
	if thr == 0 {
		thr = 16
	}
	// Balance check first (counters only).
	p.cx.CounterReads += uint64(n)
	minC, maxC := 0, 0
	for c := 1; c < n; c++ {
		if ctx.Occupancy(c) < ctx.Occupancy(minC) {
			minC = c
		}
		if ctx.Occupancy(c) > ctx.Occupancy(maxC) {
			maxC = c
		}
	}
	if ctx.Occupancy(maxC)-ctx.Occupancy(minC) > thr {
		if !ctx.HasSpace(minC, u.Static.Opcode.Class()) {
			return stall
		}
		return Decision{Cluster: minC}
	}
	// Otherwise dependence steering (serialized, like OP).
	p.cx.SerializedDecisions++
	var votes [32]int
	for _, src := range [2]uarch.Reg{u.Static.Src1, u.Static.Src2} {
		if src == uarch.RegNone {
			continue
		}
		p.cx.DependenceChecks++
		mask := ctx.ValueClusters(src)
		for c := 0; c < n; c++ {
			if mask&(1<<uint(c)) != 0 {
				votes[c]++
			}
		}
	}
	p.cx.VoteOps += uint64(n)
	pref := 0
	for c := 1; c < n; c++ {
		if votes[c] > votes[pref] ||
			(votes[c] == votes[pref] && ctx.Occupancy(c) < ctx.Occupancy(pref)) {
			pref = c
		}
	}
	if !ctx.HasSpace(pref, u.Static.Opcode.Class()) {
		return stall
	}
	return Decision{Cluster: pref}
}
