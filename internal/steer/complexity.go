package steer

// Complexity counts the steering-logic operations a policy performs,
// quantifying the paper's Table 1: the hardware-only scheme needs
// dependence checking (location-table reads serialized within the decode
// bundle) and a vote unit, while the hybrid scheme needs only workload
// counters and a small VC→PC mapping table.
type Complexity struct {
	// DependenceChecks counts location-table reads (one per register
	// source consulted).
	DependenceChecks uint64
	// VoteOps counts per-candidate-cluster vote evaluations.
	VoteOps uint64
	// SerializedDecisions counts steering decisions that had to observe an
	// earlier same-bundle decision (the serialization §2.1 identifies as
	// the critical complexity).
	SerializedDecisions uint64
	// CounterReads counts workload-balance counter consultations.
	CounterReads uint64
	// MapReads and MapWrites count VC→PC mapping-table accesses.
	MapReads, MapWrites uint64
	// Steered counts micro-ops steered (denominator for per-uop rates).
	Steered uint64
}

// Add accumulates other into c.
func (c *Complexity) Add(other Complexity) {
	c.DependenceChecks += other.DependenceChecks
	c.VoteOps += other.VoteOps
	c.SerializedDecisions += other.SerializedDecisions
	c.CounterReads += other.CounterReads
	c.MapReads += other.MapReads
	c.MapWrites += other.MapWrites
	c.Steered += other.Steered
}

// PerKuop returns the rate of ops per thousand steered micro-ops.
func PerKuop(count, steered uint64) float64 {
	if steered == 0 {
		return 0
	}
	return float64(count) * 1000 / float64(steered)
}

// HasUnit reports the Table 1 yes/no rows derived from the counters.
type UnitUsage struct {
	DependenceCheck bool
	WorkloadBalance bool
	VoteUnit        bool
	MappingTable    bool
}

// Units derives which hardware units the accumulated activity implies.
func (c *Complexity) Units() UnitUsage {
	return UnitUsage{
		DependenceCheck: c.DependenceChecks > 0,
		WorkloadBalance: c.CounterReads > 0,
		VoteUnit:        c.VoteOps > 0,
		MappingTable:    c.MapReads+c.MapWrites > 0,
	}
}
