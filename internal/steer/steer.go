// Package steer implements the runtime steering policies evaluated in the
// paper (Table 3): the occupancy-aware hardware-only baseline OP, the naive
// one-cluster policy, the static-follow policy used by the software-only
// schemes (OB, RHOP), and the paper's hybrid virtual-cluster mapper VC. It
// also accounts the steering-logic operations each policy performs, backing
// the paper's Table 1 complexity comparison.
package steer

import (
	"clustersim/internal/trace"
	"clustersim/internal/uarch"
)

// Context is the hardware state a policy may consult when steering one
// micro-op. Policies are invoked sequentially in program order, and the
// pipeline updates value locations between invocations — the "sequential
// steering" semantics of §2.1.
type Context interface {
	// NumClusters returns the physical cluster count.
	NumClusters() int
	// Occupancy returns cluster c's issue-queue occupancy (the workload
	// balance counters).
	Occupancy(c int) int
	// InFlight returns cluster c's dispatched-but-uncommitted micro-ops.
	InFlight(c int) int
	// HasSpace reports whether cluster c can accept a micro-op of the
	// given class right now (issue-queue slot plus a free register).
	HasSpace(c int, class uarch.Class) bool
	// ValueClusters returns the bitmask of clusters currently holding the
	// value of architectural register r, or 0 when untracked.
	ValueClusters(r uarch.Reg) uint32
}

// Decision is a steering outcome: a target cluster, or a stall of the
// steering stage for this cycle.
type Decision struct {
	// Cluster is the chosen physical cluster (valid when !Stall).
	Cluster int
	// Stall requests the frontend to hold this micro-op (and everything
	// younger) until the next cycle.
	Stall bool
}

// Policy steers micro-ops to clusters.
type Policy interface {
	// Name returns the configuration label (paper Table 3).
	Name() string
	// Steer decides the cluster for u.
	Steer(ctx Context, u *trace.Uop) Decision
	// Reset clears run-local state (e.g. the VC mapping table).
	Reset()
	// Complexity exposes the accumulated steering-logic accounting.
	Complexity() *Complexity
}

// stall is the canonical stall decision.
var stall = Decision{Stall: true}
