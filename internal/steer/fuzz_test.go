package steer

import (
	"math/rand"
	"testing"
	"testing/quick"

	"clustersim/internal/prog"
	"clustersim/internal/trace"
	"clustersim/internal/uarch"
)

// randomCtx builds a random but self-consistent steering context.
func randomCtx(rng *rand.Rand, n int) *fakeCtx {
	ctx := newFakeCtx(n)
	for c := 0; c < n; c++ {
		ctx.occ[c] = rng.Intn(60)
		ctx.inflight[c] = rng.Intn(200)
		ctx.space[c] = rng.Intn(5) > 0 // full 20% of the time
	}
	for r := 0; r < uarch.NumRegs; r++ {
		if rng.Intn(2) == 0 {
			ctx.locs[uarch.Reg(r)] = uint32(rng.Intn(1 << uint(n)))
		}
	}
	return ctx
}

// randomUop builds a random micro-op with arbitrary annotations.
func randomUop(rng *rand.Rand) *trace.Uop {
	op := prog.StaticOp{
		Opcode: uarch.Opcode(rng.Intn(int(uarch.OpCopy))), // no copies in programs
		Dst:    uarch.Reg(rng.Intn(uarch.NumRegs)),
		Src1:   uarch.Reg(rng.Intn(uarch.NumRegs+1) - 1),
		Src2:   uarch.Reg(rng.Intn(uarch.NumRegs+1) - 1),
		Ann: prog.Annotation{
			VC:     rng.Intn(6) - 1,
			Leader: rng.Intn(2) == 0,
			Static: rng.Intn(6) - 1,
		},
	}
	return &trace.Uop{Static: &op}
}

// Property: every policy, on any context, returns either a stall or a
// cluster that is in range AND has space (policies must never steer into a
// full queue).
func TestPolicyDecisionsAlwaysValidProperty(t *testing.T) {
	mkPolicies := func() []Policy {
		return []Policy{
			&OP{}, &OP{NoStall: true}, &OneCluster{}, &Static{},
			NewVC(2), NewVC(4), &ModN{}, &LeastLoaded{}, &Slice{}, &DependenceBalanced{},
		}
	}
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%4 + 1
		rng := rand.New(rand.NewSource(seed))
		for _, p := range mkPolicies() {
			ctx := randomCtx(rng, n)
			for step := 0; step < 20; step++ {
				u := randomUop(rng)
				d := p.Steer(ctx, u)
				if d.Stall {
					continue
				}
				if d.Cluster < 0 || d.Cluster >= n {
					t.Logf("%s chose cluster %d of %d", p.Name(), d.Cluster, n)
					return false
				}
				if !ctx.HasSpace(d.Cluster, u.Static.Opcode.Class()) {
					t.Logf("%s steered into a full cluster %d", p.Name(), d.Cluster)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: complexity counters are monotone in steered micro-ops.
func TestComplexityMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := &OP{}
		ctx := randomCtx(rng, 2)
		prev := uint64(0)
		for i := 0; i < 30; i++ {
			p.Steer(ctx, randomUop(rng))
			cx := p.Complexity()
			if cx.Steered < prev {
				return false
			}
			prev = cx.Steered
		}
		return prev == 30
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
