package steer

import (
	"testing"

	"clustersim/internal/uarch"
)

func TestLeastLoadedPicksMinOccupancy(t *testing.T) {
	ctx := newFakeCtx(3)
	ctx.occ[0], ctx.occ[1], ctx.occ[2] = 10, 2, 7
	p := &LeastLoaded{}
	d := p.Steer(ctx, addUop(1, 2))
	if d.Stall || d.Cluster != 1 {
		t.Fatalf("decision = %+v, want cluster 1", d)
	}
}

func TestLeastLoadedSkipsFullClusters(t *testing.T) {
	ctx := newFakeCtx(2)
	ctx.occ[0], ctx.occ[1] = 1, 30
	ctx.space[0] = false
	p := &LeastLoaded{}
	d := p.Steer(ctx, addUop(1, 2))
	if d.Stall || d.Cluster != 1 {
		t.Fatalf("decision = %+v, want fallback to cluster 1", d)
	}
	ctx.space[1] = false
	if d := p.Steer(ctx, addUop(1, 2)); !d.Stall {
		t.Fatal("want stall when everything is full")
	}
}

func TestLeastLoadedUsesNoDependenceLogic(t *testing.T) {
	ctx := newFakeCtx(2)
	p := &LeastLoaded{}
	p.Steer(ctx, addUop(1, 2))
	if cx := p.Complexity(); cx.DependenceChecks != 0 || cx.VoteOps != 0 {
		t.Errorf("LC should use counters only: %+v", cx)
	}
}

func TestSliceStaysThenSwitches(t *testing.T) {
	ctx := newFakeCtx(2)
	p := &Slice{SliceLen: 3}
	var clusters []int
	for i := 0; i < 9; i++ {
		d := p.Steer(ctx, addUop(1, 2))
		if d.Stall {
			t.Fatalf("unexpected stall at %d", i)
		}
		clusters = append(clusters, d.Cluster)
	}
	want := []int{1, 1, 1, 0, 0, 0, 1, 1, 1}
	for i := range want {
		if clusters[i] != want[i] {
			t.Fatalf("slice pattern %v, want %v", clusters, want)
		}
	}
}

func TestSliceStallDoesNotAdvance(t *testing.T) {
	ctx := newFakeCtx(2)
	p := &Slice{SliceLen: 2}
	d1 := p.Steer(ctx, addUop(1, 2))
	ctx.space[d1.Cluster] = false
	if d := p.Steer(ctx, addUop(1, 2)); !d.Stall {
		t.Fatal("want stall when slice target full")
	}
	ctx.space[d1.Cluster] = true
	d2 := p.Steer(ctx, addUop(1, 2))
	if d2.Cluster != d1.Cluster {
		t.Error("stall must not advance the slice")
	}
}

func TestDependenceBalancedFollowsDependences(t *testing.T) {
	ctx := newFakeCtx(2)
	ctx.locs[uarch.IntReg(1)] = 1 << 1
	ctx.locs[uarch.IntReg(2)] = 1 << 1
	ctx.occ[0], ctx.occ[1] = 5, 8 // below threshold: dependence wins
	p := &DependenceBalanced{Threshold: 16}
	d := p.Steer(ctx, addUop(1, 2))
	if d.Stall || d.Cluster != 1 {
		t.Fatalf("decision = %+v, want operand cluster 1", d)
	}
}

func TestDependenceBalancedRebalancesOnImbalance(t *testing.T) {
	ctx := newFakeCtx(2)
	ctx.locs[uarch.IntReg(1)] = 1 << 1
	ctx.locs[uarch.IntReg(2)] = 1 << 1
	ctx.occ[0], ctx.occ[1] = 2, 40 // way past threshold: balance wins
	p := &DependenceBalanced{Threshold: 16}
	d := p.Steer(ctx, addUop(1, 2))
	if d.Stall || d.Cluster != 0 {
		t.Fatalf("decision = %+v, want least-loaded cluster 0", d)
	}
}

func TestExtraPoliciesResetState(t *testing.T) {
	ctx := newFakeCtx(2)
	for _, p := range []Policy{&LeastLoaded{}, &Slice{}, &DependenceBalanced{}} {
		p.Steer(ctx, addUop(1, 2))
		p.Reset()
		if p.Complexity().Steered != 0 {
			t.Errorf("%s: Reset did not clear counters", p.Name())
		}
	}
}
