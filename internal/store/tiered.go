package store

import (
	"sync"
	"sync/atomic"
)

// Tiered composes a fast store over a slow one: reads check Fast first and
// promote Slow hits into Fast; writes land in both. The canonical layout
// is Memory over Disk — recent results served from RAM, everything
// surviving restarts on disk.
//
// Cold reads are single-flight: when N callers miss the fast tier on the
// same key at once, one of them reads the slow tier (one disk read, one
// gunzip, one promotion) while the rest block on that flight and share its
// bytes. Stats.Collapses counts the joins — the redundant slow-tier work
// the collapse avoided.
type Tiered struct {
	Fast, Slow Store

	mu        sync.Mutex
	flights   map[string]*tierFlight
	collapses atomic.Int64
}

// tierFlight is one in-progress slow-tier fetch; joiners wait on done and
// read the published result. Blobs are immutable per the Store contract,
// so sharing the slice is safe.
type tierFlight struct {
	done chan struct{}
	blob []byte
	ok   bool
}

// NewTiered builds the composition.
func NewTiered(fast, slow Store) *Tiered { return &Tiered{Fast: fast, Slow: slow} }

// Get implements Store.
func (t *Tiered) Get(key string) ([]byte, bool) {
	if blob, ok := t.Fast.Get(key); ok {
		return blob, true
	}
	t.mu.Lock()
	if t.flights == nil {
		// Lazy so a Tiered built by struct literal (the fields are
		// exported) still collapses.
		t.flights = make(map[string]*tierFlight)
	}
	if f, ok := t.flights[key]; ok {
		// Counted at join time, so Stats exposes waiters piling onto a
		// slow fetch while it is still in flight.
		t.collapses.Add(1)
		t.mu.Unlock()
		<-f.done
		return f.blob, f.ok
	}
	f := &tierFlight{done: make(chan struct{})}
	t.flights[key] = f
	t.mu.Unlock()

	f.blob, f.ok = t.Slow.Get(key)
	if f.ok {
		t.Fast.Put(key, f.blob)
	}
	// Unpublish before releasing waiters: a Get arriving after the flight
	// completes must consult the tiers (the promotion makes it a fast
	// hit), not a stale flight.
	t.mu.Lock()
	delete(t.flights, key)
	t.mu.Unlock()
	close(f.done)
	return f.blob, f.ok
}

// Put implements Store.
func (t *Tiered) Put(key string, blob []byte) {
	t.Fast.Put(key, blob)
	t.Slow.Put(key, blob)
}

// Stats implements Store: the sum over both layers, plus the composition's
// own collapse counter. Use Layers for the per-tier breakdown.
func (t *Tiered) Stats() Stats {
	s := t.Fast.Stats()
	s.add(t.Slow.Stats())
	s.Collapses += t.collapses.Load()
	return s
}

// Layers returns the per-tier snapshots (fast, slow).
func (t *Tiered) Layers() (fast, slow Stats) {
	return t.Fast.Stats(), t.Slow.Stats()
}
