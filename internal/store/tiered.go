package store

// Tiered composes a fast store over a slow one: reads check Fast first and
// promote Slow hits into Fast; writes land in both. The canonical layout
// is Memory over Disk — recent results served from RAM, everything
// surviving restarts on disk.
type Tiered struct {
	Fast, Slow Store
}

// NewTiered builds the composition.
func NewTiered(fast, slow Store) *Tiered { return &Tiered{Fast: fast, Slow: slow} }

// Get implements Store.
func (t *Tiered) Get(key string) ([]byte, bool) {
	if blob, ok := t.Fast.Get(key); ok {
		return blob, true
	}
	blob, ok := t.Slow.Get(key)
	if ok {
		t.Fast.Put(key, blob)
	}
	return blob, ok
}

// Put implements Store.
func (t *Tiered) Put(key string, blob []byte) {
	t.Fast.Put(key, blob)
	t.Slow.Put(key, blob)
}

// Stats implements Store: the sum over both layers. Use Layers for the
// per-tier breakdown.
func (t *Tiered) Stats() Stats {
	s := t.Fast.Stats()
	s.add(t.Slow.Stats())
	return s
}

// Layers returns the per-tier snapshots (fast, slow).
func (t *Tiered) Layers() (fast, slow Stats) {
	return t.Fast.Stats(), t.Slow.Stats()
}
