package store

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
)

// diskFormat is the on-disk directory layout version. It names the
// version directory (v1/...) so a directory written by a different
// layout is simply invisible to this store — stale schemas are ignored,
// not misread.
const diskFormat = 1

// Record payload encodings, carried per record in the header's format
// field. The directory version stays 1 across this bump: raw and gzip
// records coexist in one store, so enabling compression on an existing
// cache directory keeps every old blob readable — only new writes are
// compressed.
const (
	recordFormatRaw  = 1 // payload stored verbatim
	recordFormatGzip = 2 // payload gzip-compressed; CRC covers the stored bytes
)

// diskMagic brands every record file.
const diskMagic = 0x43535354 // "CSST"

// Disk is a persistent blob store: one file per key under a
// format-versioned directory, addressed by the key's SHA-256. Writes are
// atomic (temp file + rename into place), reads are corruption-tolerant
// (a record failing its magic, version, key or CRC check is discarded and
// reported as a miss), and occupancy is GC-bounded: when payload bytes
// exceed the configured budget, the oldest files are removed first.
type Disk struct {
	root     string // <dir>/v<diskFormat>
	maxBytes int64
	compress bool // write new records gzip-compressed

	mu      sync.Mutex // serializes occupancy bookkeeping and GC
	bytes   int64
	entries int64

	hits, misses, puts, evict, errs atomic.Int64
	highWater                       atomic.Int64
}

// DiskOption configures a disk store.
type DiskOption func(*Disk)

// WithCompression gzip-compresses every newly written record's payload,
// stretching the same -cachemax budget over more results. Reads are
// format-tagged per record, so a store opened with compression still
// serves raw records written before the option (and vice versa).
func WithCompression() DiskOption { return func(d *Disk) { d.compress = true } }

// OpenDisk opens (creating if needed) a disk store rooted at dir, bounded
// to maxBytes of record payload; maxBytes <= 0 means unbounded. Existing
// records from a previous process are reused.
func OpenDisk(dir string, maxBytes int64, opts ...DiskOption) (*Disk, error) {
	d := &Disk{
		root:     filepath.Join(dir, fmt.Sprintf("v%d", diskFormat)),
		maxBytes: maxBytes,
	}
	for _, o := range opts {
		o(d)
	}
	if err := os.MkdirAll(d.root, 0o755); err != nil {
		return nil, fmt.Errorf("store: opening %s: %w", dir, err)
	}
	d.bytes, d.entries = d.scan()
	d.highWater.Store(d.bytes)
	return d, nil
}

// Dir returns the store's version-root directory.
func (d *Disk) Dir() string { return d.root }

// path maps a logical key to its record file.
func (d *Disk) path(key string) string {
	addr := Addr(key)
	return filepath.Join(d.root, addr[:2], addr+".blob")
}

// Get implements Store.
func (d *Disk) Get(key string) ([]byte, bool) {
	data, err := os.ReadFile(d.path(key))
	if err != nil {
		d.misses.Add(1)
		return nil, false
	}
	blob, err := parseRecord(data, key)
	if err != nil {
		// Corrupt or foreign record: drop it so the slot heals, and
		// report a miss — the caller recomputes and re-Puts.
		d.errs.Add(1)
		d.misses.Add(1)
		d.remove(d.path(key))
		return nil, false
	}
	d.hits.Add(1)
	return blob, true
}

// Put implements Store. An existing record for the key is overwritten:
// keys encode everything that determines the blob, so in the common case
// this only happens when racing writers store identical content — but it
// also heals a slot whose record passes the CRC framing yet fails a
// higher-level decode (the engine re-simulates and re-Puts).
func (d *Disk) Put(key string, blob []byte) {
	d.puts.Add(1)
	path := d.path(key)
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		d.errs.Add(1)
		return
	}
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		d.errs.Add(1)
		return
	}
	rec := buildRecord(key, blob, d.compress)
	_, werr := tmp.Write(rec)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		d.errs.Add(1)
		return
	}
	// Rename and occupancy bookkeeping happen under the occupancy mutex:
	// gc holds it across its whole walk, so a record can never become
	// visible to a walk while its accounting is still pending (which
	// would double-count it once gc rewrites d.bytes from the walk).
	d.mu.Lock()
	prev := int64(0)
	replaced := false
	if info, err := os.Stat(path); err == nil {
		prev = info.Size()
		replaced = true
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		d.mu.Unlock()
		os.Remove(tmp.Name())
		d.errs.Add(1)
		return
	}
	d.bytes += int64(len(rec)) - prev
	if !replaced {
		d.entries++
	}
	bytes := d.bytes
	over := d.maxBytes > 0 && d.bytes > d.maxBytes
	d.mu.Unlock()
	for {
		hw := d.highWater.Load()
		if bytes <= hw || d.highWater.CompareAndSwap(hw, bytes) {
			break
		}
	}
	if over {
		d.gc(path)
	}
}

// Stats implements Store.
func (d *Disk) Stats() Stats {
	d.mu.Lock()
	bytes, entries := d.bytes, d.entries
	d.mu.Unlock()
	return Stats{
		Hits: d.hits.Load(), Misses: d.misses.Load(), Puts: d.puts.Load(),
		Evictions: d.evict.Load(), Errors: d.errs.Load(),
		Entries: entries, Bytes: bytes, BytesHighWater: d.highWater.Load(),
	}
}

// remove deletes a record file and adjusts occupancy. The whole operation
// holds the occupancy mutex so a concurrent gc walk and this deletion
// cannot each account for the same file.
func (d *Disk) remove(path string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	info, err := os.Stat(path)
	if err != nil {
		return
	}
	if os.Remove(path) == nil {
		d.bytes -= info.Size()
		d.entries--
	}
}

// scan walks the version root, totalling record files (and clearing
// leftover temp files from an interrupted writer).
func (d *Disk) scan() (bytes, entries int64) {
	_ = filepath.WalkDir(d.root, func(path string, ent fs.DirEntry, err error) error {
		if err != nil || ent.IsDir() {
			return nil
		}
		if filepath.Ext(path) != ".blob" {
			os.Remove(path) // orphaned temp file
			return nil
		}
		if info, err := ent.Info(); err == nil {
			bytes += info.Size()
			entries++
		}
		return nil
	})
	return bytes, entries
}

// gc removes oldest records (by modification time) until occupancy is
// back under 90% of the budget. Collecting to a low-water mark rather
// than the bound itself amortizes the full-store walk: at steady state
// each gc frees at least 10% of the budget before the next one can
// trigger, instead of walking the whole store on every over-budget Put.
// keep is the just-written record, never collected.
func (d *Disk) gc(keep string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	target := d.maxBytes / 10 * 9
	type rec struct {
		path  string
		size  int64
		mtime int64
	}
	var recs []rec
	var total int64
	_ = filepath.WalkDir(d.root, func(path string, ent fs.DirEntry, err error) error {
		if err != nil || ent.IsDir() || filepath.Ext(path) != ".blob" {
			return nil
		}
		info, err := ent.Info()
		if err != nil {
			return nil
		}
		recs = append(recs, rec{path, info.Size(), info.ModTime().UnixNano()})
		total += info.Size()
		return nil
	})
	sort.Slice(recs, func(i, j int) bool { return recs[i].mtime < recs[j].mtime })
	remaining := int64(len(recs))
	for _, r := range recs {
		if total <= target {
			break
		}
		if r.path == keep {
			continue
		}
		if os.Remove(r.path) == nil {
			total -= r.size
			remaining--
			d.evict.Add(1)
		}
	}
	d.bytes = total
	d.entries = remaining
}

// Pooled compression machinery: a hot serving path writes and reads many
// records concurrently, and gzip writers/readers plus their staging
// buffers are the dominant per-call allocations. All three pools hand the
// object back only after its bytes have been copied out.
var (
	gzipWriters = sync.Pool{New: func() any { return gzip.NewWriter(io.Discard) }}
	gzipReaders = sync.Pool{New: func() any { return new(gzip.Reader) }}
	recordBufs  = sync.Pool{New: func() any { return new(bytes.Buffer) }}
)

// buildRecord frames a blob: magic, record format, key (for verification
// against hash collisions and foreign files), CRC32 of the stored
// payload, payload — gzip-compressed when compress is set. The CRC
// always covers the bytes as stored, so corruption is caught before any
// decompression is attempted.
func buildRecord(key string, blob []byte, compress bool) []byte {
	format := uint32(recordFormatRaw)
	payload := blob
	var buf *bytes.Buffer
	if compress {
		buf = recordBufs.Get().(*bytes.Buffer)
		buf.Reset()
		zw := gzipWriters.Get().(*gzip.Writer)
		zw.Reset(buf)
		zw.Write(blob)
		err := zw.Close()
		gzipWriters.Put(zw)
		// Keep the raw form when gzip doesn't actually shrink the blob
		// (high-entropy payloads): the format field is per record, so a
		// compressing store may mix both.
		if err == nil && buf.Len() < len(blob) {
			format = recordFormatGzip
			payload = buf.Bytes()
		}
	}
	rec := make([]byte, 0, 20+len(key)+len(payload))
	var hdr [20]byte
	le := binary.LittleEndian
	le.PutUint32(hdr[0:], diskMagic)
	le.PutUint32(hdr[4:], format)
	le.PutUint32(hdr[8:], uint32(len(key)))
	le.PutUint32(hdr[12:], crc32.ChecksumIEEE(payload))
	le.PutUint32(hdr[16:], uint32(len(payload)))
	rec = append(rec, hdr[:]...)
	rec = append(rec, key...)
	rec = append(rec, payload...)
	if buf != nil {
		// The payload was copied into rec above; the staging buffer is
		// free to be reused.
		recordBufs.Put(buf)
	}
	return rec
}

// parseRecord validates a record file and returns its payload,
// decompressing records written by a compressing store. Both record
// formats are always readable regardless of how this store writes.
func parseRecord(data []byte, key string) ([]byte, error) {
	le := binary.LittleEndian
	if len(data) < 20 {
		return nil, fmt.Errorf("store: truncated record header (%d bytes)", len(data))
	}
	if m := le.Uint32(data[0:]); m != diskMagic {
		return nil, fmt.Errorf("store: bad magic %#x", m)
	}
	format := le.Uint32(data[4:])
	if format != recordFormatRaw && format != recordFormatGzip {
		return nil, fmt.Errorf("store: record format %d, want %d or %d", format, recordFormatRaw, recordFormatGzip)
	}
	keyLen := int(le.Uint32(data[8:]))
	crc := le.Uint32(data[12:])
	blobLen := int(le.Uint32(data[16:]))
	if keyLen < 0 || blobLen < 0 || len(data) != 20+keyLen+blobLen {
		return nil, fmt.Errorf("store: record length mismatch")
	}
	if string(data[20:20+keyLen]) != key {
		return nil, fmt.Errorf("store: record holds a different key")
	}
	blob := data[20+keyLen:]
	if crc32.ChecksumIEEE(blob) != crc {
		return nil, fmt.Errorf("store: payload CRC mismatch")
	}
	if format == recordFormatGzip {
		zr := gzipReaders.Get().(*gzip.Reader)
		if err := zr.Reset(bytes.NewReader(blob)); err != nil {
			gzipReaders.Put(zr)
			return nil, fmt.Errorf("store: opening compressed payload: %w", err)
		}
		raw, err := io.ReadAll(zr)
		if cerr := zr.Close(); err == nil {
			err = cerr
		}
		gzipReaders.Put(zr)
		if err != nil {
			return nil, fmt.Errorf("store: decompressing payload: %w", err)
		}
		return raw, nil
	}
	return blob, nil
}
