// Key enumeration: the store-side substrate of the fleet control plane.
// A planned drain lists the departing worker's keys to migrate them to
// its ring successors, and a scale-up backfill lists the previous
// owners' keys to find the ranges a newcomer stole — neither knows what
// was ever submitted, so the store itself must be able to say what it
// holds. The listing is paged (a disk store can hold millions of
// records) behind an opaque cursor, in a stable per-store order, so a
// caller can resume where it left off even while writes land in
// between: keys written after a page was served may or may not appear
// in later pages, keys present for the whole walk appear exactly once.
package store

import (
	"context"
	"errors"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// ErrNotListable marks a store that cannot enumerate its keys.
var ErrNotListable = errors.New("store: key enumeration not supported")

// KeyLister is the optional enumeration side of a Store. limit caps the
// page size (<= 0 means no bound); cursor is "" for the first page and
// the previous page's next value afterwards. The returned next cursor is
// "" when the listing is exhausted.
type KeyLister interface {
	Keys(ctx context.Context, limit int, cursor string) (keys []string, next string, err error)
}

// ListKeys enumerates st's keys when it supports listing, and returns
// ErrNotListable otherwise — the one call sites use so they don't each
// repeat the type assertion.
func ListKeys(ctx context.Context, st Store, limit int, cursor string) ([]string, string, error) {
	if kl, ok := st.(KeyLister); ok {
		return kl.Keys(ctx, limit, cursor)
	}
	return nil, "", ErrNotListable
}

// page slices one page out of a sorted key list: the keys strictly after
// cursor, at most limit of them, plus the cursor for the next page.
func page(sorted []string, limit int, cursor string) ([]string, string) {
	start := 0
	if cursor != "" {
		start = sort.SearchStrings(sorted, cursor)
		if start < len(sorted) && sorted[start] == cursor {
			start++ // resume strictly after the cursor key
		}
	}
	rest := sorted[start:]
	if limit > 0 && len(rest) > limit {
		return rest[:limit], rest[limit-1]
	}
	return rest, ""
}

// Keys implements KeyLister. The order is lexicographic over the logical
// keys; the cursor is the last key of the previous page. Each page
// snapshots the shard contents at call time, so a walk is linearizable
// per page, not across pages — the documented contract.
func (m *Memory) Keys(ctx context.Context, limit int, cursor string) ([]string, string, error) {
	if err := ctx.Err(); err != nil {
		return nil, "", err
	}
	var all []string
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.Lock()
		for k := range s.entries {
			all = append(all, k)
		}
		s.mu.Unlock()
	}
	sort.Strings(all)
	keys, next := page(all, limit, cursor)
	return keys, next, nil
}

// Keys implements KeyLister. The order is lexicographic over the keys'
// content addresses (the on-disk filenames), so the walk never has to
// load more than one page of records: the cursor is the last returned
// key's address, and each page re-walks only the directory listing —
// cheap — plus one header read per returned key to recover the logical
// key stored inside the record. Records that fail their framing checks
// are skipped (and counted as errors), never surfaced.
func (d *Disk) Keys(ctx context.Context, limit int, cursor string) ([]string, string, error) {
	var addrs []string
	subdirs, err := os.ReadDir(d.root)
	if err != nil {
		return nil, "", err
	}
	sort.Slice(subdirs, func(i, j int) bool { return subdirs[i].Name() < subdirs[j].Name() })
	for _, sub := range subdirs {
		if !sub.IsDir() {
			continue
		}
		// A whole subdirectory at or before the cursor's prefix may still
		// hold addresses after the cursor, so filter per file below.
		if cursor != "" && sub.Name() < cursor[:min(2, len(cursor))] {
			continue
		}
		files, err := os.ReadDir(filepath.Join(d.root, sub.Name()))
		if err != nil {
			continue
		}
		for _, f := range files {
			if filepath.Ext(f.Name()) != ".blob" {
				continue
			}
			addr := f.Name()[:len(f.Name())-len(".blob")]
			if cursor != "" && addr <= cursor {
				continue
			}
			addrs = append(addrs, addr)
		}
	}
	sort.Strings(addrs)
	if limit > 0 && len(addrs) > limit {
		addrs = addrs[:limit]
	}
	var keys []string
	next := ""
	for _, addr := range addrs {
		if err := ctx.Err(); err != nil {
			return nil, "", err
		}
		next = addr
		key, err := readRecordKey(filepath.Join(d.root, addr[:2], addr+".blob"))
		if err != nil {
			if !os.IsNotExist(err) {
				d.errs.Add(1) // corrupt header; Get will heal the slot
			}
			continue // deleted or unreadable mid-walk: skip, keep paging
		}
		keys = append(keys, key)
	}
	if limit <= 0 || len(addrs) < limit {
		next = "" // this page reached the end of the address space
	}
	return keys, next, nil
}

// readRecordKey recovers the logical key from a record file by reading
// only its fixed header and key bytes — never the payload.
func readRecordKey(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	var hdr [20]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return "", errors.New("store: truncated record header")
	}
	if m := le32(hdr[0:]); m != diskMagic {
		return "", errors.New("store: bad magic")
	}
	keyLen := int(le32(hdr[8:]))
	if keyLen <= 0 || keyLen > 1<<20 {
		return "", errors.New("store: implausible key length")
	}
	key := make([]byte, keyLen)
	if _, err := io.ReadFull(f, key); err != nil {
		return "", errors.New("store: truncated record key")
	}
	return string(key), nil
}

// le32 reads a little-endian uint32 (binary.LittleEndian without the
// interface indirection in a per-record hot path).
func le32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// Keys implements KeyLister by enumerating the slow tier — the complete,
// persistent one (every Put lands in both tiers, but the fast tier
// evicts under its byte budget, so only the slow tier can answer "what
// do I hold" exhaustively). A Tiered over an unlistable slow store falls
// back to the fast tier rather than failing: better a hot-set listing
// than none.
func (t *Tiered) Keys(ctx context.Context, limit int, cursor string) ([]string, string, error) {
	if kl, ok := t.Slow.(KeyLister); ok {
		return kl.Keys(ctx, limit, cursor)
	}
	if kl, ok := t.Fast.(KeyLister); ok {
		return kl.Keys(ctx, limit, cursor)
	}
	return nil, "", ErrNotListable
}
