package store

import (
	"container/list"
	"runtime"
	"sync"
)

// Memory is an in-process blob store bounded by approximate payload bytes,
// evicting least-recently-used entries. It is the fast tier of Tiered and
// a drop-in Store for tests and cache-less deployments.
//
// The store is lock-striped: keys hash onto a power-of-two number of
// shards, each an independent LRU with its own mutex and an equal slice
// of the byte budget, so concurrent Gets and Puts from many request
// handlers contend only when they touch the same shard instead of
// serializing on one store-wide lock. Stats rolls the per-shard counters
// up into one snapshot.
type Memory struct {
	shards []memShard
	mask   uint32
}

// memShard is one stripe: the original single-lock LRU, now holding
// 1/len(shards) of the key space and of the byte budget.
type memShard struct {
	mu       sync.Mutex
	entries  map[string]*memEntry
	order    *list.List // LRU order, most recently used at back
	maxBytes int64

	bytes, highWater          int64
	hits, misses, puts, evict int64
}

type memEntry struct {
	key  string
	blob []byte
	elem *list.Element
}

// NewMemory builds a memory store holding at most maxBytes of payload;
// maxBytes <= 0 means unbounded. The shard count defaults to the smallest
// power of two covering GOMAXPROCS (capped at 64) — one stripe per core
// that could be hammering the store at once.
func NewMemory(maxBytes int64) *Memory {
	return NewMemoryShards(maxBytes, 0)
}

// NewMemoryShards builds a memory store striped over an explicit number
// of shards (rounded up to a power of two; <= 0 picks the default).
// shards = 1 restores the seed's single-LRU semantics: one global
// eviction order over the whole budget.
func NewMemoryShards(maxBytes int64, shards int) *Memory {
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
		if shards > 64 {
			shards = 64
		}
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	perShard := maxBytes
	if maxBytes > 0 {
		perShard = maxBytes / int64(n)
		if perShard <= 0 {
			perShard = 1
		}
	}
	m := &Memory{shards: make([]memShard, n), mask: uint32(n - 1)}
	for i := range m.shards {
		m.shards[i] = memShard{
			entries:  map[string]*memEntry{},
			order:    list.New(),
			maxBytes: perShard,
		}
	}
	return m
}

// shard maps a key to its stripe with FNV-1a — cheap, allocation-free,
// and well-mixed over the engine's content keys.
func (m *Memory) shard(key string) *memShard {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= prime32
	}
	return &m.shards[h&m.mask]
}

// Get implements Store.
func (m *Memory) Get(key string) ([]byte, bool) {
	s := m.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[key]
	if !ok {
		s.misses++
		return nil, false
	}
	s.hits++
	s.order.MoveToBack(e.elem)
	return e.blob, true
}

// Put implements Store.
func (m *Memory) Put(key string, blob []byte) {
	s := m.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.puts++
	if e, ok := s.entries[key]; ok {
		s.bytes += int64(len(blob)) - int64(len(e.blob))
		e.blob = blob
		s.order.MoveToBack(e.elem)
	} else {
		e := &memEntry{key: key, blob: blob}
		e.elem = s.order.PushBack(e)
		s.entries[key] = e
		s.bytes += int64(len(blob))
	}
	if s.bytes > s.highWater {
		s.highWater = s.bytes
	}
	for s.maxBytes > 0 && s.bytes > s.maxBytes && s.order.Len() > 1 {
		front := s.order.Front()
		victim := front.Value.(*memEntry)
		if victim.key == key {
			break // never evict the entry just written
		}
		s.order.Remove(front)
		delete(s.entries, victim.key)
		s.bytes -= int64(len(victim.blob))
		s.evict++
	}
}

// Stats implements Store: the sum over every shard. BytesHighWater is the
// sum of the per-shard high-water marks (the tightest bound a striped
// store can report without a global gauge); ShardBytesHighWater is the
// hottest single shard's mark, the figure that says whether one stripe is
// carrying the whole store.
func (m *Memory) Stats() Stats {
	var st Stats
	st.Shards = int64(len(m.shards))
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.Lock()
		st.Hits += s.hits
		st.Misses += s.misses
		st.Puts += s.puts
		st.Evictions += s.evict
		st.Entries += int64(len(s.entries))
		st.Bytes += s.bytes
		st.BytesHighWater += s.highWater
		if s.highWater > st.ShardBytesHighWater {
			st.ShardBytesHighWater = s.highWater
		}
		s.mu.Unlock()
	}
	return st
}
