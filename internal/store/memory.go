package store

import (
	"container/list"
	"sync"
)

// Memory is an in-process blob store bounded by approximate payload bytes,
// evicting least-recently-used entries. It is the fast tier of Tiered and
// a drop-in Store for tests and cache-less deployments.
type Memory struct {
	mu       sync.Mutex
	entries  map[string]*memEntry
	order    *list.List // LRU order, most recently used at back
	maxBytes int64

	bytes, highWater          int64
	hits, misses, puts, evict int64
}

type memEntry struct {
	key  string
	blob []byte
	elem *list.Element
}

// NewMemory builds a memory store holding at most maxBytes of payload;
// maxBytes <= 0 means unbounded.
func NewMemory(maxBytes int64) *Memory {
	return &Memory{
		entries:  map[string]*memEntry{},
		order:    list.New(),
		maxBytes: maxBytes,
	}
}

// Get implements Store.
func (m *Memory) Get(key string) ([]byte, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.entries[key]
	if !ok {
		m.misses++
		return nil, false
	}
	m.hits++
	m.order.MoveToBack(e.elem)
	return e.blob, true
}

// Put implements Store.
func (m *Memory) Put(key string, blob []byte) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.puts++
	if e, ok := m.entries[key]; ok {
		m.bytes += int64(len(blob)) - int64(len(e.blob))
		e.blob = blob
		m.order.MoveToBack(e.elem)
	} else {
		e := &memEntry{key: key, blob: blob}
		e.elem = m.order.PushBack(e)
		m.entries[key] = e
		m.bytes += int64(len(blob))
	}
	if m.bytes > m.highWater {
		m.highWater = m.bytes
	}
	for m.maxBytes > 0 && m.bytes > m.maxBytes && m.order.Len() > 1 {
		front := m.order.Front()
		victim := front.Value.(*memEntry)
		if victim.key == key {
			break // never evict the entry just written
		}
		m.order.Remove(front)
		delete(m.entries, victim.key)
		m.bytes -= int64(len(victim.blob))
		m.evict++
	}
}

// Stats implements Store.
func (m *Memory) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Stats{
		Hits: m.hits, Misses: m.misses, Puts: m.puts, Evictions: m.evict,
		Entries: int64(len(m.entries)), Bytes: m.bytes, BytesHighWater: m.highWater,
	}
}
