package store

import (
	"bytes"
	"fmt"
	"testing"
)

func TestMemoryBasicAndStats(t *testing.T) {
	m := NewMemory(0)
	if _, ok := m.Get("a"); ok {
		t.Fatal("empty store returned a hit")
	}
	m.Put("a", []byte("hello"))
	blob, ok := m.Get("a")
	if !ok || !bytes.Equal(blob, []byte("hello")) {
		t.Fatalf("Get = %q, %v", blob, ok)
	}
	st := m.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 || st.Entries != 1 || st.Bytes != 5 {
		t.Errorf("stats = %+v", st)
	}
}

func TestMemoryByteBoundedLRU(t *testing.T) {
	// One shard pins the seed's global-LRU semantics: a single eviction
	// order over the whole budget.
	m := NewMemoryShards(100, 1)
	pay := make([]byte, 40)
	m.Put("a", pay)
	m.Put("b", pay)
	m.Get("a") // refresh a
	m.Put("c", pay)
	if _, ok := m.Get("b"); ok {
		t.Error("LRU victim b survived over budget")
	}
	if _, ok := m.Get("a"); !ok {
		t.Error("recently used entry a evicted")
	}
	if _, ok := m.Get("c"); !ok {
		t.Error("just-written entry c evicted")
	}
	st := m.Stats()
	if st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
	if st.Bytes > 100 {
		t.Errorf("bytes = %d beyond bound", st.Bytes)
	}
	if st.BytesHighWater < 100 {
		t.Errorf("high water = %d, want >= 100", st.BytesHighWater)
	}
}

func TestMemoryOversizedEntryKept(t *testing.T) {
	// An entry larger than the whole budget is still stored (the cache
	// must remain useful), just alone.
	m := NewMemory(10)
	m.Put("big", make([]byte, 64))
	if _, ok := m.Get("big"); !ok {
		t.Error("oversized entry not retained")
	}
}

func TestTieredPromotesAndAggregates(t *testing.T) {
	fast, slow := NewMemory(0), NewMemory(0)
	ti := NewTiered(fast, slow)
	slow.Put("k", []byte("v")) // pre-seed the slow tier only
	if blob, ok := ti.Get("k"); !ok || string(blob) != "v" {
		t.Fatalf("tiered Get = %q, %v", blob, ok)
	}
	if _, ok := fast.Get("k"); !ok {
		t.Error("slow-tier hit not promoted to fast tier")
	}
	ti.Put("j", []byte("w"))
	if _, ok := fast.Get("j"); !ok {
		t.Error("Put missed fast tier")
	}
	if _, ok := slow.Get("j"); !ok {
		t.Error("Put missed slow tier")
	}
	f, s := ti.Layers()
	if f.Entries != 2 || s.Entries != 2 {
		t.Errorf("layers = %+v / %+v", f, s)
	}
	if total := ti.Stats(); total.Entries != 4 {
		t.Errorf("aggregate entries = %d, want 4", total.Entries)
	}
}

func TestMemoryShardedStatsRollUp(t *testing.T) {
	m := NewMemoryShards(0, 4)
	if got := m.Stats().Shards; got != 4 {
		t.Fatalf("shards = %d, want 4", got)
	}
	for i := 0; i < 64; i++ {
		key := fmt.Sprintf("key-%d", i)
		m.Put(key, make([]byte, 10))
		if _, ok := m.Get(key); !ok {
			t.Fatalf("lost key %q", key)
		}
	}
	st := m.Stats()
	if st.Hits != 64 || st.Puts != 64 || st.Entries != 64 || st.Bytes != 640 {
		t.Errorf("rolled-up stats = %+v", st)
	}
	if st.ShardBytesHighWater <= 0 || st.ShardBytesHighWater > st.BytesHighWater {
		t.Errorf("shard high water %d out of range (total high water %d)",
			st.ShardBytesHighWater, st.BytesHighWater)
	}
	// 64 keys over 4 shards: FNV must not have funneled everything into
	// one stripe (that would re-create the global lock this store
	// exists to remove).
	if st.ShardBytesHighWater == st.BytesHighWater {
		t.Errorf("all %d keys hashed to one shard", 64)
	}
}

func TestMemoryShardCountRounding(t *testing.T) {
	if got := NewMemoryShards(0, 3).Stats().Shards; got != 4 {
		t.Errorf("3 shards rounded to %d, want 4", got)
	}
	if got := NewMemory(0).Stats().Shards; got < 1 {
		t.Errorf("default shards = %d", got)
	}
}

func TestAddrStable(t *testing.T) {
	if Addr("x") != Addr("x") {
		t.Error("Addr not deterministic")
	}
	if Addr("x") == Addr("y") {
		t.Error("Addr collided")
	}
	if len(Addr("x")) != 64 {
		t.Errorf("Addr length = %d, want 64 hex chars", len(Addr("x")))
	}
}

func TestMemoryConcurrent(t *testing.T) {
	m := NewMemory(1 << 20)
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", i%17)
				m.Put(key, []byte(key))
				if blob, ok := m.Get(key); ok && string(blob) != key {
					t.Errorf("got %q for key %q", blob, key)
				}
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}
