package store

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// gatedStore wraps a Store, counting Gets and optionally holding them on
// a gate so a test can pile concurrent callers onto one in-flight read.
type gatedStore struct {
	Store
	reads atomic.Int64
	gate  chan struct{} // Gets block until closed (nil = no gate)
}

func (g *gatedStore) Get(key string) ([]byte, bool) {
	g.reads.Add(1)
	if g.gate != nil {
		<-g.gate
	}
	return g.Store.Get(key)
}

// TestTieredColdGetSingleFlight pins the collapse contract: N concurrent
// Gets on one cold key pay exactly one slow-tier read; the other N-1 join
// the flight and share its bytes.
func TestTieredColdGetSingleFlight(t *testing.T) {
	const n = 16
	slow := &gatedStore{Store: NewMemory(0), gate: make(chan struct{})}
	slow.Store.Put("k", []byte("payload"))
	ti := NewTiered(NewMemory(0), slow)

	var wg sync.WaitGroup
	results := make([][]byte, n)
	oks := make([]bool, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], oks[i] = ti.Get("k")
		}(i)
	}
	// Collapses are counted at join time, so once n-1 joins are visible
	// every waiter is parked on the single flight — release it.
	deadline := time.Now().Add(5 * time.Second)
	for ti.Stats().Collapses < n-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d collapses materialized", ti.Stats().Collapses, n-1)
		}
		time.Sleep(time.Millisecond)
	}
	close(slow.gate)
	wg.Wait()

	if got := slow.reads.Load(); got != 1 {
		t.Errorf("slow-tier reads = %d, want exactly 1", got)
	}
	if got := ti.Stats().Collapses; got != n-1 {
		t.Errorf("collapses = %d, want %d", got, n-1)
	}
	for i := range results {
		if !oks[i] || !bytes.Equal(results[i], []byte("payload")) {
			t.Fatalf("caller %d got %q, %v", i, results[i], oks[i])
		}
	}
	// The flight's promotion landed: the next Get is a pure fast hit.
	if _, ok := ti.Get("k"); !ok {
		t.Error("promoted entry missing from fast tier")
	}
	if got := slow.reads.Load(); got != 1 {
		t.Errorf("warm Get consulted the slow tier (reads = %d)", got)
	}
}

// TestTieredColdMissSingleFlight: collapsing must also cover misses — N
// concurrent Gets on an absent key still read the slow tier once, and the
// flight result is not cached (a later Get retries).
func TestTieredColdMissSingleFlight(t *testing.T) {
	const n = 8
	slow := &gatedStore{Store: NewMemory(0), gate: make(chan struct{})}
	ti := NewTiered(NewMemory(0), slow)

	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, ok := ti.Get("absent"); ok {
				t.Error("miss reported as hit")
			}
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for ti.Stats().Collapses < n-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d collapses materialized", ti.Stats().Collapses, n-1)
		}
		time.Sleep(time.Millisecond)
	}
	close(slow.gate)
	wg.Wait()
	if got := slow.reads.Load(); got != 1 {
		t.Errorf("slow-tier reads = %d, want exactly 1", got)
	}
	// After the flight drains, a fresh Get consults the slow tier again:
	// negative results are never pinned.
	ti.Get("absent")
	if got := slow.reads.Load(); got != 2 {
		t.Errorf("post-flight Get did not retry the slow tier (reads = %d)", got)
	}
}

// TestTieredConcurrentMixed hammers a Tiered store with overlapping warm
// and cold keys; run under -race this guards the flight bookkeeping.
func TestTieredConcurrentMixed(t *testing.T) {
	slow := NewMemory(0)
	for i := 0; i < 8; i++ {
		slow.Put(fmt.Sprintf("k%d", i), []byte(fmt.Sprintf("v%d", i)))
	}
	ti := NewTiered(NewMemoryShards(1<<16, 4), slow)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				k := i % 10 // two of these are permanent misses
				want := fmt.Sprintf("v%d", k)
				blob, ok := ti.Get(fmt.Sprintf("k%d", k))
				if ok && string(blob) != want {
					t.Errorf("k%d = %q, want %q", k, blob, want)
				}
				if i%7 == 0 {
					ti.Put(fmt.Sprintf("k%d", k), []byte(want))
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestDiskParallelGetPutGC hammers one disk-store key with concurrent
// readers, writers and GC pressure (filler keys over a tiny budget force
// collections mid-traffic). Readers must only ever observe a miss or the
// exact current payload — never torn or foreign bytes.
func TestDiskParallelGetPutGC(t *testing.T) {
	d, err := OpenDisk(t.TempDir(), 4<<10, WithCompression())
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("hot-key-payload "), 16)
	d.Put("hot", payload)

	var readers, writers sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if blob, ok := d.Get("hot"); ok && !bytes.Equal(blob, payload) {
					t.Errorf("hot key corrupted: %d bytes", len(blob))
					return
				}
			}
		}()
	}
	for g := 0; g < 2; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			for i := 0; i < 50; i++ {
				d.Put("hot", payload)
				// Filler churn overflows the 4 KiB budget and drives gc
				// concurrently with the hot-key traffic.
				d.Put(fmt.Sprintf("filler-%d-%d", g, i), bytes.Repeat([]byte{byte(i)}, 512))
			}
		}(g)
	}
	writers.Wait()
	close(stop)
	readers.Wait()

	st := d.Stats()
	if st.Evictions == 0 {
		t.Error("filler churn never triggered GC — test exercised nothing")
	}
	if st.Errors != 0 {
		t.Errorf("store reported %d errors under parallel traffic", st.Errors)
	}
}
