// Package store provides content-addressed blob stores for simulation
// artifacts. A Store maps logical string keys — the engine's content keys,
// which already encode everything that determines a result — to immutable
// byte blobs. Three implementations compose into the engine's caching
// hierarchy: Memory (a byte-bounded in-process LRU, the persistent twin of
// the engine's single-flight caches), Disk (atomic, corruption-tolerant,
// GC-bounded files so results outlive the process) and Tiered (memory over
// disk, the layout cmd/clusterd serves from).
//
// Keys are versioned: every blob a store accepts carries the codec's
// schema-version header, and Disk additionally namespaces its files under
// a format-version directory, so stale cache directories written by an
// older schema are ignored — never misread.
package store

import (
	"crypto/sha256"
	"encoding/hex"
)

// Store is a content-addressed blob store. Implementations must be safe
// for concurrent use. Blobs are immutable after Put: callers must not
// mutate a slice handed to Put or returned by Get.
type Store interface {
	// Get returns the blob stored under key, or false if absent (or
	// unreadable — stores treat corruption as absence, never as data).
	Get(key string) ([]byte, bool)
	// Put stores blob under key. Re-putting an existing key is a no-op
	// for equal content; stores may overwrite otherwise. Put is
	// best-effort: a store that cannot persist (disk full, I/O error)
	// drops the blob and counts the error rather than failing the caller.
	Put(key string, blob []byte)
	// Stats snapshots the store's counters.
	Stats() Stats
}

// Stats is a snapshot of a store's activity and occupancy.
type Stats struct {
	// Hits and Misses count Get outcomes.
	Hits, Misses int64
	// Puts counts blobs accepted (including overwrites).
	Puts int64
	// Evictions counts entries dropped by capacity bounds (GC).
	Evictions int64
	// Errors counts I/O failures and corrupt blobs discarded on read.
	Errors int64
	// Entries is the current number of stored blobs.
	Entries int64
	// Bytes is the current payload occupancy.
	Bytes int64
	// BytesHighWater is the maximum Bytes ever observed.
	BytesHighWater int64
	// Collapses counts Gets that joined another caller's in-flight
	// slow-tier fetch instead of reading the slow tier themselves
	// (Tiered only).
	Collapses int64
	// Shards is the store's lock-stripe count (Memory only; 0 for
	// unstriped stores).
	Shards int64
	// ShardBytesHighWater is the maximum occupancy any single shard ever
	// reached — the hot-stripe gauge of a striped store (Memory only).
	ShardBytesHighWater int64
}

// add accumulates other into s (for tiered aggregation).
func (s *Stats) add(other Stats) {
	s.Hits += other.Hits
	s.Misses += other.Misses
	s.Puts += other.Puts
	s.Evictions += other.Evictions
	s.Errors += other.Errors
	s.Entries += other.Entries
	s.Bytes += other.Bytes
	s.BytesHighWater += other.BytesHighWater
	s.Collapses += other.Collapses
	s.Shards += other.Shards
	if other.ShardBytesHighWater > s.ShardBytesHighWater {
		s.ShardBytesHighWater = other.ShardBytesHighWater
	}
}

// Addr is the content address of a logical key: the hex SHA-256 of the key
// bytes. Disk uses it as the filename so arbitrary key characters never
// touch the filesystem, and exposes it so services can address results.
func Addr(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:])
}
