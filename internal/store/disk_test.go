package store

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestDiskRoundTripAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	d.Put("result|v1|abc", []byte("payload"))
	if blob, ok := d.Get("result|v1|abc"); !ok || !bytes.Equal(blob, []byte("payload")) {
		t.Fatalf("Get = %q, %v", blob, ok)
	}

	// A second store over the same directory (a new process) sees the blob.
	d2, err := OpenDisk(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if blob, ok := d2.Get("result|v1|abc"); !ok || !bytes.Equal(blob, []byte("payload")) {
		t.Fatalf("reopened Get = %q, %v", blob, ok)
	}
	if st := d2.Stats(); st.Entries != 1 || st.Bytes == 0 {
		t.Errorf("reopened stats = %+v", st)
	}
}

// Put overwrites an existing record: a slot holding a blob that passes
// the CRC framing but is garbage to a higher layer must heal when the
// caller recomputes and re-Puts.
func TestDiskPutOverwrites(t *testing.T) {
	d, err := OpenDisk(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	d.Put("k", []byte("stale payload"))
	d.Put("k", []byte("fresh"))
	blob, ok := d.Get("k")
	if !ok || !bytes.Equal(blob, []byte("fresh")) {
		t.Fatalf("Get after overwrite = %q, %v", blob, ok)
	}
	st := d.Stats()
	if st.Entries != 1 {
		t.Errorf("entries = %d, want 1", st.Entries)
	}
	// Occupancy reflects the replacement, not the sum of both writes.
	if reopened, err := OpenDisk(t.TempDir(), 0); err == nil {
		reopened.Put("k", []byte("fresh"))
		if want := reopened.Stats().Bytes; st.Bytes != want {
			t.Errorf("bytes = %d after overwrite, want %d", st.Bytes, want)
		}
	}
}

func TestDiskMissAndKeyIsolation(t *testing.T) {
	d, err := OpenDisk(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Get("absent"); ok {
		t.Error("hit for absent key")
	}
	d.Put("a", []byte("1"))
	if _, ok := d.Get("b"); ok {
		t.Error("key b served key a's blob")
	}
}

func TestDiskCorruptionToleratedAsMiss(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	d.Put("k", []byte("good payload"))
	path := d.path("k")

	for name, mutate := range map[string]func([]byte) []byte{
		"truncated":    func(b []byte) []byte { return b[:len(b)/2] },
		"bit-flip":     func(b []byte) []byte { b[len(b)-1] ^= 0xff; return b },
		"empty":        func(b []byte) []byte { return nil },
		"wrong-magic":  func(b []byte) []byte { b[0] ^= 0xff; return b },
		"wrong-format": func(b []byte) []byte { b[4] ^= 0xff; return b },
	} {
		d.Put("k", []byte("good payload")) // restore
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, mutate(append([]byte(nil), data...)), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := d.Get("k"); ok {
			t.Errorf("%s: corrupt record served as data", name)
		}
		if _, err := os.Stat(path); !os.IsNotExist(err) {
			t.Errorf("%s: corrupt record not removed", name)
		}
	}
	if st := d.Stats(); st.Errors == 0 {
		t.Error("corruption not counted in Errors")
	}
}

func TestDiskGCBoundsBytes(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, 2048)
	if err != nil {
		t.Fatal(err)
	}
	pay := make([]byte, 400)
	for i := 0; i < 10; i++ {
		d.Put(string(rune('a'+i)), pay)
		// Distinct mtimes so GC age ordering is deterministic.
		os.Chtimes(d.path(string(rune('a'+i))), time.Time{}, time.Now().Add(time.Duration(i)*time.Second))
	}
	st := d.Stats()
	if st.Bytes > 2048 {
		t.Errorf("occupancy %d exceeds 2048 budget", st.Bytes)
	}
	if st.Evictions == 0 {
		t.Error("GC never ran")
	}
	// The newest entry must have survived.
	if _, ok := d.Get("j"); !ok {
		t.Error("newest record collected")
	}
}

func TestDiskIgnoresForeignSchemaDir(t *testing.T) {
	dir := t.TempDir()
	// A "stale" cache written under a different format version.
	stale := filepath.Join(dir, "v999", "ab")
	if err := os.MkdirAll(stale, 0o755); err != nil {
		t.Fatal(err)
	}
	os.WriteFile(filepath.Join(stale, "abcd.blob"), []byte("old format"), 0o644)

	d, err := OpenDisk(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st := d.Stats(); st.Entries != 0 {
		t.Errorf("foreign schema dir counted: %+v", st)
	}
	if _, ok := d.Get("anything"); ok {
		t.Error("foreign schema dir served data")
	}
}

// Enabling compression on an existing cache directory must keep every
// raw record readable, compress only new writes, and stay readable from
// a store opened without the option — the two record formats coexist.
func TestDiskCompressionInterop(t *testing.T) {
	dir := t.TempDir()
	raw, err := OpenDisk(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Compressible payload: repeated text, like the gob streams the
	// engine codec produces.
	payload := bytes.Repeat([]byte("steering-result-row "), 200)
	raw.Put("old", payload)

	comp, err := OpenDisk(dir, 0, WithCompression())
	if err != nil {
		t.Fatal(err)
	}
	if blob, ok := comp.Get("old"); !ok || !bytes.Equal(blob, payload) {
		t.Fatalf("compressed store can't read raw record: %v", ok)
	}
	comp.Put("new", payload)
	if blob, ok := comp.Get("new"); !ok || !bytes.Equal(blob, payload) {
		t.Fatalf("compressed round trip: %v", ok)
	}

	// The compressed record is materially smaller on disk than the raw one.
	rawInfo, err := os.Stat(comp.path("old"))
	if err != nil {
		t.Fatal(err)
	}
	compInfo, err := os.Stat(comp.path("new"))
	if err != nil {
		t.Fatal(err)
	}
	if compInfo.Size() >= rawInfo.Size()/2 {
		t.Errorf("compressed record %d bytes vs raw %d: compression ineffective", compInfo.Size(), rawInfo.Size())
	}

	// A plain store reads both formats too (reopen = a later process
	// started without the flag).
	plain, err := OpenDisk(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"old", "new"} {
		if blob, ok := plain.Get(key); !ok || !bytes.Equal(blob, payload) {
			t.Errorf("plain store can't read %q: %v", key, ok)
		}
	}
}

// A corrupt compressed record — CRC-valid framing but a mangled gzip
// stream cannot happen via bit rot (CRC covers the stored bytes), so
// corrupt both ways: flipped payload bits fail the CRC, and a record
// whose gzip stream was truncated before framing fails decompression.
// Either way the store reports a miss and heals the slot.
func TestDiskCompressedCorruptionToleratedAsMiss(t *testing.T) {
	d, err := OpenDisk(t.TempDir(), 0, WithCompression())
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("xyz"), 500)
	d.Put("k", payload)
	path := d.path("k")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Bit-flip inside the compressed payload: CRC catches it.
	flipped := append([]byte(nil), data...)
	flipped[len(flipped)-1] ^= 0xff
	if err := os.WriteFile(path, flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Get("k"); ok {
		t.Error("bit-flipped compressed record served as data")
	}

	// A framing-valid record holding a broken gzip stream: build one by
	// re-framing a truncated compressed payload under the same key.
	d.Put("k", payload)
	data, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	stored := data[20+len("k"):]
	broken := buildRecordFromPayload(t, "k", stored[:len(stored)/2])
	if err := os.WriteFile(path, broken, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Get("k"); ok {
		t.Error("truncated gzip stream served as data")
	}
	if st := d.Stats(); st.Errors == 0 {
		t.Error("compressed corruption not counted in Errors")
	}
}

// buildRecordFromPayload frames an already-encoded (possibly broken)
// gzip payload with valid magic/format/CRC, bypassing buildRecord's
// compression step.
func buildRecordFromPayload(t *testing.T, key string, payload []byte) []byte {
	t.Helper()
	var hdr [20]byte
	le := binary.LittleEndian
	le.PutUint32(hdr[0:], diskMagic)
	le.PutUint32(hdr[4:], recordFormatGzip)
	le.PutUint32(hdr[8:], uint32(len(key)))
	le.PutUint32(hdr[12:], crc32.ChecksumIEEE(payload))
	le.PutUint32(hdr[16:], uint32(len(payload)))
	rec := append([]byte(nil), hdr[:]...)
	rec = append(rec, key...)
	return append(rec, payload...)
}

func TestDiskScanClearsTempFiles(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	tmp := filepath.Join(d.Dir(), "ab")
	os.MkdirAll(tmp, 0o755)
	leftover := filepath.Join(tmp, ".tmp-12345")
	os.WriteFile(leftover, []byte("partial"), 0o644)
	if _, err := OpenDisk(dir, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(leftover); !os.IsNotExist(err) {
		t.Error("interrupted temp file not cleared on open")
	}
}
