package store

import (
	"context"
	"fmt"
	"os"
	"sort"
	"testing"
)

// walkKeys pages through a listable store with the given page size and
// returns every key, failing on a walk that never terminates.
func walkKeys(t *testing.T, st Store, limit int) []string {
	t.Helper()
	var all []string
	cursor := ""
	for pages := 0; ; pages++ {
		if pages > 1000 {
			t.Fatal("key walk did not terminate")
		}
		keys, next, err := ListKeys(context.Background(), st, limit, cursor)
		if err != nil {
			t.Fatalf("ListKeys: %v", err)
		}
		all = append(all, keys...)
		if next == "" {
			return all
		}
		if limit > 0 && len(keys) > limit {
			t.Fatalf("page of %d keys exceeds limit %d", len(keys), limit)
		}
		cursor = next
	}
}

// seed puts n distinct keyed blobs and returns the sorted key set.
func seed(st Store, n int) []string {
	keys := make([]string, 0, n)
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("result|v1|bench-%02d|setup-%d", i, i%3)
		st.Put(k, []byte(fmt.Sprintf("blob-%d", i)))
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortedEqual(got, want []string) bool {
	if len(got) != len(want) {
		return false
	}
	g := append([]string(nil), got...)
	sort.Strings(g)
	for i := range g {
		if g[i] != want[i] {
			return false
		}
	}
	return true
}

// Every implementation enumerates exactly the stored key set, across
// page sizes including single-key pages and no-limit listings.
func TestKeysEnumerateEverything(t *testing.T) {
	disk, err := OpenDisk(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	compressed, err := OpenDisk(t.TempDir(), 0, WithCompression())
	if err != nil {
		t.Fatal(err)
	}
	stores := map[string]Store{
		"memory":          NewMemory(0),
		"memory-sharded":  NewMemoryShards(0, 4),
		"disk":            disk,
		"disk-compressed": compressed,
		"tiered":          NewTiered(NewMemory(0), NewMemory(0)),
	}
	for name, st := range stores {
		t.Run(name, func(t *testing.T) {
			want := seed(st, 23)
			for _, limit := range []int{0, 1, 5, 23, 100} {
				if got := walkKeys(t, st, limit); !sortedEqual(got, want) {
					t.Errorf("limit %d: walked %d keys, want %d (or key sets differ)",
						limit, len(got), len(want))
				}
			}
		})
	}
}

// A paged walk never yields a key twice: pages resume strictly after the
// cursor even when the page boundary falls mid-listing.
func TestKeysPagesDisjoint(t *testing.T) {
	m := NewMemory(0)
	seed(m, 17)
	seen := map[string]bool{}
	for _, k := range walkKeys(t, m, 4) {
		if seen[k] {
			t.Fatalf("key %q appeared in two pages", k)
		}
		seen[k] = true
	}
	if len(seen) != 17 {
		t.Fatalf("walk covered %d of 17 keys", len(seen))
	}
}

// The tiered listing is the slow tier's — the complete one: keys evicted
// from the fast tier still appear, and the fast tier's extras don't
// (writes land in both, so in practice slow is the superset).
func TestTieredKeysListSlowTier(t *testing.T) {
	fast, slow := NewMemory(0), NewMemory(0)
	ti := NewTiered(fast, slow)
	ti.Put("both", []byte("x"))
	slow.Put("slow-only", []byte("y")) // e.g. fast tier evicted it
	got := walkKeys(t, ti, 0)
	if !sortedEqual(got, []string{"both", "slow-only"}) {
		t.Errorf("tiered keys = %v", got)
	}
}

// Disk key listing recovers logical keys (not content addresses), skips
// corrupt records, and survives records deleted mid-walk.
func TestDiskKeysRecoverLogicalKeys(t *testing.T) {
	d, err := OpenDisk(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	want := seed(d, 12)
	got := walkKeys(t, d, 5)
	if !sortedEqual(got, want) {
		t.Fatalf("disk walk = %v, want %v", got, want)
	}

	// Corrupt one record's header: the key disappears from the listing
	// (and is counted as an error), the rest keep enumerating.
	victim := want[3]
	if err := os.WriteFile(d.path(victim), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	got = walkKeys(t, d, 5)
	if len(got) != len(want)-1 {
		t.Errorf("walk after corruption = %d keys, want %d", len(got), len(want)-1)
	}
	for _, k := range got {
		if k == victim {
			t.Errorf("corrupt record's key %q still listed", victim)
		}
	}
	if d.Stats().Errors == 0 {
		t.Error("corrupt record not counted as a store error")
	}
}

// A canceled context aborts the walk instead of finishing it.
func TestKeysHonorContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m := NewMemory(0)
	seed(m, 4)
	if _, _, err := m.Keys(ctx, 0, ""); err == nil {
		t.Error("memory walk ignored canceled context")
	}
	d, err := OpenDisk(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	seed(d, 4)
	if _, _, err := d.Keys(ctx, 0, ""); err == nil {
		t.Error("disk walk ignored canceled context")
	}
}

// ListKeys surfaces ErrNotListable for stores without enumeration.
type unlistable struct{ Store }

func TestListKeysUnsupported(t *testing.T) {
	if _, _, err := ListKeys(context.Background(), unlistable{NewMemory(0)}, 0, ""); err != ErrNotListable {
		t.Errorf("err = %v, want ErrNotListable", err)
	}
	// A tiered store over unlistable tiers reports the same.
	ti := NewTiered(unlistable{NewMemory(0)}, unlistable{NewMemory(0)})
	if _, _, err := ti.Keys(context.Background(), 0, ""); err != ErrNotListable {
		t.Errorf("tiered err = %v, want ErrNotListable", err)
	}
}
