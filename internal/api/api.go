// Package api defines the versioned JSON wire types of the clusterd HTTP
// API. Both sides of the wire build against this one package — the server
// (internal/service) renders these shapes, the typed SDK (package client)
// decodes them — so the protocol cannot drift apart silently: a field
// exists for the client exactly when the server can produce it.
//
// The protocol is versioned as a whole: every server response carries
// Version in the VersionHeader header, and clients must reject responses
// advertising a different major version instead of mis-decoding them.
// (Result blobs are separately versioned by the engine codec; Version
// covers the JSON envelope.)
package api

import (
	"fmt"

	"clustersim/internal/engine"
	"clustersim/internal/store"
)

const (
	// Version is the wire-protocol version of the types in this package.
	// Bump it on any incompatible change to the JSON shapes or routes.
	//
	// v2: SubmitRequest gained max_parallel. Servers reject unknown
	// fields, so a v1 server would answer a v2 submission that sets it
	// with bad_request — the version bump turns that mixed-fleet hazard
	// into a clean, detectable mismatch (which multi-worker runners
	// treat as worker loss and route around).
	Version = 2
	// VersionHeader is the HTTP response header carrying Version.
	VersionHeader = "Clustersim-Api-Version"
)

// Stable machine-readable error codes carried by Error.Code. Clients
// branch on the code; Message is for humans and may change freely.
const (
	CodeBadRequest       = "bad_request"        // malformed body, unknown spec fields
	CodeNotFound         = "not_found"          // unknown submission, route or result key
	CodeMethodNotAllowed = "method_not_allowed" // known route, wrong HTTP method
	CodeUnauthorized     = "unauthorized"       // missing or wrong bearer token
	CodeInternal         = "internal"           // server-side failure
)

// Error is the JSON body of every non-2xx response. It doubles as a Go
// error so the client SDK can surface server failures verbatim.
type Error struct {
	// Code is one of the Code* constants — stable across releases.
	Code string `json:"code"`
	// Message is a human-readable description.
	Message string `json:"error"`
	// Status is the HTTP status the error traveled with (not serialized;
	// filled in by the client from the response).
	Status int `json:"-"`
}

// Error implements the error interface.
func (e *Error) Error() string {
	if e.Status != 0 {
		return fmt.Sprintf("clusterd: %s (%s, http %d)", e.Message, e.Code, e.Status)
	}
	return fmt.Sprintf("clusterd: %s (%s)", e.Message, e.Code)
}

// SubmitRequest is the POST /v1/jobs body: a batch of declarative job
// specs. Servers also accept a single bare engine.JobSpec object for
// curl-friendliness; the SDK always sends the batch form.
type SubmitRequest struct {
	Jobs []engine.JobSpec `json:"jobs"`
	// MaxParallel optionally caps how many engine workers this batch may
	// occupy at once; the server clamps it to its own -parallel limit.
	// Zero means no per-batch cap. Version-gated: introduced with
	// protocol v2 (see Version).
	MaxParallel int `json:"max_parallel,omitempty"`
}

// SubmitResponse acknowledges a submission.
type SubmitResponse struct {
	ID string `json:"id"`
	// Keys holds each job's result content key, index-aligned with the
	// submitted batch ("" for uncacheable jobs).
	Keys []string `json:"keys"`
	// Total is the number of jobs accepted.
	Total int `json:"total"`
}

// JobEvent is one completed job, as streamed over SSE and as listed in a
// StatusResponse.
type JobEvent struct {
	// Index is the job's position in the submitted batch.
	Index int `json:"index"`
	// Simpoint and Setup identify the run.
	Simpoint string `json:"simpoint"`
	Setup    string `json:"setup"`
	// Key is the result's content address in the store ("" when the job
	// is uncacheable).
	Key string `json:"key,omitempty"`
	// Error is non-empty for failed or canceled runs.
	Error string `json:"error,omitempty"`
	// Headline metrics for dashboards; fetch the key for everything.
	IPC    float64 `json:"ipc,omitempty"`
	Cycles int64   `json:"cycles,omitempty"`
	Uops   int64   `json:"uops,omitempty"`
	Copies int64   `json:"copies,omitempty"`
}

// StatusResponse reports a submission's progress.
type StatusResponse struct {
	ID        string     `json:"id"`
	Total     int        `json:"total"`
	Completed int        `json:"completed"`
	Done      bool       `json:"done"`
	Results   []JobEvent `json:"results"`
}

// ResultResponse is the JSON rendering of a stored result; add &raw=1 to
// the fetch for the full codec blob instead.
type ResultResponse struct {
	Key        string  `json:"key"`
	Simpoint   string  `json:"simpoint"`
	Bench      string  `json:"bench"`
	Setup      string  `json:"setup"`
	IPC        float64 `json:"ipc"`
	Cycles     int64   `json:"cycles"`
	Uops       int64   `json:"uops"`
	Copies     int64   `json:"copies"`
	AllocStall int64   `json:"alloc_stall_cycles"`
	Imbalance  float64 `json:"workload_imbalance"`
}

// ServingStats counts the request-path work the server shared or avoided:
// encode-once SSE streaming and If-None-Match result fetches.
type ServingStats struct {
	// SSEMarshals counts job-event JSON encodes — exactly one per
	// completed job, however many subscribers replay it.
	SSEMarshals int64 `json:"sse_marshals"`
	// SSEFrames and SSEBytes count the shared result frames (and their
	// bytes) actually written to SSE subscribers.
	SSEFrames int64 `json:"sse_frames"`
	SSEBytes  int64 `json:"sse_bytes"`
	// NotModified counts result fetches answered 304 from the ETag
	// protocol — no store read, no body.
	NotModified int64 `json:"result_not_modified"`
}

// StatsResponse reports the engine's cache counters and the store's
// occupancy, with per-tier detail when the store is tiered.
type StatsResponse struct {
	Engine  engine.CacheStats `json:"engine"`
	Store   store.Stats       `json:"store"`
	Memory  *store.Stats      `json:"memory,omitempty"`
	Disk    *store.Stats      `json:"disk,omitempty"`
	Serving ServingStats      `json:"serving"`
}
