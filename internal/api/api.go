// Package api defines the versioned JSON wire types of the clusterd HTTP
// API. Both sides of the wire build against this one package — the server
// (internal/service) renders these shapes, the typed SDK (package client)
// decodes them — so the protocol cannot drift apart silently: a field
// exists for the client exactly when the server can produce it.
//
// The protocol is versioned as a whole: every server response carries
// Version in the VersionHeader header, and clients must reject responses
// advertising a different major version instead of mis-decoding them.
// (Result blobs are separately versioned by the engine codec; Version
// covers the JSON envelope.)
package api

import (
	"fmt"
	"time"

	"clustersim/internal/engine"
	"clustersim/internal/obs"
	"clustersim/internal/store"
)

const (
	// Version is the wire-protocol version of the types in this package.
	// Bump it on any incompatible change to the JSON shapes or routes.
	//
	// v2: SubmitRequest gained max_parallel. Servers reject unknown
	// fields, so a v1 server would answer a v2 submission that sets it
	// with bad_request — the version bump turns that mixed-fleet hazard
	// into a clean, detectable mismatch (which multi-worker runners
	// treat as worker loss and route around).
	//
	// v3: the fleet control plane. New routes a v2 server answers with
	// not_found: GET /v1/keys (store key enumeration, the substrate of
	// planned drains and scale-up backfills), PUT /v1/results (validated
	// result upload, how a drain warms a successor's store), and
	// GET/POST /v1/ring (the coordinator's membership register). The
	// version bump makes a mixed-version fleet fail cleanly at the
	// client instead of half-supporting migrations.
	//
	// v4: observability. SubmitResponse gained trace_ids (per-job trace
	// IDs, seedable via the Clustersim-Trace-Id request header), GET
	// /v1/trace/{id} returns a job's span tree, and StatsResponse gained
	// routes/stages latency histograms. A v3 server would silently drop
	// the trace header and 404 the trace route; the bump makes the
	// mismatch detectable.
	//
	// v5: admission control. SubmitRequest gained priority (scheduling
	// lane), requests may carry a deadline in the DeadlineHeader header,
	// overloaded submissions are refused with 429 + Retry-After under
	// the new rate_limited / quota_exceeded codes, JobEvent gained a
	// machine-readable code for shed jobs (deadline_exceeded /
	// canceled), and StatsResponse gained admission counters. A v4
	// server would reject the priority field as bad_request and
	// silently ignore the deadline header; the bump makes both
	// mismatches detectable.
	Version = 5
	// VersionHeader is the HTTP response header carrying Version.
	VersionHeader = "Clustersim-Api-Version"
	// TraceHeader optionally carries a caller-chosen trace-ID base on
	// POST /v1/jobs; per-job IDs are derived as "<base>.<index>". The
	// server mints random IDs when the header is absent or invalid (see
	// obs.ValidTraceID).
	TraceHeader = "Clustersim-Trace-Id"
	// DeadlineHeader optionally carries a submission's deadline on POST
	// /v1/jobs as a positive integer of milliseconds from receipt. The
	// server propagates it as a context deadline through every engine
	// run of the batch: jobs whose deadline expires before they reach a
	// worker slot are shed (never simulated) and stream a JobEvent with
	// code deadline_exceeded. Introduced with protocol v5.
	DeadlineHeader = "Clustersim-Deadline-Ms"
	// TenantHeader optionally names the tenant identity admission
	// control accounts the request to, for deployments without bearer
	// auth (with auth enabled the token itself is the identity and this
	// header is ignored). Absent both, all requests share one "anon"
	// tenant. Introduced with protocol v5.
	TenantHeader = "Clustersim-Tenant"
)

// Stable machine-readable error codes carried by Error.Code. Clients
// branch on the code; Message is for humans and may change freely.
const (
	CodeBadRequest       = "bad_request"        // malformed body, unknown spec fields
	CodeNotFound         = "not_found"          // unknown submission, route or result key
	CodeMethodNotAllowed = "method_not_allowed" // known route, wrong HTTP method
	CodeUnauthorized     = "unauthorized"       // missing or wrong bearer token
	CodeInternal         = "internal"           // server-side failure
	CodeEpochConflict    = "epoch_conflict"     // ring transition based on a stale epoch
	CodeUnsupported      = "unsupported"        // server cannot serve this (e.g. unlistable store, coordinator disabled)
	CodeRateLimited      = "rate_limited"       // tenant over its submission rate; retry after the hinted pause
	CodeQuotaExceeded    = "quota_exceeded"     // tenant at its in-flight job quota; retry as work completes
	CodeDeadlineExceeded = "deadline_exceeded"  // the request's deadline expired before the work could run
)

// Error is the JSON body of every non-2xx response. It doubles as a Go
// error so the client SDK can surface server failures verbatim.
type Error struct {
	// Code is one of the Code* constants — stable across releases.
	Code string `json:"code"`
	// Message is a human-readable description.
	Message string `json:"error"`
	// Status is the HTTP status the error traveled with (not serialized;
	// filled in by the client from the response).
	Status int `json:"-"`
	// RetryAfter is the server's Retry-After hint on 429 responses (not
	// serialized — it travels as the standard HTTP header; filled in by
	// the client). Zero when the server sent none.
	RetryAfter time.Duration `json:"-"`
}

// Error implements the error interface.
func (e *Error) Error() string {
	if e.Status != 0 {
		return fmt.Sprintf("clusterd: %s (%s, http %d)", e.Message, e.Code, e.Status)
	}
	return fmt.Sprintf("clusterd: %s (%s)", e.Message, e.Code)
}

// SubmitRequest is the POST /v1/jobs body: a batch of declarative job
// specs. Servers also accept a single bare engine.JobSpec object for
// curl-friendliness; the SDK always sends the batch form.
type SubmitRequest struct {
	Jobs []engine.JobSpec `json:"jobs"`
	// MaxParallel optionally caps how many engine workers this batch may
	// occupy at once; the server clamps it to its own -parallel limit.
	// Zero means no per-batch cap. Version-gated: introduced with
	// protocol v2 (see Version).
	MaxParallel int `json:"max_parallel,omitempty"`
	// Priority selects the batch's scheduling lane: "interactive" (the
	// default; latency-sensitive, weighted 4) or "bulk" (sweeps and
	// background fills, weighted 1). Under contention the engine grants
	// worker slots weighted-fair across lanes instead of FIFO, so bulk
	// backlogs cannot queue-jump interactive work. Unknown values are
	// refused with bad_request. Version-gated: introduced with
	// protocol v5.
	Priority string `json:"priority,omitempty"`
}

// SubmitResponse acknowledges a submission.
type SubmitResponse struct {
	ID string `json:"id"`
	// Keys holds each job's result content key, index-aligned with the
	// submitted batch ("" for uncacheable jobs).
	Keys []string `json:"keys"`
	// Total is the number of jobs accepted.
	Total int `json:"total"`
	// TraceIDs holds each job's trace ID, index-aligned with the batch.
	// Fetch a completed job's span tree via GET /v1/trace/{id}.
	// Version-gated: introduced with protocol v4.
	TraceIDs []string `json:"trace_ids,omitempty"`
}

// JobEvent is one completed job, as streamed over SSE and as listed in a
// StatusResponse.
type JobEvent struct {
	// Index is the job's position in the submitted batch.
	Index int `json:"index"`
	// Simpoint and Setup identify the run.
	Simpoint string `json:"simpoint"`
	Setup    string `json:"setup"`
	// Key is the result's content address in the store ("" when the job
	// is uncacheable).
	Key string `json:"key,omitempty"`
	// Error is non-empty for failed or canceled runs.
	Error string `json:"error,omitempty"`
	// Code classifies Error machine-readably when the failure has a
	// stable category: deadline_exceeded for jobs shed past their
	// deadline, canceled for client-canceled runs. Empty for
	// deterministic simulation failures (branch on Error's presence,
	// not Code's). Introduced with protocol v5.
	Code string `json:"code,omitempty"`
	// Headline metrics for dashboards; fetch the key for everything.
	IPC    float64 `json:"ipc,omitempty"`
	Cycles int64   `json:"cycles,omitempty"`
	Uops   int64   `json:"uops,omitempty"`
	Copies int64   `json:"copies,omitempty"`
}

// StatusResponse reports a submission's progress.
type StatusResponse struct {
	ID        string     `json:"id"`
	Total     int        `json:"total"`
	Completed int        `json:"completed"`
	Done      bool       `json:"done"`
	Results   []JobEvent `json:"results"`
}

// ResultResponse is the JSON rendering of a stored result; add &raw=1 to
// the fetch for the full codec blob instead.
type ResultResponse struct {
	Key        string  `json:"key"`
	Simpoint   string  `json:"simpoint"`
	Bench      string  `json:"bench"`
	Setup      string  `json:"setup"`
	IPC        float64 `json:"ipc"`
	Cycles     int64   `json:"cycles"`
	Uops       int64   `json:"uops"`
	Copies     int64   `json:"copies"`
	AllocStall int64   `json:"alloc_stall_cycles"`
	Imbalance  float64 `json:"workload_imbalance"`
}

// TraceSpan is one recorded stage of a job's flight: a named interval
// offset from the flight's start, in microseconds.
type TraceSpan struct {
	Name    string `json:"name"`
	StartUs int64  `json:"start_us"`
	DurUs   int64  `json:"dur_us"`
}

// TraceResponse is GET /v1/trace/{id}: one completed job's span tree.
// Only finished jobs are visible; an in-flight or evicted trace answers
// not_found. UnaccountedUs is the gap-accounted remainder — total time
// not covered by any span — so a trace is honest about time spent
// between recorded stages. Add ?format=chrome for a Chrome trace-event
// document loadable in Perfetto instead of this shape. Introduced with
// protocol v4.
type TraceResponse struct {
	ID    string `json:"id"`
	Label string `json:"label"`
	// Start is the flight's wall-clock start, RFC 3339 with sub-second
	// precision.
	Start         string      `json:"start"`
	TotalUs       int64       `json:"total_us"`
	UnaccountedUs int64       `json:"unaccounted_us"`
	Spans         []TraceSpan `json:"spans"`
}

// LatencyHistogram is the wire form of one fixed-bucket latency series:
// a route (HTTP request durations, status codes aggregated) or an
// engine stage (span durations). Counts is cumulative with the final
// entry counting everything (+Inf bucket), Prometheus-style.
// Introduced with protocol v4.
type LatencyHistogram struct {
	Route  string    `json:"route,omitempty"`
	Stage  string    `json:"stage,omitempty"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum_seconds"`
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
}

// Snapshot converts the wire form back to an obs snapshot for quantile
// math and merging.
func (h LatencyHistogram) Snapshot() obs.Snapshot {
	return obs.Snapshot{Bounds: h.Bounds, Counts: h.Counts, Count: h.Count, Sum: h.Sum}
}

// Quantile estimates the q-th latency quantile in seconds (see
// obs.Snapshot.Quantile).
func (h LatencyHistogram) Quantile(q float64) float64 {
	if len(h.Counts) == 0 {
		return 0
	}
	return h.Snapshot().Quantile(q)
}

// MergeLatency folds b into a (same series key, same bucket layout) —
// how a fleet combines per-worker histograms into one.
func MergeLatency(a, b LatencyHistogram) LatencyHistogram {
	m := a.Snapshot().Merge(b.Snapshot())
	out := a
	if len(a.Counts) == 0 {
		out = b
	}
	out.Count, out.Sum, out.Bounds, out.Counts = m.Count, m.Sum, m.Bounds, m.Counts
	return out
}

// KeysResponse is one page of GET /v1/keys: the logical keys the server's
// result store currently holds, in a stable store-defined order. Next is
// the cursor for the following page ("" when the listing is exhausted).
// Introduced with protocol v3; it is what lets a drain or backfill
// enumerate a worker's key range without knowing what was ever submitted.
type KeysResponse struct {
	Keys []string `json:"keys"`
	Next string   `json:"next,omitempty"`
}

// Member states carried by MemberState.State. The assignable states —
// the ones a ring placement may route new work to — are alive and
// draining (a draining worker keeps serving its range until its keys
// have migrated and it is removed).
const (
	MemberAlive    = "alive"
	MemberDead     = "dead"
	MemberDraining = "draining"
	MemberRemoved  = "removed"
)

// MemberState is one worker's entry in the published ring membership.
type MemberState struct {
	// URL is the worker's canonical base URL — its identity on the ring.
	URL string `json:"url"`
	// State is one of the Member* constants.
	State string `json:"state"`
	// Epoch is the membership epoch at which the member last changed
	// state (admission counts).
	Epoch int64 `json:"epoch"`
	// LastError carries the failure that put a member into the dead
	// state, so operators can see *why* a worker is excluded.
	LastError string `json:"last_error,omitempty"`
}

// RingView is the coordinator's entire state: a monotonically increasing
// epoch and the member list, sorted by URL. Every fleet runner syncing
// against the same coordinator sees the same view at the same epoch and
// therefore computes the same placement — the ring itself is never
// transmitted, only the membership it is a pure function of.
type RingView struct {
	Epoch   int64         `json:"epoch"`
	Members []MemberState `json:"members"`
}

// Ring transition actions carried by RingTransition.Action.
const (
	RingAdd      = "add"       // admit a new (or removed) worker as alive
	RingMarkDead = "mark_dead" // a worker stopped answering mid-protocol
	RingReadmit  = "readmit"   // a dead worker answered a liveness probe
	RingDrain    = "drain"     // begin planned removal: alive -> draining
	RingRemove   = "remove"    // finish a drain (or retire a dead worker)
)

// RingTransition is the POST /v1/ring body: one membership state change,
// compare-and-swapped against the coordinator's current epoch. A
// transition whose BaseEpoch is stale is refused with CodeEpochConflict
// and applied by nobody — the proposer re-syncs and retries, so N
// concurrent fleet runners serialize their membership changes through
// the coordinator's epoch without the coordinator holding anything
// beyond the tiny view itself.
type RingTransition struct {
	// BaseEpoch is the view epoch this transition was computed against.
	BaseEpoch int64 `json:"base_epoch"`
	// Action is one of the Ring* constants.
	Action string `json:"action"`
	// URL names the member the transition applies to.
	URL string `json:"url"`
	// Error optionally records why (mark_dead carries the probe failure).
	Error string `json:"error,omitempty"`
}

// ServingStats counts the request-path work the server shared or avoided:
// encode-once SSE streaming and If-None-Match result fetches.
type ServingStats struct {
	// SSEMarshals counts job-event JSON encodes — exactly one per
	// completed job, however many subscribers replay it.
	SSEMarshals int64 `json:"sse_marshals"`
	// SSEFrames and SSEBytes count the shared result frames (and their
	// bytes) actually written to SSE subscribers.
	SSEFrames int64 `json:"sse_frames"`
	SSEBytes  int64 `json:"sse_bytes"`
	// SSESlowDisconnects counts subscribers dropped because they could
	// not drain a frame within the server's write timeout — stalled
	// readers shed so fan-out stays bounded. Introduced with protocol
	// v5.
	SSESlowDisconnects int64 `json:"sse_slow_disconnects,omitempty"`
	// NotModified counts result fetches answered 304 from the ETag
	// protocol — no store read, no body.
	NotModified int64 `json:"result_not_modified"`
	// ResultUploads counts validated result blobs accepted over PUT
	// /v1/results — drain migrations and scale-up backfills landing.
	ResultUploads int64 `json:"result_uploads,omitempty"`
	// KeyPages counts GET /v1/keys pages served.
	KeyPages int64 `json:"key_pages,omitempty"`
	// RingEpoch is the coordinator's current membership epoch (0 when
	// this server is not a coordinator or holds no view yet).
	RingEpoch int64 `json:"ring_epoch,omitempty"`
	// RingTransitions counts membership transitions this coordinator
	// accepted; RingConflicts counts proposals refused for a stale epoch.
	RingTransitions int64 `json:"ring_transitions,omitempty"`
	RingConflicts   int64 `json:"ring_conflicts,omitempty"`
}

// AdmissionStats reports the server's admission-control counters.
// Version-gated: introduced with protocol v5; absent when the server
// runs without limits.
type AdmissionStats struct {
	// Admitted counts jobs (not batches) admitted.
	Admitted int64 `json:"admitted"`
	// RejectedRate/RejectedQuota count batches refused 429 by reason.
	RejectedRate  int64 `json:"rejected_rate"`
	RejectedQuota int64 `json:"rejected_quota"`
	// InFlight is the current total of admitted-but-unfinished jobs.
	InFlight int64 `json:"in_flight"`
	// Tenants is the number of identities currently tracked.
	Tenants int `json:"tenants"`
}

// StatsResponse reports the engine's cache counters and the store's
// occupancy, with per-tier detail when the store is tiered.
type StatsResponse struct {
	Engine  engine.CacheStats `json:"engine"`
	Store   store.Stats       `json:"store"`
	Memory  *store.Stats      `json:"memory,omitempty"`
	Disk    *store.Stats      `json:"disk,omitempty"`
	Serving ServingStats      `json:"serving"`
	// Routes holds per-route HTTP latency histograms (status codes
	// aggregated) and Stages the engine's per-stage span histograms.
	// Version-gated: introduced with protocol v4.
	Routes []LatencyHistogram `json:"routes,omitempty"`
	Stages []LatencyHistogram `json:"stages,omitempty"`
	// Admission holds the admission-control counters when limits are
	// configured. Version-gated: introduced with protocol v5.
	Admission *AdmissionStats `json:"admission,omitempty"`
}
