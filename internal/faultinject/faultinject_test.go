package faultinject

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"clustersim/internal/store"
)

func TestParse(t *testing.T) {
	cfg, err := Parse("seed=7,latency=5ms,jitter=2ms,error=0.05,stall=0.01,stalldur=2s")
	if err != nil {
		t.Fatal(err)
	}
	want := Config{Seed: 7, Latency: 5 * time.Millisecond, Jitter: 2 * time.Millisecond,
		ErrorRate: 0.05, StallRate: 0.01, Stall: 2 * time.Second}
	if cfg != want {
		t.Fatalf("cfg = %+v, want %+v", cfg, want)
	}

	if cfg, err := Parse(""); err != nil || cfg != (Config{}) {
		t.Fatalf("empty spec: %+v, %v", cfg, err)
	}
	if cfg, err := Parse("stall=0.5"); err != nil || cfg.Stall != time.Second {
		t.Fatalf("stall without stalldur should default to 1s: %+v, %v", cfg, err)
	}
	for _, bad := range []string{"latency", "bogus=1", "error=1.5", "latency=fast", "seed=x"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

func TestDeterministicSchedule(t *testing.T) {
	// The same seed draws the same fault schedule, draw for draw.
	cfg := Config{Seed: 42, Jitter: 10 * time.Millisecond, ErrorRate: 0.3, StallRate: 0.2, Stall: time.Second}
	a, b := New(cfg), New(cfg)
	for i := 0; i < 200; i++ {
		da, fa := a.draw()
		db, fb := b.draw()
		if da != db || fa != fb {
			t.Fatalf("draw %d diverged: (%v,%v) vs (%v,%v)", i, da, fa, db, fb)
		}
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", a.Stats(), b.Stats())
	}
	if s := a.Stats(); s.Hops != 200 || s.Errors == 0 || s.Stalls == 0 {
		t.Fatalf("200 draws at 30%%/20%% rates: %+v", s)
	}
}

func TestMiddlewareAbortsAndExempts(t *testing.T) {
	in := New(Config{Seed: 1, ErrorRate: 1}) // every non-exempt hop fails
	served := 0
	h := in.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served++
		io.WriteString(w, "ok")
	}), "/v1/results")
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)

	// Injected paths abort at the transport level — no valid response.
	if resp, err := http.Get(ts.URL + "/v1/jobs"); err == nil {
		t.Fatalf("injected request succeeded: %v", resp.Status)
	}
	if served != 0 {
		t.Fatal("handler ran for an aborted request")
	}
	// /healthz is always exempt; explicit prefixes too.
	for _, path := range []string{"/healthz", "/v1/results?key=k"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("exempt %s failed: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("exempt %s: %d", path, resp.StatusCode)
		}
	}
	if served != 2 {
		t.Fatalf("handler served %d exempt requests, want 2", served)
	}
}

func TestRoundTripperInjects(t *testing.T) {
	in := New(Config{Seed: 1, ErrorRate: 1})
	rt := in.RoundTripper(roundTripFunc(func(r *http.Request) (*http.Response, error) {
		t.Fatal("inner transport reached through an injected failure")
		return nil, nil
	}))
	req := httptest.NewRequest(http.MethodGet, "http://worker/v1/stats", nil)
	if _, err := rt.RoundTrip(req); err == nil {
		t.Fatal("injected round trip succeeded")
	}

	// With injection off, the inner transport is reached unchanged.
	passthrough := New(Config{})
	inner := errors.New("inner")
	rt = passthrough.RoundTripper(roundTripFunc(func(r *http.Request) (*http.Response, error) {
		return nil, inner
	}))
	if _, err := rt.RoundTrip(req); !errors.Is(err, inner) {
		t.Fatalf("passthrough altered the inner error: %v", err)
	}
}

func TestStoreInjectsMissesAndDrops(t *testing.T) {
	mem := store.NewMemory(1 << 20)
	mem.Put("k", []byte("blob"))

	lossy := New(Config{Seed: 1, ErrorRate: 1}).Store(mem)
	if _, ok := lossy.Get("k"); ok {
		t.Fatal("injected Get hit")
	}
	lossy.Put("dropped", []byte("x"))
	if _, ok := mem.Get("dropped"); ok {
		t.Fatal("injected Put reached the inner store")
	}

	clean := New(Config{}).Store(mem)
	if blob, ok := clean.Get("k"); !ok || string(blob) != "blob" {
		t.Fatalf("passthrough Get: %q, %v", blob, ok)
	}
	if clean.Stats().Puts != mem.Stats().Puts {
		t.Fatal("Stats not passed through")
	}
}

func TestMiddlewareLatency(t *testing.T) {
	in := New(Config{Seed: 1, Latency: 30 * time.Millisecond})
	h := in.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	start := time.Now()
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("injected-latency request returned in %v", d)
	}
	if !in.Enabled() {
		t.Fatal("latency-only injector reports disabled")
	}
	if New(Config{Seed: 9}).Enabled() {
		t.Fatal("zero schedule reports enabled")
	}
}
