// Package faultinject is the chaos harness behind the overload and
// resilience tests: seeded, deterministic injection of latency, transport
// errors, and stalls onto the store and HTTP hops of a clusterd stack.
//
// One Injector carries one seeded PRNG, so a fixed seed yields a
// reproducible fault schedule (per draw order); the same flag string
// replays the same chaos. Three wrappers share the Injector:
//
//   - Middleware wraps a server's handler: injected hops sleep the drawn
//     latency, and an injected error aborts the connection before the
//     handler runs (the client sees a transport failure, never a valid
//     response — so an aborted submit was never accepted and can be
//     retried without duplicating work). Exempt path prefixes pass
//     through untouched; /healthz is always exempt so liveness probes
//     keep answering and the fleet distinguishes "sick" from "gone".
//   - RoundTripper wraps a client transport with the same draw.
//   - Store wraps a blob store: injected Gets miss (forcing the slow
//     path), injected Puts drop (the Store contract is best-effort).
//
// The package has no opinions about rates — it does exactly what its
// Config says, and counts what it did.
package faultinject

import (
	"fmt"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"clustersim/internal/store"
)

// Config is one fault schedule. Zero fields inject nothing of that kind.
type Config struct {
	// Seed seeds the PRNG; the same seed draws the same schedule.
	Seed int64
	// Latency is added to every injected hop; Jitter adds a uniform
	// extra in [0, Jitter).
	Latency time.Duration
	Jitter  time.Duration
	// ErrorRate is the probability in [0, 1] that a hop fails outright:
	// connection abort (Middleware), transport error (RoundTripper),
	// miss/drop (Store).
	ErrorRate float64
	// StallRate is the probability in [0, 1] that a hop stalls for
	// Stall (default 1s when a rate is set) on top of Latency — the
	// "slow worker" shape, distinct from outright failure.
	StallRate float64
	Stall     time.Duration
}

// Parse builds a Config from a flag string of comma-separated key=value
// pairs: "seed=1,latency=5ms,jitter=2ms,error=0.05,stall=0.01,stalldur=2s".
// Unknown keys are errors; an empty string is the zero Config.
func Parse(s string) (Config, error) {
	var cfg Config
	if strings.TrimSpace(s) == "" {
		return cfg, nil
	}
	for _, pair := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok {
			return cfg, fmt.Errorf("faultinject: %q is not key=value", pair)
		}
		var err error
		switch k {
		case "seed":
			cfg.Seed, err = strconv.ParseInt(v, 10, 64)
		case "latency":
			cfg.Latency, err = time.ParseDuration(v)
		case "jitter":
			cfg.Jitter, err = time.ParseDuration(v)
		case "error":
			cfg.ErrorRate, err = strconv.ParseFloat(v, 64)
		case "stall":
			cfg.StallRate, err = strconv.ParseFloat(v, 64)
		case "stalldur":
			cfg.Stall, err = time.ParseDuration(v)
		default:
			return cfg, fmt.Errorf("faultinject: unknown key %q", k)
		}
		if err != nil {
			return cfg, fmt.Errorf("faultinject: bad %s: %v", k, err)
		}
	}
	if cfg.ErrorRate < 0 || cfg.ErrorRate > 1 || cfg.StallRate < 0 || cfg.StallRate > 1 {
		return cfg, fmt.Errorf("faultinject: rates must be within [0, 1]")
	}
	if cfg.StallRate > 0 && cfg.Stall == 0 {
		cfg.Stall = time.Second
	}
	return cfg, nil
}

// Stats counts what an Injector has done.
type Stats struct {
	Hops, Errors, Stalls int64
}

// Injector draws faults from one seeded schedule. Safe for concurrent
// use; concurrent draws serialize on the PRNG, so exact schedules are
// reproducible for serial callers and statistically reproducible under
// concurrency.
type Injector struct {
	cfg Config

	mu  sync.Mutex
	rng *rand.Rand

	hops, errors, stalls atomic.Int64
}

// New builds an Injector for cfg.
func New(cfg Config) *Injector {
	return &Injector{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Enabled reports whether the schedule injects anything at all.
func (in *Injector) Enabled() bool {
	return in != nil && (in.cfg.Latency > 0 || in.cfg.Jitter > 0 || in.cfg.ErrorRate > 0 || in.cfg.StallRate > 0)
}

// Stats snapshots the injection counters.
func (in *Injector) Stats() Stats {
	return Stats{Hops: in.hops.Load(), Errors: in.errors.Load(), Stalls: in.stalls.Load()}
}

// draw rolls one hop's fate: how long to sleep and whether to fail.
func (in *Injector) draw() (delay time.Duration, fail bool) {
	in.mu.Lock()
	delay = in.cfg.Latency
	if in.cfg.Jitter > 0 {
		delay += time.Duration(in.rng.Float64() * float64(in.cfg.Jitter))
	}
	stalled := in.cfg.StallRate > 0 && in.rng.Float64() < in.cfg.StallRate
	if stalled {
		delay += in.cfg.Stall
	}
	fail = in.cfg.ErrorRate > 0 && in.rng.Float64() < in.cfg.ErrorRate
	in.mu.Unlock()

	in.hops.Add(1)
	if stalled {
		in.stalls.Add(1)
	}
	if fail {
		in.errors.Add(1)
	}
	return delay, fail
}

// Middleware wraps next with the fault schedule. Requests whose path
// starts with any exempt prefix — and /healthz always — pass through
// untouched. An injected error aborts the connection before next runs,
// so the client observes a transport failure and the request was never
// acted on.
func (in *Injector) Middleware(next http.Handler, exempt ...string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			next.ServeHTTP(w, r)
			return
		}
		for _, p := range exempt {
			if strings.HasPrefix(r.URL.Path, p) {
				next.ServeHTTP(w, r)
				return
			}
		}
		delay, fail := in.draw()
		if delay > 0 {
			select {
			case <-time.After(delay):
			case <-r.Context().Done():
				return
			}
		}
		if fail {
			panic(http.ErrAbortHandler) // net/http closes the connection
		}
		next.ServeHTTP(w, r)
	})
}

// RoundTripper wraps a client-side transport with the fault schedule:
// injected hops sleep, injected errors fail the request without sending
// it.
func (in *Injector) RoundTripper(next http.RoundTripper) http.RoundTripper {
	return roundTripFunc(func(r *http.Request) (*http.Response, error) {
		delay, fail := in.draw()
		if delay > 0 {
			select {
			case <-time.After(delay):
			case <-r.Context().Done():
				return nil, r.Context().Err()
			}
		}
		if fail {
			return nil, fmt.Errorf("faultinject: injected transport failure for %s %s", r.Method, r.URL.Path)
		}
		return next.RoundTrip(r)
	})
}

type roundTripFunc func(*http.Request) (*http.Response, error)

func (f roundTripFunc) RoundTrip(r *http.Request) (*http.Response, error) { return f(r) }

// Store wraps s with the fault schedule: injected Gets report a miss
// (forcing the caller down its slow path), injected Puts drop the blob —
// both legal under the Store contract, which treats reads of corrupt
// data as absence and writes as best-effort.
func (in *Injector) Store(s store.Store) store.Store {
	return &faultStore{inner: s, in: in}
}

type faultStore struct {
	inner store.Store
	in    *Injector
}

func (fs *faultStore) Get(key string) ([]byte, bool) {
	delay, fail := fs.in.draw()
	if delay > 0 {
		time.Sleep(delay)
	}
	if fail {
		return nil, false
	}
	return fs.inner.Get(key)
}

func (fs *faultStore) Put(key string, blob []byte) {
	delay, fail := fs.in.draw()
	if delay > 0 {
		time.Sleep(delay)
	}
	if fail {
		return
	}
	fs.inner.Put(key, blob)
}

func (fs *faultStore) Stats() store.Stats { return fs.inner.Stats() }
