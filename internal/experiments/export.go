package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"clustersim/internal/engine"
)

// CSV renders Figure 5's per-simpoint data as comma-separated values with
// a header row (for external plotting).
func (r *Fig5Result) CSV() string {
	var b strings.Builder
	b.WriteString("simpoint,bench,class,weight,op_ipc")
	for _, cfg := range Fig5Configs {
		fmt.Fprintf(&b, ",%s_slowdown_pct", csvName(cfg))
	}
	b.WriteByte('\n')
	for _, row := range r.Rows {
		class := "int"
		if row.FP {
			class = "fp"
		}
		fmt.Fprintf(&b, "%s,%s,%s,%.6f,%.4f", row.Name, row.Bench, class, row.Weight, row.OPIPC)
		for _, cfg := range Fig5Configs {
			fmt.Fprintf(&b, ",%.4f", row.SlowdownPct[cfg])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders Figure 6's scatter points.
func (r *Fig6Result) CSV() string {
	var b strings.Builder
	b.WriteString("versus,simpoint,speedup_pct,copy_reduction_pct,balance_improvement_pct\n")
	for _, panel := range r.Panels {
		for _, pt := range panel.Points {
			fmt.Fprintf(&b, "%s,%s,%.4f,%.4f,%.4f\n",
				panel.Versus, pt.Name, pt.SpeedupPct, pt.CopyReductionPct, pt.BalanceImprovementPct)
		}
	}
	return b.String()
}

// CSV renders Figure 7's per-simpoint data.
func (r *Fig7Result) CSV() string {
	var b strings.Builder
	b.WriteString("simpoint,bench,class,weight")
	for _, cfg := range Fig7Configs {
		fmt.Fprintf(&b, ",%s_slowdown_pct", csvName(cfg))
	}
	b.WriteByte('\n')
	for _, row := range r.Rows {
		class := "int"
		if row.FP {
			class = "fp"
		}
		fmt.Fprintf(&b, "%s,%s,%s,%.6f", row.Name, row.Bench, class, row.Weight)
		for _, cfg := range Fig7Configs {
			fmt.Fprintf(&b, ",%.4f", row.SlowdownPct[cfg])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders one ablation sweep.
func (r *AblationResult) CSV() string {
	var b strings.Builder
	b.WriteString("point,slowdown_pct,copies_per_kuop\n")
	for _, pt := range r.Points {
		fmt.Fprintf(&b, "%s,%.4f,%.4f\n", csvName(pt.Label), pt.SlowdownPct, pt.CopiesPerKuop)
	}
	return b.String()
}

// csvName strips characters that complicate CSV consumers.
func csvName(s string) string {
	s = strings.ReplaceAll(s, ",", ";")
	s = strings.ReplaceAll(s, "(", "")
	s = strings.ReplaceAll(s, ")", "")
	s = strings.ReplaceAll(s, "->", "to")
	return s
}

// EngineReport renders an engine's cache counters as a one-line summary —
// the dedup accounting steerbench prints after a multi-experiment run.
// The "store" figure is the persistent result store's share of the
// whole-result lookups that missed in memory (absent without -cachedir).
func EngineReport(st engine.CacheStats) string {
	// The compression ratio is computed from the same high-water figures
	// it annotates (the current-occupancy ratio reads 0 once the cache
	// drains or misleads after eviction).
	ratio := 0.0
	if st.TraceBytesHighWater > 0 {
		ratio = float64(st.TraceRawBytesHighWater) / float64(st.TraceBytesHighWater)
	}
	s := fmt.Sprintf(
		"engine: %d simulations, %d result hits, store hits %d/%d, %d/%d trace hits (%.1f MiB gz peak of %.1f MiB raw, %.1fx), %d/%d program hits",
		st.Simulations, st.ResultHits,
		st.StoreHits, st.StoreHits+st.StoreMisses,
		st.TraceHits, st.TraceHits+st.TraceMisses,
		float64(st.TraceBytesHighWater)/(1<<20),
		float64(st.TraceRawBytesHighWater)/(1<<20),
		ratio,
		st.ProgramHits, st.ProgramHits+st.ProgramMisses)
	if st.StoreErrors > 0 {
		s += fmt.Sprintf(", %d store errors", st.StoreErrors)
	}
	return s
}

// WriteJSON marshals any experiment result as indented JSON.
func WriteJSON(w io.Writer, result any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(result)
}
