package experiments

import (
	"strings"

	"clustersim/internal/sim"
	"clustersim/internal/stats"
	"clustersim/internal/steer"
)

// PolicyPoint summarizes one steering policy over the suite.
type PolicyPoint struct {
	// Label names the policy.
	Label string
	// SlowdownPct is the average slowdown vs OP.
	SlowdownPct float64
	// CopiesPerKuop is the average copy rate.
	CopiesPerKuop float64
	// DependenceLogic marks policies needing the location table + vote
	// unit (the Table 1 complexity class).
	DependenceLogic bool
}

// PolicySpaceResult is the extension experiment: every hardware steering
// heuristic the paper surveys (§3.1) plus the hybrid, on one chart. It
// quantifies the claim that dependence-aware steering needs the expensive
// serialized logic (OP, ADV) while cheap heuristics (LC, SLC, MOD)
// pay in copies or balance — and that VC reaches OP-class performance in
// the cheap-logic class.
type PolicySpaceResult struct {
	Points []PolicyPoint
}

// PolicySpace runs the policy survey on the 2-cluster machine.
func PolicySpace(opt Options) (*PolicySpaceResult, error) {
	opt = opt.withDefaults()
	sps := opt.suite()
	policySetups := []struct {
		setup    sim.Setup
		depLogic bool
	}{
		{sim.SetupOP(2), true},
		{setupPolicy("OP-nostall", func() steer.Policy { return &steer.OP{NoStall: true} }), true},
		{setupPolicy("ADV", func() steer.Policy { return &steer.DependenceBalanced{} }), true},
		{setupPolicy("LC", func() steer.Policy { return &steer.LeastLoaded{} }), false},
		{setupPolicy("SLC", func() steer.Policy { return &steer.Slice{} }), false},
		{setupPolicy("MOD", func() steer.Policy { return &steer.ModN{} }), false},
		{sim.SetupVC(2, 2), false},
	}
	setups := make([]sim.Setup, len(policySetups))
	for i, ps := range policySetups {
		setups[i] = ps.setup
	}
	res, err := opt.matrix(sps, setups, opt.runOpts())
	if err != nil {
		return nil, err
	}
	out := &PolicySpaceResult{}
	for j, ps := range policySetups {
		var slow []float64
		var copies, uops int64
		for i := range sps {
			slow = append(slow, stats.SlowdownPct(res[i][j].Metrics.Cycles, res[i][0].Metrics.Cycles))
			copies += res[i][j].Metrics.Copies
			uops += res[i][j].Metrics.Uops
		}
		out.Points = append(out.Points, PolicyPoint{
			Label:           ps.setup.Label,
			SlowdownPct:     BenchAverage(sps, slow, nil),
			CopiesPerKuop:   float64(copies) * 1000 / float64(uops),
			DependenceLogic: ps.depLogic,
		})
	}
	return out, nil
}

// setupPolicy wraps a bare runtime policy (no compiler pass) as a Setup.
func setupPolicy(label string, newPolicy func() steer.Policy) sim.Setup {
	return sim.Setup{Label: label, NumClusters: 2, NewPolicy: newPolicy}
}

// Render produces the survey table.
func (r *PolicySpaceResult) Render() string {
	var b strings.Builder
	b.WriteString(section("Policy space: hardware steering heuristics (2 clusters, slowdown vs OP)"))
	tab := stats.NewTable("policy", "slowdown vs OP (%)", "copies/kuop", "needs dependence logic")
	for _, pt := range r.Points {
		dep := "no"
		if pt.DependenceLogic {
			dep = "yes"
		}
		tab.Row(pt.Label, pt.SlowdownPct, pt.CopiesPerKuop, dep)
	}
	b.WriteString(tab.String())
	b.WriteString(`
Reading: the dependence-aware policies (OP, ADV) need the serialized
location-table/vote logic of Table 1; the cheap heuristics (LC, SLC, MOD)
avoid it but pay in copies or balance. VC reaches the dependence-aware
class's performance with cheap-class hardware — the paper's thesis.
`)
	return b.String()
}
