package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func fakeFig5() *Fig5Result {
	return &Fig5Result{
		Rows: []Fig5Row{
			{Name: "gzip-1", Bench: "gzip", FP: false, Weight: 0.5, OPIPC: 1.5,
				SlowdownPct: map[string]float64{"one-cluster": 12, "OB": 6, "RHOP": 5, "VC": 2}},
			{Name: "swim", Bench: "swim", FP: true, Weight: 1, OPIPC: 2.0,
				SlowdownPct: map[string]float64{"one-cluster": 9, "OB": 7, "RHOP": 4, "VC": 1}},
		},
		IntAvg: map[string]float64{"VC": 2},
		FPAvg:  map[string]float64{"VC": 1},
		AllAvg: map[string]float64{"VC": 1.5},
	}
}

func TestFig5CSV(t *testing.T) {
	csv := fakeFig5().CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d, want 3", len(lines))
	}
	if !strings.HasPrefix(lines[0], "simpoint,bench,class,weight,op_ipc") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "gzip-1,gzip,int,0.500000,1.5000") {
		t.Errorf("row = %q", lines[1])
	}
	if !strings.Contains(lines[2], ",fp,") {
		t.Errorf("fp row = %q", lines[2])
	}
	for _, line := range lines[1:] {
		if got := strings.Count(line, ","); got != strings.Count(lines[0], ",") {
			t.Errorf("column count mismatch: %q", line)
		}
	}
}

func TestFig6CSV(t *testing.T) {
	r := &Fig6Result{Panels: []Fig6Panel{{
		Versus: "OB",
		Points: []Fig6Point{{Name: "mcf", SpeedupPct: 3, CopyReductionPct: 40, BalanceImprovementPct: -5}},
	}}}
	csv := r.CSV()
	if !strings.Contains(csv, "OB,mcf,3.0000,40.0000,-5.0000") {
		t.Errorf("csv:\n%s", csv)
	}
}

func TestFig7CSVNameSanitization(t *testing.T) {
	r := &Fig7Result{Rows: []Fig7Row{{
		Name: "apsi", Bench: "apsi", FP: true, Weight: 1,
		SlowdownPct: map[string]float64{"OB": 1, "RHOP": 2, "VC": 3, "VC(2->4)": 4},
	}}}
	csv := r.CSV()
	if strings.Contains(csv, "(") || strings.Contains(csv, ">") {
		t.Errorf("unsanitized header:\n%s", csv)
	}
	if !strings.Contains(csv, "VC2to4_slowdown_pct") {
		t.Errorf("csv header:\n%s", csv)
	}
}

func TestAblationCSV(t *testing.T) {
	r := &AblationResult{
		Name: "x", Axis: "cap",
		Points: []AblationPoint{{Label: "chain<=8", SlowdownPct: 1.5, CopiesPerKuop: 88}},
	}
	if !strings.Contains(r.CSV(), "chain<=8,1.5000,88.0000") {
		t.Errorf("csv:\n%s", r.CSV())
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, fakeFig5()); err != nil {
		t.Fatal(err)
	}
	var back Fig5Result
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Rows) != 2 || back.Rows[0].Name != "gzip-1" {
		t.Errorf("round trip lost data: %+v", back)
	}
	if back.AllAvg["VC"] != 1.5 {
		t.Errorf("averages lost: %+v", back.AllAvg)
	}
}
