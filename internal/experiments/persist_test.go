package experiments

import (
	"testing"

	"clustersim/internal/engine"
	"clustersim/internal/store"
)

// Running the same experiment twice against a shared cache directory must
// produce a byte-identical report, with the second run served almost
// entirely (>= 90%) from the persistent result store — the repo's
// persistence acceptance bar.
func TestExperimentRepeatServedFromDiskStore(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment repeat; skipped in -short")
	}
	dir := t.TempDir()
	run := func() (string, engine.CacheStats) {
		disk, err := store.OpenDisk(dir, 0)
		if err != nil {
			t.Fatal(err)
		}
		// A fresh engine per run stands in for a fresh process: nothing
		// survives in memory, only the disk store.
		eng := engine.New(engine.Options{ResultStore: disk})
		r, err := Fig5(Options{NumUops: 6000, Quick: true, Engine: eng})
		if err != nil {
			t.Fatal(err)
		}
		return r.Render(), eng.Stats()
	}

	report1, st1 := run()
	if st1.Simulations == 0 || st1.StoreHits != 0 {
		t.Fatalf("first run: %+v", st1)
	}
	report2, st2 := run()
	if report1 != report2 {
		t.Error("repeated run's report is not byte-identical")
	}
	lookups := st2.StoreHits + st2.StoreMisses
	if lookups == 0 || float64(st2.StoreHits) < 0.9*float64(lookups) {
		t.Errorf("second run: %d/%d whole-result lookups served by the store, below 90%%", st2.StoreHits, lookups)
	}
	if st2.Simulations != 0 {
		t.Errorf("second run still simulated %d jobs", st2.Simulations)
	}
}

// The CacheDir option (the -cachedir path: no explicit engine) populates
// a reusable store and reproduces the identical report.
func TestOptionsCacheDir(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment repeat; skipped in -short")
	}
	dir := t.TempDir()
	opt := Options{NumUops: 4000, Quick: true, CacheDir: dir}
	r1, err := Table1(opt)
	if err != nil {
		t.Fatal(err)
	}
	disk, err := store.OpenDisk(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st := disk.Stats(); st.Entries == 0 {
		t.Fatalf("CacheDir left the store empty: %+v", st)
	}
	r2, err := Table1(opt)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Render() != r2.Render() {
		t.Error("CacheDir repeat changed the report")
	}
}
