package experiments

import (
	"fmt"
	"strings"

	"clustersim/internal/interconnect"
	"clustersim/internal/pipeline"
	"clustersim/internal/sim"
	"clustersim/internal/stats"
)

// AblationPoint is one configuration of a sweep.
type AblationPoint struct {
	// Label names the swept value ("chain=16", "latency=4"…).
	Label string
	// SlowdownPct is the average slowdown vs that sweep's OP baseline.
	SlowdownPct float64
	// CopiesPerKuop is the average copy rate.
	CopiesPerKuop float64
}

// AblationResult is one sweep.
type AblationResult struct {
	// Name identifies the sweep; Axis describes the swept knob.
	Name, Axis string
	Points     []AblationPoint
}

// Render produces the sweep table.
func (r *AblationResult) Render() string {
	var b strings.Builder
	b.WriteString(section("Ablation: " + r.Name))
	tab := stats.NewTable(r.Axis, "slowdown vs OP (%)", "copies/kuop")
	for _, pt := range r.Points {
		tab.Row(pt.Label, pt.SlowdownPct, pt.CopiesPerKuop)
	}
	b.WriteString(tab.String())
	return b.String()
}

// sweepVC runs OP plus a list of VC-variant setups over the suite and
// aggregates average slowdown and copy rate per variant. The sweep name
// doubles as the engine's tweak key, so tweaked runs are cached per sweep
// and untweaked sweeps share the global untweaked results.
func sweepVC(opt Options, name, axis string, variants []sim.Setup, labels []string,
	tweak func(*pipeline.Config)) (*AblationResult, error) {
	opt = opt.withDefaults()
	sps := opt.suite()
	setups := append([]sim.Setup{sim.SetupOP(variants[0].NumClusters)}, variants...)
	runOpts := opt.runOpts()
	if tweak != nil {
		runOpts.MachineTweak = tweak
		runOpts.TweakKey = name
	}
	res, err := opt.matrix(sps, setups, runOpts)
	if err != nil {
		return nil, err
	}
	out := &AblationResult{Name: name, Axis: axis}
	for j := 1; j < len(setups); j++ {
		var slow []float64
		var copies, uops int64
		for i := range sps {
			slow = append(slow, stats.SlowdownPct(res[i][j].Metrics.Cycles, res[i][0].Metrics.Cycles))
			copies += res[i][j].Metrics.Copies
			uops += res[i][j].Metrics.Uops
		}
		out.Points = append(out.Points, AblationPoint{
			Label:         labels[j-1],
			SlowdownPct:   BenchAverage(sps, slow, nil),
			CopiesPerKuop: float64(copies) * 1000 / float64(uops),
		})
	}
	return out, nil
}

// AblationChainLen sweeps the chain-length cap of the VC partitioner: the
// knob trading mapping staleness (long chains) against chain stability
// (short chains). DESIGN.md calls this out as the paper's "selection of
// chains" sensitivity (§4.2).
func AblationChainLen(opt Options) (*AblationResult, error) {
	caps := []int{4, 8, 16, 32, 64}
	var variants []sim.Setup
	var labels []string
	for _, c := range caps {
		variants = append(variants, sim.SetupVCChain(2, 2, c))
		labels = append(labels, fmt.Sprintf("chain<=%d", c))
	}
	return sweepVC(opt, "VC chain-length cap (2 clusters)", "cap", variants, labels, nil)
}

// AblationNumVC sweeps the virtual-cluster count on the 4-cluster machine
// (the paper's VC(2→4) vs VC(4→4) comparison, §5.4, extended).
func AblationNumVC(opt Options) (*AblationResult, error) {
	nums := []int{2, 3, 4, 8}
	var variants []sim.Setup
	var labels []string
	for _, n := range nums {
		variants = append(variants, sim.SetupVC(n, 4))
		labels = append(labels, fmt.Sprintf("numVC=%d", n))
	}
	return sweepVC(opt, "virtual-cluster count (4 clusters)", "numVC", variants, labels, nil)
}

// AblationLinkLatency sweeps the inter-cluster link latency under VC: the
// value of keeping chains together grows with communication cost.
func AblationLinkLatency(opt Options) ([]*AblationResult, error) {
	opt = opt.withDefaults() // one engine across the sweep's sub-runs
	var out []*AblationResult
	for _, lat := range []int{1, 2, 4, 8} {
		lat := lat
		r, err := sweepVC(opt,
			fmt.Sprintf("link latency %d cycles (2 clusters)", lat), "config",
			[]sim.Setup{sim.SetupVC(2, 2), sim.SetupOB(2)},
			[]string{"VC", "OB"},
			func(cfg *pipeline.Config) { cfg.Net.Latency = lat })
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// AblationIQSize sweeps per-cluster issue-queue capacity: smaller queues
// make allocation stalls (the workload-balance cost) more frequent.
func AblationIQSize(opt Options) ([]*AblationResult, error) {
	opt = opt.withDefaults()
	var out []*AblationResult
	for _, size := range []int{24, 48, 96} {
		size := size
		r, err := sweepVC(opt,
			fmt.Sprintf("issue queues %d entries (2 clusters)", size), "config",
			[]sim.Setup{sim.SetupVC(2, 2), sim.SetupOneCluster(2)},
			[]string{"VC", "one-cluster"},
			func(cfg *pipeline.Config) {
				cfg.Cluster.IQInt = size
				cfg.Cluster.IQFP = size
			})
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// AblationTopology compares the paper's point-to-point mesh against a
// bidirectional ring on the 4-cluster machine: rings save wiring but make
// far copies slower and contend on shared segments, amplifying the value
// of chain colocation.
func AblationTopology(opt Options) ([]*AblationResult, error) {
	opt = opt.withDefaults()
	var out []*AblationResult
	for _, topo := range []interconnect.Topology{interconnect.TopologyPointToPoint, interconnect.TopologyRing} {
		topo := topo
		r, err := sweepVC(opt,
			fmt.Sprintf("interconnect topology %s (4 clusters)", topo), "config",
			[]sim.Setup{sim.SetupVC(2, 4), sim.SetupOB(4)},
			[]string{"VC(2->4)", "OB"},
			func(cfg *pipeline.Config) { cfg.Net.Topology = topo })
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// AblationVCComm compares the paper's VC mapper against the VC-comm
// extension (communication-aware leader mapping) on 2 and 4 clusters: the
// future-work check of whether two extra rename-table reads per leader buy
// performance.
func AblationVCComm(opt Options) ([]*AblationResult, error) {
	opt = opt.withDefaults()
	var out []*AblationResult
	for _, clusters := range []int{2, 4} {
		r, err := sweepVC(opt,
			fmt.Sprintf("VC-comm extension (%d clusters)", clusters), "config",
			[]sim.Setup{sim.SetupVC(2, clusters), sim.SetupVCComm(2, clusters)},
			[]string{"VC", "VC-comm"}, nil)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// AblationRegionScope sweeps the compiler region size for the three
// software-side schemes: the paper's §3.2 argues software steering's edge
// is the "bigger window of instructions inspected at compile time"; this
// sweep measures how quickly the schemes degrade as that window shrinks.
func AblationRegionScope(opt Options) ([]*AblationResult, error) {
	opt = opt.withDefaults()
	var out []*AblationResult
	for _, scope := range []int{16, 48, 256} {
		variants := []sim.Setup{
			sim.SetupScoped("VC", 2, scope),
			sim.SetupScoped("OB", 2, scope),
			sim.SetupScoped("RHOP", 2, scope),
		}
		labels := []string{"VC", "OB", "RHOP"}
		r, err := sweepVC(opt,
			fmt.Sprintf("compile window %d ops (2 clusters)", scope), "config",
			variants, labels, nil)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// AblationStallOverSteer compares OP against OP-nostall (always divert when
// the preferred cluster is full), quantifying the stalling heuristic the
// paper adopts from [15] and [24].
func AblationStallOverSteer(opt Options) (*AblationResult, error) {
	return sweepVC(opt, "stall-over-steer (2 clusters)", "config",
		[]sim.Setup{sim.SetupOPNoStall(2), sim.SetupVC(2, 2)},
		[]string{"OP-nostall", "VC"}, nil)
}

// AblationCopyBandwidth sweeps the copy issue width and link bandwidth: the
// hybrid scheme's extra copies only stay cheap while copy bandwidth holds.
func AblationCopyBandwidth(opt Options) ([]*AblationResult, error) {
	opt = opt.withDefaults()
	var out []*AblationResult
	for _, bw := range []int{1, 2, 4} {
		bw := bw
		r, err := sweepVC(opt,
			fmt.Sprintf("copy bandwidth %d/cycle (2 clusters)", bw), "config",
			[]sim.Setup{sim.SetupVC(2, 2), sim.SetupOB(2)},
			[]string{"VC", "OB"},
			func(cfg *pipeline.Config) {
				cfg.Cluster.IssueCopy = bw
				cfg.Net.BandwidthPerLink = bw
			})
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// AblationPrefetch sweeps the substrate's stream-prefetch degree under the
// OP baseline, documenting how much of the memory wall the substitute
// prefetcher hides (a substrate validity check, not a paper experiment).
func AblationPrefetch(opt Options) (*AblationResult, error) {
	opt = opt.withDefaults()
	sps := opt.suite()
	degrees := []int{0, 2, 4, 8}
	out := &AblationResult{Name: "stream prefetch degree (substrate check, OP)", Axis: "degree"}
	var base []int64
	for di, d := range degrees {
		d := d
		runOpts := opt.runOpts()
		runOpts.MachineTweak = func(cfg *pipeline.Config) {
			cfg.Mem.PrefetchDegree = d // 0 disables prefetching entirely
		}
		runOpts.TweakKey = fmt.Sprintf("prefetch-degree=%d", d)
		res, err := opt.matrix(sps, []sim.Setup{sim.SetupOP(2)}, runOpts)
		if err != nil {
			return nil, err
		}
		var slow []float64
		var copies, uops int64
		for i := range sps {
			if di == 0 {
				base = append(base, res[i][0].Metrics.Cycles)
			}
			slow = append(slow, stats.SlowdownPct(res[i][0].Metrics.Cycles, base[i]))
			copies += res[i][0].Metrics.Copies
			uops += res[i][0].Metrics.Uops
		}
		out.Points = append(out.Points, AblationPoint{
			Label:         fmt.Sprintf("degree=%d", d),
			SlowdownPct:   BenchAverage(sps, slow, nil),
			CopiesPerKuop: float64(copies) * 1000 / float64(uops),
		})
	}
	return out, nil
}
