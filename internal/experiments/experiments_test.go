package experiments

import (
	"strings"
	"testing"

	"clustersim/internal/workload"
)

// quickOpt shrinks runs so the whole experiment suite stays test-sized.
func quickOpt() Options { return Options{NumUops: 8000, Quick: true} }

func TestFig5QualitativeShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs are slow")
	}
	r, err := Fig5(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != len(workload.QuickSuite()) {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Paper shape: one-cluster is the worst; VC beats both software-only
	// schemes; VC stays close to OP (< 5% average).
	if r.AllAvg["one-cluster"] < r.AllAvg["VC"] {
		t.Errorf("one-cluster (%.2f%%) should be worse than VC (%.2f%%)",
			r.AllAvg["one-cluster"], r.AllAvg["VC"])
	}
	if r.AllAvg["VC"] > r.AllAvg["OB"] || r.AllAvg["VC"] > r.AllAvg["RHOP"] {
		t.Errorf("VC (%.2f%%) should beat OB (%.2f%%) and RHOP (%.2f%%)",
			r.AllAvg["VC"], r.AllAvg["OB"], r.AllAvg["RHOP"])
	}
	if r.AllAvg["VC"] > 5 {
		t.Errorf("VC average slowdown %.2f%%, want < 5%% (paper: 2.62%%)", r.AllAvg["VC"])
	}
	if r.AllAvg["one-cluster"] < 5 {
		t.Errorf("one-cluster average %.2f%%, want > 5%% (paper: 12.19%%)", r.AllAvg["one-cluster"])
	}
	text := r.Render()
	for _, want := range []string{"Figure 5", "SPECint", "SPECfp", "one-cluster", "VC", "CPU2000 AVG"} {
		if !strings.Contains(text, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestFig6QualitativeShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs are slow")
	}
	r, err := Fig6(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Panels) != 3 {
		t.Fatalf("panels = %d, want 3", len(r.Panels))
	}
	byRef := map[string]Fig6Panel{}
	for _, p := range r.Panels {
		byRef[p.Versus] = p
	}
	// Paper shape: VC reduces copies vs OB and RHOP for most traces; vs OP
	// it generates MORE copies for most traces.
	if byRef["OB"].CopyReducedFrac < 0.5 {
		t.Errorf("VC reduced copies vs OB on only %.0f%% of traces",
			byRef["OB"].CopyReducedFrac*100)
	}
	if byRef["RHOP"].CopyReducedFrac > 0.6 {
		// RHOP generates few copies in our reproduction too; VC mostly
		// pays copies for its runtime balance (see EXPERIMENTS.md).
		t.Logf("note: VC reduced copies vs RHOP on %.0f%% of traces",
			byRef["RHOP"].CopyReducedFrac*100)
	}
	if byRef["OP"].CopyReducedFrac > 0.5 {
		t.Errorf("VC should generate MORE copies than OP on most traces; reduced on %.0f%%",
			byRef["OP"].CopyReducedFrac*100)
	}
	text := r.Render()
	if !strings.Contains(text, "VC vs OB") || !strings.Contains(text, "VC vs OP") {
		t.Error("render missing panels")
	}
}

func TestFig7QualitativeShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs are slow")
	}
	r, err := Fig7(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	// Paper shape: VC(2→4) performs significantly better than OB and RHOP.
	if r.AllAvg["VC(2->4)"] > r.AllAvg["OB"] {
		t.Errorf("VC(2->4) (%.2f%%) should beat OB (%.2f%%)",
			r.AllAvg["VC(2->4)"], r.AllAvg["OB"])
	}
	if r.AllAvg["VC(2->4)"] > r.AllAvg["RHOP"] {
		t.Errorf("VC(2->4) (%.2f%%) should beat RHOP (%.2f%%)",
			r.AllAvg["VC(2->4)"], r.AllAvg["RHOP"])
	}
	if r.AllAvg["VC(2->4)"] > 8 {
		t.Errorf("VC(2->4) average %.2f%%, want < 8%% (paper: 3.64%%)", r.AllAvg["VC(2->4)"])
	}
	if r.CopyRatio44vs24 <= 0 {
		t.Error("copy ratio not computed")
	}
	if !strings.Contains(r.Render(), "Figure 7") {
		t.Error("render missing title")
	}
}

func TestTable1Complexity(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs are slow")
	}
	r, err := Table1(Options{NumUops: 3000, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	opU, vcU := r.OP.Units(), r.VC.Units()
	if !opU.DependenceCheck || !opU.VoteUnit {
		t.Error("OP must use dependence check and vote unit")
	}
	if vcU.DependenceCheck || vcU.VoteUnit {
		t.Error("VC must not use dependence check or vote unit")
	}
	if !vcU.MappingTable || !vcU.WorkloadBalance {
		t.Error("VC must use mapping table and workload counters")
	}
	text := r.Render()
	for _, want := range []string{"dependence check", "vote unit", "mapping table", "yes", "no"} {
		if !strings.Contains(text, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestTable2And3Render(t *testing.T) {
	t2 := Table2()
	for _, want := range []string{"48-entry INT", "32KB", "2MB", "500 cycles", "gshare"} {
		if !strings.Contains(t2, want) {
			t.Errorf("Table2 missing %q:\n%s", want, t2)
		}
	}
	t3 := Table3()
	for _, want := range []string{"OP", "one-cluster", "OB", "RHOP", "VC"} {
		if !strings.Contains(t3, want) {
			t.Errorf("Table3 missing %q", want)
		}
	}
}

func TestBenchAverage(t *testing.T) {
	sps := []*workload.Simpoint{
		{Name: "a-1", Bench: "a", Weight: 0.5},
		{Name: "a-2", Bench: "a", Weight: 0.5},
		{Name: "b", Bench: "b", Weight: 1},
	}
	// a averages to (10+20)/2 = 15, b = 30 → mean(15, 30) = 22.5
	got := BenchAverage(sps, []float64{10, 20, 30}, nil)
	if got != 22.5 {
		t.Errorf("BenchAverage = %g, want 22.5", got)
	}
	// Filter to b only.
	got = BenchAverage(sps, []float64{10, 20, 30}, func(sp *workload.Simpoint) bool { return sp.Bench == "b" })
	if got != 30 {
		t.Errorf("filtered BenchAverage = %g, want 30", got)
	}
}

func TestAblationChainLen(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs are slow")
	}
	r, err := AblationChainLen(Options{NumUops: 5000, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 5 {
		t.Fatalf("points = %d, want 5", len(r.Points))
	}
	if !strings.Contains(r.Render(), "chain") {
		t.Error("render missing axis")
	}
}

func TestAblationPrefetchMonotone(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs are slow")
	}
	r, err := AblationPrefetch(Options{NumUops: 5000, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	// degree=0 is the baseline (slowdown 0); higher degrees must speed it
	// up (negative slowdown vs the no-prefetch baseline).
	if r.Points[0].SlowdownPct != 0 {
		t.Errorf("baseline slowdown = %.2f, want 0", r.Points[0].SlowdownPct)
	}
	if r.Points[2].SlowdownPct >= 0 {
		t.Errorf("degree-4 prefetch should be faster than none: %.2f%%", r.Points[2].SlowdownPct)
	}
}

func TestPolicySpaceShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs are slow")
	}
	r, err := PolicySpace(Options{NumUops: 6000, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 7 {
		t.Fatalf("points = %d, want 7", len(r.Points))
	}
	byLabel := map[string]PolicyPoint{}
	for _, pt := range r.Points {
		byLabel[pt.Label] = pt
	}
	// OP is its own baseline.
	if byLabel["OP"].SlowdownPct != 0 {
		t.Errorf("OP self-slowdown = %.2f", byLabel["OP"].SlowdownPct)
	}
	// VC must be competitive with OP and beat the naive cheap heuristics.
	if byLabel["VC"].SlowdownPct > byLabel["MOD"].SlowdownPct {
		t.Errorf("VC (%.2f%%) should beat round-robin (%.2f%%)",
			byLabel["VC"].SlowdownPct, byLabel["MOD"].SlowdownPct)
	}
	// Round-robin generates the most copies of the cheap class.
	if byLabel["MOD"].CopiesPerKuop < byLabel["VC"].CopiesPerKuop {
		t.Errorf("MOD copies (%.1f) should exceed VC (%.1f)",
			byLabel["MOD"].CopiesPerKuop, byLabel["VC"].CopiesPerKuop)
	}
	// Complexity classes recorded correctly.
	if !byLabel["OP"].DependenceLogic || byLabel["VC"].DependenceLogic {
		t.Error("dependence-logic classification wrong")
	}
	if !strings.Contains(r.Render(), "Policy space") {
		t.Error("render missing title")
	}
}

func TestAblationRegionScope(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs are slow")
	}
	rs, err := AblationRegionScope(Options{NumUops: 5000, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 {
		t.Fatalf("sweeps = %d, want 3", len(rs))
	}
	for _, r := range rs {
		if len(r.Points) != 3 {
			t.Errorf("%s: points = %d, want 3 (VC, OB, RHOP)", r.Name, len(r.Points))
		}
	}
}

func TestAblationStallOverSteerAndCopyBandwidth(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs are slow")
	}
	sos, err := AblationStallOverSteer(Options{NumUops: 5000, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(sos.Points) != 2 {
		t.Fatalf("stall-over-steer points = %d", len(sos.Points))
	}
	cbw, err := AblationCopyBandwidth(Options{NumUops: 5000, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(cbw) != 3 {
		t.Fatalf("copy-bandwidth sweeps = %d", len(cbw))
	}
}

func TestAblationVCComm(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs are slow")
	}
	rs, err := AblationVCComm(Options{NumUops: 5000, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Fatalf("sweeps = %d, want 2", len(rs))
	}
	for _, r := range rs {
		if len(r.Points) != 2 {
			t.Errorf("%s: points = %d", r.Name, len(r.Points))
		}
	}
}
