package experiments

import (
	"fmt"
	"strings"

	"clustersim/internal/sim"
	"clustersim/internal/stats"
	"clustersim/internal/workload"
)

// Fig7Configs are the non-baseline configurations of Figure 7.
var Fig7Configs = []string{"OB", "RHOP", "VC", "VC(2->4)"}

// Fig7Row is one simulation point's 4-cluster slowdowns vs OP.
type Fig7Row struct {
	Name   string
	Bench  string
	FP     bool
	Weight float64
	// SlowdownPct maps config label → slowdown% vs the 4-cluster OP.
	SlowdownPct map[string]float64
}

// Fig7Result reproduces Figure 7: scalability to four clusters, including
// the two VC variants VC(4→4) (label "VC") and VC(2→4), plus the §5.4
// copy-count comparison between them.
type Fig7Result struct {
	Rows                  []Fig7Row
	IntAvg, FPAvg, AllAvg map[string]float64
	// CopyRatio44vs24 is total VC(4→4) copies / VC(2→4) copies (the paper
	// reports ≈1.28: 28% more copies with four virtual clusters).
	CopyRatio44vs24 float64
}

// Fig7 runs the 4-cluster configurations. The paper's Figure 7 omits
// applu; the full suite keeps it (one extra FP point does not change the
// averages' character).
func Fig7(opt Options) (*Fig7Result, error) {
	opt = opt.withDefaults()
	sps := opt.suite()
	setups := []sim.Setup{
		sim.SetupOP(4),
		sim.SetupOB(4),
		sim.SetupRHOP(4),
		sim.SetupVC(4, 4),
		sim.SetupVC(2, 4),
	}
	res, err := opt.matrix(sps, setups, opt.runOpts())
	if err != nil {
		return nil, err
	}
	out := &Fig7Result{
		IntAvg: map[string]float64{},
		FPAvg:  map[string]float64{},
		AllAvg: map[string]float64{},
	}
	perConfig := map[string][]float64{}
	var cp44, cp24 int64
	for i, sp := range sps {
		base := res[i][0].Metrics
		row := Fig7Row{
			Name: sp.Name, Bench: sp.Bench, FP: sp.FP, Weight: sp.Weight,
			SlowdownPct: map[string]float64{},
		}
		for j := 1; j < len(setups); j++ {
			label := setups[j].Label
			sl := stats.SlowdownPct(res[i][j].Metrics.Cycles, base.Cycles)
			row.SlowdownPct[label] = sl
			perConfig[label] = append(perConfig[label], sl)
		}
		cp44 += res[i][3].Metrics.Copies
		cp24 += res[i][4].Metrics.Copies
		out.Rows = append(out.Rows, row)
	}
	for _, label := range Fig7Configs {
		vals := perConfig[label]
		out.IntAvg[label] = BenchAverage(sps, vals, func(sp *workload.Simpoint) bool { return !sp.FP })
		out.FPAvg[label] = BenchAverage(sps, vals, func(sp *workload.Simpoint) bool { return sp.FP })
		out.AllAvg[label] = BenchAverage(sps, vals, nil)
	}
	if cp24 > 0 {
		out.CopyRatio44vs24 = float64(cp44) / float64(cp24)
	}
	return out, nil
}

// Render produces the text report (panels a, b, c of Figure 7).
func (r *Fig7Result) Render() string {
	var b strings.Builder
	b.WriteString(section("Figure 7: slowdown vs OP (4-cluster machine)"))
	for _, part := range []struct {
		title string
		fp    bool
	}{{"(a) SPECint 2000", false}, {"(b) SPECfp 2000", true}} {
		fmt.Fprintf(&b, "\n%s\n", part.title)
		tab := stats.NewTable(append([]string{"simpoint"}, Fig7Configs...)...)
		for _, row := range r.Rows {
			if row.FP != part.fp {
				continue
			}
			cells := []any{row.Name}
			for _, cfg := range Fig7Configs {
				cells = append(cells, row.SlowdownPct[cfg])
			}
			tab.Row(cells...)
		}
		b.WriteString(tab.String())
	}
	b.WriteString("\n(c) averages (slowdown % vs OP)\n")
	paper := map[string]float64{"OB": 12.45, "RHOP": 12.69, "VC": 12.96, "VC(2->4)": 3.64}
	tab := stats.NewTable("config", "INT AVG", "FP AVG", "CPU2000 AVG", "paper CPU2000 AVG")
	for _, cfg := range Fig7Configs {
		tab.Row(cfg, r.IntAvg[cfg], r.FPAvg[cfg], r.AllAvg[cfg], paper[cfg])
	}
	b.WriteString(tab.String())
	fmt.Fprintf(&b, "\nVC(4->4) vs VC(2->4) total copies: %.2fx (paper: 1.28x)\n", r.CopyRatio44vs24)
	return b.String()
}
