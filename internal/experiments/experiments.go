// Package experiments regenerates every table and figure of the paper's
// evaluation (§5) on the simulated substrate: Figure 5 (2-cluster slowdowns
// vs the hardware-only OP baseline), Figure 6 (copy-reduction and
// workload-balance scatters), Figure 7 (4-cluster scalability), Tables 1–3,
// and the design-choice ablations called out in DESIGN.md.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"clustersim/internal/sim"
	"clustersim/internal/stats"
	"clustersim/internal/workload"
)

// Options sizes an experiment run.
type Options struct {
	// NumUops is the dynamic trace length per simulation point. Zero means
	// 120000 (the full-fidelity default; the paper's points are 10M, which
	// only stretches the same steady states).
	NumUops int
	// Parallelism bounds concurrent simulations; zero means GOMAXPROCS.
	Parallelism int
	// Quick restricts the suite to eight representative simpoints (tests
	// and smoke runs).
	Quick bool
}

func (o Options) withDefaults() Options {
	if o.NumUops == 0 {
		o.NumUops = 120_000
	}
	return o
}

func (o Options) suite() []*workload.Simpoint {
	if o.Quick {
		return workload.QuickSuite()
	}
	return workload.Suite()
}

func (o Options) runOpts() sim.RunOptions {
	return sim.RunOptions{NumUops: o.NumUops}
}

// BenchAverage computes the per-benchmark PinPoints-weighted value, then
// returns the plain mean over benchmarks — the aggregation behind the
// paper's "INT AVG / FP AVG / CPU2000 AVG" bars.
func BenchAverage(sps []*workload.Simpoint, values []float64, filter func(*workload.Simpoint) bool) float64 {
	perBench := map[string]float64{}
	perBenchW := map[string]float64{}
	var order []string
	for i, sp := range sps {
		if filter != nil && !filter(sp) {
			continue
		}
		if _, seen := perBench[sp.Bench]; !seen {
			order = append(order, sp.Bench)
		}
		perBench[sp.Bench] += values[i] * sp.Weight
		perBenchW[sp.Bench] += sp.Weight
	}
	var xs []float64
	for _, b := range order {
		if perBenchW[b] > 0 {
			xs = append(xs, perBench[b]/perBenchW[b])
		}
	}
	return stats.Mean(xs)
}

// checkErrs returns the first run error in a result matrix.
func checkErrs(res [][]*sim.Result) error {
	for _, row := range res {
		for _, cell := range row {
			if cell.Err != nil {
				return fmt.Errorf("%s/%s: %w", cell.Simpoint.Name, cell.Setup, cell.Err)
			}
		}
	}
	return nil
}

// sortedLabels renders map keys deterministically.
func sortedLabels(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// section renders a report header.
func section(title string) string {
	return fmt.Sprintf("%s\n%s\n", title, strings.Repeat("=", len(title)))
}
