// Package experiments regenerates every table and figure of the paper's
// evaluation (§5) on the simulated substrate: Figure 5 (2-cluster slowdowns
// vs the hardware-only OP baseline), Figure 6 (copy-reduction and
// workload-balance scatters), Figure 7 (4-cluster scalability), Tables 1–3,
// and the design-choice ablations called out in DESIGN.md.
package experiments

import (
	"context"
	"fmt"
	"os"
	"sort"
	"strings"

	"clustersim/internal/engine"
	"clustersim/internal/sim"
	"clustersim/internal/stats"
	"clustersim/internal/store"
	"clustersim/internal/workload"
)

// Options sizes an experiment run.
type Options struct {
	// NumUops is the dynamic trace length per simulation point. Zero means
	// 120000 (the full-fidelity default; the paper's points are 10M, which
	// only stretches the same steady states).
	NumUops int
	// Parallelism bounds concurrent simulations; zero means GOMAXPROCS.
	Parallelism int
	// Quick restricts the suite to eight representative simpoints (tests
	// and smoke runs).
	Quick bool
	// Runner is where the experiment's simulations execute: a local
	// *engine.Engine, a remote client.Runner fanning jobs out to a
	// clusterd fleet, or any other engine.Runner implementation. Nil
	// falls back to Engine, and then to a fresh private engine. The
	// harness itself is execution-agnostic — every run goes through
	// engine.RunMatrixOn over this runner.
	Runner engine.Runner
	// Engine optionally supplies a shared simulation engine. Passing one
	// engine to several experiments (steerbench -exp all) dedups identical
	// (simpoint, setup, options) runs across them — each is simulated
	// exactly once per process. Nil means a fresh private engine per
	// experiment invocation (runs are still cached within it). Ignored
	// when Runner is set.
	Engine *engine.Engine
	// CacheDir, when non-empty and Engine is nil, backs the private
	// engine's result cache with a persistent disk store rooted there, so
	// repeated invocations of the same experiment skip completed
	// simulations entirely. Ignored when Engine is supplied — configure
	// the shared engine's ResultStore instead.
	CacheDir string
	// CacheMaxBytes bounds the CacheDir store's occupancy (oldest results
	// collected first); zero means unbounded.
	CacheMaxBytes int64
	// Context cancels in-flight experiment runs; nil means Background.
	Context context.Context
}

func (o Options) withDefaults() Options {
	if o.NumUops == 0 {
		o.NumUops = 120_000
	}
	if o.Runner == nil {
		if o.Engine == nil {
			var rs store.Store
			if o.CacheDir != "" {
				disk, err := store.OpenDisk(o.CacheDir, o.CacheMaxBytes)
				if err != nil {
					// A broken cache dir degrades to an uncached run; the
					// experiment itself must not fail over it.
					fmt.Fprintf(os.Stderr, "experiments: result cache disabled: %v\n", err)
				} else {
					rs = disk
				}
			}
			o.Engine = engine.New(engine.Options{Parallelism: o.Parallelism, ResultStore: rs})
		}
		o.Runner = o.Engine
	}
	if o.Context == nil {
		o.Context = context.Background()
	}
	return o
}

func (o Options) suite() []*workload.Simpoint {
	if o.Quick {
		return workload.QuickSuite()
	}
	return workload.Suite()
}

func (o Options) runOpts() sim.RunOptions {
	return sim.RunOptions{NumUops: o.NumUops}
}

// matrix fans the (suite × setups) runs through the experiment's runner
// and surfaces cancellation and the first run error.
func (o Options) matrix(sps []*workload.Simpoint, setups []sim.Setup, runOpts sim.RunOptions) ([][]*sim.Result, error) {
	res, err := engine.RunMatrixOn(o.Context, o.Runner, sps, setups, runOpts)
	if err != nil {
		return nil, err
	}
	return res, checkErrs(res)
}

// BenchAverage computes the per-benchmark PinPoints-weighted value, then
// returns the plain mean over benchmarks — the aggregation behind the
// paper's "INT AVG / FP AVG / CPU2000 AVG" bars.
func BenchAverage(sps []*workload.Simpoint, values []float64, filter func(*workload.Simpoint) bool) float64 {
	perBench := map[string]float64{}
	perBenchW := map[string]float64{}
	var order []string
	for i, sp := range sps {
		if filter != nil && !filter(sp) {
			continue
		}
		if _, seen := perBench[sp.Bench]; !seen {
			order = append(order, sp.Bench)
		}
		perBench[sp.Bench] += values[i] * sp.Weight
		perBenchW[sp.Bench] += sp.Weight
	}
	var xs []float64
	for _, b := range order {
		if perBenchW[b] > 0 {
			xs = append(xs, perBench[b]/perBenchW[b])
		}
	}
	return stats.Mean(xs)
}

// checkErrs returns the first run error in a result matrix.
func checkErrs(res [][]*sim.Result) error {
	for _, row := range res {
		for _, cell := range row {
			if cell.Err != nil {
				return fmt.Errorf("%s/%s: %w", cell.Simpoint.Name, cell.Setup, cell.Err)
			}
		}
	}
	return nil
}

// sortedLabels renders map keys deterministically.
func sortedLabels(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// section renders a report header.
func section(title string) string {
	return fmt.Sprintf("%s\n%s\n", title, strings.Repeat("=", len(title)))
}
