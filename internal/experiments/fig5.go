package experiments

import (
	"fmt"
	"strings"

	"clustersim/internal/sim"
	"clustersim/internal/stats"
	"clustersim/internal/workload"
)

// Fig5Configs are the non-baseline configurations of Figure 5, in the
// paper's legend order.
var Fig5Configs = []string{"one-cluster", "OB", "RHOP", "VC"}

// Fig5Row is one simulation point's slowdowns relative to OP.
type Fig5Row struct {
	// Name and FP identify the simpoint; Weight is its PinPoints weight.
	Name   string
	Bench  string
	FP     bool
	Weight float64
	// SlowdownPct maps config label → slowdown% vs OP (positive = slower).
	SlowdownPct map[string]float64
	// OPIPC is the baseline IPC, for context.
	OPIPC float64
}

// Fig5Result reproduces Figure 5: per-simpoint slowdowns on the 2-cluster
// machine (a: SPECint, b: SPECfp) and the averages (c).
type Fig5Result struct {
	Rows []Fig5Row
	// IntAvg, FPAvg, AllAvg map config label → average slowdown% (the
	// paper's headline: one-cluster 12.19, OB 6.50, RHOP 5.40, VC 2.62).
	IntAvg, FPAvg, AllAvg map[string]float64
}

// Fig5 runs the five Table 3 configurations over the suite on the
// 2-cluster machine.
func Fig5(opt Options) (*Fig5Result, error) {
	opt = opt.withDefaults()
	sps := opt.suite()
	setups := []sim.Setup{
		sim.SetupOP(2),
		sim.SetupOneCluster(2),
		sim.SetupOB(2),
		sim.SetupRHOP(2),
		sim.SetupVC(2, 2),
	}
	res, err := opt.matrix(sps, setups, opt.runOpts())
	if err != nil {
		return nil, err
	}
	out := &Fig5Result{
		IntAvg: map[string]float64{},
		FPAvg:  map[string]float64{},
		AllAvg: map[string]float64{},
	}
	perConfig := map[string][]float64{}
	for i, sp := range sps {
		base := res[i][0].Metrics
		row := Fig5Row{
			Name: sp.Name, Bench: sp.Bench, FP: sp.FP, Weight: sp.Weight,
			SlowdownPct: map[string]float64{},
			OPIPC:       base.IPC(),
		}
		for j := 1; j < len(setups); j++ {
			label := setups[j].Label
			sl := stats.SlowdownPct(res[i][j].Metrics.Cycles, base.Cycles)
			row.SlowdownPct[label] = sl
			perConfig[label] = append(perConfig[label], sl)
		}
		out.Rows = append(out.Rows, row)
	}
	for _, label := range Fig5Configs {
		vals := perConfig[label]
		out.IntAvg[label] = BenchAverage(sps, vals, func(sp *workload.Simpoint) bool { return !sp.FP })
		out.FPAvg[label] = BenchAverage(sps, vals, func(sp *workload.Simpoint) bool { return sp.FP })
		out.AllAvg[label] = BenchAverage(sps, vals, nil)
	}
	return out, nil
}

// Render produces the text report (panels a, b, c of Figure 5).
func (r *Fig5Result) Render() string {
	var b strings.Builder
	b.WriteString(section("Figure 5: slowdown vs OP (2-cluster machine)"))
	for _, part := range []struct {
		title string
		fp    bool
	}{{"(a) SPECint 2000", false}, {"(b) SPECfp 2000", true}} {
		fmt.Fprintf(&b, "\n%s\n", part.title)
		tab := stats.NewTable(append([]string{"simpoint"}, append(append([]string{}, Fig5Configs...), "OP IPC")...)...)
		for _, row := range r.Rows {
			if row.FP != part.fp {
				continue
			}
			cells := []any{row.Name}
			for _, cfg := range Fig5Configs {
				cells = append(cells, row.SlowdownPct[cfg])
			}
			cells = append(cells, row.OPIPC)
			tab.Row(cells...)
		}
		b.WriteString(tab.String())
	}
	b.WriteString("\n(c) averages (slowdown % vs OP)\n")
	tab := stats.NewTable("config", "INT AVG", "FP AVG", "CPU2000 AVG", "paper CPU2000 AVG")
	paper := map[string]float64{"one-cluster": 12.19, "OB": 6.50, "RHOP": 5.40, "VC": 2.62}
	for _, cfg := range Fig5Configs {
		tab.Row(cfg, r.IntAvg[cfg], r.FPAvg[cfg], r.AllAvg[cfg], paper[cfg])
	}
	b.WriteString(tab.String())
	return b.String()
}
