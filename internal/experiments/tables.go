package experiments

import (
	"fmt"
	"strings"

	"clustersim/internal/pipeline"
	"clustersim/internal/sim"
	"clustersim/internal/stats"
	"clustersim/internal/steer"
	"clustersim/internal/workload"
)

// Table1Result quantifies the paper's Table 1 complexity comparison by
// running the same workload under the hardware-only OP policy and the
// hybrid VC policy and accounting the steering-logic operations each
// performed.
type Table1Result struct {
	// OP and VC are the per-policy complexity counters.
	OP, VC steer.Complexity
	// Workload names the measured trace set.
	Workload string
}

// Table1 measures steering-logic activity over the quick suite (the counts
// are rates; any workload yields the same qualitative table).
func Table1(opt Options) (*Table1Result, error) {
	opt = opt.withDefaults()
	sps := opt.suite()
	setups := []sim.Setup{sim.SetupOP(2), sim.SetupVC(2, 2)}
	res, err := opt.matrix(sps, setups, opt.runOpts())
	if err != nil {
		return nil, err
	}
	out := &Table1Result{Workload: fmt.Sprintf("%d simpoints: %s", len(sps), suiteNames(sps))}
	for i := range sps {
		out.OP.Add(res[i][0].Complexity)
		out.VC.Add(res[i][1].Complexity)
	}
	return out, nil
}

// Render produces the paper's yes/no unit table plus measured activity
// rates per thousand steered micro-ops.
func (r *Table1Result) Render() string {
	var b strings.Builder
	b.WriteString(section("Table 1: steering complexity — hardware-only OP vs hybrid VC"))
	yn := func(v bool) string {
		if v {
			return "yes"
		}
		return "no"
	}
	opU, vcU := r.OP.Units(), r.VC.Units()
	tab := stats.NewTable("unit", "hardware-only OP", "hybrid VC")
	tab.Row("dependence check", yn(opU.DependenceCheck), yn(vcU.DependenceCheck))
	tab.Row("workload balance management", yn(opU.WorkloadBalance), yn(vcU.WorkloadBalance))
	tab.Row("vote unit", yn(opU.VoteUnit), yn(vcU.VoteUnit))
	tab.Row("VC->PC mapping table", yn(opU.MappingTable), yn(vcU.MappingTable))
	b.WriteString(tab.String())

	b.WriteString("\nMeasured steering-logic activity (operations per 1000 steered micro-ops):\n")
	rates := stats.NewTable("operation", "OP", "VC")
	rates.Row("location-table reads (dependence check)",
		steer.PerKuop(r.OP.DependenceChecks, r.OP.Steered),
		steer.PerKuop(r.VC.DependenceChecks, r.VC.Steered))
	rates.Row("vote evaluations",
		steer.PerKuop(r.OP.VoteOps, r.OP.Steered),
		steer.PerKuop(r.VC.VoteOps, r.VC.Steered))
	rates.Row("serialized same-bundle decisions",
		steer.PerKuop(r.OP.SerializedDecisions, r.OP.Steered),
		steer.PerKuop(r.VC.SerializedDecisions, r.VC.Steered))
	rates.Row("workload counter reads",
		steer.PerKuop(r.OP.CounterReads, r.OP.Steered),
		steer.PerKuop(r.VC.CounterReads, r.VC.Steered))
	rates.Row("mapping-table reads",
		steer.PerKuop(r.OP.MapReads, r.OP.Steered),
		steer.PerKuop(r.VC.MapReads, r.VC.Steered))
	rates.Row("mapping-table writes",
		steer.PerKuop(r.OP.MapWrites, r.OP.Steered),
		steer.PerKuop(r.VC.MapWrites, r.VC.Steered))
	b.WriteString(rates.String())
	fmt.Fprintf(&b, "\nworkload: %s\n", r.Workload)
	return b.String()
}

// Table2 renders the architectural parameters (paper Table 2) from the
// live default configuration, so the report always reflects the simulated
// machine.
func Table2() string {
	cfg := pipeline.DefaultConfig(2)
	var b strings.Builder
	b.WriteString(section("Table 2: architectural parameters"))
	tab := stats.NewTable("parameter", "value")
	tab.Row("fetch", fmt.Sprintf("%d micro-ops/cycle, %d cycle fetch-to-dispatch", cfg.FetchWidth, cfg.FetchToDispatch))
	tab.Row("decode/rename/steer", fmt.Sprintf("%d micro-ops/cycle (3+3), 1 cycle latency", cfg.SteerWidth))
	tab.Row("reorder buffer", fmt.Sprintf("%d entries (256+256), commit %d/cycle (3+3)", cfg.ROBSize, cfg.CommitWidth))
	tab.Row("issue queues (per cluster)", fmt.Sprintf("%d-entry INT %d/cycle, %d-entry FP %d/cycle, %d-entry COPY %d/cycle",
		cfg.Cluster.IQInt, cfg.Cluster.IssueInt, cfg.Cluster.IQFP, cfg.Cluster.IssueFP, cfg.Cluster.IQCopy, cfg.Cluster.IssueCopy))
	tab.Row("register files (per cluster)", fmt.Sprintf("%d INT + %d FP", cfg.Cluster.IntRegs, cfg.Cluster.FPRegs))
	tab.Row("inter-cluster links", fmt.Sprintf("point-to-point, %d cycle latency, %d copy/cycle/direction",
		cfg.Net.Latency, cfg.Net.BandwidthPerLink))
	tab.Row("L1 data cache", fmt.Sprintf("%dKB, %d-way, %d cycle hit, %dR+%dW ports",
		cfg.Mem.L1.SizeBytes>>10, cfg.Mem.L1.Assoc, cfg.Mem.L1.HitLatency, cfg.Mem.L1.ReadPorts, cfg.Mem.L1.WritePorts))
	tab.Row("load/store queue", fmt.Sprintf("%d entries, unified", cfg.LSQSize))
	tab.Row("L2 unified cache", fmt.Sprintf("%dMB, %d-way, %d cycle hit",
		cfg.Mem.L2.SizeBytes>>20, cfg.Mem.L2.Assoc, cfg.Mem.L2.HitLatency))
	tab.Row("memory", fmt.Sprintf("%d cycles, %d MSHRs, degree-%d tagged stream prefetcher",
		cfg.Mem.MemLatency, cfg.Mem.MSHRs, cfg.Mem.PrefetchDegree))
	tab.Row("branch predictor", fmt.Sprintf("gshare, %d-bit index", cfg.BPredBits))
	b.WriteString(tab.String())
	return b.String()
}

// Table3 renders the evaluated configurations (paper Table 3).
func Table3() string {
	var b strings.Builder
	b.WriteString(section("Table 3: evaluated configurations"))
	tab := stats.NewTable("configuration", "description")
	tab.Row("OP", "occupancy-aware hardware-only steering [González et al. 2004] — baseline")
	tab.Row("one-cluster", "every micro-op steered to one physical cluster")
	tab.Row("OB", "static-placement dynamic-issue operation-based steering [Nagarajan et al. 2004]")
	tab.Row("RHOP", "region-based hierarchical operation partitioning [Chu et al. 2003]")
	tab.Row("VC", "this paper: hybrid steering via virtual clusters")
	b.WriteString(tab.String())
	return b.String()
}

// suiteNames lists suite membership for reports.
func suiteNames(sps []*workload.Simpoint) string {
	names := make([]string, len(sps))
	for i, sp := range sps {
		names[i] = sp.Name
	}
	return strings.Join(names, ", ")
}
