package experiments

import (
	"fmt"
	"strings"

	"clustersim/internal/sim"
	"clustersim/internal/stats"
)

// Fig6Point is one trace's comparison of VC against a reference
// configuration (the paper plots one point per PinPoints trace).
type Fig6Point struct {
	// Name is the simpoint.
	Name string
	// SpeedupPct is VC's speedup over the reference (x axis).
	SpeedupPct float64
	// CopyReductionPct is the reduction in copy micro-ops VC achieves
	// (y axis of panels a.*).
	CopyReductionPct float64
	// BalanceImprovementPct is the reduction in issue-queue allocation
	// stalls (y axis of panels b.*; the paper's workload-balance metric).
	BalanceImprovementPct float64
}

// Fig6Panel compares VC with one reference configuration.
type Fig6Panel struct {
	// Versus is the reference label ("OB", "RHOP", "OP").
	Versus string
	Points []Fig6Point
	// CopyReducedFrac is the fraction of traces where VC reduced copies;
	// BalanceImprovedFrac likewise for allocation stalls.
	CopyReducedFrac, BalanceImprovedFrac float64
}

// Fig6Result reproduces Figure 6's three comparisons on the 2-cluster
// machine: VC vs OB (a.1/b.1), VC vs RHOP (a.2/b.2), VC vs OP (a.3/b.3).
type Fig6Result struct {
	Panels []Fig6Panel
}

// Fig6 runs VC against OB, RHOP and OP per trace.
func Fig6(opt Options) (*Fig6Result, error) {
	opt = opt.withDefaults()
	sps := opt.suite()
	setups := []sim.Setup{
		sim.SetupVC(2, 2), // index 0: the subject
		sim.SetupOB(2),
		sim.SetupRHOP(2),
		sim.SetupOP(2),
	}
	res, err := opt.matrix(sps, setups, opt.runOpts())
	if err != nil {
		return nil, err
	}
	out := &Fig6Result{}
	for ref := 1; ref < len(setups); ref++ {
		panel := Fig6Panel{Versus: setups[ref].Label}
		reduced, improved := 0, 0
		for i, sp := range sps {
			vc := res[i][0].Metrics
			other := res[i][ref].Metrics
			pt := Fig6Point{
				Name:             sp.Name,
				SpeedupPct:       stats.SpeedupPct(vc.Cycles, other.Cycles),
				CopyReductionPct: stats.ReductionPct(float64(vc.Copies), float64(other.Copies)),
				BalanceImprovementPct: stats.ReductionPct(
					float64(vc.AllocStallCycles), float64(other.AllocStallCycles)),
			}
			if pt.CopyReductionPct > 0 {
				reduced++
			}
			if pt.BalanceImprovementPct > 0 {
				improved++
			}
			panel.Points = append(panel.Points, pt)
		}
		if n := len(panel.Points); n > 0 {
			panel.CopyReducedFrac = float64(reduced) / float64(n)
			panel.BalanceImprovedFrac = float64(improved) / float64(n)
		}
		out.Panels = append(out.Panels, panel)
	}
	return out, nil
}

// Render produces the six scatter panels plus quadrant summaries.
func (r *Fig6Result) Render() string {
	var b strings.Builder
	b.WriteString(section("Figure 6: VC vs OB/RHOP/OP — copy reduction and workload balance"))
	for _, panel := range r.Panels {
		copySc := stats.NewScatter(
			fmt.Sprintf("(a) VC vs %s", panel.Versus), "speedup (%)", "copy reduction (%)")
		balSc := stats.NewScatter(
			fmt.Sprintf("(b) VC vs %s", panel.Versus), "speedup (%)", "workload balance improvement (%)")
		for _, pt := range panel.Points {
			copySc.Add(pt.SpeedupPct, pt.CopyReductionPct)
			balSc.Add(pt.SpeedupPct, pt.BalanceImprovementPct)
		}
		b.WriteByte('\n')
		b.WriteString(copySc.String())
		b.WriteByte('\n')
		b.WriteString(balSc.String())
		fmt.Fprintf(&b, "VC reduces copies on %.0f%% of traces, improves balance on %.0f%% (vs %s)\n",
			panel.CopyReducedFrac*100, panel.BalanceImprovedFrac*100, panel.Versus)
	}
	b.WriteString(`
Paper's reading: VC reduces copies and improves balance vs OB for most
traces (a.1/b.1); vs RHOP it wins on copies while often losing balance
(a.2/b.2); vs OP it wins balance but generates more copies (a.3/b.3).
`)
	return b.String()
}
