package uarch

import (
	"testing"
	"testing/quick"
)

func TestOpcodeClasses(t *testing.T) {
	cases := []struct {
		op   Opcode
		want Class
	}{
		{OpNop, ClassInt},
		{OpAdd, ClassInt},
		{OpShift, ClassInt},
		{OpMul, ClassInt},
		{OpDiv, ClassInt},
		{OpLea, ClassInt},
		{OpFAdd, ClassFP},
		{OpFMul, ClassFP},
		{OpFDiv, ClassFP},
		{OpFMov, ClassFP},
		{OpLoad, ClassLoad},
		{OpStore, ClassStore},
		{OpBranch, ClassBranch},
		{OpJump, ClassBranch},
		{OpCopy, ClassCopy},
	}
	for _, c := range cases {
		if got := c.op.Class(); got != c.want {
			t.Errorf("%v.Class() = %v, want %v", c.op, got, c.want)
		}
	}
}

func TestEveryOpcodeHasPositiveLatency(t *testing.T) {
	for op := Opcode(0); op < NumOpcodes; op++ {
		if op.Latency() <= 0 {
			t.Errorf("%v.Latency() = %d, want > 0", op, op.Latency())
		}
	}
}

func TestEveryOpcodeHasName(t *testing.T) {
	seen := map[string]Opcode{}
	for op := Opcode(0); op < NumOpcodes; op++ {
		name := op.String()
		if name == "" {
			t.Fatalf("opcode %d has empty name", op)
		}
		if prev, dup := seen[name]; dup {
			t.Errorf("opcodes %d and %d share name %q", prev, op, name)
		}
		seen[name] = op
	}
}

func TestMemAndBranchPredicates(t *testing.T) {
	for op := Opcode(0); op < NumOpcodes; op++ {
		wantMem := op == OpLoad || op == OpStore
		if op.IsMem() != wantMem {
			t.Errorf("%v.IsMem() = %v, want %v", op, op.IsMem(), wantMem)
		}
		wantBr := op == OpBranch || op == OpJump
		if op.IsBranch() != wantBr {
			t.Errorf("%v.IsBranch() = %v, want %v", op, op.IsBranch(), wantBr)
		}
	}
}

func TestDividesAreUnpipelined(t *testing.T) {
	for op := Opcode(0); op < NumOpcodes; op++ {
		want := op != OpDiv && op != OpFDiv
		if op.Pipelined() != want {
			t.Errorf("%v.Pipelined() = %v, want %v", op, op.Pipelined(), want)
		}
	}
}

func TestRegisterBanks(t *testing.T) {
	for i := 0; i < NumIntRegs; i++ {
		r := IntReg(i)
		if !r.Valid() || r.IsFP() {
			t.Errorf("IntReg(%d) = %v: Valid=%v IsFP=%v", i, r, r.Valid(), r.IsFP())
		}
	}
	for i := 0; i < NumFPRegs; i++ {
		r := FPReg(i)
		if !r.Valid() || !r.IsFP() {
			t.Errorf("FPReg(%d) = %v: Valid=%v IsFP=%v", i, r, r.Valid(), r.IsFP())
		}
	}
	if RegNone.Valid() {
		t.Error("RegNone must not be valid")
	}
}

func TestRegisterStrings(t *testing.T) {
	if got := IntReg(3).String(); got != "r3" {
		t.Errorf("IntReg(3).String() = %q, want r3", got)
	}
	if got := FPReg(7).String(); got != "f7" {
		t.Errorf("FPReg(7).String() = %q, want f7", got)
	}
	if got := RegNone.String(); got != "-" {
		t.Errorf("RegNone.String() = %q, want -", got)
	}
}

func TestIntRegPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("IntReg(NumIntRegs) should panic")
		}
	}()
	IntReg(NumIntRegs)
}

func TestFPRegPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("FPReg(-1) should panic")
		}
	}()
	FPReg(-1)
}

// Property: register string rendering is injective over the valid range.
func TestRegStringInjective(t *testing.T) {
	f := func(a, b uint8) bool {
		ra := Reg(int(a) % NumRegs)
		rb := Reg(int(b) % NumRegs)
		if ra != rb && ra.String() == rb.String() {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
