// Package uarch defines the micro-operation model shared by the compiler
// side and the hardware side of the simulator: operation classes, opcodes,
// architectural registers and execution latencies.
//
// The model is an x86-like micro-op ISA in the spirit of the paper's
// clustered IA32 backend: instructions are already cracked into micro-ops
// with at most two register sources and one register destination, plus an
// optional memory access.
package uarch

import "fmt"

// Class is the coarse execution class of a micro-op. It determines which
// issue queue the micro-op occupies and which functional unit executes it.
type Class uint8

const (
	// ClassInt covers simple and complex integer ALU operations.
	ClassInt Class = iota
	// ClassFP covers floating-point arithmetic.
	ClassFP
	// ClassLoad covers memory loads (address generation + cache access).
	ClassLoad
	// ClassStore covers memory stores (address generation; data written at
	// commit).
	ClassStore
	// ClassBranch covers conditional and unconditional control transfers.
	ClassBranch
	// ClassCopy is the explicit inter-cluster register copy micro-op
	// inserted by the steering hardware; it never appears in programs.
	ClassCopy

	// NumClasses is the number of distinct micro-op classes.
	NumClasses = 6
)

// String returns the lower-case mnemonic of the class.
func (c Class) String() string {
	switch c {
	case ClassInt:
		return "int"
	case ClassFP:
		return "fp"
	case ClassLoad:
		return "load"
	case ClassStore:
		return "store"
	case ClassBranch:
		return "branch"
	case ClassCopy:
		return "copy"
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// Opcode identifies a specific micro-operation. Opcodes exist so latencies
// can differ within a class (e.g. add vs mul vs div).
type Opcode uint8

const (
	// OpNop does nothing; it still occupies a slot.
	OpNop Opcode = iota
	// OpAdd is integer add/sub/logic (1 cycle).
	OpAdd
	// OpShift is integer shift/rotate (1 cycle).
	OpShift
	// OpMul is integer multiply (3 cycles).
	OpMul
	// OpDiv is integer divide (20 cycles, unpipelined).
	OpDiv
	// OpLea is address arithmetic (1 cycle).
	OpLea
	// OpFAdd is FP add/sub (3 cycles).
	OpFAdd
	// OpFMul is FP multiply (4 cycles).
	OpFMul
	// OpFDiv is FP divide (16 cycles, unpipelined).
	OpFDiv
	// OpFMov is FP move/convert (1 cycle).
	OpFMov
	// OpLoad is a memory load.
	OpLoad
	// OpStore is a memory store.
	OpStore
	// OpBranch is a conditional branch.
	OpBranch
	// OpJump is an unconditional jump (always correctly predicted).
	OpJump
	// OpCopy is the inter-cluster copy micro-op.
	OpCopy

	// NumOpcodes is the number of distinct opcodes.
	NumOpcodes = 15
)

var opcodeNames = [NumOpcodes]string{
	"nop", "add", "shift", "mul", "div", "lea",
	"fadd", "fmul", "fdiv", "fmov",
	"load", "store", "branch", "jump", "copy",
}

// String returns the mnemonic of the opcode.
func (o Opcode) String() string {
	if int(o) < len(opcodeNames) {
		return opcodeNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Class returns the execution class of the opcode.
func (o Opcode) Class() Class {
	switch o {
	case OpNop, OpAdd, OpShift, OpMul, OpDiv, OpLea:
		return ClassInt
	case OpFAdd, OpFMul, OpFDiv, OpFMov:
		return ClassFP
	case OpLoad:
		return ClassLoad
	case OpStore:
		return ClassStore
	case OpBranch, OpJump:
		return ClassBranch
	case OpCopy:
		return ClassCopy
	}
	return ClassInt
}

// IsMem reports whether the opcode accesses memory.
func (o Opcode) IsMem() bool { return o == OpLoad || o == OpStore }

// IsBranch reports whether the opcode is a control transfer.
func (o Opcode) IsBranch() bool { return o == OpBranch || o == OpJump }

// Latency returns the execution latency of the opcode in cycles, excluding
// any cache access time for memory operations (the cache model adds that).
func (o Opcode) Latency() int {
	switch o {
	case OpNop, OpAdd, OpShift, OpLea, OpFMov, OpCopy:
		return 1
	case OpMul, OpFAdd:
		return 3
	case OpFMul:
		return 4
	case OpDiv:
		return 20
	case OpFDiv:
		return 16
	case OpLoad, OpStore:
		return 1 // address generation; cache adds the rest
	case OpBranch, OpJump:
		return 1
	}
	return 1
}

// Pipelined reports whether the functional unit executing the opcode accepts
// a new operation every cycle. Divides are unpipelined.
func (o Opcode) Pipelined() bool { return o != OpDiv && o != OpFDiv }
