package uarch

import "fmt"

// Reg is an architectural register identifier. The register file is split in
// two banks: integer registers [0, NumIntRegs) and floating-point registers
// [NumIntRegs, NumIntRegs+NumFPRegs). RegNone marks an absent operand.
type Reg int16

const (
	// RegNone marks an unused operand slot.
	RegNone Reg = -1

	// NumIntRegs is the number of architectural integer registers. The
	// paper's machine is IA32 (8 GPRs); we use 16 so synthetic programs can
	// express more named values, as micro-op cracking and compiler temps do
	// in practice.
	NumIntRegs = 16
	// NumFPRegs is the number of architectural floating-point registers.
	NumFPRegs = 16
	// NumRegs is the total architectural register count.
	NumRegs = NumIntRegs + NumFPRegs
)

// IntReg returns the i-th integer architectural register.
func IntReg(i int) Reg {
	if i < 0 || i >= NumIntRegs {
		panic(fmt.Sprintf("uarch: integer register %d out of range", i))
	}
	return Reg(i)
}

// FPReg returns the i-th floating-point architectural register.
func FPReg(i int) Reg {
	if i < 0 || i >= NumFPRegs {
		panic(fmt.Sprintf("uarch: fp register %d out of range", i))
	}
	return Reg(NumIntRegs + i)
}

// Valid reports whether r names an actual architectural register.
func (r Reg) Valid() bool { return r >= 0 && r < NumRegs }

// IsFP reports whether r is in the floating-point bank.
func (r Reg) IsFP() bool { return r >= NumIntRegs && r < NumRegs }

// String renders the register as r0..r15 (integer) or f0..f15 (FP).
func (r Reg) String() string {
	switch {
	case r == RegNone:
		return "-"
	case r.IsFP():
		return fmt.Sprintf("f%d", int(r)-NumIntRegs)
	case r.Valid():
		return fmt.Sprintf("r%d", int(r))
	}
	return fmt.Sprintf("reg(%d)", int(r))
}
