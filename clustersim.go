// Package clustersim reproduces "A Software-Hardware Hybrid Steering
// Mechanism for Clustered Microarchitectures" (Cai, Codina, González &
// González, IPPS/IPDPS 2008) as a self-contained Go library: a cycle-level
// clustered out-of-order processor simulator, the compiler-side steering
// passes (virtual-cluster partitioning with chains, RHOP, SPDI/OB), the
// runtime steering policies (OP, one-cluster, static-follow, VC mapping),
// a synthetic SPEC CPU2000-like workload suite, and a benchmark harness
// that regenerates every table and figure of the paper's evaluation.
//
// # Quick start
//
//	sp := clustersim.WorkloadByName("gzip-1")
//	res := clustersim.Run(sp, clustersim.SetupVC(2, 2), clustersim.RunOptions{NumUops: 100_000})
//	fmt.Printf("IPC %.2f, %d copies\n", res.Metrics.IPC(), res.Metrics.Copies)
//
// The five steering configurations of the paper's Table 3 are built with
// SetupOP, SetupOneCluster, SetupOB, SetupRHOP and SetupVC; Run executes
// one (workload, configuration) pair and RunMatrix fans a whole experiment
// across CPU cores. The experiment harness lives behind Fig5, Fig6, Fig7,
// Table1 and the Ablation* functions; `cmd/steerbench` drives them all.
//
// Every run path executes on a caching, streaming simulation engine
// (NewEngine): sharing one engine across runs and experiments memoizes
// annotated programs, expanded traces and whole results, simulating each
// unique (workload, configuration, options) combination exactly once per
// process, with context cancellation and live progress reporting.
package clustersim

import (
	"context"

	"clustersim/client"
	"clustersim/fleet"
	"clustersim/internal/engine"
	"clustersim/internal/experiments"
	"clustersim/internal/pipeline"
	"clustersim/internal/prog"
	"clustersim/internal/sim"
	"clustersim/internal/steer"
	"clustersim/internal/store"
	"clustersim/internal/trace"
	"clustersim/internal/workload"
)

// MachineConfig is the simulated machine's parameter set (paper Table 2).
type MachineConfig = pipeline.Config

// DefaultMachine returns the paper's machine with the given cluster count
// (2 for the base experiments, 4 for the scalability study).
func DefaultMachine(clusters int) MachineConfig { return pipeline.DefaultConfig(clusters) }

// Metrics is the outcome of one simulation (cycles, IPC, copies,
// allocation stalls, per-cluster breakdowns, memory and branch statistics).
type Metrics = pipeline.Metrics

// Setup is one steering configuration: a compiler annotation pass paired
// with a runtime steering policy.
type Setup = sim.Setup

// RunOptions sizes a simulation run.
type RunOptions = sim.RunOptions

// Result is one simulation outcome.
type Result = sim.Result

// Workload is one weighted simulation point of the synthetic suite.
type Workload = workload.Simpoint

// Program is the static program representation consumed by the compiler
// passes and the trace expander; build custom workloads with NewProgram.
type Program = prog.Program

// ProgramBuilder assembles custom static programs.
type ProgramBuilder = prog.Builder

// NewProgram starts building a custom program.
func NewProgram(name string) *ProgramBuilder { return prog.NewBuilder(name) }

// Trace is an expanded dynamic micro-op stream.
type Trace = trace.Trace

// ExpandTrace expands a program into a dynamic trace of n micro-ops using
// the given seed; the same (program, seed) always yields the same trace.
func ExpandTrace(p *Program, n int, seed int64) *Trace {
	return trace.Expand(p, trace.Options{NumUops: n, Seed: seed})
}

// SetupOP returns the hardware-only occupancy-aware baseline (the paper's
// OP configuration).
func SetupOP(clusters int) Setup { return sim.SetupOP(clusters) }

// SetupOneCluster steers every micro-op to cluster 0.
func SetupOneCluster(clusters int) Setup { return sim.SetupOneCluster(clusters) }

// SetupOB returns the SPDI operation-based software-only configuration.
func SetupOB(clusters int) Setup { return sim.SetupOB(clusters) }

// SetupRHOP returns the RHOP software-only configuration.
func SetupRHOP(clusters int) Setup { return sim.SetupRHOP(clusters) }

// SetupVC returns the paper's hybrid virtual-cluster configuration with
// numVC virtual clusters on a machine with `clusters` physical clusters.
func SetupVC(numVC, clusters int) Setup { return sim.SetupVC(numVC, clusters) }

// SetupVCChain is SetupVC with an explicit chain-length cap.
func SetupVCChain(numVC, clusters, maxChainLen int) Setup {
	return sim.SetupVCChain(numVC, clusters, maxChainLen)
}

// Run executes one (workload, setup) simulation.
func Run(w *Workload, setup Setup, opt RunOptions) *Result { return sim.RunOne(w, setup, opt) }

// RunMatrix executes every (workload × setup) pair across a worker pool;
// results are indexed [workload][setup]. Parallelism ≤ 0 uses all cores.
func RunMatrix(ws []*Workload, setups []Setup, opt RunOptions, parallelism int) [][]*Result {
	return sim.RunMatrix(ws, setups, opt, parallelism)
}

// Engine is the shared caching, streaming simulation engine. All run paths
// (Run, RunMatrix, the experiment harness, cmd/steerbench) execute on an
// engine; sharing one instance across calls memoizes annotated programs,
// expanded traces and whole results, so each unique (workload, setup,
// options) simulation executes exactly once per process.
type Engine = engine.Engine

// EngineOptions configures a new Engine (parallelism, caching, progress).
type EngineOptions = engine.Options

// EngineStats snapshots an engine's cache-hit counters.
type EngineStats = engine.CacheStats

// Job is one unit of engine work: simulate one workload under one setup.
type Job = engine.Job

// JobResult pairs a streamed engine result with its originating job.
type JobResult = engine.JobResult

// NewEngine builds a simulation engine. Submit work with Engine.Run (one
// blocking job), Engine.RunMatrix (blocking matrix) or Engine.Stream
// (results channel); all accept a context for cancellation.
func NewEngine(opts EngineOptions) *Engine { return engine.New(opts) }

// ResultStore is a content-addressed blob store for simulation results.
// Wire one into EngineOptions.ResultStore and completed results survive
// the engine — with a disk store, the process: a rerun of the same
// workload is served without simulating.
type ResultStore = store.Store

// StoreStats snapshots a store's hit/occupancy counters.
type StoreStats = store.Stats

// OpenDiskStore opens (creating if needed) a persistent result store
// under dir, bounded to maxBytes of payload (zero = unbounded; oldest
// records are collected first when over budget).
func OpenDiskStore(dir string, maxBytes int64) (ResultStore, error) {
	return store.OpenDisk(dir, maxBytes)
}

// OpenCompressedDiskStore is OpenDiskStore with gzip-compressed records:
// the same -cachemax budget holds several times more results. A store
// opened this way still reads blobs written uncompressed (and vice
// versa) — compression applies to new writes only.
func OpenCompressedDiskStore(dir string, maxBytes int64) (ResultStore, error) {
	return store.OpenDisk(dir, maxBytes, store.WithCompression())
}

// NewMemoryStore builds a byte-bounded in-memory result store.
func NewMemoryStore(maxBytes int64) ResultStore { return store.NewMemory(maxBytes) }

// NewTieredStore layers a fast store over a slow one (memory over disk):
// reads promote slow-tier hits, writes land in both.
func NewTieredStore(fast, slow ResultStore) ResultStore { return store.NewTiered(fast, slow) }

// JobSpec is the declarative, serializable form of a Job (the clusterd
// wire format); resolve it with JobFromSpec.
type JobSpec = engine.JobSpec

// SetupSpec names a steering configuration declaratively (the Setup half
// of a JobSpec).
type SetupSpec = engine.SetupSpec

// OptionsSpec is the serializable subset of RunOptions.
type OptionsSpec = engine.OptionsSpec

// JobFromSpec resolves a declarative job spec against the synthetic suite
// and the named setup constructors.
func JobFromSpec(spec JobSpec) (Job, error) { return sim.JobFromSpec(spec) }

// SpecFromJob converts a runnable Job back to its declarative wire form —
// the inverse of JobFromSpec. Jobs built around opaque closures or
// non-suite workloads have no wire form and return an error; such jobs
// execute locally only.
func SpecFromJob(job Job) (JobSpec, error) { return sim.SpecFromJob(job) }

// Runner is the execution seam every consumer submits jobs through: the
// local Engine implements it, and NewRemoteRunner returns one that ships
// jobs to a clusterd fleet. Code written against Runner — RunOn,
// RunMatrixOn, ExperimentOptions.Runner — runs unchanged either way.
type Runner = engine.Runner

// NewRemoteRunner connects to the clusterd instance at baseURL
// ("http://host:8080") and returns a Runner executing jobs there,
// deduplicated against everything the daemon's content-addressed store
// has ever computed. local, when non-nil, handles jobs that cannot travel
// (custom closures, machine tweaks, non-suite workloads); with a nil
// local such jobs fail. For streaming, backoff and progress options use
// the clustersim/client package directly.
func NewRemoteRunner(baseURL string, local Runner) (Runner, error) {
	c, err := client.New(baseURL)
	if err != nil {
		return nil, err
	}
	var opts []client.RunnerOption
	if local != nil {
		opts = append(opts, client.WithFallback(local))
	}
	return client.NewRunner(c, opts...), nil
}

// NewFleetRunner shards simulation batches across the clusterd workers
// at urls by consistent hash of each job's result content key (every
// worker's store stays hot for its key range), merges the per-worker
// streams into one exactly-once result stream, and re-shards the jobs of
// a worker lost mid-stream onto the survivors. A single URL degrades to
// the plain single-host remote runner. local, when non-nil, handles jobs
// that cannot travel. For auth, stealing, progress and health-check
// options use the clustersim/fleet package directly.
func NewFleetRunner(urls []string, local Runner) (Runner, error) {
	if len(urls) == 1 {
		return NewRemoteRunner(urls[0], local)
	}
	var opts []fleet.Option
	if local != nil {
		opts = append(opts, fleet.WithFallback(local))
	}
	return fleet.New(urls, opts...)
}

// RunOn executes one simulation on any Runner with cancellation.
func RunOn(ctx context.Context, r Runner, w *Workload, setup Setup, opt RunOptions) *Result {
	return sim.RunOneOn(ctx, r, w, setup, opt)
}

// RunMatrixOn fans the (workload × setup) matrix through any Runner;
// results are indexed [workload][setup].
func RunMatrixOn(ctx context.Context, r Runner, ws []*Workload, setups []Setup, opt RunOptions) ([][]*Result, error) {
	return sim.RunMatrixOn(ctx, r, ws, setups, opt)
}

// RunContext executes one simulation on a shared engine with cancellation.
func RunContext(ctx context.Context, e *Engine, w *Workload, setup Setup, opt RunOptions) *Result {
	return e.Run(ctx, Job{Simpoint: w, Setup: setup, Opts: opt})
}

// Workloads returns the full synthetic CPU2000 suite: 26 SPECint and 14
// SPECfp weighted simulation points.
func Workloads() []*Workload { return workload.Suite() }

// IntWorkloads returns the SPECint points; FPWorkloads the SPECfp points.
func IntWorkloads() []*Workload { return workload.IntSuite() }

// FPWorkloads returns the SPECfp simulation points.
func FPWorkloads() []*Workload { return workload.FPSuite() }

// QuickWorkloads returns eight representative points for smoke runs.
func QuickWorkloads() []*Workload { return workload.QuickSuite() }

// WorkloadByName returns a suite member by figure label ("gzip-1", "mcf"),
// or nil.
func WorkloadByName(name string) *Workload { return workload.ByName(name) }

// CustomWorkload wraps a hand-built program as a runnable workload.
func CustomWorkload(p *Program, seed int64) *Workload {
	return &Workload{Name: p.Name, Bench: p.Name, Weight: 1, Program: p, Seed: seed}
}

// ExperimentOptions sizes the paper-experiment harness.
type ExperimentOptions = experiments.Options

// Fig5 regenerates Figure 5 (2-cluster slowdowns vs OP).
func Fig5(opt ExperimentOptions) (*experiments.Fig5Result, error) { return experiments.Fig5(opt) }

// Fig6 regenerates Figure 6 (copy-reduction / balance scatters).
func Fig6(opt ExperimentOptions) (*experiments.Fig6Result, error) { return experiments.Fig6(opt) }

// Fig7 regenerates Figure 7 (4-cluster scalability).
func Fig7(opt ExperimentOptions) (*experiments.Fig7Result, error) { return experiments.Fig7(opt) }

// Table1 measures the steering-complexity comparison (paper Table 1).
func Table1(opt ExperimentOptions) (*experiments.Table1Result, error) {
	return experiments.Table1(opt)
}

// Table2 renders the architectural parameters (paper Table 2).
func Table2() string { return experiments.Table2() }

// Table3 renders the evaluated configurations (paper Table 3).
func Table3() string { return experiments.Table3() }

// Policy is a runtime steering policy; custom policies may be plugged into
// a Setup.
type Policy = steer.Policy
