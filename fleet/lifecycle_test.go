package fleet_test

import (
	"context"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"clustersim/fleet"
	"clustersim/internal/engine"
	"clustersim/internal/service"
	"clustersim/internal/store"
)

// startCoordinator runs a clusterd in coordinator mode: the shared epoch
// register N fleet runners converge through.
func startCoordinator(t *testing.T) *httptest.Server {
	t.Helper()
	st := store.NewMemory(16 << 20)
	eng := engine.New(engine.Options{Parallelism: 1, ResultStore: st})
	svc := service.New(context.Background(), eng, st)
	svc.EnableCoordinator()
	ts := httptest.NewServer(svc)
	t.Cleanup(ts.Close)
	return ts
}

// memberState finds url's row in a FleetStats snapshot.
func memberState(t *testing.T, st fleet.Stats, url string) fleet.MemberStatus {
	t.Helper()
	for _, ms := range st.Members {
		if ms.URL == url {
			return ms
		}
	}
	t.Fatalf("member %s missing from fleet stats %+v", url, st.Members)
	return fleet.MemberStatus{}
}

// A worker that dies and comes back is re-admitted by the prober, and
// re-admission restores its exact pre-death placement: re-running the
// original batch costs zero simulations because every key lands back on
// the worker whose store already holds it.
func TestFleetReadmitRestoresPlacement(t *testing.T) {
	w1, w2 := startWorker(t), startWorker(t)
	ctx := context.Background()

	f, err := fleet.New([]string{w1.ts.URL, w2.ts.URL}, fastClient(),
		fleet.WithReadmit(25*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	_, _, jobs := suiteJobs(t, 8)
	collect(t, f.Stream(ctx, jobs), len(jobs))
	s1, s2 := w1.eng.Stats().Simulations, w2.eng.Stats().Simulations
	if s1 == 0 || s2 == 0 {
		t.Fatalf("degenerate shard split: %d / %d", s1, s2)
	}

	// Worker 2 dies; the batch fails over onto worker 1.
	w2.dead.Store(true)
	collect(t, f.Stream(ctx, jobs), len(jobs))
	if f.Alive() != 1 {
		t.Fatalf("fleet reports %d alive after kill, want 1", f.Alive())
	}
	st := f.FleetStats()
	if ms := memberState(t, st, w2.ts.URL); ms.State != "dead" || ms.LastError == "" {
		t.Errorf("dead worker state = %q lastErr = %q", ms.State, ms.LastError)
	}
	deadEpoch := st.Epoch

	// Worker 2 recovers; the liveness prober re-admits it.
	w2.dead.Store(false)
	deadline := time.After(10 * time.Second)
	for f.Alive() != 2 {
		select {
		case <-deadline:
			t.Fatal("prober never re-admitted the recovered worker")
		case <-time.After(10 * time.Millisecond):
		}
	}
	st = f.FleetStats()
	if st.Readmissions != 1 {
		t.Errorf("readmissions = %d, want 1", st.Readmissions)
	}
	if st.Epoch <= deadEpoch {
		t.Errorf("epoch did not advance on re-admission: %d -> %d", deadEpoch, st.Epoch)
	}
	if ms := memberState(t, st, w2.ts.URL); ms.State != "alive" || ms.LastError != "" {
		t.Errorf("re-admitted worker state = %q lastErr = %q", ms.State, ms.LastError)
	}

	// Placement is exactly what it was before the death: both stores are
	// warm for their own ranges, so the re-run simulates nothing.
	pre1, pre2 := w1.eng.Stats().Simulations, w2.eng.Stats().Simulations
	collect(t, f.Stream(ctx, jobs), len(jobs))
	if a, b := w1.eng.Stats().Simulations, w2.eng.Stats().Simulations; a != pre1 || b != pre2 {
		t.Errorf("re-admission broke placement: sims %d/%d -> %d/%d", pre1, pre2, a, b)
	}
}

// Drain migrates the departing worker's results to its ring successors
// before removal: re-running the batch against the shrunken fleet costs
// zero simulations.
func TestFleetDrainMigratesWithoutResimulating(t *testing.T) {
	w1, w2 := startWorker(t), startWorker(t)
	ctx := context.Background()

	var logMu sync.Mutex
	var logs []string
	f, err := fleet.New([]string{w1.ts.URL, w2.ts.URL}, fastClient(),
		fleet.WithLog(func(format string, args ...any) {
			logMu.Lock()
			logs = append(logs, fmt.Sprintf(format, args...))
			logMu.Unlock()
		}))
	if err != nil {
		t.Fatal(err)
	}

	_, _, jobs := suiteJobs(t, 8)
	collect(t, f.Stream(ctx, jobs), len(jobs))
	s1, s2 := w1.eng.Stats().Simulations, w2.eng.Stats().Simulations
	if s1 == 0 || s2 == 0 {
		t.Fatalf("degenerate shard split: %d / %d", s1, s2)
	}

	if err := f.Drain(ctx, w2.ts.URL); err != nil {
		t.Fatalf("drain: %v", err)
	}
	st := f.FleetStats()
	if st.DrainMigrated == 0 {
		t.Error("drain migrated no result blobs")
	}
	if ms := memberState(t, st, w2.ts.URL); ms.State != "removed" {
		t.Errorf("drained worker state = %q, want removed", ms.State)
	}
	if f.Alive() != 1 {
		t.Fatalf("fleet reports %d alive after drain, want 1", f.Alive())
	}

	// The survivor inherited the drained range warm: nothing re-simulates,
	// on either side of the removal.
	collect(t, f.Stream(ctx, jobs), len(jobs))
	if a, b := w1.eng.Stats().Simulations, w2.eng.Stats().Simulations; a != s1 || b != s2 {
		t.Errorf("drain lost cache affinity: sims %d/%d -> %d/%d", s1, s2, a, b)
	}

	// A removed worker cannot be drained again, and the last assignable
	// worker has nowhere to drain to.
	if err := f.Drain(ctx, w2.ts.URL); err == nil {
		t.Error("draining a removed worker succeeded")
	}
	if err := f.Drain(ctx, w1.ts.URL); err == nil || !strings.Contains(err.Error(), "no assignable worker") {
		t.Errorf("draining the last worker: %v", err)
	}
	logMu.Lock()
	defer logMu.Unlock()
	if joined := strings.Join(logs, "\n"); !strings.Contains(joined, "drained") {
		t.Errorf("drain not logged; logs:\n%s", joined)
	}
}

// AddWorker warms the newcomer's stolen key ranges from the previous
// owners before announcing it: the first batch after the ring grows
// simulates nothing.
func TestFleetAddWorkerBackfills(t *testing.T) {
	w1 := startWorker(t)
	ctx := context.Background()

	f, err := fleet.New([]string{w1.ts.URL}, fastClient())
	if err != nil {
		t.Fatal(err)
	}
	_, _, jobs := suiteJobs(t, 8)
	collect(t, f.Stream(ctx, jobs), len(jobs))
	s1 := w1.eng.Stats().Simulations
	if int(s1) != len(jobs) {
		t.Fatalf("solo worker simulated %d of %d", s1, len(jobs))
	}

	w2 := startWorker(t)
	if err := f.AddWorker(ctx, w2.ts.URL); err != nil {
		t.Fatalf("add worker: %v", err)
	}
	st := f.FleetStats()
	if st.Backfilled == 0 {
		t.Error("scale-up backfilled no result blobs")
	}
	if ms := memberState(t, st, w2.ts.URL); ms.State != "alive" {
		t.Errorf("added worker state = %q, want alive", ms.State)
	}
	if f.Alive() != 2 {
		t.Fatalf("fleet reports %d alive after add, want 2", f.Alive())
	}

	// The newcomer serves its stolen range from the backfilled store.
	collect(t, f.Stream(ctx, jobs), len(jobs))
	if sims := w2.eng.Stats().Simulations; sims != 0 {
		t.Errorf("newcomer simulated %d jobs despite backfill", sims)
	}
	if sims := w1.eng.Stats().Simulations; sims != s1 {
		t.Errorf("previous owner re-simulated: %d -> %d", s1, sims)
	}

	// Adding a serving worker is an idempotent no-op.
	epoch := f.FleetStats().Epoch
	if err := f.AddWorker(ctx, w2.ts.URL); err != nil {
		t.Fatalf("re-add: %v", err)
	}
	if got := f.FleetStats().Epoch; got != epoch {
		t.Errorf("no-op add advanced the epoch %d -> %d", epoch, got)
	}
}

// Two runners sharing a coordinator converge on one placement: running
// the same batch concurrently from both costs exactly one simulation per
// unique job, both report the same membership epoch, and a drain made
// through one runner is visible to the other.
func TestFleetCoordinatorConvergence(t *testing.T) {
	w1, w2 := startWorker(t), startWorker(t)
	coord := startCoordinator(t)
	urls := []string{w1.ts.URL, w2.ts.URL}
	ctx := context.Background()

	fA, err := fleet.New(urls, fastClient(), fleet.WithCoordinator(coord.URL))
	if err != nil {
		t.Fatal(err)
	}
	fB, err := fleet.New(urls, fastClient(), fleet.WithCoordinator(coord.URL))
	if err != nil {
		t.Fatal(err)
	}

	_, _, jobs := suiteJobs(t, 8)
	var wg sync.WaitGroup
	for _, f := range []*fleet.Runner{fA, fB} {
		wg.Add(1)
		go func(f *fleet.Runner) {
			defer wg.Done()
			collect(t, f.Stream(ctx, jobs), len(jobs))
		}(f)
	}
	wg.Wait()

	// Same placement from both runners: each key hit one worker, whose
	// engine deduplicated the concurrent identical submissions.
	s1, s2 := w1.eng.Stats().Simulations, w2.eng.Stats().Simulations
	if total := int(s1 + s2); total != len(jobs) {
		t.Errorf("%d simulations across the fleet for %d unique jobs (cross-runner duplicates)", total, len(jobs))
	}
	ea, eb := fA.FleetStats().Epoch, fB.FleetStats().Epoch
	if ea != eb {
		t.Errorf("runners diverge on membership epoch: %d vs %d", ea, eb)
	}

	// A drain through runner A reaches runner B at its next sync: B
	// routes around the removed worker and re-simulates nothing.
	if err := fA.Drain(ctx, w2.ts.URL); err != nil {
		t.Fatalf("drain through runner A: %v", err)
	}
	pre1, pre2 := w1.eng.Stats().Simulations, w2.eng.Stats().Simulations
	collect(t, fB.Stream(ctx, jobs), len(jobs))
	if a, b := w1.eng.Stats().Simulations, w2.eng.Stats().Simulations; a != pre1 || b != pre2 {
		t.Errorf("post-drain run re-simulated: %d/%d -> %d/%d", pre1, pre2, a, b)
	}
	if ms := memberState(t, fB.FleetStats(), w2.ts.URL); ms.State != "removed" {
		t.Errorf("runner B sees drained worker as %q, want removed", ms.State)
	}
	if fB.Alive() != 1 {
		t.Errorf("runner B reports %d alive after A's drain, want 1", fB.Alive())
	}
}
