package fleet

import (
	"fmt"
	"reflect"
	"testing"

	"clustersim/fleet/controlplane"
	"clustersim/internal/api"
)

// testKeys is a fixed, suite-shaped key set: shard assignment over it is
// an external contract (each worker's store is warmed for its range), so
// these tests pin its stability properties.
func testKeys() []string {
	keys := make([]string, 0, 240)
	for i := 0; i < 40; i++ {
		for _, setup := range []string{"OP", "1cl", "OB", "RHOP", "VC(2->2)", "VC(4->4)"} {
			keys = append(keys, fmt.Sprintf("result|v1|bench-%d|s%d|%s|c2|u120000", i, i, setup))
		}
	}
	return keys
}

func assignAll(r *ring, urls []string, alive func(int) bool) map[string]string {
	if alive == nil {
		alive = func(int) bool { return true }
	}
	got := map[string]string{}
	for _, k := range testKeys() {
		m := r.pick(k, alive)
		if m < 0 {
			got[k] = ""
			continue
		}
		got[k] = urls[m]
	}
	return got
}

// The assignment is a pure function of the membership *set*: rebuilding
// the ring, or permuting the URL slice, changes nothing — which is what
// lets every client of the same fleet route a key to the same worker.
func TestRingAssignmentDeterministic(t *testing.T) {
	urls := []string{"http://w1:8080", "http://w2:8080", "http://w3:8080"}
	perm := []string{"http://w3:8080", "http://w1:8080", "http://w2:8080"}

	a := assignAll(newRing(urls), urls, nil)
	b := assignAll(newRing(urls), urls, nil)
	c := assignAll(newRing(perm), perm, nil)
	for k, owner := range a {
		if b[k] != owner {
			t.Fatalf("rebuild moved %q: %s -> %s", k, owner, b[k])
		}
		if c[k] != owner {
			t.Fatalf("permutation moved %q: %s -> %s", k, owner, c[k])
		}
	}

	// Every worker owns a share: 64 virtual points per member keep a
	// small fleet from starving any one worker on a suite-sized key set.
	counts := map[string]int{}
	for _, owner := range a {
		counts[owner]++
	}
	for _, u := range urls {
		if counts[u] == 0 {
			t.Errorf("worker %s owns no keys", u)
		}
	}
}

// Adding one worker migrates only the key range the new worker takes
// over: every key whose owner changed must now belong to the newcomer,
// and the migration is partial — most keys stay put. This is the
// consistent-hashing contract that keeps existing workers' stores hot
// across a fleet resize.
func TestRingResizeMigratesOnlyToNewWorker(t *testing.T) {
	old := []string{"http://w1:8080", "http://w2:8080"}
	grown := []string{"http://w1:8080", "http://w2:8080", "http://w3:8080"}

	before := assignAll(newRing(old), old, nil)
	after := assignAll(newRing(grown), grown, nil)

	moved := 0
	for k, owner := range before {
		if after[k] == owner {
			continue
		}
		moved++
		if after[k] != "http://w3:8080" {
			t.Errorf("key %q migrated between existing workers: %s -> %s", k, owner, after[k])
		}
	}
	if moved == 0 {
		t.Error("new worker took over no keys")
	}
	if moved == len(before) {
		t.Error("every key moved: assignment is not consistent-hashed")
	}
	// The expected migrated share is ~1/3; allow a generous band so the
	// fixture pins behavior, not hash-function luck.
	if frac := float64(moved) / float64(len(before)); frac > 0.6 {
		t.Errorf("%.0f%% of keys migrated on adding one of three workers", frac*100)
	}
}

// A dead member's keys fail over to the clockwise survivors
// deterministically, and surviving members' keys never move.
func TestRingSkipsDeadMembers(t *testing.T) {
	urls := []string{"http://w1:8080", "http://w2:8080", "http://w3:8080"}
	r := newRing(urls)

	all := assignAll(r, urls, nil)
	w2Dead := assignAll(r, urls, func(i int) bool { return i != 1 })
	for k, owner := range all {
		switch owner {
		case "http://w2:8080":
			if w2Dead[k] == "http://w2:8080" {
				t.Fatalf("dead worker still owns %q", k)
			}
		default:
			if w2Dead[k] != owner {
				t.Errorf("survivor's key %q moved: %s -> %s", k, owner, w2Dead[k])
			}
		}
	}

	if got := r.pick("anything", func(int) bool { return false }); got != -1 {
		t.Errorf("pick with no members alive = %d, want -1", got)
	}
}

// assignFiltered routes the fixed key set through a ring whose liveness
// comes from a membership table — placement exactly as the Runner
// computes it.
func assignFiltered(r *ring, urls []string, m *controlplane.Membership) map[string]string {
	return assignAll(r, urls, func(i int) bool { return m.Assignable(urls[i]) })
}

// Re-admission is placement-exact: marking a member dead and re-admitting
// it restores precisely the assignment that held before the death,
// because the member's virtual points never left the ring — the walk
// merely skipped them. Each transition advances the epoch.
func TestRingReadmitRestoresExactPlacement(t *testing.T) {
	urls := []string{"http://w1:8080", "http://w2:8080", "http://w3:8080"}
	r := newRing(urls)
	m := controlplane.NewMembership(urls...)

	before := assignFiltered(r, urls, m)
	e0 := m.Epoch()

	if _, err := m.Transition(api.RingMarkDead, urls[1], "probe timeout"); err != nil {
		t.Fatal(err)
	}
	during := assignFiltered(r, urls, m)
	for k, owner := range during {
		if owner == urls[1] {
			t.Fatalf("dead member still owns %q", k)
		}
		if before[k] != urls[1] && owner != before[k] {
			t.Fatalf("death moved a survivor's key %q: %s -> %s", k, before[k], owner)
		}
	}

	if _, err := m.Transition(api.RingReadmit, urls[1], ""); err != nil {
		t.Fatal(err)
	}
	after := assignFiltered(r, urls, m)
	if !reflect.DeepEqual(before, after) {
		t.Error("re-admission did not restore the exact pre-death placement")
	}
	if e := m.Epoch(); e != e0+2 {
		t.Errorf("epoch advanced %d -> %d across death+readmit, want +2", e0, e)
	}
}

// Drain and scale-up move only the ranges that change hands: a draining
// member keeps its assignment until the removal cutover; removal moves
// exactly its keys (to survivors); adding a member moves keys only onto
// the newcomer, and never resurrects a removed member.
func TestRingDrainAndAddMoveOnlyTheirRanges(t *testing.T) {
	urls := []string{"http://w1:8080", "http://w2:8080", "http://w3:8080"}
	r := newRing(urls)
	m := controlplane.NewMembership(urls...)
	before := assignFiltered(r, urls, m)

	// Draining is not yet a placement change: the worker keeps serving
	// its range while its blobs migrate.
	if _, err := m.Transition(api.RingDrain, urls[1], ""); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(before, assignFiltered(r, urls, m)) {
		t.Fatal("draining moved keys before the removal cutover")
	}

	// Removal is the cutover: exactly the drained member's keys move.
	if _, err := m.Transition(api.RingRemove, urls[1], ""); err != nil {
		t.Fatal(err)
	}
	after := assignFiltered(r, urls, m)
	for k, owner := range after {
		switch {
		case before[k] == urls[1] && owner == urls[1]:
			t.Fatalf("removed member still owns %q", k)
		case before[k] != urls[1] && owner != before[k]:
			t.Fatalf("removal moved a survivor's key %q: %s -> %s", k, before[k], owner)
		}
	}

	// Scale-up: the grown ring moves keys only onto the newcomer, and the
	// removed member stays out even though its URL is still on the ring.
	grown := append(append([]string(nil), urls...), "http://w4:8080")
	r2 := newRing(grown)
	if _, err := m.Transition(api.RingAdd, "http://w4:8080", ""); err != nil {
		t.Fatal(err)
	}
	final := assignFiltered(r2, grown, m)
	moved := 0
	for k, owner := range final {
		if owner == urls[1] {
			t.Fatalf("removed member re-acquired %q through the resize", k)
		}
		if owner != after[k] {
			moved++
			if owner != "http://w4:8080" {
				t.Fatalf("resize moved %q between existing members: %s -> %s", k, after[k], owner)
			}
		}
	}
	if moved == 0 {
		t.Error("newcomer took over no keys")
	}
}

// The steal pool hands out at most the configured budget, never
// duplicates a task, and never steals from the thief itself.
func TestRoundStateStealBudget(t *testing.T) {
	rs := &roundState{
		outstanding: map[int]map[int]task{
			0: {1: {idx: 1}, 2: {idx: 2}, 3: {idx: 3}},
			1: {4: {idx: 4}},
		},
		stolenFrom: map[int]bool{},
		stealLeft:  2,
	}
	got := rs.stealFor(1)
	if len(got) != 2 {
		t.Fatalf("stole %d tasks, want budget of 2", len(got))
	}
	for _, tk := range got {
		if tk.idx == 4 {
			t.Error("thief stole its own task")
		}
	}
	if more := rs.stealFor(0); len(more) != 0 {
		t.Errorf("budget exhausted but stealFor handed out %d more", len(more))
	}
}
