package fleet

import (
	"fmt"
	"testing"
)

// testKeys is a fixed, suite-shaped key set: shard assignment over it is
// an external contract (each worker's store is warmed for its range), so
// these tests pin its stability properties.
func testKeys() []string {
	keys := make([]string, 0, 240)
	for i := 0; i < 40; i++ {
		for _, setup := range []string{"OP", "1cl", "OB", "RHOP", "VC(2->2)", "VC(4->4)"} {
			keys = append(keys, fmt.Sprintf("result|v1|bench-%d|s%d|%s|c2|u120000", i, i, setup))
		}
	}
	return keys
}

func assignAll(r *ring, urls []string, alive func(int) bool) map[string]string {
	if alive == nil {
		alive = func(int) bool { return true }
	}
	got := map[string]string{}
	for _, k := range testKeys() {
		m := r.pick(k, alive)
		if m < 0 {
			got[k] = ""
			continue
		}
		got[k] = urls[m]
	}
	return got
}

// The assignment is a pure function of the membership *set*: rebuilding
// the ring, or permuting the URL slice, changes nothing — which is what
// lets every client of the same fleet route a key to the same worker.
func TestRingAssignmentDeterministic(t *testing.T) {
	urls := []string{"http://w1:8080", "http://w2:8080", "http://w3:8080"}
	perm := []string{"http://w3:8080", "http://w1:8080", "http://w2:8080"}

	a := assignAll(newRing(urls), urls, nil)
	b := assignAll(newRing(urls), urls, nil)
	c := assignAll(newRing(perm), perm, nil)
	for k, owner := range a {
		if b[k] != owner {
			t.Fatalf("rebuild moved %q: %s -> %s", k, owner, b[k])
		}
		if c[k] != owner {
			t.Fatalf("permutation moved %q: %s -> %s", k, owner, c[k])
		}
	}

	// Every worker owns a share: 64 virtual points per member keep a
	// small fleet from starving any one worker on a suite-sized key set.
	counts := map[string]int{}
	for _, owner := range a {
		counts[owner]++
	}
	for _, u := range urls {
		if counts[u] == 0 {
			t.Errorf("worker %s owns no keys", u)
		}
	}
}

// Adding one worker migrates only the key range the new worker takes
// over: every key whose owner changed must now belong to the newcomer,
// and the migration is partial — most keys stay put. This is the
// consistent-hashing contract that keeps existing workers' stores hot
// across a fleet resize.
func TestRingResizeMigratesOnlyToNewWorker(t *testing.T) {
	old := []string{"http://w1:8080", "http://w2:8080"}
	grown := []string{"http://w1:8080", "http://w2:8080", "http://w3:8080"}

	before := assignAll(newRing(old), old, nil)
	after := assignAll(newRing(grown), grown, nil)

	moved := 0
	for k, owner := range before {
		if after[k] == owner {
			continue
		}
		moved++
		if after[k] != "http://w3:8080" {
			t.Errorf("key %q migrated between existing workers: %s -> %s", k, owner, after[k])
		}
	}
	if moved == 0 {
		t.Error("new worker took over no keys")
	}
	if moved == len(before) {
		t.Error("every key moved: assignment is not consistent-hashed")
	}
	// The expected migrated share is ~1/3; allow a generous band so the
	// fixture pins behavior, not hash-function luck.
	if frac := float64(moved) / float64(len(before)); frac > 0.6 {
		t.Errorf("%.0f%% of keys migrated on adding one of three workers", frac*100)
	}
}

// A dead member's keys fail over to the clockwise survivors
// deterministically, and surviving members' keys never move.
func TestRingSkipsDeadMembers(t *testing.T) {
	urls := []string{"http://w1:8080", "http://w2:8080", "http://w3:8080"}
	r := newRing(urls)

	all := assignAll(r, urls, nil)
	w2Dead := assignAll(r, urls, func(i int) bool { return i != 1 })
	for k, owner := range all {
		switch owner {
		case "http://w2:8080":
			if w2Dead[k] == "http://w2:8080" {
				t.Fatalf("dead worker still owns %q", k)
			}
		default:
			if w2Dead[k] != owner {
				t.Errorf("survivor's key %q moved: %s -> %s", k, owner, w2Dead[k])
			}
		}
	}

	if got := r.pick("anything", func(int) bool { return false }); got != -1 {
		t.Errorf("pick with no members alive = %d, want -1", got)
	}
}

// The steal pool hands out at most the configured budget, never
// duplicates a task, and never steals from the thief itself.
func TestRoundStateStealBudget(t *testing.T) {
	rs := &roundState{
		outstanding: map[int]map[int]task{
			0: {1: {idx: 1}, 2: {idx: 2}, 3: {idx: 3}},
			1: {4: {idx: 4}},
		},
		stolenFrom: map[int]bool{},
		stealLeft:  2,
	}
	got := rs.stealFor(1)
	if len(got) != 2 {
		t.Fatalf("stole %d tasks, want budget of 2", len(got))
	}
	for _, tk := range got {
		if tk.idx == 4 {
			t.Error("thief stole its own task")
		}
	}
	if more := rs.stealFor(0); len(more) != 0 {
		t.Errorf("budget exhausted but stealFor handed out %d more", len(more))
	}
}
