package fleet

// This file is the fleet's live-membership surface: coordinator wiring,
// the liveness prober that re-admits recovered workers, planned drains
// that migrate a departing worker's key range to its ring successors,
// scale-up backfills that warm a newcomer from the previous owners, and
// the FleetStats snapshot operators read to see why a worker is
// excluded.

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"clustersim/client"
	"clustersim/fleet/controlplane"
	"clustersim/internal/api"
)

// transitionTimeout bounds membership proposals issued from failure
// paths, where no caller context is available (or the caller's is
// already canceled).
const transitionTimeout = 5 * time.Second

// drainMaxPasses bounds Drain's migrate-until-stable loop: each pass
// moves the keys that landed on the drainer since the previous listing,
// so a second pass normally finds nothing and the bound exists only to
// keep a worker that fails every upload from looping forever.
const drainMaxPasses = 8

// MemberStatus is one worker's entry in FleetStats: its state on the
// ring, the membership epoch of its last state change, and — for dead
// workers — the failure that got it excluded.
type MemberStatus struct {
	URL       string
	State     string // alive | dead | draining | removed
	Epoch     int64
	LastError string
	// Breaker is the worker's circuit-breaker state (closed | open |
	// half-open), empty when the WithBreaker policy is not configured.
	Breaker string
}

// Stats is the fleet's control-plane snapshot, distinct from the
// engine.CacheStats aggregate Stats() returns.
type Stats struct {
	// Epoch is the current membership epoch.
	Epoch int64
	// Members lists every worker the fleet has ever admitted (including
	// removed ones), sorted by URL.
	Members []MemberStatus
	// Readmissions counts dead workers the prober brought back.
	Readmissions int64
	// DrainMigrated counts result blobs moved off draining workers;
	// Backfilled counts blobs copied onto newly added ones.
	DrainMigrated int64
	Backfilled    int64
	// Routes holds the fleet-merged per-route latency histograms — the
	// pairwise bucket sum of every assignable worker's /v1/stats routes.
	// Populated only by StatsWithLatency (FleetStats stays a synchronous,
	// network-free snapshot).
	Routes []api.LatencyHistogram
}

// WorkerLatency is one worker's per-route latency histograms, as
// fetched by RouteLatencies.
type WorkerLatency struct {
	URL    string
	Routes []api.LatencyHistogram
	// Err records a fetch failure; Routes is nil then. A down worker
	// costs its own error entry, never the whole listing.
	Err error
}

// RouteLatencies fetches every assignable worker's per-route latency
// histograms (one /v1/stats round trip each, in parallel) and returns
// the per-worker snapshots sorted by URL plus the fleet-wide merge —
// the data behind fleetctl top.
func (f *Runner) RouteLatencies(ctx context.Context) ([]WorkerLatency, []api.LatencyHistogram) {
	members := f.placementSnapshot().members
	per := make([]WorkerLatency, 0, len(members))
	idx := map[string]int{}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, m := range members {
		if !f.assignable(m.url) {
			continue
		}
		mu.Lock()
		idx[m.url] = len(per)
		per = append(per, WorkerLatency{URL: m.url})
		mu.Unlock()
		wg.Add(1)
		go func(m *member) {
			defer wg.Done()
			st, err := m.c.Stats(ctx)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				per[idx[m.url]].Err = err
				return
			}
			per[idx[m.url]].Routes = st.Routes
		}(m)
	}
	wg.Wait()
	sort.Slice(per, func(i, j int) bool { return per[i].URL < per[j].URL })
	return per, MergeRouteLatencies(per)
}

// MergeRouteLatencies folds per-worker route histograms into one set:
// same-route series are bucket-summed, routes are sorted by name.
func MergeRouteLatencies(per []WorkerLatency) []api.LatencyHistogram {
	byRoute := map[string]api.LatencyHistogram{}
	for _, w := range per {
		for _, h := range w.Routes {
			if prev, ok := byRoute[h.Route]; ok {
				byRoute[h.Route] = api.MergeLatency(prev, h)
			} else {
				byRoute[h.Route] = h
			}
		}
	}
	routes := make([]string, 0, len(byRoute))
	for route := range byRoute {
		routes = append(routes, route)
	}
	sort.Strings(routes)
	out := make([]api.LatencyHistogram, 0, len(routes))
	for _, route := range routes {
		out = append(out, byRoute[route])
	}
	return out
}

// StatsWithLatency is FleetStats plus the fleet-merged per-route
// latency histograms — the one extra field costs one parallel stats
// round trip across the assignable workers, so it takes a context.
func (f *Runner) StatsWithLatency(ctx context.Context) Stats {
	s := f.FleetStats()
	_, s.Routes = f.RouteLatencies(ctx)
	return s
}

// FleetStats snapshots the control plane: the membership view plus the
// lifetime re-admission and migration counters.
func (f *Runner) FleetStats() Stats {
	v := f.mship.View()
	s := Stats{
		Epoch:         v.Epoch,
		Members:       make([]MemberStatus, len(v.Members)),
		Readmissions:  f.readmissions.Load(),
		DrainMigrated: f.drainMigrated.Load(),
		Backfilled:    f.backfilled.Load(),
	}
	for i, ms := range v.Members {
		s.Members[i] = MemberStatus{URL: ms.URL, State: ms.State, Epoch: ms.Epoch,
			LastError: ms.LastError, Breaker: f.breakerState(ms.URL)}
	}
	return s
}

// transition drives one membership change through the coordinator (or
// the local table when none is configured) and logs actual state
// changes.
func (f *Runner) transition(ctx context.Context, action, url, errMsg string) error {
	before := f.mship.State(url)
	if err := f.coordinator.Propose(ctx, action, url, errMsg); err != nil {
		return err
	}
	if after := f.mship.State(url); after != before {
		f.logf("fleet: membership: %s %s (%s -> %s, epoch %d)", action, url, before, after, f.mship.Epoch())
	}
	return nil
}

// markLost excludes a worker whose transport failed and whose liveness
// probe agreed it is gone. Runs on failure paths, so it carries its own
// deadline; if the coordinator itself is unreachable the exclusion is
// applied locally — keeping a known-dead worker routable would be worse
// than briefly diverging from the register.
func (f *Runner) markLost(mem *member, cause error) {
	if !f.assignable(mem.url) {
		return // someone else already excluded it
	}
	msg := ""
	if cause != nil {
		msg = cause.Error()
	}
	ctx, cancel := context.WithTimeout(context.Background(), transitionTimeout)
	defer cancel()
	if err := f.transition(ctx, api.RingMarkDead, mem.url, msg); err != nil {
		f.mship.Transition(api.RingMarkDead, mem.url, msg)
		f.logf("fleet: coordinator unreachable while reporting %s dead (%v); excluded locally", mem.url, err)
	}
	f.logf("fleet: worker %s lost (%v); re-sharding its unfinished jobs", mem.url, cause)
}

// syncMembership pulls the coordinator's view (when one is configured)
// and adopts any workers other runners admitted that this one has no
// connection to yet. Called before each batch and between failover
// rounds; a sync failure is logged, never fatal — the fleet keeps
// running on its last-known view.
func (f *Runner) syncMembership(ctx context.Context) {
	if !f.coordinator.Enabled() {
		return
	}
	if _, err := f.coordinator.Sync(ctx); err != nil {
		f.logf("fleet: coordinator sync failed: %v", err)
		return
	}
	f.adoptFromView()
}

// adoptFromView builds connections for assignable members present in
// the membership table but missing from the placement — workers another
// runner added through the shared coordinator.
func (f *Runner) adoptFromView() {
	for _, ms := range f.mship.View().Members {
		if ms.State != api.MemberAlive && ms.State != api.MemberDraining {
			continue
		}
		if f.lookupMember(ms.URL) != nil {
			continue
		}
		c, err := client.New(ms.URL, f.copts...)
		if err != nil {
			f.logf("fleet: cannot adopt coordinator member %s: %v", ms.URL, err)
			continue
		}
		f.admit(&member{url: ms.URL, c: c, runner: client.NewRunner(c, f.ropts...)})
		f.logf("fleet: adopted worker %s from coordinator view (epoch %d)", ms.URL, f.mship.Epoch())
	}
}

// admit appends a member and swaps in a placement whose ring includes
// its virtual points. Adding a URL is the one membership change that
// rebuilds the ring — every other transition only changes which points
// the clockwise walk skips.
func (f *Runner) admit(m *member) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.byURL[m.url] != nil {
		return
	}
	members := append(append([]*member(nil), f.pl.members...), m)
	urls := make([]string, len(members))
	for i, mm := range members {
		urls[i] = mm.url
	}
	f.pl = placement{members: members, ring: newRing(urls)}
	f.byURL[m.url] = m
}

// connectCoordinator binds the runner to a clusterd -coordinator:
// adopt its view, announce every constructed worker it doesn't know
// (seeding a fresh register on first contact), and adopt workers it
// knows that we don't. Workers the register lists as removed stay
// removed — a runner restarted with a stale worker list must not
// resurrect a drained worker; that is what AddWorker is for.
func (f *Runner) connectCoordinator(ctx context.Context, url string) error {
	cc, err := client.New(url, f.copts...)
	if err != nil {
		return fmt.Errorf("fleet: coordinator: %w", err)
	}
	f.coordinator = controlplane.NewCoordinator(cc, f.mship)
	view, err := f.coordinator.Sync(ctx)
	if err != nil {
		return fmt.Errorf("fleet: coordinator %s unreachable: %w", url, err)
	}
	for _, m := range f.placementSnapshot().members {
		switch controlplane.StateIn(view, m.url) {
		case "":
			if err := f.coordinator.Propose(ctx, api.RingAdd, m.url, ""); err != nil {
				return fmt.Errorf("fleet: announcing %s to coordinator: %w", m.url, err)
			}
		case api.MemberRemoved:
			f.logf("fleet: coordinator lists %s as removed; not re-adding (use AddWorker)", m.url)
		}
	}
	f.adoptFromView()
	return nil
}

// startProber runs the liveness loop that turns sticky-dead into a
// bounded outage: every interval, dead members are health-probed and
// recovered ones re-admitted. Re-admission restores the worker's
// virtual ring points exactly as they were — placement with the member
// filtered out is identical to a ring without its points, so bringing
// it back restores the exact pre-death placement and the worker's still-
// warm store picks up right where it left off.
func (f *Runner) startProber(interval time.Duration) {
	ctx, cancel := context.WithCancel(context.Background())
	f.proberStop = cancel
	f.proberDone = make(chan struct{})
	p := &controlplane.Prober{
		Interval: interval,
		Dead: func() []string {
			var dead []string
			for _, ms := range f.mship.View().Members {
				if ms.State == api.MemberDead {
					dead = append(dead, ms.URL)
				}
			}
			return dead
		},
		Probe: func(ctx context.Context, url string) error {
			mem := f.lookupMember(url)
			if mem == nil {
				return fmt.Errorf("fleet: no connection to %s", url)
			}
			pctx, cancel := context.WithTimeout(ctx, 2*time.Second)
			defer cancel()
			return mem.c.Health(pctx)
		},
		Readmit: func(ctx context.Context, url string) {
			if err := f.transition(ctx, api.RingReadmit, url, ""); err != nil {
				f.logf("fleet: re-admitting %s: %v", url, err)
				return
			}
			if f.mship.State(url) == api.MemberAlive {
				f.readmissions.Add(1)
				f.breakerReset(url)
				f.logf("fleet: worker %s recovered; re-admitted at epoch %d", url, f.mship.Epoch())
			}
		},
	}
	go func() {
		defer close(f.proberDone)
		p.Run(ctx)
	}()
}

// Readmit runs one synchronous probe pass over the dead members —
// what the background prober does every interval, exposed for callers
// that know a worker just came back and don't want to wait out the
// tick.
func (f *Runner) Readmit(ctx context.Context) {
	for _, ms := range f.mship.View().Members {
		if ms.State != api.MemberDead || ctx.Err() != nil {
			continue
		}
		mem := f.lookupMember(ms.URL)
		if mem == nil || !f.probeAlive(mem) {
			continue
		}
		if err := f.transition(ctx, api.RingReadmit, ms.URL, ""); err != nil {
			f.logf("fleet: re-admitting %s: %v", ms.URL, err)
			continue
		}
		if f.mship.State(ms.URL) == api.MemberAlive {
			f.readmissions.Add(1)
			f.breakerReset(ms.URL)
			f.logf("fleet: worker %s recovered; re-admitted at epoch %d", ms.URL, f.mship.Epoch())
		}
	}
}

// Close stops the background prober (if WithReadmit started one). The
// runner remains usable afterwards; it just stops re-admitting dead
// workers on its own.
func (f *Runner) Close() {
	if f.proberStop != nil {
		f.proberStop()
		<-f.proberDone
		f.proberStop = nil
	}
}

// recordedSink marks keys moved only after their upload succeeds, so a
// failed copy stays eligible for the next migration pass.
type recordedSink struct {
	sink controlplane.Sink
	mark func(key string)
}

func (r recordedSink) PutResult(ctx context.Context, key string, blob []byte) error {
	if err := r.sink.PutResult(ctx, key, blob); err != nil {
		return err
	}
	r.mark(key)
	return nil
}

// Drain removes a worker from the fleet without losing cache affinity:
// the worker keeps serving its key range while every result it holds is
// copied to the worker's ring successors (the members that will own
// those keys once it is gone), and only then is it removed. Because the
// draining worker stays assignable until the cutover, a batch running
// concurrently keeps hitting its warm store, and the successors' stores
// are warm the moment they inherit the range — zero duplicate
// simulations on either side of the removal.
func (f *Runner) Drain(ctx context.Context, url string) error {
	url = strings.TrimRight(url, "/")
	mem := f.lookupMember(url)
	if mem == nil {
		return fmt.Errorf("fleet: unknown worker %s", url)
	}
	f.syncMembership(ctx)
	if st := f.mship.State(url); st != api.MemberAlive && st != api.MemberDraining {
		return fmt.Errorf("fleet: cannot drain %s worker %s", st, url)
	}
	pl := f.placementSnapshot()
	successors := func(i int) bool {
		return pl.members[i].url != url && f.assignable(pl.members[i].url)
	}
	hasSuccessor := false
	for i := range pl.members {
		if successors(i) {
			hasSuccessor = true
			break
		}
	}
	if !hasSuccessor {
		return errors.New("fleet: no assignable worker to drain to")
	}

	if err := f.transition(ctx, api.RingDrain, url, ""); err != nil {
		return err
	}

	// Migrate until a pass moves nothing new: results that land on the
	// drainer after a listing was served are caught by the next pass.
	var mu sync.Mutex
	moved := map[string]bool{}
	mark := func(key string) { mu.Lock(); moved[key] = true; mu.Unlock() }
	total := 0
	for pass := 0; pass < drainMaxPasses; pass++ {
		route := func(key string) controlplane.Sink {
			mu.Lock()
			done := moved[key]
			mu.Unlock()
			if done {
				return nil
			}
			succ := pl.ring.pick(key, successors)
			if succ < 0 {
				return nil
			}
			return recordedSink{sink: pl.members[succ].c, mark: mark}
		}
		n, failed, err := controlplane.Migrate(ctx, mem.c, route, f.logf)
		total += n
		f.drainMigrated.Add(int64(n))
		if err != nil {
			return fmt.Errorf("fleet: draining %s after %d blob(s): %w", url, total, err)
		}
		if n == 0 {
			if failed > 0 {
				f.logf("fleet: drain of %s: %d blob(s) failed to migrate; their keys lose cache affinity", url, failed)
			}
			break
		}
	}
	f.logf("fleet: drained %s: migrated %d blob(s) to ring successors", url, total)

	return f.transition(ctx, api.RingRemove, url, "")
}

// AddWorker scales the fleet up: health-check the newcomer, warm its
// store by copying over the key ranges it will steal from the current
// owners (computed against a candidate ring that already includes it),
// and only then announce it — so the first batch after the ring grows
// finds the newcomer's store already holding its range, and nothing is
// re-simulated. Re-adding a previously removed worker takes the same
// path.
func (f *Runner) AddWorker(ctx context.Context, url string) error {
	url = strings.TrimRight(url, "/")
	f.syncMembership(ctx)
	if st := f.mship.State(url); st == api.MemberAlive || st == api.MemberDraining {
		return nil // already serving
	}

	mem := f.lookupMember(url)
	if mem == nil {
		c, err := client.New(url, f.copts...)
		if err != nil {
			return err
		}
		mem = &member{url: url, c: c, runner: client.NewRunner(c, f.ropts...)}
	}
	hctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if _, err := mem.c.Stats(hctx); err != nil {
		return fmt.Errorf("fleet: worker %s failed its health check: %w", url, err)
	}

	// The candidate ring: today's members plus the newcomer. Keys whose
	// candidate owner is the newcomer are exactly its stolen ranges.
	pl := f.placementSnapshot()
	urls := make([]string, 0, len(pl.members)+1)
	newIdx := -1
	for i, m := range pl.members {
		urls = append(urls, m.url)
		if m.url == url {
			newIdx = i
		}
	}
	if newIdx < 0 {
		urls = append(urls, url)
		newIdx = len(urls) - 1
	}
	cand := newRing(urls)
	candAssignable := func(i int) bool {
		if i == newIdx {
			return true
		}
		return f.assignable(urls[i])
	}

	total := 0
	for _, src := range pl.members {
		if src.url == url || !f.assignable(src.url) {
			continue
		}
		route := func(key string) controlplane.Sink {
			if cand.pick(key, candAssignable) == newIdx {
				return mem.c
			}
			return nil
		}
		n, failed, err := controlplane.Migrate(ctx, src.c, route, f.logf)
		total += n
		f.backfilled.Add(int64(n))
		if err != nil {
			return fmt.Errorf("fleet: backfilling %s from %s after %d blob(s): %w", url, src.url, total, err)
		}
		if failed > 0 {
			f.logf("fleet: backfill of %s from %s: %d blob(s) failed; those keys re-simulate on first use", url, src.url, failed)
		}
	}
	f.logf("fleet: backfilled %s with %d blob(s) from previous owners", url, total)

	// Announce last: the ring grows only once the newcomer's store holds
	// its range.
	f.admit(mem)
	return f.transition(ctx, api.RingAdd, url, "")
}
