// Package fleet fans simulation batches out across N clusterd workers.
// Runner satisfies engine.Runner — the same seam the local engine and the
// single-host client runner implement — so everything written against it
// (sim.RunMatrixOn, the experiment harness, steerbench) scales from one
// process to a whole fleet by swapping the runner.
//
// Jobs are sharded by a consistent hash of their result content key: the
// same key always lands on the same worker, so each worker's tiered
// result store stays hot across runs and across clients, and resizing
// the fleet migrates only the key range adjacent to the new or removed
// worker. Each shard travels through that worker's client.Runner (one
// batch submission, SSE streaming with reconnect/backoff, fetch by key);
// the per-worker streams are merged into a single exactly-once result
// stream.
//
// All members share one HTTP transport (client.DefaultTransport, whose
// per-host idle pool is sized for serving-tier concurrency) unless
// WithClientOptions substitutes another, so concurrent batches reuse warm
// connections per worker instead of redialing under the stock transport's
// 2-idle-connections-per-host limit.
//
// Resilience is layered on top of the client's reconnect machinery:
// every worker is health-checked at construction, a worker whose
// transport fails for good mid-stream is marked dead and its unfinished
// jobs are re-sharded onto the survivors (each lost job re-runs exactly
// once — deterministic job failures are never retried), and an optional
// bounded work-stealing policy lets idle workers duplicate the tail of a
// straggler's shard, first result wins.
//
// Membership is live, not frozen (see lifecycle.go): a worker marked
// dead is periodically re-probed and re-admitted when it recovers
// (WithReadmit), Drain migrates a departing worker's key range to its
// ring successors before removing it, AddWorker backfills a newcomer's
// stolen ranges from the previous owners, and WithCoordinator makes N
// concurrent runners converge on one membership view through a shared
// epoch register. Placement is a pure function of the membership view:
// the ring's points depend only on member URLs, and non-assignable
// members are skipped by the clockwise walk — which is exactly
// equivalent to a ring without their points, so every state transition
// except adding a brand-new URL changes placement without rebuilding
// anything.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"clustersim/client"
	"clustersim/fleet/controlplane"
	"clustersim/internal/api"
	"clustersim/internal/engine"
	"clustersim/internal/sim"
)

// member is one clusterd worker: its transport and its runner. Liveness
// lives in the Runner's membership table, not here — the member itself
// is just the connection.
type member struct {
	url    string
	c      *client.Client
	runner *client.Runner
}

// config collects construction options.
type config struct {
	fallback      engine.Runner
	progress      func(done, total int, label string)
	logf          func(format string, args ...any)
	token         string
	maxParallel   int
	steal         int
	healthTimeout time.Duration
	clientOpts    []client.Option
	runnerOpts    []client.RunnerOption
	coordURL      string
	readmit       time.Duration
	breakerTrip   int
	breakerCool   time.Duration
}

// Option configures a fleet Runner.
type Option func(*config)

// WithFallback routes jobs that cannot travel (no declarative spec:
// custom programs, opaque passes, machine-tweak ablations) to a local
// runner instead of failing them — the same hybrid split client.Runner
// offers.
func WithFallback(local engine.Runner) Option {
	return func(c *config) { c.fallback = local }
}

// WithProgress mirrors engine.Options.Progress: fn is called after every
// finished job with the runner-lifetime completed and submitted counts.
// It may be called concurrently.
func WithProgress(fn func(done, total int, label string)) Option {
	return func(c *config) { c.progress = fn }
}

// WithLog sets the sink for operational messages — worker loss,
// re-sharding, work stealing, membership transitions. The default
// discards them.
func WithLog(fn func(format string, args ...any)) Option {
	return func(c *config) { c.logf = fn }
}

// WithToken attaches a bearer token to every worker's requests (the
// credential clusterd -token requires).
func WithToken(token string) Option {
	return func(c *config) { c.token = token }
}

// WithBatchParallel forwards a per-batch parallelism hint with every
// shard submission; each worker clamps it to its own limit.
func WithBatchParallel(n int) Option {
	return func(c *config) { c.maxParallel = n }
}

// WithSteal enables bounded work-stealing of the tail: a worker whose
// shard has drained may duplicate up to n of the jobs still in flight on
// other workers (per Stream call), first result wins. Stealing trades
// duplicate simulation work for tail latency when shards are unevenly
// expensive; the merged stream stays exactly-once either way.
func WithSteal(n int) Option {
	return func(c *config) { c.steal = n }
}

// WithHealthTimeout bounds the construction-time health check of the
// whole fleet (default 10s).
func WithHealthTimeout(d time.Duration) Option {
	return func(c *config) { c.healthTimeout = d }
}

// WithClientOptions passes extra options (backoff windows, retry budget,
// HTTP client) to every member's underlying client.
func WithClientOptions(opts ...client.Option) Option {
	return func(c *config) { c.clientOpts = append(c.clientOpts, opts...) }
}

// WithRunnerOptions passes extra options (tracer, progress hooks) to every
// member's per-worker runner — including workers admitted after
// construction.
func WithRunnerOptions(opts ...client.RunnerOption) Option {
	return func(c *config) { c.runnerOpts = append(c.runnerOpts, opts...) }
}

// WithCoordinator points the runner at a clusterd running in
// -coordinator mode. Membership transitions are compare-and-swapped
// through the coordinator's epoch register instead of applied locally,
// and the view is re-synced before every batch, so N concurrent runners
// sharing a coordinator converge on the same placement at the same
// epoch. A fresh (empty) coordinator is seeded with this runner's
// worker list.
func WithCoordinator(url string) Option {
	return func(c *config) { c.coordURL = strings.TrimRight(url, "/") }
}

// WithBreaker installs a per-worker circuit breaker: trip consecutive
// transport failures stop new shards from routing to the worker (even
// though it still answers health probes), and after cooldown a single
// half-open probe shard decides whether it rejoins. Complements the
// dead/readmit machinery, which only reacts to workers that are gone
// outright. trip <= 0 disables the policy (the default).
func WithBreaker(trip int, cooldown time.Duration) Option {
	return func(c *config) { c.breakerTrip, c.breakerCool = trip, cooldown }
}

// WithReadmit starts the liveness prober: every interval, workers the
// fleet marked dead are health-probed, and the ones that answer are
// re-admitted — their virtual ring points come back, restoring their
// exact pre-death placement. Zero (the default) leaves dead workers
// dead for the runner's lifetime. Stop the prober with Close.
func WithReadmit(interval time.Duration) Option {
	return func(c *config) { c.readmit = interval }
}

// placement is one consistent snapshot of the routable fleet: the member
// slice and the ring built over exactly those members' URLs, index-
// aligned. Reads take the snapshot once and use it throughout; member
// additions swap in a new one.
type placement struct {
	members []*member
	ring    *ring
}

// Runner shards engine jobs across a fleet of clusterd workers. Safe for
// concurrent use.
type Runner struct {
	mu    sync.RWMutex
	pl    placement
	byURL map[string]*member

	// mship is the membership table placement filters through;
	// coordinator binds it to the shared epoch register (and degrades to
	// local-only transitions when none is configured — never nil).
	mship       *controlplane.Membership
	coordinator *controlplane.Coordinator

	fallback engine.Runner
	progress func(done, total int, label string)
	logf     func(format string, args ...any)
	steal    int
	// maxRetries bounds how often one job may fail with a worker-loss
	// error before the error is delivered: enough for every member to
	// die under it plus a couple of transient blips on live members.
	maxRetries int

	// keyer computes result content keys for sharding. It never executes
	// anything: only its fingerprint memo and key derivation are used.
	keyer *engine.Engine

	// copts/ropts rebuild clients for workers that join after
	// construction (AddWorker, coordinator adoption).
	copts []client.Option
	ropts []client.RunnerOption

	submitted, completed atomic.Int64

	// Control-plane counters surfaced by FleetStats.
	readmissions, drainMigrated, backfilled atomic.Int64

	// Circuit-breaker policy (breaker.go); breakerTrip <= 0 disables it.
	breakerTrip     int
	breakerCooldown time.Duration
	breakerMu       sync.Mutex
	breakers        map[string]*breaker

	proberStop context.CancelFunc
	proberDone chan struct{}
}

var _ engine.Runner = (*Runner)(nil)

// *client.Client is the wire implementation of every controlplane seam.
var (
	_ controlplane.CoordClient = (*client.Client)(nil)
	_ controlplane.Source      = (*client.Client)(nil)
	_ controlplane.Sink        = (*client.Client)(nil)
)

// New builds a fleet runner over the clusterd instances at urls. Every
// worker is health-checked (a stats round trip, which also exercises the
// configured token) before the constructor returns; any unreachable or
// unauthorized worker fails construction with an error naming it.
func New(urls []string, opts ...Option) (*Runner, error) {
	if len(urls) == 0 {
		return nil, errors.New("fleet: no worker URLs")
	}
	cfg := config{healthTimeout: 10 * time.Second, logf: func(string, ...any) {}}
	for _, o := range opts {
		o(&cfg)
	}

	copts := cfg.clientOpts
	if cfg.token != "" {
		copts = append(copts[:len(copts):len(copts)], client.WithToken(cfg.token))
	}
	ropts := cfg.runnerOpts
	if cfg.maxParallel > 0 {
		ropts = append(ropts[:len(ropts):len(ropts)], client.WithBatchParallel(cfg.maxParallel))
	}

	// Canonicalize before the duplicate check and ring construction:
	// client.New trims trailing slashes too, so slash-variants of one
	// worker must count as the same member (and shard identically from
	// every client, whichever spelling it was configured with).
	canon := make([]string, 0, len(urls))
	seen := map[string]bool{}
	members := make([]*member, 0, len(urls))
	byURL := make(map[string]*member, len(urls))
	for _, u := range urls {
		u = strings.TrimRight(u, "/")
		if seen[u] {
			return nil, fmt.Errorf("fleet: duplicate worker URL %q", u)
		}
		seen[u] = true
		canon = append(canon, u)
		c, err := client.New(u, copts...)
		if err != nil {
			return nil, err
		}
		m := &member{url: u, c: c, runner: client.NewRunner(c, ropts...)}
		members = append(members, m)
		byURL[u] = m
	}

	ctx, cancel := context.WithTimeout(context.Background(), cfg.healthTimeout)
	defer cancel()
	errs := make([]error, len(members))
	var wg sync.WaitGroup
	for i, m := range members {
		wg.Add(1)
		go func(i int, m *member) {
			defer wg.Done()
			if _, err := m.c.Stats(ctx); err != nil {
				errs[i] = fmt.Errorf("fleet: worker %s failed its health check: %w", m.url, err)
			}
		}(i, m)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}

	f := &Runner{
		pl:         placement{members: members, ring: newRing(canon)},
		byURL:      byURL,
		mship:      controlplane.NewMembership(canon...),
		fallback:   cfg.fallback,
		progress:   cfg.progress,
		logf:       cfg.logf,
		steal:      cfg.steal,
		maxRetries: len(members) + 2,
		keyer:      engine.New(engine.Options{Parallelism: 1, DisableCache: true}),
		copts:      copts,
		ropts:      ropts,
	}
	if cfg.breakerTrip > 0 {
		f.breakerTrip, f.breakerCooldown = cfg.breakerTrip, cfg.breakerCool
		if f.breakerCooldown <= 0 {
			f.breakerCooldown = 5 * time.Second
		}
		f.breakers = make(map[string]*breaker, len(members))
	}
	f.coordinator = controlplane.NewCoordinator(nil, f.mship)

	if cfg.coordURL != "" {
		if err := f.connectCoordinator(ctx, cfg.coordURL); err != nil {
			return nil, err
		}
	}
	if cfg.readmit > 0 {
		f.startProber(cfg.readmit)
	}
	return f, nil
}

// placementSnapshot returns the current (members, ring) pair.
func (f *Runner) placementSnapshot() placement {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.pl
}

// lookupMember resolves a canonical URL to its member.
func (f *Runner) lookupMember(url string) *member {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.byURL[url]
}

// assignable reports whether the membership table allows routing new
// work to url.
func (f *Runner) assignable(url string) bool { return f.mship.Assignable(url) }

// Members returns the worker URLs, in construction/admission order.
func (f *Runner) Members() []string {
	pl := f.placementSnapshot()
	urls := make([]string, len(pl.members))
	for i, m := range pl.members {
		urls[i] = m.url
	}
	return urls
}

// Alive reports how many workers the fleet can currently route to
// (alive or draining).
func (f *Runner) Alive() int {
	n := 0
	for _, m := range f.placementSnapshot().members {
		if f.assignable(m.url) {
			n++
		}
	}
	return n
}

// Run executes one job and blocks until its result is available.
func (f *Runner) Run(ctx context.Context, job engine.Job) *engine.Result {
	for jr := range f.Stream(ctx, []engine.Job{job}) {
		return jr.Result
	}
	return &engine.Result{Simpoint: job.Simpoint, Setup: job.Setup.Label,
		Err: errors.New("fleet: stream yielded no result")}
}

// Stats aggregates the work attributable to this runner: the sum of
// every routable member runner's server-counter deltas, plus the
// fallback's counters when one is configured. Dead and removed members
// are skipped — their counters are unreachable, so work a member
// completed and delivered before it was lost drops out of the aggregate
// (its *unfinished* jobs re-ran on survivors and are counted there).
// After a mid-run worker loss the totals therefore undercount rather
// than block on a dead host.
func (f *Runner) Stats() engine.CacheStats {
	// One stats round trip per routable member, in parallel: a single
	// slow member costs its own latency, not N-cumulative timeouts.
	members := f.placementSnapshot().members
	parts := make([]engine.CacheStats, len(members))
	var wg sync.WaitGroup
	for i, m := range members {
		if !f.assignable(m.url) {
			continue
		}
		wg.Add(1)
		go func(i int, m *member) {
			defer wg.Done()
			parts[i] = m.runner.Stats()
		}(i, m)
	}
	wg.Wait()
	var total engine.CacheStats
	for _, p := range parts {
		total = total.Add(p)
	}
	if f.fallback != nil {
		total = total.Add(f.fallback.Stats())
	}
	return total
}

// task is one remoteable job in flight: its index in the submitted batch
// and the result content key it shards by. err carries the last
// worker-loss failure observed, attempts how many times the task has
// failed that way (bounding its retries).
type task struct {
	idx      int
	key      string
	err      error
	attempts int
}

// Stream submits the jobs and returns a channel yielding each result
// exactly once as it completes. Remoteable jobs shard across the fleet;
// the rest go to the fallback concurrently. The channel is buffered to
// hold every result and closed once all jobs finish. When a coordinator
// is configured the membership view is re-synced first, so a runner
// never submits a batch against an epoch another runner has already
// moved past.
func (f *Runner) Stream(ctx context.Context, jobs []engine.Job) <-chan engine.JobResult {
	out := make(chan engine.JobResult, len(jobs))
	f.submitted.Add(int64(len(jobs)))
	go func() {
		defer close(out)
		f.syncMembership(ctx)

		var tasks []task
		var localJobs []engine.Job
		var localIdx []int
		for i, job := range jobs {
			if _, err := sim.SpecFromJob(job); err != nil {
				if f.fallback != nil {
					localJobs = append(localJobs, jobs[i])
					localIdx = append(localIdx, i)
				} else {
					out <- f.finish(engine.JobResult{Index: i, Job: jobs[i], Result: &engine.Result{
						Simpoint: jobs[i].Simpoint, Setup: jobs[i].Setup.Label,
						Err: fmt.Errorf("fleet: job not remoteable and no local fallback: %w", err),
					}})
				}
				continue
			}
			key, ok := f.keyer.ResultKey(job)
			if !ok {
				// Unreachable: every remoteable job has a content key
				// (SpecFromJob rejects the uncacheable shapes). Shard by
				// identity so a future divergence degrades instead of dying.
				key = job.Simpoint.Name + "|" + job.Setup.Label
			}
			tasks = append(tasks, task{idx: i, key: key})
		}

		var wg sync.WaitGroup
		if len(localJobs) > 0 {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for jr := range f.fallback.Stream(ctx, localJobs) {
					out <- f.finish(engine.JobResult{
						Index: localIdx[jr.Index], Job: jr.Job, Result: jr.Result,
					})
				}
			}()
		}
		if len(tasks) > 0 {
			wg.Add(1)
			go func() {
				defer wg.Done()
				f.runSharded(ctx, jobs, tasks, out)
			}()
		}
		wg.Wait()
	}()
	return out
}

// finish updates the runner-lifetime progress counters around a result.
func (f *Runner) finish(jr engine.JobResult) engine.JobResult {
	done := f.completed.Add(1)
	if f.progress != nil {
		label := ""
		if jr.Job.Simpoint != nil {
			label = jr.Job.Simpoint.Name + "/" + jr.Job.Setup.Label
		}
		f.progress(int(done), int(f.submitted.Load()), label)
	}
	return jr
}

// retryable classifies a failed job result: true means the failure looks
// like worker loss (transport broke and the client's reconnect budget
// ran out), so the job is safe and worthwhile to re-run on a survivor.
// Failures the server itself reported — protocol refusals (api.Error)
// and executed-but-failed jobs (client.JobError) — are deterministic and
// would fail identically anywhere; context cancellation is the caller's
// own signal. A version-mismatched worker counts as lost: the job may
// still succeed on a correctly versioned survivor.
func retryable(err error) bool {
	if err == nil {
		return false
	}
	var apiErr *api.Error
	var jobErr *client.JobError
	switch {
	case errors.As(err, &apiErr), errors.As(err, &jobErr),
		errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return false
	}
	return true
}

// roundState is the shared bookkeeping of one sharding round: which
// tasks are still unresolved per member (the steal pool), which were
// already stolen, how much of the steal budget remains, and the requeue
// pool — tasks stranded by a lost worker, waiting for any live member
// to pick them up.
type roundState struct {
	mu          sync.Mutex
	outstanding map[int]map[int]task // member -> task idx -> task
	stolenFrom  map[int]bool         // task idx -> already duplicated by a thief
	stealLeft   int
	requeued    []task // lost workers' unfinished tasks, unowned
}

// requeue returns a lost worker's task to the pool.
func (rs *roundState) requeue(t task) {
	rs.mu.Lock()
	rs.requeued = append(rs.requeued, t)
	rs.mu.Unlock()
}

// takeRequeued hands the caller exclusive ownership of every task
// currently in the requeue pool.
func (rs *roundState) takeRequeued() []task {
	rs.mu.Lock()
	ts := rs.requeued
	rs.requeued = nil
	rs.mu.Unlock()
	return ts
}

// resolve removes a task from its owner's outstanding set.
func (rs *roundState) resolve(m, idx int) {
	rs.mu.Lock()
	delete(rs.outstanding[m], idx)
	rs.mu.Unlock()
}

// stealFor hands thief tasks still outstanding on other members and not
// already stolen, up to the entire remaining steal budget — first
// drained worker takes what it can; the bound is global, not divided
// per thief.
func (rs *roundState) stealFor(thief int) []task {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	var got []task
	for m, ts := range rs.outstanding {
		if m == thief {
			continue
		}
		for idx, t := range ts {
			if rs.stealLeft <= 0 {
				return got
			}
			if rs.stolenFrom[idx] {
				continue
			}
			rs.stolenFrom[idx] = true
			rs.stealLeft--
			got = append(got, t)
		}
	}
	return got
}

// runSharded drives the remoteable tasks to completion: shard by ring,
// stream every shard, deliver each original job index exactly once, and
// re-shard tasks stranded on lost workers onto the survivors.
// Termination: every re-queue burns one of its task's bounded retry
// attempts (tasks that exhaust them deliver their error), so the round
// loop cannot spin — at most maxRetries+1 routed rounds, and in the
// common worker-loss case each round also shrinks the alive set. A
// round in which every surviving member was refused by its circuit
// breaker routes nothing and burns nothing: it waits out the shortest
// breaker cooldown and retries, so a correlated blip is ridden out
// rather than failing the batch, while a genuinely sick fleet still
// fails tasks (and burns their retries) once probes are re-admitted.
// Each round takes a fresh placement snapshot, so workers re-admitted
// by the prober (or added by another runner through the coordinator)
// rejoin the sharding between rounds.
func (f *Runner) runSharded(ctx context.Context, jobs []engine.Job, tasks []task, out chan<- engine.JobResult) {
	var mu sync.Mutex
	delivered := make(map[int]bool, len(tasks))
	// deliver forwards a result unless the job already produced one (a
	// stolen duplicate, or a failover racing a slow success) — the
	// exactly-once guarantee of the merged stream.
	deliver := func(jr engine.JobResult) {
		mu.Lock()
		if delivered[jr.Index] {
			mu.Unlock()
			return
		}
		delivered[jr.Index] = true
		mu.Unlock()
		out <- f.finish(jr)
	}
	isDelivered := func(idx int) bool {
		mu.Lock()
		defer mu.Unlock()
		return delivered[idx]
	}

	pending := tasks
	stealBudget := f.steal // spans rounds: the WithSteal bound is per Stream call
	for round := 0; len(pending) > 0; round++ {
		pl := f.placementSnapshot()
		// This round's routing view: membership first, then the circuit
		// breaker. Breaker admission is computed once per member per round,
		// so a half-open circuit spends its single probe slot on one shard
		// rather than being consulted per key.
		routable := make([]bool, len(pl.members))
		breakerHeld := false // some member is alive but breaker-refused
		for i, mm := range pl.members {
			ok := f.assignable(mm.url)
			if ok && !f.breakerAllows(mm.url) {
				breakerHeld = true
				ok = false
			}
			routable[i] = ok
		}
		alive := func(i int) bool { return routable[i] }
		groups := map[int][]task{}
		var stranded []task
		for _, t := range pending {
			if m := pl.ring.pick(t.key, alive); m >= 0 {
				groups[m] = append(groups[m], t)
			} else {
				stranded = append(stranded, t)
			}
		}
		// A half-open member granted a probe this round but handed no
		// task has no request whose outcome could resolve the probe —
		// return the slot so the breaker cannot wedge half-open.
		for i, mm := range pl.members {
			if routable[i] && len(groups[i]) == 0 {
				f.breakerProbeUnused(mm.url)
			}
		}
		var held []task
		if len(stranded) > 0 {
			if breakerHeld {
				// No member took the keys, but only because every
				// survivor's breaker refused this round — a correlated
				// blip (network hiccup, rolling restart), not a lost
				// fleet. Hold the tasks: cooldown re-admits a probe,
				// and genuinely sick workers still fail tasks until
				// their bounded retries deliver the error.
				held = stranded
			} else {
				for _, t := range stranded {
					err := t.err
					if err == nil {
						err = errors.New("fleet: no workers alive")
					}
					deliver(engine.JobResult{Index: t.idx, Job: jobs[t.idx], Result: &engine.Result{
						Simpoint: jobs[t.idx].Simpoint, Setup: jobs[t.idx].Setup.Label,
						Err: fmt.Errorf("fleet: every worker lost (last failure: %w)", err),
					}})
				}
			}
		}
		if len(groups) == 0 {
			if len(held) == 0 {
				return
			}
			f.logf("fleet: every breaker open; holding %d task(s) until a probe is re-admitted", len(held))
			select {
			case <-ctx.Done():
				for _, t := range held {
					err := t.err
					if err == nil {
						err = ctx.Err()
					}
					deliver(engine.JobResult{Index: t.idx, Job: jobs[t.idx], Result: &engine.Result{
						Simpoint: jobs[t.idx].Simpoint, Setup: jobs[t.idx].Setup.Label,
						Err: fmt.Errorf("fleet: canceled while waiting out breaker cooldown (last failure: %w)", err),
					}})
				}
				return
			case <-time.After(f.breakerRetryDelay()):
			}
			pending = held
			continue
		}
		if round > 0 {
			f.logf("fleet: retry round %d: re-sharding %d job(s) across %d surviving worker(s)",
				round, len(pending)-len(stranded), f.Alive())
		}

		rs := &roundState{
			outstanding: make(map[int]map[int]task, len(groups)),
			stolenFrom:  map[int]bool{},
			stealLeft:   stealBudget,
		}
		for m, ts := range groups {
			rs.outstanding[m] = make(map[int]task, len(ts))
			for _, t := range ts {
				rs.outstanding[m][t.idx] = t
			}
		}

		var wg sync.WaitGroup
		for m, ts := range groups {
			wg.Add(1)
			go func(m int, ts []task) {
				defer wg.Done()
				f.runGroup(ctx, pl, m, ts, jobs, rs, deliver, isDelivered)
			}(m, ts)
		}
		wg.Wait()
		stealBudget = rs.stealLeft // whatever this round didn't use carries over

		// Tasks still in the requeue pool had their owner die after every
		// other member had already drained and exited — the next round
		// re-shards them. One both requeued and delivered (a thief
		// finished it first) must not run again.
		pending = pending[:0]
		for _, t := range rs.takeRequeued() {
			if !isDelivered(t.idx) {
				pending = append(pending, t)
			}
		}
		if len(pending) > 0 {
			// Between failover rounds, pull the freshest view: a worker
			// another runner re-admitted or added may take the strays.
			f.syncMembership(ctx)
		}
	}
}

// runGroup streams one member's shard; a task failing with a worker-loss
// error marks the member dead and returns the task to the round's
// requeue pool. A member that drains its shard does not idle behind the
// round barrier: it first adopts requeued tasks from lost workers (so
// failover overlaps the surviving shards instead of serializing after
// them), then — if the steal policy is on — duplicates part of the tail
// still in flight on other members. Stolen attempts never requeue: the
// owning member remains responsible for each of its tasks, so a failed
// duplicate is simply dropped.
func (f *Runner) runGroup(ctx context.Context, pl placement, m int, ts []task, jobs []engine.Job,
	rs *roundState, deliver func(engine.JobResult), isDelivered func(int) bool) {
	mem := pl.members[m]
	if f.streamTasks(ctx, pl, m, ts, jobs, rs, deliver, true) {
		return // lost mid-shard: its own unfinished tasks are requeued
	}

	// Adopt work stranded by workers that died while this one ran. The
	// pool hand-off is exclusive, so adopted tasks run exactly once;
	// loop, because more strandings can land while an adopted batch runs.
	for ctx.Err() == nil {
		adopted := rs.takeRequeued()
		// A requeued task a thief already finished must not re-run.
		kept := adopted[:0]
		for _, t := range adopted {
			if !isDelivered(t.idx) {
				kept = append(kept, t)
			}
		}
		if len(kept) == 0 {
			break
		}
		f.logf("fleet: worker %s adopting %d job(s) from lost worker(s)", mem.url, len(kept))
		if f.streamTasks(ctx, pl, m, kept, jobs, rs, deliver, false) {
			return // this member died too; its leftovers are back in the pool
		}
	}

	if f.steal <= 0 || ctx.Err() != nil || !f.assignable(mem.url) {
		return
	}
	stolen := rs.stealFor(m)
	if len(stolen) == 0 {
		return
	}
	f.logf("fleet: worker %s stealing %d straggler job(s)", mem.url, len(stolen))
	dup := make([]engine.Job, len(stolen))
	for i, t := range stolen {
		dup[i] = jobs[t.idx]
	}
	for jr := range mem.runner.Stream(ctx, dup) {
		t := stolen[jr.Index]
		if err := jr.Result.Err; err != nil && ctx.Err() == nil {
			// A failed duplicate is always dropped — the owner still
			// carries the task. Even a "terminal" failure here may be
			// thief-local state (an evicted blob 404ing the fetch), and
			// delivering it would preempt the owner's eventual success.
			// Dead-marking needs the same liveness probe as streamTasks:
			// a transient blip on a stolen job must not cost the fleet a
			// healthy worker.
			if retryable(err) {
				f.breakerFailure(mem.url)
				if f.assignable(mem.url) && !f.probeAlive(mem) {
					f.markLost(mem, fmt.Errorf("lost while stealing: %w", err))
				}
			}
			continue
		}
		f.breakerSuccess(mem.url)
		deliver(engine.JobResult{Index: t.idx, Job: jobs[t.idx], Result: jr.Result})
	}
}

// streamTasks runs one batch of exclusively owned tasks on member m,
// delivering successes and terminal failures, requeueing worker-loss
// failures. A failure only marks the member dead after a liveness probe
// also fails — a single dropped connection on a one-shot request
// (submit, result fetch) must not permanently halve the fleet — and
// each task's retries are bounded so a flapping-but-alive worker cannot
// loop a job forever. own marks the member's originally sharded tasks,
// which are tracked in the steal pool and must be resolved out of it.
// Reports whether the member became unroutable along the way.
func (f *Runner) streamTasks(ctx context.Context, pl placement, m int, ts []task, jobs []engine.Job,
	rs *roundState, deliver func(engine.JobResult), own bool) (died bool) {
	mem := pl.members[m]
	batch := make([]engine.Job, len(ts))
	for i, t := range ts {
		batch[i] = jobs[t.idx]
	}
	probed, alive := false, false // one probe per batch at most
	for jr := range mem.runner.Stream(ctx, batch) {
		t := ts[jr.Index]
		if own {
			rs.resolve(m, t.idx)
		}
		if err := jr.Result.Err; err != nil && ctx.Err() == nil && retryable(err) {
			f.breakerFailure(mem.url)
			t.attempts++
			t.err = err
			if t.attempts > f.maxRetries {
				deliver(engine.JobResult{Index: t.idx, Job: jobs[t.idx], Result: &engine.Result{
					Simpoint: jobs[t.idx].Simpoint, Setup: jobs[t.idx].Setup.Label,
					Err: fmt.Errorf("fleet: job failed %d times across workers (last: %w)", t.attempts, err),
				}})
				continue
			}
			if !probed && f.assignable(mem.url) {
				probed, alive = true, f.probeAlive(mem)
			}
			if alive {
				f.logf("fleet: transient failure on %s (%v); retrying job", mem.url, err)
			} else {
				f.markLost(mem, err)
			}
			rs.requeue(t)
			continue
		}
		// The worker answered — deterministic job failures included — so
		// its transport is healthy as far as the breaker is concerned.
		f.breakerSuccess(mem.url)
		deliver(engine.JobResult{Index: t.idx, Job: jobs[t.idx], Result: jr.Result})
	}
	return !f.assignable(mem.url)
}

// probeAlive asks whether a worker that just failed a request is still
// there at all: a quick liveness round trip, distinguishing a transient
// blip (retry on the same member) from a lost worker (mark dead and
// re-shard).
func (f *Runner) probeAlive(mem *member) bool {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return mem.c.Health(ctx) == nil
}
