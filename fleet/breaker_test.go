package fleet

import (
	"testing"
	"time"
)

// fakeBreakerClock drives a breaker through time deterministically.
type fakeBreakerClock struct{ t time.Time }

func (c *fakeBreakerClock) now() time.Time          { return c.t }
func (c *fakeBreakerClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func testBreaker(trip int, cool time.Duration) (*breaker, *fakeBreakerClock) {
	clk := &fakeBreakerClock{t: time.Unix(1000, 0)}
	b := newBreaker(trip, cool)
	b.now = clk.now
	return b, clk
}

func TestBreakerTripsOnConsecutiveFailures(t *testing.T) {
	b, _ := testBreaker(3, time.Minute)
	for i := 0; i < 2; i++ {
		b.failure()
		if !b.allow() {
			t.Fatalf("opened after %d failures, trip is 3", i+1)
		}
	}
	b.failure()
	if b.allow() {
		t.Fatal("still closed after reaching the trip threshold")
	}
	if got := b.current(); got != BreakerOpen {
		t.Fatalf("state = %q, want open", got)
	}
}

func TestBreakerSuccessResetsStreak(t *testing.T) {
	b, _ := testBreaker(3, time.Minute)
	// Interleaved successes keep the consecutive count from accumulating.
	for i := 0; i < 10; i++ {
		b.failure()
		b.failure()
		b.success()
	}
	if !b.allow() || b.current() != BreakerClosed {
		t.Fatalf("non-consecutive failures tripped the breaker (state %q)", b.current())
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	b, clk := testBreaker(1, time.Minute)
	b.failure()
	if b.allow() {
		t.Fatal("open breaker allowed traffic before cooldown")
	}
	clk.advance(time.Minute)
	if !b.allow() {
		t.Fatal("cooldown elapsed but probe not granted")
	}
	if got := b.current(); got != BreakerHalfOpen {
		t.Fatalf("state = %q, want half-open", got)
	}
	if b.allow() {
		t.Fatal("second probe granted while the first is outstanding")
	}

	// A failed probe re-opens and re-arms the cooldown.
	b.failure()
	if got := b.current(); got != BreakerOpen {
		t.Fatalf("state after failed probe = %q, want open", got)
	}
	if b.allow() {
		t.Fatal("re-opened breaker allowed traffic immediately")
	}

	// A successful probe closes for good.
	clk.advance(time.Minute)
	if !b.allow() {
		t.Fatal("second probe not granted after re-cooldown")
	}
	b.success()
	if got := b.current(); got != BreakerClosed {
		t.Fatalf("state after successful probe = %q, want closed", got)
	}
	if !b.allow() || !b.allow() {
		t.Fatal("closed breaker limited traffic")
	}
}

func TestBreakerUnusedProbeRearms(t *testing.T) {
	// A granted probe that never produced an outcome (no task routed to
	// the worker that round) must not wedge the breaker half-open: the
	// router returns the slot explicitly via probeUnused.
	b, clk := testBreaker(1, time.Second)
	b.failure()
	clk.advance(time.Second)
	if !b.allow() {
		t.Fatal("probe not granted")
	}
	if b.allow() {
		t.Fatal("probe slot granted twice")
	}
	b.probeUnused()
	if !b.allow() {
		t.Fatal("returned probe slot never re-armed")
	}
}

func TestBreakerSlowProbeStaysExclusive(t *testing.T) {
	// An in-flight probe legitimately slower than the cooldown must not
	// be joined by a second probe: elapsed time alone never re-arms the
	// slot, only the probe's own outcome (or an explicit probeUnused).
	b, clk := testBreaker(1, time.Second)
	b.failure()
	clk.advance(time.Second)
	if !b.allow() {
		t.Fatal("probe not granted")
	}
	clk.advance(10 * time.Second)
	if b.allow() {
		t.Fatal("second probe granted while the first is still in flight")
	}
	b.success()
	if !b.allow() || b.current() != BreakerClosed {
		t.Fatalf("slow probe's success did not close the breaker (state %q)", b.current())
	}
}

func TestBreakerRetryAfter(t *testing.T) {
	b, clk := testBreaker(1, time.Second)
	if d := b.retryAfter(); d != 0 {
		t.Fatalf("closed retryAfter = %v, want 0", d)
	}
	b.failure()
	if d := b.retryAfter(); d != time.Second {
		t.Fatalf("freshly opened retryAfter = %v, want 1s", d)
	}
	clk.advance(600 * time.Millisecond)
	if d := b.retryAfter(); d != 400*time.Millisecond {
		t.Fatalf("mid-cooldown retryAfter = %v, want 400ms", d)
	}
	clk.advance(400 * time.Millisecond)
	if d := b.retryAfter(); d != 0 {
		t.Fatalf("cooled-down retryAfter = %v, want 0", d)
	}
	if !b.allow() {
		t.Fatal("probe not granted after cooldown")
	}
	// While the probe is in flight there is no timer to wait out, only a
	// poll bound.
	if d := b.retryAfter(); d != time.Second {
		t.Fatalf("in-flight-probe retryAfter = %v, want the cooldown", d)
	}
}

func TestBreakerResetClosesImmediately(t *testing.T) {
	b, _ := testBreaker(1, time.Hour)
	b.failure()
	if b.allow() {
		t.Fatal("not open")
	}
	b.reset()
	if !b.allow() || b.current() != BreakerClosed {
		t.Fatalf("reset did not close the breaker (state %q)", b.current())
	}
}
