package fleet_test

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"clustersim/client"
	"clustersim/fleet"
	"clustersim/internal/engine"
	"clustersim/internal/pipeline"
	"clustersim/internal/service"
	"clustersim/internal/sim"
	"clustersim/internal/store"
	"clustersim/internal/workload"
)

// worker is one in-process clusterd: a real service stack behind an
// interceptable handler, so tests can kill or delay it mid-protocol.
type worker struct {
	ts  *httptest.Server
	eng *engine.Engine
	svc http.Handler

	dead        atomic.Bool  // every request aborts at the transport level
	sick        atomic.Bool  // like dead, but liveness probes still answer
	killOnIndex atomic.Int64 // arm: die right after the Nth submit (1-based)
	submits     atomic.Int64
	streamDelay time.Duration // slows SSE delivery: a straggler worker
}

func (w *worker) ServeHTTP(rw http.ResponseWriter, r *http.Request) {
	if w.dead.Load() {
		panic(http.ErrAbortHandler) // the transport dies, no HTTP answer
	}
	if w.sick.Load() && r.URL.Path != "/healthz" {
		// Sick, not gone: the breaker's target case — health probes pass
		// while every real request dies at the transport.
		panic(http.ErrAbortHandler)
	}
	if w.streamDelay > 0 && strings.HasSuffix(r.URL.Path, "/stream") {
		time.Sleep(w.streamDelay)
	}
	isSubmit := r.Method == http.MethodPost && r.URL.Path == "/v1/jobs"
	w.svc.ServeHTTP(rw, r)
	if isSubmit && w.submits.Add(1) == w.killOnIndex.Load() {
		// The submission was accepted and its jobs are running; every
		// request from here on — the SSE stream, result fetches — hits
		// the dead check above. This is "worker lost mid-stream".
		w.dead.Store(true)
	}
}

func startWorker(t *testing.T) *worker {
	t.Helper()
	st := store.NewTiered(store.NewMemory(64<<20), store.NewMemory(64<<20))
	eng := engine.New(engine.Options{Parallelism: 2, ResultStore: st})
	w := &worker{eng: eng, svc: service.New(context.Background(), eng, st)}
	w.ts = httptest.NewServer(w)
	t.Cleanup(w.ts.Close)
	return w
}

// fastClient makes failover quick enough for tests: tiny backoff, two
// reconnect attempts before a worker counts as lost.
func fastClient() fleet.Option {
	return fleet.WithClientOptions(
		client.WithBackoff(time.Millisecond, 5*time.Millisecond),
		client.WithRetries(2),
	)
}

// suiteJobs builds a unique-job matrix over n suite workloads × the two
// base setups.
func suiteJobs(t *testing.T, n int) ([]*workload.Simpoint, []engine.Setup, []engine.Job) {
	t.Helper()
	all := workload.QuickSuite()
	if n > len(all) {
		t.Fatalf("want %d workloads, quick suite has %d", n, len(all))
	}
	sps := all[:n]
	setups := []engine.Setup{sim.SetupOP(2), sim.SetupVC(2, 2)}
	var jobs []engine.Job
	for _, sp := range sps {
		for _, s := range setups {
			jobs = append(jobs, engine.Job{Simpoint: sp, Setup: s, Opts: engine.RunOptions{NumUops: 2000}})
		}
	}
	return sps, setups, jobs
}

// collect drains a result stream, failing on duplicate deliveries — the
// exactly-once contract of the merged stream.
func collect(t *testing.T, out <-chan engine.JobResult, want int) map[int]engine.JobResult {
	t.Helper()
	got := map[int]engine.JobResult{}
	deadline := time.After(120 * time.Second)
	for len(got) < want {
		select {
		case jr, ok := <-out:
			if !ok {
				t.Fatalf("stream closed after %d of %d results", len(got), want)
			}
			if _, dup := got[jr.Index]; dup {
				t.Fatalf("job %d delivered twice", jr.Index)
			}
			got[jr.Index] = jr
		case <-deadline:
			t.Fatalf("timed out with %d of %d results", len(got), want)
		}
	}
	if jr, ok := <-out; ok {
		t.Fatalf("extra result for job %d after all %d arrived", jr.Index, want)
	}
	return got
}

// A two-worker fleet produces results indistinguishable from a local
// engine's, spreads the work across both workers' stores, and a second
// fleet over the same workers is served entirely from their caches.
func TestFleetMatchesLocalEngine(t *testing.T) {
	w1, w2 := startWorker(t), startWorker(t)
	urls := []string{w1.ts.URL, w2.ts.URL}
	ctx := context.Background()

	f, err := fleet.New(urls, fastClient())
	if err != nil {
		t.Fatal(err)
	}
	sps, setups, _ := suiteJobs(t, 8)
	got, err := engine.RunMatrixOn(ctx, f, sps, setups, engine.RunOptions{NumUops: 2000})
	if err != nil {
		t.Fatal(err)
	}
	local := engine.New(engine.Options{Parallelism: 2})
	want, err := engine.RunMatrixOn(ctx, local, sps, setups, engine.RunOptions{NumUops: 2000})
	if err != nil {
		t.Fatal(err)
	}
	for i := range sps {
		for j := range setups {
			g, w := got[i][j], want[i][j]
			if g.Err != nil || w.Err != nil {
				t.Fatalf("cell %d/%d errs: %v / %v", i, j, g.Err, w.Err)
			}
			if g.Simpoint != sps[i] {
				t.Errorf("cell %d/%d not re-bound to the submitted simpoint", i, j)
			}
			if !reflect.DeepEqual(g.Metrics, w.Metrics) {
				t.Errorf("cell %d/%d metrics diverge", i, j)
			}
		}
	}

	// The consistent hash spread the batch: both workers simulated, and
	// together they covered every unique job exactly once.
	s1, s2 := w1.eng.Stats().Simulations, w2.eng.Stats().Simulations
	if s1 == 0 || s2 == 0 {
		t.Errorf("shard split degenerate: worker sims %d / %d", s1, s2)
	}
	if total := int(s1 + s2); total != len(sps)*len(setups) {
		t.Errorf("%d simulations across the fleet for %d unique jobs", total, len(sps)*len(setups))
	}
	if st := f.Stats(); st.Simulations != s1+s2 {
		t.Errorf("fleet stats report %d simulations, workers executed %d", st.Simulations, s1+s2)
	}

	// A fresh fleet re-running the same matrix executes nothing: every
	// key lands on the worker whose store already holds it.
	f2, err := fleet.New(urls, fastClient())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := engine.RunMatrixOn(ctx, f2, sps, setups, engine.RunOptions{NumUops: 2000}); err != nil {
		t.Fatal(err)
	}
	if st := f2.Stats(); st.Simulations != 0 {
		t.Errorf("rerun executed %d simulations, want 0 (store affinity broken)", st.Simulations)
	}
}

// Killing a worker mid-stream must not lose or duplicate work: its
// unfinished jobs re-shard onto the survivor, every job yields exactly
// one successful result, and the loss is logged.
func TestFleetKillWorkerMidStream(t *testing.T) {
	w1, w2 := startWorker(t), startWorker(t)
	ctx := context.Background()

	var logMu sync.Mutex
	var logs []string
	f, err := fleet.New([]string{w1.ts.URL, w2.ts.URL}, fastClient(),
		fleet.WithLog(func(format string, args ...any) {
			logMu.Lock()
			logs = append(logs, fmt.Sprintf(format, args...))
			logMu.Unlock()
		}))
	if err != nil {
		t.Fatal(err)
	}

	// Arm worker 2: it accepts the fleet's shard submission, then its
	// transport dies — jobs in flight, none of their results fetchable.
	w2.killOnIndex.Store(1)

	_, _, jobs := suiteJobs(t, 8)
	got := collect(t, f.Stream(ctx, jobs), len(jobs))
	for idx, jr := range got {
		if jr.Result.Err != nil {
			t.Errorf("job %d failed despite failover: %v", idx, jr.Result.Err)
		}
	}

	// Every lost job re-ran exactly once, on the survivor: with worker
	// 2's results unreachable, worker 1 must have executed the whole
	// unique-job set (its engine dedups, so re-runs can't double-count).
	if s1 := w1.eng.Stats().Simulations; int(s1) != len(jobs) {
		t.Errorf("survivor executed %d simulations, want %d", s1, len(jobs))
	}
	if f.Alive() != 1 {
		t.Errorf("fleet reports %d workers alive, want 1", f.Alive())
	}
	logMu.Lock()
	defer logMu.Unlock()
	joined := strings.Join(logs, "\n")
	if !strings.Contains(joined, "lost") || !strings.Contains(joined, "re-sharding") {
		t.Errorf("worker loss not logged; logs:\n%s", joined)
	}

	// The dead worker is sticky: a later batch routes entirely to the
	// survivor without new failures.
	_, _, more := suiteJobs(t, 4)
	for idx, jr := range collect(t, f.Stream(ctx, more), len(more)) {
		if jr.Result.Err != nil {
			t.Errorf("post-loss job %d failed: %v", idx, jr.Result.Err)
		}
	}
}

// A round in which every worker is alive but breaker-refused (breakers
// tripped by an earlier batch, e.g. a correlated blip) must hold the
// work through the cooldown and probe, not fail it as "every worker
// lost".
func TestFleetAllBreakersOpenHoldsNotFails(t *testing.T) {
	w1, w2 := startWorker(t), startWorker(t)

	var logMu sync.Mutex
	var logs []string
	f, err := fleet.New([]string{w1.ts.URL, w2.ts.URL}, fastClient(),
		fleet.WithBreaker(1, 2*time.Second),
		fleet.WithLog(func(format string, args ...any) {
			logMu.Lock()
			logs = append(logs, fmt.Sprintf(format, args...))
			logMu.Unlock()
		}))
	if err != nil {
		t.Fatal(err)
	}
	w1.sick.Store(true)
	w2.sick.Store(true)

	// The first batch fails outright — both workers answer health probes
	// but abort every job request — exhausting each task's retries and
	// leaving both breakers open while the workers stay assignable. The
	// full suite matrix shards across both workers, tripping both.
	_, _, jobs := suiteJobs(t, 8)
	for idx, jr := range collect(t, f.Stream(context.Background(), jobs), len(jobs)) {
		if jr.Result.Err == nil {
			t.Fatalf("job %d succeeded on a sick worker", idx)
		}
	}
	if alive := f.Alive(); alive != 2 {
		t.Fatalf("sick-but-alive workers marked lost: %d alive, want 2", alive)
	}

	// Heal the workers and immediately resubmit: round 0 finds every
	// member alive yet breaker-refused.
	w1.sick.Store(false)
	w2.sick.Store(false)
	for idx, jr := range collect(t, f.Stream(context.Background(), jobs), len(jobs)) {
		if jr.Result.Err != nil {
			t.Errorf("job %d failed despite healed workers: %v", idx, jr.Result.Err)
		}
	}
	logMu.Lock()
	defer logMu.Unlock()
	if joined := strings.Join(logs, "\n"); !strings.Contains(joined, "every breaker open") {
		t.Errorf("breaker hold not logged; logs:\n%s", joined)
	}
}

// With every worker lost, pending jobs surface errors (exactly one per
// job) instead of hanging.
func TestFleetAllWorkersLost(t *testing.T) {
	w1, w2 := startWorker(t), startWorker(t)
	f, err := fleet.New([]string{w1.ts.URL, w2.ts.URL}, fastClient())
	if err != nil {
		t.Fatal(err)
	}
	w1.killOnIndex.Store(1)
	w2.killOnIndex.Store(1)

	_, _, jobs := suiteJobs(t, 4)
	failed := 0
	for _, jr := range collect(t, f.Stream(context.Background(), jobs), len(jobs)) {
		if jr.Result.Err != nil {
			failed++
		}
	}
	if failed == 0 {
		t.Error("every worker died yet no job reported an error")
	}
	if f.Alive() != 0 {
		t.Errorf("fleet reports %d workers alive, want 0", f.Alive())
	}
}

// Jobs with no declarative wire form run on the fallback; without one
// they fail loudly. Deterministic job failures are never retried as
// worker loss.
func TestFleetFallback(t *testing.T) {
	w1, w2 := startWorker(t), startWorker(t)
	ctx := context.Background()
	sp := workload.ByName("gzip-1")
	tweaked := engine.Job{
		Simpoint: sp,
		Setup:    sim.SetupOP(2),
		Opts: engine.RunOptions{NumUops: 2000, TweakKey: "lat9",
			MachineTweak: func(cfg *pipeline.Config) { cfg.Net.Latency = 9 }},
	}

	bare, err := fleet.New([]string{w1.ts.URL, w2.ts.URL}, fastClient())
	if err != nil {
		t.Fatal(err)
	}
	if res := bare.Run(ctx, tweaked); res.Err == nil {
		t.Fatal("non-remoteable job succeeded without a fallback")
	}

	local := engine.New(engine.Options{Parallelism: 1})
	hybrid, err := fleet.New([]string{w1.ts.URL, w2.ts.URL}, fastClient(), fleet.WithFallback(local))
	if err != nil {
		t.Fatal(err)
	}
	if res := hybrid.Run(ctx, tweaked); res.Err != nil {
		t.Fatalf("fallback run: %v", res.Err)
	}
	if local.Stats().Simulations != 1 {
		t.Error("tweaked job did not run on the fallback engine")
	}
	if w1.eng.Stats().Simulations+w2.eng.Stats().Simulations != 0 {
		t.Error("tweaked job leaked to the fleet")
	}
	// Both workers stay alive: a job-level refusal is not worker loss.
	if hybrid.Alive() != 2 {
		t.Errorf("fleet reports %d alive after a local-only job, want 2", hybrid.Alive())
	}
}

// Construction health-checks every worker and names the unreachable or
// unauthorized ones; a correct token passes.
func TestFleetConstructionHealthCheck(t *testing.T) {
	good := startWorker(t)
	deadTS := httptest.NewServer(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {}))
	deadURL := deadTS.URL
	deadTS.Close()

	_, err := fleet.New([]string{good.ts.URL, deadURL},
		fleet.WithHealthTimeout(2*time.Second))
	if err == nil || !strings.Contains(err.Error(), deadURL) {
		t.Fatalf("dead worker not named at construction: %v", err)
	}

	// An authenticated fleet: wrong token fails construction, right one
	// passes and runs jobs.
	st := store.NewMemory(64 << 20)
	eng := engine.New(engine.Options{Parallelism: 2, ResultStore: st})
	svc := service.New(context.Background(), eng, st)
	svc.SetToken("sesame")
	locked := httptest.NewServer(svc)
	t.Cleanup(locked.Close)

	if _, err := fleet.New([]string{locked.URL}, fleet.WithHealthTimeout(2*time.Second)); err == nil {
		t.Fatal("tokenless fleet passed an authenticated worker's health check")
	}
	f, err := fleet.New([]string{locked.URL}, fastClient(), fleet.WithToken("sesame"))
	if err != nil {
		t.Fatal(err)
	}
	res := f.Run(context.Background(),
		engine.Job{Simpoint: workload.ByName("gzip-1"), Setup: sim.SetupOP(2), Opts: engine.RunOptions{NumUops: 2000}})
	if res.Err != nil {
		t.Fatalf("authenticated run: %v", res.Err)
	}

	if _, err := fleet.New(nil); err == nil {
		t.Error("empty fleet accepted")
	}
	if _, err := fleet.New([]string{good.ts.URL, good.ts.URL}); err == nil {
		t.Error("duplicate worker URL accepted")
	}
}

// Work stealing: when one worker's event stream straggles, an idle
// worker duplicates part of its tail; the merged stream still delivers
// each job exactly once with correct results.
func TestFleetStealTail(t *testing.T) {
	w1, w2 := startWorker(t), startWorker(t)
	w2.streamDelay = 700 * time.Millisecond // worker 2 reports late

	var logMu sync.Mutex
	var logs []string
	f, err := fleet.New([]string{w1.ts.URL, w2.ts.URL}, fastClient(),
		fleet.WithSteal(4),
		fleet.WithLog(func(format string, args ...any) {
			logMu.Lock()
			logs = append(logs, fmt.Sprintf(format, args...))
			logMu.Unlock()
		}))
	if err != nil {
		t.Fatal(err)
	}

	_, _, jobs := suiteJobs(t, 8)
	got := collect(t, f.Stream(context.Background(), jobs), len(jobs))
	for idx, jr := range got {
		if jr.Result.Err != nil {
			t.Errorf("job %d failed: %v", idx, jr.Result.Err)
		}
	}
	logMu.Lock()
	defer logMu.Unlock()
	if !strings.Contains(strings.Join(logs, "\n"), "stealing") {
		t.Errorf("straggler tail was never stolen; logs:\n%s", strings.Join(logs, "\n"))
	}
	if f.Alive() != 2 {
		t.Errorf("stealing marked a worker dead: %d alive", f.Alive())
	}
}
