package controlplane

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
)

// Source is a worker whose stored results can be enumerated and fetched
// raw; Sink is one that accepts validated uploads. Both are satisfied by
// *client.Client. A drain reads the departing worker as a Source and
// warms its ring successors as Sinks; a scale-up backfill reads the
// previous owners and warms the newcomer.
type Source interface {
	Keys(ctx context.Context, limit int, cursor string) (keys []string, next string, err error)
	RawResult(ctx context.Context, key string) ([]byte, error)
}

// Sink accepts one encoded result blob under its logical key. Uploads
// are idempotent — the store is content-addressed, so re-putting an
// already-present key is a cheap overwrite with identical bytes.
type Sink interface {
	PutResult(ctx context.Context, key string, blob []byte) error
}

const (
	// migratePageSize is how many keys one /v1/keys page requests.
	migratePageSize = 256
	// migrateParallel bounds concurrent blob copies within a page.
	migrateParallel = 4
)

// Migrate streams every key the source holds to the sink route chooses
// for it, returning how many blobs actually moved. route returns nil to
// skip a key (it already lives where it should, or nobody wants it).
// Individual copy failures are logged and counted, not fatal — a drain
// should move everything it can and report what it couldn't; err is
// non-nil only when the enumeration itself fails or ctx is canceled.
func Migrate(ctx context.Context, src Source, route func(key string) Sink, logf func(string, ...any)) (moved int, failed int, err error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	var movedN, failedN atomic.Int64
	cursor := ""
	for {
		keys, next, err := src.Keys(ctx, migratePageSize, cursor)
		if err != nil {
			return int(movedN.Load()), int(failedN.Load()), fmt.Errorf("controlplane: listing keys: %w", err)
		}
		var wg sync.WaitGroup
		sem := make(chan struct{}, migrateParallel)
		for _, key := range keys {
			sink := route(key)
			if sink == nil {
				continue
			}
			if ctx.Err() != nil {
				break
			}
			wg.Add(1)
			sem <- struct{}{}
			go func(key string, sink Sink) {
				defer wg.Done()
				defer func() { <-sem }()
				if err := copyOne(ctx, src, sink, key); err != nil {
					failedN.Add(1)
					logf("fleet: migrate %s: %v", key, err)
					return
				}
				movedN.Add(1)
			}(key, sink)
		}
		wg.Wait()
		if err := ctx.Err(); err != nil {
			return int(movedN.Load()), int(failedN.Load()), err
		}
		if next == "" {
			return int(movedN.Load()), int(failedN.Load()), nil
		}
		cursor = next
	}
}

// copyOne moves a single blob source -> sink.
func copyOne(ctx context.Context, src Source, sink Sink, key string) error {
	blob, err := src.RawResult(ctx, key)
	if err != nil {
		return fmt.Errorf("fetch: %w", err)
	}
	if err := sink.PutResult(ctx, key, blob); err != nil {
		return fmt.Errorf("upload: %w", err)
	}
	return nil
}
