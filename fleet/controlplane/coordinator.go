package controlplane

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"clustersim/internal/api"
)

// CoordClient is the wire side of the coordinator protocol, satisfied by
// *client.Client. controlplane deliberately does not import the client
// package — it names only the two calls it needs, which keeps the
// dependency arrow pointing one way (client -> api <- controlplane) and
// lets internal/service reuse Membership for the server side.
type CoordClient interface {
	// Ring fetches the coordinator's current view.
	Ring(ctx context.Context) (*api.RingView, error)
	// ProposeRing submits one CAS transition; an *api.Error with code
	// CodeEpochConflict means the base epoch was stale (the returned view,
	// when non-nil, is the coordinator's current one).
	ProposeRing(ctx context.Context, t api.RingTransition) (*api.RingView, error)
}

// Coordinator binds a local Membership to a remote coordinator: Sync
// pulls the published view into the local table, Propose pushes one
// transition through the CAS register with bounded retries. A nil
// *Coordinator (or one with a nil client) degrades to purely local
// operation — the fleet works coordinator-free exactly as before.
//
// The coordinator's epoch and the local table's epoch are tracked
// separately: a runner whose table raced ahead (transitions applied
// while the coordinator was unreachable, or a table seeded before the
// coordinator was) must still CAS against what the *coordinator* last
// published, not against its own count.
type Coordinator struct {
	c CoordClient
	m *Membership

	mu       sync.Mutex
	lastSeen int64 // coordinator epoch from the most recent response
}

// NewCoordinator wires a membership table to a coordinator client.
func NewCoordinator(c CoordClient, m *Membership) *Coordinator {
	return &Coordinator{c: c, m: m}
}

// Enabled reports whether a remote coordinator is configured.
func (co *Coordinator) Enabled() bool { return co != nil && co.c != nil }

// proposeRetries bounds how many CAS rounds a single Propose may lose
// before giving up. Each lost round means another runner advanced the
// epoch, so the bound is only reachable under a pathological proposal
// storm — and even then the loser's transition is usually Satisfied by
// whoever beat it.
const proposeRetries = 8

// observe records a view returned by the coordinator: it becomes the CAS
// base for the next proposal, and the local table adopts it when newer.
func (co *Coordinator) observe(v *api.RingView) {
	if v == nil {
		return
	}
	co.mu.Lock()
	if v.Epoch > co.lastSeen {
		co.lastSeen = v.Epoch
	}
	co.mu.Unlock()
	co.m.Apply(*v)
}

func (co *Coordinator) base() int64 {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.lastSeen
}

// Sync fetches the coordinator's view and applies it to the local table
// (newest epoch wins). It returns the fetched view — the coordinator's
// word, which callers inspect when the local table may legitimately
// disagree with it — or nil when no coordinator is configured.
func (co *Coordinator) Sync(ctx context.Context) (*api.RingView, error) {
	if !co.Enabled() {
		return nil, nil
	}
	v, err := co.c.Ring(ctx)
	if err != nil {
		return nil, err
	}
	co.observe(v)
	return v, nil
}

// Seed publishes the local membership to an empty coordinator by
// proposing an add for every locally-known assignable member. A fresh
// coordinator holds no view; the first runner to reach it seeds the
// member list, and later runners find it already populated (their adds
// are idempotent no-ops).
func (co *Coordinator) Seed(ctx context.Context) error {
	if !co.Enabled() {
		return nil
	}
	for _, ms := range co.m.View().Members {
		if ms.State != api.MemberAlive && ms.State != api.MemberDraining {
			continue
		}
		if err := co.Propose(ctx, api.RingAdd, ms.URL, ""); err != nil {
			return fmt.Errorf("controlplane: seeding coordinator with %s: %w", ms.URL, err)
		}
	}
	return nil
}

// Propose drives one membership transition to agreement. With a
// coordinator it is a CAS loop: propose against the coordinator's
// last-seen epoch; on epoch_conflict adopt the fresher view, check
// whether the goal already holds there (another runner made the same
// observation first), and otherwise retry. Without a coordinator it
// applies the transition locally. Either way the local table reflects
// the outcome on return.
func (co *Coordinator) Propose(ctx context.Context, action, url, errMsg string) error {
	if !co.Enabled() {
		_, err := co.m.Transition(action, url, errMsg)
		return err
	}
	for attempt := 0; attempt < proposeRetries; attempt++ {
		v, err := co.c.ProposeRing(ctx, api.RingTransition{
			BaseEpoch: co.base(),
			Action:    action,
			URL:       url,
			Error:     errMsg,
		})
		if err == nil {
			co.observe(v)
			return nil
		}
		var apiErr *api.Error
		if !errors.As(err, &apiErr) || apiErr.Code != api.CodeEpochConflict {
			return err
		}
		// Lost the CAS race: adopt the coordinator's view and re-check
		// against *it* — the local table may legitimately be ahead.
		if v == nil {
			if v, err = co.c.Ring(ctx); err != nil {
				return err
			}
		}
		co.observe(v)
		if actionSatisfied(action, StateIn(v, url)) {
			return nil
		}
	}
	return fmt.Errorf("controlplane: %s %s lost %d consecutive epoch races", action, url, proposeRetries)
}

// StateIn returns url's state in a view ("" when absent).
func StateIn(v *api.RingView, url string) string {
	for i := range v.Members {
		if v.Members[i].URL == url {
			return v.Members[i].State
		}
	}
	return ""
}
