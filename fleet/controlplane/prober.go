package controlplane

import (
	"context"
	"time"
)

// Prober is the liveness layer: it periodically re-probes dead members
// and hands the ones that answer to a readmit callback. It is what turns
// the fleet's sticky-dead policy into a bounded outage — a worker that
// crashes and restarts is back on the ring within one probe interval,
// its virtual points restored and its warm store serving again.
//
// The prober only ever touches members the membership table says are
// dead, so it costs nothing while the fleet is healthy.
type Prober struct {
	// Interval is the probe period (default 2s when zero).
	Interval time.Duration
	// Dead returns the URLs currently worth probing.
	Dead func() []string
	// Probe health-checks one worker; nil error means it recovered.
	Probe func(ctx context.Context, url string) error
	// Readmit is called for each worker whose probe succeeded.
	Readmit func(ctx context.Context, url string)
}

// Run probes until ctx is canceled. Probes within a tick run serially —
// the dead set is small by construction, and a serial pass keeps the
// prober trivially free of shutdown races.
func (p *Prober) Run(ctx context.Context) {
	interval := p.Interval
	if interval <= 0 {
		interval = 2 * time.Second
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			p.Tick(ctx)
		}
	}
}

// Tick runs one probe pass: every currently-dead member is probed, and
// the recovered ones are re-admitted. Exposed so tests (and drain paths
// that want an immediate recheck) can drive the prober synchronously.
func (p *Prober) Tick(ctx context.Context) {
	for _, url := range p.Dead() {
		if ctx.Err() != nil {
			return
		}
		if err := p.Probe(ctx, url); err != nil {
			continue // still down; LastError already records the original failure
		}
		p.Readmit(ctx, url)
	}
}
