// Package controlplane is the fleet's membership brain: the state
// machine that says which workers exist and what may be asked of them,
// the liveness prober that turns a dead worker back into a live one, the
// coordinator protocol that lets N concurrent fleet runners converge on
// one view, and the key-migration engine behind planned drains and
// scale-up backfills.
//
// The design follows the scalable-synchronization playbook: placement is
// never transmitted — every runner recomputes the consistent-hash ring
// locally from the membership view, the way a combining tree keeps
// computation at the leaves — and the coordinator is a tiny epoch-guarded
// register (a compare-and-swap cell holding the member list), not a
// scheduler. All the heavy state (which keys live where) stays sharded
// across the workers' own stores; the control plane only moves names.
//
// Membership is shared by both sides of the wire: fleet.Runner instances
// run one locally, and a clusterd in -coordinator mode runs the
// authoritative one behind GET/POST /v1/ring.
package controlplane

import (
	"fmt"
	"sort"
	"sync"

	"clustersim/internal/api"
)

// Membership is an epoch-versioned member table. Every successful
// transition increments the epoch, so two views are interchangeable
// exactly when their epochs match. Safe for concurrent use.
type Membership struct {
	mu      sync.Mutex
	epoch   int64
	members map[string]*api.MemberState
}

// NewMembership builds a table admitting the given URLs as alive at
// epoch 1 (or an empty table at epoch 0 when urls is empty — the state a
// fresh coordinator starts in, waiting for a runner to seed it).
func NewMembership(urls ...string) *Membership {
	m := &Membership{members: map[string]*api.MemberState{}}
	if len(urls) > 0 {
		m.epoch = 1
		for _, u := range urls {
			m.members[u] = &api.MemberState{URL: u, State: api.MemberAlive, Epoch: 1}
		}
	}
	return m
}

// Epoch returns the current membership epoch.
func (m *Membership) Epoch() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.epoch
}

// State returns a member's current state ("" for unknown URLs).
func (m *Membership) State(url string) string {
	m.mu.Lock()
	defer m.mu.Unlock()
	if ms, ok := m.members[url]; ok {
		return ms.State
	}
	return ""
}

// Assignable reports whether new work may be placed on url: alive
// members, and draining ones — a draining worker keeps owning its key
// range (and serving from its warm store) until the drain's migration
// finishes and it is removed, which is what makes the removal cutover
// lossless.
func (m *Membership) Assignable(url string) bool {
	switch m.State(url) {
	case api.MemberAlive, api.MemberDraining:
		return true
	}
	return false
}

// View snapshots the table: the epoch plus every member (including
// removed ones — their tombstones keep a re-added URL's history), sorted
// by URL so two equal views render identically.
func (m *Membership) View() api.RingView {
	m.mu.Lock()
	defer m.mu.Unlock()
	v := api.RingView{Epoch: m.epoch, Members: make([]api.MemberState, 0, len(m.members))}
	for _, ms := range m.members {
		v.Members = append(v.Members, *ms)
	}
	sort.Slice(v.Members, func(i, j int) bool { return v.Members[i].URL < v.Members[j].URL })
	return v
}

// Apply adopts a (coordinator-published) view wholesale when it is at
// least as new as the local one, and reports whether it did. Views never
// merge — the coordinator's epoch totally orders them, so the newest
// view simply wins; a local table that raced ahead (transitions applied
// while the coordinator was unreachable) keeps its own state until the
// coordinator catches up past it.
func (m *Membership) Apply(v api.RingView) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if v.Epoch < m.epoch {
		return false
	}
	if v.Epoch == m.epoch && len(m.members) > 0 {
		return false // same epoch: views are interchangeable already
	}
	m.epoch = v.Epoch
	m.members = make(map[string]*api.MemberState, len(v.Members))
	for i := range v.Members {
		ms := v.Members[i]
		m.members[ms.URL] = &ms
	}
	return true
}

// Transition applies one membership action and reports whether it
// changed anything (no-op transitions — marking a dead member dead,
// re-adding a live one — succeed without bumping the epoch, which is
// what lets N runners propose the same observation idempotently). An
// error means the transition is invalid from the member's current state
// and was not applied.
func (m *Membership) Transition(action, url, errMsg string) (changed bool, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ms := m.members[url]
	switch action {
	case api.RingAdd:
		if ms == nil {
			m.bump(&api.MemberState{URL: url, State: api.MemberAlive})
			return true, nil
		}
		if ms.State == api.MemberRemoved {
			ms.State = api.MemberAlive
			ms.LastError = ""
			m.bump(ms)
			return true, nil
		}
		return false, nil // already present
	case api.RingMarkDead:
		if ms == nil {
			return false, fmt.Errorf("controlplane: mark_dead of unknown member %s", url)
		}
		switch ms.State {
		case api.MemberAlive, api.MemberDraining:
			ms.State = api.MemberDead
			ms.LastError = errMsg
			m.bump(ms)
			return true, nil
		}
		return false, nil // already dead (or removed: nothing to exclude)
	case api.RingReadmit:
		if ms == nil {
			return false, fmt.Errorf("controlplane: readmit of unknown member %s", url)
		}
		if ms.State == api.MemberDead {
			ms.State = api.MemberAlive
			ms.LastError = ""
			m.bump(ms)
			return true, nil
		}
		return false, nil
	case api.RingDrain:
		if ms == nil {
			return false, fmt.Errorf("controlplane: drain of unknown member %s", url)
		}
		switch ms.State {
		case api.MemberAlive:
			ms.State = api.MemberDraining
			m.bump(ms)
			return true, nil
		case api.MemberDraining:
			return false, nil
		}
		return false, fmt.Errorf("controlplane: cannot drain %s member %s (its store is unreachable)", ms.State, url)
	case api.RingRemove:
		if ms == nil {
			return false, fmt.Errorf("controlplane: remove of unknown member %s", url)
		}
		switch ms.State {
		case api.MemberDraining, api.MemberDead:
			ms.State = api.MemberRemoved
			m.bump(ms)
			return true, nil
		case api.MemberRemoved:
			return false, nil
		}
		return false, fmt.Errorf("controlplane: cannot remove alive member %s — drain it first", url)
	}
	return false, fmt.Errorf("controlplane: unknown ring action %q", action)
}

// bump records a state change: the table's epoch advances and the member
// is stamped with it (inserting it first if new).
func (m *Membership) bump(ms *api.MemberState) {
	m.epoch++
	ms.Epoch = m.epoch
	m.members[ms.URL] = ms
}

// Satisfied reports whether a transition's goal already holds in the
// current table — the check a proposer runs after losing a CAS race:
// if another runner already made the same observation, there is nothing
// left to propose.
func (m *Membership) Satisfied(action, url string) bool {
	return actionSatisfied(action, m.State(url))
}

// actionSatisfied reports whether a member in the given state already
// meets a transition's goal ("" means unknown member).
func actionSatisfied(action, state string) bool {
	switch action {
	case api.RingAdd:
		return state != "" && state != api.MemberRemoved
	case api.RingMarkDead:
		return state == api.MemberDead || state == api.MemberRemoved
	case api.RingReadmit:
		return state == api.MemberAlive || state == api.MemberDraining
	case api.RingDrain:
		return state == api.MemberDraining || state == api.MemberRemoved
	case api.RingRemove:
		return state == api.MemberRemoved
	}
	return false
}
