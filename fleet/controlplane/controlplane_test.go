package controlplane

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"

	"clustersim/internal/api"
)

func TestMembershipLifecycle(t *testing.T) {
	m := NewMembership("http://a", "http://b")
	if m.Epoch() != 1 {
		t.Fatalf("seed epoch = %d, want 1", m.Epoch())
	}

	// alive -> dead -> alive (crash + re-admission).
	if ch, err := m.Transition(api.RingMarkDead, "http://a", "connection refused"); err != nil || !ch {
		t.Fatalf("mark_dead: changed=%v err=%v", ch, err)
	}
	if m.State("http://a") != api.MemberDead || m.Assignable("http://a") {
		t.Fatalf("dead member state=%q assignable=%v", m.State("http://a"), m.Assignable("http://a"))
	}
	v := m.View()
	if v.Members[0].LastError != "connection refused" {
		t.Errorf("dead member LastError = %q", v.Members[0].LastError)
	}
	if ch, err := m.Transition(api.RingReadmit, "http://a", ""); err != nil || !ch {
		t.Fatalf("readmit: changed=%v err=%v", ch, err)
	}
	if m.State("http://a") != api.MemberAlive || m.View().Members[0].LastError != "" {
		t.Error("re-admitted member not alive with cleared error")
	}

	// alive -> draining -> removed (planned drain). Draining stays
	// assignable; removed does not.
	if ch, err := m.Transition(api.RingDrain, "http://b", ""); err != nil || !ch {
		t.Fatalf("drain: changed=%v err=%v", ch, err)
	}
	if !m.Assignable("http://b") {
		t.Error("draining member must remain assignable until removed")
	}
	if ch, err := m.Transition(api.RingRemove, "http://b", ""); err != nil || !ch {
		t.Fatalf("remove: changed=%v err=%v", ch, err)
	}
	if m.Assignable("http://b") || m.State("http://b") != api.MemberRemoved {
		t.Error("removed member still assignable")
	}

	// removed -> alive (scale the worker back in).
	if ch, err := m.Transition(api.RingAdd, "http://b", ""); err != nil || !ch {
		t.Fatalf("re-add: changed=%v err=%v", ch, err)
	}
	if m.State("http://b") != api.MemberAlive {
		t.Errorf("re-added member state = %q", m.State("http://b"))
	}
}

func TestMembershipInvalidTransitions(t *testing.T) {
	m := NewMembership("http://a")
	// Removing an alive member must be refused: a remove cuts the ring
	// over, and an undrained alive member still owns live keys.
	if _, err := m.Transition(api.RingRemove, "http://a", ""); err == nil {
		t.Error("remove of alive member succeeded")
	}
	m.Transition(api.RingMarkDead, "http://a", "x")
	// A dead member's store is unreachable, so it cannot be drained.
	if _, err := m.Transition(api.RingDrain, "http://a", ""); err == nil {
		t.Error("drain of dead member succeeded")
	}
	// But a dead member can be retired directly (no keys to save).
	if ch, err := m.Transition(api.RingRemove, "http://a", ""); err != nil || !ch {
		t.Errorf("remove of dead member: changed=%v err=%v", ch, err)
	}
	for _, action := range []string{api.RingMarkDead, api.RingReadmit, api.RingDrain, api.RingRemove} {
		if _, err := m.Transition(action, "http://nope", ""); err == nil {
			t.Errorf("%s of unknown member succeeded", action)
		}
	}
	if _, err := m.Transition("bogus", "http://a", ""); err == nil {
		t.Error("unknown action succeeded")
	}
}

// No-op transitions succeed without bumping the epoch — the property
// that lets N runners report the same observation idempotently.
func TestMembershipIdempotentNoOps(t *testing.T) {
	cases := []struct{ action, setup string }{
		{api.RingAdd, ""},     // already alive
		{api.RingReadmit, ""}, // readmit of alive member
		{api.RingMarkDead, api.RingMarkDead},
		{api.RingDrain, api.RingDrain},
	}
	for _, c := range cases {
		m2 := NewMembership("http://a")
		if c.setup != "" {
			if _, err := m2.Transition(c.setup, "http://a", ""); err != nil {
				t.Fatal(err)
			}
		}
		before := m2.Epoch()
		ch, err := m2.Transition(c.action, "http://a", "")
		if err != nil || ch {
			t.Errorf("%s twice: changed=%v err=%v", c.action, ch, err)
		}
		if m2.Epoch() != before {
			t.Errorf("%s no-op bumped epoch %d -> %d", c.action, before, m2.Epoch())
		}
	}
}

func TestViewApplyNewestWins(t *testing.T) {
	m := NewMembership("http://a", "http://b")
	m.Transition(api.RingMarkDead, "http://b", "boom") // epoch 2
	v := m.View()
	if !sort.SliceIsSorted(v.Members, func(i, j int) bool { return v.Members[i].URL < v.Members[j].URL }) {
		t.Error("view members not sorted by URL")
	}

	// A stale view must not roll the table back.
	stale := api.RingView{Epoch: 1, Members: []api.MemberState{{URL: "http://b", State: api.MemberAlive, Epoch: 1}}}
	if m.Apply(stale) {
		t.Error("stale view applied")
	}
	if m.State("http://b") != api.MemberDead {
		t.Error("stale view clobbered local state")
	}

	// A fresher view replaces the table wholesale.
	fresh := api.RingView{Epoch: 9, Members: []api.MemberState{
		{URL: "http://b", State: api.MemberAlive, Epoch: 9},
		{URL: "http://c", State: api.MemberAlive, Epoch: 8},
	}}
	if !m.Apply(fresh) {
		t.Fatal("fresh view rejected")
	}
	if m.Epoch() != 9 || m.State("http://a") != "" || m.State("http://c") != api.MemberAlive {
		t.Errorf("after apply: epoch=%d a=%q c=%q", m.Epoch(), m.State("http://a"), m.State("http://c"))
	}

	// Round trip: applying a view onto an empty table reproduces it.
	m2 := NewMembership()
	m2.Apply(m.View())
	if got, want := fmt.Sprint(m2.View()), fmt.Sprint(m.View()); got != want {
		t.Errorf("view round trip: %s != %s", got, want)
	}
}

func TestSatisfied(t *testing.T) {
	m := NewMembership("http://a", "http://b")
	m.Transition(api.RingMarkDead, "http://b", "x")
	checks := []struct {
		action, url string
		want        bool
	}{
		{api.RingAdd, "http://a", true},
		{api.RingAdd, "http://new", false},
		{api.RingMarkDead, "http://b", true},
		{api.RingMarkDead, "http://a", false},
		{api.RingReadmit, "http://a", true},
		{api.RingReadmit, "http://b", false},
		{api.RingDrain, "http://a", false},
		{api.RingRemove, "http://b", false},
	}
	for _, c := range checks {
		if got := m.Satisfied(c.action, c.url); got != c.want {
			t.Errorf("Satisfied(%s, %s) = %v, want %v", c.action, c.url, got, c.want)
		}
	}
}

func TestProberReadmitsRecovered(t *testing.T) {
	m := NewMembership("http://up", "http://down")
	m.Transition(api.RingMarkDead, "http://up", "was down")
	m.Transition(api.RingMarkDead, "http://down", "still down")

	var probed []string
	p := &Prober{
		Dead: func() []string {
			var dead []string
			for _, ms := range m.View().Members {
				if ms.State == api.MemberDead {
					dead = append(dead, ms.URL)
				}
			}
			return dead
		},
		Probe: func(_ context.Context, url string) error {
			probed = append(probed, url)
			if strings.Contains(url, "down") {
				return errors.New("refused")
			}
			return nil
		},
		Readmit: func(_ context.Context, url string) {
			m.Transition(api.RingReadmit, url, "")
		},
	}
	p.Tick(context.Background())
	if len(probed) != 2 {
		t.Fatalf("probed %v, want both dead members", probed)
	}
	if m.State("http://up") != api.MemberAlive {
		t.Error("recovered member not re-admitted")
	}
	if m.State("http://down") != api.MemberDead {
		t.Error("unreachable member re-admitted")
	}
	// The recovered member leaves the probe set.
	probed = nil
	p.Tick(context.Background())
	if len(probed) != 1 || probed[0] != "http://down" {
		t.Errorf("second tick probed %v, want only the still-dead member", probed)
	}
}

// fakeCoord is an in-memory coordinator implementing CoordClient over a
// server-side Membership — the same CAS semantics the service exposes.
type fakeCoord struct {
	mu        sync.Mutex
	m         *Membership
	conflicts int // inject n leading conflicts regardless of epoch
	proposals int
}

func (f *fakeCoord) Ring(ctx context.Context) (*api.RingView, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	v := f.m.View()
	return &v, nil
}

func (f *fakeCoord) ProposeRing(ctx context.Context, tr api.RingTransition) (*api.RingView, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.proposals++
	if f.conflicts > 0 || tr.BaseEpoch != f.m.Epoch() {
		f.conflicts--
		v := f.m.View()
		return &v, &api.Error{Code: api.CodeEpochConflict, Message: "stale epoch", Status: 409}
	}
	if _, err := f.m.Transition(tr.Action, tr.URL, tr.Error); err != nil {
		return nil, &api.Error{Code: api.CodeBadRequest, Message: err.Error(), Status: 400}
	}
	v := f.m.View()
	return &v, nil
}

func TestCoordinatorProposeRetriesConflicts(t *testing.T) {
	server := NewMembership("http://a", "http://b")
	local := NewMembership("http://a", "http://b")
	fc := &fakeCoord{m: server, conflicts: 2}
	co := NewCoordinator(fc, local)

	if err := co.Propose(context.Background(), api.RingMarkDead, "http://b", "gone"); err != nil {
		t.Fatalf("Propose: %v", err)
	}
	if server.State("http://b") != api.MemberDead {
		t.Error("transition never landed on the coordinator")
	}
	if local.Epoch() != server.Epoch() {
		t.Errorf("local epoch %d != coordinator epoch %d after propose", local.Epoch(), server.Epoch())
	}
}

// Losing the race to a runner that made the same observation is success:
// the conflict response shows the goal satisfied and Propose stops.
func TestCoordinatorProposeSatisfiedByRival(t *testing.T) {
	server := NewMembership("http://a", "http://b")
	server.Transition(api.RingMarkDead, "http://b", "rival saw it first")
	local := NewMembership("http://a", "http://b") // stale: thinks epoch 1
	fc := &fakeCoord{m: server}
	co := NewCoordinator(fc, local)

	if err := co.Propose(context.Background(), api.RingMarkDead, "http://b", "me too"); err != nil {
		t.Fatalf("Propose after rival: %v", err)
	}
	if fc.proposals != 1 {
		t.Errorf("proposals = %d, want 1 (conflict view already satisfied the goal)", fc.proposals)
	}
	if local.State("http://b") != api.MemberDead {
		t.Error("local table did not adopt the rival's observation")
	}
}

func TestCoordinatorNilIsLocal(t *testing.T) {
	local := NewMembership("http://a")
	co := NewCoordinator(nil, local)
	if co.Enabled() {
		t.Fatal("nil client reports enabled")
	}
	if err := co.Propose(context.Background(), api.RingMarkDead, "http://a", "x"); err != nil {
		t.Fatalf("local propose: %v", err)
	}
	if local.State("http://a") != api.MemberDead {
		t.Error("local propose did not apply")
	}
}

func TestCoordinatorSeed(t *testing.T) {
	server := NewMembership() // fresh coordinator: empty, epoch 0
	local := NewMembership("http://a", "http://b")
	local.Transition(api.RingMarkDead, "http://b", "down") // dead members are not seeded
	co := NewCoordinator(&fakeCoord{m: server}, local)
	if err := co.Seed(context.Background()); err != nil {
		t.Fatal(err)
	}
	if server.State("http://a") != api.MemberAlive {
		t.Error("alive member not seeded")
	}
	if server.State("http://b") != "" {
		t.Error("dead member seeded")
	}
}

// fakeStore is an in-memory Source+Sink with configurable paging and
// injected fetch failures.
type fakeStore struct {
	mu       sync.Mutex
	blobs    map[string][]byte
	failKeys map[string]bool
}

func newFakeStore(keys ...string) *fakeStore {
	f := &fakeStore{blobs: map[string][]byte{}, failKeys: map[string]bool{}}
	for _, k := range keys {
		f.blobs[k] = []byte("blob:" + k)
	}
	return f
}

func (f *fakeStore) Keys(_ context.Context, limit int, cursor string) ([]string, string, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	var all []string
	for k := range f.blobs {
		if k > cursor {
			all = append(all, k)
		}
	}
	sort.Strings(all)
	// Force tiny pages so Migrate's paging loop is exercised even with
	// the production page size.
	pageLen := 3
	if limit > 0 && limit < pageLen {
		pageLen = limit
	}
	if len(all) > pageLen {
		return all[:pageLen], all[pageLen-1], nil
	}
	return all, "", nil
}

func (f *fakeStore) RawResult(_ context.Context, key string) ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.failKeys[key] {
		return nil, errors.New("injected fetch failure")
	}
	b, ok := f.blobs[key]
	if !ok {
		return nil, errors.New("no such key")
	}
	return b, nil
}

func (f *fakeStore) PutResult(_ context.Context, key string, blob []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.blobs[key] = append([]byte(nil), blob...)
	return nil
}

func TestMigrateRoutesEveryKey(t *testing.T) {
	src := newFakeStore("k01", "k02", "k03", "k04", "k05", "k06", "k07")
	a, b := newFakeStore(), newFakeStore()
	moved, failed, err := Migrate(context.Background(), src, func(key string) Sink {
		if key == "k04" {
			return nil // route says: this key stays put
		}
		if key < "k04" {
			return a
		}
		return b
	}, t.Logf)
	if err != nil || failed != 0 {
		t.Fatalf("Migrate: moved=%d failed=%d err=%v", moved, failed, err)
	}
	if moved != 6 {
		t.Errorf("moved = %d, want 6 (one key routed nil)", moved)
	}
	for _, k := range []string{"k01", "k02", "k03"} {
		if string(a.blobs[k]) != "blob:"+k {
			t.Errorf("sink a missing %s", k)
		}
	}
	for _, k := range []string{"k05", "k06", "k07"} {
		if string(b.blobs[k]) != "blob:"+k {
			t.Errorf("sink b missing %s", k)
		}
	}
	if _, ok := a.blobs["k04"]; ok {
		t.Error("nil-routed key migrated anyway")
	}
}

func TestMigrateCountsFailuresWithoutAborting(t *testing.T) {
	src := newFakeStore("k1", "k2", "k3")
	src.failKeys["k2"] = true
	sink := newFakeStore()
	moved, failed, err := Migrate(context.Background(), src, func(string) Sink { return sink }, t.Logf)
	if err != nil {
		t.Fatalf("Migrate: %v", err)
	}
	if moved != 2 || failed != 1 {
		t.Errorf("moved=%d failed=%d, want 2/1", moved, failed)
	}
}

func TestMigrateHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	src := newFakeStore("k1", "k2")
	_, _, err := Migrate(ctx, src, func(string) Sink { return newFakeStore() }, t.Logf)
	if err == nil {
		t.Error("canceled Migrate returned nil error")
	}
}
