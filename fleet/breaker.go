package fleet

// Per-worker circuit breakers, layered under the membership table. The
// dead/alive machinery handles workers that are *gone* (probe fails,
// re-shard everything); the breaker handles workers that are *sick* —
// alive enough to answer a health probe, unhealthy enough to fail real
// work repeatedly. Tripping stops routing new shards at a flapping
// worker without the heavyweight dead-marking transition, and the
// half-open probe re-admits it after a cooldown at the cost of one
// shard, not a membership epoch.

import (
	"sync"
	"time"
)

// Breaker states, reported by FleetStats and fleetctl status.
const (
	BreakerClosed   = "closed"
	BreakerOpen     = "open"
	BreakerHalfOpen = "half-open"
)

// breaker is one worker's circuit breaker. The zero value is not usable;
// build with newBreaker.
type breaker struct {
	mu       sync.Mutex
	trip     int           // consecutive failures that open the circuit
	cooldown time.Duration // open -> half-open delay
	now      func() time.Time

	state       string
	consecutive int
	since       time.Time // entered current non-closed state
	probeArmed  bool      // half-open: the single probe slot is spent
}

func newBreaker(trip int, cooldown time.Duration) *breaker {
	return &breaker{trip: trip, cooldown: cooldown, now: time.Now, state: BreakerClosed}
}

// allow reports whether new work may be routed to the worker, consuming
// the half-open probe slot when it grants one. Open circuits move to
// half-open after the cooldown; a half-open circuit grants a single
// probe, then refuses until the probe resolves — success, failure, or
// an explicit probeUnused when the routing round placed no task on the
// worker. Elapsed time alone never re-arms the slot, so a probe
// legitimately slower than the cooldown is never joined by a second
// concurrent probe.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now().Sub(b.since) < b.cooldown {
			return false
		}
		b.state = BreakerHalfOpen
		b.since = b.now()
		b.probeArmed = true
		return true
	default: // half-open
		if b.probeArmed {
			return false // a probe is already out
		}
		b.since = b.now()
		b.probeArmed = true
		return true
	}
}

// probeUnused returns a granted half-open probe slot that routed no
// task (the ring placed no key on the worker that round): with no
// request in flight there is no success/failure outcome coming, so the
// router hands the slot back explicitly — a breaker cannot wedge
// half-open forever, and an in-flight probe is never mistaken for a
// stale one.
func (b *breaker) probeUnused() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerHalfOpen {
		b.probeArmed = false
	}
}

// retryAfter reports how long until allow could plausibly grant again:
// the remaining cooldown when open, the full cooldown as a poll bound
// while a half-open probe is in flight (its outcome, not a timer,
// re-arms the slot), and zero when work would be admitted now.
func (b *breaker) retryAfter() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerOpen:
		if d := b.cooldown - b.now().Sub(b.since); d > 0 {
			return d
		}
	case BreakerHalfOpen:
		if b.probeArmed {
			return b.cooldown
		}
	}
	return 0
}

// success records a completed request: the circuit closes and the
// failure streak resets, whatever state it was in.
func (b *breaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = BreakerClosed
	b.consecutive = 0
	b.probeArmed = false
}

// failure records a transport-level failure. A half-open probe failing
// re-opens immediately; a closed circuit opens once the consecutive
// streak reaches the trip threshold.
func (b *breaker) failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecutive++
	switch {
	case b.state == BreakerHalfOpen:
		b.state = BreakerOpen
		b.since = b.now()
		b.probeArmed = false
	case b.state == BreakerClosed && b.consecutive >= b.trip:
		b.state = BreakerOpen
		b.since = b.now()
	}
}

// reset force-closes the circuit — used when the membership layer
// re-admits a worker, which is a stronger signal than one probe.
func (b *breaker) reset() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = BreakerClosed
	b.consecutive = 0
	b.probeArmed = false
}

// current returns the state name.
func (b *breaker) current() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// breakerFor returns url's breaker, creating it on first use; nil when
// the policy is disabled.
func (f *Runner) breakerFor(url string) *breaker {
	if f.breakerTrip <= 0 {
		return nil
	}
	f.breakerMu.Lock()
	defer f.breakerMu.Unlock()
	b := f.breakers[url]
	if b == nil {
		b = newBreaker(f.breakerTrip, f.breakerCooldown)
		f.breakers[url] = b
	}
	return b
}

// breakerAllows consults url's breaker for routing; permissive when the
// policy is disabled.
func (f *Runner) breakerAllows(url string) bool {
	b := f.breakerFor(url)
	return b == nil || b.allow()
}

// breakerSuccess / breakerFailure / breakerReset feed request outcomes
// into url's breaker, as no-ops when the policy is disabled.
func (f *Runner) breakerSuccess(url string) {
	if b := f.breakerFor(url); b != nil {
		b.success()
	}
}

func (f *Runner) breakerFailure(url string) {
	if b := f.breakerFor(url); b != nil {
		b.failure()
	}
}

func (f *Runner) breakerReset(url string) {
	if b := f.breakerFor(url); b != nil {
		b.reset()
	}
}

// breakerProbeUnused returns url's granted-but-unrouted half-open probe
// slot; a no-op when the policy is disabled.
func (f *Runner) breakerProbeUnused(url string) {
	if b := f.breakerFor(url); b != nil {
		b.probeUnused()
	}
}

// breakerRetryDelay reports how long a routing round in which every
// assignable member was breaker-refused should wait before retrying:
// the smallest retryAfter across all breakers, clamped to at least a
// millisecond so a race with an expiring cooldown cannot busy-spin.
func (f *Runner) breakerRetryDelay() time.Duration {
	f.breakerMu.Lock()
	defer f.breakerMu.Unlock()
	d := f.breakerCooldown
	for _, b := range f.breakers {
		if r := b.retryAfter(); r < d {
			d = r
		}
	}
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}

// breakerState returns url's current state name, or "" when the policy
// is disabled.
func (f *Runner) breakerState(url string) string {
	if f.breakerTrip <= 0 {
		return ""
	}
	f.breakerMu.Lock()
	b := f.breakers[url]
	f.breakerMu.Unlock()
	if b == nil {
		return BreakerClosed // never saw traffic
	}
	return b.current()
}
