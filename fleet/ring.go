// Consistent-hash ring: the shard function of the fleet. Each worker
// contributes ringReplicas virtual points derived from its URL alone, so
// the ring a key maps onto is a pure function of the fleet's membership —
// every client sharding over the same URL set routes a key to the same
// worker, which is what keeps each worker's tiered result store hot
// across runs and across clients. Adding a worker moves only the keys
// that fall into the new worker's arcs (~1/N of the space); removing one
// redistributes only its own keys. Dead workers are skipped by walking
// the ring clockwise, so a key's failover owner is deterministic too.
package fleet

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ringReplicas is how many virtual points each member contributes. 64
// points per worker keeps the expected load imbalance across a small
// fleet within a few percent without making ring construction or lookup
// measurably slower.
const ringReplicas = 64

type ringPoint struct {
	hash   uint64
	member int // index into the fleet's member slice
}

type ring struct {
	points []ringPoint
}

// hashKey positions a key (or a virtual node) on the ring.
func hashKey(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// newRing builds the ring for the given member URLs. Points depend only
// on the URLs, never on slice order, so two fleets over the same worker
// set shard identically.
func newRing(urls []string) *ring {
	r := &ring{points: make([]ringPoint, 0, len(urls)*ringReplicas)}
	for i, u := range urls {
		for v := 0; v < ringReplicas; v++ {
			r.points = append(r.points, ringPoint{hashKey(fmt.Sprintf("%s#%d", u, v)), i})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].member < r.points[j].member // deterministic on (improbable) collisions
	})
	return r
}

// pick returns the member owning key among those alive reports usable:
// the first alive member at or clockwise of the key's position. Returns
// -1 only when no member is alive.
func (r *ring) pick(key string, alive func(member int) bool) int {
	if len(r.points) == 0 {
		return -1
	}
	h := hashKey(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	for off := 0; off < len(r.points); off++ {
		p := r.points[(start+off)%len(r.points)]
		if alive(p.member) {
			return p.member
		}
	}
	return -1
}
