// Command benchjson converts `go test -bench` output into a stable JSON
// snapshot and gates regressions against a committed baseline. It is the
// measurement half of the allocation-free hot-loop work: the benchmarks
// report simulated uops per second and allocations per simulated uop, and
// this tool turns a run into BENCH_6.json (or compares a fresh run to the
// checked-in one and fails CI when the hot loop regresses).
//
// Usage:
//
//	go test -run '^$' -bench CoreHotLoop -benchmem . | benchjson -out BENCH_6.json
//	go test -run '^$' -bench CoreHotLoop -benchmem . | benchjson -baseline BENCH_6.json
//
// -out refreshes a snapshot in place: when the file already exists, its
// note (unless -note overrides it) and its "before" block are preserved.
//
// With -baseline, the exit status is non-zero when any benchmark present
// in both runs regresses: uops/s below (1 - maxregress) × baseline,
// allocs/uop above baseline × (1 + allocsgrow) + 0.05, allocs/op above
// baseline × (1 + allocsgrow) + 2 for fixed-cost benchmarks (those with
// no uops/s figure), or unpacks/op above baseline × (1 + allocsgrow) +
// 0.15. Throughput depends on the machine — refresh the committed
// baseline (-out) when the CI hardware generation changes; the
// allocation and decompression gates are hardware-independent.
//
// Serving benchmarks (cmd/loadgen) report req/s and p50-ms / p99-ms
// percentiles in the same line format and gate symmetrically: req/s below
// (1 - maxregress) × baseline fails, and either percentile above
// (1 + maxregress) × baseline + 1 ms fails (the absolute slack keeps
// microsecond-scale 304 baselines from tripping on scheduler noise).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Metrics is one benchmark's parsed figures. Unreported metrics stay zero.
type Metrics struct {
	NsPerOp      float64 `json:"ns_per_op"`
	BytesPerOp   float64 `json:"b_per_op"`
	AllocsPerOp  float64 `json:"allocs_per_op"`
	UopsPerSec   float64 `json:"uops_per_sec,omitempty"`
	AllocsPerUop float64 `json:"allocs_per_uop,omitempty"`
	UnpacksPerOp float64 `json:"unpacks_per_op,omitempty"`
	ReqPerSec    float64 `json:"req_per_sec,omitempty"`
	P50Ms        float64 `json:"p50_ms,omitempty"`
	P99Ms        float64 `json:"p99_ms,omitempty"`
}

// Snapshot is the BENCH_6.json schema. Before optionally preserves the
// numbers recorded before an optimization for the historical record; only
// Benchmarks participates in comparisons.
type Snapshot struct {
	Schema     int                `json:"schema"`
	Note       string             `json:"note,omitempty"`
	Benchmarks map[string]Metrics `json:"benchmarks"`
	Before     map[string]Metrics `json:"before,omitempty"`
}

// benchLine matches one result row: name, iteration count, then
// value/unit pairs.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.*)$`)

// procsSuffix matches the "-N" GOMAXPROCS decoration go test appends.
var procsSuffix = regexp.MustCompile(`-\d+$`)

// parse reads `go test -bench` output into per-benchmark metrics. The
// GOMAXPROCS suffix ("-8") is stripped so snapshots recorded on machines
// with different core counts compare — but only when every result line
// carries the same suffix (the decoration is uniform within one run), so
// a benchmark legitimately named "gzip-1" on a 1-CPU run is not mangled
// alongside differently-named siblings.
func parse(r *bufio.Scanner) (map[string]Metrics, error) {
	type row struct {
		name string
		met  Metrics
	}
	var rows []row
	for r.Scan() {
		m := benchLine.FindStringSubmatch(r.Text())
		if m == nil {
			continue
		}
		name := strings.TrimPrefix(m[1], "Benchmark")
		fields := strings.Fields(m[3])
		var met Metrics
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: %s: bad value %q", name, fields[i])
			}
			switch fields[i+1] {
			case "ns/op":
				met.NsPerOp = v
			case "B/op":
				met.BytesPerOp = v
			case "allocs/op":
				met.AllocsPerOp = v
			case "uops/s":
				met.UopsPerSec = v
			case "allocs/uop":
				met.AllocsPerUop = v
			case "unpacks/op":
				met.UnpacksPerOp = v
			case "req/s":
				met.ReqPerSec = v
			case "p50-ms":
				met.P50Ms = v
			case "p99-ms":
				met.P99Ms = v
			}
		}
		rows = append(rows, row{name, met})
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	suffix := ""
	for i, rw := range rows {
		s := procsSuffix.FindString(rw.name)
		if i == 0 {
			suffix = s
		} else if s != suffix {
			suffix = ""
			break
		}
	}
	out := map[string]Metrics{}
	for _, rw := range rows {
		name := rw.name
		if suffix != "" {
			name = strings.TrimSuffix(name, suffix)
		}
		out[name] = rw.met
	}
	return out, nil
}

// compare gates the fresh run against the baseline. Benchmarks missing on
// either side are skipped (renames should not break unrelated lanes), but
// an empty intersection fails: a gate that checks nothing is miswired.
func compare(fresh, base map[string]Metrics, maxRegress, allocsGrow float64) []string {
	var problems []string
	matched := 0
	for _, name := range sortedNames(base) {
		b := base[name]
		f, ok := fresh[name]
		if !ok {
			continue
		}
		matched++
		if b.UopsPerSec > 0 && f.UopsPerSec < b.UopsPerSec*(1-maxRegress) {
			problems = append(problems, fmt.Sprintf(
				"%s: throughput regressed: %.0f uops/s vs baseline %.0f (-%.1f%%, budget %.0f%%)",
				name, f.UopsPerSec, b.UopsPerSec,
				100*(1-f.UopsPerSec/b.UopsPerSec), 100*maxRegress))
		}
		allocBudget := b.AllocsPerUop*(1+allocsGrow) + 0.05
		if f.AllocsPerUop > allocBudget {
			problems = append(problems, fmt.Sprintf(
				"%s: allocations grew: %.3f allocs/uop vs baseline %.3f (budget %.3f)",
				name, f.AllocsPerUop, b.AllocsPerUop, allocBudget))
		}
		if b.UopsPerSec == 0 {
			// Fixed-cost benchmarks (construction, cache hits) have no
			// per-uop figures; gate their raw allocation count instead. The
			// +2 absolute slack keeps near-zero baselines (a pooled Reset is
			// a couple of allocations) from failing on noise.
			opBudget := b.AllocsPerOp*(1+allocsGrow) + 2
			if f.AllocsPerOp > opBudget {
				problems = append(problems, fmt.Sprintf(
					"%s: allocations grew: %.1f allocs/op vs baseline %.1f (budget %.1f)",
					name, f.AllocsPerOp, b.AllocsPerOp, opBudget))
			}
		}
		if b.ReqPerSec > 0 && f.ReqPerSec < b.ReqPerSec*(1-maxRegress) {
			problems = append(problems, fmt.Sprintf(
				"%s: throughput regressed: %.0f req/s vs baseline %.0f (-%.1f%%, budget %.0f%%)",
				name, f.ReqPerSec, b.ReqPerSec,
				100*(1-f.ReqPerSec/b.ReqPerSec), 100*maxRegress))
		}
		// Latency gates mirror the throughput one but in the other
		// direction, with 1 ms absolute slack so sub-millisecond baselines
		// (a warm 304 is microseconds) do not fail on scheduler noise.
		if b.P50Ms > 0 && f.P50Ms > b.P50Ms*(1+maxRegress)+1.0 {
			problems = append(problems, fmt.Sprintf(
				"%s: p50 latency regressed: %.2f ms vs baseline %.2f (budget %.2f)",
				name, f.P50Ms, b.P50Ms, b.P50Ms*(1+maxRegress)+1.0))
		}
		if b.P99Ms > 0 && f.P99Ms > b.P99Ms*(1+maxRegress)+1.0 {
			problems = append(problems, fmt.Sprintf(
				"%s: p99 latency regressed: %.2f ms vs baseline %.2f (budget %.2f)",
				name, f.P99Ms, b.P99Ms, b.P99Ms*(1+maxRegress)+1.0))
		}
		if b.UnpacksPerOp > 0 {
			// Decompressions per trace-cache hit. The 0.15 absolute slack
			// absorbs scheduling jitter in the parallel sharing benchmark
			// (whose baseline is near zero) without letting a broken
			// single-flight path — every hit unpacking privately — pass.
			unpackBudget := b.UnpacksPerOp*(1+allocsGrow) + 0.15
			if f.UnpacksPerOp > unpackBudget {
				problems = append(problems, fmt.Sprintf(
					"%s: decompression sharing regressed: %.4f unpacks/op vs baseline %.4f (budget %.4f)",
					name, f.UnpacksPerOp, b.UnpacksPerOp, unpackBudget))
			}
		}
	}
	if matched == 0 {
		problems = append(problems, "no benchmark in the fresh run matches the baseline — gate is checking nothing")
	}
	return problems
}

// sortedNames returns the map's keys in stable order, so comparison
// output and failure lists are deterministic across runs.
func sortedNames(m map[string]Metrics) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// writeSnapshot writes (or refreshes) a snapshot file. Refreshing an
// existing snapshot must not destroy its history: the note (unless the
// new one overrides it) and the before block carry forward.
func writeSnapshot(path, note string, fresh map[string]Metrics) error {
	snap := Snapshot{Schema: 1, Note: note, Benchmarks: fresh}
	if blob, err := os.ReadFile(path); err == nil {
		var old Snapshot
		if err := json.Unmarshal(blob, &old); err == nil {
			if snap.Note == "" {
				snap.Note = old.Note
			}
			snap.Before = old.Before
		}
	}
	blob, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(blob, '\n'), 0o644)
}

func main() {
	var (
		out        = flag.String("out", "", "write the parsed snapshot as JSON to this file")
		baseline   = flag.String("baseline", "", "compare the run against this committed snapshot; non-zero exit on regression")
		maxRegress = flag.Float64("max-regress", 0.20, "with -baseline: maximum tolerated uops/s drop (fraction)")
		allocsGrow = flag.Float64("allocs-grow", 0.25, "with -baseline: maximum tolerated allocs/uop growth (fraction, plus 0.05 absolute slack)")
		note       = flag.String("note", "", "with -out: note field recorded in the snapshot")
	)
	flag.Parse()

	fresh, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if len(fresh) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(2)
	}

	if *out != "" {
		if err := writeSnapshot(*out, *note, fresh); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	if *baseline != "" {
		blob, err := os.ReadFile(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		var snap Snapshot
		if err := json.Unmarshal(blob, &snap); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: parsing %s: %v\n", *baseline, err)
			os.Exit(2)
		}
		problems := compare(fresh, snap.Benchmarks, *maxRegress, *allocsGrow)
		for _, name := range sortedNames(fresh) {
			f := fresh[name]
			b, ok := snap.Benchmarks[name]
			if !ok {
				continue
			}
			switch {
			case b.ReqPerSec > 0:
				fmt.Printf("%s: %.0f req/s (baseline %.0f, %+.1f%%), p50 %.2f ms (baseline %.2f), p99 %.2f ms (baseline %.2f)\n",
					name, f.ReqPerSec, b.ReqPerSec, 100*(f.ReqPerSec/b.ReqPerSec-1),
					f.P50Ms, b.P50Ms, f.P99Ms, b.P99Ms)
			case b.UopsPerSec > 0:
				fmt.Printf("%s: %.0f uops/s (baseline %.0f, %+.1f%%), %.3f allocs/uop (baseline %.3f)\n",
					name, f.UopsPerSec, b.UopsPerSec, 100*(f.UopsPerSec/b.UopsPerSec-1),
					f.AllocsPerUop, b.AllocsPerUop)
			case b.UnpacksPerOp > 0:
				fmt.Printf("%s: %.4f unpacks/op (baseline %.4f), %.1f allocs/op (baseline %.1f)\n",
					name, f.UnpacksPerOp, b.UnpacksPerOp, f.AllocsPerOp, b.AllocsPerOp)
			default:
				fmt.Printf("%s: %.1f allocs/op (baseline %.1f), %.0f ns/op (baseline %.0f)\n",
					name, f.AllocsPerOp, b.AllocsPerOp, f.NsPerOp, b.NsPerOp)
			}
		}
		if len(problems) > 0 {
			for _, p := range problems {
				fmt.Fprintln(os.Stderr, "FAIL:", p)
			}
			os.Exit(1)
		}
		fmt.Println("benchjson: within budget")
	}
}
